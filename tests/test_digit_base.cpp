// The base-b generalization of the tree geometry (paper Section 3: "any
// other base besides 2 can be used"; Tapestry/Pastry deploy base 16).
#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/routability.hpp"
#include "core/tree_geometry.hpp"
#include "math/logreal.hpp"

namespace dht::core {
namespace {

TEST(DigitBase, DefaultIsBinaryAndUnchanged) {
  const TreeGeometry binary;
  EXPECT_EQ(binary.base(), 2);
  const TreeGeometry explicit_binary(2);
  for (double q : {0.1, 0.5}) {
    for (int d : {8, 16}) {
      EXPECT_EQ(evaluate_routability(binary, d, q).routability,
                evaluate_routability(explicit_binary, d, q).routability);
    }
  }
}

TEST(DigitBase, SpaceSizeIsBToTheD) {
  for (int base : {2, 3, 16}) {
    const TreeGeometry tree(base);
    for (int d : {1, 4, 10}) {
      EXPECT_NEAR(tree.space_size(d).log(),
                  d * std::log(static_cast<double>(base)), 1e-12)
          << "base=" << base << " d=" << d;
    }
  }
}

TEST(DigitBase, DistanceCountsSumToPeers) {
  // sum_h C(d,h)(b-1)^h = b^d - 1.
  for (int base : {2, 3, 4, 16}) {
    const TreeGeometry tree(base);
    for (int d : {3, 6, 10}) {
      math::LogSum sum;
      for (int h = 1; h <= d; ++h) {
        sum.add(tree.distance_count(h, d));
      }
      const double expected =
          std::pow(static_cast<double>(base), d) - 1.0;
      EXPECT_NEAR(sum.total().value(), expected, 1e-6 * expected)
          << "base=" << base << " d=" << d;
    }
  }
}

TEST(DigitBase, ClosedFormMatchesGenericEvaluator) {
  for (int base : {2, 4, 16}) {
    const TreeGeometry tree(base);
    for (int d : {3, 6, 12}) {
      for (double q : {0.05, 0.2, 0.5}) {
        EXPECT_NEAR(evaluate_routability(tree, d, q).routability,
                    std::min(1.0, TreeGeometry::closed_form_routability(
                                      d, q, base)),
                    1e-10)
            << "base=" << base << " d=" << d << " q=" << q;
      }
    }
  }
}

TEST(DigitBase, HigherBaseIsMoreResilientAtFixedN) {
  // N = 2^12 = 4096 nodes organized as d digits base b: (b, d) in
  // {(2,12), (4,6), (16,3)}.  Fewer sequential corrections => higher
  // routability at the same q (the design argument for Tapestry's base 16,
  // paid for with d(b-1) routing-table entries instead of d).
  const double q = 0.2;
  const double r_b2 =
      evaluate_routability(TreeGeometry(2), 12, q).routability;
  const double r_b4 =
      evaluate_routability(TreeGeometry(4), 6, q).routability;
  const double r_b16 =
      evaluate_routability(TreeGeometry(16), 3, q).routability;
  EXPECT_GT(r_b4, r_b2);
  EXPECT_GT(r_b16, r_b4);
}

TEST(DigitBase, StillUnscalableInN) {
  // The base does not rescue the tree geometry: Q(m) = q stays constant,
  // so r -> 0 as d grows for any base.
  const TreeGeometry hex(16);
  EXPECT_EQ(hex.scalability_class(), ScalabilityClass::kUnscalable);
  const double r_small = evaluate_routability(hex, 8, 0.1).routability;
  const double r_large = evaluate_routability(hex, 64, 0.1).routability;
  EXPECT_GT(r_small, r_large);
  EXPECT_LT(r_large, 0.01);
}

TEST(DigitBase, SuccessProbabilityIndependentOfBase) {
  // p(h, q) = (1-q)^h regardless of base: the base changes how many nodes
  // sit at each distance, not the per-correction survival.
  const TreeGeometry hex(16);
  const TreeGeometry binary(2);
  for (int h = 1; h <= 10; ++h) {
    EXPECT_EQ(hex.success_probability(h, 0.3, 10),
              binary.success_probability(h, 0.3, 10));
  }
}

TEST(DigitBase, RejectsBadBase) {
  EXPECT_THROW(TreeGeometry(1), PreconditionError);
  EXPECT_THROW(TreeGeometry(0), PreconditionError);
  EXPECT_THROW(TreeGeometry(-4), PreconditionError);
  EXPECT_THROW(TreeGeometry::closed_form_routability(8, 0.1, 1),
               PreconditionError);
}

}  // namespace
}  // namespace dht::core
