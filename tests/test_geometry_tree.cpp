#include "core/tree_geometry.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/routability.hpp"
#include "math/binomial.hpp"

namespace dht::core {
namespace {

TEST(TreeGeometry, Identity) {
  const TreeGeometry tree;
  EXPECT_EQ(tree.kind(), GeometryKind::kTree);
  EXPECT_EQ(tree.name(), "tree");
  EXPECT_EQ(tree.exactness(), Exactness::kExact);
  EXPECT_EQ(tree.scalability_class(), ScalabilityClass::kUnscalable);
  EXPECT_FALSE(tree.scalability_argument().empty());
}

TEST(TreeGeometry, DistanceCountIsBinomial) {
  const TreeGeometry tree;
  for (int d : {3, 8, 16}) {
    for (int h = 1; h <= d; ++h) {
      EXPECT_NEAR(tree.distance_count(h, d).value(),
                  static_cast<double>(math::binomial_exact(d, h)), 1e-6)
          << "d=" << d << " h=" << h;
    }
  }
}

TEST(TreeGeometry, DistanceCountOutOfDomainIsZero) {
  const TreeGeometry tree;
  EXPECT_TRUE(tree.distance_count(0, 8).is_zero());
  EXPECT_TRUE(tree.distance_count(9, 8).is_zero());
  EXPECT_TRUE(tree.distance_count(-3, 8).is_zero());
}

TEST(TreeGeometry, DistanceCountsSumToPeers) {
  // sum_h n(h) = 2^d - 1: every other node sits at some distance.
  const TreeGeometry tree;
  for (int d : {4, 10, 16}) {
    math::LogSum sum;
    for (int h = 1; h <= d; ++h) {
      sum.add(tree.distance_count(h, d));
    }
    EXPECT_NEAR(sum.total().value(), std::exp2(d) - 1.0,
                1e-9 * std::exp2(d));
  }
}

TEST(TreeGeometry, PhaseFailureIsConstantQ) {
  const TreeGeometry tree;
  for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    for (int m = 1; m <= 64; ++m) {
      EXPECT_EQ(tree.phase_failure(m, q, 64), q);
    }
  }
}

TEST(TreeGeometry, SuccessProbabilityIsPowerLaw) {
  // p(h, q) = (1-q)^h (Section 4.3.1).
  const TreeGeometry tree;
  for (double q : {0.05, 0.3, 0.6}) {
    for (int h = 1; h <= 32; ++h) {
      EXPECT_NEAR(tree.success_probability(h, q, 32), std::pow(1.0 - q, h),
                  1e-12)
          << "q=" << q << " h=" << h;
    }
  }
}

TEST(TreeGeometry, ClosedFormMatchesGenericEvaluator) {
  // r = ((2-q)^d - 1) / ((1-q) 2^d - 1) must equal the generic Eq. 3 sum.
  const TreeGeometry tree;
  for (int d : {4, 8, 16, 32}) {
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75}) {
      const double closed = TreeGeometry::closed_form_routability(d, q);
      const double generic = evaluate_routability(tree, d, q).routability;
      EXPECT_NEAR(generic, closed, 1e-10) << "d=" << d << " q=" << q;
    }
  }
}

TEST(TreeGeometry, ClosedFormKnownValue) {
  // d = 16, q = 0.1: r = (1.9^16 - 1) / (0.9 * 65536 - 1) = 0.4891465...
  const double r = TreeGeometry::closed_form_routability(16, 0.1);
  const double expected =
      (std::pow(1.9, 16) - 1.0) / (0.9 * 65536.0 - 1.0);
  EXPECT_NEAR(r, expected, 1e-12);
  EXPECT_NEAR(r, 0.489, 0.001);
}

TEST(TreeGeometry, ClosedFormExtremeD) {
  // d = 100 (Fig. 7(a) regime): (1.9/2)^100 ~ 5.9e-3 relative to survivors.
  const double r = TreeGeometry::closed_form_routability(100, 0.1);
  const double expected = std::pow(1.9 / 2.0, 100) / 0.9;
  EXPECT_NEAR(r, expected, expected * 1e-6);
  EXPECT_LT(r, 0.01);  // the tree is essentially dead at this scale
}

TEST(TreeGeometry, PerfectNetworkRoutesEverything) {
  EXPECT_DOUBLE_EQ(TreeGeometry::closed_form_routability(12, 0.0), 1.0);
}

TEST(TreeGeometry, RejectsBadArguments) {
  const TreeGeometry tree;
  EXPECT_THROW(tree.phase_failure(0, 0.5, 8), PreconditionError);
  EXPECT_THROW(tree.phase_failure(1, -0.1, 8), PreconditionError);
  EXPECT_THROW(tree.phase_failure(1, 1.5, 8), PreconditionError);
  EXPECT_THROW(tree.distance_count(1, 0), PreconditionError);
  EXPECT_THROW(TreeGeometry::closed_form_routability(0, 0.5),
               PreconditionError);
  EXPECT_THROW(TreeGeometry::closed_form_routability(8, 1.0),
               PreconditionError);
}

}  // namespace
}  // namespace dht::core
