// Fixture: a lint:allow without a reason suppresses the underlying rule but
// is itself reported -- exceptions must stay self-documenting.
#include <atomic>
#include <cstdint>

namespace dht::fixture {

std::uint64_t quiet(std::atomic<std::uint64_t>& counter) {
  // lint:allow(atomic-order)
  return counter.load();  // expect: allow-missing-reason (not atomic-order)
}

}  // namespace dht::fixture
