// Fixture: idiomatic deterministic kernel code -- relaxed documented
// atomics, const namespace-scope tables, integer merges -- must produce
// zero findings.
#include <atomic>
#include <cstdint>

namespace dht::fixture {

constexpr std::uint64_t kLanes = 8;
static const std::uint64_t kSeedSalt = 0x9e3779b97f4a7c15ull;

struct Estimate {
  std::uint64_t attempts = 0;
  std::uint64_t delivered = 0;

  void merge(const Estimate& other) noexcept {
    attempts += other.attempts;
    delivered += other.delivered;
  }
};

void record(std::atomic<std::uint64_t>* load, std::uint64_t slot) {
  load[slot].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t lane_key(std::uint64_t shard, std::uint64_t lane) {
  return (shard * kLanes + lane) ^ kSeedSalt;
}

}  // namespace dht::fixture
