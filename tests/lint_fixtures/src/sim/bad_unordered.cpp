// Fixture: unordered-container use inside merge/estimate paths must be
// flagged -- hash iteration order is unspecified, so any reduction over it
// is schedule-dependent.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace dht::fixture {

struct Estimate {
  std::uint64_t routed = 0;

  void merge(const Estimate& other) {
    std::unordered_set<std::uint64_t> seen;  // expect: unordered-iter
    routed += other.routed + seen.size();
  }
};

std::uint64_t estimate_buckets(std::uint64_t n) {
  std::unordered_map<std::uint64_t, std::uint64_t> counts;  // expect: unordered-iter
  for (std::uint64_t i = 0; i < n; ++i) {
    ++counts[i % 7];
  }
  std::uint64_t sum = 0;
  for (const auto& [key, value] : counts) {
    sum += key ^ value;
  }
  return sum;
}

// Outside a merge/estimate path the same container is fine.
std::uint64_t lookup_helper(std::uint64_t n) {
  std::unordered_set<std::uint64_t> seen;
  seen.insert(n);
  return seen.size();
}

}  // namespace dht::fixture
