// Fixture: a lint:allow whose exception no longer exists is stale
// documentation and must be reported.
#include <cstdint>

namespace dht::fixture {

std::uint64_t nothing_to_allow(std::uint64_t x) {
  // lint:allow(wallclock) there is no clock read here any more
  return x + 1;  // expect: allow-missing-reason (stale annotation)
}

}  // namespace dht::fixture
