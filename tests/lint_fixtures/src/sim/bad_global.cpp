// Fixture: mutable namespace-scope state in a kernel TU must be flagged --
// shard workers re-enter these translation units concurrently.
#include <cstdint>

namespace dht::fixture {

static std::uint64_t g_route_calls = 0;  // expect: kernel-global

std::uint64_t count_route() { return ++g_route_calls; }

// Const and constexpr namespace-scope state is fine.
constexpr std::uint64_t kTableSize = 1u << 10;
static const std::uint64_t kMask = kTableSize - 1;

std::uint64_t masked(std::uint64_t x) { return x & kMask; }

}  // namespace dht::fixture
