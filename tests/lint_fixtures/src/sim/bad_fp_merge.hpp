// Fixture: floating point inside merge() members must be flagged -- FP
// addition is not associative, so shard-order reduction stops being
// bit-identical.  Both detection halves are exercised: a local fp
// declaration inside merge(), and accumulation into an fp data member
// that never names the type inside the body.
#pragma once

#include <cstdint>

namespace dht::fixture {

struct LocalFp {
  std::uint64_t total = 0;

  void merge(const LocalFp& other) {
    double weight = 0.5;  // expect: fp-merge
    total += static_cast<std::uint64_t>(weight * other.total);
  }
};

struct MemberFp {
  double mass[4] = {0, 0, 0, 0};

  void merge(const MemberFp& other) {
    for (int i = 0; i < 4; ++i) {
      mass[i] += other.mass[i];  // expect: fp-merge (member accumulation)
    }
  }
};

// An integer merge next to fp members used elsewhere stays clean.
struct CleanMerge {
  std::uint64_t count = 0;

  void merge(const CleanMerge& other) { count += other.count; }
};

}  // namespace dht::fixture
