// Fixture: a lint:allow annotation with a reason suppresses the finding --
// the escape hatch must keep intentional exceptions clean.
#include <atomic>
#include <cstdint>

namespace dht::fixture {

std::uint64_t handshake(std::atomic<std::uint64_t>& flag) {
  // lint:allow(atomic-order) release/acquire pair documented in fixture
  flag.store(1);
  return flag.load(std::memory_order_acquire);
}

}  // namespace dht::fixture
