// Fixture: atomic operations without an explicit std::memory_order must be
// flagged -- the default is seq_cst, and this codebase documents every
// atomic's ordering at the call site.
#include <atomic>
#include <cstdint>

namespace dht::fixture {

std::uint64_t bump(std::atomic<std::uint64_t>& counter) {
  counter.fetch_add(1);           // expect: atomic-order
  counter.store(7);               // expect: atomic-order
  return counter.load();          // expect: atomic-order
}

// With the order spelled out the same calls are clean.
std::uint64_t bump_relaxed(std::atomic<std::uint64_t>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
  return counter.load(std::memory_order_relaxed);
}

}  // namespace dht::fixture
