// Fixture: every ambient time/randomness read the `wallclock` rule names
// must be flagged outside src/obs/ and bench/.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace dht::fixture {

unsigned ambient_seed() {
  std::random_device rd;  // expect: wallclock
  return rd();
}

long ambient_epoch() {
  return time(nullptr);  // expect: wallclock
}

int ambient_draw() {
  srand(42);     // expect: wallclock
  return rand();  // expect: wallclock
}

double ambient_now() {
  const auto t = std::chrono::steady_clock::now();  // expect: wallclock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace dht::fixture
