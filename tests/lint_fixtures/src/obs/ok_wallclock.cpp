// Fixture: src/obs/ is the observability layer -- clock reads here are its
// purpose and must NOT be flagged.
#include <chrono>

namespace dht::fixture {

double obs_now() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace dht::fixture
