// Fixture: bench harnesses time themselves by design -- clock reads here
// must NOT be flagged.
#include <chrono>

namespace dht::fixture {

double bench_now() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace dht::fixture
