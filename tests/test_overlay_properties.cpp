// Unified property suite over all five overlays: the invariants every
// basic-protocol implementation must satisfy, run against each geometry
// via a parameterized factory.
#include <functional>
#include <memory>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/router.hpp"
#include "sim/symphony_overlay.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace dht::sim {
namespace {

struct OverlayCase {
  std::string label;
  std::function<std::unique_ptr<Overlay>(const IdSpace&, std::uint64_t seed)>
      make;
};

std::vector<OverlayCase> all_cases() {
  return {
      {"tree",
       [](const IdSpace& space, std::uint64_t seed) {
         math::Rng rng(seed);
         return std::make_unique<TreeOverlay>(space, rng);
       }},
      {"xor",
       [](const IdSpace& space, std::uint64_t seed) {
         math::Rng rng(seed);
         return std::make_unique<XorOverlay>(space, rng);
       }},
      {"hypercube",
       [](const IdSpace& space, std::uint64_t seed) {
         (void)seed;
         return std::make_unique<HypercubeOverlay>(space);
       }},
      {"ring_deterministic",
       [](const IdSpace& space, std::uint64_t seed) {
         math::Rng rng(seed);
         return std::make_unique<ChordOverlay>(space, rng);
       }},
      {"ring_randomized",
       [](const IdSpace& space, std::uint64_t seed) {
         math::Rng rng(seed);
         return std::make_unique<ChordOverlay>(space, rng,
                                               ChordFingers::kRandomized);
       }},
      {"ring_successors",
       [](const IdSpace& space, std::uint64_t seed) {
         math::Rng rng(seed);
         return std::make_unique<ChordOverlay>(
             space, rng, ChordFingers::kDeterministic, 4);
       }},
      {"symphony",
       [](const IdSpace& space, std::uint64_t seed) {
         math::Rng rng(seed);
         return std::make_unique<SymphonyOverlay>(space, 1, 1, rng);
       }},
  };
}

class OverlayProperties : public ::testing::TestWithParam<size_t> {
 protected:
  const OverlayCase& overlay_case() const {
    static const auto cases = all_cases();
    return cases[GetParam()];
  }
};

INSTANTIATE_TEST_SUITE_P(AllOverlays, OverlayProperties,
                         ::testing::Range<size_t>(0, 7),
                         [](const auto& test_info) {
                           static const auto cases = all_cases();
                           return cases[test_info.param].label;
                         });

TEST_P(OverlayProperties, NoSelfLinks) {
  const IdSpace space(9);
  const auto overlay = overlay_case().make(space, 1);
  for (NodeId v = 0; v < space.size(); v += 13) {
    for (const NodeId link : overlay->links(v)) {
      EXPECT_NE(link, v) << "node " << v;
      EXPECT_TRUE(space.contains(link));
    }
  }
}

TEST_P(OverlayProperties, EveryPairRoutesWithoutFailures) {
  const IdSpace space(8);
  const auto overlay = overlay_case().make(space, 2);
  const FailureScenario alive = FailureScenario::all_alive(space);
  const Router router(*overlay, alive);
  math::Rng rng(3);
  for (int i = 0; i < 1500; ++i) {
    const NodeId s = rng.uniform_below(space.size());
    NodeId t = rng.uniform_below(space.size());
    if (s == t) {
      continue;
    }
    const RouteResult result = router.route(s, t, rng);
    ASSERT_TRUE(result.success())
        << overlay_case().label << ": " << s << " -> " << t;
    EXPECT_EQ(result.last_node, t);
  }
}

TEST_P(OverlayProperties, ConstructionIsDeterministicGivenSeed) {
  const IdSpace space(8);
  const auto a = overlay_case().make(space, 77);
  const auto b = overlay_case().make(space, 77);
  for (NodeId v = 0; v < space.size(); v += 7) {
    EXPECT_EQ(a->links(v), b->links(v)) << "node " << v;
  }
}

TEST_P(OverlayProperties, NextHopNeverReturnsDeadNode) {
  const IdSpace space(9);
  const auto overlay = overlay_case().make(space, 4);
  math::Rng fail_rng(5);
  const FailureScenario failures(space, 0.4, fail_rng);
  math::Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const NodeId s = rng.uniform_below(space.size());
    NodeId t = rng.uniform_below(space.size());
    if (s == t) {
      continue;
    }
    const auto hop = overlay->next_hop(s, t, failures, rng);
    if (hop.has_value()) {
      EXPECT_TRUE(failures.alive(*hop));
      EXPECT_NE(*hop, s);
    }
  }
}

TEST_P(OverlayProperties, RoutabilityDegradesWithFailure) {
  const IdSpace space(10);
  const auto overlay = overlay_case().make(space, 7);
  double previous = 1.1;
  for (double q : {0.1, 0.3, 0.5, 0.7}) {
    math::Rng fail_rng(static_cast<std::uint64_t>(q * 100));
    const FailureScenario failures(space, q, fail_rng);
    math::Rng rng(8);
    const double r =
        estimate_routability(*overlay, failures, {.pairs = 6000}, rng)
            .routability();
    EXPECT_LT(r, previous + 0.02) << "q=" << q;  // small MC slack
    previous = r;
  }
}

TEST_P(OverlayProperties, HopLimitNeverFiresAtModerateFailure) {
  // All basic protocols make strictly monotone progress; the safety cap
  // must never trigger.
  const IdSpace space(10);
  const auto overlay = overlay_case().make(space, 9);
  math::Rng fail_rng(10);
  const FailureScenario failures(space, 0.3, fail_rng);
  math::Rng rng(11);
  const auto estimate =
      estimate_routability(*overlay, failures, {.pairs = 6000}, rng);
  EXPECT_EQ(estimate.hop_limit_hits(), 0u);
}

}  // namespace
}  // namespace dht::sim
