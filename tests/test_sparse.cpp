// Non-fully-populated identifier spaces (the paper's Section 6 future
// work): structural invariants, dense-limit equivalence, and the density
// reduction (sparse systems behave like the dense model at d' = log2 N).
#include <set>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/registry.hpp"
#include "core/routability.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/parallel_monte_carlo.hpp"
#include "sim/symphony_overlay.hpp"
#include "sim/xor_overlay.hpp"
#include "sparse/density_analysis.hpp"
#include "sparse/sparse_chord.hpp"
#include "sparse/sparse_kademlia.hpp"
#include "sparse/sparse_space.hpp"
#include "sparse/sparse_symphony.hpp"

namespace dht::sparse {
namespace {

TEST(SparseIdSpace, IdsAreDistinctSortedAndInRange) {
  math::Rng rng(1);
  const SparseIdSpace space(20, 2000, rng);
  EXPECT_EQ(space.node_count(), 2000u);
  EXPECT_EQ(space.bits(), 20);
  EXPECT_NEAR(space.density(), 2000.0 / (1 << 20), 1e-12);
  std::set<sim::NodeId> seen;
  sim::NodeId previous = 0;
  for (NodeIndex i = 0; i < space.node_count(); ++i) {
    const sim::NodeId id = space.id_of(i);
    EXPECT_LT(id, space.key_space_size());
    if (i > 0) {
      EXPECT_GT(id, previous);  // strictly ascending => distinct
    }
    previous = id;
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 2000u);
}

TEST(SparseIdSpace, FullyPopulatedDegeneratesToIdentity) {
  math::Rng rng(2);
  const SparseIdSpace space(8, 256, rng);
  for (NodeIndex i = 0; i < 256; ++i) {
    EXPECT_EQ(space.id_of(i), i);
  }
}

TEST(SparseIdSpace, SuccessorOfKey) {
  math::Rng rng(3);
  const SparseIdSpace space(16, 100, rng);
  // The successor of a node's own id is that node.
  for (NodeIndex i = 0; i < space.node_count(); ++i) {
    EXPECT_EQ(space.successor_of_key(space.id_of(i)), i);
  }
  // A key past the largest id wraps to node 0.
  const sim::NodeId largest = space.id_of(
      static_cast<NodeIndex>(space.node_count() - 1));
  if (largest + 1 < space.key_space_size()) {
    EXPECT_EQ(space.successor_of_key(largest + 1), 0u);
  }
}

TEST(SparseIdSpace, IndexRangeCountsMembers) {
  math::Rng rng(4);
  const SparseIdSpace space(12, 512, rng);
  const auto [first, last] = space.index_range(0, space.key_space_size() - 1);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(last, space.node_count());
  // Singleton ranges.
  const sim::NodeId some_id = space.id_of(17);
  const auto [a, b] = space.index_range(some_id, some_id);
  EXPECT_EQ(a, 17u);
  EXPECT_EQ(b, 18u);
}

TEST(SparseIdSpace, RingStepWraps) {
  math::Rng rng(5);
  const SparseIdSpace space(12, 100, rng);
  EXPECT_EQ(space.ring_step(99, 1), 0u);
  EXPECT_EQ(space.ring_step(50, 100), 50u);
}

TEST(SparseIdSpace, RejectsBadArguments) {
  math::Rng rng(6);
  EXPECT_THROW(SparseIdSpace(0, 2, rng), PreconditionError);
  EXPECT_THROW(SparseIdSpace(64, 2, rng), PreconditionError);
  EXPECT_THROW(SparseIdSpace(8, 1, rng), PreconditionError);
  EXPECT_THROW(SparseIdSpace(8, 257, rng), PreconditionError);
}

TEST(SparseFailure, TracksAliveCount) {
  math::Rng rng(7);
  const SparseIdSpace space(14, 4096, rng);
  const SparseFailure failures(space, 0.3, rng);
  EXPECT_NEAR(static_cast<double>(failures.alive_count()) / 4096.0, 0.7,
              0.05);
  std::uint64_t count = 0;
  for (NodeIndex i = 0; i < 4096; ++i) {
    count += failures.alive(i) ? 1 : 0;
  }
  EXPECT_EQ(count, failures.alive_count());
}

TEST(SparseChord, DenseLimitFingersMatchClassicChord) {
  // Fully populated: successor(id + 2^{d-i}) == id + 2^{d-i} exactly.
  math::Rng rng(8);
  const SparseIdSpace space(8, 256, rng);
  const SparseChordOverlay overlay(space);
  for (NodeIndex v = 0; v < 256; v += 7) {
    for (int i = 1; i <= 8; ++i) {
      EXPECT_EQ(space.id_of(overlay.finger(v, i)),
                (v + (1u << (8 - i))) % 256);
    }
  }
}

TEST(SparseChord, FingersAreSuccessorsOfDyadicPoints) {
  math::Rng rng(9);
  const SparseIdSpace space(20, 1024, rng);
  const SparseChordOverlay overlay(space);
  for (NodeIndex v = 0; v < space.node_count(); v += 101) {
    const sim::NodeId base = space.id_of(v);
    for (int i = 1; i <= 20; ++i) {
      const sim::NodeId key =
          (base + (std::uint64_t{1} << (20 - i))) & (space.key_space_size() - 1);
      EXPECT_EQ(overlay.finger(v, i), space.successor_of_key(key));
    }
  }
}

TEST(SparseChord, FailureFreeRoutesArrive) {
  math::Rng rng(10);
  const SparseIdSpace space(20, 1024, rng);
  const SparseChordOverlay overlay(space);
  const SparseFailure none(space, 0.0, rng);
  for (int i = 0; i < 500; ++i) {
    const auto s = static_cast<NodeIndex>(rng.uniform_below(1024));
    auto t = static_cast<NodeIndex>(rng.uniform_below(1024));
    if (s == t) {
      continue;
    }
    const auto hops = route(overlay, none, s, t);
    ASSERT_TRUE(hops.has_value());
    // O(log N) routing: generously bounded by the key-space bits.
    EXPECT_LE(*hops, 20);
  }
}

TEST(SparseKademlia, BucketsRespectXorRanges) {
  math::Rng rng(11);
  const SparseIdSpace space(16, 512, rng);
  const SparseKademliaOverlay overlay(space, rng);
  for (NodeIndex v = 0; v < space.node_count(); v += 37) {
    const sim::NodeId base = space.id_of(v);
    for (int i = 1; i <= 16; ++i) {
      const auto entry = overlay.contact(v, i);
      if (!entry.has_value()) {
        continue;
      }
      const std::uint64_t distance =
          sim::xor_distance(base, space.id_of(*entry));
      EXPECT_GE(distance, std::uint64_t{1} << (16 - i));
      EXPECT_LT(distance, std::uint64_t{2} << (16 - i));
    }
  }
}

TEST(SparseKademlia, TopBucketsAreNeverEmptyAtModerateDensity) {
  // Bucket 1 covers half the key space; with 512 nodes it is essentially
  // never empty.  Deep buckets (singleton ranges) are mostly empty.
  math::Rng rng(12);
  const SparseIdSpace space(16, 512, rng);
  const SparseKademliaOverlay overlay(space, rng);
  int empty_top = 0;
  int empty_bottom = 0;
  for (NodeIndex v = 0; v < space.node_count(); ++v) {
    empty_top += overlay.contact(v, 1).has_value() ? 0 : 1;
    empty_bottom += overlay.contact(v, 16).has_value() ? 0 : 1;
  }
  EXPECT_EQ(empty_top, 0);
  EXPECT_GT(empty_bottom, 400);  // density 2^-7: most flip-ids unoccupied
}

TEST(SparseKademlia, FailureFreeRoutesArrive) {
  math::Rng rng(13);
  const SparseIdSpace space(20, 1024, rng);
  const SparseKademliaOverlay overlay(space, rng);
  const SparseFailure none(space, 0.0, rng);
  for (int i = 0; i < 500; ++i) {
    const auto s = static_cast<NodeIndex>(rng.uniform_below(1024));
    auto t = static_cast<NodeIndex>(rng.uniform_below(1024));
    if (s == t) {
      continue;
    }
    const auto hops = route(overlay, none, s, t);
    ASSERT_TRUE(hops.has_value());
    EXPECT_LE(*hops, 20);
  }
}

TEST(DensityAnalysis, EffectiveBits) {
  EXPECT_EQ(effective_bits(2), 1);
  EXPECT_EQ(effective_bits(1024), 10);
  EXPECT_EQ(effective_bits(1000), 10);   // rounds
  EXPECT_EQ(effective_bits(1u << 20), 20);
  EXPECT_THROW(effective_bits(1), PreconditionError);
}

TEST(DensityAnalysis, SparseChordTracksDenseModelAtOccupancyScale) {
  // The density reduction: routability of 2^10 nodes scattered in a large
  // key space tracks the dense ring model at d' = 10, independent of the
  // key-space size.  The reduction is approximate, not a bound: sparse
  // Chord fails slightly *more* than the dense model at small q because
  // deep fingers collapse onto the same few successors (correlated
  // failures), so the assertion is a tolerance band, not an inequality.
  const auto ring = core::make_geometry(core::GeometryKind::kRing);
  for (double q : {0.1, 0.2}) {
    const double predicted =
        predict_sparse_routability(*ring, 1024, q).conditional_success;
    for (int bits : {14, 20}) {
      math::Rng rng(100 + bits);
      const SparseIdSpace space(bits, 1024, rng);
      const SparseChordOverlay overlay(space);
      const SparseFailure failures(space, q, rng);
      const auto estimate = estimate_routability(overlay, failures, 20000, rng);
      EXPECT_NEAR(estimate.routability(), predicted, 0.08)
          << "bits=" << bits << " q=" << q;
    }
  }
}

TEST(DensityAnalysis, SparseKademliaIndependentOfKeySpaceSize) {
  // Same N, very different key-space sizes: measured routability must
  // agree with itself across densities (the density reduction).
  const double q = 0.2;
  double reference = -1.0;
  for (int bits : {12, 18, 24}) {
    math::Rng rng(200 + bits);
    const SparseIdSpace space(bits, 1024, rng);
    const SparseKademliaOverlay overlay(space, rng);
    const SparseFailure failures(space, q, rng);
    const auto estimate = estimate_routability(overlay, failures, 20000, rng);
    if (reference < 0.0) {
      reference = estimate.routability();
    } else {
      EXPECT_NEAR(estimate.routability(), reference, 0.05)
          << "bits=" << bits;
    }
  }
}

TEST(SparseChord, FullyPopulatedNextHopMatchesDenseOracle) {
  // A fully populated sparse space degenerates to the identity mapping, so
  // sparse Chord must make exactly the dense deterministic-finger overlay's
  // forwarding decision for every ordered pair -- both rules pick the
  // farthest alive non-overshooting finger.
  const int d = 8;
  math::Rng sparse_rng(40);
  const SparseIdSpace sparse_space(d, 256, sparse_rng);
  const SparseChordOverlay sparse_overlay(sparse_space);
  const SparseFailure sparse_none(sparse_space, 0.0, sparse_rng);

  const sim::IdSpace dense_space(d);
  math::Rng dense_rng(41);
  const sim::ChordOverlay dense_overlay(dense_space, dense_rng);
  const sim::FailureScenario dense_none =
      sim::FailureScenario::all_alive(dense_space);

  math::Rng hop_rng(42);  // unused by chord forwarding
  for (NodeIndex v = 0; v < 256; ++v) {
    for (NodeIndex t = 0; t < 256; t += 5) {
      if (v == t) {
        continue;
      }
      const auto sparse_next = sparse_overlay.next_hop(v, t, sparse_none);
      const auto dense_next =
          dense_overlay.next_hop(v, t, dense_none, hop_rng);
      ASSERT_TRUE(sparse_next.has_value());
      ASSERT_TRUE(dense_next.has_value());
      EXPECT_EQ(sparse_space.id_of(*sparse_next), *dense_next)
          << "v=" << v << " t=" << t;
    }
  }
}

TEST(SparseChord, FullyPopulatedLinkSetsMatchDenseOracle) {
  // Same degenerate setting, structural form: the finger set of every node
  // equals the dense overlay's link set.
  const int d = 8;
  math::Rng sparse_rng(43);
  const SparseIdSpace sparse_space(d, 256, sparse_rng);
  const SparseChordOverlay sparse_overlay(sparse_space);
  const sim::IdSpace dense_space(d);
  math::Rng dense_rng(44);
  const sim::ChordOverlay dense_overlay(dense_space, dense_rng);
  for (NodeIndex v = 0; v < 256; ++v) {
    std::set<sim::NodeId> sparse_links;
    for (int i = 1; i <= d; ++i) {
      sparse_links.insert(sparse_space.id_of(sparse_overlay.finger(v, i)));
    }
    const auto dense = dense_overlay.links(v);
    const std::set<sim::NodeId> dense_links(dense.begin(), dense.end());
    EXPECT_EQ(sparse_links, dense_links) << "v=" << v;
  }
}

TEST(SparseKademlia, FullyPopulatedContactsSatisfyDenseClassConstraint) {
  // Fully populated, every bucket has candidates, so no bucket may be
  // empty, and each contact must satisfy the dense PrefixTable class
  // constraint: shares the first i-1 bits, differs at bit i.
  const int d = 8;
  math::Rng rng(45);
  const SparseIdSpace space(d, 256, rng);
  const SparseKademliaOverlay overlay(space, rng);
  for (NodeIndex v = 0; v < 256; ++v) {
    for (int i = 1; i <= d; ++i) {
      const auto entry = overlay.contact(v, i);
      ASSERT_TRUE(entry.has_value()) << "v=" << v << " bucket=" << i;
      const sim::NodeId id = space.id_of(*entry);
      EXPECT_TRUE(sim::shares_prefix(v, id, i - 1, d));
      EXPECT_NE(sim::bit_at_level(v, i, d), sim::bit_at_level(id, i, d));
    }
  }
}

TEST(SparseKademlia, FullyPopulatedRoutabilityMatchesDenseXorOracle) {
  // Statistical oracle: at full population sparse Kademlia and the dense
  // XOR overlay draw their tables from the same distribution (one uniform
  // class member per level) and forward with the same greedy-fallback rule,
  // so routability under the same q must agree to sampling + scenario
  // accuracy.
  const int d = 10;
  const double q = 0.3;
  math::Rng sparse_rng(46);
  const SparseIdSpace sparse_space(d, 1024, sparse_rng);
  const SparseKademliaOverlay sparse_overlay(sparse_space, sparse_rng);
  const SparseFailure sparse_failures(sparse_space, q, sparse_rng);
  math::Rng sparse_route_rng(47);
  const auto sparse_estimate = estimate_routability(
      sparse_overlay, sparse_failures, 20000, sparse_route_rng);

  const sim::IdSpace dense_space(d);
  math::Rng dense_rng(48);
  const sim::XorOverlay dense_overlay(dense_space, dense_rng);
  math::Rng dense_fail_rng(49);
  const sim::FailureScenario dense_failures(dense_space, q, dense_fail_rng);
  const math::Rng dense_route_rng(50);
  const auto dense_estimate = sim::estimate_routability_parallel(
      dense_overlay, dense_failures, {.pairs = 20000}, dense_route_rng);

  EXPECT_NEAR(sparse_estimate.routability(), dense_estimate.routability(),
              0.04);
  EXPECT_NEAR(sparse_estimate.mean_hops(), dense_estimate.hops.mean(), 0.3);
}

TEST(SparseSymphony, FullyPopulatedRoutabilityMatchesDenseSymphonyOracle) {
  // Same statistical oracle for Symphony: harmonic shortcut keys over a
  // fully populated ring are the dense overlay's construction.
  const int d = 9;
  const double q = 0.2;
  math::Rng sparse_rng(51);
  const SparseIdSpace sparse_space(d, 512, sparse_rng);
  const SparseSymphonyOverlay sparse_overlay(sparse_space, 1, 1, sparse_rng);
  const SparseFailure sparse_failures(sparse_space, q, sparse_rng);
  math::Rng sparse_route_rng(52);
  const auto sparse_estimate = estimate_routability(
      sparse_overlay, sparse_failures, 20000, sparse_route_rng);

  const sim::IdSpace dense_space(d);
  math::Rng dense_rng(53);
  const sim::SymphonyOverlay dense_overlay(dense_space, 1, 1, dense_rng);
  math::Rng dense_fail_rng(54);
  const sim::FailureScenario dense_failures(dense_space, q, dense_fail_rng);
  const math::Rng dense_route_rng(55);
  const auto dense_estimate = sim::estimate_routability_parallel(
      dense_overlay, dense_failures, {.pairs = 20000}, dense_route_rng);

  EXPECT_NEAR(sparse_estimate.routability(), dense_estimate.routability(),
              0.06);
}

TEST(DensityAnalysis, PredictionBoundsAndMonotonicity) {
  // Sanity bounds on the density-reduction prediction: a probability,
  // non-increasing in q, exactly the dense model at power-of-two N, and
  // independent of everything but N and q.
  for (const auto kind :
       {core::GeometryKind::kRing, core::GeometryKind::kXor}) {
    const auto geometry = core::make_geometry(kind);
    double previous = 1.1;
    for (const double q : {0.05, 0.2, 0.4, 0.6, 0.8}) {
      const auto point = predict_sparse_routability(*geometry, 1024, q);
      EXPECT_GE(point.routability, 0.0);
      EXPECT_LE(point.routability, 1.0);
      EXPECT_LE(point.routability, previous + 1e-12);
      EXPECT_NEAR(point.routability,
                  core::evaluate_routability(*geometry, 10, q).routability,
                  1e-15);
      previous = point.routability;
    }
  }
}

TEST(DensityAnalysis, EffectiveBitsRoundsToNearestPowerOfTwo) {
  EXPECT_EQ(effective_bits(768), 10);    // log2 = 9.58 -> 10
  EXPECT_EQ(effective_bits(1536), 11);   // log2 = 10.58 -> 11
  EXPECT_EQ(effective_bits(3u << 20), 22);  // log2 = 21.58 -> 22
}

TEST(SparseSymphony, ShortcutsPointToKeyOwners) {
  math::Rng rng(31);
  const SparseIdSpace space(18, 512, rng);
  const SparseSymphonyOverlay overlay(space, 1, 2, rng);
  EXPECT_EQ(overlay.near_neighbors(), 1);
  EXPECT_EQ(overlay.shortcuts(), 2);
  for (NodeIndex v = 0; v < space.node_count(); v += 19) {
    for (int j = 0; j < 2; ++j) {
      const NodeIndex link = overlay.shortcut(v, j);
      EXPECT_LT(link, space.node_count());
      EXPECT_NE(link, v);
    }
  }
}

TEST(SparseSymphony, FailureFreeRoutesArrive) {
  math::Rng rng(32);
  const SparseIdSpace space(18, 512, rng);
  const SparseSymphonyOverlay overlay(space, 1, 1, rng);
  const SparseFailure none(space, 0.0, rng);
  for (int i = 0; i < 300; ++i) {
    const auto s = static_cast<NodeIndex>(rng.uniform_below(512));
    auto t = static_cast<NodeIndex>(rng.uniform_below(512));
    if (s == t) {
      continue;
    }
    const auto hops = route(overlay, none, s, t);
    ASSERT_TRUE(hops.has_value());
    // O(log^2 N) expected; bound loosely by N.
    EXPECT_LT(*hops, 512);
  }
}

TEST(SparseSymphony, DegradesWithFailureAndRecoversWithLinks) {
  math::Rng rng(33);
  const SparseIdSpace space(18, 1024, rng);
  const double q = 0.2;
  const auto measure = [&](int kn, int ks, std::uint64_t seed) {
    math::Rng build_rng(seed);
    const SparseSymphonyOverlay overlay(space, kn, ks, build_rng);
    math::Rng fail_rng(seed + 1);
    const SparseFailure failures(space, q, fail_rng);
    math::Rng route_rng(seed + 2);
    return estimate_routability(overlay, failures, 8000, route_rng)
        .routability();
  };
  const double sparse_links = measure(1, 1, 100);
  const double dense_links = measure(3, 3, 200);
  EXPECT_LT(sparse_links, 0.9);  // minimal provisioning suffers at q = 0.2
  EXPECT_GT(dense_links, sparse_links + 0.1);
}

TEST(SparseRoute, DropsWhenIsolated) {
  // Kill everything except source and target: with all contacts dead the
  // route must drop, not loop.
  math::Rng rng(14);
  const SparseIdSpace space(14, 256, rng);
  const SparseKademliaOverlay overlay(space, rng);
  SparseFailure failures(space, 0.0, rng);
  // No kill API on SparseFailure: emulate by a q = 1-epsilon scenario
  // instead -- route between two alive nodes across a dead sea.
  math::Rng harsh_rng(15);
  const SparseFailure harsh(space, 0.98, harsh_rng);
  if (harsh.alive_count() >= 2) {
    const NodeIndex s = harsh.sample_alive(harsh_rng);
    NodeIndex t = harsh.sample_alive(harsh_rng);
    if (t != s) {
      const auto hops = route(overlay, harsh, s, t);
      // Either it found a miracle path or it dropped; both are legal --
      // the point is that it returns.
      SUCCEED();
      (void)hops;
    }
  }
}

}  // namespace
}  // namespace dht::sparse
