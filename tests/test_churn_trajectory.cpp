// The sharded churn trajectory engine (churn/trajectory.hpp): thread-count
// determinism of the per-round estimates, merge associativity across
// rounds, physical sanity of the evolved worlds, the SweepSpec grid API,
// and the headline bridge -- sharded churn routability matches the static
// parallel engine evaluated at q_eff.
#include <cmath>

#include <gtest/gtest.h>

#include "churn/trajectory.hpp"
#include "common/check.hpp"
#include "math/rng.hpp"
#include "sim/parallel_monte_carlo.hpp"
#include "sim/xor_overlay.hpp"

namespace dht::churn {
namespace {

void expect_identical(const sim::RoutabilityEstimate& a,
                      const sim::RoutabilityEstimate& b, const char* what) {
  EXPECT_EQ(a.routed.successes, b.routed.successes) << what;
  EXPECT_EQ(a.routed.trials, b.routed.trials) << what;
  EXPECT_EQ(a.hops.count(), b.hops.count()) << what;
  EXPECT_EQ(a.hops.sum(), b.hops.sum()) << what;
  EXPECT_EQ(a.hops.sum_squares(), b.hops.sum_squares()) << what;
  EXPECT_EQ(a.hops.min(), b.hops.min()) << what;
  EXPECT_EQ(a.hops.max(), b.hops.max()) << what;
  EXPECT_EQ(a.hop_limit_hits(), b.hop_limit_hits()) << what;
}

constexpr TrajectoryGeometry kAllGeometries[] = {
    TrajectoryGeometry::kXor, TrajectoryGeometry::kTree,
    TrajectoryGeometry::kRing};

TEST(ChurnTrajectory, BitIdenticalAcrossThreadCounts) {
  const sim::IdSpace space(9);
  const ChurnParams params{.death_per_round = 0.03,
                           .rebirth_per_round = 0.07,
                           .refresh_interval = 6};
  for (const TrajectoryGeometry geometry : kAllGeometries) {
    for (const double rho : {0.0, 0.5}) {
      const TrajectoryOptions base{.warmup_rounds = 10,
                                   .measured_rounds = 4,
                                   .pairs_per_round = 400,
                                   .shards = 8,
                                   .repair_probability = rho};
      const math::Rng rng(17);
      TrajectoryResult reference;
      bool first = true;
      for (const unsigned threads : {1u, 2u, 8u}) {
        TrajectoryOptions options = base;
        options.threads = threads;
        const TrajectoryResult result =
            run_churn_trajectory(geometry, space, params, options, rng);
        ASSERT_EQ(result.per_round.size(), 4u);
        if (first) {
          reference = result;
          first = false;
          EXPECT_GT(result.overall.routed.trials, 0u) << to_string(geometry);
        } else {
          for (std::size_t r = 0; r < result.per_round.size(); ++r) {
            expect_identical(reference.per_round[r], result.per_round[r],
                             to_string(geometry));
          }
          expect_identical(reference.overall, result.overall,
                           to_string(geometry));
          EXPECT_EQ(reference.mean_alive_fraction,
                    result.mean_alive_fraction);
          EXPECT_EQ(reference.mean_entry_age, result.mean_entry_age);
        }
      }
    }
  }
}

TEST(ChurnTrajectory, RepeatedCallsAreIdentical) {
  // The engine only forks the caller's rng, so re-running with the same
  // generator must reproduce the whole trajectory exactly.
  const sim::IdSpace space(9);
  const ChurnParams params{.death_per_round = 0.02,
                           .rebirth_per_round = 0.08,
                           .refresh_interval = 5};
  const TrajectoryOptions options{.warmup_rounds = 8,
                                  .measured_rounds = 3,
                                  .pairs_per_round = 500,
                                  .shards = 4};
  const math::Rng rng(23);
  const auto a = run_churn_trajectory(TrajectoryGeometry::kXor, space, params,
                                      options, rng);
  const auto b = run_churn_trajectory(TrajectoryGeometry::kXor, space, params,
                                      options, rng);
  for (std::size_t r = 0; r < a.per_round.size(); ++r) {
    expect_identical(a.per_round[r], b.per_round[r], "repeat");
  }
  expect_identical(a.overall, b.overall, "repeat");
}

TEST(ChurnTrajectory, OverallIsAssociativeMergeOfRounds) {
  // The pooled estimate must equal merging the per-round estimates in round
  // order, and grouping the merges differently must not change a single
  // counter (exact integer state).
  const sim::IdSpace space(9);
  const ChurnParams params{.death_per_round = 0.04,
                           .rebirth_per_round = 0.06,
                           .refresh_interval = 4};
  const TrajectoryOptions options{.warmup_rounds = 6,
                                  .measured_rounds = 5,
                                  .pairs_per_round = 300,
                                  .shards = 4};
  const math::Rng rng(29);
  const auto result = run_churn_trajectory(TrajectoryGeometry::kRing, space,
                                           params, options, rng);
  ASSERT_EQ(result.per_round.size(), 5u);

  sim::RoutabilityEstimate left_fold;
  for (const auto& round : result.per_round) {
    left_fold.merge(round);
  }
  expect_identical(result.overall, left_fold, "left-fold");

  // ((r0+r1) + (r2+r3+r4)) -- a different association of the same rounds.
  sim::RoutabilityEstimate head;
  head.merge(result.per_round[0]);
  head.merge(result.per_round[1]);
  sim::RoutabilityEstimate tail;
  tail.merge(result.per_round[2]);
  tail.merge(result.per_round[3]);
  tail.merge(result.per_round[4]);
  sim::RoutabilityEstimate grouped;
  grouped.merge(head);
  grouped.merge(tail);
  expect_identical(result.overall, grouped, "grouped");
}

TEST(ChurnTrajectory, WorldsTrackStationaryAvailabilityAndUniformAges) {
  // a = 0.8; entry ages should hover near (R-1)/2 when lifetimes >> R.
  const sim::IdSpace space(10);
  const ChurnParams params{.death_per_round = 0.005,
                           .rebirth_per_round = 0.02,
                           .refresh_interval = 10};
  const TrajectoryOptions options{.warmup_rounds = 50,
                                  .measured_rounds = 4,
                                  .pairs_per_round = 200,
                                  .shards = 8};
  const math::Rng rng(31);
  const auto result = run_churn_trajectory(TrajectoryGeometry::kXor, space,
                                           params, options, rng);
  EXPECT_NEAR(result.mean_alive_fraction, 0.8, 0.03);
  EXPECT_NEAR(result.mean_entry_age, 4.5, 1.0);
}

TEST(ChurnTrajectory, PerfectStabilityRoutesEverything) {
  // Tiny churn, instant refresh: routability ~ 1 for every geometry.
  const sim::IdSpace space(9);
  const ChurnParams params{.death_per_round = 1e-6,
                           .rebirth_per_round = 0.5,
                           .refresh_interval = 1};
  const TrajectoryOptions options{.warmup_rounds = 5,
                                  .measured_rounds = 2,
                                  .pairs_per_round = 1000,
                                  .shards = 4};
  for (const TrajectoryGeometry geometry : kAllGeometries) {
    const math::Rng rng(37);
    const auto result =
        run_churn_trajectory(geometry, space, params, options, rng);
    EXPECT_GT(result.overall.routability(), 0.999) << to_string(geometry);
    EXPECT_EQ(result.overall.hop_limit_hits(), 0u) << to_string(geometry);
  }
}

TEST(ChurnTrajectory, EagerRepairImprovesRoutability) {
  // With a long refresh interval, the rho channel is the only thing fixing
  // dead entries between refreshes; cranking it must help.
  const sim::IdSpace space(10);
  const ChurnParams params{.death_per_round = 0.04,
                           .rebirth_per_round = 0.06,
                           .refresh_interval = 30};
  TrajectoryOptions options{.warmup_rounds = 60,
                            .measured_rounds = 4,
                            .pairs_per_round = 2000,
                            .shards = 8};
  const math::Rng rng(41);
  options.repair_probability = 0.0;
  const double lazy = run_churn_trajectory(TrajectoryGeometry::kXor, space,
                                           params, options, rng)
                          .overall.routability();
  options.repair_probability = 0.9;
  const double eager = run_churn_trajectory(TrajectoryGeometry::kXor, space,
                                            params, options, rng)
                           .overall.routability();
  EXPECT_GT(eager, lazy + 0.02);
  EXPECT_GT(eager, 0.97);
}

TEST(ChurnTrajectory, MatchesStaticParallelEngineAtEffectiveQ) {
  // The acceptance claim: the sharded dynamic XOR system's long-run
  // routability matches the static parallel engine evaluated at q_eff
  // (ext_churn's claim, now asserted under ctest).  Tolerance covers
  // Monte-Carlo noise on both sides plus the q_eff derivation's
  // uniform-age approximation.
  const sim::IdSpace space(11);
  const ChurnParams params{.death_per_round = 0.02,
                           .rebirth_per_round = 0.08,
                           .refresh_interval = 10};
  const TrajectoryOptions options{.warmup_rounds = 50,
                                  .measured_rounds = 6,
                                  .pairs_per_round = 1500,
                                  .shards = 8};
  const math::Rng rng(43);
  const auto dynamic = run_churn_trajectory(TrajectoryGeometry::kXor, space,
                                            params, options, rng);

  const double q_eff = effective_q(params);
  math::Rng build_rng(44);
  const sim::XorOverlay overlay(space, build_rng);
  math::Rng fail_rng(45);
  const sim::FailureScenario failures(space, q_eff, fail_rng);
  const math::Rng route_rng(46);
  const auto static_estimate = sim::estimate_routability_parallel(
      overlay, failures, {.pairs = 60000}, route_rng);

  EXPECT_NEAR(dynamic.overall.routability(), static_estimate.routability(),
              0.04)
      << "q_eff=" << q_eff;
  // Longer refresh lag must sit strictly below the instant-refresh regime.
  EXPECT_LT(dynamic.overall.routability(), 0.9999);
}

TEST(ChurnTrajectory, SweepCoversGridInOrderAndIsReproducible) {
  SweepSpec spec;
  spec.geometry = TrajectoryGeometry::kXor;
  spec.bits = {8, 9};
  spec.churn = {ChurnParams{.death_per_round = 0.02,
                            .rebirth_per_round = 0.08,
                            .refresh_interval = 4},
                ChurnParams{.death_per_round = 0.02,
                            .rebirth_per_round = 0.08,
                            .refresh_interval = 16}};
  spec.repair = {0.0, 0.8};
  spec.options = TrajectoryOptions{.warmup_rounds = 8,
                                   .measured_rounds = 2,
                                   .pairs_per_round = 200,
                                   .shards = 2};
  spec.seed = 7;
  const auto points = run_churn_sweep(spec);
  ASSERT_EQ(points.size(), 8u);  // 2 bits x 2 churn x 2 repair
  // Nesting order: bits outermost, repair innermost.
  EXPECT_EQ(points[0].bits, 8);
  EXPECT_EQ(points[0].params.refresh_interval, 4);
  EXPECT_EQ(points[0].repair_probability, 0.0);
  EXPECT_EQ(points[1].repair_probability, 0.8);
  EXPECT_EQ(points[2].params.refresh_interval, 16);
  EXPECT_EQ(points[4].bits, 9);
  for (const auto& point : points) {
    EXPECT_NEAR(point.q_eff, effective_q(point.params), 1e-15);
    EXPECT_EQ(point.result.per_round.size(), 2u);
    EXPECT_GT(point.result.overall.routed.trials, 0u);
  }
  // Rerunning the sweep reproduces every point bit for bit.
  const auto again = run_churn_sweep(spec);
  ASSERT_EQ(again.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_identical(points[i].result.overall, again[i].result.overall,
                     "sweep-repeat");
  }
}

TEST(ChurnTrajectory, RejectsDegenerateInputs) {
  const sim::IdSpace space(6);
  const ChurnParams params{};
  const math::Rng rng(51);
  EXPECT_THROW(run_churn_trajectory(TrajectoryGeometry::kXor, space, params,
                                    {.measured_rounds = 0}, rng),
               PreconditionError);
  EXPECT_THROW(run_churn_trajectory(TrajectoryGeometry::kXor, space, params,
                                    {.pairs_per_round = 0}, rng),
               PreconditionError);
  EXPECT_THROW(run_churn_trajectory(TrajectoryGeometry::kXor, space, params,
                                    {.warmup_rounds = -1}, rng),
               PreconditionError);
  EXPECT_THROW(run_churn_trajectory(TrajectoryGeometry::kXor, space, params,
                                    {.repair_probability = 1.5}, rng),
               PreconditionError);
  EXPECT_THROW(run_churn_trajectory(
                   TrajectoryGeometry::kXor, space,
                   ChurnParams{.death_per_round = 0.0}, {}, rng),
               PreconditionError);
  // In-flight measurement is a sparse-churn mode; the dense engine's
  // fixed-roster worlds freeze between rounds and must reject it.
  EXPECT_THROW(run_churn_trajectory(TrajectoryGeometry::kXor, space, params,
                                    {.inflight = true}, rng),
               PreconditionError);
  SweepSpec empty;
  empty.bits.clear();
  EXPECT_THROW(run_churn_sweep(empty), PreconditionError);
}

TEST(ChurnTrajectory, GeometryNamesRoundTrip) {
  TrajectoryGeometry geometry = TrajectoryGeometry::kXor;
  for (const char* name : {"xor", "tree", "ring"}) {
    ASSERT_TRUE(trajectory_geometry_from_name(name, geometry)) << name;
    EXPECT_STREQ(to_string(geometry), name);
  }
  EXPECT_FALSE(trajectory_geometry_from_name("hypercube", geometry));
  EXPECT_FALSE(trajectory_geometry_from_name("", geometry));
}

}  // namespace
}  // namespace dht::churn
