// Overflow regression for sim::HopStats (the satellite bugfix of the
// heavy-traffic PR): sum_sq_ used to be u64, which wraps after only ~2^12
// worst-case routes (each route contributes up to (2^26)^2 = 2^52 to the
// sum of squares) -- far below the documented > 2^38 linear-sum bound.
// The accumulator now carries unsigned __int128; these tests pin the exact
// wide arithmetic and the merge semantics in the regime where a u64 would
// have wrapped.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "sim/hop_stats.hpp"

namespace dht::sim {
namespace {

// The worst-case per-route hop count: populations are < 2^26 nodes and a
// (cycle-free) route visits each at most once.
constexpr std::uint64_t kWorstHops = (std::uint64_t{1} << 26) - 1;

TEST(HopStats, SumOfSquaresSurvivesWorstCaseRoutes) {
  // 5000 worst-case routes push the sum of squares past 2^64 (each adds
  // ~2^52, and 5000 > 2^12); a u64 accumulator would have wrapped.
  constexpr std::uint64_t kRoutes = 5000;
  HopStats stats;
  for (std::uint64_t i = 0; i < kRoutes; ++i) {
    stats.add(kWorstHops);
  }
  const unsigned __int128 expected =
      static_cast<unsigned __int128>(kRoutes) *
      (static_cast<unsigned __int128>(kWorstHops) * kWorstHops);
  EXPECT_EQ(stats.sum_squares(), expected);
  EXPECT_GT(expected, static_cast<unsigned __int128>(
                          std::numeric_limits<std::uint64_t>::max()));
  EXPECT_EQ(stats.count(), kRoutes);
  EXPECT_EQ(stats.sum(), kRoutes * kWorstHops);
  // All samples equal: the variance must come out exactly zero.  With a
  // wrapped sum of squares the centered term would be wildly negative
  // (clamped) or positive garbage -- either way not this clean zero at
  // this scale.
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), kWorstHops);
  EXPECT_EQ(stats.max(), kWorstHops);
}

TEST(HopStats, MergeIsExactPastU64SumOfSquares) {
  // Merging two wrapped-regime halves must equal the single-pass
  // accumulator bit for bit -- the property the sharded engines rely on.
  HopStats whole;
  HopStats left;
  HopStats right;
  for (std::uint64_t i = 0; i < 6000; ++i) {
    const std::uint64_t hops = (i % 2 == 0) ? kWorstHops : kWorstHops - 7;
    whole.add(hops);
    (i < 3000 ? left : right).add(hops);
  }
  left.merge(right);
  EXPECT_TRUE(left == whole);
  EXPECT_EQ(left.sum_squares(), whole.sum_squares());
}

TEST(HopStats, VarianceMatchesClosedFormInWideRegime) {
  // Two-point distribution at worst-case magnitudes: variance from the
  // exact __int128 sums must match the closed form to double precision.
  HopStats stats;
  const std::uint64_t a = kWorstHops;
  const std::uint64_t b = kWorstHops - 1000;
  for (int i = 0; i < 4000; ++i) {
    stats.add(i % 2 == 0 ? a : b);
  }
  const double delta = static_cast<double>(a - b);
  // Unbiased sample variance of a balanced two-point sample:
  // (delta/2)^2 * n / (n - 1).  The integer sums are exact, but variance()
  // converts them to double and cancels two ~2^64 terms, so the result
  // carries a relative error of order ulp(2^64)/centered ~ 1e-5 -- that is
  // the honest precision at this magnitude, not a bug.
  const double expected =
      (delta / 2.0) * (delta / 2.0) * 4000.0 / 3999.0;
  EXPECT_NEAR(stats.variance(), expected, expected * 1e-4);
}

}  // namespace
}  // namespace dht::sim
