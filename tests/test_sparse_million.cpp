// Million-node smoke test for the sparse parallel engine (labeled `slow`,
// excluded from the sanitizer CI job): N = 10^6 nodes scattered in a 2^32
// key space construct, route through the flattened kernels, and stay
// bit-identical across thread counts.  This is the regime the density
// reduction d' = log2 N targets -- real Kademlia-type deployments -- and
// the scale the virtual single-threaded estimator could not reach.
#include <gtest/gtest.h>

#include "math/rng.hpp"
#include "sparse/density_analysis.hpp"
#include "sparse/flat_sparse.hpp"
#include "sparse/sparse_chord.hpp"
#include "sparse/sparse_kademlia.hpp"

namespace dht::sparse {
namespace {

constexpr std::uint64_t kMillion = 1000000;
constexpr int kBits = 32;

TEST(SparseMillion, KademliaMillionNodesRoutesAndIsThreadDeterministic) {
  math::Rng rng(401);
  const SparseIdSpace space(kBits, kMillion, rng);
  ASSERT_EQ(space.node_count(), kMillion);
  const SparseKademliaOverlay overlay(space, rng);
  math::Rng fail_rng(402);
  const SparseFailure failures(space, 0.1, fail_rng);
  const math::Rng route_rng(403);

  const auto one = estimate_routability_parallel(
      overlay, failures, {.pairs = 20000, .threads = 1}, route_rng);
  const auto four = estimate_routability_parallel(
      overlay, failures, {.pairs = 20000, .threads = 4}, route_rng);
  EXPECT_EQ(one.attempts, four.attempts);
  EXPECT_EQ(one.successes(), four.successes());
  EXPECT_EQ(one.hops.sum(), four.hops.sum());
  EXPECT_EQ(one.hops.sum_squares(), four.hops.sum_squares());
  EXPECT_EQ(one.hop_limit_hits(), four.hop_limit_hits());

  // Sanity at q = 0.1: routability far above the knee, hop counts at the
  // occupancy scale d' = log2 N ~ 20, not the key-space scale 32.
  EXPECT_GT(one.routability(), 0.9);
  EXPECT_EQ(one.hop_limit_hits(), 0u);
  EXPECT_LT(one.mean_hops(), 2.0 * effective_bits(kMillion));
}

TEST(SparseMillion, ChordMillionNodesFailureFree) {
  math::Rng rng(411);
  const SparseIdSpace space(kBits, kMillion, rng);
  const SparseChordOverlay overlay(space);
  const SparseFailure none(space, 0.0, rng);
  const math::Rng route_rng(412);
  const auto estimate = estimate_routability_parallel(
      overlay, none, {.pairs = 10000, .threads = 4}, route_rng);
  // Failure-free greedy Chord always arrives, in O(log N) hops.
  EXPECT_EQ(estimate.routability(), 1.0);
  EXPECT_LE(estimate.hops.max(), static_cast<std::uint64_t>(kBits));
}

}  // namespace
}  // namespace dht::sparse
