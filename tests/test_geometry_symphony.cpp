#include "core/symphony_geometry.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/ring_geometry.hpp"

namespace dht::core {
namespace {

/// Direct evaluation of Eq. 7:
/// Q = q^{kn+ks} sum_{j=0}^{ceil(d/(1-q))} (1 - ks/d - q^{kn+ks})^j.
double eq7_direct(double q, int d, int kn, int ks) {
  const double y = std::pow(q, kn + ks);
  const double z = 1.0 - static_cast<double>(ks) / d - y;
  const long long cap =
      static_cast<long long>(std::ceil(d / (1.0 - q)));
  double total = 0.0;
  double power = 1.0;
  for (long long j = 0; j <= cap; ++j) {
    total += power;
    power *= z;
  }
  return y * total;
}

TEST(SymphonyGeometry, Identity) {
  const SymphonyGeometry sym;
  EXPECT_EQ(sym.kind(), GeometryKind::kSymphony);
  EXPECT_EQ(sym.name(), "symphony");
  EXPECT_EQ(sym.exactness(), Exactness::kApproximate);
  EXPECT_EQ(sym.scalability_class(), ScalabilityClass::kUnscalable);
  EXPECT_EQ(sym.params().near_neighbors, 1);
  EXPECT_EQ(sym.params().shortcuts, 1);
}

TEST(SymphonyGeometry, DistanceCountMatchesRing) {
  const SymphonyGeometry sym;
  const RingGeometry ring;
  for (int d : {4, 12, 20}) {
    for (int h = 1; h <= d; ++h) {
      EXPECT_EQ(sym.distance_count(h, d).log(),
                ring.distance_count(h, d).log());
    }
  }
}

TEST(SymphonyGeometry, PhaseFailureMatchesDirectEq7) {
  for (const SymphonyParams params :
       {SymphonyParams{1, 1}, SymphonyParams{2, 1}, SymphonyParams{1, 4},
        SymphonyParams{3, 3}}) {
    const SymphonyGeometry sym(params);
    for (double q : {0.05, 0.2, 0.5, 0.8}) {
      for (int d : {16, 64, 128}) {
        EXPECT_NEAR(
            sym.phase_failure(1, q, d),
            eq7_direct(q, d, params.near_neighbors, params.shortcuts),
            1e-11)
            << "q=" << q << " d=" << d;
      }
    }
  }
}

TEST(SymphonyGeometry, PhaseFailureIsConstantInM) {
  const SymphonyGeometry sym;
  for (double q : {0.1, 0.5}) {
    const double first = sym.phase_failure(1, q, 32);
    for (int m = 2; m <= 32; ++m) {
      EXPECT_EQ(sym.phase_failure(m, q, 32), first) << "m=" << m;
    }
  }
}

TEST(SymphonyGeometry, MoreLinksReduceFailure) {
  // The paper's provisioning remark: a designer can buy routability with
  // kn/ks.  Q must be monotone non-increasing in both parameters.
  const double q = 0.3;
  const int d = 64;
  double previous = 1.0;
  for (int kn = 1; kn <= 6; ++kn) {
    const SymphonyGeometry sym({kn, 1});
    const double failure = sym.phase_failure(1, q, d);
    EXPECT_LT(failure, previous) << "kn=" << kn;
    previous = failure;
  }
  previous = 1.0;
  for (int ks = 1; ks <= 6; ++ks) {
    const SymphonyGeometry sym({1, ks});
    const double failure = sym.phase_failure(1, q, d);
    EXPECT_LT(failure, previous) << "ks=" << ks;
    previous = failure;
  }
}

TEST(SymphonyGeometry, QZeroIsPerfect) {
  const SymphonyGeometry sym;
  EXPECT_EQ(sym.phase_failure(1, 0.0, 16), 0.0);
  EXPECT_EQ(sym.success_probability(16, 0.0, 16), 1.0);
}

TEST(SymphonyGeometry, LargeDLimitIsSevere) {
  // As d grows with kn = ks = 1 the phase-advance probability ks/d
  // vanishes, so Q approaches 1 x (the race y/(x+y) with the hop cap):
  // Q(d = 4096, q = 0.1) must be large (> 0.8), the driver of Fig. 7(a)'s
  // step-function behavior.
  const SymphonyGeometry sym;
  EXPECT_GT(sym.phase_failure(1, 0.1, 4096), 0.8);
}

TEST(SymphonyGeometry, Fig7OperatingPointKnownValue) {
  // d = 16, q = 0.1, kn = ks = 1 (hand-computed from Eq. 7):
  // y = 0.01, x = 0.0625, z = 0.9275, cap = ceil(16/0.9) = 18,
  // Q = 0.01 * (1 - z^19)/(1 - z) = 0.104969...
  const SymphonyGeometry sym;
  const double y = 0.01;
  const double z = 1.0 - 0.0625 - y;
  const double expected = y * (1.0 - std::pow(z, 19)) / (1.0 - z);
  EXPECT_NEAR(sym.phase_failure(1, 0.1, 16), expected, 1e-12);
  EXPECT_NEAR(sym.phase_failure(1, 0.1, 16), 0.1050, 5e-4);
}

TEST(SymphonyGeometry, OutOfDomainClampsToCertainFailure) {
  // d = 2, q = 0.9, kn = ks = 1: ks/d + q^2 = 0.5 + 0.81 > 1; the clamped
  // suboptimal probability collapses the sum to y * 1 <= 1.
  const SymphonyGeometry sym;
  const double failure = sym.phase_failure(1, 0.9, 2);
  EXPECT_GE(failure, 0.0);
  EXPECT_LE(failure, 1.0);
}

TEST(SymphonyGeometry, RejectsBadArguments) {
  EXPECT_THROW(SymphonyGeometry({0, 1}), PreconditionError);
  EXPECT_THROW(SymphonyGeometry({1, 0}), PreconditionError);
  const SymphonyGeometry sym;
  EXPECT_THROW(sym.phase_failure(1, 1.0, 16), PreconditionError);
  EXPECT_THROW(sym.phase_failure(0, 0.5, 16), PreconditionError);
  EXPECT_THROW(sym.phase_failure(1, 0.5, 0), PreconditionError);
}

}  // namespace
}  // namespace dht::core
