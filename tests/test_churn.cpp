// The churn extension: lifecycle model, the q_eff bridge, and the dynamic
// simulator's agreement with the static analysis (the paper's Section 1
// open question for this churn model).
#include <cmath>

#include <gtest/gtest.h>

#include "churn/churn.hpp"
#include "churn/trajectory.hpp"
#include "common/check.hpp"
#include "core/registry.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"

namespace dht::churn {
namespace {

TEST(ChurnModel, AvailabilityIsStationaryDistribution) {
  EXPECT_NEAR(availability({.death_per_round = 0.01,
                            .rebirth_per_round = 0.04,
                            .refresh_interval = 5}),
              0.8, 1e-12);
  EXPECT_NEAR(availability({.death_per_round = 0.05,
                            .rebirth_per_round = 0.05,
                            .refresh_interval = 5}),
              0.5, 1e-12);
}

TEST(ChurnModel, DeadGivenAgeGrowsToStationary) {
  const ChurnParams params{.death_per_round = 0.02,
                           .rebirth_per_round = 0.08,
                           .refresh_interval = 10};
  EXPECT_EQ(dead_given_age(params, 0), 0.0);  // just refreshed to alive
  double previous = 0.0;
  for (int age = 1; age <= 200; age += 10) {
    const double p = dead_given_age(params, age);
    EXPECT_GT(p, previous);
    previous = p;
  }
  // Long ages approach the stationary dead probability 1 - a = 0.2.
  EXPECT_NEAR(dead_given_age(params, 2000), 0.2, 1e-9);
}

TEST(ChurnModel, EffectiveQLimits) {
  ChurnParams params{.death_per_round = 0.02,
                     .rebirth_per_round = 0.08,
                     .refresh_interval = 1};
  // Continuous refresh: entries are always fresh, q_eff = dead_given_age(0).
  EXPECT_NEAR(effective_q(params), 0.0, 1e-12);
  // Rare refresh: q_eff approaches the stationary dead probability.
  params.refresh_interval = 100000;
  EXPECT_NEAR(effective_q(params), 0.2, 1e-3);
}

TEST(ChurnModel, EffectiveQMonotoneInRefreshLag) {
  ChurnParams params{.death_per_round = 0.02,
                     .rebirth_per_round = 0.08,
                     .refresh_interval = 1};
  double previous = -1.0;
  for (int r : {1, 2, 5, 10, 30, 100, 1000}) {
    params.refresh_interval = r;
    const double q = effective_q(params);
    EXPECT_GT(q, previous) << "R=" << r;
    EXPECT_LE(q, 0.2 + 1e-12);
    previous = q;
  }
}

TEST(ChurnModel, EffectiveQMatchesDirectAverage) {
  const ChurnParams params{.death_per_round = 0.03,
                           .rebirth_per_round = 0.07,
                           .refresh_interval = 17};
  double direct = 0.0;
  for (int age = 0; age < params.refresh_interval; ++age) {
    direct += dead_given_age(params, age);
  }
  direct /= params.refresh_interval;
  EXPECT_NEAR(effective_q(params), direct, 1e-12);
}

TEST(ChurnModel, GoldenClosedFormValues) {
  // pd = 0.1, pr = 0.3: a = 0.75, lambda = 0.6 -- every quantity below is
  // exact in closed form, so the tolerances are float-roundoff only.
  const ChurnParams params{.death_per_round = 0.1,
                           .rebirth_per_round = 0.3,
                           .refresh_interval = 5};
  EXPECT_DOUBLE_EQ(availability(params), 0.75);
  EXPECT_DOUBLE_EQ(dead_given_age(params, 0), 0.0);
  EXPECT_NEAR(dead_given_age(params, 1), 0.25 * (1.0 - 0.6), 1e-15);   // 0.1
  EXPECT_NEAR(dead_given_age(params, 2), 0.25 * (1.0 - 0.36), 1e-15);  // 0.16
  EXPECT_NEAR(dead_given_age(params, 3), 0.25 * (1.0 - 0.216), 1e-15);
  // q_eff(5) = 0.25 * (1 - (1 - 0.6^5) / (5 * 0.4)) = 0.13472 exactly.
  EXPECT_NEAR(effective_q(params), 0.13472, 1e-12);

  // pd = 0.2, pr = 0.6, R = 2: lambda = 0.2, a = 0.75;
  // q_eff = 0.25 * (1 - 0.96 / 1.6) = 0.1 exactly.
  EXPECT_NEAR(effective_q({.death_per_round = 0.2,
                           .rebirth_per_round = 0.6,
                           .refresh_interval = 2}),
              0.1, 1e-12);
}

TEST(ChurnModel, GoldenEdgeCaseRefreshEveryRound) {
  // R = 1: the age average covers only age 0, so q_eff = 0 regardless of
  // the lifecycle rates.
  for (const double pd : {0.01, 0.3, 0.5}) {
    EXPECT_DOUBLE_EQ(effective_q({.death_per_round = pd,
                                  .rebirth_per_round = 0.5,
                                  .refresh_interval = 1}),
                     0.0)
        << "pd=" << pd;
  }
}

TEST(ChurnModel, GoldenEdgeCaseMemorylessChain) {
  // pd + pr = 1 (lambda = 0): the chain forgets its state in one round, so
  // every entry of age >= 1 is dead with exactly the stationary probability
  // 1 - a, and q_eff = (1 - a)(1 - 1/R).
  const ChurnParams params{.death_per_round = 0.5,
                           .rebirth_per_round = 0.5,
                           .refresh_interval = 4};
  EXPECT_DOUBLE_EQ(availability(params), 0.5);
  EXPECT_DOUBLE_EQ(dead_given_age(params, 1), 0.5);
  EXPECT_DOUBLE_EQ(dead_given_age(params, 7), 0.5);
  EXPECT_NEAR(effective_q(params), 0.5 * 0.75, 1e-15);  // 0.375

  // Asymmetric memoryless chain: pd = 0.6, pr = 0.4 -> a = 0.4.
  EXPECT_NEAR(effective_q({.death_per_round = 0.6,
                           .rebirth_per_round = 0.4,
                           .refresh_interval = 10}),
              0.6 * 0.9, 1e-15);  // 0.54
}

TEST(ChurnModel, GoldenEdgeCaseNearZeroLambda) {
  // lambda -> 0+ continuously approaches the memoryless closed form.
  const ChurnParams params{.death_per_round = 0.4995,
                           .rebirth_per_round = 0.4995,
                           .refresh_interval = 4};  // lambda = 0.001
  EXPECT_NEAR(effective_q(params), 0.5 * 0.75, 2e-4);
  EXPECT_NEAR(dead_given_age(params, 1), 0.5 * (1.0 - 0.001), 1e-12);
}

TEST(ChurnModel, GoldenEdgeCaseSlowChurn) {
  // lambda -> 1 (pd + pr -> 0): first-order expansion gives
  // dead_given_age(k) ~ (1-a) k (pd + pr) = k pd, and the age average
  // gives q_eff ~ pd (R-1)/2.
  const ChurnParams params{.death_per_round = 1e-5,
                           .rebirth_per_round = 4e-5,
                           .refresh_interval = 11};
  EXPECT_NEAR(dead_given_age(params, 3), 3e-5, 1e-8);
  EXPECT_NEAR(effective_q(params), 1e-5 * 5.0, 1e-8);
}

TEST(ChurnModel, GoldenNoReturnEffectiveQ) {
  // departed_given_age drops the rebirth term: 1 - (1-pd)^k exactly.
  const ChurnParams params{.death_per_round = 0.1,
                           .rebirth_per_round = 0.3,
                           .refresh_interval = 5};
  EXPECT_DOUBLE_EQ(departed_given_age(params, 0), 0.0);
  EXPECT_NEAR(departed_given_age(params, 1), 0.1, 1e-15);
  EXPECT_NEAR(departed_given_age(params, 2), 0.19, 1e-15);
  EXPECT_NEAR(departed_given_age(params, 3), 0.271, 1e-15);
  // q_nr(R) = 1 - (1 - (1-pd)^R) / (R pd); pd = 0.5, R = 4:
  // 1 - (1 - 0.0625) / 2 = 0.53125 exactly.
  EXPECT_NEAR(effective_q_no_return({.death_per_round = 0.5,
                                     .rebirth_per_round = 0.5,
                                     .refresh_interval = 4}),
              0.53125, 1e-15);
  // R = 1: fresh entries every round, no decay window.
  EXPECT_DOUBLE_EQ(effective_q_no_return({.death_per_round = 0.3,
                                          .rebirth_per_round = 0.2,
                                          .refresh_interval = 1}),
                   0.0);
  // Without rebirths stale entries only decay: q_nr >= q_eff -- equal up
  // to R = 2 (entries of age <= 1 leave no time for a rebirth to matter:
  // both give pd/2 at R = 2), strictly above for R >= 3 -- and q_nr is
  // monotone in the refresh lag with limit 1, not 1 - a.
  double previous = -1.0;
  for (int r : {1, 2, 5, 20, 100, 5000}) {
    const ChurnParams point{.death_per_round = 0.02,
                            .rebirth_per_round = 0.08,
                            .refresh_interval = r};
    const double q_nr = effective_q_no_return(point);
    EXPECT_GE(q_nr, effective_q(point) - 1e-12) << "R=" << r;
    if (r > 2) {
      EXPECT_GT(q_nr, effective_q(point)) << "R=" << r;
    }
    EXPECT_GT(q_nr, previous) << "R=" << r;
    EXPECT_LE(q_nr, 1.0);
    previous = q_nr;
  }
  EXPECT_NEAR(previous, 1.0, 0.02);  // R = 5000 approaches full decay
}

TEST(ChurnWorld, MeasureWithFewerThanTwoAliveNodesIsEmpty) {
  // The empty-estimate contract (regression: downstream confidence95 used
  // to trip Wilson's trials > 0 precondition on a collapsed world).  The
  // sparse churn engine honors the same contract (test_sparse_churn).
  const sim::IdSpace space(3);
  const ChurnParams params{.death_per_round = 0.99,
                           .rebirth_per_round = 0.005,
                           .refresh_interval = 3};
  ChurnWorld world(TrajectoryGeometry::kXor, space, params,
                   /*repair_probability=*/0.0, /*max_hops=*/0, math::Rng(71));
  bool collapsed = world.alive_count() < 2;
  for (int round = 0; round < 300 && !collapsed; ++round) {
    world.step();
    collapsed = world.alive_count() < 2;
  }
  ASSERT_TRUE(collapsed) << "population never dropped below 2";
  const sim::RoutabilityEstimate estimate = world.measure(100);
  EXPECT_EQ(estimate.routed.trials, 0u);
  EXPECT_EQ(estimate.routed.successes, 0u);
  EXPECT_EQ(estimate.hops.count(), 0u);
  EXPECT_EQ(estimate.hop_limit_hits, 0u);
  EXPECT_EQ(estimate.routability(), 0.0);
  // The vacuous interval, not a PreconditionError.
  const math::Interval interval = estimate.confidence95();
  EXPECT_EQ(interval.lo, 0.0);
  EXPECT_EQ(interval.hi, 1.0);
  // The world keeps stepping; rebirths may repopulate it.
  for (int round = 0; round < 20; ++round) {
    world.step();
  }
}

TEST(ChurnWorld, TrajectoryWithCollapsingWorldsStaysWellFormed) {
  // Shard replicas whose populations collapse contribute empty rounds; the
  // merged result must stay usable (routability 0, vacuous interval)
  // rather than throwing.
  const sim::IdSpace space(3);
  const ChurnParams params{.death_per_round = 0.99,
                           .rebirth_per_round = 0.005,
                           .refresh_interval = 3};
  const TrajectoryOptions options{.warmup_rounds = 20,
                                  .measured_rounds = 3,
                                  .pairs_per_round = 50,
                                  .shards = 4};
  const auto result = run_churn_trajectory(TrajectoryGeometry::kXor, space,
                                           params, options, math::Rng(73));
  EXPECT_LE(result.overall.routed.trials, 4u * 3u * 50u);
  const math::Interval interval = result.overall.confidence95();
  EXPECT_GE(interval.lo, 0.0);
  EXPECT_LE(interval.hi, 1.0);
}

TEST(ChurnModel, RejectsBadParameters) {
  EXPECT_THROW(availability({.death_per_round = 0.0,
                             .rebirth_per_round = 0.5,
                             .refresh_interval = 5}),
               PreconditionError);
  EXPECT_THROW(availability({.death_per_round = 0.6,
                             .rebirth_per_round = 0.6,
                             .refresh_interval = 5}),
               PreconditionError);
  EXPECT_THROW(effective_q({.death_per_round = 0.1,
                            .rebirth_per_round = 0.1,
                            .refresh_interval = 0}),
               PreconditionError);
}

TEST(ChurnSimulator, AliveFractionTracksAvailability) {
  const sim::IdSpace space(12);
  const ChurnParams params{.death_per_round = 0.02,
                           .rebirth_per_round = 0.08,
                           .refresh_interval = 10};
  math::Rng rng(1);
  ChurnSimulator simulator(space, params, rng);
  simulator.run(100);
  // a = 0.8; N = 4096 => SE ~ 0.006 plus autocorrelation; 5x band.
  EXPECT_NEAR(simulator.alive_fraction(), 0.8, 0.04);
  EXPECT_EQ(simulator.round(), 100);
}

TEST(ChurnSimulator, MeanEntryAgeMatchesUniformAssumption) {
  // With lifetimes >> R, entry ages should hover near (R-1)/2.
  const sim::IdSpace space(12);
  const ChurnParams params{.death_per_round = 0.005,
                           .rebirth_per_round = 0.02,
                           .refresh_interval = 10};
  math::Rng rng(2);
  ChurnSimulator simulator(space, params, rng);
  simulator.run(60);
  EXPECT_NEAR(simulator.mean_entry_age(), 4.5, 1.2);
}

TEST(ChurnSimulator, PerfectStabilityRoutesEverything) {
  // Tiny churn, instant refresh: routability ~ 1.
  const sim::IdSpace space(10);
  const ChurnParams params{.death_per_round = 1e-6,
                           .rebirth_per_round = 0.5,
                           .refresh_interval = 1};
  math::Rng rng(3);
  ChurnSimulator simulator(space, params, rng);
  simulator.run(10);
  const auto measured = simulator.measure_routability(3000, rng);
  EXPECT_GT(measured.point(), 0.999);
}

TEST(ChurnSimulator, StaticModelAtEffectiveQPredictsChurnRoutability) {
  // The headline: run the dynamic system, compare against the static XOR
  // analysis evaluated at q_eff.  Tolerance covers Eq. 6's documented knee
  // bias plus Monte-Carlo noise (the benchmark prints the full curves).
  const sim::IdSpace space(12);
  const auto xor_geo = core::make_geometry(core::GeometryKind::kXor);
  for (int refresh : {5, 20}) {
    const ChurnParams params{.death_per_round = 0.02,
                             .rebirth_per_round = 0.08,
                             .refresh_interval = refresh};
    math::Rng rng(100 + static_cast<std::uint64_t>(refresh));
    ChurnSimulator simulator(space, params, rng);
    simulator.run(3 * refresh + 50);  // warm past several refresh cycles
    math::Rng measure_rng(4);
    const double measured =
        simulator.measure_routability(20000, measure_rng).point();
    const double q_eff = effective_q(params);
    const double predicted =
        core::evaluate_routability(*xor_geo, space.bits(), q_eff)
            .conditional_success;
    EXPECT_NEAR(measured, predicted, 0.08)
        << "R=" << refresh << " q_eff=" << q_eff;
    // More refresh lag must hurt.
    if (refresh == 20) {
      EXPECT_LT(measured, 0.995);
    }
  }
}

TEST(ChurnSimulator, SlowerRefreshLowersRoutability) {
  const sim::IdSpace space(12);
  double previous = 1.1;
  for (int refresh : {2, 10, 40}) {
    const ChurnParams params{.death_per_round = 0.03,
                             .rebirth_per_round = 0.07,
                             .refresh_interval = refresh};
    math::Rng rng(200 + static_cast<std::uint64_t>(refresh));
    ChurnSimulator simulator(space, params, rng);
    simulator.run(3 * refresh + 30);
    math::Rng measure_rng(5);
    const double measured =
        simulator.measure_routability(15000, measure_rng).point();
    EXPECT_LT(measured, previous + 0.02) << "R=" << refresh;
    previous = measured;
  }
}

}  // namespace
}  // namespace dht::churn
