// The churn extension: lifecycle model, the q_eff bridge, and the dynamic
// simulator's agreement with the static analysis (the paper's Section 1
// open question for this churn model).
#include <cmath>

#include <gtest/gtest.h>

#include "churn/churn.hpp"
#include "churn/trajectory.hpp"
#include "common/check.hpp"
#include "core/registry.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"

namespace dht::churn {
namespace {

TEST(ChurnModel, AvailabilityIsStationaryDistribution) {
  EXPECT_NEAR(availability({.death_per_round = 0.01,
                            .rebirth_per_round = 0.04,
                            .refresh_interval = 5}),
              0.8, 1e-12);
  EXPECT_NEAR(availability({.death_per_round = 0.05,
                            .rebirth_per_round = 0.05,
                            .refresh_interval = 5}),
              0.5, 1e-12);
}

TEST(ChurnModel, DeadGivenAgeGrowsToStationary) {
  const ChurnParams params{.death_per_round = 0.02,
                           .rebirth_per_round = 0.08,
                           .refresh_interval = 10};
  EXPECT_EQ(dead_given_age(params, 0), 0.0);  // just refreshed to alive
  double previous = 0.0;
  for (int age = 1; age <= 200; age += 10) {
    const double p = dead_given_age(params, age);
    EXPECT_GT(p, previous);
    previous = p;
  }
  // Long ages approach the stationary dead probability 1 - a = 0.2.
  EXPECT_NEAR(dead_given_age(params, 2000), 0.2, 1e-9);
}

TEST(ChurnModel, EffectiveQLimits) {
  ChurnParams params{.death_per_round = 0.02,
                     .rebirth_per_round = 0.08,
                     .refresh_interval = 1};
  // Continuous refresh: entries are always fresh, q_eff = dead_given_age(0).
  EXPECT_NEAR(effective_q(params), 0.0, 1e-12);
  // Rare refresh: q_eff approaches the stationary dead probability.
  params.refresh_interval = 100000;
  EXPECT_NEAR(effective_q(params), 0.2, 1e-3);
}

TEST(ChurnModel, EffectiveQMonotoneInRefreshLag) {
  ChurnParams params{.death_per_round = 0.02,
                     .rebirth_per_round = 0.08,
                     .refresh_interval = 1};
  double previous = -1.0;
  for (int r : {1, 2, 5, 10, 30, 100, 1000}) {
    params.refresh_interval = r;
    const double q = effective_q(params);
    EXPECT_GT(q, previous) << "R=" << r;
    EXPECT_LE(q, 0.2 + 1e-12);
    previous = q;
  }
}

TEST(ChurnModel, EffectiveQMatchesDirectAverage) {
  const ChurnParams params{.death_per_round = 0.03,
                           .rebirth_per_round = 0.07,
                           .refresh_interval = 17};
  double direct = 0.0;
  for (int age = 0; age < params.refresh_interval; ++age) {
    direct += dead_given_age(params, age);
  }
  direct /= params.refresh_interval;
  EXPECT_NEAR(effective_q(params), direct, 1e-12);
}

TEST(ChurnModel, GoldenClosedFormValues) {
  // pd = 0.1, pr = 0.3: a = 0.75, lambda = 0.6 -- every quantity below is
  // exact in closed form, so the tolerances are float-roundoff only.
  const ChurnParams params{.death_per_round = 0.1,
                           .rebirth_per_round = 0.3,
                           .refresh_interval = 5};
  EXPECT_DOUBLE_EQ(availability(params), 0.75);
  EXPECT_DOUBLE_EQ(dead_given_age(params, 0), 0.0);
  EXPECT_NEAR(dead_given_age(params, 1), 0.25 * (1.0 - 0.6), 1e-15);   // 0.1
  EXPECT_NEAR(dead_given_age(params, 2), 0.25 * (1.0 - 0.36), 1e-15);  // 0.16
  EXPECT_NEAR(dead_given_age(params, 3), 0.25 * (1.0 - 0.216), 1e-15);
  // q_eff(5) = 0.25 * (1 - (1 - 0.6^5) / (5 * 0.4)) = 0.13472 exactly.
  EXPECT_NEAR(effective_q(params), 0.13472, 1e-12);

  // pd = 0.2, pr = 0.6, R = 2: lambda = 0.2, a = 0.75;
  // q_eff = 0.25 * (1 - 0.96 / 1.6) = 0.1 exactly.
  EXPECT_NEAR(effective_q({.death_per_round = 0.2,
                           .rebirth_per_round = 0.6,
                           .refresh_interval = 2}),
              0.1, 1e-12);
}

TEST(ChurnModel, GoldenEdgeCaseRefreshEveryRound) {
  // R = 1: the age average covers only age 0, so q_eff = 0 regardless of
  // the lifecycle rates.
  for (const double pd : {0.01, 0.3, 0.5}) {
    EXPECT_DOUBLE_EQ(effective_q({.death_per_round = pd,
                                  .rebirth_per_round = 0.5,
                                  .refresh_interval = 1}),
                     0.0)
        << "pd=" << pd;
  }
}

TEST(ChurnModel, GoldenEdgeCaseMemorylessChain) {
  // pd + pr = 1 (lambda = 0): the chain forgets its state in one round, so
  // every entry of age >= 1 is dead with exactly the stationary probability
  // 1 - a, and q_eff = (1 - a)(1 - 1/R).
  const ChurnParams params{.death_per_round = 0.5,
                           .rebirth_per_round = 0.5,
                           .refresh_interval = 4};
  EXPECT_DOUBLE_EQ(availability(params), 0.5);
  EXPECT_DOUBLE_EQ(dead_given_age(params, 1), 0.5);
  EXPECT_DOUBLE_EQ(dead_given_age(params, 7), 0.5);
  EXPECT_NEAR(effective_q(params), 0.5 * 0.75, 1e-15);  // 0.375

  // Asymmetric memoryless chain: pd = 0.6, pr = 0.4 -> a = 0.4.
  EXPECT_NEAR(effective_q({.death_per_round = 0.6,
                           .rebirth_per_round = 0.4,
                           .refresh_interval = 10}),
              0.6 * 0.9, 1e-15);  // 0.54
}

TEST(ChurnModel, GoldenEdgeCaseNearZeroLambda) {
  // lambda -> 0+ continuously approaches the memoryless closed form.
  const ChurnParams params{.death_per_round = 0.4995,
                           .rebirth_per_round = 0.4995,
                           .refresh_interval = 4};  // lambda = 0.001
  EXPECT_NEAR(effective_q(params), 0.5 * 0.75, 2e-4);
  EXPECT_NEAR(dead_given_age(params, 1), 0.5 * (1.0 - 0.001), 1e-12);
}

TEST(ChurnModel, GoldenEdgeCaseSlowChurn) {
  // lambda -> 1 (pd + pr -> 0): first-order expansion gives
  // dead_given_age(k) ~ (1-a) k (pd + pr) = k pd, and the age average
  // gives q_eff ~ pd (R-1)/2.
  const ChurnParams params{.death_per_round = 1e-5,
                           .rebirth_per_round = 4e-5,
                           .refresh_interval = 11};
  EXPECT_NEAR(dead_given_age(params, 3), 3e-5, 1e-8);
  EXPECT_NEAR(effective_q(params), 1e-5 * 5.0, 1e-8);
}

TEST(ChurnModel, GoldenNoReturnEffectiveQ) {
  // departed_given_age drops the rebirth term: 1 - (1-pd)^k exactly.
  const ChurnParams params{.death_per_round = 0.1,
                           .rebirth_per_round = 0.3,
                           .refresh_interval = 5};
  EXPECT_DOUBLE_EQ(departed_given_age(params, 0), 0.0);
  EXPECT_NEAR(departed_given_age(params, 1), 0.1, 1e-15);
  EXPECT_NEAR(departed_given_age(params, 2), 0.19, 1e-15);
  EXPECT_NEAR(departed_given_age(params, 3), 0.271, 1e-15);
  // q_nr(R) = 1 - (1 - (1-pd)^R) / (R pd); pd = 0.5, R = 4:
  // 1 - (1 - 0.0625) / 2 = 0.53125 exactly.
  EXPECT_NEAR(effective_q_no_return({.death_per_round = 0.5,
                                     .rebirth_per_round = 0.5,
                                     .refresh_interval = 4}),
              0.53125, 1e-15);
  // R = 1: fresh entries every round, no decay window.
  EXPECT_DOUBLE_EQ(effective_q_no_return({.death_per_round = 0.3,
                                          .rebirth_per_round = 0.2,
                                          .refresh_interval = 1}),
                   0.0);
  // Without rebirths stale entries only decay: q_nr >= q_eff -- equal up
  // to R = 2 (entries of age <= 1 leave no time for a rebirth to matter:
  // both give pd/2 at R = 2), strictly above for R >= 3 -- and q_nr is
  // monotone in the refresh lag with limit 1, not 1 - a.
  double previous = -1.0;
  for (int r : {1, 2, 5, 20, 100, 5000}) {
    const ChurnParams point{.death_per_round = 0.02,
                            .rebirth_per_round = 0.08,
                            .refresh_interval = r};
    const double q_nr = effective_q_no_return(point);
    EXPECT_GE(q_nr, effective_q(point) - 1e-12) << "R=" << r;
    if (r > 2) {
      EXPECT_GT(q_nr, effective_q(point)) << "R=" << r;
    }
    EXPECT_GT(q_nr, previous) << "R=" << r;
    EXPECT_LE(q_nr, 1.0);
    previous = q_nr;
  }
  EXPECT_NEAR(previous, 1.0, 0.02);  // R = 5000 approaches full decay
}

TEST(SessionModel, GeometricLimitRecoversNoReturnClosedForm) {
  // The generalized bridge must collapse onto the memoryless closed forms
  // exactly when the session model is geometric -- the golden anchor of
  // the heavy-tailed q_nr.
  const SessionModel geometric{.kind = SessionKind::kGeometric};
  for (const double pd : {0.02, 0.1, 0.5}) {
    for (const int r : {1, 2, 5, 30}) {
      const ChurnParams params{.death_per_round = pd,
                               .rebirth_per_round = 0.4,
                               .refresh_interval = r};
      EXPECT_DOUBLE_EQ(effective_q_no_return(params, geometric),
                       effective_q_no_return(params))
          << "pd=" << pd << " R=" << r;
      for (const int age : {0, 1, 3, 10}) {
        EXPECT_DOUBLE_EQ(departed_given_entry_age(params, geometric, age),
                         departed_given_age(params, age))
            << "pd=" << pd << " age=" << age;
      }
    }
  }
}

TEST(SessionModel, GoldenParetoNoReturnBridge) {
  const SessionModel pareto{.kind = SessionKind::kPareto,
                            .pareto_alpha = 1.5};
  // R = 1: fresh entries every round, zero decay window -- exactly 0 by
  // the T(0)/E[L] normalization, for any tail shape.
  EXPECT_DOUBLE_EQ(effective_q_no_return({.death_per_round = 0.3,
                                          .rebirth_per_round = 0.2,
                                          .refresh_interval = 1},
                                         pareto),
                   0.0);
  EXPECT_DOUBLE_EQ(
      departed_given_entry_age({.death_per_round = 0.3,
                                .rebirth_per_round = 0.2,
                                .refresh_interval = 1},
                               pareto, 0),
      0.0);
  // Golden pins of the discrete shifted-Pareto bridge (beta calibrated so
  // the mean session stays 1/pd); values cross-checked against the CLI and
  // the live-churn bench table.
  EXPECT_NEAR(effective_q_no_return({.death_per_round = 0.05,
                                     .rebirth_per_round = 0.05,
                                     .refresh_interval = 30},
                                    pareto),
              0.337623, 1e-5);
  EXPECT_NEAR(effective_q_no_return({.death_per_round = 0.02,
                                     .rebirth_per_round = 0.08,
                                     .refresh_interval = 10},
                                    pareto),
              0.078096, 1e-5);

  // Heavy tails at EQUAL mean lifetime lower the bridge: a fresh entry
  // points at a stationary-aged node, and under a decreasing hazard the
  // long-lived majority is stickier than the memoryless average (the
  // inspection paradox) -- strictly below the geometric q_nr for R >= 2,
  // monotonically more so as alpha drops toward 1.
  double previous_gap = 0.0;
  for (const double alpha : {8.0, 3.0, 2.0, 1.5, 1.2}) {
    const ChurnParams params{.death_per_round = 0.02,
                             .rebirth_per_round = 0.08,
                             .refresh_interval = 20};
    const double q_nr_pareto = effective_q_no_return(
        params, {.kind = SessionKind::kPareto, .pareto_alpha = alpha});
    const double gap = effective_q_no_return(params) - q_nr_pareto;
    EXPECT_GT(gap, previous_gap) << "alpha=" << alpha;
    previous_gap = gap;
  }

  // Monotone in the entry age with the right limits: 0 at age 0, toward 1
  // as the window outgrows every plausible remaining lifetime.
  const ChurnParams params{.death_per_round = 0.05,
                           .rebirth_per_round = 0.05,
                           .refresh_interval = 10};
  double previous = -1.0;
  for (const int age : {0, 1, 2, 5, 20, 100, 2000}) {
    const double dead = departed_given_entry_age(params, pareto, age);
    EXPECT_GT(dead, previous) << "age=" << age;
    EXPECT_LE(dead, 1.0) << "age=" << age;
    previous = dead;
  }
  EXPECT_GT(previous, 0.9);  // age 2000 >> E[L] = 20
}

TEST(SessionModel, SessionProcessHazardsAndStationaryAges) {
  const ChurnParams params{.death_per_round = 0.05,
                           .rebirth_per_round = 0.05,
                           .refresh_interval = 10};
  // Geometric: constant hazard pd at every age, and the stationary-age
  // draw is memoryless -- it must NOT consume the generator (the k = 1 /
  // geometric bit-compat contract of the sparse churn world).
  const SessionProcess geometric(params,
                                 {.kind = SessionKind::kGeometric});
  EXPECT_DOUBLE_EQ(geometric.hazard(1), 0.05);
  EXPECT_DOUBLE_EQ(geometric.hazard(1000), 0.05);
  EXPECT_DOUBLE_EQ(geometric.mean_session(), 20.0);
  math::Rng rng(7);
  math::Rng untouched(7);
  EXPECT_EQ(geometric.sample_stationary_age(rng), 0);
  EXPECT_EQ(rng.next_u64(), untouched.next_u64());

  // Pareto: decreasing hazard (old nodes are stickier), same mean session
  // by calibration, and stationary ages average E[L^2]-ish above the mean.
  const SessionProcess pareto(
      params, {.kind = SessionKind::kPareto, .pareto_alpha = 1.5});
  EXPECT_DOUBLE_EQ(pareto.mean_session(), 20.0);
  EXPECT_GT(pareto.hazard(1), pareto.hazard(5));
  EXPECT_GT(pareto.hazard(5), pareto.hazard(100));
  EXPECT_GT(pareto.hazard(1), 0.05);  // young nodes churn faster...
  EXPECT_LT(pareto.hazard(200), 0.05);  // ...old nodes slower
  math::Rng age_rng(11);
  double mean_age = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const auto age = pareto.sample_stationary_age(age_rng);
    ASSERT_GE(age, 0);
    mean_age += static_cast<double>(age);
  }
  mean_age /= 20000.0;
  // Stationary age mean = sum a S(a) / sum S(a); for alpha = 1.5 the tail
  // is fat enough that this sits far above E[L] (heavy-tail signature).
  EXPECT_GT(mean_age, 2.0 * pareto.mean_session());
}

TEST(SessionModel, NamesRoundTripAndRejectsBadShape) {
  SessionKind kind = SessionKind::kGeometric;
  for (const char* name : {"geometric", "pareto"}) {
    ASSERT_TRUE(session_kind_from_name(name, kind)) << name;
    EXPECT_STREQ(to_string(kind), name);
  }
  EXPECT_FALSE(session_kind_from_name("weibull", kind));
  const ChurnParams params{};
  EXPECT_THROW(SessionProcess(params, {.kind = SessionKind::kPareto,
                                       .pareto_alpha = 1.0}),
               PreconditionError);
  EXPECT_THROW(
      effective_q_no_return(params, {.kind = SessionKind::kPareto,
                                     .pareto_alpha = 0.5}),
      PreconditionError);
}

TEST(ChurnWorld, MeasureWithFewerThanTwoAliveNodesIsEmpty) {
  // The empty-estimate contract (regression: downstream confidence95 used
  // to trip Wilson's trials > 0 precondition on a collapsed world).  The
  // sparse churn engine honors the same contract (test_sparse_churn).
  const sim::IdSpace space(3);
  const ChurnParams params{.death_per_round = 0.99,
                           .rebirth_per_round = 0.005,
                           .refresh_interval = 3};
  ChurnWorld world(TrajectoryGeometry::kXor, space, params,
                   /*repair_probability=*/0.0, /*max_hops=*/0, math::Rng(71));
  bool collapsed = world.alive_count() < 2;
  for (int round = 0; round < 300 && !collapsed; ++round) {
    world.step();
    collapsed = world.alive_count() < 2;
  }
  ASSERT_TRUE(collapsed) << "population never dropped below 2";
  const sim::RoutabilityEstimate estimate = world.measure(100);
  EXPECT_EQ(estimate.routed.trials, 0u);
  EXPECT_EQ(estimate.routed.successes, 0u);
  EXPECT_EQ(estimate.hops.count(), 0u);
  EXPECT_EQ(estimate.hop_limit_hits(), 0u);
  EXPECT_EQ(estimate.routability(), 0.0);
  // The vacuous interval, not a PreconditionError.
  const math::Interval interval = estimate.confidence95();
  EXPECT_EQ(interval.lo, 0.0);
  EXPECT_EQ(interval.hi, 1.0);
  // The world keeps stepping; rebirths may repopulate it.
  for (int round = 0; round < 20; ++round) {
    world.step();
  }
}

TEST(ChurnWorld, TrajectoryWithCollapsingWorldsStaysWellFormed) {
  // Shard replicas whose populations collapse contribute empty rounds; the
  // merged result must stay usable (routability 0, vacuous interval)
  // rather than throwing.
  const sim::IdSpace space(3);
  const ChurnParams params{.death_per_round = 0.99,
                           .rebirth_per_round = 0.005,
                           .refresh_interval = 3};
  const TrajectoryOptions options{.warmup_rounds = 20,
                                  .measured_rounds = 3,
                                  .pairs_per_round = 50,
                                  .shards = 4};
  const auto result = run_churn_trajectory(TrajectoryGeometry::kXor, space,
                                           params, options, math::Rng(73));
  EXPECT_LE(result.overall.routed.trials, 4u * 3u * 50u);
  const math::Interval interval = result.overall.confidence95();
  EXPECT_GE(interval.lo, 0.0);
  EXPECT_LE(interval.hi, 1.0);
}

TEST(ChurnModel, RejectsBadParameters) {
  EXPECT_THROW(availability({.death_per_round = 0.0,
                             .rebirth_per_round = 0.5,
                             .refresh_interval = 5}),
               PreconditionError);
  EXPECT_THROW(availability({.death_per_round = 0.6,
                             .rebirth_per_round = 0.6,
                             .refresh_interval = 5}),
               PreconditionError);
  EXPECT_THROW(effective_q({.death_per_round = 0.1,
                            .rebirth_per_round = 0.1,
                            .refresh_interval = 0}),
               PreconditionError);
}

TEST(ChurnSimulator, AliveFractionTracksAvailability) {
  const sim::IdSpace space(12);
  const ChurnParams params{.death_per_round = 0.02,
                           .rebirth_per_round = 0.08,
                           .refresh_interval = 10};
  math::Rng rng(1);
  ChurnSimulator simulator(space, params, rng);
  simulator.run(100);
  // a = 0.8; N = 4096 => SE ~ 0.006 plus autocorrelation; 5x band.
  EXPECT_NEAR(simulator.alive_fraction(), 0.8, 0.04);
  EXPECT_EQ(simulator.round(), 100);
}

TEST(ChurnSimulator, MeanEntryAgeMatchesUniformAssumption) {
  // With lifetimes >> R, entry ages should hover near (R-1)/2.
  const sim::IdSpace space(12);
  const ChurnParams params{.death_per_round = 0.005,
                           .rebirth_per_round = 0.02,
                           .refresh_interval = 10};
  math::Rng rng(2);
  ChurnSimulator simulator(space, params, rng);
  simulator.run(60);
  EXPECT_NEAR(simulator.mean_entry_age(), 4.5, 1.2);
}

TEST(ChurnSimulator, PerfectStabilityRoutesEverything) {
  // Tiny churn, instant refresh: routability ~ 1.
  const sim::IdSpace space(10);
  const ChurnParams params{.death_per_round = 1e-6,
                           .rebirth_per_round = 0.5,
                           .refresh_interval = 1};
  math::Rng rng(3);
  ChurnSimulator simulator(space, params, rng);
  simulator.run(10);
  const auto measured = simulator.measure_routability(3000, rng);
  EXPECT_GT(measured.point(), 0.999);
}

TEST(ChurnSimulator, StaticModelAtEffectiveQPredictsChurnRoutability) {
  // The headline: run the dynamic system, compare against the static XOR
  // analysis evaluated at q_eff.  Tolerance covers Eq. 6's documented knee
  // bias plus Monte-Carlo noise (the benchmark prints the full curves).
  const sim::IdSpace space(12);
  const auto xor_geo = core::make_geometry(core::GeometryKind::kXor);
  for (int refresh : {5, 20}) {
    const ChurnParams params{.death_per_round = 0.02,
                             .rebirth_per_round = 0.08,
                             .refresh_interval = refresh};
    math::Rng rng(100 + static_cast<std::uint64_t>(refresh));
    ChurnSimulator simulator(space, params, rng);
    simulator.run(3 * refresh + 50);  // warm past several refresh cycles
    math::Rng measure_rng(4);
    const double measured =
        simulator.measure_routability(20000, measure_rng).point();
    const double q_eff = effective_q(params);
    const double predicted =
        core::evaluate_routability(*xor_geo, space.bits(), q_eff)
            .conditional_success;
    EXPECT_NEAR(measured, predicted, 0.08)
        << "R=" << refresh << " q_eff=" << q_eff;
    // More refresh lag must hurt.
    if (refresh == 20) {
      EXPECT_LT(measured, 0.995);
    }
  }
}

TEST(ChurnSimulator, SlowerRefreshLowersRoutability) {
  const sim::IdSpace space(12);
  double previous = 1.1;
  for (int refresh : {2, 10, 40}) {
    const ChurnParams params{.death_per_round = 0.03,
                             .rebirth_per_round = 0.07,
                             .refresh_interval = refresh};
    math::Rng rng(200 + static_cast<std::uint64_t>(refresh));
    ChurnSimulator simulator(space, params, rng);
    simulator.run(3 * refresh + 30);
    math::Rng measure_rng(5);
    const double measured =
        simulator.measure_routability(15000, measure_rng).point();
    EXPECT_LT(measured, previous + 0.02) << "R=" << refresh;
    previous = measured;
  }
}

}  // namespace
}  // namespace dht::churn
