// Property tests for the flattened overlay hot paths against brute-force
// oracles: materialized Chord finger tables vs the closed-form offsets, the
// flattened greedy next_hop vs a straight reimplementation of the scan, the
// O(1) alive-index sample_alive vs a linear-scan index, and the
// non-allocating links_into vs links.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/symphony_overlay.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace dht::sim {
namespace {

TEST(ChordFlattening, DeterministicFingerTableMatchesClosedForm) {
  const IdSpace space(8);
  math::Rng rng(1);
  const ChordOverlay overlay(space, rng);
  ASSERT_FALSE(overlay.finger_table().empty());
  const std::uint64_t mask = space.size() - 1;
  for (NodeId v = 0; v < space.size(); ++v) {
    for (int i = 1; i <= space.bits(); ++i) {
      const NodeId expected =
          (v + (std::uint64_t{1} << (space.bits() - i))) & mask;
      EXPECT_EQ(overlay.finger(v, i), expected) << "v=" << v << " i=" << i;
      EXPECT_EQ(overlay.finger_table()[v * space.bits() + (i - 1)], expected);
    }
  }
}

TEST(ChordFlattening, RandomizedFingerOffsetsStayInDyadicRanges) {
  const IdSpace space(8);
  math::Rng rng(2);
  const ChordOverlay overlay(space, rng, ChordFingers::kRandomized);
  const int d = space.bits();
  for (NodeId v = 0; v < space.size(); ++v) {
    for (int i = 1; i <= d; ++i) {
      const std::uint64_t offset = ring_distance(v, overlay.finger(v, i), d);
      const std::uint64_t lo = std::uint64_t{1} << (d - i);
      EXPECT_GE(offset, lo) << "v=" << v << " i=" << i;
      EXPECT_LT(offset, 2 * lo) << "v=" << v << " i=" << i;
    }
  }
}

TEST(ChordFlattening, RandomizedConstructionIsSeedDeterministic) {
  const IdSpace space(7);
  math::Rng rng_a(99);
  math::Rng rng_b(99);
  const ChordOverlay a(space, rng_a, ChordFingers::kRandomized);
  const ChordOverlay b(space, rng_b, ChordFingers::kRandomized);
  EXPECT_EQ(a.finger_table(), b.finger_table());
}

// Brute-force oracle for the chord forwarding rule, written directly from
// the comment in chord_overlay.hpp: greedy clockwise among alive,
// non-overshooting fingers (scanned i = 1..d, first hit wins), with the
// successor list taking over when it outreaches the best alive finger.
std::optional<NodeId> chord_next_hop_oracle(const ChordOverlay& overlay,
                                            NodeId current, NodeId target,
                                            const FailureScenario& failures) {
  const int d = overlay.space().bits();
  const std::uint64_t size = overlay.space().size();
  const std::uint64_t distance = ring_distance(current, target, d);
  std::uint64_t best_progress = 0;
  NodeId best = current;
  for (int i = 1; i <= d; ++i) {
    const NodeId f = overlay.finger(current, i);
    const std::uint64_t progress = ring_distance(current, f, d);
    if (progress > distance) {
      continue;
    }
    if (failures.alive(f)) {
      best_progress = progress;
      best = f;
      break;
    }
  }
  for (int k = overlay.successor_links();
       k > static_cast<int>(best_progress); --k) {
    if (static_cast<std::uint64_t>(k) > distance) {
      continue;
    }
    const NodeId succ = (current + static_cast<std::uint64_t>(k)) & (size - 1);
    if (failures.alive(succ)) {
      return succ;
    }
  }
  if (best_progress == 0) {
    return std::nullopt;
  }
  return best;
}

TEST(ChordFlattening, NextHopMatchesBruteForceOracle) {
  const IdSpace space(8);
  struct Variant {
    ChordFingers fingers;
    int successors;
  };
  for (const Variant variant :
       {Variant{ChordFingers::kDeterministic, 0},
        Variant{ChordFingers::kDeterministic, 3},
        Variant{ChordFingers::kRandomized, 0},
        Variant{ChordFingers::kRandomized, 3}}) {
    math::Rng build_rng(7);
    const ChordOverlay overlay(space, build_rng, variant.fingers,
                               variant.successors);
    math::Rng fail_rng(8);
    const FailureScenario failures(space, 0.3, fail_rng);
    math::Rng pair_rng(9);
    for (int trial = 0; trial < 2000; ++trial) {
      const NodeId current = pair_rng.uniform_below(space.size());
      NodeId target = pair_rng.uniform_below(space.size());
      if (target == current) {
        continue;
      }
      const auto expected =
          chord_next_hop_oracle(overlay, current, target, failures);
      const auto actual =
          overlay.next_hop(current, target, failures, pair_rng);
      EXPECT_EQ(actual, expected)
          << "current=" << current << " target=" << target;
    }
  }
}

// Linear-scan oracle for the alive-index array.
std::vector<std::uint32_t> brute_force_alive_ids(
    const FailureScenario& failures) {
  std::vector<std::uint32_t> ids;
  for (NodeId id = 0; id < failures.size(); ++id) {
    if (failures.alive(id)) {
      ids.push_back(static_cast<std::uint32_t>(id));
    }
  }
  return ids;
}

TEST(AliveIndex, FreshScenarioMatchesBruteForceScan) {
  const IdSpace space(8);
  math::Rng rng(31);
  const FailureScenario failures(space, 0.4, rng);
  // A freshly built scenario lists alive ids in increasing order, exactly
  // the brute-force scan.
  EXPECT_EQ(failures.alive_ids(), brute_force_alive_ids(failures));
  EXPECT_EQ(failures.alive_ids().size(), failures.alive_count());
}

TEST(AliveIndex, KillReviveKeepsIndexConsistentWithMask) {
  const IdSpace space(7);
  math::Rng rng(32);
  FailureScenario failures(space, 0.3, rng);
  math::Rng churn_rng(33);
  for (int step = 0; step < 500; ++step) {
    const NodeId id = churn_rng.uniform_below(space.size());
    if (churn_rng.bernoulli(0.5)) {
      failures.kill(id);
    } else {
      failures.revive(id);
    }
    ASSERT_EQ(failures.alive_ids().size(), failures.alive_count());
  }
  // Same *set* of ids as the brute-force scan (order is shuffled by the
  // swap-remove maintenance).
  std::vector<std::uint32_t> index = failures.alive_ids();
  std::sort(index.begin(), index.end());
  EXPECT_EQ(index, brute_force_alive_ids(failures));
}

TEST(AliveIndex, SampleAliveDrawsFromTheIndex) {
  const IdSpace space(8);
  math::Rng rng(34);
  const FailureScenario failures(space, 0.5, rng);
  math::Rng sample_rng(35);
  for (int i = 0; i < 1000; ++i) {
    // Predict the O(1) draw with a cloned generator, then check it.
    math::Rng predictor = sample_rng;
    const NodeId expected =
        failures.alive_ids()[predictor.uniform_below(failures.alive_count())];
    const NodeId actual = failures.sample_alive(sample_rng);
    ASSERT_EQ(actual, expected);
    ASSERT_TRUE(failures.alive(actual));
  }
}

TEST(AliveIndex, SampleAliveIsRoughlyUniformAfterChurn) {
  const IdSpace space(4);
  FailureScenario failures = FailureScenario::all_alive(space);
  failures.kill(3);
  failures.kill(9);
  failures.revive(9);  // exercise the append path
  std::vector<int> histogram(16, 0);
  math::Rng rng(36);
  const int draws = 30000;
  for (int i = 0; i < draws; ++i) {
    ++histogram[failures.sample_alive(rng)];
  }
  EXPECT_EQ(histogram[3], 0);
  for (NodeId id = 0; id < 16; ++id) {
    if (id == 3) {
      continue;
    }
    EXPECT_NEAR(histogram[id], draws / 15, 350) << "id=" << id;
  }
}

TEST(LinksInto, MatchesLinksForEveryOverlay) {
  const IdSpace space(6);
  math::Rng rng(41);
  std::vector<std::unique_ptr<Overlay>> overlays;
  overlays.push_back(std::make_unique<TreeOverlay>(space, rng));
  overlays.push_back(std::make_unique<XorOverlay>(space, rng));
  overlays.push_back(std::make_unique<HypercubeOverlay>(space));
  overlays.push_back(std::make_unique<ChordOverlay>(space, rng));
  overlays.push_back(std::make_unique<ChordOverlay>(
      space, rng, ChordFingers::kRandomized, 2));
  overlays.push_back(std::make_unique<SymphonyOverlay>(space, 2, 3, rng));
  std::vector<NodeId> scratch;  // reused across nodes and overlays
  for (const auto& overlay : overlays) {
    for (NodeId v = 0; v < space.size(); ++v) {
      overlay->links_into(v, scratch);
      EXPECT_EQ(scratch, overlay->links(v))
          << overlay->name() << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace dht::sim
