#include "math/rng.hpp"

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace dht::math {
namespace {

TEST(CounterRng, DrawIsPureFunctionOfKeyAndIndex) {
  const CounterRng a(0x1234abcd5678ef01ULL);
  const CounterRng b(0x1234abcd5678ef01ULL);
  for (std::uint64_t i : {0ull, 1ull, 2ull, 77ull, 1ull << 40}) {
    EXPECT_EQ(a.at(i), b.at(i));
  }
  // at() never touches the cursor, in any order of evaluation.
  const std::uint64_t late = a.at(1000);
  const std::uint64_t early = a.at(3);
  EXPECT_EQ(a.at(1000), late);
  EXPECT_EQ(a.at(3), early);
  EXPECT_EQ(a.counter(), 0u);
}

TEST(CounterRng, SequentialCursorMatchesRandomAccess) {
  CounterRng rng(42);
  const CounterRng pure(42);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.next_u64(), pure.at(i));
  }
  EXPECT_EQ(rng.counter(), 1000u);
}

TEST(CounterRng, MatchesSequentialSplitMix64) {
  // The keyed counter sequence IS SplitMix64's state walk, so the stream
  // must reproduce the reference generator output exactly.
  std::uint64_t state = 987654321;
  CounterRng rng(987654321);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_u64(), splitmix64(state));
  }
}

TEST(CounterRng, ValuePinning) {
  // Frozen outputs: any change to the mixing constants or counter offset
  // silently re-randomizes every lane of the parallel engines and breaks
  // the pinned goldens downstream.  Update deliberately or not at all.
  const CounterRng zero(0);
  EXPECT_EQ(zero.at(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(zero.at(1), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(zero.at(2), 0x06c45d188009454fULL);
  const CounterRng keyed(0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(keyed.at(0), 0x6e789e6aa1b965f4ULL);  // key = one gamma = shift
}

TEST(CounterRng, DistinctKeysDecorrelate) {
  const CounterRng a(1);
  const CounterRng b(2);
  int equal = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    equal += (a.at(i) == b.at(i)) ? 1 : 0;
  }
  EXPECT_EQ(equal, 0);
}

TEST(CounterRng, Uniform01InRangeAndCentered) {
  CounterRng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);  // SE ~ 0.0009; 5 sigma
}

TEST(CounterRng, LemireUniformBelowRespectsBound) {
  CounterRng rng(9);
  for (std::uint64_t bound :
       {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 32) + 1, ~0ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(CounterRng, LemireUniformBelowIsUnbiased) {
  CounterRng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    ++counts[rng.uniform_below(7)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);  // ~5 sigma for a fair die
  }
}

TEST(CounterRng, BernoulliDegenerate) {
  CounterRng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(CounterRng, CounterStreamsAreIndependentAndStable) {
  const Rng parent(99);
  const CounterRng s1 = parent.counter_stream(1);
  const CounterRng s2 = parent.counter_stream(2);
  const CounterRng s1_again = parent.counter_stream(1);
  EXPECT_EQ(s1.key(), s1_again.key());
  EXPECT_NE(s1.key(), s2.key());
  int equal = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(s1.at(i), s1_again.at(i));
    equal += (s1.at(i) == s2.at(i)) ? 1 : 0;
  }
  EXPECT_EQ(equal, 0);
}

TEST(CounterRng, CounterStreamDomainSeparatedFromFork) {
  // counter_stream(i) and fork(i) must not collide: a lane stream sharing
  // values with a shard's sequential generator would correlate route
  // sampling with table construction.
  const Rng parent(123);
  for (std::uint64_t id : {0ull, 1ull, 5ull, 1000ull}) {
    CounterRng stream = parent.counter_stream(id);
    Rng forked = parent.fork(id);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
      equal += (stream.next_u64() == forked.next_u64()) ? 1 : 0;
    }
    EXPECT_EQ(equal, 0) << "id=" << id;
  }
}

TEST(CounterRng, CounterStreamDoesNotAdvanceParent) {
  Rng parent(7);
  Rng replay(7);
  (void)parent.counter_stream(3);
  (void)parent.counter_stream(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(parent.next_u64(), replay.next_u64());
  }
}

TEST(CounterRng, StreamsAcrossKeysHaveNoShortCycles) {
  // 64 streams x 64 draws each must all be distinct -- a weak key
  // derivation (e.g. sequential small keys without mixing) would collide.
  const Rng parent(2024);
  std::set<std::uint64_t> seen;
  for (std::uint64_t id = 0; id < 64; ++id) {
    const CounterRng s = parent.counter_stream(id);
    for (std::uint64_t i = 0; i < 64; ++i) {
      seen.insert(s.at(i));
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u);
}

TEST(CounterRng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<CounterRng>);
  SUCCEED();
}

}  // namespace
}  // namespace dht::math
