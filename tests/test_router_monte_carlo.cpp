#include <gtest/gtest.h>

#include "common/check.hpp"
#include "math/rng.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/router.hpp"
#include "sim/tree_overlay.hpp"

namespace dht::sim {
namespace {

TEST(Router, TraceStartsAtSourceEndsAtTarget) {
  const IdSpace space(8);
  const HypercubeOverlay overlay(space);
  const FailureScenario alive = FailureScenario::all_alive(space);
  const Router router(overlay, alive);
  math::Rng rng(3);
  const RouteTrace trace = router.route_traced(5, 200, rng);
  ASSERT_TRUE(trace.result.success());
  ASSERT_GE(trace.path.size(), 2u);
  EXPECT_EQ(trace.path.front(), 5u);
  EXPECT_EQ(trace.path.back(), 200u);
  EXPECT_EQ(static_cast<int>(trace.path.size()) - 1, trace.result.hops);
}

TEST(Router, TraceRecordsDropPoint) {
  const IdSpace space(6);
  math::Rng build_rng(4);
  const TreeOverlay overlay(space, build_rng);
  FailureScenario failures = FailureScenario::all_alive(space);
  const NodeId doomed = overlay.table()->neighbor(0, 1);
  failures.kill(doomed);
  const NodeId target = flip_level(0, 1, 6);
  if (target != doomed) {
    const Router router(overlay, failures);
    math::Rng rng(5);
    const RouteTrace trace = router.route_traced(0, target, rng);
    EXPECT_EQ(trace.result.status, RouteStatus::kDropped);
    EXPECT_EQ(trace.path.size(), 1u);
    EXPECT_EQ(trace.result.last_node, 0u);
  }
}

TEST(Router, HopLimitFires) {
  const IdSpace space(8);
  const HypercubeOverlay overlay(space);
  const FailureScenario alive = FailureScenario::all_alive(space);
  const Router router(overlay, alive, /*max_hops=*/1);
  math::Rng rng(6);
  // Hamming distance 3 cannot be covered in 1 hop.
  const RouteResult result = router.route(0, 0b111, rng);
  EXPECT_EQ(result.status, RouteStatus::kHopLimit);
}

TEST(Router, RejectsBadEndpoints) {
  const IdSpace space(6);
  const HypercubeOverlay overlay(space);
  const FailureScenario alive = FailureScenario::all_alive(space);
  const Router router(overlay, alive);
  math::Rng rng(7);
  EXPECT_THROW(router.route(0, 0, rng), PreconditionError);
  EXPECT_THROW(router.route(0, 64, rng), PreconditionError);
  EXPECT_THROW(router.route(64, 0, rng), PreconditionError);
}

TEST(Router, MismatchedScenarioRejected) {
  const IdSpace space_a(6);
  const IdSpace space_b(7);
  const HypercubeOverlay overlay(space_a);
  const FailureScenario alive = FailureScenario::all_alive(space_b);
  EXPECT_THROW(Router(overlay, alive), PreconditionError);
}

TEST(RouteStatusToString, AllValues) {
  EXPECT_STREQ(to_string(RouteStatus::kArrived), "arrived");
  EXPECT_STREQ(to_string(RouteStatus::kDropped), "dropped");
  EXPECT_STREQ(to_string(RouteStatus::kHopLimit), "hop-limit");
}

TEST(MonteCarlo, PerfectNetworkIsFullyRoutable) {
  const IdSpace space(10);
  const HypercubeOverlay overlay(space);
  const FailureScenario alive = FailureScenario::all_alive(space);
  math::Rng rng(8);
  const auto estimate =
      estimate_routability(overlay, alive, {.pairs = 5000}, rng);
  EXPECT_EQ(estimate.routability(), 1.0);
  EXPECT_EQ(estimate.failed_fraction(), 0.0);
  EXPECT_EQ(estimate.hop_limit_hits(), 0u);
  // Mean Hamming distance between random ids is d/2 = 5.
  EXPECT_NEAR(estimate.hops.mean(), 5.0, 0.2);
}

TEST(MonteCarlo, ExactMatchesEstimateOnSmallSpace) {
  const IdSpace space(7);
  const HypercubeOverlay overlay(space);
  math::Rng fail_rng(9);
  const FailureScenario failures(space, 0.2, fail_rng);
  math::Rng rng_a(10);
  math::Rng rng_b(11);
  const auto exact = exact_routability(overlay, failures, rng_a);
  const auto sampled =
      estimate_routability(overlay, failures, {.pairs = 60000}, rng_b);
  // The sampled estimate must sit inside ~4 sigma of the exact value.
  EXPECT_NEAR(sampled.routability(), exact.routability(), 0.01);
  // Exact enumerates all ordered alive pairs.
  const std::uint64_t alive = failures.alive_count();
  EXPECT_EQ(exact.routed.trials, alive * (alive - 1));
}

TEST(MonteCarlo, ConfidenceIntervalCoversPoint) {
  const IdSpace space(9);
  const HypercubeOverlay overlay(space);
  math::Rng fail_rng(12);
  const FailureScenario failures(space, 0.3, fail_rng);
  math::Rng rng(13);
  const auto estimate =
      estimate_routability(overlay, failures, {.pairs = 2000}, rng);
  const math::Interval ci = estimate.confidence95();
  EXPECT_TRUE(ci.contains(estimate.routability()));
  EXPECT_LT(ci.width(), 0.1);
}

TEST(MonteCarlo, RequiresTwoAliveNodes) {
  const IdSpace space(4);
  const HypercubeOverlay overlay(space);
  FailureScenario failures = FailureScenario::all_alive(space);
  for (NodeId id = 1; id < space.size(); ++id) {
    failures.kill(id);
  }
  math::Rng rng(14);
  EXPECT_THROW(estimate_routability(overlay, failures, {.pairs = 10}, rng),
               PreconditionError);
  EXPECT_THROW(exact_routability(overlay, failures, rng), PreconditionError);
}

TEST(MonteCarlo, RejectsZeroPairs) {
  const IdSpace space(4);
  const HypercubeOverlay overlay(space);
  const FailureScenario alive = FailureScenario::all_alive(space);
  math::Rng rng(15);
  EXPECT_THROW(estimate_routability(overlay, alive, {.pairs = 0}, rng),
               PreconditionError);
}

}  // namespace
}  // namespace dht::sim
