// The dynamic-membership sparse churn engine (churn/sparse_trajectory.hpp):
// membership/order-index invariants under joins and leaves, thread-count
// determinism and merge semantics of the sharded replica estimator, the
// successor-list and join-announcement mechanisms, the empty-estimate
// contract on collapsed populations, the sweep grid API, and the headline
// dense-limit oracle -- at full population (capacity = 2^d, join rate =
// rebirth, leave rate = death) the engine statistically matches the dense
// ChurnWorld and the static model at q_eff, pinning it to the PR 2 bridge
// at d' = log2 N.
#include <gtest/gtest.h>

#include <string>

#include "churn/sparse_trajectory.hpp"
#include "churn/trajectory.hpp"
#include "common/check.hpp"
#include "core/registry.hpp"
#include "math/rng.hpp"
#include "sim/parallel_monte_carlo.hpp"
#include "sim/xor_overlay.hpp"
#include "sparse/density_analysis.hpp"

namespace dht::churn {
namespace {

void expect_identical(const sparse::SparseEstimate& a,
                      const sparse::SparseEstimate& b, const char* what) {
  EXPECT_EQ(a.attempts, b.attempts) << what;
  EXPECT_EQ(a.hops.count(), b.hops.count()) << what;
  EXPECT_EQ(a.hops.sum(), b.hops.sum()) << what;
  EXPECT_EQ(a.hops.sum_squares(), b.hops.sum_squares()) << what;
  EXPECT_EQ(a.hops.min(), b.hops.min()) << what;
  EXPECT_EQ(a.hops.max(), b.hops.max()) << what;
  EXPECT_EQ(a.hop_limit_hits(), b.hop_limit_hits()) << what;
}

constexpr SparseChurnGeometry kAllGeometries[] = {
    SparseChurnGeometry::kChord, SparseChurnGeometry::kKademlia,
    SparseChurnGeometry::kSymphony};

TEST(SparseMembership, OrderIndexStaysConsistentUnderChurn) {
  const ChurnParams params{.death_per_round = 0.05,
                           .rebirth_per_round = 0.05,
                           .refresh_interval = 5};
  const SparseChurnConfig config{
      .bits = 24, .capacity = 2048, .successors = 3, .shortcuts = 4};
  SparseChurnWorld world(SparseChurnGeometry::kChord, config, params, 0.0, 0,
                         math::Rng(61));
  for (int round = 0; round < 40; ++round) {
    world.step();
    const SparseMembership& membership = world.membership();
    // The order index covers exactly the present slots, in strictly
    // ascending id order (ids distinct), each mapping back to a present
    // slot with the matching identifier.
    std::uint64_t present = 0;
    for (NodeSlot slot = 0; slot < membership.capacity(); ++slot) {
      present += membership.present(slot) ? 1 : 0;
    }
    ASSERT_EQ(membership.population(), present) << "round " << round;
    ASSERT_EQ(membership.order_size(), present) << "round " << round;
    for (std::uint64_t pos = 0; pos < membership.order_size(); ++pos) {
      const NodeSlot slot = membership.slot_at(pos);
      ASSERT_TRUE(membership.present(slot)) << "round " << round;
      ASSERT_EQ(membership.id_at(pos), membership.id_of(slot))
          << "round " << round;
      if (pos > 0) {
        ASSERT_LT(membership.id_at(pos - 1), membership.id_at(pos))
            << "round " << round;
      }
    }
  }
  EXPECT_GT(world.total_joins(), 0u);
  EXPECT_GT(world.total_leaves(), 0u);
}

TEST(SparseChurn, BitIdenticalAcrossThreadCounts) {
  const ChurnParams params{.death_per_round = 0.03,
                           .rebirth_per_round = 0.07,
                           .refresh_interval = 6};
  const SparseChurnConfig config{
      .bits = 30, .capacity = 1500, .successors = 3, .shortcuts = 4};
  for (const SparseChurnGeometry geometry : kAllGeometries) {
    for (const double rho : {0.0, 0.5}) {
      const TrajectoryOptions base{.warmup_rounds = 8,
                                   .measured_rounds = 3,
                                   .pairs_per_round = 400,
                                   .shards = 8,
                                   .repair_probability = rho};
      const math::Rng rng(17);
      SparseChurnResult reference;
      bool first = true;
      for (const unsigned threads : {1u, 2u, 8u}) {
        TrajectoryOptions options = base;
        options.threads = threads;
        const SparseChurnResult result = run_sparse_churn_trajectory(
            geometry, config, params, options, rng);
        ASSERT_EQ(result.per_round.size(), 3u);
        if (first) {
          reference = result;
          first = false;
          EXPECT_GT(result.overall.attempts, 0u) << to_string(geometry);
          EXPECT_EQ(result.overall.hop_limit_hits(), 0u) << to_string(geometry);
        } else {
          for (std::size_t r = 0; r < result.per_round.size(); ++r) {
            expect_identical(reference.per_round[r], result.per_round[r],
                             to_string(geometry));
          }
          expect_identical(reference.overall, result.overall,
                           to_string(geometry));
          EXPECT_EQ(reference.mean_population, result.mean_population);
          EXPECT_EQ(reference.mean_alive_fraction,
                    result.mean_alive_fraction);
          EXPECT_EQ(reference.mean_entry_age, result.mean_entry_age);
        }
      }
    }
  }
}

TEST(SparseChurn, GoldenBitCompatWithPreKBucketEngine) {
  // The k = 1 / geometric-session configuration must reproduce the
  // pre-k-bucket engine bit for bit: these counters were captured from the
  // PR 5 build (before bucket widening, SessionModel threading, and the
  // in-flight refactor) at this exact configuration.  Any rng-stream or
  // table-layout drift in the defaults shows up here as an exact-integer
  // mismatch.
  const ChurnParams params{.death_per_round = 0.03,
                           .rebirth_per_round = 0.07,
                           .refresh_interval = 6};
  const SparseChurnConfig config{
      .bits = 30, .capacity = 1500, .successors = 3, .shortcuts = 4};
  const TrajectoryOptions options{.warmup_rounds = 8,
                                  .measured_rounds = 3,
                                  .pairs_per_round = 400,
                                  .shards = 8};
  struct Golden {
    SparseChurnGeometry geometry;
    std::uint64_t attempts, count, sum, sum_squares, min, max;
  };
  const Golden goldens[] = {
      {SparseChurnGeometry::kKademlia, 9600, 9352, 48958, 284378, 1, 14},
      {SparseChurnGeometry::kChord, 9600, 9598, 46887, 250337, 1, 10},
      {SparseChurnGeometry::kSymphony, 9600, 9590, 151311, 2873797, 1, 51},
  };
  for (const Golden& golden : goldens) {
    const auto result = run_sparse_churn_trajectory(
        golden.geometry, config, params, options, math::Rng(17));
    EXPECT_EQ(result.overall.attempts, golden.attempts)
        << to_string(golden.geometry);
    EXPECT_EQ(result.overall.hops.count(), golden.count)
        << to_string(golden.geometry);
    EXPECT_EQ(result.overall.hops.sum(), golden.sum)
        << to_string(golden.geometry);
    EXPECT_EQ(result.overall.hops.sum_squares(), golden.sum_squares)
        << to_string(golden.geometry);
    EXPECT_EQ(result.overall.hops.min(), golden.min)
        << to_string(golden.geometry);
    EXPECT_EQ(result.overall.hops.max(), golden.max)
        << to_string(golden.geometry);
    EXPECT_EQ(result.overall.hop_limit_hits(), 0u)
        << to_string(golden.geometry);
    EXPECT_DOUBLE_EQ(result.mean_population, 1048.375)
        << to_string(golden.geometry);
  }
}

TEST(SparseChurn, InflightBitIdenticalAcrossThreadCounts) {
  // In-flight measurement interleaves lifecycle, repair, and routing
  // inside each shard's private world, so the replica-sharding determinism
  // contract must survive it: 1/2/8 threads bit-identical, across
  // geometries and the full realism stack (k buckets + Pareto sessions).
  const ChurnParams params{.death_per_round = 0.04,
                           .rebirth_per_round = 0.06,
                           .refresh_interval = 6};
  struct Stack {
    int bucket_k;
    SessionKind session;
  };
  const Stack stacks[] = {{1, SessionKind::kGeometric},
                          {4, SessionKind::kPareto}};
  for (const SparseChurnGeometry geometry : kAllGeometries) {
    for (const Stack& stack : stacks) {
      SparseChurnConfig config{
          .bits = 30, .capacity = 1500, .successors = 3, .shortcuts = 4};
      config.bucket_k = stack.bucket_k;
      config.session = SessionModel{.kind = stack.session,
                                    .pareto_alpha = 1.5};
      TrajectoryOptions base{.warmup_rounds = 6,
                             .measured_rounds = 3,
                             .pairs_per_round = 400,
                             .shards = 8,
                             .repair_probability = 0.4};
      base.inflight = true;
      const math::Rng rng(37);
      SparseChurnResult reference;
      bool first = true;
      for (const unsigned threads : {1u, 2u, 8u}) {
        TrajectoryOptions options = base;
        options.threads = threads;
        const SparseChurnResult result = run_sparse_churn_trajectory(
            geometry, config, params, options, rng);
        ASSERT_EQ(result.per_round.size(), 3u);
        if (first) {
          reference = result;
          first = false;
          EXPECT_GT(result.overall.attempts, 0u) << to_string(geometry);
        } else {
          for (std::size_t r = 0; r < result.per_round.size(); ++r) {
            expect_identical(reference.per_round[r], result.per_round[r],
                             to_string(geometry));
          }
          expect_identical(reference.overall, result.overall,
                           to_string(geometry));
          EXPECT_EQ(reference.mean_population, result.mean_population);
          EXPECT_EQ(reference.mean_entry_age, result.mean_entry_age);
        }
      }
    }
  }
}

TEST(SparseChurn, InflightWorldKeepsRoundAndOrderInvariants) {
  // measure_inflight advances the round itself and interleaves membership
  // events with routing; after it returns, the world must satisfy the same
  // order-index invariants as a step()ed world, and the lifecycle must
  // have run exactly once per slot (population stays near stationarity).
  const ChurnParams params{.death_per_round = 0.05,
                           .rebirth_per_round = 0.05,
                           .refresh_interval = 5};
  const SparseChurnConfig config{
      .bits = 24, .capacity = 2048, .successors = 3, .shortcuts = 4};
  SparseChurnWorld world(SparseChurnGeometry::kKademlia, config, params, 0.3,
                         0, math::Rng(91));
  for (int round = 0; round < 20; ++round) {
    const int before = world.round();
    (void)world.measure_inflight(50);
    ASSERT_EQ(world.round(), before + 1);
    const SparseMembership& membership = world.membership();
    std::uint64_t present = 0;
    for (NodeSlot slot = 0; slot < membership.capacity(); ++slot) {
      present += membership.present(slot) ? 1 : 0;
    }
    ASSERT_EQ(membership.population(), present) << "round " << round;
    ASSERT_EQ(membership.order_size(), present) << "round " << round;
    for (std::uint64_t pos = 1; pos < membership.order_size(); ++pos) {
      ASSERT_LT(membership.id_at(pos - 1), membership.id_at(pos))
          << "round " << round;
    }
  }
  EXPECT_NEAR(world.alive_fraction(), 0.5, 0.08);  // a = 0.5 stationarity
  EXPECT_GT(world.total_joins(), 0u);
  EXPECT_GT(world.total_leaves(), 0u);
}

TEST(SparseChurn, KBucketsBeatSingleContactUnderHeavyChurn) {
  // The acceptance claim: k = 4 Kademlia buckets with dead-observed LRU
  // eviction measurably beat the single-contact rows under pd = pr = 0.05,
  // R = 30 -- redundancy exactly where decay bites (no successor-list
  // crutch: succ = 0 isolates the bucket effect).
  const ChurnParams params{.death_per_round = 0.05,
                           .rebirth_per_round = 0.05,
                           .refresh_interval = 30};
  const TrajectoryOptions options{.warmup_rounds = 90,
                                  .measured_rounds = 3,
                                  .pairs_per_round = 600,
                                  .shards = 4};
  double routability[2] = {0.0, 0.0};
  int i = 0;
  for (const int k : {1, 4}) {
    SparseChurnConfig config{
        .bits = 32, .capacity = 4096, .successors = 0, .shortcuts = 4};
    config.bucket_k = k;
    const auto result = run_sparse_churn_trajectory(
        SparseChurnGeometry::kKademlia, config, params, options,
        math::Rng(13));
    routability[i++] = result.overall.routability();
  }
  EXPECT_GT(routability[1], routability[0] + 0.15)
      << "k=1: " << routability[0] << " k=4: " << routability[1];
  EXPECT_GT(routability[1], 0.9);
}

TEST(SparseChurn, HeavyTailedSessionsTrackGeneralizedBridge) {
  // The acceptance claim: measured heavy-tailed routability tracks the
  // static dense model at the density-reduction scale d' = log2 N0
  // evaluated at the GENERALIZED no-return bridge q_nr (the Pareto tail
  // sum), within the dense-limit-oracle tolerance band.  The heavy tail
  // at equal mean lifetime must also strictly beat the geometric run --
  // the inspection-paradox dividend the generalized bridge predicts.
  const ChurnParams params{.death_per_round = 0.02,
                           .rebirth_per_round = 0.08,
                           .refresh_interval = 10};
  const SessionModel pareto{.kind = SessionKind::kPareto,
                            .pareto_alpha = 1.5};
  const TrajectoryOptions options{.warmup_rounds = 90,
                                  .measured_rounds = 4,
                                  .pairs_per_round = 600,
                                  .shards = 8};
  const std::uint64_t n0 = 4096;
  SparseChurnConfig config{
      .bits = 32,
      .capacity = capacity_for_population(n0, params),
      .successors = 0,
      .shortcuts = 4};
  config.session = pareto;
  const auto heavy = run_sparse_churn_trajectory(
      SparseChurnGeometry::kKademlia, config, params, options, math::Rng(3));
  config.session = SessionModel{};
  const auto geometric = run_sparse_churn_trajectory(
      SparseChurnGeometry::kKademlia, config, params, options, math::Rng(3));

  // The composed model of the ext_sparse_churn bridge: the dense analytic
  // model at the density-reduction scale d' = log2 N0, evaluated at the
  // generalized (Pareto) q_nr.
  const double q_nr = effective_q_no_return(params, pareto);
  const auto xor_geo = core::make_geometry(core::GeometryKind::kXor);
  const double at_q_nr =
      sparse::predict_sparse_routability(*xor_geo, n0, q_nr)
          .conditional_success;
  EXPECT_NEAR(heavy.overall.routability(), at_q_nr, 0.05)
      << "q_nr=" << q_nr;
  // Equal mean, heavier tail: strictly better measured routability, and a
  // strictly lower generalized bridge than the geometric q_nr.
  EXPECT_GT(heavy.overall.routability(), geometric.overall.routability());
  EXPECT_LT(q_nr, effective_q_no_return(params));
}

TEST(SparseMembership, JoinStaysFastAtFullOccupancyDenseLimit) {
  // Regression for the rejection-sampling degeneracy: with capacity =
  // 2^bits and occupancy -> 1, each fresh-id draw used to spin ~2^bits
  // rejection rounds; the free-key enumeration path bounds a join by
  // O(keys).  This churns the LAST free keys of a full 2^12 space many
  // times -- catastrophic before the fix, instant after it.
  const int bits = 12;
  const std::uint64_t keys = std::uint64_t{1} << bits;
  SparseMembership membership(bits, keys);
  math::Rng rng(29);
  std::vector<NodeSlot> cohort;
  cohort.reserve(keys);
  for (NodeSlot slot = 0; slot + 1 < keys; ++slot) {
    cohort.push_back(slot);
  }
  membership.join(cohort, rng);
  membership.commit();
  ASSERT_EQ(membership.population(), keys - 1);
  // Churn single slots at occupancy (2^bits - 1) / 2^bits: each join must
  // find one of the two free keys without scanning the whole space per
  // rejection draw.
  std::vector<NodeSlot> one(1);
  for (int iter = 0; iter < 2000; ++iter) {
    const NodeSlot victim =
        static_cast<NodeSlot>(rng.uniform_below(keys - 1));
    membership.leave(victim);
    one[0] = victim;
    membership.join(one, rng);
    membership.commit();
    ASSERT_EQ(membership.population(), keys - 1);
  }
  // Ids stay distinct under heavy recycling (order-index invariant).
  for (std::uint64_t pos = 1; pos < membership.order_size(); ++pos) {
    ASSERT_LT(membership.id_at(pos - 1), membership.id_at(pos));
  }
  // The fully occupied space still joins its final slot instantly.
  membership.join({static_cast<NodeSlot>(keys - 1)}, rng);
  membership.commit();
  EXPECT_EQ(membership.population(), keys);
}

TEST(SparseChurn, RepeatedCallsAreIdentical) {
  // The engine only forks the caller's rng, so re-running with the same
  // generator must reproduce the whole trajectory exactly.
  const ChurnParams params{.death_per_round = 0.02,
                           .rebirth_per_round = 0.08,
                           .refresh_interval = 5};
  const SparseChurnConfig config{
      .bits = 32, .capacity = 1024, .successors = 2, .shortcuts = 4};
  const TrajectoryOptions options{.warmup_rounds = 6,
                                  .measured_rounds = 3,
                                  .pairs_per_round = 500,
                                  .shards = 4};
  const math::Rng rng(23);
  const auto a = run_sparse_churn_trajectory(SparseChurnGeometry::kKademlia,
                                             config, params, options, rng);
  const auto b = run_sparse_churn_trajectory(SparseChurnGeometry::kKademlia,
                                             config, params, options, rng);
  for (std::size_t r = 0; r < a.per_round.size(); ++r) {
    expect_identical(a.per_round[r], b.per_round[r], "repeat");
  }
  expect_identical(a.overall, b.overall, "repeat");
}

TEST(SparseChurn, OverallIsAssociativeMergeOfRounds) {
  const ChurnParams params{.death_per_round = 0.04,
                           .rebirth_per_round = 0.06,
                           .refresh_interval = 4};
  const SparseChurnConfig config{
      .bits = 28, .capacity = 1024, .successors = 2, .shortcuts = 4};
  const TrajectoryOptions options{.warmup_rounds = 5,
                                  .measured_rounds = 5,
                                  .pairs_per_round = 300,
                                  .shards = 4};
  const math::Rng rng(29);
  const auto result = run_sparse_churn_trajectory(
      SparseChurnGeometry::kChord, config, params, options, rng);
  ASSERT_EQ(result.per_round.size(), 5u);

  sparse::SparseEstimate left_fold;
  for (const auto& round : result.per_round) {
    left_fold.merge(round);
  }
  expect_identical(result.overall, left_fold, "left-fold");

  // ((r0+r1) + (r2+r3+r4)) -- a different association of the same rounds.
  sparse::SparseEstimate head;
  head.merge(result.per_round[0]);
  head.merge(result.per_round[1]);
  sparse::SparseEstimate tail;
  tail.merge(result.per_round[2]);
  tail.merge(result.per_round[3]);
  tail.merge(result.per_round[4]);
  sparse::SparseEstimate grouped;
  grouped.merge(head);
  grouped.merge(tail);
  expect_identical(result.overall, grouped, "grouped");
}

TEST(SparseChurn, PerfectStabilityRoutesEverything) {
  // Tiny churn, instant refresh: routability ~ 1 for every geometry.
  const ChurnParams params{.death_per_round = 1e-6,
                           .rebirth_per_round = 0.5,
                           .refresh_interval = 1};
  const SparseChurnConfig config{
      .bits = 20, .capacity = 1024, .successors = 3, .shortcuts = 6};
  const TrajectoryOptions options{.warmup_rounds = 5,
                                  .measured_rounds = 2,
                                  .pairs_per_round = 800,
                                  .shards = 4};
  for (const SparseChurnGeometry geometry : kAllGeometries) {
    const math::Rng rng(9);
    const auto result =
        run_sparse_churn_trajectory(geometry, config, params, options, rng);
    EXPECT_GT(result.overall.routability(), 0.999) << to_string(geometry);
    EXPECT_EQ(result.overall.hop_limit_hits(), 0u) << to_string(geometry);
  }
}

TEST(SparseChurn, WorldsTrackStationaryPopulationAndUniformAges) {
  // a = 0.8; population should hover near a * capacity and entry ages near
  // (R-1)/2 when lifetimes >> R.
  const ChurnParams params{.death_per_round = 0.005,
                           .rebirth_per_round = 0.02,
                           .refresh_interval = 10};
  const SparseChurnConfig config{
      .bits = 32, .capacity = 4096, .successors = 2, .shortcuts = 4};
  const TrajectoryOptions options{.warmup_rounds = 50,
                                  .measured_rounds = 4,
                                  .pairs_per_round = 200,
                                  .shards = 8};
  const math::Rng rng(31);
  const auto result = run_sparse_churn_trajectory(
      SparseChurnGeometry::kKademlia, config, params, options, rng);
  EXPECT_NEAR(result.mean_alive_fraction, 0.8, 0.03);
  EXPECT_NEAR(result.mean_population, 0.8 * 4096, 0.03 * 4096);
  EXPECT_NEAR(result.mean_entry_age, 4.5, 1.0);
}

TEST(SparseChurn, DenseLimitOracleMatchesDenseChurnAndStaticAtEffectiveQ) {
  // The acceptance claim: at full population (capacity = 2^d; join rate =
  // rebirth, leave rate = death at the slot level) the dynamic-membership
  // engine must statistically match (a) the dense ChurnWorld trajectory at
  // the same (pd, pr, R, rho) and (b) the static parallel engine at
  // q_eff -- the PR 2 bridge at d' = log2 N = d.  Join announcement plays
  // the role the dense model gets for free from persistent identities
  // (stale in-edges reviving on rebirth).
  const ChurnParams params{.death_per_round = 0.02,
                           .rebirth_per_round = 0.08,
                           .refresh_interval = 10};
  const TrajectoryOptions options{.warmup_rounds = 60,
                                  .measured_rounds = 4,
                                  .pairs_per_round = 1000,
                                  .shards = 8};
  const SparseChurnConfig config{
      .bits = 10, .capacity = 1024, .successors = 0, .shortcuts = 4};
  const math::Rng rng(101);
  const auto sparse_result = run_sparse_churn_trajectory(
      SparseChurnGeometry::kKademlia, config, params, options, rng);
  const sim::IdSpace space(10);
  const auto dense_result =
      run_churn_trajectory(TrajectoryGeometry::kXor, space, params, options,
                           rng);
  EXPECT_NEAR(sparse_result.overall.routability(),
              dense_result.overall.routability(), 0.03);
  // Same slot-level lifecycle chain: alive fractions agree tightly.
  EXPECT_NEAR(sparse_result.mean_alive_fraction,
              dense_result.mean_alive_fraction, 0.01);

  const double q_eff = effective_q(params);
  math::Rng build_rng(44);
  const sim::XorOverlay overlay(space, build_rng);
  math::Rng fail_rng(45);
  const sim::FailureScenario failures(space, q_eff, fail_rng);
  const math::Rng route_rng(46);
  const auto static_estimate = sim::estimate_routability_parallel(
      overlay, failures, {.pairs = 60000}, route_rng);
  EXPECT_NEAR(sparse_result.overall.routability(),
              static_estimate.routability(), 0.04)
      << "q_eff=" << q_eff;

  // Eager repair pushes both engines toward the fully repaired regime.
  TrajectoryOptions repaired = options;
  repaired.repair_probability = 0.7;
  const auto sparse_repaired = run_sparse_churn_trajectory(
      SparseChurnGeometry::kKademlia, config, params, repaired, rng);
  const auto dense_repaired = run_churn_trajectory(
      TrajectoryGeometry::kXor, space, params, repaired, rng);
  EXPECT_NEAR(sparse_repaired.overall.routability(),
              dense_repaired.overall.routability(), 0.015);
  EXPECT_GT(sparse_repaired.overall.routability(), 0.985);
}

TEST(SparseChurn, SuccessorListsRescueTheRingUnderChurn) {
  // The paper's sequential-neighbors resilience, finally under churn: with
  // heavy turnover and a long refresh interval, bare successor-of-key
  // fingers decay (and without notify a joiner's predecessor is blind to
  // it), while s clockwise successors with per-round list repair keep the
  // ring near-perfectly routable.
  const ChurnParams params{.death_per_round = 0.05,
                           .rebirth_per_round = 0.05,
                           .refresh_interval = 30};
  const TrajectoryOptions options{.warmup_rounds = 60,
                                  .measured_rounds = 3,
                                  .pairs_per_round = 800,
                                  .shards = 4};
  double previous = -1.0;
  for (const int s : {0, 4, 8}) {
    const SparseChurnConfig config{
        .bits = 32, .capacity = 4096, .successors = s, .shortcuts = 6};
    const auto result = run_sparse_churn_trajectory(
        SparseChurnGeometry::kChord, config, params, options, math::Rng(7));
    EXPECT_GT(result.overall.routability(), previous) << "s=" << s;
    previous = result.overall.routability();
    if (s == 0) {
      EXPECT_LT(result.overall.routability(), 0.6);
    } else {
      EXPECT_GT(result.overall.routability(), 0.9) << "s=" << s;
    }
  }
  EXPECT_GT(previous, 0.98);  // s = 8
}

TEST(SparseChurn, JoinAnnouncementHealsNewcomerBlindness) {
  // Without announcement a joiner is invisible to stale in-edges until
  // their owners refresh (identities never return), so routes toward
  // recent joiners fail -- a dynamic-membership failure mode the dense
  // model cannot express.  Kademlia's deep-bucket inserts must close most
  // of that gap.
  const ChurnParams params{.death_per_round = 0.02,
                           .rebirth_per_round = 0.08,
                           .refresh_interval = 10};
  const TrajectoryOptions options{.warmup_rounds = 60,
                                  .measured_rounds = 4,
                                  .pairs_per_round = 1000,
                                  .shards = 8};
  SparseChurnConfig config{
      .bits = 10, .capacity = 1024, .successors = 0, .shortcuts = 4};
  config.announce = 0;
  const auto blind = run_sparse_churn_trajectory(
      SparseChurnGeometry::kKademlia, config, params, options,
      math::Rng(101));
  config.announce = 8;
  const auto announced = run_sparse_churn_trajectory(
      SparseChurnGeometry::kKademlia, config, params, options,
      math::Rng(101));
  EXPECT_GT(announced.overall.routability(),
            blind.overall.routability() + 0.03);
}

TEST(SparseChurn, CollapsedPopulationHonorsEmptyEstimateContract) {
  // The ChurnWorld::measure contract carried over: with fewer than two
  // present nodes there is nothing to sample, so measure returns an empty
  // estimate -- and the world keeps stepping (joins can repopulate it).
  const ChurnParams params{.death_per_round = 0.99,
                           .rebirth_per_round = 0.005,
                           .refresh_interval = 3};
  const SparseChurnConfig config{
      .bits = 8, .capacity = 8, .successors = 2, .shortcuts = 2};
  SparseChurnWorld world(SparseChurnGeometry::kChord, config, params, 0.5, 0,
                         math::Rng(83));
  bool collapsed = false;
  for (int round = 0; round < 300 && !collapsed; ++round) {
    collapsed = world.population() < 2;
    if (!collapsed) {
      world.step();
    }
  }
  ASSERT_TRUE(collapsed) << "population never dropped below 2";
  const auto estimate = world.measure(100);
  EXPECT_EQ(estimate.attempts, 0u);
  EXPECT_EQ(estimate.hops.count(), 0u);
  EXPECT_EQ(estimate.hop_limit_hits(), 0u);
  EXPECT_EQ(estimate.routability(), 0.0);
  // The world must survive further rounds (and possibly repopulate.)
  for (int round = 0; round < 50; ++round) {
    world.step();
  }
  (void)world.measure(50);
}

// Full-field estimate equality, the availability counters included --
// expect_identical covers only the routing side.
void expect_estimates_equal(const sparse::SparseEstimate& a,
                            const sparse::SparseEstimate& b,
                            const std::string& what) {
  expect_identical(a, b, what.c_str());
  EXPECT_EQ(a.gets, b.gets) << what;
  EXPECT_EQ(a.gets_available, b.gets_available) << what;
}

TEST(SparseChurn, BatchedMatchesScalarPerPair) {
  // The tentpole gate: the 8-lane batched sync path must agree with the
  // scalar reference path PER PAIR -- not merely in aggregate -- across
  // every geometry, bucket width, successor-list length, and replication
  // factor.  Two worlds share a seed (identical rng lineage); measuring
  // one pair at a time makes each call's estimate a single pair's
  // outcome, so any kernel divergence pins itself to the exact pair.
  const ChurnParams params{.death_per_round = 0.06,
                           .rebirth_per_round = 0.06,
                           .refresh_interval = 4};
  for (const SparseChurnGeometry geometry : kAllGeometries) {
    for (const int bucket_k : {1, 4}) {
      if (geometry != SparseChurnGeometry::kKademlia && bucket_k != 1) {
        continue;  // bucket width shapes only the kademlia rows
      }
      for (const int successors : {0, 4}) {
        for (const int replicas : {1, 3}) {
          const SparseChurnConfig config{.bits = 16,
                                         .capacity = 600,
                                         .successors = successors,
                                         .shortcuts = 4,
                                         .bucket_k = bucket_k,
                                         .replicas = replicas};
          const std::string what =
              std::string(to_string(geometry)) +
              " k=" + std::to_string(bucket_k) +
              " s=" + std::to_string(successors) +
              " r=" + std::to_string(replicas);
          SparseChurnWorld scalar_world(geometry, config, params, 0.0, 0,
                                        math::Rng(91));
          SparseChurnWorld batched_world(geometry, config, params, 0.0, 0,
                                         math::Rng(91));
          scalar_world.set_batch_routes(false);
          batched_world.set_batch_routes(true);
          for (int round = 0; round < 6; ++round) {
            scalar_world.step();
            batched_world.step();
            for (int pair = 0; pair < 40; ++pair) {
              expect_estimates_equal(
                  scalar_world.measure(1), batched_world.measure(1),
                  what + " round " + std::to_string(round) + " pair " +
                      std::to_string(pair));
            }
          }
          // The load accounting (bumps per forward, including the bump a
          // dropping hop charges) must agree exactly as well.
          EXPECT_EQ(scalar_world.load_summary(), batched_world.load_summary())
              << what;
        }
      }
    }
  }
}

TEST(SparseChurn, BatchedTrajectoryMatchesScalarTrajectory) {
  // End-to-end over the sharded engine: TrajectoryOptions::batch_routes
  // flips the measurement path only, so every per-round estimate and
  // diagnostic must be bit-identical between the two settings.
  const ChurnParams params{.death_per_round = 0.04,
                           .rebirth_per_round = 0.06,
                           .refresh_interval = 5};
  const SparseChurnConfig config{.bits = 24,
                                 .capacity = 900,
                                 .successors = 3,
                                 .shortcuts = 4,
                                 .bucket_k = 2,
                                 .replicas = 2,
                                 .zipf_s = 0.8};
  for (const SparseChurnGeometry geometry : kAllGeometries) {
    TrajectoryOptions options{.warmup_rounds = 6,
                              .measured_rounds = 3,
                              .pairs_per_round = 500,
                              .shards = 4,
                              .repair_probability = 0.2};
    options.batch_routes = true;
    const auto batched = run_sparse_churn_trajectory(
        geometry, config, params, options, math::Rng(29));
    options.batch_routes = false;
    const auto scalar = run_sparse_churn_trajectory(
        geometry, config, params, options, math::Rng(29));
    ASSERT_EQ(batched.per_round.size(), scalar.per_round.size());
    for (std::size_t r = 0; r < batched.per_round.size(); ++r) {
      expect_estimates_equal(scalar.per_round[r], batched.per_round[r],
                             std::string(to_string(geometry)) + " round " +
                                 std::to_string(r));
    }
    expect_estimates_equal(scalar.overall, batched.overall,
                           to_string(geometry));
    EXPECT_EQ(scalar.mean_population, batched.mean_population);
    EXPECT_EQ(scalar.mean_alive_fraction, batched.mean_alive_fraction);
    EXPECT_EQ(scalar.mean_entry_age, batched.mean_entry_age);
    EXPECT_EQ(scalar.load_max, batched.load_max);
    EXPECT_EQ(scalar.load_p99, batched.load_p99);
    EXPECT_EQ(scalar.load_cv, batched.load_cv);
  }
}

TEST(SparseChurn, BatchedPathHonorsZeroPairAndCollapsedContracts) {
  // The batched driver inherits measure()'s boundary contracts: zero
  // pairs draw nothing (the measurement rng stream must not move), and a
  // collapsed population returns the empty estimate without touching a
  // lane.
  const ChurnParams params{.death_per_round = 0.99,
                           .rebirth_per_round = 0.005,
                           .refresh_interval = 3};
  const SparseChurnConfig config{
      .bits = 8, .capacity = 8, .successors = 2, .shortcuts = 2,
      .replicas = 3};
  SparseChurnWorld world(SparseChurnGeometry::kChord, config, params, 0.0, 0,
                         math::Rng(83));
  world.set_batch_routes(true);
  world.step();
  const auto none = world.measure(0);
  EXPECT_EQ(none.attempts, 0u);
  EXPECT_EQ(none.gets, 0u);
  // Zero pairs consumed no rng: a twin world that never measured zero
  // pairs produces the same next estimate.
  SparseChurnWorld twin(SparseChurnGeometry::kChord, config, params, 0.0, 0,
                        math::Rng(83));
  twin.set_batch_routes(true);
  twin.step();
  expect_estimates_equal(world.measure(20), twin.measure(20), "zero-pair");
  bool collapsed = false;
  for (int round = 0; round < 300 && !collapsed; ++round) {
    collapsed = world.population() < 2;
    if (!collapsed) {
      world.step();
    }
  }
  ASSERT_TRUE(collapsed) << "population never dropped below 2";
  const auto estimate = world.measure(100);
  EXPECT_EQ(estimate.attempts, 0u);
  EXPECT_EQ(estimate.gets, 0u);
  EXPECT_EQ(estimate.gets_available, 0u);
  EXPECT_EQ(estimate.routability(), 0.0);
}

TEST(SparseChurn, SweepCoversGridInOrderAndIsReproducible) {
  SparseChurnSweepSpec spec;
  spec.geometry = SparseChurnGeometry::kKademlia;
  spec.bits = {24, 32};
  spec.populations = {512};
  spec.churn = {ChurnParams{.death_per_round = 0.02,
                            .rebirth_per_round = 0.08,
                            .refresh_interval = 5}};
  spec.repair = {0.0, 0.8};
  spec.successors = {0, 3};
  spec.options = TrajectoryOptions{.warmup_rounds = 6,
                                   .measured_rounds = 2,
                                   .pairs_per_round = 200,
                                   .shards = 2};
  spec.seed = 7;
  const auto points = run_sparse_churn_sweep(spec);
  ASSERT_EQ(points.size(), 8u);  // 2 bits x 2 repair x 2 successors
  // Nesting order: bits outermost, successors innermost.
  EXPECT_EQ(points[0].bits, 24);
  EXPECT_EQ(points[0].repair_probability, 0.0);
  EXPECT_EQ(points[0].successors, 0);
  EXPECT_EQ(points[1].successors, 3);
  EXPECT_EQ(points[2].repair_probability, 0.8);
  EXPECT_EQ(points[4].bits, 32);
  for (const auto& point : points) {
    EXPECT_EQ(point.population, 512u);
    EXPECT_EQ(point.capacity, capacity_for_population(512, point.params));
    EXPECT_NEAR(point.q_eff, effective_q(point.params), 1e-15);
    EXPECT_EQ(point.result.per_round.size(), 2u);
    EXPECT_GT(point.result.overall.attempts, 0u);
  }
  const auto again = run_sparse_churn_sweep(spec);
  ASSERT_EQ(again.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    expect_identical(points[i].result.overall, again[i].result.overall,
                     "sweep-repeat");
  }
}

TEST(SparseChurn, CapacityForPopulationInvertsAvailability) {
  const ChurnParams params{.death_per_round = 0.02,
                           .rebirth_per_round = 0.08,
                           .refresh_interval = 10};  // a = 0.8
  EXPECT_EQ(capacity_for_population(1000, params), 1250u);
  EXPECT_EQ(capacity_for_population(100000, params), 125000u);
  EXPECT_EQ(capacity_for_population(0, params), 2u);
  // Clamped into the membership roster cap instead of throwing mid-sweep.
  EXPECT_EQ(capacity_for_population(60000000, params),
            std::uint64_t{1} << 26);
}

TEST(SparseChurn, RejectsDegenerateInputs) {
  const ChurnParams params{};
  const SparseChurnConfig config{
      .bits = 16, .capacity = 64, .successors = 2, .shortcuts = 2};
  const math::Rng rng(51);
  EXPECT_THROW(run_sparse_churn_trajectory(SparseChurnGeometry::kChord,
                                           config, params,
                                           {.measured_rounds = 0}, rng),
               PreconditionError);
  EXPECT_THROW(run_sparse_churn_trajectory(SparseChurnGeometry::kChord,
                                           config, params,
                                           {.pairs_per_round = 0}, rng),
               PreconditionError);
  EXPECT_THROW(run_sparse_churn_trajectory(SparseChurnGeometry::kChord,
                                           config, params,
                                           {.repair_probability = 1.5}, rng),
               PreconditionError);
  EXPECT_THROW(
      SparseChurnWorld(SparseChurnGeometry::kChord,
                       SparseChurnConfig{.bits = 0, .capacity = 64}, params,
                       0.0, 0, rng),
      PreconditionError);
  EXPECT_THROW(
      SparseChurnWorld(SparseChurnGeometry::kChord,
                       SparseChurnConfig{.bits = 16, .capacity = 1}, params,
                       0.0, 0, rng),
      PreconditionError);
  EXPECT_THROW(
      SparseChurnWorld(SparseChurnGeometry::kChord,
                       SparseChurnConfig{.bits = 4, .capacity = 64}, params,
                       0.0, 0, rng),
      PreconditionError);
  EXPECT_THROW(
      SparseChurnWorld(
          SparseChurnGeometry::kChord,
          SparseChurnConfig{.bits = 16, .capacity = 64, .successors = -1},
          params, 0.0, 0, rng),
      PreconditionError);
  for (const int bad_k : {0, -1, 65}) {
    SparseChurnConfig bad{.bits = 16, .capacity = 64};
    bad.bucket_k = bad_k;
    EXPECT_THROW(SparseChurnWorld(SparseChurnGeometry::kKademlia, bad,
                                  params, 0.0, 0, rng),
                 PreconditionError)
        << "k=" << bad_k;
  }
  {
    SparseChurnConfig bad{.bits = 16, .capacity = 64};
    bad.session = SessionModel{.kind = SessionKind::kPareto,
                               .pareto_alpha = 1.0};
    EXPECT_THROW(SparseChurnWorld(SparseChurnGeometry::kKademlia, bad,
                                  params, 0.0, 0, rng),
                 PreconditionError);
  }
  SparseChurnSweepSpec empty;
  empty.successors.clear();
  EXPECT_THROW(run_sparse_churn_sweep(empty), PreconditionError);
}

TEST(SparseChurn, GeometryNamesRoundTrip) {
  SparseChurnGeometry geometry = SparseChurnGeometry::kChord;
  for (const char* name : {"ring", "xor", "symphony"}) {
    ASSERT_TRUE(sparse_churn_geometry_from_name(name, geometry)) << name;
    EXPECT_STREQ(to_string(geometry), name);
  }
  EXPECT_FALSE(sparse_churn_geometry_from_name("tree", geometry));
  EXPECT_FALSE(sparse_churn_geometry_from_name("", geometry));
}

}  // namespace
}  // namespace dht::churn
