#include "math/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dht::math {
namespace {

TEST(Proportion, PointEstimate) {
  Proportion p;
  EXPECT_EQ(p.point(), 0.0);
  p.record(true);
  p.record(true);
  p.record(false);
  p.record(true);
  EXPECT_DOUBLE_EQ(p.point(), 0.75);
  EXPECT_EQ(p.successes, 3u);
  EXPECT_EQ(p.trials, 4u);
}

TEST(Proportion, WilsonIntervalContainsPoint) {
  Proportion p;
  for (int i = 0; i < 100; ++i) {
    p.record(i < 37);
  }
  const Interval ci = p.wilson(1.96);
  EXPECT_TRUE(ci.contains(p.point()));
  EXPECT_GT(ci.lo, 0.25);
  EXPECT_LT(ci.hi, 0.50);
}

TEST(Proportion, WilsonKnownValue) {
  // 37/100 at z = 1.96: center = (p + z^2/2n)/(1 + z^2/n) = 0.374809,
  // spread = 0.092987, giving [0.281822, 0.467797].
  Proportion p{37, 100};
  const Interval ci = p.wilson(1.96);
  EXPECT_NEAR(ci.lo, 0.281822, 5e-4);
  EXPECT_NEAR(ci.hi, 0.467797, 5e-4);
}

TEST(Proportion, WilsonBehavedAtExtremes) {
  Proportion all{100, 100};
  const Interval hi = all.wilson(1.96);
  EXPECT_GT(hi.lo, 0.95);
  EXPECT_DOUBLE_EQ(hi.hi, 1.0);

  Proportion none{0, 100};
  const Interval lo = none.wilson(1.96);
  EXPECT_DOUBLE_EQ(lo.lo, 0.0);
  EXPECT_LT(lo.hi, 0.05);
}

TEST(Proportion, WilsonShrinksWithTrials) {
  Proportion small{5, 10};
  Proportion large{5000, 10000};
  EXPECT_GT(small.wilson(1.96).width(), large.wilson(1.96).width());
}

TEST(Proportion, WilsonRejectsDegenerate) {
  Proportion empty;
  EXPECT_THROW(empty.wilson(1.96), PreconditionError);
  Proportion ok{1, 2};
  EXPECT_THROW(ok.wilson(0.0), PreconditionError);
}

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic example is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, FewSamples) {
  RunningStat s;
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.mean(), 3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(RunningStat, NumericallyStableAroundLargeOffset) {
  // Welford must not cancel: variance of {1e9 + 4, 1e9 + 7, 1e9 + 13,
  // 1e9 + 16} is exactly 30.
  RunningStat s;
  for (double x : {4.0, 7.0, 13.0, 16.0}) {
    s.add(1e9 + x);
  }
  EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

TEST(Interval, ContainsAndWidth) {
  const Interval i{0.2, 0.6};
  EXPECT_TRUE(i.contains(0.2));
  EXPECT_TRUE(i.contains(0.6));
  EXPECT_TRUE(i.contains(0.4));
  EXPECT_FALSE(i.contains(0.1));
  EXPECT_FALSE(i.contains(0.7));
  EXPECT_NEAR(i.width(), 0.4, 1e-15);
}

}  // namespace
}  // namespace dht::math
