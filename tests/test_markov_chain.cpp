#include "markov/chain.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dht::markov {
namespace {

TEST(Chain, AddStateAssignsSequentialIds) {
  Chain chain;
  EXPECT_EQ(chain.add_state("a"), 0);
  EXPECT_EQ(chain.add_state("b"), 1);
  EXPECT_EQ(chain.state_count(), 2);
  EXPECT_EQ(chain.state_name(0), "a");
  EXPECT_EQ(chain.state_name(1), "b");
}

TEST(Chain, AbsorbingIffNoOutgoingEdges) {
  Chain chain;
  const StateId a = chain.add_state("a");
  const StateId b = chain.add_state("b");
  chain.add_transition(a, b, 1.0);
  EXPECT_FALSE(chain.is_absorbing(a));
  EXPECT_TRUE(chain.is_absorbing(b));
}

TEST(Chain, ZeroProbabilityEdgesAreDropped) {
  Chain chain;
  const StateId a = chain.add_state("a");
  const StateId b = chain.add_state("b");
  chain.add_transition(a, b, 0.0);
  EXPECT_TRUE(chain.transitions_from(a).empty());
  EXPECT_TRUE(chain.is_absorbing(a));
}

TEST(Chain, ValidateAcceptsStochasticRows) {
  Chain chain;
  const StateId a = chain.add_state("a");
  const StateId b = chain.add_state("b");
  const StateId c = chain.add_state("c");
  chain.add_transition(a, b, 0.3);
  chain.add_transition(a, c, 0.7);
  EXPECT_NO_THROW(chain.validate());
}

TEST(Chain, ValidateRejectsLeakyRows) {
  Chain chain;
  const StateId a = chain.add_state("a");
  const StateId b = chain.add_state("b");
  chain.add_transition(a, b, 0.5);
  EXPECT_THROW(chain.validate(), PreconditionError);
}

TEST(Chain, RejectsOutOfRangeProbability) {
  Chain chain;
  const StateId a = chain.add_state("a");
  const StateId b = chain.add_state("b");
  EXPECT_THROW(chain.add_transition(a, b, 1.5), PreconditionError);
  EXPECT_THROW(chain.add_transition(a, b, -0.5), PreconditionError);
}

TEST(Chain, RejectsUnknownStates) {
  Chain chain;
  const StateId a = chain.add_state("a");
  EXPECT_THROW(chain.add_transition(a, 7, 1.0), PreconditionError);
  EXPECT_THROW(chain.add_transition(7, a, 1.0), PreconditionError);
  EXPECT_THROW(chain.state_name(3), PreconditionError);
  EXPECT_THROW((void)chain.is_absorbing(-1), PreconditionError);
}

TEST(Chain, TopologicalOrderOnDag) {
  Chain chain;
  const StateId a = chain.add_state("a");
  const StateId b = chain.add_state("b");
  const StateId c = chain.add_state("c");
  chain.add_transition(a, b, 0.5);
  chain.add_transition(a, c, 0.5);
  chain.add_transition(b, c, 1.0);
  const auto order = chain.topological_order();
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 3u);
  // a must precede b, b must precede c.
  auto pos = [&](StateId s) {
    for (size_t i = 0; i < order->size(); ++i) {
      if ((*order)[i] == s) {
        return i;
      }
    }
    return size_t{99};
  };
  EXPECT_LT(pos(a), pos(b));
  EXPECT_LT(pos(b), pos(c));
}

TEST(Chain, TopologicalOrderDetectsCycle) {
  Chain chain;
  const StateId a = chain.add_state("a");
  const StateId b = chain.add_state("b");
  chain.add_transition(a, b, 1.0);
  chain.add_transition(b, a, 1.0);
  EXPECT_FALSE(chain.topological_order().has_value());
}

TEST(Chain, SelfLoopIsACycle) {
  Chain chain;
  const StateId a = chain.add_state("a");
  chain.add_transition(a, a, 1.0);
  EXPECT_FALSE(chain.topological_order().has_value());
}

}  // namespace
}  // namespace dht::markov
