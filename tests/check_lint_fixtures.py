#!/usr/bin/env python3
"""ctest driver for scripts/lint_determinism.py.

Two halves:
  1. The fixture tree under tests/lint_fixtures/ -- one known-bad snippet
     per rule -- must produce exactly the expected findings: every bad
     fixture flags its rule, every ok fixture stays silent, the escape
     hatch suppresses and the degenerate escape hatches (missing reason,
     stale annotation) are themselves reported.
  2. The real source tree must pass clean, so the CI gate and this test
     can never drift apart.

Usage: check_lint_fixtures.py <repo-root>
"""

import json
import os
import subprocess
import sys


def run_lint(repo_root, scan_root):
    lint = os.path.join(repo_root, "scripts", "lint_determinism.py")
    proc = subprocess.run(
        [sys.executable, lint, "--root", scan_root, "--json"],
        capture_output=True, text=True, check=False)
    if proc.returncode not in (0, 1):
        raise SystemExit(
            f"lint_determinism.py crashed (exit {proc.returncode}):\n"
            f"{proc.stdout}{proc.stderr}")
    findings = [json.loads(line) for line in proc.stdout.splitlines()
                if line.strip()]
    return proc.returncode, findings


# (path, rule) -> minimum number of findings expected in the fixture tree.
EXPECTED_FIXTURE_FINDINGS = {
    ("src/core/bad_wallclock.cpp", "wallclock"): 5,
    ("src/sim/bad_unordered.cpp", "unordered-iter"): 2,
    ("src/sim/bad_fp_merge.hpp", "fp-merge"): 2,
    ("src/sim/bad_atomic.cpp", "atomic-order"): 3,
    ("src/sim/bad_global.cpp", "kernel-global"): 1,
    ("src/sim/bad_allow_no_reason.cpp", "allow-missing-reason"): 1,
    ("src/sim/bad_stale_allow.cpp", "allow-missing-reason"): 1,
}

# Files that must produce NO findings at all.
EXPECTED_CLEAN_FIXTURES = (
    "src/obs/ok_wallclock.cpp",
    "bench/ok_wallclock.cpp",
    "src/sim/ok_allow.cpp",
    "src/sim/ok_clean.cpp",
)

# (path, rule) pairs that must NOT appear: suppressed by the escape hatch
# or scoped out by the rule definition.
FORBIDDEN_FINDINGS = (
    ("src/sim/bad_allow_no_reason.cpp", "atomic-order"),
    ("src/sim/bad_global.cpp", "wallclock"),
    ("src/sim/ok_clean.cpp", "kernel-global"),
    ("src/sim/ok_clean.cpp", "fp-merge"),
    ("src/sim/ok_clean.cpp", "atomic-order"),
)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    repo_root = os.path.abspath(sys.argv[1])
    fixture_root = os.path.join(repo_root, "tests", "lint_fixtures")
    failures = []

    # ---- fixture half ---------------------------------------------------
    exit_code, findings = run_lint(repo_root, fixture_root)
    if exit_code != 1:
        failures.append(
            f"fixture tree should exit 1 (findings present), got {exit_code}")
    counts = {}
    for finding in findings:
        counts[(finding["path"], finding["rule"])] = (
            counts.get((finding["path"], finding["rule"]), 0) + 1)

    for (path, rule), minimum in EXPECTED_FIXTURE_FINDINGS.items():
        got = counts.get((path, rule), 0)
        if got < minimum:
            failures.append(
                f"{path}: expected >= {minimum} [{rule}] finding(s), got {got}")
    for path in EXPECTED_CLEAN_FIXTURES:
        hits = [(p, r) for (p, r) in counts if p == path]
        if hits:
            failures.append(f"{path}: expected clean, got {hits}")
    for path, rule in FORBIDDEN_FINDINGS:
        if (path, rule) in counts:
            failures.append(f"{path}: rule [{rule}] must not fire here")

    # Every finding must name a fixture file that exists -- catches path
    # normalization bugs in the lint itself.
    for finding in findings:
        if not os.path.exists(os.path.join(fixture_root, finding["path"])):
            failures.append(f"finding names missing file: {finding['path']}")

    # ---- real-tree half -------------------------------------------------
    exit_code, findings = run_lint(repo_root, repo_root)
    if exit_code != 0 or findings:
        detail = "\n".join(
            f"  {f['path']}:{f['line']}: [{f['rule']}] {f['message']}"
            for f in findings)
        failures.append(
            f"real source tree must pass the determinism lint clean "
            f"(exit {exit_code}):\n{detail}")

    if failures:
        print("check_lint_fixtures: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("check_lint_fixtures: OK "
          f"({len(EXPECTED_FIXTURE_FINDINGS)} bad fixtures flagged, "
          f"{len(EXPECTED_CLEAN_FIXTURES)} ok fixtures clean, real tree clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
