// Systematic property sweeps across all five geometries -- the invariants
// every RCM geometry must satisfy, enforced on a (geometry x q) grid via
// parameterized tests rather than per-geometry spot checks.
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/routability.hpp"
#include "core/scalability.hpp"
#include "markov/absorption.hpp"
#include "markov/builders.hpp"
#include "markov/walker.hpp"
#include "math/logreal.hpp"
#include "math/rng.hpp"

namespace dht::core {
namespace {

using Param = std::tuple<GeometryKind, double>;

class GeometryProperties : public ::testing::TestWithParam<Param> {
 protected:
  std::unique_ptr<Geometry> geometry() const {
    return make_geometry(std::get<0>(GetParam()));
  }
  double q() const { return std::get<1>(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    Grid, GeometryProperties,
    ::testing::Combine(::testing::ValuesIn(all_geometry_kinds()),
                       ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75, 0.9)),
    [](const auto& test_info) {
      return std::string(to_string(std::get<0>(test_info.param))) + "_q" +
             std::to_string(static_cast<int>(std::get<1>(test_info.param) * 100));
    });

TEST_P(GeometryProperties, PhaseFailureIsAProbability) {
  const auto g = geometry();
  for (int d : {8, 16, 64}) {
    for (int m = 1; m <= d; ++m) {
      const double failure = g->phase_failure(m, q(), d);
      EXPECT_GE(failure, 0.0) << "d=" << d << " m=" << m;
      EXPECT_LE(failure, 1.0) << "d=" << d << " m=" << m;
    }
  }
}

TEST_P(GeometryProperties, PhaseFailureVanishesAtQZero) {
  const auto g = geometry();
  for (int m = 1; m <= 16; ++m) {
    EXPECT_EQ(g->phase_failure(m, 0.0, 16), 0.0) << "m=" << m;
  }
}

TEST_P(GeometryProperties, SuccessProbabilityMonotoneInDistance) {
  const auto g = geometry();
  const int d = 16;
  double previous = 1.0;
  for (int h = 1; h <= d; ++h) {
    const double p = g->success_probability(h, q(), d);
    EXPECT_LE(p, previous + 1e-14) << "h=" << h;
    EXPECT_GE(p, 0.0);
    previous = p;
  }
}

TEST_P(GeometryProperties, SuccessProbabilityMonotoneInFailure) {
  const auto g = geometry();
  const int d = 16;
  const int h = 8;
  double previous = 1.0;
  for (double qq = 0.0; qq < 0.95; qq += 0.05) {
    const double p = g->success_probability(h, qq, d);
    EXPECT_LE(p, previous + 1e-12) << "q=" << qq;
    previous = p;
  }
}

TEST_P(GeometryProperties, LogAndLinearSuccessAgree) {
  const auto g = geometry();
  const int d = 16;
  for (int h : {1, 5, 12, 16}) {
    const double linear = g->success_probability(h, q(), d);
    const double logged = std::exp(g->log_success_probability(h, q(), d));
    EXPECT_NEAR(linear, logged, 1e-12 * (1.0 + linear)) << "h=" << h;
  }
}

TEST_P(GeometryProperties, DistanceCountsSumToPeers) {
  const auto g = geometry();
  for (int d : {6, 12, 20}) {
    math::LogSum sum;
    for (int h = 1; h <= d; ++h) {
      sum.add(g->distance_count(h, d));
    }
    EXPECT_NEAR(sum.total().log(), std::log(std::exp2(d) - 1.0), 1e-9)
        << "d=" << d;
  }
}

TEST_P(GeometryProperties, DistanceCountOutOfDomainIsZero) {
  const auto g = geometry();
  EXPECT_TRUE(g->distance_count(0, 12).is_zero());
  EXPECT_TRUE(g->distance_count(13, 12).is_zero());
  EXPECT_TRUE(g->distance_count(-1, 12).is_zero());
}

TEST_P(GeometryProperties, RoutabilityWithinUnitInterval) {
  const auto g = geometry();
  for (int d : {4, 12, 24, 64}) {
    const RoutabilityPoint point = evaluate_routability(*g, d, q());
    EXPECT_GE(point.routability, 0.0) << "d=" << d;
    EXPECT_LE(point.routability, 1.0) << "d=" << d;
    EXPECT_GE(point.conditional_success, 0.0) << "d=" << d;
    EXPECT_LE(point.conditional_success, 1.0) << "d=" << d;
  }
}

TEST_P(GeometryProperties, LimitLowerBoundsFiniteSuccess) {
  // p(h, q) decreases to its limit: every finite-h value must be at least
  // the h -> infinity product.
  if (q() >= 0.9) {
    GTEST_SKIP() << "limit underflows to 0 for every geometry at q >= 0.9";
  }
  const auto g = geometry();
  const double limit = limit_success_probability(*g, q());
  const int d = 20;
  for (int h : {1, 5, 10, 20}) {
    EXPECT_GE(g->success_probability(h, q(), d) + 1e-12, limit)
        << "h=" << h;
  }
}

TEST_P(GeometryProperties, ChainAbsorptionMatchesClosedForm) {
  const auto g = geometry();
  const int d = 10;
  for (int h : {1, 3, 6, 10}) {
    markov::RoutingChain built = [&] {
      switch (g->kind()) {
        case GeometryKind::kTree:
          return markov::build_tree_chain(h, q());
        case GeometryKind::kHypercube:
          return markov::build_hypercube_chain(h, q());
        case GeometryKind::kXor:
          return markov::build_xor_chain(h, q());
        case GeometryKind::kRing:
          return markov::build_ring_chain(h, q());
        case GeometryKind::kSymphony:
          return markov::build_symphony_chain(h, d, q(), 1, 1);
      }
      return markov::build_tree_chain(1, 0.0);
    }();
    const double chain_p = markov::absorption_probability_dag(
        built.chain, built.start, built.success);
    EXPECT_NEAR(chain_p, g->success_probability(h, q(), d), 1e-10)
        << "h=" << h;
  }
}

TEST_P(GeometryProperties, WalkerAgreesWithChain) {
  // Monte-Carlo trajectories through the chain: the third estimate of
  // p(h, q), good to sampling noise.
  const auto g = geometry();
  const int d = 10;
  const int h = 6;
  markov::RoutingChain built = [&] {
    switch (g->kind()) {
      case GeometryKind::kTree:
        return markov::build_tree_chain(h, q());
      case GeometryKind::kHypercube:
        return markov::build_hypercube_chain(h, q());
      case GeometryKind::kXor:
        return markov::build_xor_chain(h, q());
      case GeometryKind::kRing:
        return markov::build_ring_chain(h, q());
      case GeometryKind::kSymphony:
        return markov::build_symphony_chain(h, d, q(), 1, 1);
    }
    return markov::build_tree_chain(1, 0.0);
  }();
  math::Rng rng(static_cast<std::uint64_t>(q() * 1000) + 7);
  const auto estimate = markov::estimate_absorption(
      built.chain, built.start, built.success, 40000, rng);
  const double exact = g->success_probability(h, q(), d);
  // 5-sigma band on 40k Bernoulli trials.
  const double sigma = std::sqrt(std::max(exact * (1 - exact), 1e-6) / 40000);
  EXPECT_NEAR(estimate.point(), exact, 5 * sigma + 1e-4);
}

TEST_P(GeometryProperties, ScalabilityVerdictStableAcrossQ) {
  // Definition 2 classifies the geometry, not the operating point: the
  // verdict must not flip with q.
  const auto g = geometry();
  const auto verdict = g->scalability_class();
  if (q() > 0.0 && q() < 1.0) {
    const ScalabilityReport report = analyze_scalability(*g, q());
    EXPECT_EQ(report.analytic, verdict);
  }
}

}  // namespace
}  // namespace dht::core
