#include "core/scalability.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/registry.hpp"
#include "core/routability.hpp"

namespace dht::core {
namespace {

TEST(Scalability, PaperSection5Verdicts) {
  // The headline result: {hypercube, xor, ring} scalable,
  // {tree, symphony} unscalable.
  EXPECT_EQ(make_geometry(GeometryKind::kTree)->scalability_class(),
            ScalabilityClass::kUnscalable);
  EXPECT_EQ(make_geometry(GeometryKind::kHypercube)->scalability_class(),
            ScalabilityClass::kScalable);
  EXPECT_EQ(make_geometry(GeometryKind::kXor)->scalability_class(),
            ScalabilityClass::kScalable);
  EXPECT_EQ(make_geometry(GeometryKind::kRing)->scalability_class(),
            ScalabilityClass::kScalable);
  EXPECT_EQ(make_geometry(GeometryKind::kSymphony)->scalability_class(),
            ScalabilityClass::kUnscalable);
}

class ScalabilityAllGeometries
    : public ::testing::TestWithParam<GeometryKind> {};

INSTANTIATE_TEST_SUITE_P(AllKinds, ScalabilityAllGeometries,
                         ::testing::ValuesIn(all_geometry_kinds()),
                         [](const auto& test_info) {
                           return std::string(to_string(test_info.param));
                         });

TEST_P(ScalabilityAllGeometries, NumericDiagnosisAgreesWithAnalytic) {
  const auto geometry = make_geometry(GetParam());
  for (double q : {0.1, 0.3, 0.5}) {
    const ScalabilityReport report = analyze_scalability(*geometry, q);
    EXPECT_TRUE(report.numeric_agrees)
        << to_string(GetParam()) << " q=" << q << ": numeric verdict "
        << math::to_string(report.numeric.verdict) << " vs analytic "
        << to_string(report.analytic) << " -- "
        << report.numeric.explanation;
  }
}

TEST_P(ScalabilityAllGeometries, LimitConsistentWithVerdict) {
  const auto geometry = make_geometry(GetParam());
  for (double q : {0.1, 0.3}) {
    const ScalabilityReport report = analyze_scalability(*geometry, q);
    if (report.analytic == ScalabilityClass::kScalable) {
      EXPECT_GT(report.limit_success, 0.0) << "q=" << q;
      EXPECT_GT(report.limit_routability, 0.0) << "q=" << q;
    } else {
      EXPECT_EQ(report.limit_success, 0.0) << "q=" << q;
      EXPECT_EQ(report.limit_routability, 0.0) << "q=" << q;
    }
    EXPECT_LE(report.limit_routability, 1.0 + 1e-12);
  }
}

TEST_P(ScalabilityAllGeometries, FiniteRoutabilityApproachesLimit) {
  // Definition 2 in action: r(N, q) at growing d must approach the
  // computed limit.
  const auto geometry = make_geometry(GetParam());
  const double q = 0.15;
  const double limit = limit_routability(*geometry, q);
  const double r_big = evaluate_routability(*geometry, 256, q).routability;
  EXPECT_NEAR(r_big, limit, 0.01)
      << to_string(GetParam()) << ": r(2^256) vs limit";
}

TEST(Scalability, HypercubeLimitIsEulerProduct) {
  // p_inf(q) = prod (1 - q^m); at q = 0.5 that is 0.288788...; the limit
  // routability divides by (1-q).
  const auto cube = make_geometry(GeometryKind::kHypercube);
  EXPECT_NEAR(limit_success_probability(*cube, 0.5), 0.288788095087, 1e-9);
  EXPECT_NEAR(limit_routability(*cube, 0.5), 0.288788095087 / 0.5, 1e-9);
}

TEST(Scalability, LimitAtQZeroIsOne) {
  for (GeometryKind kind : all_geometry_kinds()) {
    const auto geometry = make_geometry(kind);
    EXPECT_EQ(limit_success_probability(*geometry, 0.0), 1.0)
        << to_string(kind);
  }
}

TEST(Scalability, OrderingOfScalableLimits) {
  // Per-phase: Q_ring <= Q_xor; and hypercube has the mildest Q of all
  // three at the same q.  The limits must order accordingly.
  for (double q : {0.1, 0.3, 0.5}) {
    const double cube =
        limit_routability(*make_geometry(GeometryKind::kHypercube), q);
    const double ring =
        limit_routability(*make_geometry(GeometryKind::kRing), q);
    const double xr = limit_routability(*make_geometry(GeometryKind::kXor), q);
    EXPECT_GE(ring + 1e-12, xr) << "q=" << q;
    EXPECT_GE(cube + 1e-12, xr) << "q=" << q;
  }
}

TEST(Scalability, LimitsDecreaseInQ) {
  const auto xr = make_geometry(GeometryKind::kXor);
  double previous = 1.0;
  for (double q = 0.05; q < 0.9; q += 0.05) {
    const double limit = limit_routability(*xr, q);
    EXPECT_LE(limit, previous + 1e-12) << "q=" << q;
    previous = limit;
  }
}

TEST(Scalability, SymphonyProvisioningRaisesFiniteSizeRoutability) {
  // More links cannot rescue asymptotic scalability (Q stays constant in
  // m), but they do raise routability at any finite size -- the paper's
  // deployment guidance.
  const double q = 0.2;
  const int d = 20;
  const auto sparse = make_geometry(GeometryKind::kSymphony, {1, 1});
  const auto dense = make_geometry(GeometryKind::kSymphony, {4, 4});
  EXPECT_EQ(dense->scalability_class(), ScalabilityClass::kUnscalable);
  EXPECT_GT(evaluate_routability(*dense, d, q).routability,
            evaluate_routability(*sparse, d, q).routability + 0.1);
}

TEST(Scalability, ReportCarriesEvidence) {
  const auto tree = make_geometry(GeometryKind::kTree);
  const ScalabilityReport report = analyze_scalability(*tree, 0.25);
  EXPECT_EQ(report.kind, GeometryKind::kTree);
  EXPECT_EQ(report.q, 0.25);
  EXPECT_FALSE(report.numeric.explanation.empty());
  EXPECT_EQ(report.numeric.verdict, math::SeriesVerdict::kDivergent);
}

TEST(Scalability, RejectsBadArguments) {
  const auto tree = make_geometry(GeometryKind::kTree);
  EXPECT_THROW(analyze_scalability(*tree, 0.0), PreconditionError);
  EXPECT_THROW(analyze_scalability(*tree, 1.0), PreconditionError);
  EXPECT_THROW(limit_success_probability(*tree, -0.1), PreconditionError);
  LimitOptions bad;
  bad.d_reference = 0;
  EXPECT_THROW(limit_success_probability(*tree, 0.5, bad),
               PreconditionError);
}

}  // namespace
}  // namespace dht::core
