#include "math/rng.hpp"

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace dht::math {
namespace {

TEST(SplitMix64, KnownAnswerVector) {
  // Reference sequence for seed 1234567 from the SplitMix64 reference
  // implementation (Vigna).
  std::uint64_t state = 1234567;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  // The same seed must regenerate the same sequence.
  std::uint64_t replay = 1234567;
  EXPECT_EQ(splitmix64(replay), first);
  EXPECT_EQ(splitmix64(replay), second);
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a.next_u64() == b.next_u64()) ? 1 : 0;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(rng.next_u64());
  }
  EXPECT_EQ(seen.size(), 100u);  // not stuck at a fixed point
}

TEST(Rng, Uniform01InRangeAndCentered) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);  // SE ~ 0.0009; 5 sigma
}

TEST(Rng, UniformBelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Rng, UniformBelowCoversAllResidues) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    ++counts[rng.uniform_below(7)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);  // ~5 sigma for a fair die
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform_range(5, 8);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 8u);
    saw_lo = saw_lo || v == 5;
    saw_hi = saw_hi || v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      hits += rng.bernoulli(p) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01) << "p=" << p;
  }
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, ForkedStreamsAreDecorrelatedAndDeterministic) {
  const Rng parent(99);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  Rng child1_again = parent.fork(1);
  int equal12 = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = child1.next_u64();
    const std::uint64_t b = child2.next_u64();
    EXPECT_EQ(a, child1_again.next_u64());
    equal12 += (a == b) ? 1 : 0;
  }
  EXPECT_EQ(equal12, 0);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace dht::math
