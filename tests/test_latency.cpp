#include "core/latency.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/registry.hpp"
#include "markov/absorption.hpp"
#include "markov/builders.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace dht {
namespace {

TEST(ConditionalAbsorption, CoinChainHasOneStep) {
  markov::Chain chain;
  const auto start = chain.add_state("start");
  const auto win = chain.add_state("win");
  const auto lose = chain.add_state("lose");
  chain.add_transition(start, win, 0.3);
  chain.add_transition(start, lose, 0.7);
  const auto result = markov::conditional_absorption_dag(chain, start, win);
  EXPECT_NEAR(result.probability, 0.3, 1e-15);
  EXPECT_NEAR(result.expected_steps, 1.0, 1e-15);
}

TEST(ConditionalAbsorption, BranchingPathLengths) {
  // start -> win directly (0.5) or via mid (0.25), lose otherwise.
  // E[steps | win] = (0.5*1 + 0.25*2) / 0.75 = 4/3.
  markov::Chain chain;
  const auto start = chain.add_state("start");
  const auto mid = chain.add_state("mid");
  const auto win = chain.add_state("win");
  const auto lose = chain.add_state("lose");
  chain.add_transition(start, win, 0.5);
  chain.add_transition(start, mid, 0.25);
  chain.add_transition(start, lose, 0.25);
  chain.add_transition(mid, win, 1.0);
  const auto result = markov::conditional_absorption_dag(chain, start, win);
  EXPECT_NEAR(result.probability, 0.75, 1e-15);
  EXPECT_NEAR(result.expected_steps, 4.0 / 3.0, 1e-12);
}

TEST(ConditionalAbsorption, ZeroProbabilityGivesZeroSteps) {
  markov::Chain chain;
  const auto start = chain.add_state("start");
  const auto win = chain.add_state("win");
  const auto lose = chain.add_state("lose");
  chain.add_transition(start, lose, 1.0);
  (void)win;
  const auto result = markov::conditional_absorption_dag(chain, start, win);
  EXPECT_EQ(result.probability, 0.0);
  EXPECT_EQ(result.expected_steps, 0.0);
}

TEST(LatencyAtDistance, TreeAndHypercubeTakeExactlyHHops) {
  // Every transition in those chains advances a phase: a successful route
  // to distance h takes exactly h hops, at any q.
  const auto tree = core::make_geometry(core::GeometryKind::kTree);
  const auto cube = core::make_geometry(core::GeometryKind::kHypercube);
  for (double q : {0.0, 0.2, 0.6}) {
    for (int h : {1, 4, 9}) {
      EXPECT_NEAR(core::latency_at_distance(*tree, h, 12, q).expected_hops,
                  h, 1e-12);
      EXPECT_NEAR(core::latency_at_distance(*cube, h, 12, q).expected_hops,
                  h, 1e-12);
    }
  }
}

TEST(LatencyAtDistance, FallbackAddsHopsUnderFailure) {
  // XOR at q = 0: h hops.  Under failure, suboptimal hops stretch the
  // successful routes beyond h.
  const auto xr = core::make_geometry(core::GeometryKind::kXor);
  EXPECT_NEAR(core::latency_at_distance(*xr, 8, 12, 0.0).expected_hops, 8.0,
              1e-12);
  EXPECT_GT(core::latency_at_distance(*xr, 8, 12, 0.4).expected_hops, 8.0);
}

TEST(LatencyAtDistance, SuccessProbabilityMatchesGeometry) {
  // The chain's absorption probability must equal the closed-form p(h, q).
  for (core::GeometryKind kind :
       {core::GeometryKind::kTree, core::GeometryKind::kHypercube,
        core::GeometryKind::kXor, core::GeometryKind::kRing}) {
    const auto geometry = core::make_geometry(kind);
    for (double q : {0.1, 0.5}) {
      for (int h : {2, 6, 10}) {
        EXPECT_NEAR(
            core::latency_at_distance(*geometry, h, 12, q)
                .success_probability,
            geometry->success_probability(h, q, 12), 1e-10)
            << to_string(kind) << " q=" << q << " h=" << h;
      }
    }
  }
}

TEST(ExpectedLatency, FailureFreeMeansMeanDistance) {
  // q = 0: mean hops = mean routing distance = d 2^{d-1} / (2^d - 1) for
  // the C(d, h) geometries.
  const auto cube = core::make_geometry(core::GeometryKind::kHypercube);
  const int d = 12;
  const core::LatencyPoint point = core::expected_latency(*cube, d, 0.0);
  const double expected =
      d * std::exp2(d - 1) / (std::exp2(d) - 1.0);
  EXPECT_NEAR(point.mean_hops_given_success, expected, 1e-9);
  EXPECT_NEAR(point.success_fraction, 1.0, 1e-12);
}

TEST(ExpectedLatency, RingFailureFreeMeanDistanceIsDMinusOne) {
  // n(h) = 2^{h-1}: mean phase distance = sum h 2^{h-1} / (2^d - 1) ~ d-1.
  const auto ring = core::make_geometry(core::GeometryKind::kRing);
  const int d = 12;
  const core::LatencyPoint point = core::expected_latency(*ring, d, 0.0);
  double mean = 0.0;
  for (int h = 1; h <= d; ++h) {
    mean += h * std::exp2(h - 1);
  }
  mean /= std::exp2(d) - 1.0;
  EXPECT_NEAR(point.mean_hops_given_success, mean, 1e-9);
}

TEST(ExpectedLatency, SimulatedTreeHopsMatchChain) {
  const int d = 12;
  const double q = 0.3;
  const auto tree_geo = core::make_geometry(core::GeometryKind::kTree);
  const core::LatencyPoint predicted =
      core::expected_latency(*tree_geo, d, q);

  const sim::IdSpace space(d);
  math::Rng rng(31);
  const sim::TreeOverlay overlay(space, rng);
  math::Rng fail_rng(32);
  const sim::FailureScenario failures(space, q, fail_rng);
  math::Rng route_rng(33);
  const auto estimate = sim::estimate_routability(
      overlay, failures, {.pairs = 40000}, route_rng);
  // Tree survivors take exactly their correction count; the chain's
  // weighting matches the simulator's survivorship bias.
  EXPECT_NEAR(estimate.hops.mean(), predicted.mean_hops_given_success, 0.15);
}

TEST(ExpectedLatency, SimulatedHypercubeHopsMatchChain) {
  const int d = 12;
  const double q = 0.4;
  const auto cube_geo = core::make_geometry(core::GeometryKind::kHypercube);
  const core::LatencyPoint predicted =
      core::expected_latency(*cube_geo, d, q);

  const sim::IdSpace space(d);
  const sim::HypercubeOverlay overlay(space);
  math::Rng fail_rng(34);
  const sim::FailureScenario failures(space, q, fail_rng);
  math::Rng route_rng(35);
  const auto estimate = sim::estimate_routability(
      overlay, failures, {.pairs = 40000}, route_rng);
  EXPECT_NEAR(estimate.hops.mean(), predicted.mean_hops_given_success, 0.15);
}

TEST(ExpectedLatency, RingChainOverestimatesRealHops) {
  // The chain's suboptimal hops make no progress; classic Chord's do.  The
  // chain prediction is therefore an upper bound on the measured mean hops
  // under failure.
  const int d = 14;
  const double q = 0.4;
  const auto ring_geo = core::make_geometry(core::GeometryKind::kRing);
  const core::LatencyPoint predicted =
      core::expected_latency(*ring_geo, d, q);

  const sim::IdSpace space(d);
  math::Rng rng(36);
  const sim::ChordOverlay overlay(space, rng);
  math::Rng fail_rng(37);
  const sim::FailureScenario failures(space, q, fail_rng);
  math::Rng route_rng(38);
  const auto estimate = sim::estimate_routability(
      overlay, failures, {.pairs = 20000}, route_rng);
  EXPECT_LE(estimate.hops.mean(),
            predicted.mean_hops_given_success + 0.1);
}

TEST(ExpectedLatency, RejectsOutOfDomain) {
  const auto ring = core::make_geometry(core::GeometryKind::kRing);
  EXPECT_THROW(core::expected_latency(*ring, 24, 0.1), PreconditionError);
  const auto tree = core::make_geometry(core::GeometryKind::kTree);
  EXPECT_THROW(core::latency_at_distance(*tree, 0, 8, 0.1),
               PreconditionError);
  EXPECT_THROW(core::latency_at_distance(*tree, 3, 8, 1.0),
               PreconditionError);
}

}  // namespace
}  // namespace dht
