// Failure-free hop statistics vs the latency theory each geometry quotes.
#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/metrics.hpp"
#include "sim/symphony_overlay.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace dht::sim {
namespace {

TEST(Metrics, HypercubeMeanHopsIsHalfD) {
  // Mean Hamming distance between random ids is d/2 and hops == distance.
  const IdSpace space(12);
  const HypercubeOverlay overlay(space);
  math::Rng rng(1);
  const auto hops = failure_free_hops(overlay, 4000, rng);
  EXPECT_NEAR(hops.mean(), 6.0, 0.15);
  EXPECT_GE(hops.min(), 1.0);
  EXPECT_LE(hops.max(), 12.0);
}

TEST(Metrics, TreeMeanHopsIsHalfD) {
  // Each level needs correction w.p. 1/2 independently (random suffixes):
  // hops ~ Binomial(d, 1/2) conditioned nonzero.
  const IdSpace space(12);
  math::Rng rng(2);
  const TreeOverlay overlay(space, rng);
  const auto hops = failure_free_hops(overlay, 4000, rng);
  EXPECT_NEAR(hops.mean(), 6.0, 0.2);
  EXPECT_LE(hops.max(), 12.0);
}

TEST(Metrics, ClassicChordMeanHopsIsHalfD) {
  // Binary decomposition: hops = popcount(distance), mean d/2.
  const IdSpace space(12);
  math::Rng rng(3);
  const ChordOverlay overlay(space, rng);
  const auto hops = failure_free_hops(overlay, 4000, rng);
  EXPECT_NEAR(hops.mean(), 6.0, 0.15);
  EXPECT_LE(hops.max(), 12.0);
}

TEST(Metrics, XorEqualsTreeWithoutFailures) {
  const IdSpace space(12);
  math::Rng rng(4);
  const XorOverlay overlay(space, rng);
  const auto hops = failure_free_hops(overlay, 4000, rng);
  EXPECT_NEAR(hops.mean(), 6.0, 0.2);
}

TEST(Metrics, SymphonyLatencyGrowsAsLogSquared) {
  // O(log^2 N): the ratio mean_hops / (log N)^2 should be roughly stable
  // across sizes (within a small constant band).
  math::Rng rng(5);
  double ratio_small = 0.0;
  double ratio_large = 0.0;
  {
    const IdSpace space(10);
    const SymphonyOverlay overlay(space, 1, 1, rng);
    math::Rng metric_rng(6);
    ratio_small =
        failure_free_hops(overlay, 1500, metric_rng).mean() / (10.0 * 10.0);
  }
  {
    const IdSpace space(14);
    const SymphonyOverlay overlay(space, 1, 1, rng);
    math::Rng metric_rng(7);
    ratio_large =
        failure_free_hops(overlay, 1500, metric_rng).mean() / (14.0 * 14.0);
  }
  EXPECT_GT(ratio_small, 0.05);
  EXPECT_LT(ratio_small, 1.0);
  EXPECT_NEAR(ratio_large, ratio_small, 0.6 * ratio_small);
}

TEST(Metrics, RejectsZeroSamples) {
  const IdSpace space(6);
  const HypercubeOverlay overlay(space);
  math::Rng rng(8);
  EXPECT_THROW(failure_free_hops(overlay, 0, rng), PreconditionError);
}

}  // namespace
}  // namespace dht::sim
