#include "math/logreal.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dht::math {
namespace {

TEST(LogReal, DefaultConstructedIsZero) {
  const LogReal x;
  EXPECT_TRUE(x.is_zero());
  EXPECT_EQ(x.value(), 0.0);
}

TEST(LogReal, FromValueRoundTrips) {
  // The log/exp round trip costs |log v| * eps of relative precision
  // (~1.5e-13 at the extremes of double range).
  for (double v : {1e-300, 0.25, 1.0, 3.5, 1e300}) {
    EXPECT_NEAR(LogReal::from_value(v).value(), v, v * 1e-12) << v;
  }
}

TEST(LogReal, FromValueZero) {
  EXPECT_TRUE(LogReal::from_value(0.0).is_zero());
}

TEST(LogReal, FromValueRejectsNegative) {
  EXPECT_THROW(LogReal::from_value(-1.0), PreconditionError);
}

TEST(LogReal, FromValueRejectsNaN) {
  EXPECT_THROW(LogReal::from_value(std::nan("")), PreconditionError);
}

TEST(LogReal, OneHasLogZero) {
  EXPECT_EQ(LogReal::one().log(), 0.0);
  EXPECT_DOUBLE_EQ(LogReal::one().value(), 1.0);
}

TEST(LogReal, Exp2IntMatchesLdexp) {
  EXPECT_NEAR(LogReal::exp2_int(10).value(), 1024.0, 1e-9);
  EXPECT_NEAR(LogReal::exp2_int(-3).value(), 0.125, 1e-12);
  // 2^100 in log space: log = 100 ln 2.
  EXPECT_NEAR(LogReal::exp2_int(100).log(), 100.0 * std::log(2.0), 1e-9);
}

TEST(LogReal, MultiplicationMatchesPlainArithmetic) {
  const LogReal a = LogReal::from_value(3.0);
  const LogReal b = LogReal::from_value(7.0);
  EXPECT_NEAR((a * b).value(), 21.0, 1e-12);
}

TEST(LogReal, MultiplicationByZero) {
  const LogReal a = LogReal::from_value(3.0);
  EXPECT_TRUE((a * LogReal::zero()).is_zero());
  EXPECT_TRUE((LogReal::zero() * a).is_zero());
  EXPECT_TRUE((LogReal::zero() * LogReal::zero()).is_zero());
}

TEST(LogReal, MultiplicationBeyondDoubleRange) {
  // 2^1200 * 2^1200 = 2^2400 overflows double but not LogReal.
  const LogReal big = LogReal::exp2_int(1200);
  const LogReal product = big * big;
  EXPECT_NEAR(product.log(), 2400.0 * std::log(2.0), 1e-6);
}

TEST(LogReal, DivisionMatchesPlainArithmetic) {
  const LogReal a = LogReal::from_value(21.0);
  const LogReal b = LogReal::from_value(7.0);
  EXPECT_NEAR((a / b).value(), 3.0, 1e-12);
}

TEST(LogReal, DivisionByZeroThrows) {
  EXPECT_THROW(LogReal::one() / LogReal::zero(), PreconditionError);
}

TEST(LogReal, ZeroDividedIsZero) {
  EXPECT_TRUE((LogReal::zero() / LogReal::from_value(5.0)).is_zero());
}

TEST(LogReal, AdditionMatchesPlainArithmetic) {
  const LogReal a = LogReal::from_value(0.125);
  const LogReal b = LogReal::from_value(4.0);
  EXPECT_NEAR((a + b).value(), 4.125, 1e-12);
}

TEST(LogReal, AdditionWithZeroIdentity) {
  const LogReal a = LogReal::from_value(0.7);
  EXPECT_DOUBLE_EQ((a + LogReal::zero()).value(), 0.7);
  EXPECT_DOUBLE_EQ((LogReal::zero() + a).value(), 0.7);
}

TEST(LogReal, AdditionAcrossManyOrdersOfMagnitude) {
  // 2^500 + 2^-500 == 2^500 to double precision -- must not overflow or NaN.
  const LogReal big = LogReal::exp2_int(500);
  const LogReal tiny = LogReal::exp2_int(-500);
  EXPECT_NEAR((big + tiny).log(), big.log(), 1e-12);
}

TEST(LogReal, SubtractionMatchesPlainArithmetic) {
  const LogReal a = LogReal::from_value(10.0);
  const LogReal b = LogReal::from_value(4.0);
  EXPECT_NEAR((a - b).value(), 6.0, 1e-12);
}

TEST(LogReal, SubtractionToZero) {
  const LogReal a = LogReal::from_value(3.25);
  EXPECT_TRUE((a - a).is_zero());
}

TEST(LogReal, SubtractionUnderflowThrows) {
  const LogReal a = LogReal::from_value(1.0);
  const LogReal b = LogReal::from_value(2.0);
  EXPECT_THROW(a - b, PreconditionError);
}

TEST(LogReal, SubtractingZeroIdentity) {
  const LogReal a = LogReal::from_value(0.3);
  EXPECT_DOUBLE_EQ((a - LogReal::zero()).value(), 0.3);
}

TEST(LogReal, SubtractionPrecisionNearCancellation) {
  // (1 + 1e-12) - 1 = 1e-12.  Log-domain subtraction of nearly equal
  // values computes 1 - exp(b - a), whose absolute error is ~eps of the
  // intermediate exp (1e-16), i.e. ~1e-4 relative here -- that bound is
  // what we verify (the result must not collapse to 0 or blow up).
  const LogReal a = LogReal::from_value(1.0 + 1e-12);
  const LogReal b = LogReal::one();
  EXPECT_NEAR((a - b).value(), 1e-12, 1e-15);
}

TEST(LogReal, ComparisonsFollowValues) {
  const LogReal small = LogReal::from_value(0.5);
  const LogReal large = LogReal::from_value(2.0);
  EXPECT_LT(small, large);
  EXPECT_GT(large, small);
  EXPECT_LE(small, small);
  EXPECT_GE(large, large);
  EXPECT_NE(small, large);
  EXPECT_EQ(small, LogReal::from_value(0.5));
  EXPECT_LT(LogReal::zero(), small);
}

TEST(LogReal, PowMatchesStdPow) {
  const LogReal x = LogReal::from_value(1.7);
  EXPECT_NEAR(pow(x, 3.0).value(), std::pow(1.7, 3.0), 1e-12);
  EXPECT_NEAR(pow(x, 0.0).value(), 1.0, 1e-15);
  EXPECT_NEAR(pow(x, -2.0).value(), std::pow(1.7, -2.0), 1e-12);
}

TEST(LogReal, PowOfZero) {
  EXPECT_TRUE(pow(LogReal::zero(), 2.0).is_zero());
  EXPECT_THROW(pow(LogReal::zero(), 0.0), PreconditionError);
  EXPECT_THROW(pow(LogReal::zero(), -1.0), PreconditionError);
}

TEST(LogReal, LogSumAccumulates) {
  LogSum sum;
  for (int i = 0; i < 10; ++i) {
    sum.add(LogReal::from_value(1.5));
  }
  EXPECT_NEAR(sum.total().value(), 15.0, 1e-12);
}

TEST(LogReal, LogSumEmptyIsZero) {
  const LogSum sum;
  EXPECT_TRUE(sum.total().is_zero());
}

// Binomial-sum identity in extreme range: sum_h C(200, h) == 2^200.
TEST(LogReal, SumsHugeBinomialRow) {
  LogSum sum;
  // C(200, h) via lgamma in log space.
  for (int h = 0; h <= 200; ++h) {
    const double log_c = std::lgamma(201.0) - std::lgamma(h + 1.0) -
                         std::lgamma(201.0 - h);
    sum.add(LogReal::from_log(log_c));
  }
  EXPECT_NEAR(sum.total().log(), 200.0 * std::log(2.0), 1e-9);
}

}  // namespace
}  // namespace dht::math
