// Structural invariants of the five overlays' routing tables and the
// correctness of their failure-free forwarding rules.
#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/metrics.hpp"
#include "sim/prefix_table.hpp"
#include "sim/router.hpp"
#include "sim/symphony_overlay.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace dht::sim {
namespace {

TEST(PrefixTable, NeighborSatisfiesPrefixAndFlipInvariants) {
  const IdSpace space(8);
  math::Rng rng(42);
  const PrefixTable table(space, rng);
  for (NodeId v = 0; v < space.size(); ++v) {
    for (int level = 1; level <= space.bits(); ++level) {
      const NodeId n = table.neighbor(v, level);
      // First level-1 bits agree; bit `level` differs.
      EXPECT_TRUE(shares_prefix(v, n, level - 1, space.bits()))
          << "v=" << v << " level=" << level;
      EXPECT_NE(bit_at_level(v, level, space.bits()),
                bit_at_level(n, level, space.bits()))
          << "v=" << v << " level=" << level;
    }
  }
}

TEST(PrefixTable, SuffixesAreRandomized) {
  // The level-1 neighbors of all nodes should not all share the same
  // suffix; count distinct suffixes across nodes.
  const IdSpace space(10);
  math::Rng rng(43);
  const PrefixTable table(space, rng);
  std::set<NodeId> suffixes;
  for (NodeId v = 0; v < 200; ++v) {
    suffixes.insert(table.neighbor(v, 1) & ((1u << 9) - 1));
  }
  EXPECT_GT(suffixes.size(), 100u);
}

TEST(PrefixTable, RejectsBadQueries) {
  const IdSpace space(4);
  math::Rng rng(1);
  const PrefixTable table(space, rng);
  EXPECT_THROW(table.neighbor(16, 1), PreconditionError);
  EXPECT_THROW(table.neighbor(0, 0), PreconditionError);
  EXPECT_THROW(table.neighbor(0, 5), PreconditionError);
}

TEST(TreeOverlay, FailureFreeRoutesArriveWithinD) {
  const IdSpace space(10);
  math::Rng rng(7);
  const TreeOverlay overlay(space, rng);
  const FailureScenario alive = FailureScenario::all_alive(space);
  const Router router(overlay, alive);
  math::Rng route_rng(8);
  for (int i = 0; i < 2000; ++i) {
    const NodeId s = route_rng.uniform_below(space.size());
    NodeId t = route_rng.uniform_below(space.size());
    if (s == t) {
      continue;
    }
    const RouteResult r = router.route(s, t, route_rng);
    ASSERT_TRUE(r.success());
    EXPECT_LE(r.hops, space.bits());
    EXPECT_EQ(r.last_node, t);
  }
}

TEST(TreeOverlay, SingleDeadNeighborDropsRoute) {
  const IdSpace space(6);
  math::Rng rng(9);
  const TreeOverlay overlay(space, rng);
  FailureScenario failures = FailureScenario::all_alive(space);
  math::Rng route_rng(10);
  // Kill the level-1 neighbor of node 0 and route to a target differing in
  // bit 1: the only admissible first hop is dead.
  const NodeId first_hop = overlay.table()->neighbor(0, 1);
  failures.kill(first_hop);
  const Router router(overlay, failures);
  const NodeId target = flip_level(0, 1, space.bits());
  if (target != first_hop) {
    const RouteResult r = router.route(0, target, route_rng);
    EXPECT_EQ(r.status, RouteStatus::kDropped);
    EXPECT_EQ(r.last_node, 0u);
    EXPECT_EQ(r.hops, 0);
  }
}

TEST(XorOverlay, FailureFreeMatchesTreeBehavior) {
  // With no failures the XOR rule always takes the optimal level -- same
  // hop counts as the tree on the same table.
  const IdSpace space(9);
  math::Rng rng(11);
  auto table = std::make_shared<const PrefixTable>(space, rng);
  const TreeOverlay tree(space, table);
  const XorOverlay xr(space, table);
  const FailureScenario alive = FailureScenario::all_alive(space);
  const Router tree_router(tree, alive);
  const Router xor_router(xr, alive);
  math::Rng route_rng(12);
  for (int i = 0; i < 1000; ++i) {
    const NodeId s = route_rng.uniform_below(space.size());
    NodeId t = route_rng.uniform_below(space.size());
    if (s == t) {
      continue;
    }
    math::Rng rng_a = route_rng.fork(i);
    math::Rng rng_b = route_rng.fork(i);
    const RouteResult a = tree_router.route(s, t, rng_a);
    const RouteResult b = xor_router.route(s, t, rng_b);
    ASSERT_TRUE(a.success());
    ASSERT_TRUE(b.success());
    EXPECT_EQ(a.hops, b.hops);
  }
}

TEST(XorOverlay, FallbackSurvivesDeadOptimalNeighbor) {
  // Paper Fig. 5(a)'s story: optimal neighbor dead, fallback succeeds.
  const IdSpace space(6);
  math::Rng rng(13);
  const XorOverlay overlay(space, rng);
  math::Rng route_rng(14);
  int fallback_successes = 0;
  for (NodeId s = 0; s < space.size(); ++s) {
    // Target differing from s in bits 1 and 2.
    const NodeId t = flip_level(flip_level(s, 1, 6), 2, 6);
    FailureScenario failures = FailureScenario::all_alive(space);
    const NodeId optimal = overlay.table()->neighbor(s, 1);
    if (optimal == t || optimal == s) {
      continue;
    }
    failures.kill(optimal);
    const Router router(overlay, failures);
    const RouteResult r = router.route(s, t, route_rng);
    // The tree protocol would drop immediately; XOR may still arrive via
    // the level-2 neighbor (unless that neighbor happens to be the dead
    // node or later hops run into it).
    fallback_successes += r.success() ? 1 : 0;
  }
  EXPECT_GT(fallback_successes, 30);  // out of up to 64 sources
}

TEST(HypercubeOverlay, FailureFreeHopsEqualHammingDistance) {
  const IdSpace space(8);
  const HypercubeOverlay overlay(space);
  const FailureScenario alive = FailureScenario::all_alive(space);
  const Router router(overlay, alive);
  math::Rng route_rng(15);
  for (int i = 0; i < 2000; ++i) {
    const NodeId s = route_rng.uniform_below(space.size());
    NodeId t = route_rng.uniform_below(space.size());
    if (s == t) {
      continue;
    }
    const RouteResult r = router.route(s, t, route_rng);
    ASSERT_TRUE(r.success());
    EXPECT_EQ(r.hops, hamming_distance(s, t));
  }
}

TEST(HypercubeOverlay, LinksAreTheDBitFlips) {
  const IdSpace space(5);
  const HypercubeOverlay overlay(space);
  const auto links = overlay.links(0b10110);
  ASSERT_EQ(links.size(), 5u);
  for (const NodeId link : links) {
    EXPECT_EQ(hamming_distance(0b10110, link), 1);
  }
}

TEST(HypercubeOverlay, RoutesAroundDeadNodes) {
  // With 2 differing bits and one intermediate dead, the other path works.
  const IdSpace space(5);
  const HypercubeOverlay overlay(space);
  FailureScenario failures = FailureScenario::all_alive(space);
  const NodeId s = 0b00000;
  const NodeId t = 0b00011;
  failures.kill(0b00001);  // one of the two 1-hop intermediates
  const Router router(overlay, failures);
  math::Rng route_rng(16);
  for (int i = 0; i < 50; ++i) {
    const RouteResult r = router.route(s, t, route_rng);
    ASSERT_TRUE(r.success());
    EXPECT_EQ(r.hops, 2);
  }
}

class ChordBothVariants : public ::testing::TestWithParam<ChordFingers> {};

INSTANTIATE_TEST_SUITE_P(Variants, ChordBothVariants,
                         ::testing::Values(ChordFingers::kDeterministic,
                                           ChordFingers::kRandomized),
                         [](const auto& test_info) {
                           return test_info.param == ChordFingers::kDeterministic
                                      ? "deterministic"
                                      : "randomized";
                         });

TEST_P(ChordBothVariants, FingersLiveInDyadicIntervals) {
  const IdSpace space(10);
  math::Rng rng(17);
  const ChordOverlay overlay(space, rng, GetParam());
  for (NodeId v = 0; v < space.size(); v += 37) {
    for (int i = 1; i <= space.bits(); ++i) {
      const std::uint64_t offset =
          ring_distance(v, overlay.finger(v, i), space.bits());
      EXPECT_GE(offset, 1ull << (space.bits() - i)) << "v=" << v << " i=" << i;
      EXPECT_LT(offset, 2ull << (space.bits() - i)) << "v=" << v << " i=" << i;
    }
  }
}

TEST_P(ChordBothVariants, LastFingerIsSuccessor) {
  const IdSpace space(8);
  math::Rng rng(18);
  const ChordOverlay overlay(space, rng, GetParam());
  for (NodeId v = 0; v < space.size(); ++v) {
    EXPECT_EQ(overlay.finger(v, 8), (v + 1) % space.size());
  }
}

TEST(ChordOverlay, DeterministicFingersArePowersOfTwo) {
  const IdSpace space(8);
  math::Rng rng(18);
  const ChordOverlay overlay(space, rng);
  EXPECT_EQ(overlay.finger_variant(), ChordFingers::kDeterministic);
  for (NodeId v = 0; v < space.size(); v += 11) {
    for (int i = 1; i <= space.bits(); ++i) {
      EXPECT_EQ(ring_distance(v, overlay.finger(v, i), 8),
                std::uint64_t{1} << (8 - i));
    }
  }
}

TEST(ChordOverlay, DeterministicFailureFreeHopsArePopcount) {
  // Classic Chord greedy = binary decomposition of the clockwise distance.
  const IdSpace space(10);
  math::Rng rng(19);
  const ChordOverlay overlay(space, rng);
  const FailureScenario alive = FailureScenario::all_alive(space);
  const Router router(overlay, alive);
  math::Rng route_rng(20);
  for (int i = 0; i < 500; ++i) {
    const NodeId s = route_rng.uniform_below(space.size());
    NodeId t = route_rng.uniform_below(space.size());
    if (s == t) {
      continue;
    }
    const RouteResult r = router.route(s, t, route_rng);
    ASSERT_TRUE(r.success());
    EXPECT_EQ(r.hops,
              hamming_distance(ring_distance(s, t, space.bits()), 0));
  }
}

TEST_P(ChordBothVariants, FailureFreeRoutesArriveWithinD) {
  const IdSpace space(10);
  math::Rng rng(19);
  const ChordOverlay overlay(space, rng, GetParam());
  const FailureScenario alive = FailureScenario::all_alive(space);
  const Router router(overlay, alive);
  math::Rng route_rng(20);
  for (int i = 0; i < 2000; ++i) {
    const NodeId s = route_rng.uniform_below(space.size());
    NodeId t = route_rng.uniform_below(space.size());
    if (s == t) {
      continue;
    }
    const RouteResult r = router.route(s, t, route_rng);
    ASSERT_TRUE(r.success());
    // Greedy clockwise at least halves the remaining distance per hop.
    EXPECT_LE(r.hops, space.bits());
  }
}

TEST(ChordOverlay, NeverOvershoots) {
  const IdSpace space(9);
  math::Rng rng(21);
  const ChordOverlay overlay(space, rng, ChordFingers::kRandomized);
  math::Rng fail_rng(22);
  const FailureScenario failures(space, 0.3, fail_rng);
  math::Rng route_rng(23);
  const Router router(overlay, failures);
  for (int i = 0; i < 500; ++i) {
    NodeId s = route_rng.uniform_below(space.size());
    NodeId t = route_rng.uniform_below(space.size());
    if (s == t || !failures.alive(s) || !failures.alive(t)) {
      continue;
    }
    const RouteTrace trace = router.route_traced(s, t, route_rng);
    // Remaining clockwise distance must strictly decrease along the path.
    std::uint64_t previous = ring_distance(s, t, space.bits());
    for (size_t k = 1; k < trace.path.size(); ++k) {
      const std::uint64_t remaining =
          ring_distance(trace.path[k], t, space.bits());
      EXPECT_LT(remaining, previous);
      previous = remaining;
    }
  }
}

TEST(SymphonyOverlay, LinkCountsAndDistances) {
  const IdSpace space(10);
  math::Rng rng(24);
  const SymphonyOverlay overlay(space, 2, 3, rng);
  EXPECT_EQ(overlay.near_neighbors(), 2);
  EXPECT_EQ(overlay.shortcuts(), 3);
  const auto links = overlay.links(123);
  ASSERT_EQ(links.size(), 5u);
  // Near neighbors are the immediate successors.
  EXPECT_EQ(links[0], 124u);
  EXPECT_EQ(links[1], 125u);
}

TEST(SymphonyOverlay, ShortcutDistancesAreHarmonicish) {
  // Median shortcut distance under p(x) ~ 1/x on [1, N-1] is sqrt(N-1):
  // half the (log-uniform) mass sits on each side.
  const IdSpace space(16);
  math::Rng rng(25);
  const SymphonyOverlay overlay(space, 1, 1, rng);
  std::vector<std::uint64_t> offsets;
  for (NodeId v = 0; v < 4096; ++v) {
    offsets.push_back(ring_distance(v, overlay.shortcut(v, 0), 16));
  }
  std::sort(offsets.begin(), offsets.end());
  const double median = static_cast<double>(offsets[offsets.size() / 2]);
  EXPECT_GT(median, 128.0);  // sqrt(65535) ~ 256; allow 2x band
  EXPECT_LT(median, 512.0);
}

TEST(SymphonyOverlay, FailureFreeRoutesArrive) {
  const IdSpace space(10);
  math::Rng rng(26);
  const SymphonyOverlay overlay(space, 1, 1, rng);
  const FailureScenario alive = FailureScenario::all_alive(space);
  const Router router(overlay, alive);
  math::Rng route_rng(27);
  for (int i = 0; i < 500; ++i) {
    const NodeId s = route_rng.uniform_below(space.size());
    NodeId t = route_rng.uniform_below(space.size());
    if (s == t) {
      continue;
    }
    const RouteResult r = router.route(s, t, route_rng);
    ASSERT_TRUE(r.success());
  }
}

TEST(SymphonyOverlay, HopCountScalesAsLogSquared) {
  // O(log^2 N) expected latency (Section 3.5): mean hops at d = 14 should
  // be well above d (log N) but far below sqrt(N).
  const IdSpace space(14);
  math::Rng rng(28);
  const SymphonyOverlay overlay(space, 1, 1, rng);
  math::Rng metric_rng(29);
  const auto hops = failure_free_hops(overlay, 2000, metric_rng);
  EXPECT_GT(hops.mean(), 14.0);
  EXPECT_LT(hops.mean(), 0.5 * 14.0 * 14.0);
}

TEST(SymphonyOverlay, RejectsBadParameters) {
  const IdSpace space(4);
  math::Rng rng(30);
  EXPECT_THROW(SymphonyOverlay(space, 0, 1, rng), PreconditionError);
  EXPECT_THROW(SymphonyOverlay(space, 1, 0, rng), PreconditionError);
  EXPECT_THROW(SymphonyOverlay(space, 8, 8, rng), PreconditionError);
}

TEST(Overlays, NamesMatchCoreGeometryNames) {
  const IdSpace space(4);
  math::Rng rng(31);
  EXPECT_EQ(TreeOverlay(space, rng).name(), "tree");
  EXPECT_EQ(XorOverlay(space, rng).name(), "xor");
  EXPECT_EQ(HypercubeOverlay(space).name(), "hypercube");
  EXPECT_EQ(ChordOverlay(space, rng).name(), "ring");
  EXPECT_EQ(SymphonyOverlay(space, 1, 1, rng).name(), "symphony");
}

}  // namespace
}  // namespace dht::sim
