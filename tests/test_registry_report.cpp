#include <sstream>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/symphony_geometry.hpp"

namespace dht::core {
namespace {

TEST(Registry, MakesAllFiveKinds) {
  const auto kinds = all_geometry_kinds();
  ASSERT_EQ(kinds.size(), 5u);
  for (GeometryKind kind : kinds) {
    const auto geometry = make_geometry(kind);
    ASSERT_NE(geometry, nullptr);
    EXPECT_EQ(geometry->kind(), kind);
    EXPECT_EQ(geometry->name(), to_string(kind));
    EXPECT_FALSE(geometry->dht_system().empty());
  }
}

TEST(Registry, MakeByName) {
  for (GeometryKind kind : all_geometry_kinds()) {
    const auto geometry = make_geometry(std::string_view(to_string(kind)));
    EXPECT_EQ(geometry->kind(), kind);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_geometry("pastry"), PreconditionError);
  EXPECT_THROW(make_geometry(""), PreconditionError);
}

TEST(Registry, SymphonyParamsAreForwarded) {
  const auto geometry =
      make_geometry(GeometryKind::kSymphony, SymphonyParams{3, 5});
  const auto* symphony = dynamic_cast<const SymphonyGeometry*>(geometry.get());
  ASSERT_NE(symphony, nullptr);
  EXPECT_EQ(symphony->params().near_neighbors, 3);
  EXPECT_EQ(symphony->params().shortcuts, 5);
}

TEST(Registry, MakeAllGeometriesCoversEveryKind) {
  const auto geometries = make_all_geometries();
  ASSERT_EQ(geometries.size(), 5u);
  for (size_t i = 0; i < geometries.size(); ++i) {
    EXPECT_EQ(geometries[i]->kind(), all_geometry_kinds()[i]);
  }
}

TEST(Table, RendersAlignedColumns) {
  Table table("demo");
  table.set_header({"q", "routability"});
  table.add_row({"0.1", "0.99"});
  table.add_row({"0.25", "0.9"});
  table.add_note("values are illustrative");
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("== demo =="), std::string::npos);
  EXPECT_NE(text.find("q"), std::string::npos);
  EXPECT_NE(text.find("0.25"), std::string::npos);
  EXPECT_NE(text.find("note: values are illustrative"), std::string::npos);
}

TEST(Table, RendersCsv) {
  Table table("csv demo");
  table.set_header({"a", "b"});
  table.add_row({"1", "2"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "# csv demo\na,b\n1,2\n");
}

TEST(Table, RowCountTracksRows) {
  Table table("t");
  table.set_header({"x"});
  EXPECT_EQ(table.row_count(), 0);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2);
}

TEST(Table, EnforcesHeaderDiscipline) {
  Table table("t");
  EXPECT_THROW(table.add_row({"1"}), PreconditionError);
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
  table.add_row({"1", "2"});
  EXPECT_THROW(table.set_header({"too", "late"}), PreconditionError);
}

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(strfmt("no args"), "no args");
  EXPECT_EQ(strfmt("%5.1f%%", 12.34), " 12.3%");
}

}  // namespace
}  // namespace dht::core
