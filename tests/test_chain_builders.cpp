// Cross-validation: the closed-form p(h, q) = prod (1 - Q(m)) expressions of
// the core geometries (paper Section 4.3) against absorption probabilities
// computed numerically on the explicitly built routing Markov chains
// (Figs. 4(a), 4(b), 5(b), 8(a), 8(b)).  Agreement here means the paper's
// algebra and our two implementations corroborate each other.
#include "markov/builders.hpp"

#include <memory>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/registry.hpp"
#include "markov/absorption.hpp"

namespace dht {
namespace {

using core::Geometry;
using core::GeometryKind;
using markov::absorption_probability_dag;
using markov::RoutingChain;

constexpr double kQGrid[] = {0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9};

double chain_success(const RoutingChain& built) {
  return absorption_probability_dag(built.chain, built.start, built.success);
}

TEST(ChainBuilders, TreeMatchesClosedForm) {
  const auto geometry = core::make_geometry(GeometryKind::kTree);
  for (double q : kQGrid) {
    for (int h = 1; h <= 12; ++h) {
      const RoutingChain built = markov::build_tree_chain(h, q);
      EXPECT_NEAR(chain_success(built),
                  geometry->success_probability(h, q, /*d=*/12), 1e-12)
          << "q=" << q << " h=" << h;
    }
  }
}

TEST(ChainBuilders, HypercubeMatchesClosedForm) {
  const auto geometry = core::make_geometry(GeometryKind::kHypercube);
  for (double q : kQGrid) {
    for (int h = 1; h <= 12; ++h) {
      const RoutingChain built = markov::build_hypercube_chain(h, q);
      EXPECT_NEAR(chain_success(built),
                  geometry->success_probability(h, q, /*d=*/12), 1e-12)
          << "q=" << q << " h=" << h;
    }
  }
}

TEST(ChainBuilders, HypercubePaperFig3Example) {
  // Fig. 3: p(3, q) = (1 - q^3)(1 - q^2)(1 - q) on the 8-node hypercube.
  for (double q : kQGrid) {
    const RoutingChain built = markov::build_hypercube_chain(3, q);
    const double expected = (1.0 - q * q * q) * (1.0 - q * q) * (1.0 - q);
    EXPECT_NEAR(chain_success(built), expected, 1e-14) << "q=" << q;
  }
}

TEST(ChainBuilders, XorMatchesClosedFormEq6) {
  const auto geometry = core::make_geometry(GeometryKind::kXor);
  for (double q : kQGrid) {
    for (int h = 1; h <= 12; ++h) {
      const RoutingChain built = markov::build_xor_chain(h, q);
      EXPECT_NEAR(chain_success(built),
                  geometry->success_probability(h, q, /*d=*/12), 1e-11)
          << "q=" << q << " h=" << h;
    }
  }
}

TEST(ChainBuilders, RingMatchesClosedFormQ) {
  const auto geometry = core::make_geometry(GeometryKind::kRing);
  for (double q : kQGrid) {
    for (int h = 1; h <= 12; ++h) {  // 2^h states; keep moderate
      const RoutingChain built = markov::build_ring_chain(h, q);
      EXPECT_NEAR(chain_success(built),
                  geometry->success_probability(h, q, /*d=*/12), 1e-11)
          << "q=" << q << " h=" << h;
    }
  }
}

TEST(ChainBuilders, SymphonyMatchesClosedFormEq7) {
  for (const auto& params :
       {core::SymphonyParams{1, 1}, core::SymphonyParams{2, 2},
        core::SymphonyParams{4, 1}}) {
    const auto geometry =
        core::make_geometry(GeometryKind::kSymphony, params);
    const int d = 16;
    for (double q : {0.1, 0.3, 0.5}) {
      for (int h = 1; h <= 8; ++h) {
        const RoutingChain built = markov::build_symphony_chain(
            h, d, q, params.near_neighbors, params.shortcuts);
        EXPECT_NEAR(chain_success(built),
                    geometry->success_probability(h, q, d), 1e-11)
            << "q=" << q << " h=" << h << " kn=" << params.near_neighbors
            << " ks=" << params.shortcuts;
      }
    }
  }
}

TEST(ChainBuilders, DagAndDenseSolversAgreeOnRoutingChains) {
  for (double q : {0.2, 0.6}) {
    const RoutingChain xor_chain = markov::build_xor_chain(6, q);
    EXPECT_NEAR(
        absorption_probability_dag(xor_chain.chain, xor_chain.start,
                                   xor_chain.success),
        absorption_probability_dense(xor_chain.chain, xor_chain.start,
                                     xor_chain.success),
        1e-12);
    const RoutingChain ring_chain = markov::build_ring_chain(6, q);
    EXPECT_NEAR(
        absorption_probability_dag(ring_chain.chain, ring_chain.start,
                                   ring_chain.success),
        absorption_probability_dense(ring_chain.chain, ring_chain.start,
                                     ring_chain.success),
        1e-12);
  }
}

TEST(ChainBuilders, SuccessPlusFailureIsOne) {
  // The chains have exactly two absorbing states; mass must split between
  // them.
  for (double q : {0.1, 0.5, 0.9}) {
    for (int h : {1, 4, 8}) {
      const RoutingChain built = markov::build_xor_chain(h, q);
      const double win = chain_success(built);
      const double lose = absorption_probability_dag(built.chain, built.start,
                                                     built.failure);
      EXPECT_NEAR(win + lose, 1.0, 1e-12) << "q=" << q << " h=" << h;
    }
  }
}

TEST(ChainBuilders, DegenerateFailureProbabilities) {
  // q = 0: certain success.  q = 1: certain failure (for any h >= 1).
  for (int h : {1, 3, 7}) {
    EXPECT_DOUBLE_EQ(chain_success(markov::build_tree_chain(h, 0.0)), 1.0);
    EXPECT_DOUBLE_EQ(chain_success(markov::build_hypercube_chain(h, 0.0)),
                     1.0);
    EXPECT_DOUBLE_EQ(chain_success(markov::build_xor_chain(h, 0.0)), 1.0);
    EXPECT_DOUBLE_EQ(chain_success(markov::build_ring_chain(h, 0.0)), 1.0);
    EXPECT_DOUBLE_EQ(chain_success(markov::build_tree_chain(h, 1.0)), 0.0);
    EXPECT_DOUBLE_EQ(chain_success(markov::build_hypercube_chain(h, 1.0)),
                     0.0);
    EXPECT_DOUBLE_EQ(chain_success(markov::build_xor_chain(h, 1.0)), 0.0);
    EXPECT_DOUBLE_EQ(chain_success(markov::build_ring_chain(h, 1.0)), 0.0);
  }
}

TEST(ChainBuilders, OrderingTreeLeXorLeRing) {
  // Paper Sections 3.3/5.4: fallback helps (xor >= tree), and ring's
  // non-shrinking choice pool helps further (ring >= xor).
  for (double q : kQGrid) {
    for (int h = 1; h <= 10; ++h) {
      const double tree = chain_success(markov::build_tree_chain(h, q));
      const double xr = chain_success(markov::build_xor_chain(h, q));
      const double ring = chain_success(markov::build_ring_chain(h, q));
      EXPECT_LE(tree, xr + 1e-12) << "q=" << q << " h=" << h;
      EXPECT_LE(xr, ring + 1e-12) << "q=" << q << " h=" << h;
    }
  }
}

TEST(ChainBuilders, RejectsBadArguments) {
  EXPECT_THROW(markov::build_tree_chain(0, 0.5), PreconditionError);
  EXPECT_THROW(markov::build_tree_chain(3, -0.1), PreconditionError);
  EXPECT_THROW(markov::build_tree_chain(3, 1.1), PreconditionError);
  EXPECT_THROW(markov::build_ring_chain(21, 0.5), PreconditionError);
  EXPECT_THROW(markov::build_symphony_chain(5, 4, 0.5, 0, 1),
               PreconditionError);
  EXPECT_THROW(markov::build_symphony_chain(5, 4, 1.0, 1, 1),
               PreconditionError);
  EXPECT_THROW(markov::build_symphony_chain(8, 4, 0.5, 1, 1),
               PreconditionError);  // h > d
}

}  // namespace
}  // namespace dht
