// Determinism and correctness of the parallel Monte-Carlo routing engine
// (parallel_monte_carlo.hpp): bit-identical results across thread counts,
// merge() associativity, and agreement with the sequential reference
// implementations.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/parallel_monte_carlo.hpp"
#include "sim/symphony_overlay.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace dht::sim {
namespace {

void expect_identical(const RoutabilityEstimate& a,
                      const RoutabilityEstimate& b, const char* what) {
  EXPECT_EQ(a.routed.successes, b.routed.successes) << what;
  EXPECT_EQ(a.routed.trials, b.routed.trials) << what;
  EXPECT_EQ(a.hops.count(), b.hops.count()) << what;
  EXPECT_EQ(a.hops.sum(), b.hops.sum()) << what;
  EXPECT_EQ(a.hops.sum_squares(), b.hops.sum_squares()) << what;
  EXPECT_EQ(a.hops.min(), b.hops.min()) << what;
  EXPECT_EQ(a.hops.max(), b.hops.max()) << what;
  EXPECT_EQ(a.hop_limit_hits(), b.hop_limit_hits()) << what;
}

std::unique_ptr<Overlay> make_named_overlay(const std::string& name,
                                            const IdSpace& space,
                                            math::Rng& rng) {
  if (name == "tree") {
    return std::make_unique<TreeOverlay>(space, rng);
  }
  if (name == "xor") {
    return std::make_unique<XorOverlay>(space, rng);
  }
  if (name == "hypercube") {
    return std::make_unique<HypercubeOverlay>(space);
  }
  if (name == "chord") {
    return std::make_unique<ChordOverlay>(space, rng);
  }
  if (name == "chord-randomized") {
    return std::make_unique<ChordOverlay>(space, rng,
                                          ChordFingers::kRandomized);
  }
  if (name == "chord-successors") {
    return std::make_unique<ChordOverlay>(space, rng,
                                          ChordFingers::kDeterministic, 3);
  }
  return std::make_unique<SymphonyOverlay>(space, 2, 2, rng);
}

TEST(ParallelMonteCarlo, BitIdenticalAcrossThreadCounts) {
  const IdSpace space(10);
  for (const std::string name :
       {"chord", "xor", "hypercube", "chord-randomized", "tree", "symphony"}) {
    math::Rng build_rng(41);
    const auto overlay = make_named_overlay(name, space, build_rng);
    math::Rng fail_rng(42);
    const FailureScenario failures(space, 0.3, fail_rng);
    const math::Rng route_rng(43);
    const ParallelOptions base{.pairs = 4000};

    RoutabilityEstimate reference;
    bool first = true;
    for (unsigned threads : {1u, 2u, 8u}) {
      ParallelOptions options = base;
      options.threads = threads;
      const auto estimate = estimate_routability_parallel(
          *overlay, failures, options, route_rng);
      if (first) {
        reference = estimate;
        first = false;
        EXPECT_GT(estimate.routed.trials, 0u) << name;
      } else {
        expect_identical(reference, estimate, name.c_str());
      }
    }
  }
}

TEST(ParallelMonteCarlo, RepeatedCallsAreIdentical) {
  // The engine only forks the caller's rng, so re-running with the same
  // generator must reproduce the estimate exactly.
  const IdSpace space(9);
  math::Rng build_rng(5);
  const XorOverlay overlay(space, build_rng);
  math::Rng fail_rng(6);
  const FailureScenario failures(space, 0.25, fail_rng);
  const math::Rng route_rng(7);
  const auto a = estimate_routability_parallel(overlay, failures,
                                               {.pairs = 3000}, route_rng);
  const auto b = estimate_routability_parallel(overlay, failures,
                                               {.pairs = 3000}, route_rng);
  expect_identical(a, b, "repeat");
}

TEST(ParallelMonteCarlo, FlatKernelsMatchGenericRouterForRngFreeRules) {
  // Tree, XOR, ring (both variants, with and without successor lists) and
  // Symphony forwarding consume no randomness, so the flattened kernels
  // must reproduce the virtual-dispatch Router path bit for bit.
  const IdSpace space(9);
  for (const std::string name :
       {"tree", "xor", "chord", "chord-randomized", "chord-successors",
        "symphony"}) {
    math::Rng build_rng(11);
    const auto overlay = make_named_overlay(name, space, build_rng);
    math::Rng fail_rng(12);
    const FailureScenario failures(space, 0.35, fail_rng);
    const math::Rng route_rng(13);
    ParallelOptions flat{.pairs = 3000, .threads = 2};
    ParallelOptions generic = flat;
    generic.use_flat_kernels = false;
    const auto a =
        estimate_routability_parallel(*overlay, failures, flat, route_rng);
    const auto b =
        estimate_routability_parallel(*overlay, failures, generic, route_rng);
    expect_identical(a, b, name.c_str());
  }
}

TEST(ParallelMonteCarlo, HypercubeFlatKernelAgreesStatistically) {
  // The hypercube kernel draws once per hop instead of once per alive
  // candidate, so individual routes differ from the generic path; the
  // estimates must still agree to sampling accuracy.
  const IdSpace space(10);
  const HypercubeOverlay overlay(space);
  math::Rng fail_rng(21);
  const FailureScenario failures(space, 0.3, fail_rng);
  const math::Rng route_rng(22);
  ParallelOptions flat{.pairs = 20000, .threads = 2};
  ParallelOptions generic = flat;
  generic.use_flat_kernels = false;
  const auto a =
      estimate_routability_parallel(overlay, failures, flat, route_rng);
  const auto b =
      estimate_routability_parallel(overlay, failures, generic, route_rng);
  EXPECT_NEAR(a.routability(), b.routability(), 0.02);
  EXPECT_NEAR(a.hops.mean(), b.hops.mean(), 0.1);
}

TEST(ParallelMonteCarlo, AgreesWithSequentialEstimator) {
  const IdSpace space(10);
  const HypercubeOverlay overlay(space);
  math::Rng fail_rng(31);
  const FailureScenario failures(space, 0.2, fail_rng);
  math::Rng serial_rng(32);
  const auto serial =
      estimate_routability(overlay, failures, {.pairs = 20000}, serial_rng);
  const math::Rng parallel_rng(33);
  const auto parallel = estimate_routability_parallel(
      overlay, failures, {.pairs = 20000, .threads = 4}, parallel_rng);
  EXPECT_NEAR(parallel.routability(), serial.routability(), 0.02);
  EXPECT_NEAR(parallel.hops.mean(), serial.hops.mean(), 0.1);
}

TEST(ParallelMonteCarlo, MergeOfShardsEqualsOnePass) {
  // Record a deterministic stream of route outcomes once sequentially and
  // once split across three shard estimates; merging the shards must
  // reproduce the one-pass accumulator exactly.
  std::vector<RouteResult> routes;
  math::Rng rng(77);
  for (int i = 0; i < 300; ++i) {
    RouteResult r;
    const std::uint64_t kind = rng.uniform_below(10);
    r.status = kind < 7   ? RouteStatus::kArrived
               : kind < 9 ? RouteStatus::kDropped
                          : RouteStatus::kHopLimit;
    r.hops = static_cast<int>(rng.uniform_below(20));
    routes.push_back(r);
  }

  RoutabilityEstimate one_pass;
  for (const RouteResult& r : routes) {
    one_pass.record(r);
  }

  RoutabilityEstimate shards[3];
  for (std::size_t i = 0; i < routes.size(); ++i) {
    shards[i % 3].record(routes[i]);
  }
  RoutabilityEstimate merged;
  for (const RoutabilityEstimate& shard : shards) {
    merged.merge(shard);
  }
  expect_identical(one_pass, merged, "merge");

  // Merging an empty estimate is the identity.
  RoutabilityEstimate empty;
  merged.merge(empty);
  expect_identical(one_pass, merged, "merge-empty");
}

TEST(ParallelMonteCarlo, HopStatsMergeHandlesEmptyAndExtrema) {
  HopStats a;
  a.add(5);
  a.add(2);
  HopStats b;
  HopStats merged = a;
  merged.merge(b);  // empty right-hand side
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.min(), 2u);
  EXPECT_EQ(merged.max(), 5u);
  b.merge(a);  // empty left-hand side
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.min(), 2u);
  EXPECT_EQ(b.max(), 5u);
  HopStats c;
  c.add(9);
  c.add(1);
  b.merge(c);
  EXPECT_EQ(b.count(), 4u);
  EXPECT_EQ(b.sum(), 17u);
  EXPECT_EQ(b.min(), 1u);
  EXPECT_EQ(b.max(), 9u);
}

TEST(ParallelMonteCarlo, ExactParallelMatchesSequentialExact) {
  // With rng-free forwarding rules the sharded exact measurement routes the
  // same ordered pairs as the sequential one, so the results are equal bit
  // for bit at every thread count.
  const IdSpace space(7);
  for (const std::string name : {"tree", "xor", "chord"}) {
    math::Rng build_rng(51);
    const auto overlay = make_named_overlay(name, space, build_rng);
    math::Rng fail_rng(52);
    const FailureScenario failures(space, 0.2, fail_rng);
    math::Rng serial_rng(53);
    const auto serial = exact_routability(*overlay, failures, serial_rng);
    for (unsigned threads : {1u, 4u}) {
      const math::Rng parallel_rng(54);
      const auto parallel = exact_routability_parallel(
          *overlay, failures, {.threads = threads}, parallel_rng);
      expect_identical(serial, parallel, name.c_str());
    }
  }
}

TEST(ParallelMonteCarlo, ExactParallelHypercubeDeterministicAndClose) {
  const IdSpace space(7);
  const HypercubeOverlay overlay(space);
  math::Rng fail_rng(61);
  const FailureScenario failures(space, 0.2, fail_rng);
  const math::Rng rng(62);
  const auto one = exact_routability_parallel(overlay, failures,
                                              {.threads = 1}, rng);
  const auto eight = exact_routability_parallel(overlay, failures,
                                                {.threads = 8}, rng);
  expect_identical(one, eight, "hypercube-exact");
  math::Rng serial_rng(63);
  const auto serial = exact_routability(overlay, failures, serial_rng);
  EXPECT_EQ(one.routed.trials, serial.routed.trials);
  EXPECT_NEAR(one.routability(), serial.routability(), 0.02);
}

TEST(ParallelMonteCarlo, HopLimitHitsAreCountedDeterministically) {
  const IdSpace space(8);
  const HypercubeOverlay overlay(space);
  const FailureScenario alive = FailureScenario::all_alive(space);
  const math::Rng rng(71);
  const ParallelOptions options{.pairs = 2000, .max_hops = 1, .threads = 2};
  const auto a = estimate_routability_parallel(overlay, alive, options, rng);
  EXPECT_GT(a.hop_limit_hits(), 0u);  // Hamming distance > 1 cannot arrive
  ParallelOptions more_threads = options;
  more_threads.threads = 8;
  const auto b =
      estimate_routability_parallel(overlay, alive, more_threads, rng);
  expect_identical(a, b, "hop-limit");
}

TEST(ParallelMonteCarlo, RejectsDegenerateInputs) {
  const IdSpace space(4);
  const HypercubeOverlay overlay(space);
  const math::Rng rng(81);
  const FailureScenario alive = FailureScenario::all_alive(space);
  EXPECT_THROW(
      estimate_routability_parallel(overlay, alive, {.pairs = 0}, rng),
      PreconditionError);
  FailureScenario one_alive = FailureScenario::all_alive(space);
  for (NodeId id = 1; id < space.size(); ++id) {
    one_alive.kill(id);
  }
  EXPECT_THROW(
      estimate_routability_parallel(overlay, one_alive, {.pairs = 10}, rng),
      PreconditionError);
  EXPECT_THROW(exact_routability_parallel(overlay, one_alive, {}, rng),
               PreconditionError);
}

}  // namespace
}  // namespace dht::sim
