#include "sim/shard_pool.hpp"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace dht::sim {
namespace {

TEST(ShardPool, EveryShardRunsExactlyOnce) {
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    for (std::uint64_t chunk : {0ull, 1ull, 7ull, 1000ull}) {
      const std::uint64_t shards = 257;  // prime: never divides chunk runs
      std::vector<std::atomic<int>> hits(shards);
      run_sharded(shards, PoolOptions{.threads = threads, .chunk = chunk},
                  [&](std::uint64_t s) {
                    ASSERT_LT(s, shards);
                    hits[s].fetch_add(1, std::memory_order_relaxed);
                  });
      for (std::uint64_t s = 0; s < shards; ++s) {
        EXPECT_EQ(hits[s].load(), 1)
            << "shard " << s << " threads=" << threads << " chunk=" << chunk;
      }
    }
  }
}

TEST(ShardPool, MoreThreadsThanShards) {
  std::vector<std::atomic<int>> hits(3);
  run_sharded(3, PoolOptions{.threads = 16}, [&](std::uint64_t s) {
    hits[s].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ShardPool, ZeroShardsIsANoOp) {
  int calls = 0;
  run_sharded(0, PoolOptions{.threads = 4}, [&](std::uint64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ShardPool, ThrowingShardPropagatesWithoutDeadlock) {
  // The original bug: workers claimed a new run BEFORE checking the failure
  // flag, so a failed sweep kept starting fresh shards.  This must (a) not
  // deadlock, (b) rethrow the first exception, (c) stop claiming promptly.
  for (unsigned threads : {1u, 2u, 8u}) {
    const std::uint64_t shards = 10000;
    std::atomic<std::uint64_t> started{0};
    std::atomic<std::uint64_t> after_failure{0};
    std::atomic<bool> thrown{false};
    const auto work = [&](std::uint64_t s) {
      if (thrown.load(std::memory_order_acquire)) {
        after_failure.fetch_add(1, std::memory_order_relaxed);
      }
      started.fetch_add(1, std::memory_order_relaxed);
      if (s == 5) {
        thrown.store(true, std::memory_order_release);
        throw std::runtime_error("shard 5 exploded");
      }
    };
    EXPECT_THROW(
        run_sharded(shards, PoolOptions{.threads = threads, .chunk = 1}, work),
        std::runtime_error)
        << "threads=" << threads;
    // In-flight shards may finish (one per surviving worker at most a
    // chunk's worth); nothing close to the full sweep may run.
    EXPECT_LT(started.load(), shards / 2) << "threads=" << threads;
    EXPECT_LE(after_failure.load(), std::uint64_t{threads} * 64)
        << "threads=" << threads;
  }
}

TEST(ShardPool, FirstExceptionWins) {
  // Every shard throws; exactly one exception must surface and the pool
  // must still join all workers.
  EXPECT_THROW(
      run_sharded(64, PoolOptions{.threads = 8, .chunk = 1},
                  [](std::uint64_t s) {
                    throw std::runtime_error("shard " + std::to_string(s));
                  }),
      std::runtime_error);
}

TEST(ShardPool, ShardOrderMergeIsThreadCountInvariant) {
  // The engines' contract in miniature: per-shard results merged in shard
  // order are bit-identical at any thread count.
  const std::uint64_t shards = 512;
  const auto run = [&](unsigned threads) {
    std::vector<std::uint64_t> value(shards);
    run_sharded(shards, PoolOptions{.threads = threads},
                [&](std::uint64_t s) { value[s] = s * 0x9e3779b97f4a7c15ULL; });
    return std::accumulate(value.begin(), value.end(), std::uint64_t{0});
  };
  const std::uint64_t one = run(1);
  EXPECT_EQ(run(2), one);
  EXPECT_EQ(run(8), one);
}

TEST(ShardPool, PinWorkersIsBestEffortAndHarmless) {
  // Pinning must never change results or fail where unsupported.
  std::vector<std::atomic<int>> hits(64);
  run_sharded(64, PoolOptions{.threads = 4, .pin_workers = true},
              [&](std::uint64_t s) {
                hits[s].fetch_add(1, std::memory_order_relaxed);
              });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ShardPool, ResolveThreads) {
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_GE(resolve_threads(0), 1u);
}

}  // namespace
}  // namespace dht::sim
