#include "math/stable.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dht::math {
namespace {

TEST(PowInt, MatchesStdPow) {
  EXPECT_DOUBLE_EQ(pow_int(2.0, 10), 1024.0);
  EXPECT_DOUBLE_EQ(pow_int(0.5, 3), 0.125);
  EXPECT_DOUBLE_EQ(pow_int(7.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(pow_int(0.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(pow_int(0.0, 0), 1.0);
  EXPECT_NEAR(pow_int(0.9, 100), std::pow(0.9, 100), 1e-15);
}

TEST(PowInt, GracefulUnderflow) {
  EXPECT_EQ(pow_int(0.5, 2000), 0.0);
}

TEST(PowQ, Basics) {
  EXPECT_DOUBLE_EQ(pow_q(0.3, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(pow_q(0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(pow_q(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(pow_q(1.0, 7.0), 1.0);
  EXPECT_NEAR(pow_q(0.3, 4.0), 0.0081, 1e-15);
}

TEST(PowQ, RejectsOutOfDomain) {
  EXPECT_THROW(pow_q(-0.1, 2.0), PreconditionError);
  EXPECT_THROW(pow_q(1.1, 2.0), PreconditionError);
  EXPECT_THROW(pow_q(0.5, -1.0), PreconditionError);
}

TEST(OneMinusPow, MatchesNaiveInEasyRange) {
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (int m = 1; m <= 30; ++m) {
      EXPECT_NEAR(one_minus_pow(q, m), 1.0 - std::pow(q, m), 1e-14)
          << "q=" << q << " m=" << m;
    }
  }
}

TEST(OneMinusPow, PrecisionNearQOne) {
  // q = 1 - 1e-12 (as stored in double).  The reference values are computed
  // from the *stored* q: 1 - q is exact by Sterbenz, and
  // 1 - q^2 = (1-q)(1+q).  expm1 must track them to ~1 ulp even though the
  // naive 1 - pow(q, m) would cancel catastrophically.
  const double q = 1.0 - 1e-12;
  const double one_minus_q = 1.0 - q;  // exact
  EXPECT_NEAR(one_minus_pow(q, 1.0), one_minus_q, 1e-26);
  EXPECT_NEAR(one_minus_pow(q, 2.0), one_minus_q * (1.0 + q), 1e-25);
}

TEST(OneMinusPow, Boundaries) {
  EXPECT_DOUBLE_EQ(one_minus_pow(0.5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(one_minus_pow(0.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(one_minus_pow(1.0, 3.0), 0.0);
}

TEST(LogOneMinusPow, ConsistentWithLinearVersion) {
  for (double q : {0.05, 0.25, 0.6, 0.95}) {
    for (int m = 1; m <= 40; ++m) {
      EXPECT_NEAR(log_one_minus_pow(q, m), std::log(one_minus_pow(q, m)),
                  1e-12)
          << "q=" << q << " m=" << m;
    }
  }
}

TEST(LogOneMinusPow, ExtremeTail) {
  // q = 1 - 1e-14, m = 1: log(1e-14) ~ -32.2; must not be -inf or 0.
  const double v = log_one_minus_pow(1.0 - 1e-14, 1.0);
  EXPECT_NEAR(v, std::log(1e-14), 1e-2);
}

TEST(LogOneMinusPow, Boundaries) {
  EXPECT_TRUE(std::isinf(log_one_minus_pow(0.5, 0.0)));
  EXPECT_TRUE(std::isinf(log_one_minus_pow(1.0, 2.0)));
  EXPECT_DOUBLE_EQ(log_one_minus_pow(0.0, 2.0), 0.0);
}

TEST(GeometricSum, MatchesDirectSummation) {
  for (double x : {0.0, 0.1, 0.5, 0.9, 0.99}) {
    for (int terms = 0; terms <= 50; ++terms) {
      double direct = 0.0;
      double power = 1.0;
      for (int j = 0; j < terms; ++j) {
        direct += power;
        power *= x;
      }
      EXPECT_NEAR(geometric_sum(x, terms), direct, 1e-9 * (1.0 + direct))
          << "x=" << x << " terms=" << terms;
    }
  }
}

TEST(GeometricSum, XEqualOneIsTermCount) {
  EXPECT_DOUBLE_EQ(geometric_sum(1.0, 17.0), 17.0);
}

TEST(GeometricSum, XNearOneStable) {
  // x = 1 - 1e-13, 1000 terms: still essentially 1000 terms of ~1.
  EXPECT_NEAR(geometric_sum(1.0 - 1e-13, 1000.0), 1000.0, 1e-6);
}

TEST(GeometricSum, AstronomicalTermCountConvergesToLimit) {
  // The ring geometry passes 2^{m-1} terms; for x < 1 the sum must
  // saturate at 1/(1-x).
  EXPECT_NEAR(geometric_sum(0.5, 1e300), 2.0, 1e-12);
  EXPECT_NEAR(geometric_sum(0.5, std::numeric_limits<double>::infinity()),
              2.0, 1e-12);
  EXPECT_NEAR(geometric_sum(0.9, 1e18), 10.0, 1e-9);
}

TEST(GeometricSum, ZeroTermsIsZero) {
  EXPECT_DOUBLE_EQ(geometric_sum(0.7, 0.0), 0.0);
}

TEST(GeometricSum, RejectsOutOfDomain) {
  EXPECT_THROW(geometric_sum(-0.1, 5.0), PreconditionError);
  EXPECT_THROW(geometric_sum(1.5, 5.0), PreconditionError);
  EXPECT_THROW(geometric_sum(0.5, -1.0), PreconditionError);
}

}  // namespace
}  // namespace dht::math
