// The flattened sparse kernels and the sharded sparse parallel estimator
// (sparse/flat_sparse.hpp): per-pair oracle equality against the virtual
// next_hop path, bit-identical results across thread counts, exact-integer
// merge semantics, and the widened 2^63 key-space range.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.hpp"
#include "math/rng.hpp"
#include "sparse/flat_sparse.hpp"
#include "sparse/sparse_chord.hpp"
#include "sparse/sparse_kademlia.hpp"
#include "sparse/sparse_symphony.hpp"

namespace dht::sparse {
namespace {

void expect_identical(const SparseEstimate& a, const SparseEstimate& b,
                      const char* what) {
  EXPECT_EQ(a.attempts, b.attempts) << what;
  EXPECT_EQ(a.hops.count(), b.hops.count()) << what;
  EXPECT_EQ(a.hops.sum(), b.hops.sum()) << what;
  EXPECT_EQ(a.hops.sum_squares(), b.hops.sum_squares()) << what;
  EXPECT_EQ(a.hops.min(), b.hops.min()) << what;
  EXPECT_EQ(a.hops.max(), b.hops.max()) << what;
  EXPECT_EQ(a.hop_limit_hits(), b.hop_limit_hits()) << what;
}

struct Instance {
  std::unique_ptr<SparseIdSpace> space;
  std::unique_ptr<SparseOverlay> overlay;
};

Instance make_instance(const std::string& name, int bits, std::uint64_t n,
                       std::uint64_t seed) {
  math::Rng rng(seed);
  Instance inst;
  inst.space = std::make_unique<SparseIdSpace>(bits, n, rng);
  if (name == "chord") {
    inst.overlay = std::make_unique<SparseChordOverlay>(*inst.space);
  } else if (name == "kademlia") {
    inst.overlay = std::make_unique<SparseKademliaOverlay>(*inst.space, rng);
  } else {
    inst.overlay = std::make_unique<SparseSymphonyOverlay>(*inst.space, 2, 2,
                                                           rng);
  }
  return inst;
}

TEST(FlatSparse, KernelsMatchVirtualOraclePerPair) {
  // Same (source, target) under the same scenario: the kernel and the
  // virtual next_hop path must agree on the outcome AND the hop count for
  // every pair -- the kernels are replicas, not approximations.
  for (const std::string name : {"chord", "kademlia", "symphony"}) {
    const auto inst = make_instance(name, 22, 3000, 301);
    math::Rng fail_rng(302);
    const SparseFailure failures(*inst.space, 0.25, fail_rng);
    const auto ctx = flat::make_sparse_ctx(*inst.overlay, failures, 0, true);
    ASSERT_NE(ctx.kind, flat::SparseKernelKind::kGeneric) << name;

    math::Rng pair_rng(303);
    for (int i = 0; i < 2000; ++i) {
      const NodeIndex source = failures.sample_alive(pair_rng);
      NodeIndex target = failures.sample_alive(pair_rng);
      if (target == source) {
        continue;
      }
      flat::SparseRouteResult kernel;
      switch (ctx.kind) {
        case flat::SparseKernelKind::kChord:
          kernel = flat::route_sparse_chord(ctx, source, target);
          break;
        case flat::SparseKernelKind::kKademlia:
          kernel = flat::route_sparse_kademlia(ctx, source, target);
          break;
        default:
          kernel = flat::route_sparse_symphony(ctx, source, target);
          break;
      }
      const auto oracle = route(*inst.overlay, failures, source, target);
      if (oracle.has_value()) {
        ASSERT_EQ(kernel.status, flat::SparseRouteStatus::kArrived)
            << name << " source=" << source << " target=" << target;
        EXPECT_EQ(kernel.hops, *oracle)
            << name << " source=" << source << " target=" << target;
      } else {
        ASSERT_EQ(kernel.status, flat::SparseRouteStatus::kDropped)
            << name << " source=" << source << " target=" << target;
      }
    }
  }
}

TEST(FlatSparse, FlatAndGenericEstimatesAreBitIdentical) {
  // All three sparse forwarding rules are rng-free, so the flat and the
  // virtual-dispatch estimator runs consume identical rng streams and must
  // agree field by field.
  for (const std::string name : {"chord", "kademlia", "symphony"}) {
    const auto inst = make_instance(name, 20, 2048, 311);
    math::Rng fail_rng(312);
    const SparseFailure failures(*inst.space, 0.3, fail_rng);
    const math::Rng route_rng(313);
    SparseParallelOptions flat_options{.pairs = 4000, .threads = 2};
    SparseParallelOptions generic_options = flat_options;
    generic_options.use_flat_kernels = false;
    const auto a = estimate_routability_parallel(*inst.overlay, failures,
                                                 flat_options, route_rng);
    const auto b = estimate_routability_parallel(*inst.overlay, failures,
                                                 generic_options, route_rng);
    expect_identical(a, b, name.c_str());
    EXPECT_GT(a.attempts, 0u) << name;
    EXPECT_EQ(a.hop_limit_hits(), 0u) << name;
  }
}

TEST(FlatSparse, BitIdenticalAcrossThreadCounts) {
  for (const std::string name : {"chord", "kademlia", "symphony"}) {
    const auto inst = make_instance(name, 24, 4096, 321);
    math::Rng fail_rng(322);
    const SparseFailure failures(*inst.space, 0.2, fail_rng);
    const math::Rng route_rng(323);
    SparseEstimate reference;
    bool first = true;
    for (unsigned threads : {1u, 2u, 8u}) {
      const SparseParallelOptions options{.pairs = 6000, .threads = threads};
      const auto estimate = estimate_routability_parallel(
          *inst.overlay, failures, options, route_rng);
      if (first) {
        reference = estimate;
        first = false;
        // Sanity floor only (Symphony with kn = ks = 2 sits near 0.4 at
        // q = 0.2); the point of this test is the bit equality below.
        EXPECT_GT(estimate.routability(), 0.25) << name;
      } else {
        expect_identical(reference, estimate, name.c_str());
      }
    }
  }
}

TEST(FlatSparse, RepeatedCallsAreIdentical) {
  // The estimator only forks the caller's rng, so re-running with the same
  // generator must reproduce the estimate exactly.
  const auto inst = make_instance("kademlia", 20, 2048, 331);
  math::Rng fail_rng(332);
  const SparseFailure failures(*inst.space, 0.25, fail_rng);
  const math::Rng route_rng(333);
  const auto a = estimate_routability_parallel(*inst.overlay, failures,
                                               {.pairs = 3000}, route_rng);
  const auto b = estimate_routability_parallel(*inst.overlay, failures,
                                               {.pairs = 3000}, route_rng);
  expect_identical(a, b, "repeat");
}

TEST(FlatSparse, AgreesWithSequentialEstimator) {
  // Different pair sampling (sharded sub-streams vs one stream), same
  // distribution: the parallel estimate must agree statistically with the
  // sequential oracle estimator.
  const auto inst = make_instance("chord", 22, 4096, 341);
  math::Rng fail_rng(342);
  const SparseFailure failures(*inst.space, 0.3, fail_rng);
  math::Rng serial_rng(343);
  const auto serial =
      estimate_routability(*inst.overlay, failures, 20000, serial_rng);
  const math::Rng parallel_rng(344);
  const auto parallel = estimate_routability_parallel(
      *inst.overlay, failures, {.pairs = 20000, .threads = 4}, parallel_rng);
  EXPECT_NEAR(parallel.routability(), serial.routability(), 0.02);
  EXPECT_NEAR(parallel.mean_hops(), serial.mean_hops(), 0.15);
}

TEST(FlatSparse, MergeOfShardsEqualsOnePass) {
  // A deterministic stream of outcomes recorded once sequentially and once
  // split across three shard estimates; merging the shards must reproduce
  // the one-pass accumulator exactly.
  math::Rng rng(77);
  SparseEstimate one_pass;
  SparseEstimate shards[3];
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t kind = rng.uniform_below(10);
    const std::uint64_t hops = rng.uniform_below(20);
    SparseEstimate& shard = shards[i % 3];
    if (kind < 7) {
      one_pass.record_arrival(hops);
      shard.record_arrival(hops);
    } else if (kind < 9) {
      one_pass.record_drop();
      shard.record_drop();
    } else {
      one_pass.record_hop_limit();
      shard.record_hop_limit();
    }
  }
  SparseEstimate merged;
  for (const SparseEstimate& shard : shards) {
    merged.merge(shard);
  }
  expect_identical(one_pass, merged, "merge");

  // Merging an empty estimate is the identity.
  SparseEstimate empty;
  merged.merge(empty);
  expect_identical(one_pass, merged, "merge-empty");
}

TEST(FlatSparse, KBucketKernelMatchesOraclePerPair) {
  // The k-aware kernel must replicate the widened oracle hop for hop: same
  // head-first cell probing, same strictly-closer greedy choice (which the
  // kernel elides because it provably holds for every bucket member).
  math::Rng rng(401);
  const SparseIdSpace space(22, 3000, rng);
  const SparseKademliaOverlay overlay(space, rng, /*k=*/3);
  EXPECT_EQ(overlay.bucket_k(), 3);
  math::Rng fail_rng(402);
  const SparseFailure failures(space, 0.3, fail_rng);
  const auto ctx = flat::make_sparse_ctx(overlay, failures, 0, true);
  ASSERT_EQ(ctx.kind, flat::SparseKernelKind::kKademlia);
  ASSERT_EQ(ctx.bucket_k, 3);
  ASSERT_EQ(ctx.row_width, 22 * 3);
  math::Rng pair_rng(403);
  for (int i = 0; i < 2000; ++i) {
    const NodeIndex source = failures.sample_alive(pair_rng);
    const NodeIndex target = failures.sample_alive(pair_rng);
    if (target == source) {
      continue;
    }
    const auto kernel = flat::route_sparse_kademlia(ctx, source, target);
    const auto oracle = route(overlay, failures, source, target);
    if (oracle.has_value()) {
      ASSERT_EQ(kernel.status, flat::SparseRouteStatus::kArrived)
          << "source=" << source << " target=" << target;
      EXPECT_EQ(kernel.hops, *oracle)
          << "source=" << source << " target=" << target;
    } else {
      ASSERT_EQ(kernel.status, flat::SparseRouteStatus::kDropped)
          << "source=" << source << " target=" << target;
    }
  }
}

TEST(FlatSparse, KBucketCellsAreDistinctAndKOneIsTheSingleContactLayout) {
  // The explicit k = 1 constructor must produce the byte-identical table
  // of the historical single-contact constructor (same rng stream, same
  // layout), and k > 1 cells within a bucket never duplicate a member.
  const std::uint64_t n = 2048;
  math::Rng rng_a(411);
  const SparseIdSpace space_a(20, n, rng_a);
  const SparseKademliaOverlay single(space_a, rng_a);
  math::Rng rng_k1(411);
  const SparseIdSpace space_k1(20, n, rng_k1);
  const SparseKademliaOverlay explicit_k1(space_k1, rng_k1, /*k=*/1);
  EXPECT_EQ(single.contact_table(), explicit_k1.contact_table());
  math::Rng rng_b(411);
  const SparseIdSpace space_b(20, n, rng_b);
  const SparseKademliaOverlay wide(space_b, rng_b, /*k=*/4);
  const int d = space_a.bits();
  for (NodeIndex v = 0; v < n; v += 17) {
    for (int bucket = 1; bucket <= d; ++bucket) {
      for (int cell = 0; cell < 4; ++cell) {
        const auto entry = wide.contact(v, bucket, cell);
        if (!entry.has_value()) {
          continue;
        }
        for (int other = cell + 1; other < 4; ++other) {
          const auto peer = wide.contact(v, bucket, other);
          if (peer.has_value()) {
            EXPECT_NE(*entry, *peer)
                << "node " << v << " bucket " << bucket << " cells " << cell
                << "/" << other;
          }
        }
      }
    }
  }
  // Wider buckets survive failure measurably better: the parallel
  // estimator on the same space and scenario, k = 4 vs k = 1.
  math::Rng fail_rng(412);
  const SparseFailure failures(space_a, 0.5, fail_rng);
  const math::Rng route_rng(413);
  const auto est_single = estimate_routability_parallel(
      single, failures, {.pairs = 8000}, route_rng);
  const auto est_wide = estimate_routability_parallel(
      wide, failures, {.pairs = 8000}, route_rng);
  EXPECT_GT(est_wide.routability(), est_single.routability() + 0.03);
}

// Routes one (source, target) pair through the struct-of-arrays batch
// kernels -- lane 0 active, the rest parked -- until the lane terminates,
// mirroring the engine driver's retire logic.  The batch kernels must be
// pure restructurings of the scalar steppers, so the outcome and hop count
// must match route_sparse_* exactly.
flat::SparseRouteResult route_one_batched(const flat::FlatSparseCtx& c,
                                          NodeIndex source, NodeIndex target,
                                          std::uint64_t max_hops) {
  flat::RouteBatch b{};
  for (int l = 0; l < flat::RouteBatch::kLanes; ++l) {
    b.active[l] = 0;
  }
  b.cur[0] = source;
  b.target[0] = target;
  b.target_id[0] = c.ids[target];
  b.dist[0] = (b.target_id[0] - c.ids[source]) & c.key_mask;
  b.hops[0] = 0;
  b.active[0] = 1;
  while (true) {
    switch (c.kind) {
      case flat::SparseKernelKind::kChord:
        flat::step_batch_chord(c, b);
        break;
      case flat::SparseKernelKind::kKademlia:
        flat::step_batch_kademlia(c, b);
        break;
      default:
        flat::step_batch_symphony(c, b);
        break;
    }
    if (b.cur[0] == kNoNode) {
      return {flat::SparseRouteStatus::kDropped,
              static_cast<int>(b.hops[0])};
    }
    if (b.cur[0] == b.target[0]) {
      return {flat::SparseRouteStatus::kArrived,
              static_cast<int>(b.hops[0])};
    }
    if (b.hops[0] >= max_hops) {
      return {flat::SparseRouteStatus::kHopLimit,
              static_cast<int>(b.hops[0])};
    }
  }
}

TEST(FlatSparse, BatchKernelsMatchScalarSteppersPerPair) {
  // Every geometry, both liveness regimes: batch and scalar must agree on
  // status and hop count for every pair.
  for (const std::string name : {"chord", "kademlia", "symphony"}) {
    for (double q : {0.0, 0.3}) {
      const auto inst = make_instance(name, 22, 3000, 501);
      math::Rng fail_rng(502);
      const SparseFailure failures(*inst.space, q, fail_rng);
      const auto ctx =
          flat::make_sparse_ctx(*inst.overlay, failures, 0, true);
      ASSERT_NE(ctx.kind, flat::SparseKernelKind::kGeneric) << name;
      if (ctx.kind == flat::SparseKernelKind::kChord) {
        ASSERT_NE(ctx.packed, nullptr) << "bits <= 32 must use packed rows";
      }
      const std::uint64_t max_hops = inst.space->node_count();
      math::Rng pair_rng(503);
      for (int i = 0; i < 1500; ++i) {
        const NodeIndex source = failures.sample_alive(pair_rng);
        const NodeIndex target = failures.sample_alive(pair_rng);
        if (target == source) {
          continue;
        }
        flat::SparseRouteResult scalar;
        switch (ctx.kind) {
          case flat::SparseKernelKind::kChord:
            scalar = flat::route_sparse_chord(ctx, source, target);
            break;
          case flat::SparseKernelKind::kKademlia:
            scalar = flat::route_sparse_kademlia(ctx, source, target);
            break;
          default:
            scalar = flat::route_sparse_symphony(ctx, source, target);
            break;
        }
        const auto batched = route_one_batched(ctx, source, target, max_hops);
        ASSERT_EQ(batched.status, scalar.status)
            << name << " q=" << q << " source=" << source
            << " target=" << target;
        EXPECT_EQ(batched.hops, scalar.hops)
            << name << " q=" << q << " source=" << source
            << " target=" << target;
      }
    }
  }
}

TEST(FlatSparse, WideChordBatchKernelMatchesScalar) {
  // bits > 32 selects the two-array chord shape (progress no longer fits
  // the packed u64); the wide batch kernel must replicate the scalar
  // stepper just like the packed one.
  math::Rng rng(511);
  const SparseIdSpace space(40, 4096, rng);
  const SparseChordOverlay overlay(space);
  ASSERT_TRUE(overlay.route_packed().empty());
  ASSERT_FALSE(overlay.route_progress().empty());
  math::Rng fail_rng(512);
  const SparseFailure failures(space, 0.25, fail_rng);
  const auto ctx = flat::make_sparse_ctx(overlay, failures, 0, true);
  ASSERT_EQ(ctx.kind, flat::SparseKernelKind::kChord);
  ASSERT_EQ(ctx.packed, nullptr);
  math::Rng pair_rng(513);
  for (int i = 0; i < 1500; ++i) {
    const NodeIndex source = failures.sample_alive(pair_rng);
    const NodeIndex target = failures.sample_alive(pair_rng);
    if (target == source) {
      continue;
    }
    const auto scalar = flat::route_sparse_chord(ctx, source, target);
    const auto batched =
        route_one_batched(ctx, source, target, space.node_count());
    ASSERT_EQ(batched.status, scalar.status)
        << "source=" << source << " target=" << target;
    EXPECT_EQ(batched.hops, scalar.hops)
        << "source=" << source << " target=" << target;
  }
}

TEST(FlatSparse, KBucketBatchKernelMatchesScalar) {
  // The k > 1 bucket layout through the batched kernel: head-first cell
  // probing must survive the phase split.
  math::Rng rng(521);
  const SparseIdSpace space(22, 3000, rng);
  const SparseKademliaOverlay overlay(space, rng, /*k=*/3);
  math::Rng fail_rng(522);
  const SparseFailure failures(space, 0.4, fail_rng);
  const auto ctx = flat::make_sparse_ctx(overlay, failures, 0, true);
  ASSERT_EQ(ctx.bucket_k, 3);
  math::Rng pair_rng(523);
  for (int i = 0; i < 1500; ++i) {
    const NodeIndex source = failures.sample_alive(pair_rng);
    const NodeIndex target = failures.sample_alive(pair_rng);
    if (target == source) {
      continue;
    }
    const auto scalar = flat::route_sparse_kademlia(ctx, source, target);
    const auto batched =
        route_one_batched(ctx, source, target, space.node_count());
    ASSERT_EQ(batched.status, scalar.status)
        << "source=" << source << " target=" << target;
    EXPECT_EQ(batched.hops, scalar.hops)
        << "source=" << source << " target=" << target;
  }
}

TEST(FlatSparse, WideKeySpaceRoutesAtSixtyThreeBits) {
  // The widened SparseIdSpace range: 2^16 nodes scattered in a 2^63 key
  // space must construct, route failure-free, and keep O(log N) hop counts
  // (density reduction: behavior depends on N, not the key-space size).
  math::Rng rng(351);
  const SparseIdSpace space(63, 1 << 16, rng);
  EXPECT_EQ(space.bits(), 63);
  EXPECT_EQ(space.key_space_size(), std::uint64_t{1} << 63);
  const SparseChordOverlay overlay(space);
  const SparseFailure none(space, 0.0, rng);
  const math::Rng route_rng(352);
  const auto estimate = estimate_routability_parallel(
      overlay, none, {.pairs = 2000, .threads = 2}, route_rng);
  EXPECT_EQ(estimate.routability(), 1.0);
  EXPECT_EQ(estimate.hop_limit_hits(), 0u);
  EXPECT_LE(estimate.hops.max(), 63u);
}

TEST(FlatSparse, RejectsDegenerateInputs) {
  const auto inst = make_instance("chord", 16, 256, 361);
  math::Rng fail_rng(362);
  const SparseFailure failures(*inst.space, 0.1, fail_rng);
  const math::Rng rng(363);
  EXPECT_THROW(estimate_routability_parallel(*inst.overlay, failures,
                                             {.pairs = 0}, rng),
               PreconditionError);
  math::Rng dead_rng(364);
  const SparseFailure all_dead(*inst.space, 1.0, dead_rng);
  EXPECT_THROW(estimate_routability_parallel(*inst.overlay, all_dead,
                                             {.pairs = 10}, rng),
               PreconditionError);
}

}  // namespace
}  // namespace dht::sparse
