// Exact validation of RCM on tiny networks: enumerate EVERY failure mask.
//
// On a d-bit space with N = 2^d <= 16 nodes there are only 2^N liveness
// masks.  For each mask the expected number of routable ordered pairs is
// computable exactly (dynamic programming over the router's uniform choice
// for the hypercube; deterministic tracing for classic Chord), and the
// mask's probability q^dead (1-q)^alive is a polynomial in q.  Summing
// gives the *exact* expectation E[routable pairs](q) -- no sampling, no
// tolerance fudge -- which RCM predicts as
//
//     E[routable pairs] = N (1-q) sum_h n(h) p(h, q).
//
// Hypercube: the identity must hold to floating-point accuracy (the model
// is exact).  Classic Chord: the RCM value must lower-bound the exact one
// (the paper's bound claim, verified exactly).  Tree: the per-table path
// identity E = sum_{s != t} (1-q)^{hops+1} averaged over tables must match.
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/node_id.hpp"
#include "sim/router.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace dht {
namespace {

constexpr double kQGrid[] = {0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9};

/// RCM prediction of E[routable ordered pairs] = N (1-q) sum_h n(h) p(h,q).
double rcm_expected_pairs(const core::Geometry& geometry, int d, double q) {
  const double n = std::exp2(d);
  const core::RoutabilityPoint point =
      core::evaluate_routability(geometry, d, q);
  return n * (1.0 - q) * std::exp(point.log_expected_reachable);
}

/// Expected routable ordered pairs for one hypercube liveness mask, exact
/// over the router's uniform choice among alive bit-correcting neighbors.
double hypercube_pairs_for_mask(int d, std::uint32_t mask) {
  const int n = 1 << d;
  double total = 0.0;
  std::vector<double> g(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    if ((mask >> t & 1u) == 0) {
      continue;  // dead target: no pair can route to it
    }
    // Process nodes in increasing Hamming distance from t; g(v) is the
    // probability the (uniform-choice) greedy route from v reaches t.
    std::vector<int> order(static_cast<size_t>(n));
    for (int v = 0; v < n; ++v) {
      order[static_cast<size_t>(v)] = v;
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return std::popcount(static_cast<unsigned>(a ^ t)) <
             std::popcount(static_cast<unsigned>(b ^ t));
    });
    for (int v : order) {
      if (v == t) {
        g[static_cast<size_t>(v)] = 1.0;
        continue;
      }
      double sum = 0.0;
      int alive_choices = 0;
      unsigned diff = static_cast<unsigned>(v ^ t);
      while (diff != 0) {
        const unsigned bit = diff & (~diff + 1);
        const int w = v ^ static_cast<int>(bit);
        if ((mask >> w & 1u) != 0) {
          ++alive_choices;
          sum += g[static_cast<size_t>(w)];
        }
        diff ^= bit;
      }
      g[static_cast<size_t>(v)] =
          alive_choices == 0 ? 0.0 : sum / alive_choices;
    }
    for (int s = 0; s < n; ++s) {
      if (s != t && (mask >> s & 1u) != 0) {
        total += g[static_cast<size_t>(s)];
      }
    }
  }
  return total;
}

/// Exact E[routable pairs](q) from per-mask values: sum over all masks of
/// q^dead (1-q)^alive * pairs(mask).
double exact_expectation(const std::vector<double>& pairs_by_mask, int n,
                         double q) {
  double total = 0.0;
  for (std::uint32_t mask = 0;
       mask < (std::uint32_t{1} << n); ++mask) {
    const int alive = std::popcount(mask);
    const double p_mask =
        std::pow(1.0 - q, alive) * std::pow(q, n - alive);
    total += p_mask * pairs_by_mask[mask];
  }
  return total;
}

TEST(ExactSmall, HypercubeRcmIsExactD3) {
  const int d = 3;
  const int n = 1 << d;
  std::vector<double> pairs(size_t{1} << n);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    pairs[mask] = hypercube_pairs_for_mask(d, mask);
  }
  const auto cube = core::make_geometry(core::GeometryKind::kHypercube);
  for (double q : kQGrid) {
    const double exact = exact_expectation(pairs, n, q);
    const double predicted = rcm_expected_pairs(*cube, d, q);
    EXPECT_NEAR(exact, predicted, 1e-9 * (1.0 + predicted)) << "q=" << q;
  }
}

TEST(ExactSmall, HypercubeRcmIsExactD4) {
  const int d = 4;
  const int n = 1 << d;
  std::vector<double> pairs(size_t{1} << n);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    pairs[mask] = hypercube_pairs_for_mask(d, mask);
  }
  const auto cube = core::make_geometry(core::GeometryKind::kHypercube);
  for (double q : kQGrid) {
    const double exact = exact_expectation(pairs, n, q);
    const double predicted = rcm_expected_pairs(*cube, d, q);
    EXPECT_NEAR(exact, predicted, 1e-9 * (1.0 + predicted)) << "q=" << q;
  }
}

TEST(ExactSmall, ClassicChordBoundHoldsExactly) {
  // Deterministic fingers: routing is a pure function of the mask, so the
  // bound can be checked against the exact expectation.
  const int d = 4;
  const int n = 1 << d;
  const sim::IdSpace space(d);
  math::Rng build_rng(1);
  const sim::ChordOverlay overlay(space, build_rng);
  math::Rng route_rng(2);

  std::vector<double> pairs(size_t{1} << n, 0.0);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    sim::FailureScenario failures = sim::FailureScenario::all_alive(space);
    for (int v = 0; v < n; ++v) {
      if ((mask >> v & 1u) == 0) {
        failures.kill(static_cast<sim::NodeId>(v));
      }
    }
    if (failures.alive_count() < 2) {
      continue;
    }
    const sim::Router router(overlay, failures);
    int count = 0;
    for (int s = 0; s < n; ++s) {
      if ((mask >> s & 1u) == 0) {
        continue;
      }
      for (int t = 0; t < n; ++t) {
        if (t == s || (mask >> t & 1u) == 0) {
          continue;
        }
        count += router.route(static_cast<sim::NodeId>(s),
                              static_cast<sim::NodeId>(t), route_rng)
                         .success()
                     ? 1
                     : 0;
      }
    }
    pairs[mask] = count;
  }
  const auto ring = core::make_geometry(core::GeometryKind::kRing);
  for (double q : kQGrid) {
    const double exact = exact_expectation(pairs, n, q);
    const double bound = rcm_expected_pairs(*ring, d, q);
    EXPECT_GE(exact + 1e-9, bound) << "q=" << q;
  }
}

TEST(ExactSmall, TreePathIdentityOverTables) {
  // For a fixed tree table the route s -> t is a unique node path and
  // P(routable) = (1-q)^{hops+1}; averaging the resulting exact per-table
  // expectation over tables must reproduce N (1-q) ((2-q)^d - 1).
  const int d = 5;
  const int n = 1 << d;
  const sim::IdSpace space(d);
  const sim::FailureScenario alive = sim::FailureScenario::all_alive(space);
  const int tables = 400;
  math::Rng rng(3);

  for (double q : {0.1, 0.3, 0.6}) {
    double total = 0.0;
    for (int k = 0; k < tables; ++k) {
      math::Rng build_rng = rng.fork(static_cast<std::uint64_t>(k));
      const sim::TreeOverlay overlay(space, build_rng);
      const sim::Router router(overlay, alive);
      math::Rng route_rng(4);
      for (int s = 0; s < n; ++s) {
        for (int t = 0; t < n; ++t) {
          if (s == t) {
            continue;
          }
          const sim::RouteResult r = router.route(
              static_cast<sim::NodeId>(s), static_cast<sim::NodeId>(t),
              route_rng);
          ASSERT_TRUE(r.success());
          total += std::pow(1.0 - q, r.hops + 1);
        }
      }
    }
    const double mean = total / tables;
    const double predicted =
        n * (1.0 - q) * (std::pow(2.0 - q, d) - 1.0);
    EXPECT_NEAR(mean, predicted, 0.01 * predicted) << "q=" << q;
  }
}

TEST(ExactSmall, XorExactDominatesTreeAndTracksEq6) {
  // XOR routing is deterministic given (table, mask); enumerate all masks
  // for a sample of tables.  Exactly: xor >= tree prediction (fallback
  // dominance); approximately: within the documented Eq. 6 bias.
  const int d = 3;
  const int n = 1 << d;
  const sim::IdSpace space(d);
  const int tables = 200;
  math::Rng rng(5);
  math::Rng route_rng(6);

  std::vector<double> pairs(size_t{1} << n, 0.0);
  for (int k = 0; k < tables; ++k) {
    math::Rng build_rng = rng.fork(static_cast<std::uint64_t>(k));
    const sim::XorOverlay overlay(space, build_rng);
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      sim::FailureScenario failures = sim::FailureScenario::all_alive(space);
      for (int v = 0; v < n; ++v) {
        if ((mask >> v & 1u) == 0) {
          failures.kill(static_cast<sim::NodeId>(v));
        }
      }
      const sim::Router router(overlay, failures);
      for (int s = 0; s < n; ++s) {
        if ((mask >> s & 1u) == 0) {
          continue;
        }
        for (int t = 0; t < n; ++t) {
          if (t == s || (mask >> t & 1u) == 0) {
            continue;
          }
          if (router.route(static_cast<sim::NodeId>(s),
                           static_cast<sim::NodeId>(t), route_rng)
                  .success()) {
            pairs[mask] += 1.0 / tables;
          }
        }
      }
    }
  }
  const auto tree = core::make_geometry(core::GeometryKind::kTree);
  const auto xr = core::make_geometry(core::GeometryKind::kXor);
  for (double q : kQGrid) {
    const double exact = exact_expectation(pairs, n, q);
    const double tree_prediction = rcm_expected_pairs(*tree, d, q);
    const double xor_prediction = rcm_expected_pairs(*xr, d, q);
    EXPECT_GE(exact, tree_prediction - 0.02 * (1.0 + tree_prediction))
        << "q=" << q;
    // Eq. 6's idealization shows up as a modest gap even at d = 3.
    EXPECT_NEAR(exact, xor_prediction, 0.08 * (1.0 + xor_prediction))
        << "q=" << q;
  }
}

}  // namespace
}  // namespace dht
