// Large-scale smoke test for the dynamic-membership sparse churn engine
// (labeled `slow`, excluded from the sanitizer CI job; the scheduled slow
// job runs it in Release): N ~ 10^5 stationary population scattered in a
// 2^32 key space with joins and leaves enabled -- the ISSUE 4 acceptance
// scale -- evolves, repairs successor lists, routes, and stays
// bit-identical across 1/2/8 threads.
#include <gtest/gtest.h>

#include "churn/sparse_trajectory.hpp"
#include "math/rng.hpp"

namespace dht::churn {
namespace {

constexpr int kBits = 32;
// a = 0.8 at pd = 0.02, pr = 0.08: stationary population ~ 10^5.
constexpr std::uint64_t kCapacity = 125000;

TEST(SparseChurnMillion, HundredThousandNodeChurnIsThreadDeterministic) {
  const ChurnParams params{.death_per_round = 0.02,
                           .rebirth_per_round = 0.08,
                           .refresh_interval = 10};
  const SparseChurnConfig config{
      .bits = kBits, .capacity = kCapacity, .successors = 4, .shortcuts = 6};
  const TrajectoryOptions base{.warmup_rounds = 8,
                               .measured_rounds = 2,
                               .pairs_per_round = 1500,
                               .shards = 4};
  const math::Rng rng(401);
  SparseChurnResult reference;
  bool first = true;
  for (const unsigned threads : {1u, 2u, 8u}) {
    TrajectoryOptions options = base;
    options.threads = threads;
    const auto result = run_sparse_churn_trajectory(
        SparseChurnGeometry::kChord, config, params, options, rng);
    if (first) {
      reference = result;
      first = false;
    } else {
      ASSERT_EQ(reference.per_round.size(), result.per_round.size());
      for (std::size_t r = 0; r < result.per_round.size(); ++r) {
        EXPECT_TRUE(reference.per_round[r] == result.per_round[r])
            << "round " << r << " differs at " << threads << " threads";
      }
      EXPECT_TRUE(reference.overall == result.overall);
      EXPECT_EQ(reference.mean_population, result.mean_population);
      EXPECT_EQ(reference.mean_entry_age, result.mean_entry_age);
    }
  }
  // Physical sanity at the acceptance scale: the ring with successor lists
  // and predecessor notify stays near-perfectly routable under live
  // joins/leaves, population tracks a * capacity, and the hop cap is never
  // hit (strict progress).
  EXPECT_GT(reference.overall.routability(), 0.99);
  EXPECT_EQ(reference.overall.hop_limit_hits(), 0u);
  EXPECT_NEAR(reference.mean_population, 100000.0, 2000.0);
  EXPECT_LT(reference.overall.mean_hops(), 2.0 * 17);  // ~log2 N scale
}

TEST(SparseChurnMillion, KademliaHundredThousandNodesRoutesUnderChurn) {
  const ChurnParams params{.death_per_round = 0.02,
                           .rebirth_per_round = 0.08,
                           .refresh_interval = 10};
  const SparseChurnConfig config{
      .bits = kBits, .capacity = kCapacity, .successors = 4, .shortcuts = 6};
  const TrajectoryOptions options{.warmup_rounds = 8,
                                  .measured_rounds = 2,
                                  .pairs_per_round = 1500,
                                  .shards = 4,
                                  .threads = 2};
  const auto result = run_sparse_churn_trajectory(
      SparseChurnGeometry::kKademlia, config, params, options,
      math::Rng(402));
  EXPECT_GT(result.overall.routability(), 0.9);
  EXPECT_EQ(result.overall.hop_limit_hits(), 0u);
  EXPECT_GT(result.overall.attempts, 0u);
}

}  // namespace
}  // namespace dht::churn
