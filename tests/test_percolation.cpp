#include <gtest/gtest.h>

#include "common/check.hpp"
#include "math/rng.hpp"
#include "percolation/components.hpp"
#include "percolation/union_find.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace dht::perc {
namespace {

TEST(UnionFind, SingletonsInitially) {
  UnionFind forest(5);
  EXPECT_EQ(forest.set_count(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(forest.find(i), i);
    EXPECT_EQ(forest.set_size(i), 1u);
  }
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind forest(6);
  EXPECT_TRUE(forest.unite(0, 1));
  EXPECT_TRUE(forest.unite(1, 2));
  EXPECT_FALSE(forest.unite(0, 2));  // already together
  EXPECT_EQ(forest.set_count(), 4u);
  EXPECT_EQ(forest.set_size(2), 3u);
  EXPECT_EQ(forest.find(0), forest.find(2));
  EXPECT_NE(forest.find(0), forest.find(3));
}

TEST(UnionFind, ChainOfUnions) {
  const std::uint64_t n = 1000;
  UnionFind forest(n);
  for (std::uint64_t i = 0; i + 1 < n; ++i) {
    forest.unite(i, i + 1);
  }
  EXPECT_EQ(forest.set_count(), 1u);
  EXPECT_EQ(forest.set_size(123), n);
}

TEST(UnionFind, RejectsOutOfRange) {
  UnionFind forest(3);
  EXPECT_THROW(forest.find(3), PreconditionError);
  EXPECT_THROW(forest.unite(0, 3), PreconditionError);
}

TEST(Components, PerfectOverlayIsOneComponent) {
  const sim::IdSpace space(8);
  math::Rng rng(1);
  const sim::ChordOverlay overlay(space, rng);
  const sim::FailureScenario alive = sim::FailureScenario::all_alive(space);
  const ComponentSummary summary = analyze_components(overlay, alive);
  EXPECT_EQ(summary.alive_nodes, 256u);
  EXPECT_EQ(summary.component_count, 1u);
  EXPECT_EQ(summary.largest_component, 256u);
  EXPECT_EQ(summary.largest_fraction(), 1.0);
}

TEST(Components, ModerateFailureKeepsGiantComponent) {
  // Hypercube site percolation threshold is far below q = 0.3: the giant
  // component must hold nearly all alive nodes.
  const sim::IdSpace space(10);
  const sim::HypercubeOverlay overlay(space);
  math::Rng fail_rng(2);
  const sim::FailureScenario failures(space, 0.3, fail_rng);
  const ComponentSummary summary = analyze_components(overlay, failures);
  EXPECT_GT(summary.largest_fraction(), 0.95);
}

TEST(Components, ExtremeFailureFragments) {
  const sim::IdSpace space(10);
  const sim::HypercubeOverlay overlay(space);
  math::Rng fail_rng(3);
  const sim::FailureScenario failures(space, 0.95, fail_rng);
  const ComponentSummary summary = analyze_components(overlay, failures);
  EXPECT_GT(summary.component_count, 5u);
  EXPECT_LT(summary.largest_fraction(), 0.6);
}

TEST(Components, ConnectedComponentSizeOfDeadNodeIsZero) {
  const sim::IdSpace space(6);
  const sim::HypercubeOverlay overlay(space);
  sim::FailureScenario failures = sim::FailureScenario::all_alive(space);
  failures.kill(9);
  EXPECT_EQ(connected_component_size(overlay, failures, 9), 0u);
  EXPECT_EQ(connected_component_size(overlay, failures, 0), 63u);
}

TEST(Components, ReachableIsSubsetOfConnected) {
  // The paper's Section 1 argument: the reachable component of a node is a
  // subset of its connected component, strictly smaller once greedy
  // routing cannot exploit all surviving paths.
  const sim::IdSpace space(9);
  math::Rng build_rng(4);
  const sim::XorOverlay overlay(space, build_rng);
  for (double q : {0.2, 0.4, 0.6}) {
    math::Rng fail_rng(static_cast<std::uint64_t>(q * 100));
    sim::FailureScenario failures(space, q, fail_rng);
    math::Rng route_rng(5);
    // Pick a handful of alive sources.
    for (int k = 0; k < 5; ++k) {
      const sim::NodeId source = failures.sample_alive(route_rng);
      const std::uint64_t reachable =
          reachable_component_size(overlay, failures, source, route_rng);
      const std::uint64_t connected =
          connected_component_size(overlay, failures, source);
      EXPECT_LE(reachable, connected) << "q=" << q;
    }
  }
}

TEST(Components, RoutabilityGapGrowsWithFailure) {
  // At q = 0.5 the xor overlay's connected component stays giant while
  // greedy reachability drops well below it -- connectivity alone
  // overstates routability.
  const sim::IdSpace space(9);
  math::Rng build_rng(6);
  const sim::XorOverlay overlay(space, build_rng);
  math::Rng fail_rng(7);
  sim::FailureScenario failures(space, 0.5, fail_rng);
  math::Rng route_rng(8);
  const sim::NodeId source = failures.sample_alive(route_rng);
  const std::uint64_t reachable =
      reachable_component_size(overlay, failures, source, route_rng);
  const std::uint64_t connected =
      connected_component_size(overlay, failures, source);
  EXPECT_LT(reachable, connected);
  EXPECT_GT(connected, failures.alive_count() / 2);
}

TEST(Components, ReachableRequiresAliveSource) {
  const sim::IdSpace space(6);
  const sim::HypercubeOverlay overlay(space);
  sim::FailureScenario failures = sim::FailureScenario::all_alive(space);
  failures.kill(3);
  math::Rng rng(9);
  EXPECT_THROW(reachable_component_size(overlay, failures, 3, rng),
               PreconditionError);
}

}  // namespace
}  // namespace dht::perc
