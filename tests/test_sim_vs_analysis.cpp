// The paper's Fig. 6 experiment as a test: the RCM analytical predictions
// must track the measured static-resilience of the simulated overlays.
//
// The analytical quantity compared is the conditional success fraction
// E[S] / ((1-q)(N-1)) -- exactly what pair-sampling among alive nodes
// measures.  Tolerances reflect each geometry's Exactness:
//   * tree / hypercube: the model is exact for the basic protocol;
//     deviations are sampling plus topology/failure-instance noise, so the
//     tests average over several independent instances.
//   * xor: Eq. 6 idealizes fallback progress as durable, while the real
//     protocol re-randomizes low-order bits on every fallback hop.  The
//     measured bias is stable across d (see EXPERIMENTS.md): the model is
//     optimistic by <= 0.09 routability in the mid-q knee and pessimistic
//     by <= 0.04 around q = 0.5; the test pins that band.
//   * ring: with classic deterministic fingers (Gummadi's simulated
//     system) the model is a true lower bound on routability, tight for
//     q <= 0.2 (paper Fig. 6(b)).
//   * symphony: Eq. 7 ignores overshoot-blocking (successor dead, alive
//     shortcuts overshoot), so it upper-bounds the unidirectional greedy
//     protocol; the paper never validates Symphony against simulation.
#include <memory>

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/symphony_overlay.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace dht {
namespace {

constexpr int kBits = 12;  // N = 4096
constexpr std::uint64_t kPairs = 20000;
constexpr int kInstances = 4;  // independent topology+failure instances

/// Mean simulated routability over independent (table, failure) instances.
template <typename MakeOverlay>
double mean_simulated(const MakeOverlay& make_overlay, double q,
                      std::uint64_t seed) {
  double total = 0.0;
  for (int instance = 0; instance < kInstances; ++instance) {
    math::Rng build_rng(seed + 17 * static_cast<std::uint64_t>(instance));
    const auto overlay = make_overlay(build_rng);
    math::Rng fail_rng(seed + 1000 + static_cast<std::uint64_t>(instance));
    const sim::FailureScenario failures(overlay->space(), q, fail_rng);
    math::Rng route_rng(seed + 2000 + static_cast<std::uint64_t>(instance));
    const auto estimate = sim::estimate_routability(
        *overlay, failures, {.pairs = kPairs}, route_rng);
    EXPECT_EQ(estimate.hop_limit_hits(), 0u);
    total += estimate.routability();
  }
  return total / kInstances;
}

double analytical_conditional(core::GeometryKind kind, double q) {
  const auto geometry = core::make_geometry(kind);
  return core::evaluate_routability(*geometry, kBits, q).conditional_success;
}

TEST(SimVsAnalysis, TreeMatchesExactModel) {
  const sim::IdSpace space(kBits);
  const auto make = [&](math::Rng& rng) {
    return std::make_unique<sim::TreeOverlay>(space, rng);
  };
  for (double q : {0.05, 0.1, 0.2, 0.3, 0.5}) {
    const double simulated = mean_simulated(make, q, 1000);
    const double analytical =
        analytical_conditional(core::GeometryKind::kTree, q);
    EXPECT_NEAR(simulated, analytical, 0.02) << "q=" << q;
  }
}

TEST(SimVsAnalysis, HypercubeMatchesExactModel) {
  const sim::IdSpace space(kBits);
  const auto make = [&](math::Rng&) {
    return std::make_unique<sim::HypercubeOverlay>(space);
  };
  for (double q : {0.05, 0.1, 0.2, 0.3, 0.5, 0.7}) {
    const double simulated = mean_simulated(make, q, 2000);
    const double analytical =
        analytical_conditional(core::GeometryKind::kHypercube, q);
    EXPECT_NEAR(simulated, analytical, 0.015) << "q=" << q;
  }
}

TEST(SimVsAnalysis, XorTracksModelWithinDocumentedBias) {
  const sim::IdSpace space(kBits);
  const auto make = [&](math::Rng& rng) {
    return std::make_unique<sim::XorOverlay>(space, rng);
  };
  for (double q : {0.05, 0.1, 0.2, 0.3, 0.5}) {
    const double simulated = mean_simulated(make, q, 3000);
    const double analytical =
        analytical_conditional(core::GeometryKind::kXor, q);
    EXPECT_GE(simulated, analytical - 0.10) << "q=" << q;
    EXPECT_LE(simulated, analytical + 0.05) << "q=" << q;
  }
}

TEST(SimVsAnalysis, XorStrictlyBetweenTreeAndHypercube) {
  // The qualitative Fig. 6(a) structure at every q: the fallback-equipped
  // XOR protocol beats the tree and loses to the hypercube.
  const sim::IdSpace space(kBits);
  const auto make_tree = [&](math::Rng& rng) {
    return std::make_unique<sim::TreeOverlay>(space, rng);
  };
  const auto make_xor = [&](math::Rng& rng) {
    return std::make_unique<sim::XorOverlay>(space, rng);
  };
  const auto make_cube = [&](math::Rng&) {
    return std::make_unique<sim::HypercubeOverlay>(space);
  };
  for (double q : {0.1, 0.3, 0.5}) {
    const double tree = mean_simulated(make_tree, q, 4000);
    const double xr = mean_simulated(make_xor, q, 4000);
    const double cube = mean_simulated(make_cube, q, 4000);
    EXPECT_GT(xr, tree) << "q=" << q;
    EXPECT_GT(cube, xr) << "q=" << q;
  }
}

TEST(SimVsAnalysis, RingAnalysisIsALowerBound) {
  // Fig. 6(b): with classic (deterministic-finger) Chord the analytical
  // failed-paths curve upper-bounds the simulation; the curves are close
  // below q = 0.2 and diverge at larger q because real suboptimal hops
  // preserve progress.
  const sim::IdSpace space(kBits);
  const auto make = [&](math::Rng& rng) {
    return std::make_unique<sim::ChordOverlay>(space, rng);
  };
  for (double q : {0.05, 0.1, 0.2, 0.3, 0.5, 0.7}) {
    const double simulated = mean_simulated(make, q, 5000);
    const double analytical =
        analytical_conditional(core::GeometryKind::kRing, q);
    EXPECT_GE(simulated + 0.005, analytical) << "q=" << q;
    // Tightness in the "region of practical interest" (paper Fig. 6(b)):
    // near-exact at q <= 0.1, within a few percent at q = 0.2, after which
    // preserved suboptimal-hop progress widens the gap.
    if (q <= 0.1) {
      EXPECT_NEAR(simulated, analytical, 0.02) << "q=" << q;
    } else if (q <= 0.2) {
      EXPECT_NEAR(simulated, analytical, 0.05) << "q=" << q;
    }
  }
}

TEST(SimVsAnalysis, RandomizedFingersBreakTheBound) {
  // The ablation that motivated the deterministic default: with randomized
  // fingers the top in-phase finger sometimes overshoots, leaving m-1
  // usable fingers where the chain assumes m, and the measured routability
  // can fall below the "lower bound".  Document rather than hide it.
  const sim::IdSpace space(kBits);
  const auto make = [&](math::Rng& rng) {
    return std::make_unique<sim::ChordOverlay>(
        space, rng, sim::ChordFingers::kRandomized);
  };
  const double q = 0.1;
  const double simulated = mean_simulated(make, q, 6000);
  const double analytical =
      analytical_conditional(core::GeometryKind::kRing, q);
  EXPECT_LT(simulated, analytical) << "randomized fingers should measure "
                                      "below the deterministic-chain bound";
  EXPECT_NEAR(simulated, analytical, 0.05);  // still the same ballpark
}

TEST(SimVsAnalysis, SymphonyModelIsOptimisticUpperBound) {
  const sim::IdSpace space(kBits);
  const auto make = [&](math::Rng& rng) {
    return std::make_unique<sim::SymphonyOverlay>(space, 1, 1, rng);
  };
  const auto geometry = core::make_geometry(core::GeometryKind::kSymphony,
                                            core::SymphonyParams{1, 1});
  double previous_sim = 1.0;
  for (double q : {0.05, 0.1, 0.2, 0.3}) {
    const double simulated = mean_simulated(make, q, 7000);
    const double analytical =
        core::evaluate_routability(*geometry, kBits, q).conditional_success;
    // Monotone degradation; the model never under-predicts the protocol.
    EXPECT_LT(simulated, previous_sim) << "q=" << q;
    EXPECT_LE(simulated, analytical + 0.01) << "q=" << q;
    previous_sim = simulated;
  }
}

TEST(SimVsAnalysis, MoreSymphonyLinksRaiseMeasuredRoutability) {
  const sim::IdSpace space(kBits);
  const double q = 0.2;
  const auto measure = [&](int kn, int ks) {
    const auto make = [&](math::Rng& rng) {
      return std::make_unique<sim::SymphonyOverlay>(space, kn, ks, rng);
    };
    return mean_simulated(make, q, 8000);
  };
  const double sparse = measure(1, 1);
  const double medium = measure(2, 2);
  const double dense = measure(4, 4);
  EXPECT_GT(medium, sparse + 0.05);
  EXPECT_GT(dense, medium);
}

TEST(SimVsAnalysis, OrderingAcrossGeometriesAtModerateFailure) {
  // Fig. 6/7 structure at q = 0.3.  Among the *measured* systems the two
  // any-order geometries (hypercube, classic ring) are the robust pair --
  // simulated ring can even beat the hypercube because its suboptimal hops
  // preserve progress -- followed by xor, then tree, with symphony worst.
  const sim::IdSpace space(kBits);
  math::Rng build_rng(106);
  const sim::TreeOverlay tree(space, build_rng);
  const sim::XorOverlay xr(space, build_rng);
  const sim::HypercubeOverlay cube(space);
  const sim::ChordOverlay ring(space, build_rng);
  const sim::SymphonyOverlay symphony(space, 1, 1, build_rng);

  const double q = 0.3;
  const auto failed = [&](const sim::Overlay& overlay) {
    math::Rng fail_rng(9000);
    const sim::FailureScenario failures(space, q, fail_rng);
    math::Rng route_rng(9001);
    return 1.0 - sim::estimate_routability(overlay, failures,
                                           {.pairs = 2 * kPairs}, route_rng)
                     .routability();
  };
  const double f_cube = failed(cube);
  const double f_ring = failed(ring);
  const double f_xor = failed(xr);
  const double f_tree = failed(tree);
  const double f_symphony = failed(symphony);
  EXPECT_LT(f_cube, f_xor);
  EXPECT_LT(f_ring, f_xor);
  EXPECT_LT(f_xor, f_tree);
  EXPECT_LT(f_tree, f_symphony);
}

TEST(SimVsAnalysis, XorBeatsTreeOnIdenticalTables) {
  // The fallback ablation (paper Section 3.3): same tables, same failures,
  // the XOR rule must strictly dominate the tree rule.
  const sim::IdSpace space(kBits);
  math::Rng build_rng(107);
  auto table = std::make_shared<const sim::PrefixTable>(space, build_rng);
  const sim::TreeOverlay tree(space, table);
  const sim::XorOverlay xr(space, table);
  for (double q : {0.1, 0.3, 0.5}) {
    math::Rng fail_rng(9100);
    const sim::FailureScenario failures(space, q, fail_rng);
    math::Rng rng_a(9101);
    math::Rng rng_b(9101);
    const double r_tree =
        sim::estimate_routability(tree, failures, {.pairs = kPairs}, rng_a)
            .routability();
    const double r_xor =
        sim::estimate_routability(xr, failures, {.pairs = kPairs}, rng_b)
            .routability();
    EXPECT_GT(r_xor, r_tree) << "q=" << q;
  }
}

}  // namespace
}  // namespace dht
