#include "sim/failure.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dht::sim {
namespace {

TEST(FailureScenario, AllAliveBaseline) {
  const IdSpace space(8);
  const FailureScenario scenario = FailureScenario::all_alive(space);
  EXPECT_EQ(scenario.alive_count(), 256u);
  EXPECT_EQ(scenario.alive_fraction(), 1.0);
  for (NodeId id = 0; id < 256; ++id) {
    EXPECT_TRUE(scenario.alive(id));
  }
}

TEST(FailureScenario, QZeroKillsNobody) {
  const IdSpace space(10);
  math::Rng rng(1);
  const FailureScenario scenario(space, 0.0, rng);
  EXPECT_EQ(scenario.alive_count(), space.size());
}

TEST(FailureScenario, AliveFractionTracksQ) {
  const IdSpace space(14);  // 16384 nodes
  for (double q : {0.1, 0.3, 0.5, 0.9}) {
    math::Rng rng(static_cast<std::uint64_t>(q * 1000));
    const FailureScenario scenario(space, q, rng);
    // SE = sqrt(q(1-q)/16384) <= 0.004; allow 5 sigma.
    EXPECT_NEAR(scenario.alive_fraction(), 1.0 - q, 0.02) << "q=" << q;
  }
}

TEST(FailureScenario, DeterministicGivenSeed) {
  const IdSpace space(10);
  math::Rng rng_a(77);
  math::Rng rng_b(77);
  const FailureScenario a(space, 0.4, rng_a);
  const FailureScenario b(space, 0.4, rng_b);
  for (NodeId id = 0; id < space.size(); ++id) {
    EXPECT_EQ(a.alive(id), b.alive(id));
  }
}

TEST(FailureScenario, DifferentSeedsDiffer) {
  const IdSpace space(10);
  math::Rng rng_a(1);
  math::Rng rng_b(2);
  const FailureScenario a(space, 0.5, rng_a);
  const FailureScenario b(space, 0.5, rng_b);
  int differences = 0;
  for (NodeId id = 0; id < space.size(); ++id) {
    differences += a.alive(id) != b.alive(id) ? 1 : 0;
  }
  EXPECT_GT(differences, 100);  // expected ~512
}

TEST(FailureScenario, SampleAliveOnlyReturnsAliveNodes) {
  const IdSpace space(8);
  math::Rng rng(5);
  FailureScenario scenario(space, 0.6, rng);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(scenario.alive(scenario.sample_alive(rng)));
  }
}

TEST(FailureScenario, SampleAliveIsRoughlyUniform) {
  const IdSpace space(4);
  math::Rng rng(11);
  FailureScenario scenario(space, 0.0, rng);
  scenario.kill(3);
  std::vector<int> histogram(16, 0);
  const int draws = 30000;
  for (int i = 0; i < draws; ++i) {
    ++histogram[scenario.sample_alive(rng)];
  }
  EXPECT_EQ(histogram[3], 0);
  for (NodeId id = 0; id < 16; ++id) {
    if (id == 3) {
      continue;
    }
    EXPECT_NEAR(histogram[id], draws / 15, 350) << "id=" << id;
  }
}

TEST(FailureScenario, KillAndReviveMaintainCount) {
  const IdSpace space(6);
  FailureScenario scenario = FailureScenario::all_alive(space);
  scenario.kill(7);
  scenario.kill(7);  // idempotent
  EXPECT_FALSE(scenario.alive(7));
  EXPECT_EQ(scenario.alive_count(), 63u);
  scenario.revive(7);
  scenario.revive(7);
  EXPECT_TRUE(scenario.alive(7));
  EXPECT_EQ(scenario.alive_count(), 64u);
}

TEST(FailureScenario, RejectsBadArguments) {
  const IdSpace space(6);
  math::Rng rng(1);
  EXPECT_THROW(FailureScenario(space, -0.1, rng), PreconditionError);
  EXPECT_THROW(FailureScenario(space, 1.1, rng), PreconditionError);
  FailureScenario scenario = FailureScenario::all_alive(space);
  EXPECT_THROW(scenario.kill(64), PreconditionError);
  EXPECT_THROW(scenario.revive(64), PreconditionError);
}

TEST(IdSpace, SizeAndContains) {
  const IdSpace space(16);
  EXPECT_EQ(space.bits(), 16);
  EXPECT_EQ(space.size(), 65536u);
  EXPECT_TRUE(space.contains(0));
  EXPECT_TRUE(space.contains(65535));
  EXPECT_FALSE(space.contains(65536));
}

TEST(IdSpace, RejectsBadWidth) {
  EXPECT_THROW(IdSpace(0), PreconditionError);
  EXPECT_THROW(IdSpace(27), PreconditionError);
}

}  // namespace
}  // namespace dht::sim
