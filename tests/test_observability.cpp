// The observability layer (src/obs/): failure-taxonomy conservation and
// thread-count bit-identity inside the engines' estimates, phase-profile
// and trace primitives, route-forensics sampling purity, and the
// zero-overhead contract of the disabled path -- attaching profiles,
// traces, or forensics sinks must never change a single counter.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "churn/sparse_trajectory.hpp"
#include "churn/trajectory.hpp"
#include "math/rng.hpp"
#include "obs/failure.hpp"
#include "obs/phase_timer.hpp"
#include "obs/route_trace.hpp"
#include "obs/trace.hpp"
#include "sim/parallel_monte_carlo.hpp"
#include "sim/xor_overlay.hpp"
#include "sparse/flat_sparse.hpp"
#include "sparse/sparse_chord.hpp"

namespace dht {
namespace {

using churn::ChurnParams;
using churn::SparseChurnConfig;
using churn::SparseChurnGeometry;
using churn::TrajectoryOptions;

constexpr SparseChurnGeometry kAllGeometries[] = {
    SparseChurnGeometry::kChord, SparseChurnGeometry::kKademlia,
    SparseChurnGeometry::kSymphony};

void expect_conserved(const sparse::SparseEstimate& e, const char* what) {
  EXPECT_EQ(e.attempts, e.hops.count() + e.failures.total()) << what;
}

void expect_identical(const sparse::SparseEstimate& a,
                      const sparse::SparseEstimate& b, const char* what) {
  EXPECT_EQ(a.attempts, b.attempts) << what;
  EXPECT_EQ(a.hops.count(), b.hops.count()) << what;
  EXPECT_EQ(a.hops.sum(), b.hops.sum()) << what;
  EXPECT_TRUE(a.failures == b.failures) << what;
  EXPECT_EQ(a.gets, b.gets) << what;
  EXPECT_EQ(a.gets_available, b.gets_available) << what;
}

// --- Primitive units -----------------------------------------------------

TEST(FailureTaxonomy, RecordMergeTotalAndEquality) {
  obs::FailureTaxonomy a;
  a.record(obs::RouteFailure::kDeadEntry);
  a.record(obs::RouteFailure::kDeadEntry);
  a.record(obs::RouteFailure::kHolderDeparted);
  EXPECT_EQ(a[obs::RouteFailure::kDeadEntry], 2u);
  EXPECT_EQ(a[obs::RouteFailure::kHolderDeparted], 1u);
  EXPECT_EQ(a[obs::RouteFailure::kHopLimit], 0u);
  EXPECT_EQ(a.total(), 3u);

  obs::FailureTaxonomy b;
  b.record(obs::RouteFailure::kHopLimit);
  b.record(obs::RouteFailure::kSuccessorCollapse);
  b.merge(a);
  EXPECT_EQ(b.total(), 5u);
  EXPECT_EQ(b[obs::RouteFailure::kDeadEntry], 2u);
  EXPECT_FALSE(a == b);
  obs::FailureTaxonomy c = b;
  EXPECT_TRUE(b == c);

  EXPECT_STREQ(obs::to_string(obs::RouteFailure::kDeadEntry), "dead_entry");
  EXPECT_STREQ(obs::to_string(obs::RouteFailure::kCacheDeadOwner),
               "cache_dead_owner");
}

TEST(PhaseProfile, TimerAccumulatesAndStopIsIdempotent) {
  obs::PhaseProfile profile;
  obs::Trace trace;
  {
    obs::PhaseTimer timer(&profile, obs::Phase::kRoute, &trace);
    // Busy the scope enough that steady_clock cannot round it to zero.
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i) {
      sink = sink + static_cast<std::uint64_t>(i);
    }
    timer.stop();
    timer.stop();  // second stop must not double-add
  }
  EXPECT_GT(profile[obs::Phase::kRoute], 0.0);
  EXPECT_DOUBLE_EQ(profile.total(), profile[obs::Phase::kRoute]);
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(std::string(trace.events()[0].name), "route");

  const double once = profile[obs::Phase::kRoute];
  obs::PhaseProfile other;
  other.add(obs::Phase::kMerge, 1.5);
  profile.merge(other);
  EXPECT_DOUBLE_EQ(profile[obs::Phase::kRoute], once);
  EXPECT_DOUBLE_EQ(profile[obs::Phase::kMerge], 1.5);

  // The disabled path: both sinks null, nothing observable happens.
  { obs::PhaseTimer off(nullptr, obs::Phase::kRoute, nullptr); }
}

TEST(RouteTraceSink, StrideSelectionAndRingOverwrite) {
  obs::RouteTraceSink off;
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.selects(0));
  obs::RouteTrace dropped;
  off.push(std::move(dropped));  // no-op on a disabled sink
  EXPECT_TRUE(off.drain().empty());

  obs::RouteTraceSink sink(/*stride=*/3, /*capacity=*/4);
  EXPECT_TRUE(sink.enabled());
  EXPECT_TRUE(sink.selects(0));
  EXPECT_FALSE(sink.selects(1));
  EXPECT_TRUE(sink.selects(6));

  for (std::uint64_t i = 0; i < 6; ++i) {
    obs::RouteTrace t;
    t.pair_index = i;
    sink.push(std::move(t));
  }
  // Capacity 4, six pushes: the two oldest were overwritten; drain is
  // oldest-first over the survivors.
  const auto drained = sink.drain();
  ASSERT_EQ(drained.size(), 4u);
  for (std::size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].pair_index, i + 2);
  }
  EXPECT_TRUE(sink.drain().empty());
}

// --- Conservation: attempts == delivered + classified failures -----------

TEST(TaxonomyConservation, SparseChurnAcrossGeometriesBucketsReplicas) {
  const ChurnParams params{.death_per_round = 0.05,
                           .rebirth_per_round = 0.05,
                           .refresh_interval = 20};
  std::uint64_t seed = 7001;
  for (const auto geometry : kAllGeometries) {
    for (const int bucket_k : {1, 4}) {
      for (const int replicas : {1, 3}) {
        SparseChurnConfig config{
            .bits = 24, .capacity = 1024, .successors = 3, .shortcuts = 4};
        config.bucket_k = bucket_k;
        config.replicas = replicas;
        if (replicas > 1) {
          config.zipf_s = 1.1;
        }
        const TrajectoryOptions options{.warmup_rounds = 30,
                                        .measured_rounds = 3,
                                        .pairs_per_round = 400,
                                        .shards = 4,
                                        .threads = 2};
        const auto result = run_sparse_churn_trajectory(
            geometry, config, params, options, math::Rng(seed));
        const std::string what =
            "geometry " + std::to_string(static_cast<int>(geometry)) +
            " k " + std::to_string(bucket_k) + " r " +
            std::to_string(replicas);
        ASSERT_GT(result.overall.attempts, 0u) << what;
        expect_conserved(result.overall, what.c_str());
        for (const auto& round : result.per_round) {
          expect_conserved(round, what.c_str());
        }
        // Sync-mode measurement freezes the world per round, so
        // mid-flight departure is impossible by construction.
        EXPECT_EQ(
            result.overall.failures[obs::RouteFailure::kHolderDeparted], 0u)
            << what;
        seed += 11;
      }
    }
  }
}

TEST(TaxonomyConservation, InflightMeasurementClassifiesEveryDrop) {
  // Harsh churn with in-flight measurement: the only mode where
  // holder-departed is reachable -- and conservation must still hold.
  const ChurnParams params{.death_per_round = 0.08,
                           .rebirth_per_round = 0.08,
                           .refresh_interval = 30};
  const SparseChurnConfig config{
      .bits = 24, .capacity = 1024, .successors = 0, .shortcuts = 4};
  TrajectoryOptions options{.warmup_rounds = 40,
                            .measured_rounds = 4,
                            .pairs_per_round = 500,
                            .shards = 4,
                            .threads = 2};
  options.inflight = true;
  const auto result =
      run_sparse_churn_trajectory(SparseChurnGeometry::kKademlia, config,
                                  params, options, math::Rng(8101));
  ASSERT_GT(result.overall.attempts, 0u);
  expect_conserved(result.overall, "inflight");
  ASSERT_GT(result.overall.failures.total(), 0u)
      << "harsh churn must produce some classified failures";
}

TEST(TaxonomyConservation, StaticEnginesUseOnlyStaticCauses) {
  // Dense engine.
  const sim::IdSpace space(9);
  math::Rng build_rng(9301);
  const sim::XorOverlay overlay(space, build_rng);
  math::Rng fail_rng(9302);
  const sim::FailureScenario failures(space, 0.3, fail_rng);
  const auto dense = sim::estimate_routability_parallel(
      overlay, failures, sim::ParallelOptions{.pairs = 4000, .threads = 2},
      math::Rng(9303));
  EXPECT_EQ(dense.routed.trials,
            dense.hops.count() + dense.failures.total());
  EXPECT_EQ(dense.failures[obs::RouteFailure::kHolderDeparted], 0u);
  EXPECT_EQ(dense.failures[obs::RouteFailure::kSuccessorCollapse], 0u);
  EXPECT_EQ(dense.failures[obs::RouteFailure::kCacheDeadOwner], 0u);

  // Sparse static engine, path cache on: every cached owner is alive at
  // build time, so cache-dead-owner stays zero -- the invariant canary.
  math::Rng sparse_rng(9304);
  sparse::SparseIdSpace sparse_space(22, 2000, sparse_rng);
  const sparse::SparseChordOverlay sparse_overlay(sparse_space);
  math::Rng sparse_fail_rng(9305);
  const sparse::SparseFailure sparse_failures(sparse_space, 0.25,
                                              sparse_fail_rng);
  sparse::SparseParallelOptions options{.pairs = 4000, .threads = 2};
  options.workload.zipf_s = 1.1;
  options.workload.cache_entries = 8;
  const auto report = sparse::estimate_workload_parallel(
      sparse_overlay, sparse_failures, options, math::Rng(9306));
  ASSERT_GT(report.estimate.attempts, 0u);
  expect_conserved(report.estimate, "static sparse workload");
  EXPECT_EQ(report.estimate.failures[obs::RouteFailure::kHolderDeparted],
            0u);
  EXPECT_EQ(report.estimate.failures[obs::RouteFailure::kCacheDeadOwner],
            0u);
}

// --- Thread-count bit-identity of the merged counters --------------------

TEST(TaxonomyDeterminism, CountersIdenticalAcrossThreadCounts) {
  const ChurnParams params{.death_per_round = 0.05,
                           .rebirth_per_round = 0.05,
                           .refresh_interval = 25};
  const SparseChurnConfig config{
      .bits = 24, .capacity = 1024, .successors = 3, .shortcuts = 4};
  for (const bool inflight : {false, true}) {
    for (const bool batch : {true, false}) {
      if (inflight && !batch) {
        continue;  // in-flight is inherently scalar; batch flag ignored
      }
      std::vector<sparse::SparseEstimate> estimates;
      for (const unsigned threads : {1u, 2u, 8u}) {
        TrajectoryOptions options{.warmup_rounds = 25,
                                  .measured_rounds = 3,
                                  .pairs_per_round = 400,
                                  .shards = 8,
                                  .threads = threads};
        options.inflight = inflight;
        options.batch_routes = batch;
        const auto result = run_sparse_churn_trajectory(
            SparseChurnGeometry::kChord, config, params, options,
            math::Rng(4242));
        estimates.push_back(result.overall);
      }
      const std::string what = std::string(inflight ? "inflight" : "sync") +
                               (batch ? "/batched" : "/scalar");
      expect_identical(estimates[0], estimates[1], what.c_str());
      expect_identical(estimates[0], estimates[2], what.c_str());
    }
  }
}

// --- Route forensics: sampling purity and zero perturbation --------------

TEST(RouteForensics, SamePairsTracedAtAnyThreadCount) {
  const ChurnParams params{.death_per_round = 0.04,
                           .rebirth_per_round = 0.04,
                           .refresh_interval = 15};
  const SparseChurnConfig config{
      .bits = 24, .capacity = 1024, .successors = 3, .shortcuts = 4};
  std::vector<std::vector<obs::RouteTrace>> runs;
  for (const unsigned threads : {1u, 4u}) {
    TrajectoryOptions options{.warmup_rounds = 20,
                              .measured_rounds = 3,
                              .pairs_per_round = 300,
                              .shards = 4,
                              .threads = threads};
    options.trace_routes = 32;
    const auto result = run_sparse_churn_trajectory(
        SparseChurnGeometry::kKademlia, config, params, options,
        math::Rng(5151));
    ASSERT_FALSE(result.traces.empty());
    runs.push_back(result.traces);
  }
  ASSERT_EQ(runs[0].size(), runs[1].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    const obs::RouteTrace& a = runs[0][i];
    const obs::RouteTrace& b = runs[1][i];
    EXPECT_EQ(a.shard, b.shard);
    EXPECT_EQ(a.round, b.round);
    EXPECT_EQ(a.pair_index, b.pair_index);
    EXPECT_EQ(a.source_slot, b.source_slot);
    EXPECT_EQ(a.source_id, b.source_id);
    EXPECT_EQ(a.target_id, b.target_id);
    EXPECT_EQ(a.status, b.status);
    ASSERT_EQ(a.hops.size(), b.hops.size());
    for (std::size_t h = 0; h < a.hops.size(); ++h) {
      EXPECT_EQ(a.hops[h].slot, b.hops[h].slot);
      EXPECT_EQ(a.hops[h].id, b.hops[h].id);
      EXPECT_EQ(a.hops[h].rank, b.hops[h].rank);
      EXPECT_EQ(a.hops[h].gen_ok, b.hops[h].gen_ok);
    }
  }
  // Every traced hop must have passed its generation check (the kernel
  // admissibility invariant the gen_ok bit canaries).
  for (const auto& trace : runs[0]) {
    for (const auto& hop : trace.hops) {
      EXPECT_EQ(hop.gen_ok, 1u);
    }
  }
}

TEST(RouteForensics, AttachingSinksNeverChangesEstimates) {
  const ChurnParams params{.death_per_round = 0.05,
                           .rebirth_per_round = 0.05,
                           .refresh_interval = 20};
  const SparseChurnConfig config{
      .bits = 24, .capacity = 1024, .successors = 3, .shortcuts = 4};
  const auto run = [&](std::uint64_t trace_routes, obs::PhaseProfile* profile,
                       obs::Trace* trace) {
    TrajectoryOptions options{.warmup_rounds = 20,
                              .measured_rounds = 3,
                              .pairs_per_round = 300,
                              .shards = 4,
                              .threads = 2};
    options.trace_routes = trace_routes;
    options.profile = profile;
    options.trace = trace;
    return run_sparse_churn_trajectory(SparseChurnGeometry::kChord, config,
                                       params, options, math::Rng(6262));
  };
  const auto bare = run(0, nullptr, nullptr);
  obs::PhaseProfile profile;
  obs::Trace trace;
  const auto observed = run(32, &profile, &trace);
  expect_identical(bare.overall, observed.overall,
                   "observability must be a pure side-channel");
  ASSERT_EQ(bare.per_round.size(), observed.per_round.size());
  for (std::size_t i = 0; i < bare.per_round.size(); ++i) {
    expect_identical(bare.per_round[i], observed.per_round[i], "per round");
  }
  EXPECT_TRUE(bare.traces.empty());
  EXPECT_FALSE(observed.traces.empty());
  EXPECT_GT(profile.total(), 0.0);
  EXPECT_GT(profile[obs::Phase::kRoute], 0.0);
  EXPECT_GT(profile[obs::Phase::kWorldBuild], 0.0);
  EXPECT_FALSE(trace.events().empty());
}

TEST(RouteForensics, InflightModeRejectsTracing) {
  const ChurnParams params{.death_per_round = 0.05,
                           .rebirth_per_round = 0.05,
                           .refresh_interval = 20};
  const SparseChurnConfig config{
      .bits = 24, .capacity = 512, .successors = 3, .shortcuts = 4};
  TrajectoryOptions options{.warmup_rounds = 5,
                            .measured_rounds = 1,
                            .pairs_per_round = 100,
                            .shards = 2,
                            .threads = 1};
  options.inflight = true;
  options.trace_routes = 8;
  EXPECT_THROW(
      run_sparse_churn_trajectory(SparseChurnGeometry::kChord, config,
                                  params, options, math::Rng(1)),
      PreconditionError);
}

// --- Dense trajectory engine carries the taxonomy too --------------------

TEST(TaxonomyConservation, DenseChurnTrajectory) {
  const ChurnParams params{.death_per_round = 0.05,
                           .rebirth_per_round = 0.05,
                           .refresh_interval = 20};
  const sim::IdSpace space(9);
  const TrajectoryOptions options{.warmup_rounds = 25,
                                  .measured_rounds = 3,
                                  .pairs_per_round = 400,
                                  .shards = 4,
                                  .threads = 2};
  const auto result =
      churn::run_churn_trajectory(churn::TrajectoryGeometry::kXor, space,
                                  params, options, math::Rng(3131));
  ASSERT_GT(result.overall.routed.trials, 0u);
  EXPECT_EQ(result.overall.routed.trials,
            result.overall.hops.count() + result.overall.failures.total());
  EXPECT_EQ(result.overall.failures[obs::RouteFailure::kHolderDeparted],
            0u);
  EXPECT_EQ(result.overall.failures[obs::RouteFailure::kCacheDeadOwner],
            0u);
}

}  // namespace
}  // namespace dht
