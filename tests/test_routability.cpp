#include "core/routability.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/registry.hpp"

namespace dht::core {
namespace {

class RoutabilityAllGeometries
    : public ::testing::TestWithParam<GeometryKind> {};

INSTANTIATE_TEST_SUITE_P(AllKinds, RoutabilityAllGeometries,
                         ::testing::ValuesIn(all_geometry_kinds()),
                         [](const auto& test_info) {
                           return std::string(to_string(test_info.param));
                         });

TEST_P(RoutabilityAllGeometries, PerfectNetworkIsFullyRoutable) {
  const auto geometry = make_geometry(GetParam());
  for (int d : {2, 8, 16, 32}) {
    const RoutabilityPoint point = evaluate_routability(*geometry, d, 0.0);
    EXPECT_NEAR(point.routability, 1.0, 1e-9) << "d=" << d;
    EXPECT_NEAR(point.failed_fraction, 0.0, 1e-9) << "d=" << d;
    EXPECT_NEAR(point.conditional_success, 1.0, 1e-9) << "d=" << d;
  }
}

TEST_P(RoutabilityAllGeometries, BoundedToUnitInterval) {
  const auto geometry = make_geometry(GetParam());
  for (int d : {4, 16}) {
    for (double q = 0.0; q < 0.95; q += 0.05) {
      const RoutabilityPoint point = evaluate_routability(*geometry, d, q);
      EXPECT_GE(point.routability, 0.0) << "d=" << d << " q=" << q;
      EXPECT_LE(point.routability, 1.0) << "d=" << d << " q=" << q;
      EXPECT_NEAR(point.routability + point.failed_fraction, 1.0, 1e-12);
      EXPECT_GE(point.conditional_success, 0.0);
      EXPECT_LE(point.conditional_success, 1.0);
    }
  }
}

TEST_P(RoutabilityAllGeometries, MonotoneNonIncreasingInQ) {
  // Symphony's r(q) turns non-monotone above q ~ 0.7: E[S] saturates at its
  // one-phase floor while the pair denominator (1-q)2^d keeps shrinking.
  // That is a property of the paper's model (Eq. 7's hop cap grows as
  // d/(1-q)), so the monotonicity check stops at 0.6 for symphony and runs
  // the full range for the other four geometries.
  const auto geometry = make_geometry(GetParam());
  const double q_max = GetParam() == GeometryKind::kSymphony ? 0.6 : 0.9;
  double previous = 1.0;
  for (double q = 0.0; q < q_max; q += 0.02) {
    const double r = evaluate_routability(*geometry, 16, q).routability;
    EXPECT_LE(r, previous + 1e-10) << "q=" << q;
    previous = r;
  }
}

TEST_P(RoutabilityAllGeometries, ConditionalSuccessMatchesRoutabilityScale) {
  // conditional_success = r * ((1-q)2^d - 1) / ((1-q)(2^d - 1)): the two
  // differ by O(q / N).
  const auto geometry = make_geometry(GetParam());
  const int d = 16;
  for (double q : {0.1, 0.3, 0.5}) {
    const RoutabilityPoint point = evaluate_routability(*geometry, d, q);
    const double n = std::exp2(d);
    const double rescaled = point.routability * ((1 - q) * n - 1.0) /
                            ((1 - q) * (n - 1.0));
    EXPECT_NEAR(point.conditional_success, rescaled, 1e-9) << "q=" << q;
  }
}

TEST_P(RoutabilityAllGeometries, NearTotalFailureKillsRouting) {
  const auto geometry = make_geometry(GetParam());
  // (1-q) 2^4 <= 1 at q = 0.95: fewer than one expected survivor.
  const RoutabilityPoint point = evaluate_routability(*geometry, 4, 0.95);
  EXPECT_EQ(point.routability, 0.0);
  EXPECT_EQ(point.failed_fraction, 1.0);
}

TEST(Routability, HypercubeScalesFlatInN) {
  // Fig. 7(b): the hypercube curve is flat in system size at q = 0.1.
  const auto cube = make_geometry(GeometryKind::kHypercube);
  const double r16 = evaluate_routability(*cube, 16, 0.1).routability;
  const double r40 = evaluate_routability(*cube, 40, 0.1).routability;
  const double r100 = evaluate_routability(*cube, 100, 0.1).routability;
  EXPECT_NEAR(r16, r100, 1e-3);
  EXPECT_NEAR(r40, r100, 1e-6);
  EXPECT_GT(r100, 0.98);  // ~0.989 at q = 0.1
}

TEST(Routability, TreeCollapsesInN) {
  // Fig. 7(b): the tree curve decays to zero as the system grows.
  const auto tree = make_geometry(GeometryKind::kTree);
  const double r16 = evaluate_routability(*tree, 16, 0.1).routability;
  const double r33 = evaluate_routability(*tree, 33, 0.1).routability;
  const double r100 = evaluate_routability(*tree, 100, 0.1).routability;
  EXPECT_GT(r16, r33);
  EXPECT_GT(r33, r100);
  EXPECT_LT(r100, 0.01);
}

TEST(Routability, SymphonyCollapsesInN) {
  const auto sym = make_geometry(GeometryKind::kSymphony);
  const double r16 = evaluate_routability(*sym, 16, 0.1).routability;
  const double r33 = evaluate_routability(*sym, 33, 0.1).routability;
  const double r100 = evaluate_routability(*sym, 100, 0.1).routability;
  EXPECT_GT(r16, r33);
  EXPECT_GT(r33, r100);
  EXPECT_LT(r100, 0.02);
}

TEST(Routability, GiganticDEvaluatesStably) {
  // The log-domain evaluator must handle d far beyond double overflow in
  // linear space (2^4096 node ids).
  const auto cube = make_geometry(GeometryKind::kHypercube);
  const RoutabilityPoint point = evaluate_routability(*cube, 4096, 0.2);
  EXPECT_GT(point.routability, 0.90);
  EXPECT_LE(point.routability, 1.0);
  // The unscalable tree is not exactly zero at finite d but is
  // astronomically small: r ~ ((2-q)/2)^d / (1-q) ~ 1e-188 at d = 4096.
  const auto tree = make_geometry(GeometryKind::kTree);
  const double tree_r = evaluate_routability(*tree, 4096, 0.2).routability;
  EXPECT_GT(tree_r, 0.0);
  EXPECT_LT(tree_r, 1e-150);
}

TEST(Routability, SweepHelpersPreserveOrder) {
  const auto ring = make_geometry(GeometryKind::kRing);
  const std::vector<double> qs{0.0, 0.2, 0.4};
  const auto by_q = sweep_failure_probability(*ring, 12, qs);
  ASSERT_EQ(by_q.size(), 3u);
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(by_q[i].q, qs[i]);
    EXPECT_EQ(by_q[i].d, 12);
  }
  const std::vector<int> ds{4, 8, 16};
  const auto by_d = sweep_system_size(*ring, ds, 0.1);
  ASSERT_EQ(by_d.size(), 3u);
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(by_d[i].d, ds[i]);
    EXPECT_EQ(by_d[i].q, 0.1);
  }
}

TEST(Routability, RejectsBadArguments) {
  const auto tree = make_geometry(GeometryKind::kTree);
  EXPECT_THROW(evaluate_routability(*tree, 0, 0.1), PreconditionError);
  EXPECT_THROW(evaluate_routability(*tree, 8, -0.1), PreconditionError);
  EXPECT_THROW(evaluate_routability(*tree, 8, 1.0), PreconditionError);
}

}  // namespace
}  // namespace dht::core
