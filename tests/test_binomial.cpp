#include "math/binomial.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dht::math {
namespace {

TEST(BinomialExact, SmallValues) {
  EXPECT_EQ(binomial_exact(0, 0), 1u);
  EXPECT_EQ(binomial_exact(1, 0), 1u);
  EXPECT_EQ(binomial_exact(1, 1), 1u);
  EXPECT_EQ(binomial_exact(4, 2), 6u);
  EXPECT_EQ(binomial_exact(5, 2), 10u);
  EXPECT_EQ(binomial_exact(10, 5), 252u);
  EXPECT_EQ(binomial_exact(16, 8), 12870u);
}

TEST(BinomialExact, PaperFig3HypercubeRow) {
  // Fig. 3: n(h) for the 8-node hypercube is C(3, h) = 3, 3, 1.
  EXPECT_EQ(binomial_exact(3, 1), 3u);
  EXPECT_EQ(binomial_exact(3, 2), 3u);
  EXPECT_EQ(binomial_exact(3, 3), 1u);
}

TEST(BinomialExact, Symmetry) {
  for (int n = 1; n <= 30; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_EQ(binomial_exact(n, k), binomial_exact(n, n - k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialExact, PascalIdentity) {
  for (int n = 2; n <= 40; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_EQ(binomial_exact(n, k),
                binomial_exact(n - 1, k - 1) + binomial_exact(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialExact, RowSumIsPowerOfTwo) {
  for (int n = 1; n <= 62; ++n) {
    std::uint64_t sum = 0;
    for (int k = 0; k <= n; ++k) {
      sum += binomial_exact(n, k);
    }
    EXPECT_EQ(sum, std::uint64_t{1} << n) << "n=" << n;
  }
}

TEST(BinomialExact, LargestSupportedRow) {
  // C(62, 31) = 465428353255261088, comfortably inside uint64.
  EXPECT_EQ(binomial_exact(62, 31), 465428353255261088ull);
}

TEST(BinomialExact, RejectsOutOfRange) {
  EXPECT_THROW(binomial_exact(63, 3), PreconditionError);
  EXPECT_THROW(binomial_exact(-1, 0), PreconditionError);
  EXPECT_THROW(binomial_exact(5, 6), PreconditionError);
  EXPECT_THROW(binomial_exact(5, -1), PreconditionError);
}

TEST(LogBinomial, MatchesExactForSmallN) {
  for (int n = 1; n <= 62; ++n) {
    for (int k = 0; k <= n; ++k) {
      const double expected = std::log(static_cast<double>(binomial_exact(n, k)));
      EXPECT_NEAR(log_binomial(n, k), expected, 1e-9 * (1.0 + expected))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(LogBinomial, OutOfDomainIsZeroCount) {
  EXPECT_TRUE(std::isinf(log_binomial(10, -1)));
  EXPECT_TRUE(log_binomial(10, -1) < 0);
  EXPECT_TRUE(std::isinf(log_binomial(10, 11)));
}

TEST(LogBinomial, EdgesAreExactlyZero) {
  EXPECT_EQ(log_binomial(100, 0), 0.0);
  EXPECT_EQ(log_binomial(100, 100), 0.0);
}

TEST(LogBinomial, RejectsNegativeN) {
  EXPECT_THROW(log_binomial(-2, 0), PreconditionError);
}

TEST(LogBinomial, HugeRowSumsToPowerOfTwo) {
  // Fig. 7(a) regime: d = 100.  sum_h C(100, h) = 2^100.
  LogSum sum;
  for (int h = 0; h <= 100; ++h) {
    sum.add(binomial(100, h));
  }
  EXPECT_NEAR(sum.total().log(), 100.0 * std::log(2.0), 1e-9);
}

TEST(LogBinomial, CentralCoefficientStirlingSanity) {
  // C(1000, 500) ~ 2^1000 / sqrt(500 pi); check to 1% in log space.
  const double expected =
      1000.0 * std::log(2.0) - 0.5 * std::log(500.0 * 3.14159265358979);
  EXPECT_NEAR(log_binomial(1000, 500), expected, 0.01);
}

}  // namespace
}  // namespace dht::math
