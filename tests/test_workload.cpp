// The heavy-traffic workload layer: Zipf object popularity (math/zipf.hpp),
// per-node load accounting (sim/load_stats.hpp + the flat sparse engine),
// finger-path caching, and r-way replication under churn
// (churn/sparse_trajectory.hpp).  The determinism tests mirror
// test_flat_sparse: fixed shards, varying thread counts, exact equality.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "churn/sparse_trajectory.hpp"
#include "math/rng.hpp"
#include "math/zipf.hpp"
#include "sim/load_stats.hpp"
#include "sparse/flat_sparse.hpp"
#include "sparse/sparse_chord.hpp"

namespace dht::sparse {
namespace {

TEST(Zipf, RankFrequencyMatchesTheLaw) {
  // s = 1.0 over 1000 ranks: empirical frequencies of the head ranks must
  // match the analytic pmf, and the rank-frequency ratio f(1)/f(10) must
  // come out ~10 (the log-log slope of -1).
  const math::ZipfSampler zipf(1000, 1.0);
  math::CounterRng rng(42);
  constexpr std::uint64_t kDraws = 400000;
  std::vector<std::uint64_t> counts(1000, 0);
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    ++counts[zipf.sample(rng)];
  }
  for (const std::uint64_t rank : {0, 1, 4, 9, 99}) {
    const double expected = zipf.probability(rank) * kDraws;
    EXPECT_NEAR(counts[rank], expected, 5.0 * std::sqrt(expected))
        << "rank " << rank;
  }
  const double ratio = static_cast<double>(counts[0]) /
                       static_cast<double>(counts[9]);
  EXPECT_NEAR(ratio, 10.0, 1.0);
}

TEST(Zipf, ZeroSkewIsUniform) {
  const math::ZipfSampler zipf(64, 0.0);
  for (std::uint64_t r = 0; r < 64; ++r) {
    EXPECT_NEAR(zipf.probability(r), 1.0 / 64.0, 1e-12);
  }
  EXPECT_EQ(zipf.invert(0.0), 0u);
  EXPECT_EQ(zipf.invert(0.999999), 63u);
}

TEST(Zipf, DeterministicAcrossEqualStreams) {
  // Sampling is one uniform01 draw + a pure CDF inversion, so two equal
  // CounterRng streams must reproduce the identical rank sequence.
  const math::ZipfSampler zipf(500, 1.1);
  math::CounterRng a(7);
  math::CounterRng b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(zipf.sample(a), zipf.sample(b));
  }
}

TEST(LoadSummary, ExactDigestAndFilter) {
  const std::vector<std::uint64_t> loads = {5, 0, 100, 3, 7, 0, 9, 1};
  // Unfiltered: 8 entries, total 125, max 100.
  const sim::LoadSummary all = sim::summarize_load(loads);
  EXPECT_EQ(all.nodes, 8u);
  EXPECT_EQ(all.total, 125u);
  EXPECT_EQ(all.max, 100u);
  EXPECT_NEAR(all.mean, 125.0 / 8.0, 1e-12);
  // Even indices only: {5, 100, 7, 9}.
  const sim::LoadSummary even = sim::summarize_load(
      loads, [](std::size_t i) { return i % 2 == 0; });
  EXPECT_EQ(even.nodes, 4u);
  EXPECT_EQ(even.total, 121u);
  EXPECT_EQ(even.p99, 100u);  // ceil-index p99 of 4 samples = the max
  EXPECT_GT(even.cv, 0.0);
}

struct ChordInstance {
  std::unique_ptr<SparseIdSpace> space;
  std::unique_ptr<SparseChordOverlay> overlay;
};

ChordInstance make_chord(int bits, std::uint64_t n, std::uint64_t seed) {
  math::Rng rng(seed);
  ChordInstance inst;
  inst.space = std::make_unique<SparseIdSpace>(bits, n, rng);
  inst.overlay = std::make_unique<SparseChordOverlay>(*inst.space);
  return inst;
}

SparseParallelOptions workload_options(unsigned threads) {
  SparseParallelOptions options;
  options.pairs = 20000;
  options.threads = threads;
  options.shards = 32;  // fixed: results are a function of (seed, shards)
  options.workload.zipf_s = 1.1;
  options.workload.objects = 2000;
  options.workload.cache_entries = 4;
  options.workload.record_load = true;
  return options;
}

TEST(Workload, BitIdenticalAcrossThreadCounts) {
  const auto inst = make_chord(22, 3000, 901);
  math::Rng fail_rng(902);
  const SparseFailure failures(*inst.space, 0.1, fail_rng);
  const math::Rng engine_rng(903);
  const SparseWorkloadReport one = estimate_workload_parallel(
      *inst.overlay, failures, workload_options(1), engine_rng);
  const SparseWorkloadReport two = estimate_workload_parallel(
      *inst.overlay, failures, workload_options(2), engine_rng);
  const SparseWorkloadReport eight = estimate_workload_parallel(
      *inst.overlay, failures, workload_options(8), engine_rng);
  EXPECT_TRUE(one.estimate == two.estimate);
  EXPECT_TRUE(one.estimate == eight.estimate);
  // Load counters are relaxed atomic adds into one shared array; the
  // summary over them must still be schedule-independent.
  EXPECT_TRUE(one.load == two.load);
  EXPECT_TRUE(one.load == eight.load);
  EXPECT_GT(one.estimate.cache_probes, 0u);
  EXPECT_GT(one.load.total, 0u);
}

TEST(Workload, LoadConservationWithoutFailures) {
  // q = 0, caching off: every sampled route arrives and every forward is
  // counted exactly once, so the total load equals the hop sum.
  const auto inst = make_chord(20, 2000, 911);
  math::Rng fail_rng(912);
  const SparseFailure failures(*inst.space, 0.0, fail_rng);
  SparseParallelOptions options;
  options.pairs = 10000;
  options.shards = 16;
  options.workload.zipf_s = 1.1;
  options.workload.record_load = true;
  const math::Rng engine_rng(913);
  const SparseWorkloadReport report = estimate_workload_parallel(
      *inst.overlay, failures, options, engine_rng);
  EXPECT_EQ(report.estimate.attempts, options.pairs);
  EXPECT_EQ(report.estimate.successes(), options.pairs);
  EXPECT_EQ(report.load.total, report.estimate.hops.sum());
}

TEST(Workload, PathCacheShortensPopularLookups) {
  const auto inst = make_chord(22, 3000, 921);
  math::Rng fail_rng(922);
  const SparseFailure failures(*inst.space, 0.0, fail_rng);
  SparseParallelOptions base;
  base.pairs = 30000;
  base.shards = 16;
  base.workload.zipf_s = 1.2;
  base.workload.objects = 1000;
  SparseParallelOptions cached = base;
  cached.workload.cache_entries = 8;
  const math::Rng engine_rng(923);
  const SparseEstimate plain = estimate_routability_parallel(
      *inst.overlay, failures, base, engine_rng);
  const SparseEstimate with_cache = estimate_routability_parallel(
      *inst.overlay, failures, cached, engine_rng);
  EXPECT_EQ(plain.cache_probes, 0u);
  EXPECT_GT(with_cache.cache_probes, 0u);
  // Skewed popularity keeps hitting the same head objects: the per-shard
  // caches warm quickly and a sizable fraction of probes must hit.
  EXPECT_GT(with_cache.cache_hit_rate(), 0.10);
  // A hit short-circuits the remaining route to a single forward, so the
  // mean hop count strictly improves.
  EXPECT_LT(with_cache.mean_hops(), plain.mean_hops());
  // Caching never changes what is routable (q = 0: everything arrives).
  EXPECT_EQ(with_cache.successes(), with_cache.attempts);
}

TEST(Workload, ZipfSkewConcentratesLoad) {
  const auto inst = make_chord(22, 3000, 931);
  math::Rng fail_rng(932);
  const SparseFailure failures(*inst.space, 0.0, fail_rng);
  SparseParallelOptions uniform;
  uniform.pairs = 30000;
  uniform.shards = 16;
  uniform.workload.record_load = true;  // uniform pairs, load only
  SparseParallelOptions skewed = uniform;
  skewed.workload.zipf_s = 1.4;
  skewed.workload.objects = 1000;
  const math::Rng engine_rng(933);
  const SparseWorkloadReport flat_load = estimate_workload_parallel(
      *inst.overlay, failures, uniform, engine_rng);
  const SparseWorkloadReport hot_load = estimate_workload_parallel(
      *inst.overlay, failures, skewed, engine_rng);
  // Popular objects hammer their owners: the load distribution under Zipf
  // must be visibly more imbalanced than under uniform pairs.
  EXPECT_GT(hot_load.load.cv, flat_load.load.cv);
  EXPECT_GT(hot_load.load.max, flat_load.load.max);
}

churn::TrajectoryOptions churn_options(unsigned threads) {
  churn::TrajectoryOptions options;
  options.warmup_rounds = 12;
  options.measured_rounds = 6;
  options.pairs_per_round = 1500;
  options.shards = 4;
  options.threads = threads;
  return options;
}

TEST(ChurnReplication, AvailabilityDominatesRoutability) {
  churn::SparseChurnConfig config;
  config.bits = 24;
  config.capacity = std::uint64_t{1} << 10;
  config.zipf_s = 0.8;
  const churn::ChurnParams params;  // pd .01, pr .05, R 10
  const math::Rng rng(941);

  config.replicas = 1;
  const churn::SparseChurnResult r1 = churn::run_sparse_churn_trajectory(
      churn::SparseChurnGeometry::kChord, config, params, churn_options(0),
      rng);
  config.replicas = 4;
  const churn::SparseChurnResult r4 = churn::run_sparse_churn_trajectory(
      churn::SparseChurnGeometry::kChord, config, params, churn_options(0),
      rng);

  // Every measured lookup is a GET.
  EXPECT_EQ(r1.overall.gets, r1.overall.attempts);
  EXPECT_EQ(r4.overall.gets, r4.overall.attempts);
  // A GET succeeds whenever its primary route does -- and possibly via a
  // replica besides.
  EXPECT_GE(r1.overall.availability(), r1.overall.routability());
  EXPECT_GE(r4.overall.availability(), r4.overall.routability());
  // Three extra replicas must recover a strictly positive fraction of the
  // primary-route failures at these churn rates.
  EXPECT_GT(r4.overall.availability(), r1.overall.availability());
  // Load accounting rode along.
  EXPECT_GT(r4.load_max, 0u);
  EXPECT_GT(r4.load_p99, 0.0);
}

TEST(ChurnReplication, BitIdenticalAcrossThreadCounts) {
  churn::SparseChurnConfig config;
  config.bits = 24;
  config.capacity = std::uint64_t{1} << 10;
  config.replicas = 3;
  config.zipf_s = 1.1;
  const churn::ChurnParams params;
  const math::Rng rng(951);
  const churn::SparseChurnResult one = churn::run_sparse_churn_trajectory(
      churn::SparseChurnGeometry::kChord, config, params, churn_options(1),
      rng);
  const churn::SparseChurnResult four = churn::run_sparse_churn_trajectory(
      churn::SparseChurnGeometry::kChord, config, params, churn_options(4),
      rng);
  EXPECT_TRUE(one.overall == four.overall);
  EXPECT_EQ(one.overall.gets_available, four.overall.gets_available);
  EXPECT_EQ(one.load_max, four.load_max);
  EXPECT_EQ(one.load_p99, four.load_p99);
  EXPECT_EQ(one.load_cv, four.load_cv);
}

}  // namespace
}  // namespace dht::sparse
