#include "math/series.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "math/stable.hpp"

namespace dht::math {
namespace {

TEST(SeriesDiagnosis, GeometricConverges) {
  const auto diagnosis =
      diagnose_series([](int m) { return std::pow(0.5, m); });
  EXPECT_EQ(diagnosis.verdict, SeriesVerdict::kConvergent);
  EXPECT_NEAR(diagnosis.partial_sum, 1.0, 1e-9);
}

TEST(SeriesDiagnosis, SlowGeometricConverges) {
  const auto diagnosis =
      diagnose_series([](int m) { return std::pow(0.97, m); });
  EXPECT_EQ(diagnosis.verdict, SeriesVerdict::kConvergent);
}

TEST(SeriesDiagnosis, ConstantDiverges) {
  const auto diagnosis = diagnose_series([](int) { return 0.25; });
  EXPECT_EQ(diagnosis.verdict, SeriesVerdict::kDivergent);
}

TEST(SeriesDiagnosis, TinyConstantDiverges) {
  // The paper's Symphony Q is constant; even a small constant diverges.
  const auto diagnosis = diagnose_series([](int) { return 1e-4; });
  EXPECT_EQ(diagnosis.verdict, SeriesVerdict::kDivergent);
}

TEST(SeriesDiagnosis, MTimesGeometricConverges) {
  // The XOR geometry's Q(m) ~ m q^m shape.
  const auto diagnosis = diagnose_series(
      [](int m) { return static_cast<double>(m) * std::pow(0.6, m); });
  EXPECT_EQ(diagnosis.verdict, SeriesVerdict::kConvergent);
}

TEST(SeriesDiagnosis, VanishingTailShortcut) {
  // Fast-decaying series whose tail underflows within the window.
  const auto diagnosis =
      diagnose_series([](int m) { return std::pow(0.01, m); });
  EXPECT_EQ(diagnosis.verdict, SeriesVerdict::kConvergent);
}

TEST(SeriesDiagnosis, HarmonicIsNotCalledConvergent) {
  // 1/m diverges; a ratio test cannot prove it, but the diagnosis must not
  // claim convergence (divergent or inconclusive are both acceptable).
  const auto diagnosis =
      diagnose_series([](int m) { return 1.0 / static_cast<double>(m); });
  EXPECT_NE(diagnosis.verdict, SeriesVerdict::kConvergent);
}

TEST(SeriesDiagnosis, ExplanationIsPopulated) {
  const auto diagnosis = diagnose_series([](int) { return 0.5; });
  EXPECT_FALSE(diagnosis.explanation.empty());
}

TEST(SeriesDiagnosis, RejectsNegativeTerms) {
  EXPECT_THROW(diagnose_series([](int) { return -1.0; }), PreconditionError);
}

TEST(SeriesDiagnosis, RejectsBadOptions) {
  SeriesOptions options;
  options.max_terms = 4;  // fewer than the two dyadic blocks required
  EXPECT_THROW(diagnose_series([](int) { return 0.1; }, options),
               PreconditionError);
}

TEST(SeriesVerdictToString, AllValues) {
  EXPECT_STREQ(to_string(SeriesVerdict::kConvergent), "convergent");
  EXPECT_STREQ(to_string(SeriesVerdict::kDivergent), "divergent");
  EXPECT_STREQ(to_string(SeriesVerdict::kInconclusive), "inconclusive");
}

}  // namespace
}  // namespace dht::math
