#include "core/xor_geometry.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/tree_geometry.hpp"
#include "math/binomial.hpp"

namespace dht::core {
namespace {

/// Direct (unoptimized) evaluation of Eq. 6 for cross-checking:
/// Q(m) = q^m + sum_{k=1}^{m-1} q^m prod_{j=m-k}^{m-1} (1 - q^j).
double eq6_direct(int m, double q) {
  double total = std::pow(q, m);
  for (int k = 1; k <= m - 1; ++k) {
    double product = 1.0;
    for (int j = m - k; j <= m - 1; ++j) {
      product *= 1.0 - std::pow(q, j);
    }
    total += std::pow(q, m) * product;
  }
  return total;
}

TEST(XorGeometry, Identity) {
  const XorGeometry x;
  EXPECT_EQ(x.kind(), GeometryKind::kXor);
  EXPECT_EQ(x.name(), "xor");
  EXPECT_EQ(x.exactness(), Exactness::kExact);
  EXPECT_EQ(x.scalability_class(), ScalabilityClass::kScalable);
}

TEST(XorGeometry, DistanceCountMatchesTree) {
  // Section 4.3.2: n(h) = C(d, h), "just as in the tree case".
  const XorGeometry x;
  const TreeGeometry tree;
  for (int d : {4, 12, 24}) {
    for (int h = 1; h <= d; ++h) {
      EXPECT_EQ(x.distance_count(h, d).log(), tree.distance_count(h, d).log())
          << "d=" << d << " h=" << h;
    }
  }
}

TEST(XorGeometry, PhaseFailureMatchesDirectEq6) {
  const XorGeometry x;
  for (double q : {0.05, 0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (int m = 1; m <= 25; ++m) {
      EXPECT_NEAR(x.phase_failure(m, q, 25), eq6_direct(m, q), 1e-12)
          << "q=" << q << " m=" << m;
    }
  }
}

TEST(XorGeometry, FirstPhaseEqualsTree) {
  // Q(1) = q: with one bit left there is no fallback.
  const XorGeometry x;
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(x.phase_failure(1, q, 8), q, 1e-15);
  }
}

TEST(XorGeometry, FallbackNeverHurts) {
  // Q_xor(m) <= q = Q_tree(m): failing with fallback options requires at
  // least the optimal neighbor dead.
  const XorGeometry x;
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (int m = 1; m <= 30; ++m) {
      EXPECT_LE(x.phase_failure(m, q, 30), q + 1e-15)
          << "q=" << q << " m=" << m;
    }
  }
}

TEST(XorGeometry, PhaseFailureVanishesGeometrically) {
  // Scalability hinges on Q(m) ~ m q^m -> 0; check the envelope.
  const XorGeometry x;
  const double q = 0.5;
  for (int m = 2; m <= 40; ++m) {
    const double bound =
        static_cast<double>(m) * std::pow(q, m);  // bracket <= m
    EXPECT_LE(x.phase_failure(m, q, 40), bound + 1e-15) << "m=" << m;
  }
}

TEST(XorGeometry, DegenerateQ) {
  const XorGeometry x;
  for (int m = 1; m <= 10; ++m) {
    EXPECT_EQ(x.phase_failure(m, 0.0, 10), 0.0);
    EXPECT_EQ(x.phase_failure(m, 1.0, 10), 1.0);
  }
}

TEST(XorGeometry, ApproximationTracksExactAtSmallQ) {
  // The paper's 1 - x ~= e^{-x} approximation of Eq. 6 is asymptotically
  // tight for small q; at q = 0.05 it should be within 10% relative for
  // moderate m.
  for (int m = 2; m <= 10; ++m) {
    const double exact = eq6_direct(m, 0.05);
    const double approx = XorGeometry::phase_failure_approximation(m, 0.05);
    EXPECT_NEAR(approx, exact, 0.1 * exact) << "m=" << m;
  }
}

TEST(XorGeometry, ApproximationIsClamped) {
  // Outside its small-q domain the raw approximation can leave [0, 1]; the
  // implementation must clamp.
  for (double q : {0.3, 0.6, 0.9}) {
    for (int m = 1; m <= 20; ++m) {
      const double approx = XorGeometry::phase_failure_approximation(m, q);
      EXPECT_GE(approx, 0.0);
      EXPECT_LE(approx, 1.0);
    }
  }
}

TEST(XorGeometry, SuccessAtLeastTree) {
  const XorGeometry x;
  const TreeGeometry tree;
  for (double q : {0.1, 0.3, 0.6}) {
    for (int h = 1; h <= 20; ++h) {
      EXPECT_GE(x.success_probability(h, q, 20) + 1e-13,
                tree.success_probability(h, q, 20))
          << "q=" << q << " h=" << h;
    }
  }
}

TEST(XorGeometry, RejectsBadArguments) {
  const XorGeometry x;
  EXPECT_THROW(x.phase_failure(0, 0.5, 8), PreconditionError);
  EXPECT_THROW(x.phase_failure(3, -0.2, 8), PreconditionError);
  EXPECT_THROW(XorGeometry::phase_failure_approximation(2, 1.0),
               PreconditionError);
}

}  // namespace
}  // namespace dht::core
