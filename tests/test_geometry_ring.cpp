#include "core/ring_geometry.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/xor_geometry.hpp"
#include "math/logreal.hpp"

namespace dht::core {
namespace {

/// Direct evaluation of the ring Q(m) series:
/// Q(m) = q^m sum_{k=0}^{2^{m-1}-1} [q(1-q^{m-1})]^k.
double ring_q_direct(int m, double q) {
  const double x = q * (1.0 - std::pow(q, m - 1));
  const long long terms = 1LL << (m - 1);
  double total = 0.0;
  double power = 1.0;
  for (long long k = 0; k < terms; ++k) {
    total += power;
    power *= x;
  }
  return std::pow(q, m) * total;
}

TEST(RingGeometry, Identity) {
  const RingGeometry ring;
  EXPECT_EQ(ring.kind(), GeometryKind::kRing);
  EXPECT_EQ(ring.name(), "ring");
  EXPECT_EQ(ring.exactness(), Exactness::kLowerBound);
  EXPECT_EQ(ring.scalability_class(), ScalabilityClass::kScalable);
}

TEST(RingGeometry, DistanceCountIsPowersOfTwo) {
  // n(h) = 2^{h-1}: identifiers at clockwise distance in [2^{h-1}, 2^h).
  const RingGeometry ring;
  for (int d : {4, 10, 20}) {
    for (int h = 1; h <= d; ++h) {
      EXPECT_NEAR(ring.distance_count(h, d).log(),
                  (h - 1) * std::log(2.0), 1e-12)
          << "d=" << d << " h=" << h;
    }
  }
}

TEST(RingGeometry, DistanceCountsSumToPeers) {
  // sum_h 2^{h-1} = 2^d - 1.
  const RingGeometry ring;
  for (int d : {6, 12, 18}) {
    math::LogSum sum;
    for (int h = 1; h <= d; ++h) {
      sum.add(ring.distance_count(h, d));
    }
    EXPECT_NEAR(sum.total().value(), std::exp2(d) - 1.0, 1e-6);
  }
}

TEST(RingGeometry, PhaseFailureMatchesDirectSeries) {
  const RingGeometry ring;
  for (double q : {0.05, 0.2, 0.4, 0.6, 0.8}) {
    for (int m = 1; m <= 16; ++m) {
      EXPECT_NEAR(ring.phase_failure(m, q, 16), ring_q_direct(m, q), 1e-12)
          << "q=" << q << " m=" << m;
    }
  }
}

TEST(RingGeometry, FirstPhaseEqualsQ) {
  const RingGeometry ring;
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(ring.phase_failure(1, q, 8), q, 1e-15);
  }
}

TEST(RingGeometry, LargeMSaturatesAtClosedForm) {
  // For large m the truncated geometric series reaches its infinite-sum
  // limit q^m / (1 - x); the implementation must not overflow computing
  // 2^{m-1} for m in the thousands.
  const RingGeometry ring;
  const double q = 0.5;
  for (int m : {64, 200, 1500, 4000}) {
    const double x = q * (1.0 - std::pow(q, m - 1));
    const double expected = std::pow(q, m) / (1.0 - x);
    EXPECT_NEAR(ring.phase_failure(m, q, 4096), expected,
                1e-12 * (expected + 1e-300))
        << "m=" << m;
  }
}

TEST(RingGeometry, NoWorseThanXorPerPhase) {
  // Section 5.4: ring's suboptimal hops keep all choices, so
  // Q_ring(m) <= Q_xor(m) and p_ring >= p_xor.
  const RingGeometry ring;
  const XorGeometry xr;
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (int m = 1; m <= 16; ++m) {
      EXPECT_LE(ring.phase_failure(m, q, 16),
                xr.phase_failure(m, q, 16) + 1e-12)
          << "q=" << q << " m=" << m;
    }
    for (int h = 1; h <= 16; ++h) {
      EXPECT_GE(ring.success_probability(h, q, 16) + 1e-12,
                xr.success_probability(h, q, 16))
          << "q=" << q << " h=" << h;
    }
  }
}

TEST(RingGeometry, DegenerateQ) {
  const RingGeometry ring;
  for (int m = 1; m <= 12; ++m) {
    EXPECT_EQ(ring.phase_failure(m, 0.0, 12), 0.0);
    EXPECT_EQ(ring.phase_failure(m, 1.0, 12), 1.0);
  }
}

TEST(RingGeometry, PhaseFailureDecaysGeometrically) {
  const RingGeometry ring;
  const double q = 0.6;
  // Q(m) <= q^m / (1 - q) -- the envelope used in the scalability proof.
  for (int m = 1; m <= 40; ++m) {
    EXPECT_LE(ring.phase_failure(m, q, 40),
              std::pow(q, m) / (1.0 - q) + 1e-15)
        << "m=" << m;
  }
}

TEST(RingGeometry, RejectsBadArguments) {
  const RingGeometry ring;
  EXPECT_THROW(ring.phase_failure(0, 0.5, 8), PreconditionError);
  EXPECT_THROW(ring.phase_failure(2, -0.1, 8), PreconditionError);
  EXPECT_THROW(ring.distance_count(1, 0), PreconditionError);
}

}  // namespace
}  // namespace dht::core
