// The sequential-neighbor extension of the ring geometry (paper Sections
// 1-2: "the designer can always add enough sequential neighbors to achieve
// an acceptable routability").
//
// Key structural fact (discovered by the simulation, encoded in the
// model): in a fully populated space, successor offsets that are powers of
// two duplicate fingers, so only s_eff = s - bit_width(s) of the s
// successor links add resilience.  s = 2 adds nothing; s = 4 adds one
// node; s = 8 adds four.
#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/ring_geometry.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/monte_carlo.hpp"

namespace dht {
namespace {

TEST(RingSuccessors, ZeroReducesToPaperModel) {
  const core::RingGeometry base;
  const core::RingGeometry with_zero(0);
  for (double q : {0.1, 0.4, 0.8}) {
    for (int m = 1; m <= 12; ++m) {
      EXPECT_EQ(with_zero.phase_failure(m, q, 12),
                base.phase_failure(m, q, 12));
    }
  }
  EXPECT_EQ(base.exactness(), core::Exactness::kLowerBound);
  EXPECT_EQ(core::RingGeometry(4).exactness(), core::Exactness::kApproximate);
}

TEST(RingSuccessors, EffectiveExtraLinksDiscountPowersOfTwo) {
  EXPECT_EQ(core::RingGeometry(0).effective_extra_links(), 0);
  EXPECT_EQ(core::RingGeometry(1).effective_extra_links(), 0);  // +1 = finger
  EXPECT_EQ(core::RingGeometry(2).effective_extra_links(), 0);  // +2 = finger
  EXPECT_EQ(core::RingGeometry(3).effective_extra_links(), 1);  // +3 new
  EXPECT_EQ(core::RingGeometry(4).effective_extra_links(), 1);  // +4 = finger
  EXPECT_EQ(core::RingGeometry(8).effective_extra_links(), 4);  // +3,5,6,7
}

TEST(RingSuccessors, RedundantSuccessorsChangeNothing) {
  // s = 1 and s = 2 are pure finger duplicates: Q identical to s = 0.
  const core::RingGeometry base;
  for (int s : {1, 2}) {
    const core::RingGeometry geometry(s);
    for (double q : {0.2, 0.6}) {
      for (int m = 1; m <= 10; ++m) {
        EXPECT_EQ(geometry.phase_failure(m, q, 10),
                  base.phase_failure(m, q, 10))
            << "s=" << s;
      }
    }
  }
}

TEST(RingSuccessors, PhaseFailureDropsWithEffectiveLinks) {
  const double q = 0.3;
  for (int m : {1, 4, 8}) {
    const double s0 = core::RingGeometry(0).phase_failure(m, q, 12);
    const double s4 = core::RingGeometry(4).phase_failure(m, q, 12);
    const double s8 = core::RingGeometry(8).phase_failure(m, q, 12);
    EXPECT_LT(s4, s0) << "m=" << m;
    EXPECT_LT(s8, s4) << "m=" << m;
  }
}

TEST(RingSuccessors, FirstPhaseClosedForm) {
  // m = 1: a single slot, Q = q^{1+s_eff}.
  for (double q : {0.2, 0.6}) {
    for (int s : {0, 3, 4, 8}) {
      const core::RingGeometry geometry(s);
      EXPECT_NEAR(geometry.phase_failure(1, q, 10),
                  std::pow(q, 1 + geometry.effective_extra_links()), 1e-12)
          << "q=" << q << " s=" << s;
    }
  }
}

TEST(RingSuccessors, RejectsNegative) {
  EXPECT_THROW(core::RingGeometry(-1), PreconditionError);
  const sim::IdSpace space(6);
  math::Rng rng(1);
  EXPECT_THROW(
      sim::ChordOverlay(space, rng, sim::ChordFingers::kDeterministic, -2),
      PreconditionError);
}

TEST(ChordSuccessors, LinksIncludeSuccessorList) {
  const sim::IdSpace space(8);
  math::Rng rng(2);
  const sim::ChordOverlay overlay(space, rng,
                                  sim::ChordFingers::kDeterministic, 3);
  EXPECT_EQ(overlay.successor_links(), 3);
  const auto links = overlay.links(10);
  ASSERT_EQ(links.size(), 8u + 3u);
  EXPECT_EQ(links[8], 11u);
  EXPECT_EQ(links[9], 12u);
  EXPECT_EQ(links[10], 13u);
}

TEST(ChordSuccessors, FailureFreeSuccessorsOnlyShortenRoutes) {
  // With nobody dead the successor list can only improve the end game
  // (e.g. distance 3 becomes a single +3 hop instead of +2 then +1).
  const sim::IdSpace space(10);
  math::Rng rng(3);
  const sim::ChordOverlay plain(space, rng);
  const sim::ChordOverlay with_successors(space, rng,
                                          sim::ChordFingers::kDeterministic,
                                          4);
  const sim::FailureScenario alive = sim::FailureScenario::all_alive(space);
  const sim::Router router_a(plain, alive);
  const sim::Router router_b(with_successors, alive);
  math::Rng route_rng(4);
  bool some_shorter = false;
  for (int i = 0; i < 500; ++i) {
    const sim::NodeId s = route_rng.uniform_below(space.size());
    sim::NodeId t = route_rng.uniform_below(space.size());
    if (s == t) {
      continue;
    }
    const auto a = router_a.route(s, t, route_rng);
    const auto b = router_b.route(s, t, route_rng);
    ASSERT_TRUE(b.success());
    EXPECT_LE(b.hops, a.hops);
    some_shorter = some_shorter || b.hops < a.hops;
  }
  EXPECT_TRUE(some_shorter);
}

TEST(ChordSuccessors, SuccessorListRescuesDeadFingerRoutes) {
  // Kill a node's entire useful finger set for a short route; the
  // successor list must still deliver.
  const sim::IdSpace space(8);
  math::Rng rng(5);
  const sim::ChordOverlay overlay(space, rng,
                                  sim::ChordFingers::kDeterministic, 3);
  sim::FailureScenario failures = sim::FailureScenario::all_alive(space);
  // Route 0 -> 3 (distance 3): useful fingers of node 0 are +2 and +1.
  failures.kill(1);
  failures.kill(2);
  const sim::Router router(overlay, failures);
  math::Rng route_rng(6);
  const auto result = router.route(0, 3, route_rng);
  EXPECT_TRUE(result.success());  // via successor +3
  EXPECT_EQ(result.hops, 1);
}

TEST(ChordSuccessors, MeasuredRoutabilityRisesWithEffectiveLinks) {
  const sim::IdSpace space(12);
  const double q = 0.3;
  const auto measure = [&](int s) {
    math::Rng rng(7);
    const sim::ChordOverlay overlay(space, rng,
                                    sim::ChordFingers::kDeterministic, s);
    math::Rng fail_rng(8);
    const sim::FailureScenario failures(space, q, fail_rng);
    math::Rng route_rng(9);
    return sim::estimate_routability(overlay, failures, {.pairs = 20000},
                                     route_rng)
        .routability();
  };
  const double r0 = measure(0);
  const double r2 = measure(2);  // redundant: same links as s = 0
  const double r4 = measure(4);
  const double r8 = measure(8);
  EXPECT_NEAR(r2, r0, 0.01);  // powers of two buy nothing
  EXPECT_GT(r4, r0 + 0.01);
  EXPECT_GT(r8, r4);
}

TEST(ChordSuccessors, ModelTracksSimulation) {
  // The generalized Q_s is an approximation (end-game successors can
  // overshoot); it should still track the measurement within a few percent
  // at moderate q.
  const sim::IdSpace space(12);
  for (int s : {4, 8}) {
    const core::RingGeometry geometry(s);
    for (double q : {0.1, 0.3}) {
      math::Rng rng(10 + static_cast<std::uint64_t>(s));
      const sim::ChordOverlay overlay(space, rng,
                                      sim::ChordFingers::kDeterministic, s);
      math::Rng fail_rng(20 + static_cast<std::uint64_t>(s));
      const sim::FailureScenario failures(space, q, fail_rng);
      math::Rng route_rng(30);
      const double simulated =
          sim::estimate_routability(overlay, failures, {.pairs = 20000},
                                    route_rng)
              .routability();
      const double predicted =
          core::evaluate_routability(geometry, 12, q).conditional_success;
      EXPECT_NEAR(simulated, predicted, 0.05) << "s=" << s << " q=" << q;
    }
  }
}

}  // namespace
}  // namespace dht
