#include "math/summation.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace dht::math {
namespace {

TEST(NeumaierSum, EmptyIsZero) {
  const NeumaierSum sum;
  EXPECT_EQ(sum.total(), 0.0);
}

TEST(NeumaierSum, PlainValues) {
  NeumaierSum sum;
  sum.add(1.5);
  sum.add(2.25);
  sum.add(-0.75);
  EXPECT_DOUBLE_EQ(sum.total(), 3.0);
}

TEST(NeumaierSum, ClassicKahanFailureCase) {
  // 1 + 1e100 + 1 - 1e100 == 2 exactly under Neumaier, 0 under naive/Kahan.
  NeumaierSum sum;
  sum.add(1.0);
  sum.add(1e100);
  sum.add(1.0);
  sum.add(-1e100);
  EXPECT_DOUBLE_EQ(sum.total(), 2.0);
}

TEST(NeumaierSum, ManySmallIncrements) {
  // Summing 0.1 ten million times: naive drifts by ~1e-8 or worse; the
  // compensated total must stay within a few ulps of 1e6.
  NeumaierSum sum;
  for (int i = 0; i < 10000000; ++i) {
    sum.add(0.1);
  }
  EXPECT_NEAR(sum.total(), 1e6, 1e-7);
}

TEST(NeumaierSum, ResetClears) {
  NeumaierSum sum;
  sum.add(5.0);
  sum.reset();
  EXPECT_EQ(sum.total(), 0.0);
}

TEST(SumCompensated, MatchesNeumaier) {
  const std::vector<double> values{1.0, 1e100, 1.0, -1e100};
  EXPECT_DOUBLE_EQ(sum_compensated(values), 2.0);
}

TEST(SumPairwise, SimpleRange) {
  std::vector<double> values(1000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i + 1);
  }
  EXPECT_DOUBLE_EQ(sum_pairwise(values), 1000.0 * 1001.0 / 2.0);
}

TEST(SumPairwise, AgreesWithCompensatedOnAlternatingSeries) {
  std::vector<double> values;
  double sign = 1.0;
  for (int i = 1; i <= 100000; ++i) {
    values.push_back(sign / static_cast<double>(i));
    sign = -sign;
  }
  EXPECT_NEAR(sum_pairwise(values), sum_compensated(values), 1e-12);
}

TEST(SumPairwise, EmptyAndSingle) {
  EXPECT_EQ(sum_pairwise({}), 0.0);
  const std::vector<double> one{42.0};
  EXPECT_EQ(sum_pairwise(one), 42.0);
}

}  // namespace
}  // namespace dht::math
