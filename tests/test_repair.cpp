#include "sim/repair.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace dht::sim {
namespace {

TEST(Repair, ZeroProbabilityLeavesTableUntouched) {
  const IdSpace space(8);
  math::Rng rng(1);
  const PrefixTable original(space, rng);
  math::Rng fail_rng(2);
  const FailureScenario failures(space, 0.4, fail_rng);
  math::Rng repair_rng(3);
  const auto repaired =
      repair_prefix_table(original, space, failures, 0.0, repair_rng);
  EXPECT_EQ(repaired->entries(), original.entries());
}

TEST(Repair, RepairedEntriesStayInTheirClass) {
  const IdSpace space(8);
  math::Rng rng(4);
  const PrefixTable original(space, rng);
  math::Rng fail_rng(5);
  const FailureScenario failures(space, 0.5, fail_rng);
  math::Rng repair_rng(6);
  // The entries-adopting constructor revalidates every class constraint,
  // so construction succeeding is itself the assertion; spot-check anyway.
  const auto repaired =
      repair_prefix_table(original, space, failures, 1.0, repair_rng);
  for (NodeId v = 0; v < space.size(); v += 17) {
    for (int level = 1; level <= space.bits(); ++level) {
      const NodeId entry = repaired->neighbor(v, level);
      EXPECT_TRUE(shares_prefix(v, entry, level - 1, space.bits()));
      EXPECT_NE(bit_at_level(v, level, space.bits()),
                bit_at_level(entry, level, space.bits()));
    }
  }
}

TEST(Repair, FullRepairLeavesOnlyDeadClassesDead) {
  const IdSpace space(8);
  math::Rng rng(7);
  const PrefixTable original(space, rng);
  math::Rng fail_rng(8);
  const FailureScenario failures(space, 0.4, fail_rng);
  math::Rng repair_rng(9);
  const auto repaired =
      repair_prefix_table(original, space, failures, 1.0, repair_rng);
  const int d = space.bits();
  for (NodeId v = 0; v < space.size(); ++v) {
    for (int level = 1; level <= d; ++level) {
      const NodeId entry = repaired->neighbor(v, level);
      if (failures.alive(entry)) {
        continue;
      }
      // A dead entry after full repair means its whole class is dead.
      const int suffix_bits = d - level;
      const NodeId base = (flip_level(v, level, d) >> suffix_bits)
                          << suffix_bits;
      for (std::uint64_t offset = 0;
           offset < (std::uint64_t{1} << suffix_bits); ++offset) {
        EXPECT_FALSE(failures.alive(base + offset))
            << "v=" << v << " level=" << level;
      }
    }
  }
}

TEST(Repair, AliveEntriesAreNeverChanged) {
  const IdSpace space(8);
  math::Rng rng(10);
  const PrefixTable original(space, rng);
  math::Rng fail_rng(11);
  const FailureScenario failures(space, 0.3, fail_rng);
  math::Rng repair_rng(12);
  const auto repaired =
      repair_prefix_table(original, space, failures, 1.0, repair_rng);
  for (NodeId v = 0; v < space.size(); ++v) {
    for (int level = 1; level <= space.bits(); ++level) {
      const NodeId before = original.neighbor(v, level);
      if (failures.alive(before)) {
        EXPECT_EQ(repaired->neighbor(v, level), before);
      }
    }
  }
}

TEST(Repair, RoutabilityImprovesMonotonically) {
  const IdSpace space(12);
  math::Rng rng(13);
  const PrefixTable original(space, rng);
  math::Rng fail_rng(14);
  const FailureScenario failures(space, 0.3, fail_rng);

  double previous = -1.0;
  for (double rho : {0.0, 0.5, 1.0}) {
    math::Rng repair_rng(15);
    const auto repaired =
        repair_prefix_table(original, space, failures, rho, repair_rng);
    const TreeOverlay overlay(space, repaired);
    math::Rng route_rng(16);
    const double r =
        estimate_routability(overlay, failures, {.pairs = 20000}, route_rng)
            .routability();
    EXPECT_GT(r, previous) << "rho=" << rho;
    previous = r;
  }
  // Full repair recovers essentially all routability: the only residual
  // failures are whole-class die-offs, too rare to show up in 20k samples
  // at this q (the benchmark quantifies them across the full q range).
  EXPECT_GT(previous, 0.95);
}

TEST(Repair, FullyRepairedTreeApproachesEffectiveQModel) {
  // With rho = 1 only the deepest classes stay dead; the effective
  // per-level failure q_eff(i) = q * q^{2^{d-i}-1} is essentially q for
  // level d and ~0 elsewhere, so failed paths ~ the fraction of pairs
  // needing a level-d correction times q.  Just sanity-check the order of
  // magnitude here; the benchmark prints the full curves.
  const IdSpace space(12);
  math::Rng rng(17);
  const PrefixTable original(space, rng);
  const double q = 0.2;
  math::Rng fail_rng(18);
  const FailureScenario failures(space, q, fail_rng);
  math::Rng repair_rng(19);
  const auto repaired =
      repair_prefix_table(original, space, failures, 1.0, repair_rng);
  const XorOverlay overlay(space, repaired);
  math::Rng route_rng(20);
  const double failed =
      estimate_routability(overlay, failures, {.pairs = 20000}, route_rng)
          .failed_fraction();
  // Static XOR at q = 0.2 fails ~17% of paths (measured, d = 12); full
  // repair must crush that by an order of magnitude.
  EXPECT_LT(failed, 0.03);
}

TEST(Repair, ForkOverloadIsAPureFunctionOfLineageAndStream) {
  // The forkable-stream overload never advances the caller's generator, so
  // the repaired table is a pure function of (rng lineage, stream id):
  // repeated calls are identical, and the result equals forking by hand and
  // using the mutable-rng overload.
  const IdSpace space(8);
  math::Rng rng(30);
  const PrefixTable original(space, rng);
  math::Rng fail_rng(31);
  const FailureScenario failures(space, 0.4, fail_rng);
  const math::Rng repair_rng(32);

  const auto a =
      repair_prefix_table(original, space, failures, 0.7, repair_rng, 5);
  const auto b =
      repair_prefix_table(original, space, failures, 0.7, repair_rng, 5);
  EXPECT_EQ(a->entries(), b->entries());

  math::Rng manual = repair_rng.fork(5);
  const auto by_hand =
      repair_prefix_table(original, space, failures, 0.7, manual);
  EXPECT_EQ(a->entries(), by_hand->entries());
}

TEST(Repair, ForkOverloadStreamsAreDecorrelated) {
  // Distinct stream ids repair from decorrelated streams; at rho = 1 and
  // q = 0.5 nearly every node has dead entries with multi-member classes,
  // so two streams must disagree somewhere.
  const IdSpace space(8);
  math::Rng rng(33);
  const PrefixTable original(space, rng);
  math::Rng fail_rng(34);
  const FailureScenario failures(space, 0.5, fail_rng);
  const math::Rng repair_rng(35);
  const auto s0 =
      repair_prefix_table(original, space, failures, 1.0, repair_rng, 0);
  const auto s1 =
      repair_prefix_table(original, space, failures, 1.0, repair_rng, 1);
  EXPECT_NE(s0->entries(), s1->entries());
}

TEST(Repair, ForkOverloadChecksPreconditions) {
  const IdSpace space(6);
  math::Rng rng(36);
  const PrefixTable table(space, rng);
  const FailureScenario failures = FailureScenario::all_alive(space);
  const math::Rng repair_rng(37);
  EXPECT_THROW(
      repair_prefix_table(table, space, failures, -0.1, repair_rng, 0),
      PreconditionError);
  EXPECT_THROW(
      repair_prefix_table(table, space, failures, 1.1, repair_rng, 0),
      PreconditionError);
}

TEST(Repair, RejectsBadArguments) {
  const IdSpace space(6);
  math::Rng rng(21);
  const PrefixTable table(space, rng);
  const FailureScenario failures = FailureScenario::all_alive(space);
  math::Rng repair_rng(22);
  EXPECT_THROW(
      repair_prefix_table(table, space, failures, -0.1, repair_rng),
      PreconditionError);
  EXPECT_THROW(repair_prefix_table(table, space, failures, 1.1, repair_rng),
               PreconditionError);
}

TEST(PrefixTableEntriesCtor, RejectsClassViolations) {
  const IdSpace space(4);
  math::Rng rng(23);
  const PrefixTable table(space, rng);
  auto entries = table.entries();
  entries[0] = 0;  // node 0, level 1: entry 0 does not flip bit 1
  EXPECT_THROW(PrefixTable(space, std::move(entries)), PreconditionError);
}

TEST(PrefixTableEntriesCtor, RejectsWrongSize) {
  const IdSpace space(4);
  EXPECT_THROW(PrefixTable(space, std::vector<std::uint32_t>(7)),
               PreconditionError);
}

}  // namespace
}  // namespace dht::sim
