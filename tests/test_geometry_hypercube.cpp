#include "core/hypercube_geometry.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/routability.hpp"
#include "math/binomial.hpp"

namespace dht::core {
namespace {

TEST(HypercubeGeometry, Identity) {
  const HypercubeGeometry cube;
  EXPECT_EQ(cube.kind(), GeometryKind::kHypercube);
  EXPECT_EQ(cube.name(), "hypercube");
  EXPECT_EQ(cube.exactness(), Exactness::kExact);
  EXPECT_EQ(cube.scalability_class(), ScalabilityClass::kScalable);
}

TEST(HypercubeGeometry, PhaseFailureIsGeometric) {
  const HypercubeGeometry cube;
  for (double q : {0.1, 0.4, 0.8}) {
    for (int m = 1; m <= 30; ++m) {
      EXPECT_NEAR(cube.phase_failure(m, q, 30), std::pow(q, m), 1e-14)
          << "q=" << q << " m=" << m;
    }
  }
}

TEST(HypercubeGeometry, PaperFig3SuccessProbability) {
  // Fig. 3: p(3, q) = (1 - q^3)(1 - q^2)(1 - q).
  const HypercubeGeometry cube;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double expected = (1 - q * q * q) * (1 - q * q) * (1 - q);
    EXPECT_NEAR(cube.success_probability(3, q, 3), expected, 1e-13)
        << "q=" << q;
  }
}

TEST(HypercubeGeometry, PaperFig3TransitionTable) {
  // Fig. 3's table: Pr(S_h -> S_{h+1}) = 1 - q^{remaining}; with h the
  // number of *remaining* hops at distances 3, 2, 1 the factors are
  // 1-q^3, 1-q^2, 1-q.  phase_failure(m) is the failure probability with m
  // phases remaining, so 1 - phase_failure(m) reproduces the table rows.
  const HypercubeGeometry cube;
  const double q = 0.3;
  EXPECT_NEAR(1.0 - cube.phase_failure(3, q, 3), 1.0 - q * q * q, 1e-15);
  EXPECT_NEAR(1.0 - cube.phase_failure(2, q, 3), 1.0 - q * q, 1e-15);
  EXPECT_NEAR(1.0 - cube.phase_failure(1, q, 3), 1.0 - q, 1e-15);
}

TEST(HypercubeGeometry, EightNodeExampleRoutability) {
  // The worked example of Figs. 1-3: d = 3, n(h) = {3, 3, 1}.
  const HypercubeGeometry cube;
  for (double q : {0.1, 0.3, 0.5}) {
    const double p1 = 1 - q;
    const double p2 = (1 - q * q) * (1 - q);
    const double p3 = (1 - q * q * q) * (1 - q * q) * (1 - q);
    const double expected_reachable = 3 * p1 + 3 * p2 + 1 * p3;
    const double expected_r = expected_reachable / ((1 - q) * 8.0 - 1.0);
    const RoutabilityPoint point = evaluate_routability(cube, 3, q);
    EXPECT_NEAR(point.routability, std::min(expected_r, 1.0), 1e-12)
        << "q=" << q;
  }
}

TEST(HypercubeGeometry, SuccessProbabilityDecreasesInH) {
  const HypercubeGeometry cube;
  for (double q : {0.2, 0.6}) {
    double previous = 1.0;
    for (int h = 1; h <= 40; ++h) {
      const double p = cube.success_probability(h, q, 40);
      EXPECT_LE(p, previous + 1e-15) << "q=" << q << " h=" << h;
      previous = p;
    }
  }
}

TEST(HypercubeGeometry, SuccessProbabilityHasPositiveLimit) {
  // Scalability: p(h, q) converges to a positive value as h grows; the
  // product tail beyond h = 50 changes nothing at double precision for
  // q = 0.5.
  const HypercubeGeometry cube;
  const double p50 = cube.success_probability(50, 0.5, 1000);
  const double p1000 = cube.success_probability(1000, 0.5, 1000);
  EXPECT_GT(p1000, 0.28);  // Euler function phi(0.5) ~ 0.2887880951
  EXPECT_NEAR(p50, p1000, 1e-12);
}

TEST(HypercubeGeometry, EulerFunctionKnownValue) {
  // prod_{m>=1} (1 - q^m) at q = 0.5 is 0.2887880950866...
  const HypercubeGeometry cube;
  EXPECT_NEAR(cube.success_probability(200, 0.5, 200), 0.288788095087,
              1e-9);
}

TEST(HypercubeGeometry, RoutabilityMonotoneInQ) {
  const HypercubeGeometry cube;
  double previous = 1.0;
  for (double q = 0.0; q < 0.95; q += 0.05) {
    const double r = evaluate_routability(cube, 16, q).routability;
    EXPECT_LE(r, previous + 1e-12) << "q=" << q;
    previous = r;
  }
}

TEST(HypercubeGeometry, RejectsBadArguments) {
  const HypercubeGeometry cube;
  EXPECT_THROW(cube.phase_failure(0, 0.5, 8), PreconditionError);
  EXPECT_THROW(cube.phase_failure(2, 1.2, 8), PreconditionError);
  EXPECT_THROW(cube.distance_count(1, -1), PreconditionError);
}

}  // namespace
}  // namespace dht::core
