#include "markov/absorption.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "math/rng.hpp"
#include "markov/walker.hpp"

namespace dht::markov {
namespace {

// Two-state coin: start -> success (p), start -> failure (1-p).
Chain coin_chain(double p, StateId& start, StateId& success, StateId& failure) {
  Chain chain;
  start = chain.add_state("start");
  success = chain.add_state("success");
  failure = chain.add_state("failure");
  chain.add_transition(start, success, p);
  chain.add_transition(start, failure, 1.0 - p);
  chain.validate();
  return chain;
}

TEST(AbsorptionDag, CoinFlip) {
  StateId start, success, failure;
  const Chain chain = coin_chain(0.3, start, success, failure);
  EXPECT_NEAR(absorption_probability_dag(chain, start, success), 0.3, 1e-15);
  EXPECT_NEAR(absorption_probability_dag(chain, start, failure), 0.7, 1e-15);
}

TEST(AbsorptionDag, StartingAtTargetIsCertain) {
  StateId start, success, failure;
  const Chain chain = coin_chain(0.3, start, success, failure);
  EXPECT_EQ(absorption_probability_dag(chain, success, success), 1.0);
  EXPECT_EQ(absorption_probability_dag(chain, failure, success), 0.0);
}

TEST(AbsorptionDag, TwoStepPipeline) {
  // start --0.8--> mid --0.5--> success; failures elsewhere.
  Chain chain;
  const StateId start = chain.add_state("start");
  const StateId mid = chain.add_state("mid");
  const StateId success = chain.add_state("success");
  const StateId failure = chain.add_state("failure");
  chain.add_transition(start, mid, 0.8);
  chain.add_transition(start, failure, 0.2);
  chain.add_transition(mid, success, 0.5);
  chain.add_transition(mid, failure, 0.5);
  chain.validate();
  EXPECT_NEAR(absorption_probability_dag(chain, start, success), 0.4, 1e-15);
}

TEST(AbsorptionDag, RequiresAbsorbingTarget) {
  Chain chain;
  const StateId a = chain.add_state("a");
  const StateId b = chain.add_state("b");
  chain.add_transition(a, b, 1.0);
  EXPECT_THROW(absorption_probability_dag(chain, b, a), PreconditionError);
}

TEST(AbsorptionDag, RequiresAcyclicChain) {
  Chain chain;
  const StateId a = chain.add_state("a");
  const StateId b = chain.add_state("b");
  const StateId f = chain.add_state("f");
  chain.add_transition(a, b, 0.5);
  chain.add_transition(a, f, 0.5);
  chain.add_transition(b, a, 1.0);
  EXPECT_THROW(absorption_probability_dag(chain, a, f), PreconditionError);
}

TEST(AbsorptionDense, CoinFlip) {
  StateId start, success, failure;
  const Chain chain = coin_chain(0.25, start, success, failure);
  EXPECT_NEAR(absorption_probability_dense(chain, start, success), 0.25,
              1e-14);
}

TEST(AbsorptionDense, GamblersRuin) {
  // States 0..4; 0 and 4 absorbing; from i move +1 w.p. p, -1 w.p. 1-p.
  // P(reach 4 before 0 | start i) = (1 - r^i) / (1 - r^4) with r = (1-p)/p.
  const double p = 0.6;
  const double r = (1.0 - p) / p;
  Chain chain;
  std::vector<StateId> s;
  for (int i = 0; i <= 4; ++i) {
    std::string name = "s";
    name += std::to_string(i);
    s.push_back(chain.add_state(name));
  }
  for (int i = 1; i <= 3; ++i) {
    chain.add_transition(s[i], s[i + 1], p);
    chain.add_transition(s[i], s[i - 1], 1.0 - p);
  }
  chain.validate();
  for (int i = 1; i <= 3; ++i) {
    const double expected =
        (1.0 - std::pow(r, i)) / (1.0 - std::pow(r, 4));
    EXPECT_NEAR(absorption_probability_dense(chain, s[i], s[4]), expected,
                1e-12)
        << "i=" << i;
  }
}

TEST(AbsorptionDense, AgreesWithDagOnLayeredChain) {
  // A random-ish layered DAG exercising both solvers.
  Chain chain;
  const StateId a = chain.add_state("a");
  const StateId b = chain.add_state("b");
  const StateId c = chain.add_state("c");
  const StateId win = chain.add_state("win");
  const StateId lose = chain.add_state("lose");
  chain.add_transition(a, b, 0.4);
  chain.add_transition(a, c, 0.35);
  chain.add_transition(a, lose, 0.25);
  chain.add_transition(b, c, 0.5);
  chain.add_transition(b, win, 0.2);
  chain.add_transition(b, lose, 0.3);
  chain.add_transition(c, win, 0.9);
  chain.add_transition(c, lose, 0.1);
  chain.validate();
  const double dag = absorption_probability_dag(chain, a, win);
  const double dense = absorption_probability_dense(chain, a, win);
  EXPECT_NEAR(dag, dense, 1e-13);
  // Hand computation: P = 0.4*(0.2 + 0.5*0.9) + 0.35*0.9 = 0.575.
  EXPECT_NEAR(dag, 0.575, 1e-13);
}

TEST(Walker, MatchesExactAbsorptionProbability) {
  StateId start, success, failure;
  const Chain chain = coin_chain(0.37, start, success, failure);
  math::Rng rng(2024);
  const auto estimate = estimate_absorption(chain, start, success, 200000, rng);
  // SE = sqrt(0.37*0.63/200000) ~ 0.0011; allow 5 sigma.
  EXPECT_NEAR(estimate.point(), 0.37, 0.0055);
}

TEST(Walker, GamblersRuinEstimate) {
  const double p = 0.6;
  Chain chain;
  std::vector<StateId> s;
  for (int i = 0; i <= 4; ++i) {
    std::string name = "s";
    name += std::to_string(i);
    s.push_back(chain.add_state(name));
  }
  for (int i = 1; i <= 3; ++i) {
    chain.add_transition(s[i], s[i + 1], p);
    chain.add_transition(s[i], s[i - 1], 1.0 - p);
  }
  chain.validate();
  math::Rng rng(7);
  const double exact = absorption_probability_dense(chain, s[2], s[4]);
  const auto estimate = estimate_absorption(chain, s[2], s[4], 100000, rng);
  EXPECT_NEAR(estimate.point(), exact, 0.01);
}

TEST(Walker, RequiresAbsorbingTarget) {
  Chain chain;
  const StateId a = chain.add_state("a");
  const StateId b = chain.add_state("b");
  chain.add_transition(a, b, 1.0);
  math::Rng rng(1);
  EXPECT_THROW(estimate_absorption(chain, b, a, 10, rng), PreconditionError);
}

}  // namespace
}  // namespace dht::markov
