#include "sim/node_id.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dht::sim {
namespace {

TEST(NodeIdDistances, Hamming) {
  EXPECT_EQ(hamming_distance(0b0000, 0b0000), 0);
  EXPECT_EQ(hamming_distance(0b1010, 0b0101), 4);
  EXPECT_EQ(hamming_distance(0b1010, 0b1000), 1);
  EXPECT_EQ(hamming_distance(~NodeId{0}, 0), 64);
}

TEST(NodeIdDistances, Xor) {
  EXPECT_EQ(xor_distance(0b011, 0b101), 0b110u);
  EXPECT_EQ(xor_distance(7, 7), 0u);
}

TEST(NodeIdDistances, MsbDiffLevel) {
  // d = 3, level 1 = most significant of the 3 bits.
  EXPECT_EQ(msb_diff_level(0b000, 0b100, 3), 1);
  EXPECT_EQ(msb_diff_level(0b000, 0b010, 3), 2);
  EXPECT_EQ(msb_diff_level(0b000, 0b001, 3), 3);
  EXPECT_EQ(msb_diff_level(0b010, 0b011, 3), 3);
  EXPECT_EQ(msb_diff_level(0b101, 0b101, 3), 0);
  // Paper Fig. 5(a): source 010, target 101 differ at the first level.
  EXPECT_EQ(msb_diff_level(0b010, 0b101, 3), 1);
}

TEST(NodeIdDistances, RingDistance) {
  EXPECT_EQ(ring_distance(0, 5, 3), 5u);
  EXPECT_EQ(ring_distance(5, 0, 3), 3u);  // wraps around 8
  EXPECT_EQ(ring_distance(7, 0, 3), 1u);
  EXPECT_EQ(ring_distance(3, 3, 3), 0u);
  EXPECT_EQ(ring_distance(0, 65535, 16), 65535u);
}

TEST(NodeIdDistances, RingDistanceAsymmetry) {
  // Clockwise distance: d(a, b) + d(b, a) = N for a != b.
  for (NodeId a : {0u, 3u, 7u}) {
    for (NodeId b : {1u, 4u, 6u}) {
      if (a == b) {
        continue;
      }
      EXPECT_EQ(ring_distance(a, b, 3) + ring_distance(b, a, 3), 8u);
    }
  }
}

TEST(NodeIdBits, BitAtLevel) {
  // id 0b101, d = 3: level 1 -> 1, level 2 -> 0, level 3 -> 1.
  EXPECT_TRUE(bit_at_level(0b101, 1, 3));
  EXPECT_FALSE(bit_at_level(0b101, 2, 3));
  EXPECT_TRUE(bit_at_level(0b101, 3, 3));
}

TEST(NodeIdBits, FlipLevel) {
  EXPECT_EQ(flip_level(0b000, 1, 3), 0b100u);
  EXPECT_EQ(flip_level(0b000, 3, 3), 0b001u);
  EXPECT_EQ(flip_level(0b111, 2, 3), 0b101u);
  // Involution.
  EXPECT_EQ(flip_level(flip_level(0b011, 2, 3), 2, 3), 0b011u);
}

TEST(NodeIdBits, SharesPrefix) {
  EXPECT_TRUE(shares_prefix(0b1010, 0b1011, 3, 4));
  EXPECT_FALSE(shares_prefix(0b1010, 0b1011, 4, 4));
  EXPECT_TRUE(shares_prefix(0b1010, 0b0011, 0, 4));
  EXPECT_FALSE(shares_prefix(0b1010, 0b0010, 1, 4));
  EXPECT_TRUE(shares_prefix(0b1010, 0b1010, 4, 4));
}

TEST(NodeIdPhases, PhaseOfDistance) {
  // Phase h: distance in [2^{h-1}, 2^h).
  EXPECT_EQ(phase_of_distance(1), 1);
  EXPECT_EQ(phase_of_distance(2), 2);
  EXPECT_EQ(phase_of_distance(3), 2);
  EXPECT_EQ(phase_of_distance(4), 3);
  EXPECT_EQ(phase_of_distance(7), 3);
  EXPECT_EQ(phase_of_distance(8), 4);
  EXPECT_EQ(phase_of_distance((1ull << 15)), 16);
  EXPECT_EQ(phase_of_distance((1ull << 16) - 1), 16);
}

TEST(NodeIdPhases, PhasePopulationMatchesPaper) {
  // n(h) = 2^{h-1}: count distances in [1, 2^d) falling in each phase.
  const int d = 10;
  std::vector<int> count(static_cast<size_t>(d) + 1, 0);
  for (std::uint64_t dist = 1; dist < (1ull << d); ++dist) {
    ++count[static_cast<size_t>(phase_of_distance(dist))];
  }
  for (int h = 1; h <= d; ++h) {
    EXPECT_EQ(count[static_cast<size_t>(h)], 1 << (h - 1)) << "h=" << h;
  }
}

TEST(NodeIdChecks, RejectBadArguments) {
  EXPECT_THROW(msb_diff_level(0b1000, 0, 3), PreconditionError);
  EXPECT_THROW(ring_distance(8, 0, 3), PreconditionError);
  EXPECT_THROW(bit_at_level(0, 0, 3), PreconditionError);
  EXPECT_THROW(bit_at_level(0, 4, 3), PreconditionError);
  EXPECT_THROW(flip_level(0, 1, 0), PreconditionError);
  EXPECT_THROW(shares_prefix(0, 0, 5, 4), PreconditionError);
  EXPECT_THROW(phase_of_distance(0), PreconditionError);
}

}  // namespace
}  // namespace dht::sim
