// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/strfmt.hpp"
#include "core/report.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/symphony_overlay.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace dht::bench {

/// Prints `table` to stdout -- as CSV when the harness was invoked with
/// --csv (for replotting), aligned text otherwise.
inline void emit(const core::Table& table, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--csv") {
      table.print_csv(std::cout);
      return;
    }
  }
  table.print(std::cout);
}

/// Percentages 0, 5, ..., 90 as failure probabilities (the x-axis of the
/// paper's Figs. 6 and 7(a)).
inline std::vector<double> paper_q_grid() {
  std::vector<double> qs;
  for (int percent = 0; percent <= 90; percent += 5) {
    qs.push_back(percent / 100.0);
  }
  return qs;
}

/// Builds the named simulator overlay (tree | hypercube | xor | ring |
/// symphony, Symphony with kn = ks = 1); nullptr for unknown names.  The
/// single factory shared by the bench harnesses.
inline std::unique_ptr<sim::Overlay> make_overlay(std::string_view name,
                                                  const sim::IdSpace& space,
                                                  math::Rng& rng) {
  if (name == "tree") {
    return std::make_unique<sim::TreeOverlay>(space, rng);
  }
  if (name == "hypercube") {
    return std::make_unique<sim::HypercubeOverlay>(space);
  }
  if (name == "xor") {
    return std::make_unique<sim::XorOverlay>(space, rng);
  }
  if (name == "ring") {
    return std::make_unique<sim::ChordOverlay>(space, rng);
  }
  if (name == "symphony") {
    return std::make_unique<sim::SymphonyOverlay>(space, 1, 1, rng);
  }
  return nullptr;
}

/// Parses a `--flag value` pair from argv; returns `fallback` when absent.
inline std::uint64_t parse_flag_u64(int argc, char** argv,
                                    std::string_view flag,
                                    std::uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == flag) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

/// Formats a probability as a percentage with one decimal.
inline std::string pct(double value) {
  return strfmt("%.1f", value * 100.0);
}

/// Formats a probability as a percentage with three decimals (for curves
/// that live close to 0 or 100%).
inline std::string pct3(double value) {
  return strfmt("%.3f", value * 100.0);
}

}  // namespace dht::bench
