// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/strfmt.hpp"
#include "core/report.hpp"

namespace dht::bench {

/// Prints `table` to stdout -- as CSV when the harness was invoked with
/// --csv (for replotting), aligned text otherwise.
inline void emit(const core::Table& table, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--csv") {
      table.print_csv(std::cout);
      return;
    }
  }
  table.print(std::cout);
}

/// Percentages 0, 5, ..., 90 as failure probabilities (the x-axis of the
/// paper's Figs. 6 and 7(a)).
inline std::vector<double> paper_q_grid() {
  std::vector<double> qs;
  for (int percent = 0; percent <= 90; percent += 5) {
    qs.push_back(percent / 100.0);
  }
  return qs;
}

/// Formats a probability as a percentage with one decimal.
inline std::string pct(double value) {
  return strfmt("%.1f", value * 100.0);
}

/// Formats a probability as a percentage with three decimals (for curves
/// that live close to 0 or 100%).
inline std::string pct3(double value) {
  return strfmt("%.3f", value * 100.0);
}

}  // namespace dht::bench
