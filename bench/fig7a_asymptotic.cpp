// Reproduces Fig. 7(a): percent failed paths vs failure probability in the
// asymptotic limit, evaluated at N = 2^100 for all five geometries
// (Symphony with kn = ks = 1, as in the paper).
//
// The log-domain evaluator makes d = 100 routine; the table also prints the
// true N -> infinity limit (1 - p_inf/(1-q)) to show how close 2^100
// already is to the asymptote -- the tree and Symphony columns are the
// step functions the paper highlights, the other three match their
// N = 2^16 values.
#include <iostream>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "core/scalability.hpp"

namespace {
constexpr int kBits = 100;  // N = 2^100, the paper's asymptotic evaluation
}  // namespace

int main(int argc, char** argv) {
  using namespace dht;
  const auto geometries = core::make_all_geometries(core::SymphonyParams{1, 1});

  core::Table table(
      "Fig. 7(a) -- percent failed paths vs failure probability, N = 2^100 "
      "(Symphony kn = ks = 1)");
  table.set_header({"q%", "cube", "chord", "xor", "tree", "symphony",
                    "cube(inf)", "chord(inf)", "xor(inf)"});
  for (double q : bench::paper_q_grid()) {
    std::vector<std::string> row{bench::pct(q)};
    const auto failed_at = [&](core::GeometryKind kind) {
      for (const auto& g : geometries) {
        if (g->kind() == kind) {
          return 1.0 - core::evaluate_routability(*g, kBits, q).routability;
        }
      }
      return 1.0;
    };
    row.push_back(bench::pct(failed_at(core::GeometryKind::kHypercube)));
    row.push_back(bench::pct(failed_at(core::GeometryKind::kRing)));
    row.push_back(bench::pct(failed_at(core::GeometryKind::kXor)));
    row.push_back(bench::pct(failed_at(core::GeometryKind::kTree)));
    row.push_back(bench::pct(failed_at(core::GeometryKind::kSymphony)));
    // N -> infinity limits for the scalable three (0 < q < 1 only).
    for (core::GeometryKind kind :
         {core::GeometryKind::kHypercube, core::GeometryKind::kRing,
          core::GeometryKind::kXor}) {
      const auto geometry = core::make_geometry(kind);
      const double limit =
          q == 0.0 ? 0.0 : 1.0 - core::limit_routability(*geometry, q);
      row.push_back(bench::pct(limit));
    }
    table.add_row(std::move(row));
  }
  table.add_note(
      "tree and symphony are step functions (unscalable: any q > 0 kills "
      "asymptotic routability); cube/chord/xor columns match both their "
      "N = 2^16 values and their N -> infinity limits");
  table.add_note(
      "chord column is the analytical lower-bound model (failed-path upper "
      "bound), as in the paper");
  dht::bench::emit(table, argc, argv);
  return 0;
}
