// Reproduces the paper's Section 5 result as a table: the scalable /
// unscalable classification of the five geometries, with the Knopp-
// criterion evidence (analytic argument + numeric series diagnosis) and
// the limiting routability at a few failure probabilities.
#include <iostream>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/scalability.hpp"

int main() {
  using namespace dht;

  core::Table table(
      "Section 5 -- scalability of DHT routing geometries under random "
      "failure (Knopp criterion on sum Q(m))");
  table.set_header({"geometry", "system", "verdict", "numeric sum Q(m)",
                    "agree", "r_inf(q=0.1)%", "r_inf(0.3)%", "r_inf(0.5)%"});
  for (const auto& geometry : core::make_all_geometries()) {
    const core::ScalabilityReport report =
        core::analyze_scalability(*geometry, 0.3);
    table.add_row(
        {std::string(geometry->name()), std::string(geometry->dht_system()),
         to_string(report.analytic), math::to_string(report.numeric.verdict),
         report.numeric_agrees ? "yes" : "NO",
         bench::pct(core::limit_routability(*geometry, 0.1)),
         bench::pct(core::limit_routability(*geometry, 0.3)),
         bench::pct(core::limit_routability(*geometry, 0.5))});
  }
  table.add_note(
      "verdict: analytic classification per the paper; numeric: dyadic "
      "block diagnosis of sum Q(m) at q = 0.3 (independent corroboration)");
  table.print(std::cout);
  std::cout << '\n';

  core::Table args("Why: the scalability arguments");
  args.set_header({"geometry", "argument"});
  for (const auto& geometry : core::make_all_geometries()) {
    args.add_row({std::string(geometry->name()),
                  std::string(geometry->scalability_argument())});
  }
  args.print(std::cout);
  return 0;
}
