// Extension: sequential neighbors for Chord (paper Sections 1-2).
//
// The paper repeatedly notes that a deployment can compensate for an
// unfavorable operating point by adding sequential neighbors.  This harness
// makes that quantitative for the ring geometry: a successor list of s
// nodes lowers every phase's failure exit from q^m to q^{m+s}
// (Q_s(m) = q^{m+s} sum_k [q(1-q^{m-1+s})]^k), and the simulated overlay
// confirms the predicted gains.
#include <iostream>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/report.hpp"
#include "core/ring_geometry.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/monte_carlo.hpp"

namespace {
constexpr int kBits = 14;
constexpr std::uint64_t kPairs = 20000;

double simulated_failed(int successors, double q, std::uint64_t seed) {
  using namespace dht;
  if (q == 0.0) {
    return 0.0;
  }
  const sim::IdSpace space(kBits);
  math::Rng rng(seed);
  const sim::ChordOverlay overlay(space, rng,
                                  sim::ChordFingers::kDeterministic,
                                  successors);
  math::Rng fail_rng(seed + 1);
  const sim::FailureScenario failures(space, q, fail_rng);
  math::Rng route_rng(seed + 2);
  return 1.0 - sim::estimate_routability(overlay, failures, {.pairs = kPairs},
                                         route_rng)
                   .routability();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dht;

  core::Table table(strfmt(
      "Sequential-neighbor extension -- ring failed paths %% at N = 2^%d "
      "with a successor list of s nodes (analytical Q_s vs simulation)",
      kBits));
  table.set_header({"q%", "s=0 ana", "s=0 sim", "s=4 ana", "s=4 sim",
                    "s=8 ana", "s=8 sim"});
  std::uint64_t seed = 1;
  for (double q : bench::paper_q_grid()) {
    std::vector<std::string> row{bench::pct(q)};
    for (int s : {0, 4, 8}) {
      const core::RingGeometry geometry(s);
      row.push_back(bench::pct(
          1.0 - core::evaluate_routability(geometry, kBits, q)
                    .conditional_success));
      row.push_back(bench::pct(
          simulated_failed(s, q, seed + static_cast<std::uint64_t>(s))));
    }
    table.add_row(std::move(row));
    seed += 100;
  }
  table.add_note(
      "fully-populated subtlety: successor offsets that are powers of two "
      "(+1, +2, +4, ...) already ARE fingers, so only s_eff = s - "
      "bit_width(s) links add resilience -- s = 2 changes nothing, s = 4 "
      "adds one node (+3), s = 8 adds four (+3, +5, +6, +7).  The model's "
      "exponent q^{m+s_eff} encodes exactly that");
  table.add_note(
      "for s > 0 the model is an approximation (end-game successors can "
      "overshoot), not a bound; agreement stays within a few percent");
  dht::bench::emit(table, argc, argv);
  return 0;
}
