// Reproduces the paper's worked example (Figs. 1-3): the 8-node hypercube.
//
// Prints the Fig. 3 table -- n(h) and the per-step success probabilities
// Pr(S_h, S_{h+1}) -- and the resulting p(3, q) = (1-q^3)(1-q^2)(1-q),
// cross-checked three ways: closed form, Markov-chain absorption, and
// Monte-Carlo simulation on the actual 8-node overlay.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/hypercube_geometry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "markov/absorption.hpp"
#include "markov/builders.hpp"
#include "math/rng.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/router.hpp"

namespace {

/// Measured probability of routing node 011 -> 100 (the Fig. 3 example:
/// Hamming distance 3) over many independent failure draws, conditioned on
/// source and target surviving.
double simulate_example(double q, int trials) {
  using namespace dht;
  const sim::IdSpace space(3);
  const sim::HypercubeOverlay overlay(space);
  math::Rng rng(12345);
  int eligible = 0;
  int successes = 0;
  while (eligible < trials) {
    sim::FailureScenario failures(space, q, rng);
    failures.revive(0b011);  // condition on the endpoints surviving
    failures.revive(0b100);
    ++eligible;
    const sim::Router router(overlay, failures);
    if (router.route(0b011, 0b100, rng).success()) {
      ++successes;
    }
  }
  return static_cast<double>(successes) / trials;
}

}  // namespace

int main() {
  using namespace dht;
  const core::HypercubeGeometry cube;

  core::Table structure(
      "Fig. 3 -- routing structure of the 8-node hypercube (d = 3)");
  structure.set_header({"h", "n(h)", "Pr(S_h -> S_h+1)"});
  structure.add_row({"1", "C(3,1) = 3", "1 - q^3"});
  structure.add_row({"2", "C(3,2) = 3", "1 - q^2"});
  structure.add_row({"3", "C(3,3) = 1", "1 - q"});
  structure.add_note(
      "routing 011 -> 100: three bit-correcting choices for the first hop, "
      "two for the second, one for the last");
  structure.print(std::cout);
  std::cout << '\n';

  core::Table table(
      "Fig. 3 -- p(3, q) = (1-q^3)(1-q^2)(1-q), three independent ways");
  table.set_header({"q", "closed form", "markov chain", "simulated (8 nodes)",
                    "E[S] (Eq. 3 numerator)", "routability r"});
  for (double q : {0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    const double closed = (1 - q * q * q) * (1 - q * q) * (1 - q);
    const markov::RoutingChain chain = markov::build_hypercube_chain(3, q);
    const double absorbed = markov::absorption_probability_dag(
        chain.chain, chain.start, chain.success);
    // Conditioned on the destination being alive the measured probability
    // corresponds to p(3, q)/(1-q); multiply back for the table.
    const double simulated =
        q < 1.0 ? simulate_example(q, 60000) * (1.0 - q) : 0.0;
    const core::RoutabilityPoint point =
        q < 1.0 ? core::evaluate_routability(cube, 3, q)
                : core::RoutabilityPoint{};
    table.add_row({strfmt("%.1f", q), strfmt("%.6f", closed),
                   strfmt("%.6f", absorbed), strfmt("%.4f", simulated),
                   strfmt("%.4f", std::exp(point.log_expected_reachable)),
                   strfmt("%.6f", point.routability)});
  }
  table.add_note(
      "simulated column: 60k failure draws of the real 3-bit overlay, "
      "route 011 -> 100, de-conditioned on destination survival");
  table.add_note(
      "routability saturates/clamps at this toy scale: Eq. 3's denominator "
      "(1-q)N - 1 undercounts the root's expected (1-q)(N-1) alive peers by "
      "q, which only matters when N = 8");
  table.print(std::cout);
  return 0;
}
