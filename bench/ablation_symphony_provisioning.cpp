// Ablation: the paper's provisioning remark (Sections 1-2) -- "a system
// designer can always add enough sequential neighbors to achieve an
// acceptable routability ... for a maximum network size".
//
// Sweeps Symphony's kn (near neighbors) and ks (shortcuts) at N = 2^14,
// printing analytical (Eq. 7) and simulated routability side by side, plus
// the minimum provisioning that reaches a 90% routability target.
#include <iostream>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/symphony_overlay.hpp"

namespace {

constexpr int kBits = 14;
constexpr std::uint64_t kPairs = 10000;

double simulated(int kn, int ks, double q, std::uint64_t seed) {
  using namespace dht;
  const sim::IdSpace space(kBits);
  math::Rng build_rng(seed);
  const sim::SymphonyOverlay overlay(space, kn, ks, build_rng);
  math::Rng fail_rng(seed + 1);
  const sim::FailureScenario failures(space, q, fail_rng);
  math::Rng route_rng(seed + 2);
  return sim::estimate_routability(overlay, failures, {.pairs = kPairs},
                                   route_rng)
      .routability();
}

double analytical(int kn, int ks, double q) {
  using namespace dht;
  const auto geometry = core::make_geometry(
      core::GeometryKind::kSymphony,
      core::SymphonyParams{.near_neighbors = kn, .shortcuts = ks});
  return core::evaluate_routability(*geometry, kBits, q).conditional_success;
}

}  // namespace

int main() {
  using namespace dht;

  core::Table sweep(strfmt(
      "Symphony provisioning ablation -- routability %% at N = 2^%d, "
      "q = 0.2, sweeping (kn, ks)",
      kBits));
  sweep.set_header({"kn", "ks", "links", "analytical (Eq. 7)", "simulated"});
  std::uint64_t seed = 100;
  for (int kn : {1, 2, 4, 8}) {
    for (int ks : {1, 2, 4, 8}) {
      sweep.add_row({strfmt("%d", kn), strfmt("%d", ks),
                     strfmt("%d", kn + ks),
                     bench::pct(analytical(kn, ks, 0.2)),
                     bench::pct(simulated(kn, ks, 0.2, seed))});
      seed += 10;
    }
  }
  sweep.add_note(
      "both columns rise steeply with provisioning; Eq. 7 is optimistic "
      "for the unidirectional protocol at minimal provisioning (it ignores "
      "overshoot-blocking) and tightens as links are added");
  sweep.print(std::cout);
  std::cout << '\n';

  core::Table target(
      "Minimum symmetric provisioning (kn = ks = k) reaching 90% simulated "
      "routability");
  target.set_header({"q", "k needed", "simulated %"});
  for (double q : {0.1, 0.2, 0.3, 0.4}) {
    int k_needed = -1;
    double achieved = 0.0;
    for (int k = 1; k <= 16; ++k) {
      achieved = simulated(k, k, q, 9000 + static_cast<std::uint64_t>(k));
      if (achieved >= 0.9) {
        k_needed = k;
        break;
      }
    }
    target.add_row({strfmt("%.1f", q),
                    k_needed > 0 ? strfmt("%d", k_needed) : "> 16",
                    bench::pct(achieved)});
  }
  target.add_note(
      "the paper's point: unscalability is asymptotic -- for any finite "
      "deployment a designer can buy the target routability with links");
  target.print(std::cout);
  return 0;
}
