// Reproduces Fig. 6(b): percentage of failed paths vs node failure
// probability at N = 2^16 for the ring (Chord) geometry.  The analytical
// curve is an upper bound on failed paths (the Markov chain ignores the
// progress suboptimal hops preserve); the simulation uses classic
// deterministic fingers, the system Gummadi et al. measured.
#include <iostream>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/monte_carlo.hpp"

namespace {
constexpr int kBits = 16;
constexpr std::uint64_t kPairs = 20000;
}  // namespace

int main(int argc, char** argv) {
  using namespace dht;
  const sim::IdSpace space(kBits);
  math::Rng build_rng(1);
  const sim::ChordOverlay overlay(space, build_rng);
  const auto ring = core::make_geometry(core::GeometryKind::kRing);

  core::Table table(strfmt(
      "Fig. 6(b) -- percent failed paths vs node failure probability, "
      "ring geometry, N = 2^%d",
      kBits));
  table.set_header({"q%", "ring ana (upper bound)", "ring sim", "gap"});
  std::uint64_t seed = 5000;
  for (double q : bench::paper_q_grid()) {
    const double ana =
        1.0 - core::evaluate_routability(*ring, kBits, q).conditional_success;
    double sim_failed = 0.0;
    if (q > 0.0) {
      math::Rng fail_rng(seed);
      const sim::FailureScenario failures(space, q, fail_rng);
      math::Rng route_rng(seed + 1);
      sim_failed = 1.0 - sim::estimate_routability(
                             overlay, failures, {.pairs = kPairs}, route_rng)
                             .routability();
    }
    table.add_row({bench::pct(q), bench::pct(ana), bench::pct(sim_failed),
                   bench::pct(ana - sim_failed)});
    seed += 10;
  }
  table.add_note(
      "the analytical column upper-bounds the simulated failures at every "
      "q; the curves are close in the region of practical interest "
      "(q <= 20%) and diverge beyond it, exactly as the paper discusses");
  dht::bench::emit(table, argc, argv);
  return 0;
}
