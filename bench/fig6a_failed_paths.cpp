// Reproduces Fig. 6(a): percentage of failed paths vs node failure
// probability at N = 2^16 for the tree, hypercube and XOR geometries --
// the RCM analytical curve next to a static-resilience simulation.
//
// The paper overlays its analysis on the simulation data of Gummadi et
// al. [2]; that data set is not public, so the "sim" columns here come from
// this repository's re-implementation of the same experiment (fail nodes
// i.i.d. with probability q, route between sampled surviving pairs with the
// basic protocol, no back-tracking).
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/parallel_monte_carlo.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace {

constexpr int kBits = 16;  // N = 65536, the paper's setting
constexpr std::uint64_t kPairs = 20000;

// Set by --threads N (0 = hardware concurrency); the parallel engine's
// results do not depend on it.
unsigned g_threads = 0;

double simulated_failed(const dht::sim::Overlay& overlay, double q,
                        std::uint64_t seed) {
  using namespace dht;
  if (q == 0.0) {
    return 0.0;
  }
  math::Rng fail_rng(seed);
  const sim::FailureScenario failures(overlay.space(), q, fail_rng);
  const math::Rng route_rng(seed + 1);
  return 1.0 - sim::estimate_routability_parallel(
                   overlay, failures, {.pairs = kPairs, .threads = g_threads},
                   route_rng)
                   .routability();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dht;
  g_threads = static_cast<unsigned>(
      bench::parse_flag_u64(argc, argv, "--threads", 0));
  const sim::IdSpace space(kBits);
  math::Rng build_rng(20060328);  // arXiv date of the paper; any seed works
  const sim::TreeOverlay tree_overlay(space, build_rng);
  const sim::XorOverlay xor_overlay(space, build_rng);
  const sim::HypercubeOverlay cube_overlay(space);

  const auto tree = core::make_geometry(core::GeometryKind::kTree);
  const auto cube = core::make_geometry(core::GeometryKind::kHypercube);
  const auto xr = core::make_geometry(core::GeometryKind::kXor);

  core::Table table(strfmt(
      "Fig. 6(a) -- percent failed paths vs node failure probability, "
      "N = 2^%d",
      kBits));
  table.set_header({"q%", "tree ana", "tree sim", "cube ana", "cube sim",
                    "xor ana", "xor sim"});
  std::uint64_t seed = 1000;
  for (double q : bench::paper_q_grid()) {
    const auto ana = [&](const core::Geometry& g) {
      return 1.0 -
             core::evaluate_routability(g, kBits, q).conditional_success;
    };
    table.add_row({bench::pct(q), bench::pct(ana(*tree)),
                   bench::pct(simulated_failed(tree_overlay, q, seed)),
                   bench::pct(ana(*cube)),
                   bench::pct(simulated_failed(cube_overlay, q, seed + 100)),
                   bench::pct(ana(*xr)),
                   bench::pct(simulated_failed(xor_overlay, q, seed + 200))});
    seed += 1;
  }
  table.add_note(strfmt("simulation: %llu sampled alive pairs per point, "
                        "basic protocols, no back-tracking",
                        static_cast<unsigned long long>(kPairs)));
  table.add_note(
      "tree/hypercube: the model is exact -- columns agree to sampling "
      "noise; xor: Eq. 6 idealizes fallback progress as durable, making the "
      "analytical curve a few percent optimistic in the knee (documented in "
      "EXPERIMENTS.md)");
  dht::bench::emit(table, argc, argv);
  return 0;
}
