// Ablation: reachable component vs connected component (paper Section 1).
//
// Percolation theory talks about connectivity, but "because of how messages
// get routed ... all pairs belonging to the same connected component need
// not be reachable".  This harness measures both quantities on simulated
// overlays: the largest-connected-component fraction (graph view) and the
// mean reachable-component fraction (protocol view), showing the gap RCM
// exists to capture.
#include <iostream>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/report.hpp"
#include "math/rng.hpp"
#include "percolation/components.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace {

constexpr int kBits = 9;  // reachable sets are O(N^2 hops): keep N small
constexpr int kSources = 24;

struct GapRow {
  double connected = 0.0;
  double reachable = 0.0;
};

GapRow measure(const dht::sim::Overlay& overlay, double q,
               std::uint64_t seed) {
  using namespace dht;
  math::Rng fail_rng(seed);
  const sim::FailureScenario failures(overlay.space(), q, fail_rng);
  GapRow row;
  const perc::ComponentSummary summary =
      perc::analyze_components(overlay, failures);
  row.connected = summary.largest_fraction();
  math::Rng route_rng(seed + 1);
  double total = 0.0;
  for (int i = 0; i < kSources; ++i) {
    const sim::NodeId source = failures.sample_alive(route_rng);
    total += static_cast<double>(perc::reachable_component_size(
                 overlay, failures, source, route_rng)) /
             static_cast<double>(failures.alive_count() - 1);
  }
  row.reachable = total / kSources;
  return row;
}

}  // namespace

int main() {
  using namespace dht;
  const sim::IdSpace space(kBits);
  math::Rng build_rng(55);
  const sim::TreeOverlay tree(space, build_rng);
  const sim::XorOverlay xr(space, build_rng);
  const sim::HypercubeOverlay cube(space);
  const sim::ChordOverlay ring(space, build_rng);

  core::Table table(strfmt(
      "Connectivity vs routability -- largest connected component fraction "
      "(graph) vs mean reachable fraction (protocol), N = 2^%d",
      kBits));
  table.set_header({"q%", "tree conn", "tree reach", "xor conn", "xor reach",
                    "cube conn", "cube reach", "ring conn", "ring reach"});
  std::uint64_t seed = 600;
  for (double q : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
    const GapRow t = measure(tree, q, seed);
    const GapRow x = measure(xr, q, seed + 1);
    const GapRow c = measure(cube, q, seed + 2);
    const GapRow r = measure(ring, q, seed + 3);
    table.add_row({bench::pct(q), bench::pct(t.connected),
                   bench::pct(t.reachable), bench::pct(x.connected),
                   bench::pct(x.reachable), bench::pct(c.connected),
                   bench::pct(c.reachable), bench::pct(r.connected),
                   bench::pct(r.reachable)});
    seed += 10;
  }
  table.add_note(
      "connectivity stays near 100% long after greedy reachability has "
      "collapsed (most dramatically for the tree): component size does not "
      "give routability, which is why RCM analyzes the protocol, not the "
      "graph (paper Section 1)");
  table.print(std::cout);
  return 0;
}
