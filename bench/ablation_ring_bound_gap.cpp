// Ablation: how tight is the ring lower bound, and for which Chord?
//
// The paper's ring Markov chain (Fig. 8(a)) assumes m usable fingers in
// phase m.  That matches classic Chord (fingers at offsets exactly 2^i);
// for the randomized variant (finger i uniform in [2^{d-i}, 2^{d-i+1})) the
// top in-phase finger can overshoot the target, so real routing sometimes
// has only m-1 options and the measured failed-path fraction can exceed
// the chain's "upper bound".  This table quantifies both effects.
#include <iostream>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/monte_carlo.hpp"

namespace {
constexpr int kBits = 14;
constexpr std::uint64_t kPairs = 20000;

double simulated_failed(dht::sim::ChordFingers variant, double q,
                        std::uint64_t seed) {
  using namespace dht;
  if (q == 0.0) {
    return 0.0;
  }
  const sim::IdSpace space(kBits);
  math::Rng build_rng(seed);
  const sim::ChordOverlay overlay(space, build_rng, variant);
  math::Rng fail_rng(seed + 1);
  const sim::FailureScenario failures(space, q, fail_rng);
  math::Rng route_rng(seed + 2);
  return 1.0 - sim::estimate_routability(overlay, failures, {.pairs = kPairs},
                                         route_rng)
                   .routability();
}

}  // namespace

int main() {
  using namespace dht;
  const auto ring = core::make_geometry(core::GeometryKind::kRing);

  core::Table table(strfmt(
      "Ring bound ablation -- percent failed paths at N = 2^%d: analytical "
      "bound vs deterministic vs randomized fingers",
      kBits));
  table.set_header({"q%", "ana bound", "classic (2^i fingers)",
                    "randomized fingers", "bound holds (classic)",
                    "bound holds (randomized)"});
  std::uint64_t seed = 400;
  for (double q : bench::paper_q_grid()) {
    const double bound =
        1.0 - core::evaluate_routability(*ring, kBits, q).conditional_success;
    const double classic =
        simulated_failed(sim::ChordFingers::kDeterministic, q, seed);
    const double randomized =
        simulated_failed(sim::ChordFingers::kRandomized, q, seed + 7);
    table.add_row({bench::pct(q), bench::pct(bound), bench::pct(classic),
                   bench::pct(randomized),
                   classic <= bound + 0.005 ? "yes" : "NO",
                   randomized <= bound + 0.005 ? "yes" : "NO"});
    seed += 20;
  }
  table.add_note(
      "classic fingers: failures stay at or below the analytical upper "
      "bound at every q (the paper's Fig. 6(b) claim); randomized fingers "
      "can exceed it at small q -- the chain's m-choices assumption is "
      "specific to the deterministic finger layout");
  table.print(std::cout);
  return 0;
}
