// Extension: dynamic membership -- joins, leaves, and successor-list
// repair in sparse identifier spaces (the fusion of the churn and sparse
// engines; churn/sparse_trajectory.hpp).
//
// Table 1 runs the headline bridge: N0 nodes (stationary) scattered in a
// 2^32 key space under live membership turnover, with joiners announcing
// themselves (Kademlia deep-bucket inserts / Chord predecessor notify).
// Measured routability is compared against the *static dense* model
// evaluated at the density-reduction scale d' = log2 N0 and the effective
// failure probability q_eff(R) -- i.e., both prior extensions composed:
// PR 2's churn bridge stacked on PR 4's density reduction.  q_nr, the
// no-return effective q (identities never come back; the bound the engine
// decays to without announcement), is printed alongside.
//
// Table 2 sweeps the paper's "sequential neighbors" under churn: the ring
// with s clockwise successors per node, per-round list repair (consult the
// list, rebuild on total loss), and predecessor notify, against the
// eager-repair knob rho.  Bare successor-of-key fingers (s = 0) decay
// badly at long refresh intervals; a handful of sequential neighbors
// restores near-perfect routability -- the paper's static claim, now
// demonstrated under real membership turnover.
//
// Table 3 runs lookups under LIVE churn on Kademlia: in-flight measurement
// (the world steps DURING each route, so a lookup can lose its next hop or
// its current holder mid-flight) x k-bucket width (k = 4 with LRU eviction
// vs the single-contact k = 1) x session model (geometric vs heavy-tailed
// Pareto at the same mean lifetime), under the harsh pd = pr = 0.05,
// R = 30 regime.  Wider buckets buy redundancy exactly where live churn
// hurts; heavy-tailed sessions HELP routability at equal mean (a fresh
// entry points at a node already proven long-lived -- the inspection
// paradox, and the reason Kademlia prefers its oldest contacts), tracked
// by the generalized q_nr bridge.
//
// Table 4 measures the heavy-traffic workload layer under churn: GETs for
// Zipf-popular objects served from an r-way replica group over the
// successor list (consistent-hashing placement; a GET succeeds if ANY of
// the r successor-list holders is reachable), with per-slot load
// accounting.  Availability climbs from routability toward ~1 as r grows
// -- the paper's resilience story restated for data, not just routes --
// while the Zipf skew concentrates load on the owners of hot objects.
//
// Flags: --threads N (0 = hardware)  --csv
#include <iostream>

#include "bench_util.hpp"
#include "churn/sparse_trajectory.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "obs/failure.hpp"
#include "sparse/density_analysis.hpp"

namespace {
constexpr std::uint64_t kPopulation = 4096;  // stationary N0
constexpr int kBits = 32;
constexpr std::uint64_t kShards = 8;
constexpr int kRounds = 4;
constexpr std::uint64_t kPairsPerRound = 600;
}  // namespace

int main(int argc, char** argv) {
  using namespace dht;
  const auto threads = static_cast<unsigned>(
      bench::parse_flag_u64(argc, argv, "--threads", 0));
  const auto xor_geo = core::make_geometry(core::GeometryKind::kXor);

  core::Table table(strfmt(
      "Sparse churn extension -- dynamic membership, N0 = %llu nodes "
      "(stationary) in a 2^%d key space, %llu replicas: measured "
      "routability %% vs the static dense model at d' = log2 N0 and q_eff",
      static_cast<unsigned long long>(kPopulation), kBits,
      static_cast<unsigned long long>(kShards)));
  table.set_header({"availability", "refresh R", "q_eff", "q_nr",
                    "static@q_eff %", "static@q_nr %", "sparse churn sim %",
                    "mean N"});
  std::uint64_t seed = 1;
  for (const double a : {0.9, 0.8}) {
    for (const int refresh : {1, 5, 20, 60}) {
      const double pd = 0.02;
      const double pr = a * pd / (1.0 - a);
      const churn::ChurnParams params{.death_per_round = pd,
                                      .rebirth_per_round = pr,
                                      .refresh_interval = refresh};
      const churn::SparseChurnConfig config{
          .bits = kBits,
          .capacity = churn::capacity_for_population(kPopulation, params),
          .successors = 0,
          .shortcuts = 6};
      const churn::TrajectoryOptions options{
          .warmup_rounds = 3 * refresh + 60,
          .measured_rounds = kRounds,
          .pairs_per_round = kPairsPerRound,
          .shards = kShards,
          .threads = threads};
      const auto result = run_sparse_churn_trajectory(
          churn::SparseChurnGeometry::kKademlia, config, params, options,
          math::Rng(seed));
      const double at_q_eff =
          sparse::predict_sparse_routability(*xor_geo, kPopulation,
                                             churn::effective_q(params))
              .conditional_success;
      const double at_q_nr =
          sparse::predict_sparse_routability(
              *xor_geo, kPopulation, churn::effective_q_no_return(params))
              .conditional_success;
      table.add_row({strfmt("%.2f", a), strfmt("%d", refresh),
                     strfmt("%.4f", churn::effective_q(params)),
                     strfmt("%.4f", churn::effective_q_no_return(params)),
                     bench::pct(at_q_eff), bench::pct(at_q_nr),
                     bench::pct(result.overall.routability()),
                     strfmt("%.0f", result.mean_population)});
      seed += 10;
    }
  }
  table.add_note(
      "both model columns are the static dense model at the density-"
      "reduction scale d' = log2 N0 (PR 4), evaluated at PR 2's churn "
      "bridge q_eff (identities return -- optimistic under dynamic "
      "membership) and at the no-return bridge "
      "q_nr = 1 - (1-(1-pd)^R)/(R pd) (pure entry decay).  The measured "
      "dynamic-membership system tracks the q_eff curve at short R (join "
      "announcement heals newcomer blindness there) and crosses over to "
      "the q_nr curve as R grows -- a few points below it at mid R, where "
      "blindness beyond the announce budget adds to entry decay, and above "
      "it at long R, where announcement keeps freshening entries the "
      "schedule would leave stale.  At full population the same engine "
      "pins the q_eff bridge itself (test_sparse_churn's dense-limit "
      "oracle)");
  dht::bench::emit(table, argc, argv);

  // Sequential neighbors under churn: s x rho on the ring.
  core::Table grid(strfmt(
      "Successor lists under churn -- sparse ring, N0 = %llu in 2^%d keys, "
      "pd = pr = 0.05, R = 30: routability %% vs list length s and "
      "eager-repair rho",
      static_cast<unsigned long long>(kPopulation), kBits));
  grid.set_header(
      {"s", "rho", "sparse churn sim %", "mean hops", "mean entry age"});
  const churn::ChurnParams ring_params{.death_per_round = 0.05,
                                       .rebirth_per_round = 0.05,
                                       .refresh_interval = 30};
  churn::SparseChurnSweepSpec spec;
  spec.geometry = churn::SparseChurnGeometry::kChord;
  spec.bits = {kBits};
  spec.populations = {kPopulation};
  spec.churn = {ring_params};
  spec.repair = {0.0, 0.5};
  spec.successors = {0, 2, 4, 8};
  spec.options = churn::TrajectoryOptions{.warmup_rounds = 120,
                                          .measured_rounds = kRounds,
                                          .pairs_per_round = kPairsPerRound,
                                          .shards = kShards,
                                          .threads = threads};
  spec.seed = 1000;
  for (const auto& point : run_sparse_churn_sweep(spec)) {
    grid.add_row({strfmt("%d", point.successors),
                  strfmt("%.1f", point.repair_probability),
                  bench::pct(point.result.overall.routability()),
                  strfmt("%.2f", point.result.overall.mean_hops()),
                  strfmt("%.2f", point.result.mean_entry_age)});
  }
  grid.add_note(
      "s = 0 is the degenerate ring: arrival depends on the deepest finger "
      "pointing exactly at the (possibly new) target, so heavy turnover "
      "with R = 30 drops most routes even with eager repair; s >= 4 "
      "sequential neighbors with per-round list repair and predecessor "
      "notify restore near-perfect routability -- the paper's sequential-"
      "neighbors resilience story, demonstrated under dynamic membership");
  dht::bench::emit(grid, argc, argv);

  // Lookups under live churn: in-flight x bucket width x session model.
  core::Table live(strfmt(
      "Lookups under live churn -- sparse kademlia, N0 = %llu in 2^%d keys, "
      "pd = pr = 0.05, R = 30: in-flight measurement x k-bucket width x "
      "session model",
      static_cast<unsigned long long>(kPopulation), kBits));
  live.set_header({"k", "session", "measurement", "q_nr model",
                   "sparse churn sim %", "mean hops",
                   "fail dead/hop/holder/collapse"});
  const churn::ChurnParams live_params{.death_per_round = 0.05,
                                       .rebirth_per_round = 0.05,
                                       .refresh_interval = 30};
  struct LiveRow {
    int k;
    churn::SessionKind session;
    bool inflight;
  };
  const LiveRow rows[] = {
      {1, churn::SessionKind::kGeometric, false},
      {1, churn::SessionKind::kGeometric, true},
      {4, churn::SessionKind::kGeometric, false},
      {4, churn::SessionKind::kGeometric, true},
      {1, churn::SessionKind::kPareto, true},
      {4, churn::SessionKind::kPareto, true},
  };
  std::uint64_t live_seed = 5000;
  for (const LiveRow& row : rows) {
    churn::SparseChurnConfig config{
        .bits = kBits,
        .capacity = churn::capacity_for_population(kPopulation, live_params),
        .successors = 0,
        .shortcuts = 6};
    config.bucket_k = row.k;
    config.session = churn::SessionModel{.kind = row.session,
                                         .pareto_alpha = 1.5};
    churn::TrajectoryOptions options{.warmup_rounds = 120,
                                     .measured_rounds = kRounds,
                                     .pairs_per_round = kPairsPerRound,
                                     .shards = kShards,
                                     .threads = threads};
    options.inflight = row.inflight;
    const auto result = run_sparse_churn_trajectory(
        churn::SparseChurnGeometry::kKademlia, config, live_params, options,
        math::Rng(live_seed));
    // Sync rows route through the 8-lane batch kernels (the engine
    // default, bit-identical to scalar); in-flight rows are inherently
    // scalar -- the lifecycle sweep advances under every hop.
    live.add_row({strfmt("%d", row.k), churn::to_string(row.session),
                  row.inflight ? "in-flight (scalar)"
                               : "synchronous (batched)",
                  strfmt("%.4f",
                         churn::effective_q_no_return(live_params,
                                                      config.session)),
                  bench::pct(result.overall.routability()),
                  strfmt("%.2f", result.overall.mean_hops()),
                  strfmt("%llu/%llu/%llu/%llu",
                         static_cast<unsigned long long>(
                             result.overall.failures
                                 [obs::RouteFailure::kDeadEntry]),
                         static_cast<unsigned long long>(
                             result.overall.failures
                                 [obs::RouteFailure::kHopLimit]),
                         static_cast<unsigned long long>(
                             result.overall.failures
                                 [obs::RouteFailure::kHolderDeparted]),
                         static_cast<unsigned long long>(
                             result.overall.failures
                                 [obs::RouteFailure::kSuccessorCollapse]))});
    live_seed += 10;
  }
  live.add_note(
      "in-flight rows measure while membership and repairs advance "
      "mid-route (events-per-hop derived from the pair budget), so routes "
      "can lose their next hop -- or the node holding the message -- "
      "mid-flight; k = 4 buckets with dead-observed LRU eviction absorb "
      "most of that loss.  The pareto rows keep the mean session at 1/pd "
      "but heavy-tail it (alpha = 1.5): routability IMPROVES at equal "
      "mean, tracking the lower generalized q_nr -- fresh entries point "
      "at proven survivors, the inspection-paradox effect that justifies "
      "Kademlia's keep-the-oldest bucket policy.  The failure split "
      "classifies every dropped route (dead entry / hop limit / holder "
      "departed mid-flight / successor collapse): holder-departed is only "
      "reachable on in-flight rows, where the sweep can kill the node "
      "carrying the message between hops");
  dht::bench::emit(live, argc, argv);

  // Availability under churn x replication: Zipf GETs on the ring.
  core::Table repl(strfmt(
      "Replicated GETs under churn -- sparse ring, N0 = %llu in 2^%d keys, "
      "pd = pr = 0.05, zipf s = 1.1: availability %% vs replication r and "
      "refresh R",
      static_cast<unsigned long long>(kPopulation), kBits));
  repl.set_header({"r", "refresh R", "routability %", "availability %",
                   "fail dead/collapse", "load max", "load p99", "load cv"});
  std::uint64_t repl_seed = 9000;
  for (const int refresh : {5, 30}) {
    const churn::ChurnParams repl_params{.death_per_round = 0.05,
                                         .rebirth_per_round = 0.05,
                                         .refresh_interval = refresh};
    for (const int r : {1, 2, 4, 8}) {
      churn::SparseChurnConfig config{
          .bits = kBits,
          .capacity = churn::capacity_for_population(kPopulation, repl_params),
          .successors = 4,
          .shortcuts = 6};
      config.replicas = r;
      config.zipf_s = 1.1;
      const churn::TrajectoryOptions options{
          .warmup_rounds = 3 * refresh + 60,
          .measured_rounds = kRounds,
          .pairs_per_round = kPairsPerRound,
          .shards = kShards,
          .threads = threads};
      const auto result = run_sparse_churn_trajectory(
          churn::SparseChurnGeometry::kChord, config, repl_params, options,
          math::Rng(repl_seed));
      repl.add_row({strfmt("%d", r), strfmt("%d", refresh),
                    bench::pct(result.overall.routability()),
                    bench::pct(result.overall.availability()),
                    strfmt("%llu/%llu",
                           static_cast<unsigned long long>(
                               result.overall.failures
                                   [obs::RouteFailure::kDeadEntry]),
                           static_cast<unsigned long long>(
                               result.overall.failures
                                   [obs::RouteFailure::kSuccessorCollapse])),
                    strfmt("%llu",
                           static_cast<unsigned long long>(result.load_max)),
                    strfmt("%.1f", result.load_p99),
                    strfmt("%.2f", result.load_cv)});
      repl_seed += 10;
    }
  }
  repl.add_note(
      "a GET fetches a Zipf-popular object from its consistent-hashing "
      "owner, falling back through the r - 1 clockwise successor replicas "
      "when the primary route fails; availability >= routability by "
      "construction, and each replica multiplies the miss rate by roughly "
      "the single-route failure probability until replica loss (all r "
      "holders departed) dominates.  Load columns digest per-slot forward "
      "counts: the Zipf head concentrates traffic on hot owners (cv well "
      "above the uniform baseline), the price of the availability win.  "
      "The failure split classifies dropped primary routes: dead-entry "
      "stalls (every candidate finger dead) vs successor collapse (the "
      "whole successor list dead at once), the s = 4 list's rare worst "
      "case");
  dht::bench::emit(repl, argc, argv);
  return 0;
}
