// Ablation: the identifier digit base (paper Section 3: "we will use
// binary strings as identifiers although any other base besides 2 can be
// used").
//
// At a fixed population N = b^d, a larger base shortens routes (d = log_b N
// sequential corrections) at the price of d(b-1) routing-table entries.
// For the fallback-free tree geometry every correction is a single point of
// failure, so the base directly trades state for resilience -- the design
// argument behind Tapestry/Pastry's base 16.  This table quantifies the
// trade at N = 2^12 and N = 2^16.
#include <iostream>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "core/tree_geometry.hpp"

namespace {

struct Config {
  int base;
  int digits;  // so that base^digits == N
};

void emit_for(std::uint64_t n_label, const std::vector<Config>& configs,
              int argc, char** argv) {
  using namespace dht;
  core::Table table(strfmt(
      "Digit-base ablation -- tree geometry failed paths %% at N = %llu "
      "(base^digits constant, table size = digits*(base-1))",
      static_cast<unsigned long long>(n_label)));
  std::vector<std::string> header{"q%"};
  for (const Config& c : configs) {
    header.push_back(strfmt("b=%d,d=%d", c.base, c.digits));
  }
  header.push_back("table entries b=2");
  header.push_back(strfmt("table entries b=%d", configs.back().base));
  table.set_header(std::move(header));
  for (double q : bench::paper_q_grid()) {
    std::vector<std::string> row{bench::pct(q)};
    for (const Config& c : configs) {
      const core::TreeGeometry tree(c.base);
      row.push_back(bench::pct(
          1.0 - core::evaluate_routability(tree, c.digits, q).routability));
    }
    row.push_back(strfmt("%d", configs.front().digits));
    row.push_back(strfmt(
        "%d", configs.back().digits * (configs.back().base - 1)));
    table.add_row(std::move(row));
  }
  table.add_note(
      "larger bases shorten the chain of single-point-of-failure "
      "corrections: at small q, base 16 fails ~2.5x fewer paths than "
      "base 2 at the same N, paid for with ~4x the routing-table state -- "
      "but no base makes the tree scalable (Q(m) = q is base-independent)");
  dht::bench::emit(table, argc, argv);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  emit_for(4096, {{2, 12}, {4, 6}, {8, 4}, {16, 3}}, argc, argv);
  emit_for(65536, {{2, 16}, {4, 8}, {16, 4}}, argc, argv);
  return 0;
}
