// Extension: churn (the paper's Section 1 open question).
//
// Runs the dynamic XOR system -- two-state node lifecycles with stationary
// availability a, entries refreshed every R rounds -- and compares its
// steady-state routability against the *static* model evaluated at the
// effective failure probability
//
//   q_eff(R) = (1-a) [1 - (1 - lambda^R)/(R (1 - lambda))],
//
// lambda = 1 - pd - pr.  Within this churn model the answer to the paper's
// question is affirmative: static resilience analysis transfers to the
// dynamic regime, with the refresh lag setting the operating point.
#include <iostream>

#include "bench_util.hpp"
#include "churn/churn.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"

namespace {
constexpr int kBits = 12;
constexpr std::uint64_t kPairs = 20000;
}  // namespace

int main(int argc, char** argv) {
  using namespace dht;
  const sim::IdSpace space(kBits);
  const auto xor_geo = core::make_geometry(core::GeometryKind::kXor);

  core::Table table(strfmt(
      "Churn extension -- dynamic XOR system at N = 2^%d: measured "
      "routability %% vs static model at q_eff",
      kBits));
  table.set_header({"availability", "death/round", "refresh R", "q_eff",
                    "static ana %", "churn sim %", "alive frac"});
  std::uint64_t seed = 1;
  for (const double a : {0.9, 0.8, 0.6}) {
    for (const int refresh : {1, 5, 20, 60}) {
      // Fix the death rate; derive rebirth from the availability target.
      const double pd = 0.02;
      const double pr = a * pd / (1.0 - a);
      const churn::ChurnParams params{.death_per_round = pd,
                                      .rebirth_per_round = pr,
                                      .refresh_interval = refresh};
      const double q_eff = churn::effective_q(params);
      math::Rng rng(seed);
      churn::ChurnSimulator simulator(space, params, rng);
      simulator.run(3 * refresh + 60);
      math::Rng measure_rng(seed + 1);
      const double measured =
          simulator.measure_routability(kPairs, measure_rng).point();
      const double predicted =
          core::evaluate_routability(*xor_geo, kBits, q_eff)
              .conditional_success;
      table.add_row({strfmt("%.2f", a), strfmt("%.3f", pd),
                     strfmt("%d", refresh), strfmt("%.4f", q_eff),
                     bench::pct(predicted), bench::pct(measured),
                     strfmt("%.3f", simulator.alive_fraction())});
      seed += 10;
    }
  }
  table.add_note(
      "R = 1 (refresh every round) keeps q_eff ~ pd/2-ish and routability "
      "near 100% even at 60% availability; q_eff grows with R toward the "
      "stationary dead fraction 1-a, and the measured dynamic routability "
      "tracks the static curve at q_eff throughout (modulo Eq. 6's "
      "documented knee bias)");
  dht::bench::emit(table, argc, argv);
  return 0;
}
