// Extension: churn (the paper's Section 1 open question), now on the
// sharded trajectory engine.
//
// Runs the dynamic system -- two-state node lifecycles with stationary
// availability a, entries refreshed every R rounds -- as independent shard
// replicas (churn/trajectory.hpp; bit-identical at any --threads), and
// compares its steady-state routability against the *static* model
// evaluated at the effective failure probability
//
//   q_eff(R) = (1-a) [1 - (1 - lambda^R)/(R (1 - lambda))],
//
// lambda = 1 - pd - pr.  Within this churn model the answer to the paper's
// question is affirmative: static resilience analysis transfers to the
// dynamic regime, with the refresh lag setting the operating point.  A
// second table sweeps the trajectory engine's other two geometries (ring,
// tree) and the eager-repair knob rho at one churn point.
//
// Flags: --threads N (0 = hardware)  --csv
#include <iostream>

#include "bench_util.hpp"
#include "churn/trajectory.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"

namespace {
constexpr int kBits = 12;
// 8 shards x 5 rounds x 500 pairs = 20000 routes per point, matching the
// pre-trajectory harness budget.
constexpr std::uint64_t kShards = 8;
constexpr int kRounds = 5;
constexpr std::uint64_t kPairsPerRound = 500;
}  // namespace

int main(int argc, char** argv) {
  using namespace dht;
  const auto threads = static_cast<unsigned>(
      bench::parse_flag_u64(argc, argv, "--threads", 0));
  const auto xor_geo = core::make_geometry(core::GeometryKind::kXor);

  core::Table table(strfmt(
      "Churn extension -- sharded dynamic XOR trajectories at N = 2^%d "
      "(%llu replicas): measured routability %% vs static model at q_eff",
      kBits, static_cast<unsigned long long>(kShards)));
  table.set_header({"availability", "death/round", "refresh R", "q_eff",
                    "static ana %", "churn sim %", "alive frac"});
  std::uint64_t seed = 1;
  for (const double a : {0.9, 0.8, 0.6}) {
    for (const int refresh : {1, 5, 20, 60}) {
      // Fix the death rate; derive rebirth from the availability target.
      const double pd = 0.02;
      const double pr = a * pd / (1.0 - a);
      const churn::ChurnParams params{.death_per_round = pd,
                                      .rebirth_per_round = pr,
                                      .refresh_interval = refresh};
      const double q_eff = churn::effective_q(params);
      const churn::TrajectoryOptions options{
          .warmup_rounds = 3 * refresh + 60,
          .measured_rounds = kRounds,
          .pairs_per_round = kPairsPerRound,
          .shards = kShards,
          .threads = threads};
      const math::Rng rng(seed);
      const auto result =
          run_churn_trajectory(churn::TrajectoryGeometry::kXor,
                               sim::IdSpace(kBits), params, options, rng);
      const double predicted =
          core::evaluate_routability(*xor_geo, kBits, q_eff)
              .conditional_success;
      table.add_row({strfmt("%.2f", a), strfmt("%.3f", pd),
                     strfmt("%d", refresh), strfmt("%.4f", q_eff),
                     bench::pct(predicted),
                     bench::pct(result.overall.routability()),
                     strfmt("%.3f", result.mean_alive_fraction)});
      seed += 10;
    }
  }
  table.add_note(
      "R = 1 (refresh every round) keeps q_eff ~ pd/2-ish and routability "
      "near 100% even at 60% availability; q_eff grows with R toward the "
      "stationary dead fraction 1-a, and the measured dynamic routability "
      "tracks the static curve at q_eff throughout (modulo Eq. 6's "
      "documented knee bias)");
  dht::bench::emit(table, argc, argv);

  // Geometry x rho sweep at one churn point, on the SweepSpec grid API.
  core::Table grid(strfmt(
      "Churn trajectories across geometries at N = 2^%d, a = 0.8, R = 20: "
      "measured routability %% vs eager-repair rho",
      kBits));
  grid.set_header({"geometry", "rho", "q_eff", "static ana %", "churn sim %",
                   "mean entry age"});
  for (const auto geometry :
       {churn::TrajectoryGeometry::kXor, churn::TrajectoryGeometry::kRing,
        churn::TrajectoryGeometry::kTree}) {
    churn::SweepSpec spec;
    spec.geometry = geometry;
    spec.bits = {kBits};
    spec.churn = {churn::ChurnParams{.death_per_round = 0.02,
                                     .rebirth_per_round = 0.08,
                                     .refresh_interval = 20}};
    spec.repair = {0.0, 0.5, 1.0};
    spec.options = churn::TrajectoryOptions{.warmup_rounds = 120,
                                            .measured_rounds = kRounds,
                                            .pairs_per_round = kPairsPerRound,
                                            .shards = kShards,
                                            .threads = threads};
    spec.seed = 1000;
    const auto geometry_core = core::make_geometry(
        std::string(churn::to_string(geometry)));
    for (const auto& point : run_churn_sweep(spec)) {
      const double predicted =
          core::evaluate_routability(*geometry_core, kBits, point.q_eff)
              .conditional_success;
      grid.add_row({churn::to_string(geometry),
                    strfmt("%.1f", point.repair_probability),
                    strfmt("%.4f", point.q_eff), bench::pct(predicted),
                    bench::pct(point.result.overall.routability()),
                    strfmt("%.2f", point.result.mean_entry_age)});
    }
  }
  grid.add_note(
      "rho is the per-round probability that an entry observed dead is "
      "eagerly re-pointed between scheduled refreshes; rho -> 1 approaches "
      "the fully repaired static regime, lifting xor and tree above the "
      "static-at-q_eff prediction (which models rho = 0) toward 100%. The "
      "ring stays slightly below its prediction even at rho = 1: its "
      "deepest dyadic finger intervals hold only one or two candidates, so "
      "a dead interval is irreparable until its members rejoin");
  dht::bench::emit(grid, argc, argv);
  return 0;
}
