// Extension: routing latency under failure.
//
// The paper's evaluation covers routability only; its Markov chains also
// predict the expected hop count of *successful* routes (including the
// suboptimal hops of the fallback rules).  This harness prints the
// chain-predicted mean hops next to the simulated mean hops at N = 2^14 --
// quantifying how failures stretch the surviving routes in each geometry.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/latency.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace {
constexpr int kBits = 14;
constexpr std::uint64_t kPairs = 20000;

double simulated_hops(const dht::sim::Overlay& overlay, double q,
                      std::uint64_t seed) {
  using namespace dht;
  math::Rng fail_rng(seed);
  const sim::FailureScenario failures(overlay.space(), q, fail_rng);
  math::Rng route_rng(seed + 1);
  return sim::estimate_routability(overlay, failures, {.pairs = kPairs},
                                   route_rng)
      .hops.mean();
}

}  // namespace

int main() {
  using namespace dht;
  const sim::IdSpace space(kBits);
  math::Rng build_rng(11);
  const sim::TreeOverlay tree_overlay(space, build_rng);
  const sim::XorOverlay xor_overlay(space, build_rng);
  const sim::HypercubeOverlay cube_overlay(space);
  const sim::ChordOverlay ring_overlay(space, build_rng);

  core::Table table(strfmt(
      "Routing latency under failure -- mean hops of successful routes, "
      "N = 2^%d (chain prediction vs simulation)",
      kBits));
  table.set_header({"q%", "tree chain", "tree sim", "cube chain", "cube sim",
                    "xor chain", "xor sim", "ring chain", "ring sim"});
  std::uint64_t seed = 40;
  for (double q : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
    const auto chain_hops = [&](core::GeometryKind kind) {
      const auto geometry = core::make_geometry(kind);
      return core::expected_latency(*geometry, kBits, q)
          .mean_hops_given_success;
    };
    table.add_row(
        {bench::pct(q), strfmt("%.2f", chain_hops(core::GeometryKind::kTree)),
         strfmt("%.2f", simulated_hops(tree_overlay, q, seed)),
         strfmt("%.2f", chain_hops(core::GeometryKind::kHypercube)),
         strfmt("%.2f", simulated_hops(cube_overlay, q, seed + 2)),
         strfmt("%.2f", chain_hops(core::GeometryKind::kXor)),
         strfmt("%.2f", simulated_hops(xor_overlay, q, seed + 4)),
         strfmt("%.2f", chain_hops(core::GeometryKind::kRing)),
         strfmt("%.2f", simulated_hops(ring_overlay, q, seed + 6))});
    seed += 10;
  }
  table.add_note(
      "tree/hypercube: successful routes always take exactly their "
      "distance, but survivorship biases the mean downward as q grows "
      "(long routes die first) -- visible identically in chain and sim");
  table.add_note(
      "xor: fallback hops stretch surviving routes before survivorship "
      "wins; ring: the chain charges one hop per PHASE (distance halving, "
      "~d-1 of them) while classic Chord's binary decomposition needs only "
      "~d/2 real hops -- already at q = 0 the chain is a latency upper "
      "bound, and its non-progressing suboptimal hops widen that bound "
      "with q");
  table.print(std::cout);
  return 0;
}
