// Extension: from static resilience toward churn (paper Section 1).
//
// The static model is the zero-repair limit of a repair process.  This
// harness interpolates: after failures land, each dead tree/XOR table entry
// has been repaired with probability rho (re-pointed at an alive member of
// its class).  rho = 0 is the paper's model; rho = 1 is a fully converged
// repair protocol.  The reference columns evaluate the static analytical
// model at the effective failure probability q_eff = q (1 - rho) -- exact
// for large neighbor classes, optimistic for the deepest levels whose
// classes are single nodes.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/repair.hpp"
#include "sim/xor_overlay.hpp"

namespace {

constexpr int kBits = 14;
constexpr std::uint64_t kPairs = 20000;

double xor_failed_with_repair(const dht::sim::IdSpace& space,
                              const dht::sim::PrefixTable& table, double q,
                              double rho, std::uint64_t seed) {
  using namespace dht;
  if (q == 0.0) {
    return 0.0;
  }
  math::Rng fail_rng(seed);
  const sim::FailureScenario failures(space, q, fail_rng);
  math::Rng repair_rng(seed + 1);
  const auto repaired =
      sim::repair_prefix_table(table, space, failures, rho, repair_rng);
  const sim::XorOverlay overlay(space, repaired);
  math::Rng route_rng(seed + 2);
  return 1.0 - sim::estimate_routability(overlay, failures, {.pairs = kPairs},
                                         route_rng)
                   .routability();
}

}  // namespace

int main() {
  using namespace dht;
  const sim::IdSpace space(kBits);
  math::Rng build_rng(99);
  const sim::PrefixTable table(space, build_rng);
  const auto xor_geo = core::make_geometry(core::GeometryKind::kXor);

  core::Table out(strfmt(
      "Static-repair extension -- XOR geometry, N = 2^%d: percent failed "
      "paths as repair completeness rho grows",
      kBits));
  out.set_header({"q%", "rho=0 (paper)", "rho=0.5", "rho=0.9", "rho=1",
                  "ana q_eff=q/2", "ana q_eff=q/10"});
  std::uint64_t seed = 1;
  for (double q : bench::paper_q_grid()) {
    const auto analytical_at = [&](double q_eff) {
      if (q_eff >= 1.0) {
        return 1.0;
      }
      return 1.0 - core::evaluate_routability(*xor_geo, kBits, q_eff)
                       .conditional_success;
    };
    out.add_row({bench::pct(q),
                 bench::pct(xor_failed_with_repair(space, table, q, 0.0, seed)),
                 bench::pct(
                     xor_failed_with_repair(space, table, q, 0.5, seed + 3)),
                 bench::pct(
                     xor_failed_with_repair(space, table, q, 0.9, seed + 6)),
                 bench::pct(
                     xor_failed_with_repair(space, table, q, 1.0, seed + 9)),
                 bench::pct(analytical_at(q * 0.5)),
                 bench::pct(analytical_at(q * 0.1))});
    seed += 100;
  }
  out.add_note(
      "entries die at effective rate q(1-rho): the rho = 0.5 and 0.9 "
      "columns shadow the static curves at q_eff = q/2 and q/10 (scaled by "
      "Eq. 6's documented knee optimism), and rho = 1 leaves only "
      "whole-class die-offs -- near-total recovery even at q = 90%.  The "
      "paper's static model is the worst case of this repair spectrum");
  out.print(std::cout);
  return 0;
}
