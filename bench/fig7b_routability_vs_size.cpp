// Reproduces Fig. 7(b): routability (%) vs system size at q = 0.1 for all
// five geometries (Symphony kn = ks = 1).  The paper's x-axis spans
// ~10^5..10^10; this table covers N = 2^4 .. 2^100 to show both the paper's
// window and the approach to the asymptote.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "core/scalability.hpp"

int main(int argc, char** argv) {
  using namespace dht;
  const double q = 0.1;
  const auto geometries = core::make_all_geometries(core::SymphonyParams{1, 1});

  core::Table table(
      "Fig. 7(b) -- routability (%) vs system size, q = 0.1 "
      "(Symphony kn = ks = 1)");
  table.set_header(
      {"d", "N", "cube", "chord", "xor", "tree", "symphony"});
  const std::vector<int> ds{4,  8,  12, 16, 17, 20, 23,
                            27, 30, 33, 40, 60, 80, 100};
  for (int d : ds) {
    std::vector<std::string> row{strfmt("%d", d), strfmt("%.2e", std::exp2(d))};
    const auto routability_at = [&](core::GeometryKind kind) {
      for (const auto& g : geometries) {
        if (g->kind() == kind) {
          return core::evaluate_routability(*g, d, q).routability;
        }
      }
      return 0.0;
    };
    row.push_back(bench::pct(routability_at(core::GeometryKind::kHypercube)));
    row.push_back(bench::pct(routability_at(core::GeometryKind::kRing)));
    row.push_back(bench::pct(routability_at(core::GeometryKind::kXor)));
    row.push_back(bench::pct(routability_at(core::GeometryKind::kTree)));
    row.push_back(bench::pct(routability_at(core::GeometryKind::kSymphony)));
    table.add_row(std::move(row));
  }
  // The asymptotes (Definition 2's limit).
  std::vector<std::string> limit_row{"inf", "inf"};
  for (core::GeometryKind kind :
       {core::GeometryKind::kHypercube, core::GeometryKind::kRing,
        core::GeometryKind::kXor, core::GeometryKind::kTree,
        core::GeometryKind::kSymphony}) {
    const auto geometry = core::make_geometry(kind);
    limit_row.push_back(bench::pct(core::limit_routability(*geometry, q)));
  }
  table.add_row(std::move(limit_row));
  table.add_note(
      "paper's reading: tree and symphony degrade monotonically toward 0 "
      "(unscalable) while hypercube, chord and xor stay flat and positive "
      "out to billions of nodes (scalable)");
  table.add_note("d = 17..33 covers the paper's 10^5..10^10 x-axis window");
  dht::bench::emit(table, argc, argv);
  return 0;
}
