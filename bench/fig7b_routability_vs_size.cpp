// Reproduces Fig. 7(b): routability (%) vs system size at q = 0.1 for all
// five geometries (Symphony kn = ks = 1).  The paper's x-axis spans
// ~10^5..10^10; this table covers N = 2^4 .. 2^100 to show both the paper's
// window and the approach to the asymptote.
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "core/scalability.hpp"
#include "math/rng.hpp"
#include "sim/parallel_monte_carlo.hpp"

namespace {

const char* overlay_name(dht::core::GeometryKind kind) {
  switch (kind) {
    case dht::core::GeometryKind::kTree:
      return "tree";
    case dht::core::GeometryKind::kHypercube:
      return "hypercube";
    case dht::core::GeometryKind::kXor:
      return "xor";
    case dht::core::GeometryKind::kRing:
      return "ring";
    case dht::core::GeometryKind::kSymphony:
      return "symphony";
  }
  return "tree";
}

/// One simulated routability point from the parallel deterministic engine.
double simulated_routability(dht::core::GeometryKind kind, int d, double q,
                             unsigned threads) {
  using namespace dht;
  const sim::IdSpace space(d);
  math::Rng build_rng(20060328 + static_cast<std::uint64_t>(d));
  const std::unique_ptr<sim::Overlay> overlay =
      bench::make_overlay(overlay_name(kind), space, build_rng);
  math::Rng fail_rng(7 + static_cast<std::uint64_t>(d));
  const sim::FailureScenario failures(space, q, fail_rng);
  const math::Rng route_rng(11);
  return sim::estimate_routability_parallel(
             *overlay, failures, {.pairs = 20000, .threads = threads},
             route_rng)
      .routability();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dht;
  const double q = 0.1;
  const auto geometries = core::make_all_geometries(core::SymphonyParams{1, 1});

  core::Table table(
      "Fig. 7(b) -- routability (%) vs system size, q = 0.1 "
      "(Symphony kn = ks = 1)");
  table.set_header(
      {"d", "N", "cube", "chord", "xor", "tree", "symphony"});
  const std::vector<int> ds{4,  8,  12, 16, 17, 20, 23,
                            27, 30, 33, 40, 60, 80, 100};
  for (int d : ds) {
    std::vector<std::string> row{strfmt("%d", d), strfmt("%.2e", std::exp2(d))};
    const auto routability_at = [&](core::GeometryKind kind) {
      for (const auto& g : geometries) {
        if (g->kind() == kind) {
          return core::evaluate_routability(*g, d, q).routability;
        }
      }
      return 0.0;
    };
    row.push_back(bench::pct(routability_at(core::GeometryKind::kHypercube)));
    row.push_back(bench::pct(routability_at(core::GeometryKind::kRing)));
    row.push_back(bench::pct(routability_at(core::GeometryKind::kXor)));
    row.push_back(bench::pct(routability_at(core::GeometryKind::kTree)));
    row.push_back(bench::pct(routability_at(core::GeometryKind::kSymphony)));
    table.add_row(std::move(row));
  }
  // The asymptotes (Definition 2's limit).
  std::vector<std::string> limit_row{"inf", "inf"};
  for (core::GeometryKind kind :
       {core::GeometryKind::kHypercube, core::GeometryKind::kRing,
        core::GeometryKind::kXor, core::GeometryKind::kTree,
        core::GeometryKind::kSymphony}) {
    const auto geometry = core::make_geometry(kind);
    limit_row.push_back(bench::pct(core::limit_routability(*geometry, q)));
  }
  table.add_row(std::move(limit_row));
  table.add_note(
      "paper's reading: tree and symphony degrade monotonically toward 0 "
      "(unscalable) while hypercube, chord and xor stay flat and positive "
      "out to billions of nodes (scalable)");
  table.add_note("d = 17..33 covers the paper's 10^5..10^10 x-axis window");
  dht::bench::emit(table, argc, argv);

  // Cross-check the analytical curves against the parallel deterministic
  // Monte-Carlo engine at the sizes where full overlays fit in memory.
  const unsigned threads = static_cast<unsigned>(
      bench::parse_flag_u64(argc, argv, "--threads", 0));
  core::Table sim_table(
      "Fig. 7(b) cross-check -- simulated routability (%) from the parallel "
      "engine, q = 0.1");
  sim_table.set_header({"d", "N", "cube", "chord", "xor", "tree", "symphony"});
  for (int d : {4, 8, 12, 16}) {
    std::vector<std::string> row{strfmt("%d", d), strfmt("%.2e", std::exp2(d))};
    for (core::GeometryKind kind :
         {core::GeometryKind::kHypercube, core::GeometryKind::kRing,
          core::GeometryKind::kXor, core::GeometryKind::kTree,
          core::GeometryKind::kSymphony}) {
      row.push_back(bench::pct(simulated_routability(kind, d, q, threads)));
    }
    sim_table.add_row(std::move(row));
  }
  sim_table.add_note(
      "20000 sampled alive pairs per point; success fraction among alive "
      "pairs (the paper's conditional routability)");
  sim_table.add_note(
      "--threads N picks the worker count (results are thread-count "
      "independent)");
  dht::bench::emit(sim_table, argc, argv);
  return 0;
}
