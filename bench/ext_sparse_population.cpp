// Extension: non-fully-populated identifier spaces (paper Section 6 future
// work).
//
// The paper's analysis assumes every one of the 2^d identifiers hosts a
// node.  Real DHTs scatter N ~ 10^6 nodes across a 2^128 key space.  This
// harness scatters N = 2^10 nodes across progressively larger key spaces
// (up to 2^32 -- the sparse engine accepts up to 2^63) and measures static
// resilience: the failed-path fraction is essentially independent of the
// key-space size and matches the *dense* RCM model evaluated at the
// occupancy scale d' = log2 N -- the density reduction that extends the
// paper's results to real-world populations.  Estimates run on the
// flattened sharded sparse engine (sparse/flat_sparse.hpp), which is also
// what makes the companion million-node sweep (perf_simulator
// "section":"sparse", dhtscale_cli sparse) tractable.
#include <iostream>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "sparse/density_analysis.hpp"
#include "sparse/flat_sparse.hpp"
#include "sparse/sparse_chord.hpp"
#include "sparse/sparse_kademlia.hpp"

namespace {

constexpr std::uint64_t kNodes = 1024;  // N = 2^10
constexpr std::uint64_t kPairs = 20000;

double sparse_failed(const dht::sparse::SparseOverlay& overlay, double q,
                     std::uint64_t seed) {
  using namespace dht;
  if (q == 0.0) {
    return 0.0;
  }
  math::Rng rng(seed);
  const sparse::SparseFailure failures(overlay.space(), q, rng);
  return dht::sparse::estimate_routability_parallel(overlay, failures,
                                                    {.pairs = kPairs}, rng)
      .failed_fraction();
}

}  // namespace

int main() {
  using namespace dht;
  const auto ring = core::make_geometry(core::GeometryKind::kRing);
  const auto xr = core::make_geometry(core::GeometryKind::kXor);

  core::Table table(strfmt(
      "Sparse-population extension -- percent failed paths, N = %llu nodes "
      "scattered in key spaces of 2^10..2^32 keys",
      static_cast<unsigned long long>(kNodes)));
  table.set_header({"q%", "ring d'=10 (dense model)", "chord 2^10 (dense)",
                    "chord 2^14", "chord 2^24", "chord 2^32",
                    "xor d'=10 (dense model)", "kad 2^14", "kad 2^24",
                    "kad 2^32"});

  // Build one overlay per key-space size (ids and tables reused across q).
  struct Instance {
    int bits;
    std::unique_ptr<sparse::SparseIdSpace> space;
    std::unique_ptr<sparse::SparseChordOverlay> chord;
    std::unique_ptr<sparse::SparseKademliaOverlay> kademlia;
  };
  std::vector<Instance> instances;
  for (int bits : {10, 14, 24, 32}) {
    math::Rng rng(7000 + static_cast<std::uint64_t>(bits));
    Instance inst;
    inst.bits = bits;
    inst.space = std::make_unique<sparse::SparseIdSpace>(bits, kNodes, rng);
    inst.chord = std::make_unique<sparse::SparseChordOverlay>(*inst.space);
    inst.kademlia =
        std::make_unique<sparse::SparseKademliaOverlay>(*inst.space, rng);
    instances.push_back(std::move(inst));
  }

  std::uint64_t seed = 1;
  for (double q : bench::paper_q_grid()) {
    std::vector<std::string> row{bench::pct(q)};
    row.push_back(bench::pct(
        1.0 - sparse::predict_sparse_routability(*ring, kNodes, q)
                  .conditional_success));
    row.push_back(bench::pct(sparse_failed(*instances[0].chord, q, seed)));
    row.push_back(bench::pct(sparse_failed(*instances[1].chord, q, seed + 1)));
    row.push_back(bench::pct(sparse_failed(*instances[2].chord, q, seed + 2)));
    row.push_back(bench::pct(sparse_failed(*instances[3].chord, q, seed + 3)));
    row.push_back(bench::pct(
        1.0 - sparse::predict_sparse_routability(*xr, kNodes, q)
                  .conditional_success));
    row.push_back(
        bench::pct(sparse_failed(*instances[1].kademlia, q, seed + 4)));
    row.push_back(
        bench::pct(sparse_failed(*instances[2].kademlia, q, seed + 5)));
    row.push_back(
        bench::pct(sparse_failed(*instances[3].kademlia, q, seed + 6)));
    table.add_row(std::move(row));
    seed += 10;
  }
  table.add_note(
      "chord columns: measured failed paths barely move as the key space "
      "grows 2^14 -> 2^32 at fixed N and track the dense model at "
      "d' = log2 N; unlike the dense case the model is NOT a bound here -- "
      "sparse fingers collapse onto the same few successors, and those "
      "correlated failures cost a few extra percent at small q");
  table.add_note(
      "kad columns: same density-independence for Kademlia buckets; the "
      "dense-model column inherits Eq. 6's documented knee optimism");
  table.print(std::cout);
  return 0;
}
