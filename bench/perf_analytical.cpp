// google-benchmark microbenchmarks for the analytical core: routability
// evaluation across geometries and identifier lengths, phase-failure
// kernels, Markov-chain solving, and the scalability classifier.
#include <benchmark/benchmark.h>

#include "core/registry.hpp"
#include "core/routability.hpp"
#include "core/scalability.hpp"
#include "markov/absorption.hpp"
#include "markov/builders.hpp"

namespace {

using dht::core::GeometryKind;

void BM_Routability(benchmark::State& state, GeometryKind kind) {
  const auto geometry = dht::core::make_geometry(kind);
  const int d = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dht::core::evaluate_routability(*geometry, d, 0.2).routability);
  }
}
BENCHMARK_CAPTURE(BM_Routability, tree, GeometryKind::kTree)
    ->Arg(16)->Arg(100)->Arg(1000);
BENCHMARK_CAPTURE(BM_Routability, hypercube, GeometryKind::kHypercube)
    ->Arg(16)->Arg(100)->Arg(1000);
BENCHMARK_CAPTURE(BM_Routability, xor, GeometryKind::kXor)
    ->Arg(16)->Arg(100)->Arg(1000);
BENCHMARK_CAPTURE(BM_Routability, ring, GeometryKind::kRing)
    ->Arg(16)->Arg(100)->Arg(1000);
BENCHMARK_CAPTURE(BM_Routability, symphony, GeometryKind::kSymphony)
    ->Arg(16)->Arg(100)->Arg(1000);

void BM_PhaseFailureXor(benchmark::State& state) {
  const auto geometry = dht::core::make_geometry(GeometryKind::kXor);
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry->phase_failure(m, 0.3, 4096));
  }
}
BENCHMARK(BM_PhaseFailureXor)->Arg(8)->Arg(64)->Arg(512);

void BM_MarkovChainBuildAndSolveXor(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto built = dht::markov::build_xor_chain(h, 0.3);
    benchmark::DoNotOptimize(dht::markov::absorption_probability_dag(
        built.chain, built.start, built.success));
  }
}
BENCHMARK(BM_MarkovChainBuildAndSolveXor)->Arg(4)->Arg(8)->Arg(16);

void BM_MarkovChainBuildAndSolveRing(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto built = dht::markov::build_ring_chain(h, 0.3);
    benchmark::DoNotOptimize(dht::markov::absorption_probability_dag(
        built.chain, built.start, built.success));
  }
}
BENCHMARK(BM_MarkovChainBuildAndSolveRing)->Arg(8)->Arg(12)->Arg(16);

void BM_LimitRoutability(benchmark::State& state) {
  const auto geometry = dht::core::make_geometry(GeometryKind::kRing);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dht::core::limit_routability(*geometry, 0.2));
  }
}
BENCHMARK(BM_LimitRoutability);

void BM_ScalabilityAnalysis(benchmark::State& state) {
  const auto geometry = dht::core::make_geometry(GeometryKind::kXor);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dht::core::analyze_scalability(*geometry, 0.3).numeric_agrees);
  }
}
BENCHMARK(BM_ScalabilityAnalysis);

}  // namespace

BENCHMARK_MAIN();
