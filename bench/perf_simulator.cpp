// Routing-throughput harness for the Monte-Carlo engine.
//
// Measures routes/sec of (a) the seed single-threaded path -- the generic
// virtual-dispatch Router driven by estimate_routability -- and (b) the
// parallel deterministic engine with flattened kernels at a sweep of thread
// counts, on the same (N, q, seed).  Emits one machine-readable JSON object
// per line (JSONL) so the bench trajectory can be tracked across PRs:
//
//   {"bench":"perf_simulator","geometry":"ring","path":"parallel",
//    "threads":8,"n":65536,"q":0.100000,"pairs":200000,"seed":1,
//    "seconds":0.123,"routes_per_sec":1626016.3,"speedup_vs_seed":5.81,
//    "routability":0.986535,"identical_across_threads":true}
//
// A second JSONL section ("section":"churn") drives the sharded churn
// trajectory engine (churn/trajectory.hpp) on the XOR geometry across the
// same thread sweep, so the bench trajectory also records dynamic-regime
// throughput:
//
//   {"bench":"perf_simulator","section":"churn","geometry":"xor",
//    "threads":8,"n":4096,"shards":8,"warmup_rounds":30,"rounds":4,
//    "pairs_per_round":2500,"q_eff":0.075,"seed":1,"seconds":0.042,
//    "shard_rounds_per_sec":6476.2,"routes":80000,
//    "routability":0.951234,"identical_across_threads":true}
//
// Wall time covers world evolution (warmup + measured rounds) plus route
// sampling, so the churn throughput metric is shard-rounds/sec; the
// routes_per_sec column divides by that same full wall time (comparable
// across sections but diluted by warmup), while
// route_phase_routes_per_sec divides by the route phase's own measured
// seconds -- the honest routing-throughput figure for the churn sections.
//
// Every row also carries the observability columns: the six phase_*_s
// per-phase CPU-second columns (timing -- exempt from the cross-thread
// determinism pairing) and the exact-integer route-failure taxonomy
// (fail_dead_entry, hop_limit_hits, fail_holder_departed,
// fail_succ_collapse, fail_cache_dead_owner -- gated like every other
// count column).  --trace-out FILE additionally writes the harness's
// phase spans as a Chrome trace_event JSON timeline (open in Perfetto).
//
// A fourth JSONL section ("section":"sparse_churn") drives the
// dynamic-membership sparse churn engine (churn/sparse_trajectory.hpp):
// shard-private worlds over a slot roster in a 2^32 key space, joins
// drawing fresh identifiers, leaves decaying in-edges, successor-list
// repair and join announcement, on the ring geometry:
//
//   {"bench":"perf_simulator","section":"sparse_churn","geometry":"ring",
//    "threads":8,"n0":65536,"capacity":81920,"bits":32,"succ":4,
//    "inflight":false,"k":1,"session":"geometric",
//    "shards":8,"warmup_rounds":12,"rounds":3,"pairs_per_round":2000,
//    "pd":0.02,"pr":0.08,"refresh":10,"rho":0.0,"q_eff":0.0746,"seed":1,
//    "seconds":1.23,"shard_rounds_per_sec":97.6,"routes":48000,
//    "routability":0.9991,"mean_population":65519.2,
//    "identical_across_threads":true}
//
// The section runs the thread sweep twice: the round-synchronous
// single-contact geometric configuration above, and the full dynamic
// realism stack -- in-flight lookup measurement (the world steps DURING
// each route), k = 4 Kademlia-style bucket rows, heavy-tailed Pareto
// sessions -- so both modes stay determinism-gated in CI.  As with the
// dense churn section, wall time covers world evolution plus sampling, so
// the throughput metric is shard-rounds/sec.
//
// A third JSONL section ("section":"sparse") sweeps the sparse parallel
// engine (sparse/flat_sparse.hpp) over an N grid up to 10^6 nodes
// scattered in a 2^32 key space, for sparse Chord and sparse Kademlia.
// The virtual single-threaded estimator is measured as the baseline at the
// smaller grid points (it is the pre-flattening seed shape), the flattened
// sharded engine at every point across the thread sweep:
//
//   {"bench":"perf_simulator","section":"sparse","geometry":"sparse-xor",
//    "path":"parallel","threads":8,"n":131072,"bits":32,"q":0.100000,
//    "pairs":200000,"seed":1,"build_seconds":0.24,"seconds":0.031,
//    "routes_per_sec":6451613.3,"speedup_vs_virtual":7.42,
//    "routability":0.931234,"identical_across_threads":true}
//
// (speedup_vs_virtual is 0.0 on rows whose N exceeds the virtual baseline
// cutoff of 2^17 -- the baseline is not measured there, not zero.)
//
// The harness also cross-checks determinism: the parallel estimates at
// every thread count must be bit-identical (static, churn AND sparse
// sections); a mismatch exits non-zero.
//
// Every row carries the machine's NUMA socket count ("sockets") and
// whether topology-aware worker pinning was requested ("pinned"), and the
// churn sections report routes/sec alongside shard-rounds/sec so route
// throughput is comparable across sections.
//
// A fifth JSONL section ("section":"sparse_workload") drives the static
// sparse engine under the heavy-traffic workload model: Zipf-popular
// objects placed by consistent hashing, per-node load accounting, and the
// per-shard finger-path cache, each configuration with caching off and on:
//
//   {"bench":"perf_simulator","section":"sparse_workload",
//    "geometry":"sparse-ring","threads":8,"n":16384,"bits":32,"q":0.1,
//    "pairs":200000,"zipf":1.10,"objects":16384,"cache_entries":8,
//    "seed":1,"seconds":0.04,"routes_per_sec":5000000.0,
//    "cache_hit_rate":0.31,"mean_hops":5.1,"load_max":941,"load_p99":210.0,
//    "load_cv":1.52,"routability":0.95,"identical_across_threads":true}
//
// and the sparse_churn section adds a third replicated-GET mode
// (replicas = 3, Zipf GETs on the ring) whose rows carry availability and
// per-slot load columns alongside routability.
//
// Flags: --bits D (16)  --q Q (0.1)  --pairs P (200000)  --seed S (1)
//        --threads a,b,c (1,2,4,8)  --geometry NAME|all (ring,xor,hypercube)
//        --pin 0|1 (0: pin workers round-robin across NUMA nodes and
//        replicate read-only sparse tables per socket; a best-effort no-op
//        on machines without pinning support, and never affects results)
//        --churn-bits D (12)  --churn-rounds R (4, 0 disables the section)
//        --sparse-bits D (32)  --sparse-n-max N (1048576, 0 disables the
//        sparse AND sparse_workload sections; the grid is 2^14, 2^17, 2^20
//        clipped to N)
//        --sparse-churn-n N (65536, stationary population; 0 disables)
//        --sparse-churn-rounds R (3, measured rounds; 0 disables)
//        --sparse-churn-batch 0|1 (1: route the sync-mode measurements in
//        8-lane batches; 0 selects the scalar reference path.  The two are
//        bit-identical -- the knob exists for A/B perf runs.  In-flight
//        mode is always scalar.)
//        --pd PD --pr PR --refresh R (0.02, 0.08, 10: the lifecycle of the
//        churn and sparse-churn sections)
//        --zipf S (1.1, object-popularity skew of the workload sections)
//        --workload-objects M (0 = one per alive node)
//        --cache-entries E (8, per-node path-cache slots; the workload
//        section also always measures the E = 0 baseline)
//        --replicas R (3, successor-list replication of the GET mode)
//        --trace-out FILE (write a Chrome trace_event JSON timeline of the
//        engine phase spans; empty = off)
//        --obs 0|1 (1: attach phase profiles/trace sinks to the engines;
//        0 hands them null sinks -- the clock-free disabled path -- for
//        A/B measurement of the instrumentation overhead itself)
//        All flags are validated here at the parse boundary -- a bad value
//        gets a one-line diagnostic instead of a deep engine abort.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "churn/sparse_trajectory.hpp"
#include "churn/trajectory.hpp"
#include "math/rng.hpp"
#include "obs/failure.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/parallel_monte_carlo.hpp"
#include "sim/topology.hpp"
#include "sparse/flat_sparse.hpp"
#include "sparse/sparse_chord.hpp"
#include "sparse/sparse_kademlia.hpp"

namespace {

using namespace dht;

struct Config {
  int bits = 16;
  double q = 0.1;
  std::uint64_t pairs = 200000;
  std::uint64_t seed = 1;
  std::vector<unsigned> threads = {1, 2, 4, 8};
  // Default to the ring: the geometry the paper's Fig. 6(b) simulates, and
  // the headline flattened kernel.  --geometry all sweeps every geometry.
  std::vector<std::string> geometries = {"ring"};
  // Churn section: XOR trajectories at a smaller space (each shard evolves
  // a full replica, so the per-round cost is O(N log N) per shard).
  int churn_bits = 12;
  int churn_rounds = 4;  // 0 disables the section
  // Sparse section: N nodes scattered in a 2^sparse_bits key space.
  int sparse_bits = 32;
  std::uint64_t sparse_n_max = 1u << 20;  // 0 disables the section
  // Sparse-churn section: dynamic membership at stationary population N0
  // in a 2^32 key space (ring + successor lists).
  std::uint64_t sparse_churn_n = 1u << 16;  // 0 disables the section
  int sparse_churn_rounds = 3;              // 0 disables the section
  bool sparse_churn_batch = true;           // 0 = scalar reference path
  // Lifecycle of the churn + sparse-churn sections; validated at the flag
  // boundary (parse_args) instead of the deep check_params DHT_CHECK.
  double pd = 0.02;
  double pr = 0.08;
  int refresh = 10;
  // Heavy-traffic workload knobs (sparse_workload section + the replicated
  // sparse-churn mode).
  double zipf = 1.1;
  std::uint64_t workload_objects = 0;  // 0 = one object per alive node
  int cache_entries = 8;
  int replicas = 3;
  // Topology-aware scheduling: pin workers round-robin across NUMA nodes
  // and give each socket its own read-only copy of the sparse tables.
  // Scheduling only -- estimates are bit-identical either way.
  bool pin = false;
  // Chrome trace_event JSON output of the engine phase spans ("" = off).
  std::string trace_out;
  // Observability side-channels (phase profiles + trace spans).  --obs 0
  // hands every engine null sinks -- the zero-cost path that reads no
  // clock -- so A/B runs can measure the instrumentation overhead itself
  // (the phase_*_s columns then emit as zeros).  Taxonomy counts are
  // intrinsic to the estimates and unaffected by this switch.
  bool obs = true;
};

std::vector<unsigned> parse_thread_list(const char* arg) {
  std::vector<unsigned> out;
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p) {
      break;
    }
    if (v > 0) {
      out.push_back(static_cast<unsigned>(v));
    }
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

// Strict non-negative integer parse for u64-valued flags.  strtoull alone
// would silently wrap "-1" to 2^64-1 and accept trailing garbage; both used
// to sail through here and abort much later inside an engine DHT_CHECK.
std::uint64_t parse_u64_flag(const char* flag, const char* value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (value[0] == '-' || end == value || *end != '\0') {
    std::fprintf(stderr, "%s needs a non-negative integer, got %s\n", flag,
                 value);
    std::exit(1);
  }
  return v;
}

Config parse_args(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s requires a value\n", flag.c_str());
      std::exit(1);
    }
    const char* value = argv[i + 1];
    if (flag == "--bits") {
      cfg.bits = std::atoi(value);
      if (cfg.bits < 1 || cfg.bits > 26) {
        std::fprintf(stderr, "--bits must be in [1, 26], got %s\n", value);
        std::exit(1);
      }
    } else if (flag == "--q") {
      cfg.q = std::atof(value);
      if (!(cfg.q >= 0.0 && cfg.q < 1.0)) {
        std::fprintf(stderr, "--q must be in [0, 1), got %s\n", value);
        std::exit(1);
      }
    } else if (flag == "--pairs") {
      cfg.pairs = parse_u64_flag("--pairs", value);
      if (cfg.pairs == 0) {
        std::fprintf(stderr, "--pairs must be >= 1, got %s\n", value);
        std::exit(1);
      }
    } else if (flag == "--seed") {
      cfg.seed = parse_u64_flag("--seed", value);
    } else if (flag == "--threads") {
      cfg.threads = parse_thread_list(value);
      if (cfg.threads.empty()) {
        std::fprintf(stderr, "--threads needs a comma-separated list of "
                             "positive counts, e.g. 1,2,4,8\n");
        std::exit(1);
      }
    } else if (flag == "--churn-bits") {
      cfg.churn_bits = std::atoi(value);
      if (cfg.churn_bits < 1 || cfg.churn_bits > 26) {
        std::fprintf(stderr, "--churn-bits must be in [1, 26], got %s\n",
                     value);
        std::exit(1);
      }
    } else if (flag == "--churn-rounds") {
      cfg.churn_rounds = std::atoi(value);
      if (cfg.churn_rounds < 0) {
        std::fprintf(stderr,
                     "--churn-rounds must be >= 0 (0 disables), got %s\n",
                     value);
        std::exit(1);
      }
    } else if (flag == "--sparse-bits") {
      cfg.sparse_bits = std::atoi(value);
      if (cfg.sparse_bits < 1 || cfg.sparse_bits > 63) {
        std::fprintf(stderr, "--sparse-bits must be in [1, 63], got %s\n",
                     value);
        std::exit(1);
      }
    } else if (flag == "--sparse-n-max") {
      cfg.sparse_n_max = parse_u64_flag("--sparse-n-max", value);
    } else if (flag == "--sparse-churn-n") {
      cfg.sparse_churn_n = parse_u64_flag("--sparse-churn-n", value);
      if (cfg.sparse_churn_n > (std::uint64_t{1} << 24)) {
        std::fprintf(stderr,
                     "--sparse-churn-n must be <= 2^24 (the slot roster "
                     "needs capacity headroom under 2^26), got %s\n",
                     value);
        std::exit(1);
      }
    } else if (flag == "--sparse-churn-rounds") {
      cfg.sparse_churn_rounds = std::atoi(value);
      if (cfg.sparse_churn_rounds < 0) {
        std::fprintf(
            stderr, "--sparse-churn-rounds must be >= 0 (0 disables), got %s\n",
            value);
        std::exit(1);
      }
    } else if (flag == "--sparse-churn-batch") {
      if (std::strcmp(value, "0") != 0 && std::strcmp(value, "1") != 0) {
        std::fprintf(stderr, "--sparse-churn-batch must be 0 or 1, got %s\n",
                     value);
        std::exit(1);
      }
      cfg.sparse_churn_batch = std::strcmp(value, "1") == 0;
    } else if (flag == "--zipf") {
      cfg.zipf = std::atof(value);
      if (!(std::isfinite(cfg.zipf) && cfg.zipf >= 0.0)) {
        std::fprintf(stderr, "--zipf must be a finite skew >= 0, got %s\n",
                     value);
        std::exit(1);
      }
    } else if (flag == "--workload-objects") {
      cfg.workload_objects = parse_u64_flag("--workload-objects", value);
      if (cfg.workload_objects > (std::uint64_t{1} << 26)) {
        std::fprintf(stderr, "--workload-objects must be <= 2^26, got %s\n",
                     value);
        std::exit(1);
      }
    } else if (flag == "--cache-entries") {
      cfg.cache_entries = std::atoi(value);
      if (cfg.cache_entries < 0 || cfg.cache_entries > 1024) {
        std::fprintf(stderr, "--cache-entries must be in [0, 1024], got %s\n",
                     value);
        std::exit(1);
      }
    } else if (flag == "--replicas") {
      cfg.replicas = std::atoi(value);
      if (cfg.replicas < 1 || cfg.replicas > 64) {
        std::fprintf(stderr, "--replicas must be in [1, 64], got %s\n",
                     value);
        std::exit(1);
      }
    } else if (flag == "--pd") {
      cfg.pd = std::atof(value);
      if (!(cfg.pd > 0.0 && cfg.pd < 1.0)) {
        std::fprintf(stderr, "--pd must be in (0, 1), got %s\n", value);
        std::exit(1);
      }
    } else if (flag == "--pr") {
      cfg.pr = std::atof(value);
      if (!(cfg.pr > 0.0 && cfg.pr < 1.0)) {
        std::fprintf(stderr, "--pr must be in (0, 1), got %s\n", value);
        std::exit(1);
      }
    } else if (flag == "--refresh") {
      cfg.refresh = std::atoi(value);
      if (cfg.refresh < 1) {
        std::fprintf(stderr, "--refresh must be >= 1, got %s\n", value);
        std::exit(1);
      }
    } else if (flag == "--pin") {
      cfg.pin = std::atoi(value) != 0;
    } else if (flag == "--trace-out") {
      cfg.trace_out = value;
    } else if (flag == "--obs") {
      if (std::strcmp(value, "0") != 0 && std::strcmp(value, "1") != 0) {
        std::fprintf(stderr, "--obs must be 0 or 1, got %s\n", value);
        std::exit(1);
      }
      cfg.obs = std::strcmp(value, "1") == 0;
    } else if (flag == "--geometry") {
      if (std::strcmp(value, "all") == 0) {
        cfg.geometries = {"ring", "xor", "tree", "hypercube", "symphony"};
      } else {
        cfg.geometries = {value};
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      std::exit(1);
    }
  }
  if (cfg.pd + cfg.pr > 1.0) {
    std::fprintf(stderr, "--pd + --pr must not exceed 1, got %.6f\n",
                 cfg.pd + cfg.pr);
    std::exit(1);
  }
  return cfg;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// The observability column block every section appends: the six per-phase
// CPU-second columns (summed across shards -- timing, exempt from the
// cross-thread determinism pairing) followed by the exact-integer
// route-failure taxonomy, which IS gated.  hop_limit_hits keeps its
// pre-taxonomy column name for bench-trajectory continuity;
// fail_cache_dead_owner is an invariant canary -- the static engine
// resolves cached paths against the same frozen failure mask that filled
// the cache, so it must stay 0.
std::string obs_columns(const obs::PhaseProfile& profile,
                        const obs::FailureTaxonomy& failures) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "\"phase_world_build_s\":%.6f,\"phase_lifecycle_s\":%.6f,"
      "\"phase_refresh_repair_s\":%.6f,\"phase_route_s\":%.6f,"
      "\"phase_commit_s\":%.6f,\"phase_merge_s\":%.6f,"
      "\"fail_dead_entry\":%llu,\"hop_limit_hits\":%llu,"
      "\"fail_holder_departed\":%llu,\"fail_succ_collapse\":%llu,"
      "\"fail_cache_dead_owner\":%llu",
      profile[obs::Phase::kWorldBuild], profile[obs::Phase::kLifecycle],
      profile[obs::Phase::kRefreshRepair], profile[obs::Phase::kRoute],
      profile[obs::Phase::kMembershipCommit], profile[obs::Phase::kMerge],
      static_cast<unsigned long long>(
          failures[obs::RouteFailure::kDeadEntry]),
      static_cast<unsigned long long>(
          failures[obs::RouteFailure::kHopLimit]),
      static_cast<unsigned long long>(
          failures[obs::RouteFailure::kHolderDeparted]),
      static_cast<unsigned long long>(
          failures[obs::RouteFailure::kSuccessorCollapse]),
      static_cast<unsigned long long>(
          failures[obs::RouteFailure::kCacheDeadOwner]));
  return buf;
}

void emit(const Config& cfg, const std::string& geometry, const char* path,
          unsigned threads, double seconds, double routability,
          double speedup, bool identical, const obs::PhaseProfile& profile,
          const obs::FailureTaxonomy& failures) {
  std::printf(
      "{\"bench\":\"perf_simulator\",\"geometry\":\"%s\",\"path\":\"%s\","
      "\"threads\":%u,\"sockets\":%u,\"pinned\":%s,\"n\":%llu,\"q\":%.6f,"
      "\"pairs\":%llu,\"seed\":%llu,"
      "\"seconds\":%.6f,\"routes_per_sec\":%.1f,\"speedup_vs_seed\":%.3f,"
      "\"routability\":%.6f,%s,\"identical_across_threads\":%s}\n",
      geometry.c_str(), path, threads, sim::topology().nodes(),
      cfg.pin ? "true" : "false",
      static_cast<unsigned long long>(std::uint64_t{1} << cfg.bits), cfg.q,
      static_cast<unsigned long long>(cfg.pairs),
      static_cast<unsigned long long>(cfg.seed), seconds,
      static_cast<double>(cfg.pairs) / seconds, speedup, routability,
      obs_columns(profile, failures).c_str(), identical ? "true" : "false");
}

bool identical_estimates(const sim::RoutabilityEstimate& a,
                         const sim::RoutabilityEstimate& b) {
  return a.routed.successes == b.routed.successes &&
         a.routed.trials == b.routed.trials &&
         a.hops.count() == b.hops.count() && a.hops.sum() == b.hops.sum() &&
         a.hops.sum_squares() == b.hops.sum_squares() &&
         a.hops.min() == b.hops.min() && a.hops.max() == b.hops.max() &&
         a.failures == b.failures;
}

void emit_sparse(const Config& cfg, const char* geometry, const char* path,
                 unsigned threads, std::uint64_t n, double build_seconds,
                 double seconds, double routability, double speedup,
                 bool identical, const obs::PhaseProfile& profile,
                 const obs::FailureTaxonomy& failures) {
  std::printf(
      "{\"bench\":\"perf_simulator\",\"section\":\"sparse\","
      "\"geometry\":\"%s\",\"path\":\"%s\",\"threads\":%u,\"sockets\":%u,"
      "\"pinned\":%s,\"n\":%llu,"
      "\"bits\":%d,\"q\":%.6f,\"pairs\":%llu,\"seed\":%llu,"
      "\"build_seconds\":%.6f,\"seconds\":%.6f,\"routes_per_sec\":%.1f,"
      "\"speedup_vs_virtual\":%.3f,\"routability\":%.6f,%s,"
      "\"identical_across_threads\":%s}\n",
      geometry, path, threads, sim::topology().nodes(),
      cfg.pin ? "true" : "false", static_cast<unsigned long long>(n),
      cfg.sparse_bits, cfg.q, static_cast<unsigned long long>(cfg.pairs),
      static_cast<unsigned long long>(cfg.seed), build_seconds, seconds,
      static_cast<double>(cfg.pairs) / seconds, speedup, routability,
      obs_columns(profile, failures).c_str(), identical ? "true" : "false");
}

/// Runs the sparse N-grid sweep; returns false when a parallel estimate
/// differed across thread counts.
bool run_sparse_section(const Config& cfg, obs::Trace* trace) {
  bool all_identical = true;
  std::vector<std::uint64_t> grid;
  for (const std::uint64_t n :
       {std::uint64_t{1} << 14, std::uint64_t{1} << 17, std::uint64_t{1} << 20}) {
    if (n <= cfg.sparse_n_max) {
      grid.push_back(n);
    }
  }
  for (const std::uint64_t n : grid) {
    // One id sample per grid point, shared by both geometries (the same
    // seed would reproduce the identical sorted-id set anyway).
    math::Rng space_rng(cfg.seed + 10);
    const sparse::SparseIdSpace space(cfg.sparse_bits, n, space_rng);
    for (const char* geometry : {"sparse-ring", "sparse-xor"}) {
      math::Rng build_rng(cfg.seed + 14);
      auto build_start = std::chrono::steady_clock::now();
      std::unique_ptr<sparse::SparseOverlay> overlay;
      if (std::strcmp(geometry, "sparse-ring") == 0) {
        overlay = std::make_unique<sparse::SparseChordOverlay>(space);
      } else {
        overlay =
            std::make_unique<sparse::SparseKademliaOverlay>(space, build_rng);
      }
      const double build_seconds = seconds_since(build_start);
      math::Rng fail_rng(cfg.seed + 11);
      const sparse::SparseFailure failures(space, cfg.q, fail_rng);

      // Virtual single-threaded baseline (the pre-flattening seed shape):
      // measured at the small and mid grid points; at 2^20 it would
      // dominate the harness wall time for no extra information.
      double virtual_seconds = 0.0;
      if (n <= (std::uint64_t{1} << 17)) {
        math::Rng virtual_rng(cfg.seed + 12);
        const auto start = std::chrono::steady_clock::now();
        const auto estimate = sparse::estimate_routability(
            *overlay, failures, cfg.pairs, virtual_rng);
        virtual_seconds = seconds_since(start);
        // The virtual baseline predates the phase hooks: its phase columns
        // are zero, but its taxonomy comes from the same estimate struct.
        emit_sparse(cfg, geometry, "virtual", 1, n, build_seconds,
                    virtual_seconds, estimate.routability(), 1.0, true,
                    obs::PhaseProfile{}, estimate.failures);
      }

      const math::Rng engine_rng(cfg.seed + 12);
      bool have_reference = false;
      sparse::SparseEstimate reference;
      for (unsigned threads : cfg.threads) {
        obs::PhaseProfile profile;
        sparse::SparseParallelOptions options{
            .pairs = cfg.pairs,
            .threads = threads,
            .pin_workers = cfg.pin,
            .numa_replicate_tables = cfg.pin};
        options.profile = cfg.obs ? &profile : nullptr;
        options.trace = cfg.obs ? trace : nullptr;
        const auto start = std::chrono::steady_clock::now();
        const auto estimate = sparse::estimate_routability_parallel(
            *overlay, failures, options, engine_rng);
        const double seconds = seconds_since(start);
        const bool identical = !have_reference || reference == estimate;
        if (!have_reference) {
          reference = estimate;
          have_reference = true;
        }
        all_identical = all_identical && identical;
        emit_sparse(cfg, geometry, "parallel", threads, n, build_seconds,
                    seconds, estimate.routability(),
                    virtual_seconds > 0.0 ? virtual_seconds / seconds : 0.0,
                    identical, profile, estimate.failures);
      }
    }
  }
  return all_identical;
}

void emit_sparse_workload(const Config& cfg, unsigned threads,
                          std::uint64_t n, std::uint64_t objects,
                          int cache_entries, double seconds,
                          const sparse::SparseWorkloadReport& report,
                          bool identical,
                          const obs::PhaseProfile& profile) {
  std::printf(
      "{\"bench\":\"perf_simulator\",\"section\":\"sparse_workload\","
      "\"geometry\":\"sparse-ring\",\"threads\":%u,\"sockets\":%u,"
      "\"pinned\":%s,\"n\":%llu,\"bits\":%d,\"q\":%.6f,\"pairs\":%llu,"
      "\"zipf\":%.2f,\"objects\":%llu,\"cache_entries\":%d,\"seed\":%llu,"
      "\"seconds\":%.6f,\"routes_per_sec\":%.1f,\"cache_hit_rate\":%.6f,"
      "\"mean_hops\":%.3f,\"load_max\":%llu,\"load_p99\":%llu,"
      "\"load_cv\":%.6f,\"routability\":%.6f,%s,"
      "\"identical_across_threads\":%s}\n",
      threads, sim::topology().nodes(), cfg.pin ? "true" : "false",
      static_cast<unsigned long long>(n), cfg.sparse_bits, cfg.q,
      static_cast<unsigned long long>(cfg.pairs), cfg.zipf,
      static_cast<unsigned long long>(objects), cache_entries,
      static_cast<unsigned long long>(cfg.seed), seconds,
      static_cast<double>(cfg.pairs) / seconds,
      report.estimate.cache_hit_rate(), report.estimate.mean_hops(),
      static_cast<unsigned long long>(report.load.max),
      static_cast<unsigned long long>(report.load.p99), report.load.cv,
      report.estimate.routability(),
      obs_columns(profile, report.estimate.failures).c_str(),
      identical ? "true" : "false");
}

/// Runs the heavy-traffic workload sweep on the sparse ring: Zipf-popular
/// GET targets, per-node load accounting, and the finger-path cache, each
/// grid point measured with caching off (the baseline) and on.  Returns
/// false when an estimate OR a load summary differed across thread counts.
bool run_sparse_workload_section(const Config& cfg, obs::Trace* trace) {
  bool all_identical = true;
  std::vector<std::uint64_t> grid;
  for (const std::uint64_t n :
       {std::uint64_t{1} << 14, std::uint64_t{1} << 17}) {
    if (n <= cfg.sparse_n_max &&
        n <= (std::uint64_t{1} << std::min(cfg.sparse_bits, 26))) {
      grid.push_back(n);
    }
  }
  std::vector<int> cache_sweep = {0};
  if (cfg.cache_entries > 0) {
    cache_sweep.push_back(cfg.cache_entries);
  }
  for (const std::uint64_t n : grid) {
    math::Rng space_rng(cfg.seed + 10);
    const sparse::SparseIdSpace space(cfg.sparse_bits, n, space_rng);
    const sparse::SparseChordOverlay overlay(space);
    math::Rng fail_rng(cfg.seed + 11);
    const sparse::SparseFailure failures(space, cfg.q, fail_rng);
    const math::Rng engine_rng(cfg.seed + 13);
    for (const int cache_entries : cache_sweep) {
      bool have_reference = false;
      sparse::SparseWorkloadReport reference;
      for (unsigned threads : cfg.threads) {
        obs::PhaseProfile profile;
        sparse::SparseParallelOptions options{
            .pairs = cfg.pairs,
            .threads = threads,
            // Fixed shard count: results are a function of (seed, shards),
            // and per-shard caches warm with the shard's draw stream.
            .shards = 64,
            .pin_workers = cfg.pin,
            .numa_replicate_tables = cfg.pin};
        options.workload.zipf_s = cfg.zipf;
        options.workload.objects = cfg.workload_objects;
        options.workload.cache_entries = cache_entries;
        options.workload.record_load = true;
        options.profile = cfg.obs ? &profile : nullptr;
        options.trace = cfg.obs ? trace : nullptr;
        const auto start = std::chrono::steady_clock::now();
        const auto report = sparse::estimate_workload_parallel(
            overlay, failures, options, engine_rng);
        const double seconds = seconds_since(start);
        const bool identical = !have_reference ||
                               (reference.estimate == report.estimate &&
                                reference.load == report.load);
        if (!have_reference) {
          reference = report;
          have_reference = true;
        }
        all_identical = all_identical && identical;
        const std::uint64_t objects =
            cfg.workload_objects != 0 ? cfg.workload_objects
                                      : failures.alive_count();
        emit_sparse_workload(cfg, threads, n, objects, cache_entries, seconds,
                             report, identical, profile);
      }
    }
  }
  return all_identical;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = parse_args(argc, argv);
  const sim::IdSpace space(cfg.bits);
  bool all_identical = true;
  // One timeline for the whole harness run (one lane per worker thread);
  // null when --trace-out is unset, which keeps the engines' span hooks
  // clock-free.
  obs::Trace trace_store;
  obs::Trace* const trace = cfg.trace_out.empty() ? nullptr : &trace_store;

  for (const std::string& geometry : cfg.geometries) {
    math::Rng build_rng(cfg.seed);
    const auto overlay = bench::make_overlay(geometry, space, build_rng);
    if (overlay == nullptr) {
      std::fprintf(stderr, "unknown geometry: %s\n", geometry.c_str());
      return 1;
    }
    math::Rng fail_rng(cfg.seed + 1);
    const sim::FailureScenario failures(space, cfg.q, fail_rng);

    // Seed path: sequential sampling + virtual-dispatch routing.
    math::Rng seed_rng(cfg.seed + 2);
    auto start = std::chrono::steady_clock::now();
    const auto seed_estimate = sim::estimate_routability(
        *overlay, failures, {.pairs = cfg.pairs}, seed_rng);
    const double seed_seconds = seconds_since(start);
    // The seed path predates the phase hooks: zero phase columns, but the
    // taxonomy comes from the same estimate struct as every other path.
    emit(cfg, geometry, "seed", 1, seed_seconds, seed_estimate.routability(),
         1.0, true, obs::PhaseProfile{}, seed_estimate.failures);

    // Parallel engine across the thread sweep; estimates must agree
    // bit-for-bit at every thread count.
    const math::Rng engine_rng(cfg.seed + 2);
    bool have_reference = false;
    sim::RoutabilityEstimate reference;
    for (unsigned threads : cfg.threads) {
      obs::PhaseProfile profile;
      sim::ParallelOptions options{.pairs = cfg.pairs,
                                   .threads = threads,
                                   .pin_workers = cfg.pin};
      options.profile = cfg.obs ? &profile : nullptr;
      options.trace = cfg.obs ? trace : nullptr;
      start = std::chrono::steady_clock::now();
      const auto estimate = sim::estimate_routability_parallel(
          *overlay, failures, options, engine_rng);
      const double seconds = seconds_since(start);
      const bool identical =
          !have_reference || identical_estimates(reference, estimate);
      if (!have_reference) {
        reference = estimate;
        have_reference = true;
      }
      all_identical = all_identical && identical;
      emit(cfg, geometry, "parallel", threads, seconds,
           estimate.routability(), seed_seconds / seconds, identical,
           profile, estimate.failures);
    }
  }

  // Churn-sweep section: sharded XOR trajectories across the same thread
  // sweep.  Routability and every per-round estimate must be bit-identical
  // at every thread count.
  if (cfg.churn_rounds > 0) {
    const sim::IdSpace churn_space(cfg.churn_bits);
    const churn::ChurnParams params{.death_per_round = cfg.pd,
                                    .rebirth_per_round = cfg.pr,
                                    .refresh_interval = cfg.refresh};
    const churn::TrajectoryOptions base{.warmup_rounds = 30,
                                        .measured_rounds = cfg.churn_rounds,
                                        .pairs_per_round = 2500,
                                        .shards = 8};
    const math::Rng churn_rng(cfg.seed + 3);
    bool have_reference = false;
    churn::TrajectoryResult reference;
    for (unsigned threads : cfg.threads) {
      obs::PhaseProfile profile;
      churn::TrajectoryOptions options = base;
      options.threads = threads;
      options.pin_workers = cfg.pin;
      options.profile = cfg.obs ? &profile : nullptr;
      options.trace = cfg.obs ? trace : nullptr;
      const auto start = std::chrono::steady_clock::now();
      const auto result = churn::run_churn_trajectory(
          churn::TrajectoryGeometry::kXor, churn_space, params, options,
          churn_rng);
      const double seconds = seconds_since(start);
      bool identical = true;
      if (have_reference) {
        identical =
            identical_estimates(reference.overall, result.overall) &&
            reference.per_round.size() == result.per_round.size();
        for (std::size_t r = 0; identical && r < result.per_round.size();
             ++r) {
          identical =
              identical_estimates(reference.per_round[r], result.per_round[r]);
        }
      } else {
        reference = result;
        have_reference = true;
      }
      all_identical = all_identical && identical;
      const double shard_rounds =
          static_cast<double>(result.shards) *
          static_cast<double>(base.warmup_rounds + cfg.churn_rounds);
      const auto routes =
          static_cast<unsigned long long>(result.overall.routed.trials);
      // Route-phase throughput: routes over the route phase's own summed
      // CPU-seconds -- the honest figure the full-wall routes_per_sec
      // (diluted by warmup stepping) cannot give.
      const double route_s = profile[obs::Phase::kRoute];
      std::printf(
          "{\"bench\":\"perf_simulator\",\"section\":\"churn\","
          "\"geometry\":\"xor\",\"threads\":%u,\"sockets\":%u,"
          "\"pinned\":%s,\"n\":%llu,\"shards\":%llu,"
          "\"warmup_rounds\":%d,\"rounds\":%d,\"pairs_per_round\":%llu,"
          "\"q_eff\":%.6f,\"seed\":%llu,\"seconds\":%.6f,"
          "\"shard_rounds_per_sec\":%.1f,\"routes\":%llu,"
          "\"routes_per_sec\":%.1f,\"route_phase_routes_per_sec\":%.1f,"
          "%s,"
          "\"routability\":%.6f,\"identical_across_threads\":%s}\n",
          threads, sim::topology().nodes(), cfg.pin ? "true" : "false",
          static_cast<unsigned long long>(churn_space.size()),
          static_cast<unsigned long long>(result.shards),
          base.warmup_rounds, cfg.churn_rounds,
          static_cast<unsigned long long>(base.pairs_per_round),
          churn::effective_q(params),
          static_cast<unsigned long long>(cfg.seed), seconds,
          shard_rounds / seconds, routes,
          static_cast<double>(routes) / seconds,
          route_s > 0.0 ? static_cast<double>(routes) / route_s : 0.0,
          obs_columns(profile, result.overall.failures).c_str(),
          result.overall.routability(), identical ? "true" : "false");
    }
  }

  // Sparse-sweep section: the flattened sparse kernels on the sharded
  // engine across an N grid up to 10^6 nodes in a 2^sparse_bits key space.
  if (cfg.sparse_n_max > 0) {
    all_identical = run_sparse_section(cfg, trace) && all_identical;
    // Heavy-traffic workload sweep on the same spaces: Zipf GETs, per-node
    // load, path caching off/on; estimates AND load summaries are
    // determinism-gated.
    all_identical = run_sparse_workload_section(cfg, trace) && all_identical;
  }

  // Sparse-churn section: dynamic membership (joins drawing fresh ids,
  // leaves, successor-list repair, join announcement) on shard-private
  // replica worlds; per-round and pooled estimates must be bit-identical
  // at every thread count.
  if (cfg.sparse_churn_n > 0 && cfg.sparse_churn_rounds > 0) {
    const churn::ChurnParams params{.death_per_round = cfg.pd,
                                    .rebirth_per_round = cfg.pr,
                                    .refresh_interval = cfg.refresh};
    // Three determinism-gated configurations: the round-synchronous
    // single-contact geometric baseline, the full dynamic realism stack
    // (in-flight measurement, k = 4 buckets, heavy-tailed Pareto sessions)
    // -- Kademlia for the latter so the bucket machinery is on the measured
    // path -- and the heavy-traffic GET mode: Zipf-popular objects fetched
    // from an r-way successor-list replica group, with per-slot load
    // accounting, so availability-under-churn x replication is tracked.
    struct SparseChurnMode {
      churn::SparseChurnGeometry geometry;
      bool inflight;
      int bucket_k;
      churn::SessionKind session;
      int replicas;
      double zipf_s;
    };
    const SparseChurnMode modes[] = {
        {churn::SparseChurnGeometry::kChord, false, 1,
         churn::SessionKind::kGeometric, 1, 0.0},
        {churn::SparseChurnGeometry::kKademlia, true, 4,
         churn::SessionKind::kPareto, 1, 0.0},
        {churn::SparseChurnGeometry::kChord, false, 1,
         churn::SessionKind::kGeometric, cfg.replicas, cfg.zipf},
    };
    for (const SparseChurnMode& mode : modes) {
      churn::SparseChurnConfig config{
          .bits = 32,
          .capacity =
              churn::capacity_for_population(cfg.sparse_churn_n, params),
          .successors = 4,
          .shortcuts = 6};
      config.bucket_k = mode.bucket_k;
      config.session = churn::SessionModel{.kind = mode.session,
                                           .pareto_alpha = 2.0};
      config.replicas = mode.replicas;
      config.zipf_s = mode.zipf_s;
      config.objects = cfg.workload_objects;
      churn::TrajectoryOptions base{
          .warmup_rounds = 12,
          .measured_rounds = cfg.sparse_churn_rounds,
          .pairs_per_round = 2000,
          .shards = 8};
      base.inflight = mode.inflight;
      base.batch_routes = cfg.sparse_churn_batch;
      const double q_eff = churn::effective_q(params);
      const double q_nr = churn::effective_q_no_return(params, config.session);
      const math::Rng churn_rng(cfg.seed + 4);
      bool have_reference = false;
      churn::SparseChurnResult reference;
      for (unsigned threads : cfg.threads) {
        obs::PhaseProfile profile;
        churn::TrajectoryOptions options = base;
        options.threads = threads;
        options.pin_workers = cfg.pin;
        options.profile = cfg.obs ? &profile : nullptr;
        options.trace = cfg.obs ? trace : nullptr;
        const auto start = std::chrono::steady_clock::now();
        const auto result = churn::run_sparse_churn_trajectory(
            mode.geometry, config, params, options, churn_rng);
        const double seconds = seconds_since(start);
        bool identical = true;
        if (have_reference) {
          identical = reference.overall == result.overall &&
                      reference.load_max == result.load_max &&
                      reference.load_p99 == result.load_p99 &&
                      reference.load_cv == result.load_cv &&
                      reference.per_round.size() == result.per_round.size();
          for (std::size_t r = 0; identical && r < result.per_round.size();
               ++r) {
            identical = reference.per_round[r] == result.per_round[r];
          }
        } else {
          reference = result;
          have_reference = true;
        }
        all_identical = all_identical && identical;
        const double shard_rounds =
            static_cast<double>(result.shards) *
            static_cast<double>(base.warmup_rounds + cfg.sparse_churn_rounds);
        const auto routes =
            static_cast<unsigned long long>(result.overall.attempts);
        const double route_s = profile[obs::Phase::kRoute];
        std::printf(
            "{\"bench\":\"perf_simulator\",\"section\":\"sparse_churn\","
            "\"geometry\":\"%s\",\"threads\":%u,\"sockets\":%u,"
            "\"pinned\":%s,\"n0\":%llu,"
            "\"capacity\":%llu,\"bits\":32,\"succ\":%d,"
            "\"inflight\":%s,\"batched\":%s,\"k\":%d,\"session\":\"%s\","
            "\"shards\":%llu,"
            "\"warmup_rounds\":%d,\"rounds\":%d,\"pairs_per_round\":%llu,"
            "\"pd\":%.6f,\"pr\":%.6f,\"refresh\":%d,\"rho\":%.2f,"
            "\"q_eff\":%.6f,\"q_nr\":%.6f,\"replicas\":%d,\"zipf\":%.2f,"
            "\"seed\":%llu,\"seconds\":%.6f,"
            "\"shard_rounds_per_sec\":%.1f,\"routes\":%llu,"
            "\"routes_per_sec\":%.1f,\"route_phase_routes_per_sec\":%.1f,"
            "%s,"
            "\"routability\":%.6f,\"availability\":%.6f,"
            "\"load_max\":%llu,\"load_p99\":%.1f,\"load_cv\":%.6f,"
            "\"mean_population\":%.1f,"
            "\"identical_across_threads\":%s}\n",
            churn::to_string(mode.geometry), threads, sim::topology().nodes(),
            cfg.pin ? "true" : "false",
            static_cast<unsigned long long>(cfg.sparse_churn_n),
            static_cast<unsigned long long>(config.capacity),
            config.successors, mode.inflight ? "true" : "false",
            !mode.inflight && cfg.sparse_churn_batch ? "true" : "false",
            config.bucket_k, churn::to_string(mode.session),
            static_cast<unsigned long long>(result.shards),
            base.warmup_rounds, cfg.sparse_churn_rounds,
            static_cast<unsigned long long>(base.pairs_per_round),
            params.death_per_round, params.rebirth_per_round,
            params.refresh_interval, base.repair_probability, q_eff, q_nr,
            config.replicas, config.zipf_s,
            static_cast<unsigned long long>(cfg.seed), seconds,
            shard_rounds / seconds, routes,
            static_cast<double>(routes) / seconds,
            route_s > 0.0 ? static_cast<double>(routes) / route_s : 0.0,
            obs_columns(profile, result.overall.failures).c_str(),
            result.overall.routability(), result.overall.availability(),
            static_cast<unsigned long long>(result.load_max), result.load_p99,
            result.load_cv, result.mean_population,
            identical ? "true" : "false");
      }
    }
  }

  if (trace != nullptr && !trace->write_chrome_trace(cfg.trace_out)) {
    std::fprintf(stderr, "FAIL: cannot write trace to %s\n",
                 cfg.trace_out.c_str());
    return 1;
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel estimates differ across thread counts\n");
    return 1;
  }
  return 0;
}
