// google-benchmark microbenchmarks for the simulator substrate: overlay
// construction and routing throughput at the paper's N = 2^16 scale.
#include <benchmark/benchmark.h>

#include <optional>

#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/symphony_overlay.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace {

using namespace dht;

constexpr int kBits = 16;

void BM_BuildPrefixTable(benchmark::State& state) {
  const sim::IdSpace space(kBits);
  math::Rng rng(1);
  for (auto _ : state) {
    const sim::PrefixTable table(space, rng);
    benchmark::DoNotOptimize(table.neighbor(0, 1));
  }
}
BENCHMARK(BM_BuildPrefixTable)->Unit(benchmark::kMillisecond);

void BM_BuildChordRandomized(benchmark::State& state) {
  const sim::IdSpace space(kBits);
  math::Rng rng(2);
  for (auto _ : state) {
    const sim::ChordOverlay overlay(space, rng,
                                    sim::ChordFingers::kRandomized);
    benchmark::DoNotOptimize(overlay.finger(0, 1));
  }
}
BENCHMARK(BM_BuildChordRandomized)->Unit(benchmark::kMillisecond);

template <typename OverlayT>
void route_throughput(benchmark::State& state, const OverlayT& overlay,
                      double q) {
  math::Rng fail_rng(3);
  const sim::FailureScenario failures(overlay.space(), q, fail_rng);
  const sim::Router router(overlay, failures);
  math::Rng rng(4);
  std::uint64_t routes = 0;
  for (auto _ : state) {
    const sim::NodeId s = failures.sample_alive(rng);
    sim::NodeId t = failures.sample_alive(rng);
    while (t == s) {
      t = failures.sample_alive(rng);
    }
    benchmark::DoNotOptimize(router.route(s, t, rng).hops);
    ++routes;
  }
  state.SetItemsProcessed(static_cast<int64_t>(routes));
}

void BM_RouteTree(benchmark::State& state) {
  const sim::IdSpace space(kBits);
  math::Rng rng(5);
  const sim::TreeOverlay overlay(space, rng);
  route_throughput(state, overlay, 0.1);
}
BENCHMARK(BM_RouteTree);

void BM_RouteXor(benchmark::State& state) {
  const sim::IdSpace space(kBits);
  math::Rng rng(6);
  const sim::XorOverlay overlay(space, rng);
  route_throughput(state, overlay, 0.1);
}
BENCHMARK(BM_RouteXor);

void BM_RouteHypercube(benchmark::State& state) {
  const sim::IdSpace space(kBits);
  const sim::HypercubeOverlay overlay(space);
  route_throughput(state, overlay, 0.1);
}
BENCHMARK(BM_RouteHypercube);

void BM_RouteChord(benchmark::State& state) {
  const sim::IdSpace space(kBits);
  math::Rng rng(7);
  const sim::ChordOverlay overlay(space, rng);
  route_throughput(state, overlay, 0.1);
}
BENCHMARK(BM_RouteChord);

void BM_RouteSymphony(benchmark::State& state) {
  const sim::IdSpace space(kBits);
  math::Rng rng(8);
  const sim::SymphonyOverlay overlay(space, 1, 1, rng);
  route_throughput(state, overlay, 0.1);
}
BENCHMARK(BM_RouteSymphony);

void BM_EstimateRoutability10k(benchmark::State& state) {
  const sim::IdSpace space(kBits);
  const sim::HypercubeOverlay overlay(space);
  math::Rng fail_rng(9);
  const sim::FailureScenario failures(space, 0.2, fail_rng);
  math::Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::estimate_routability(overlay, failures, {.pairs = 10000}, rng)
            .routability());
  }
}
BENCHMARK(BM_EstimateRoutability10k)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
