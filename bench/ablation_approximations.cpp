// Ablation: the paper's closed-form approximations vs the exact series.
//
// Eq. 6 (XOR) is approximated in the paper via 1 - x ~= e^{-x}; Eq. 7
// (Symphony) truncates the suboptimal-hop count at ceil(d/(1-q)).  This
// harness quantifies (a) the quality of the Eq. 6 approximation across q,
// and (b) the sensitivity of Eq. 7 to the hop-cap choice -- the two places
// where the paper trades exactness for tractability.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/report.hpp"
#include "core/symphony_geometry.hpp"
#include "core/xor_geometry.hpp"
#include "math/stable.hpp"

int main() {
  using namespace dht;
  const core::XorGeometry xr;

  core::Table eq6("Eq. 6 ablation -- exact XOR Q(m) vs the paper's "
                  "e^{-x} approximation");
  eq6.set_header({"q", "m", "exact", "approx", "rel err %"});
  for (double q : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    for (int m : {2, 4, 8, 16}) {
      const double exact = xr.phase_failure(m, q, 32);
      const double approx = core::XorGeometry::phase_failure_approximation(m, q);
      const double rel =
          exact > 0.0 ? 100.0 * std::abs(approx - exact) / exact : 0.0;
      eq6.add_row({strfmt("%.2f", q), strfmt("%d", m),
                   strfmt("%.3e", exact), strfmt("%.3e", approx),
                   strfmt("%.1f", rel)});
    }
  }
  eq6.add_note(
      "the approximation is excellent for small q (the regime the paper "
      "uses it in) and deteriorates -- eventually clamping -- as q grows");
  eq6.print(std::cout);
  std::cout << '\n';

  core::Table eq7("Eq. 7 ablation -- Symphony Q vs the suboptimal-hop cap "
                  "(d = 16, kn = ks = 1)");
  eq7.set_header({"q", "cap d/(1-q) (paper)", "cap d", "cap 4d",
                  "cap infinite"});
  for (double q : {0.1, 0.2, 0.3, 0.5, 0.7}) {
    const int d = 16;
    const double y = math::pow_q(q, 2.0);
    const double x = 1.0 / d;
    const double z = 1.0 - x - y;
    const auto q_with_cap = [&](double cap_terms) {
      return y * math::geometric_sum(z, cap_terms);
    };
    const double paper_cap = std::ceil(d / (1.0 - q)) + 1.0;
    eq7.add_row({strfmt("%.1f", q), strfmt("%.4f", q_with_cap(paper_cap)),
                 strfmt("%.4f", q_with_cap(d + 1.0)),
                 strfmt("%.4f", q_with_cap(4.0 * d + 1.0)),
                 strfmt("%.4f", y / (1.0 - z))});
  }
  eq7.add_note(
      "the cap matters: the infinite-cap limit y/(x+y) is the failure "
      "probability of the advance-vs-death race; the paper's d/(1-q) cap "
      "sits between it and the bare d cap");
  eq7.print(std::cout);
  return 0;
}
