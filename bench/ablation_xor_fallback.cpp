// Ablation: the value of XOR's fallback rule (paper Section 3.3).
//
// Tree and XOR share the identical neighbor structure; the only difference
// is that XOR may correct a lower-order differing bit when the optimal
// neighbor is dead.  Running both forwarding rules over the *same* tables
// and the *same* failure draws isolates the fallback's contribution --
// which is exactly the gap between the tree and XOR curves of Fig. 6(a).
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace {
constexpr int kBits = 14;
constexpr std::uint64_t kPairs = 20000;
}  // namespace

int main() {
  using namespace dht;
  const sim::IdSpace space(kBits);
  math::Rng build_rng(77);
  const auto table_ptr = std::make_shared<const sim::PrefixTable>(space,
                                                                  build_rng);
  const sim::TreeOverlay tree(space, table_ptr);
  const sim::XorOverlay xr(space, table_ptr);
  const auto tree_geo = core::make_geometry(core::GeometryKind::kTree);
  const auto xor_geo = core::make_geometry(core::GeometryKind::kXor);

  core::Table table(strfmt(
      "XOR fallback ablation -- identical tables and failures, N = 2^%d: "
      "routability %% with and without fallback",
      kBits));
  table.set_header({"q%", "tree sim (no fallback)", "xor sim (fallback)",
                    "fallback gain", "tree ana", "xor ana"});
  std::uint64_t seed = 300;
  for (double q : bench::paper_q_grid()) {
    double r_tree = 1.0;
    double r_xor = 1.0;
    if (q > 0.0) {
      math::Rng fail_rng(seed);
      const sim::FailureScenario failures(space, q, fail_rng);
      math::Rng rng_a(seed + 1);
      math::Rng rng_b(seed + 1);  // identical pair sampling
      r_tree = sim::estimate_routability(tree, failures, {.pairs = kPairs},
                                         rng_a)
                   .routability();
      r_xor = sim::estimate_routability(xr, failures, {.pairs = kPairs},
                                        rng_b)
                  .routability();
    }
    table.add_row(
        {bench::pct(q), bench::pct(r_tree), bench::pct(r_xor),
         bench::pct(r_xor - r_tree),
         bench::pct(core::evaluate_routability(*tree_geo, kBits, q)
                        .conditional_success),
         bench::pct(core::evaluate_routability(*xor_geo, kBits, q)
                        .conditional_success)});
    seed += 10;
  }
  table.add_note(
      "the fallback gain peaks in the mid-q knee -- the region where "
      "Kademlia's XOR metric buys the most resilience over plain prefix "
      "routing for free (same state, same neighbors)");
  table.print(std::cout);
  return 0;
}
