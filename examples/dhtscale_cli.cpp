// dhtscale_cli -- the library's command-line front end.
//
// Subcommands:
//   analyze <geometry> <d> <q>        one (d, q) point: routability, limits
//   sweep-q <geometry> <d>            failure sweep (the Fig. 6 axis)
//   sweep-n <geometry> <q>            size sweep (the Fig. 7(b) axis)
//   scalability [q]                   Section 5 verdict table
//   simulate <geometry> <d> <q> [pairs] [seed] [--threads N]
//                                     static-resilience measurement on the
//                                     parallel deterministic engine
//   sparse <geometry> <bits> <n> <q> [pairs] [seed] [--threads N]
//         [--shards S] [--zipf S] [--objects M] [--cache E] [--load]
//                                     N nodes scattered in a 2^bits key
//                                     space (ring | xor | symphony) on the
//                                     flattened sparse parallel engine, vs
//                                     the density-reduction prediction at
//                                     d' = log2 N.  --zipf draws GET
//                                     targets as the owners of Zipf-popular
//                                     objects (--objects, default one per
//                                     alive node), --cache adds E per-node
//                                     path-cache slots, --load reports the
//                                     per-node load distribution
//   churn <geometry> <d> <pd> <pr> <R> [rounds] [pairs] [seed]
//         [--threads N] [--shards S] [--rho RHO]
//                                     sharded dynamic trajectories (xor |
//                                     tree | ring) vs the static model at
//                                     q_eff
//   sparse-churn <geometry> <bits> <n0> <pd> <pr> <R> [rounds] [pairs]
//         [seed] [--threads N] [--shards S] [--rho RHO] [--succ S]
//         [--announce A] [--k K] [--inflight] [--scalar-routes]
//         [--session geometric|pareto]
//         [--alpha A] [--replicas r] [--zipf S] [--objects M]
//                                     dynamic membership: N0 stationary
//                                     nodes in a 2^bits key space with
//                                     joins/leaves, successor lists, join
//                                     announcement, k-bucket Kademlia
//                                     (--k), in-flight lookup measurement
//                                     (--inflight: the world steps DURING
//                                     each route), and heavy-tailed
//                                     sessions (--session pareto), vs the
//                                     static dense model at d' = log2 N0
//                                     and q_eff / generalized q_nr.
//                                     --replicas measures GET availability
//                                     over an r-way successor replica
//                                     group, --zipf skews GET popularity,
//                                     and both report per-slot load
//   latency <geometry> <d> <q>        chain-predicted hops of survivors
//
// Geometries: tree | hypercube | xor | ring | symphony.
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "churn/sparse_trajectory.hpp"
#include "churn/trajectory.hpp"
#include "common/strfmt.hpp"
#include "sparse/density_analysis.hpp"
#include "sparse/flat_sparse.hpp"
#include "sparse/sparse_chord.hpp"
#include "sparse/sparse_kademlia.hpp"
#include "sparse/sparse_symphony.hpp"
#include "core/latency.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "core/scalability.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/parallel_monte_carlo.hpp"
#include "sim/symphony_overlay.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace {

using namespace dht;

int usage() {
  std::cerr <<
      "usage: dhtscale_cli <command> [...]\n"
      "  analyze <geometry> <d> <q>\n"
      "  sweep-q <geometry> <d>\n"
      "  sweep-n <geometry> <q>\n"
      "  scalability [q]\n"
      "  simulate <geometry> <d> <q> [pairs] [seed] [--threads N]\n"
      "  sparse <geometry> <bits> <n> <q> [pairs] [seed] [--threads N]\n"
      "         [--shards S] [--zipf S] [--objects M] [--cache E] [--load]\n"
      "                 (ring | xor | symphony; N nodes in 2^bits keys)\n"
      "  churn <geometry> <d> <pd> <pr> <R> [rounds] [pairs] [seed]\n"
      "        [--threads N] [--shards S] [--rho RHO]   (xor | tree | ring)\n"
      "  sparse-churn <geometry> <bits> <n0> <pd> <pr> <R> [rounds] [pairs]\n"
      "        [seed] [--threads N] [--shards S] [--rho RHO] [--succ S]\n"
      "        [--announce A] [--k K] [--inflight] [--scalar-routes]\n"
      "        [--session geometric|pareto] [--alpha A]\n"
      "        [--replicas r] [--zipf S] [--objects M]\n"
      "        [--trace-routes K --trace-out FILE]\n"
      "                 (ring | xor | symphony; dynamic membership;\n"
      "                  --trace-routes samples ~K hop-by-hop route\n"
      "                  forensics records into FILE as JSONL -- sync\n"
      "                  mode only, never perturbs the estimates)\n"
      "  latency <geometry> <d> <q>\n"
      "geometries: tree | hypercube | xor | ring | symphony\n";
  return 1;
}

// Boundary validation of the churn lifecycle arguments: a usage-style
// message naming the offending flag, instead of the deep DHT_CHECK throw
// from churn.cpp's check_params surfacing as "error: precondition failed".
bool validate_lifecycle_args(const char* command, double pd, double pr,
                             int refresh) {
  if (!(pd > 0.0 && pd < 1.0)) {
    std::cerr << command << ": <pd> must be in (0, 1), got " << pd << "\n";
    return false;
  }
  if (!(pr > 0.0 && pr < 1.0)) {
    std::cerr << command << ": <pr> must be in (0, 1), got " << pr << "\n";
    return false;
  }
  if (pd + pr > 1.0) {
    std::cerr << command << ": <pd> + <pr> must not exceed 1, got "
              << pd + pr << "\n";
    return false;
  }
  if (refresh < 1) {
    std::cerr << command << ": <R> (--refresh) must be >= 1, got " << refresh
              << "\n";
    return false;
  }
  return true;
}

bool validate_rho(const char* command, double rho) {
  if (!(rho >= 0.0 && rho <= 1.0)) {
    std::cerr << command << ": --rho must be in [0, 1], got " << rho << "\n";
    return false;
  }
  return true;
}

int cmd_analyze(const std::string& name, int d, double q) {
  const auto geometry = core::make_geometry(name);
  const auto point = core::evaluate_routability(*geometry, d, q);
  std::cout << strfmt("geometry:            %s (%s)\n",
                      std::string(geometry->name()).c_str(),
                      std::string(geometry->dht_system()).c_str());
  std::cout << strfmt("N = 2^%d, q = %.4f\n", d, q);
  std::cout << strfmt("routability (Eq. 3): %.6f\n", point.routability);
  std::cout << strfmt("failed paths:        %.6f\n", point.failed_fraction);
  std::cout << strfmt("model exactness:     %s\n",
                      to_string(geometry->exactness()));
  if (q > 0.0) {
    const auto report = core::analyze_scalability(*geometry, q);
    std::cout << strfmt("scalability:         %s (numeric: %s, %s)\n",
                        to_string(report.analytic),
                        math::to_string(report.numeric.verdict),
                        report.numeric_agrees ? "agree" : "DISAGREE");
    std::cout << strfmt("limit routability:   %.6f\n",
                        report.limit_routability);
    std::cout << "argument:            "
              << std::string(geometry->scalability_argument()) << "\n";
  }
  return 0;
}

int cmd_sweep_q(const std::string& name, int d) {
  const auto geometry = core::make_geometry(name);
  core::Table table(
      strfmt("%s: routability vs q at N = 2^%d", name.c_str(), d));
  table.set_header({"q", "routability", "failed_fraction"});
  for (int percent = 0; percent <= 95; percent += 5) {
    const double q = percent / 100.0;
    const auto point = core::evaluate_routability(*geometry, d, q);
    table.add_row({strfmt("%.2f", q), strfmt("%.6f", point.routability),
                   strfmt("%.6f", point.failed_fraction)});
  }
  table.print_csv(std::cout);
  return 0;
}

int cmd_sweep_n(const std::string& name, double q) {
  const auto geometry = core::make_geometry(name);
  core::Table table(
      strfmt("%s: routability vs system size at q = %.2f", name.c_str(), q));
  table.set_header({"d", "N", "routability"});
  for (int d : {4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 64, 80, 100}) {
    const auto point = core::evaluate_routability(*geometry, d, q);
    table.add_row({strfmt("%d", d), strfmt("%.3e", std::exp2(d)),
                   strfmt("%.6f", point.routability)});
  }
  table.add_row({"inf", "inf",
                 strfmt("%.6f", core::limit_routability(*geometry, q))});
  table.print_csv(std::cout);
  return 0;
}

int cmd_scalability(double q) {
  core::Table table(strfmt("scalability under random failure (q = %.2f)", q));
  table.set_header({"geometry", "verdict", "numeric", "limit routability"});
  for (const auto& geometry : core::make_all_geometries()) {
    const auto report = core::analyze_scalability(*geometry, q);
    table.add_row({std::string(geometry->name()), to_string(report.analytic),
                   math::to_string(report.numeric.verdict),
                   strfmt("%.6f", report.limit_routability)});
  }
  table.print(std::cout);
  return 0;
}

std::unique_ptr<sim::Overlay> make_overlay(const std::string& name,
                                           const sim::IdSpace& space,
                                           math::Rng& rng) {
  if (name == "tree") {
    return std::make_unique<sim::TreeOverlay>(space, rng);
  }
  if (name == "hypercube") {
    return std::make_unique<sim::HypercubeOverlay>(space);
  }
  if (name == "xor") {
    return std::make_unique<sim::XorOverlay>(space, rng);
  }
  if (name == "ring") {
    return std::make_unique<sim::ChordOverlay>(space, rng);
  }
  if (name == "symphony") {
    return std::make_unique<sim::SymphonyOverlay>(space, 1, 1, rng);
  }
  return nullptr;
}

int cmd_simulate(const std::string& name, int d, double q,
                 std::uint64_t pairs, std::uint64_t seed, unsigned threads) {
  if (d > 20) {
    std::cerr << "simulate: d capped at 20 (table memory)\n";
    return 1;
  }
  const sim::IdSpace space(d);
  math::Rng rng(seed);
  const auto overlay = make_overlay(name, space, rng);
  if (overlay == nullptr) {
    return usage();
  }
  const sim::FailureScenario failures(space, q, rng);
  // lint:allow(wallclock) printed wall-time only, never an estimate input
  const auto start = std::chrono::steady_clock::now();
  const auto estimate = sim::estimate_routability_parallel(
      *overlay, failures, {.pairs = pairs, .threads = threads}, rng);
  const double seconds =
      // lint:allow(wallclock) printed wall-time only, never an estimate input
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const auto ci = estimate.confidence95();
  const auto geometry = core::make_geometry(name);
  const auto point = core::evaluate_routability(*geometry, d, q);
  std::cout << strfmt("simulated routability: %.6f  (95%% CI [%.6f, %.6f])\n",
                      estimate.routability(), ci.lo, ci.hi);
  std::cout << strfmt("analytical prediction: %.6f  (%s)\n",
                      point.conditional_success,
                      to_string(geometry->exactness()));
  std::cout << strfmt("mean hops on success:  %.3f\n", estimate.hops.mean());
  std::cout << strfmt("alive nodes:           %llu / %llu\n",
                      static_cast<unsigned long long>(failures.alive_count()),
                      static_cast<unsigned long long>(space.size()));
  // Mirror the engine's thread resolution (hardware count, at least 1).
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned effective = threads != 0 ? threads : (hw == 0 ? 1 : hw);
  std::cout << strfmt("throughput:            %.0f routes/sec (%u threads)\n",
                      static_cast<double>(pairs) / seconds, effective);
  return 0;
}

int cmd_sparse(const std::string& name, int bits, std::uint64_t n, double q,
               std::uint64_t pairs, std::uint64_t seed, unsigned threads,
               std::uint64_t shards, double zipf_s, std::uint64_t objects,
               int cache_entries, bool record_load) {
  if (!(std::isfinite(zipf_s) && zipf_s >= 0.0)) {
    std::cerr << "sparse: --zipf must be a finite skew >= 0, got " << zipf_s
              << "\n";
    return 1;
  }
  if (cache_entries < 0) {
    std::cerr << "sparse: --cache must be >= 0, got " << cache_entries
              << "\n";
    return 1;
  }
  math::Rng rng(seed);
  // lint:allow(wallclock) printed wall-time only, never an estimate input
  const auto build_start = std::chrono::steady_clock::now();
  const sparse::SparseIdSpace space(bits, n, rng);
  std::unique_ptr<sparse::SparseOverlay> overlay;
  if (name == "ring") {
    overlay = std::make_unique<sparse::SparseChordOverlay>(space);
  } else if (name == "xor") {
    overlay = std::make_unique<sparse::SparseKademliaOverlay>(space, rng);
  } else if (name == "symphony") {
    overlay = std::make_unique<sparse::SparseSymphonyOverlay>(space, 1, 1, rng);
  } else {
    std::cerr << "sparse: geometry must be ring, xor, or symphony\n";
    return usage();
  }
  const double build_seconds =
      // lint:allow(wallclock) printed wall-time only, never an estimate input
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    build_start)
          .count();
  const sparse::SparseFailure failures(space, q, rng);
  sparse::SparseParallelOptions options{
      .pairs = pairs, .threads = threads, .shards = shards};
  options.workload.zipf_s = zipf_s;
  options.workload.objects = objects;
  options.workload.cache_entries = cache_entries;
  options.workload.record_load = record_load;
  // lint:allow(wallclock) printed wall-time only, never an estimate input
  const auto start = std::chrono::steady_clock::now();
  const auto report = sparse::estimate_workload_parallel(*overlay, failures,
                                                         options, rng);
  const auto& estimate = report.estimate;
  const double seconds =
      // lint:allow(wallclock) printed wall-time only, never an estimate input
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::cout << strfmt(
      "sparse %s: N = %llu nodes in a 2^%d key space (density %.3e)\n",
      std::string(overlay->name()).c_str(), static_cast<unsigned long long>(n),
      bits, space.density());
  if (zipf_s > 0.0) {
    std::cout << strfmt(
        "workload:              zipf s = %.2f over %llu objects\n", zipf_s,
        static_cast<unsigned long long>(objects != 0 ? objects
                                                     : failures.alive_count()));
  }
  std::cout << strfmt("measured routability:  %.6f\n", estimate.routability());
  if (cache_entries > 0) {
    std::cout << strfmt(
        "path cache:            %d slots/node, hit rate %.4f "
        "(%llu/%llu probes)\n",
        cache_entries, estimate.cache_hit_rate(),
        static_cast<unsigned long long>(estimate.cache_hits),
        static_cast<unsigned long long>(estimate.cache_probes));
  }
  if (record_load) {
    std::cout << strfmt(
        "per-node load:         max %llu, p99 %llu, mean %.2f, cv %.4f "
        "(%llu forwards over %llu alive nodes)\n",
        static_cast<unsigned long long>(report.load.max),
        static_cast<unsigned long long>(report.load.p99), report.load.mean,
        report.load.cv, static_cast<unsigned long long>(report.load.total),
        static_cast<unsigned long long>(report.load.nodes));
  }
  if (name != "symphony") {
    // The density reduction: the dense model evaluated at d' = log2 N.
    const auto geometry = core::make_geometry(name);
    const auto point = sparse::predict_sparse_routability(*geometry, n, q);
    std::cout << strfmt(
        "dense model at d'=%d:  %.6f  (density reduction; %s)\n",
        sparse::effective_bits(n), point.conditional_success,
        to_string(geometry->exactness()));
  }
  std::cout << strfmt("mean hops on success:  %.3f\n", estimate.mean_hops());
  std::cout << strfmt("alive nodes:           %llu / %llu\n",
                      static_cast<unsigned long long>(failures.alive_count()),
                      static_cast<unsigned long long>(n));
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned effective = threads != 0 ? threads : (hw == 0 ? 1 : hw);
  std::cout << strfmt(
      "throughput:            %.0f routes/sec (%u threads; tables built "
      "in %.2fs)\n",
      static_cast<double>(pairs) / seconds, effective, build_seconds);
  return 0;
}

int cmd_churn(const std::string& name, int d, double pd, double pr,
              int refresh, int rounds, std::uint64_t pairs,
              std::uint64_t seed, unsigned threads, std::uint64_t shards,
              double rho) {
  churn::TrajectoryGeometry geometry;
  if (!churn::trajectory_geometry_from_name(name, geometry)) {
    std::cerr << "churn: geometry must be xor, tree, or ring\n";
    return usage();
  }
  if (!validate_lifecycle_args("churn", pd, pr, refresh) ||
      !validate_rho("churn", rho)) {
    return 1;
  }
  if (d > 16) {
    std::cerr << "churn: d capped at 16 (each shard evolves a full replica)\n";
    return 1;
  }
  const sim::IdSpace space(d);
  const churn::ChurnParams params{.death_per_round = pd,
                                  .rebirth_per_round = pr,
                                  .refresh_interval = refresh};
  const churn::TrajectoryOptions options{.warmup_rounds = 3 * refresh + 30,
                                         .measured_rounds = rounds,
                                         .pairs_per_round = pairs,
                                         .shards = shards,
                                         .threads = threads,
                                         .repair_probability = rho};
  const math::Rng rng(seed);
  // lint:allow(wallclock) printed wall-time only, never an estimate input
  const auto start = std::chrono::steady_clock::now();
  const auto result =
      churn::run_churn_trajectory(geometry, space, params, options, rng);
  const double seconds =
      // lint:allow(wallclock) printed wall-time only, never an estimate input
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double q_eff = churn::effective_q(params);
  const auto geometry_core = core::make_geometry(name);
  const auto point = core::evaluate_routability(*geometry_core, d, q_eff);
  const auto ci = result.overall.confidence95();
  std::cout << strfmt(
      "churn trajectory:      %s, N = 2^%d, %llu shard replicas, "
      "%d+%d rounds\n",
      churn::to_string(geometry), d,
      static_cast<unsigned long long>(result.shards),
      options.warmup_rounds, rounds);
  std::cout << strfmt(
      "lifecycle:             pd = %.4f, pr = %.4f, a = %.4f, R = %d, "
      "rho = %.2f\n",
      pd, pr, churn::availability(params), refresh, rho);
  std::cout << strfmt("effective q (q_eff):   %.6f\n", q_eff);
  std::cout << strfmt("dynamic routability:   %.6f  (95%% CI [%.6f, %.6f])\n",
                      result.overall.routability(), ci.lo, ci.hi);
  std::cout << strfmt("static model at q_eff: %.6f  (%s)\n",
                      point.conditional_success,
                      to_string(geometry_core->exactness()));
  std::cout << strfmt("mean hops on success:  %.3f\n",
                      result.overall.hops.mean());
  std::cout << strfmt("mean alive fraction:   %.4f\n",
                      result.mean_alive_fraction);
  std::cout << strfmt("mean entry age:        %.2f rounds\n",
                      result.mean_entry_age);
  // Wall time covers world evolution (warmup + measured rounds) plus the
  // route sampling, so report trajectory throughput, not routes/sec.
  const double shard_rounds =
      static_cast<double>(result.shards) *
      static_cast<double>(options.warmup_rounds + rounds);
  std::cout << strfmt(
      "throughput:            %.0f shard-rounds/sec (%llu routes sampled "
      "in %.2fs)\n",
      shard_rounds / seconds,
      static_cast<unsigned long long>(result.overall.routed.trials),
      seconds);
  return 0;
}

// Serializes the forensics traces as JSONL: one route per line, hops
// inline, so two runs (or two builds) can be diffed route by route with
// standard line tools.
bool write_route_traces(const std::string& path,
                        const std::vector<obs::RouteTrace>& traces) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  for (const obs::RouteTrace& t : traces) {
    out << strfmt(
        "{\"shard\":%llu,\"round\":%llu,\"pair_index\":%llu,"
        "\"source_slot\":%lu,\"source_id\":%llu,\"target_id\":%llu,"
        "\"status\":\"%s\",\"hops\":[",
        static_cast<unsigned long long>(t.shard),
        static_cast<unsigned long long>(t.round),
        static_cast<unsigned long long>(t.pair_index),
        static_cast<unsigned long>(t.source_slot),
        static_cast<unsigned long long>(t.source_id),
        static_cast<unsigned long long>(t.target_id),
        t.status == 0 ? "arrived" : (t.status == 1 ? "dropped" : "hop_limit"));
    for (std::size_t h = 0; h < t.hops.size(); ++h) {
      const obs::RouteHop& hop = t.hops[h];
      out << strfmt("%s{\"slot\":%lu,\"id\":%llu,\"rank\":%d,\"gen_ok\":%s}",
                    h == 0 ? "" : ",", static_cast<unsigned long>(hop.slot),
                    static_cast<unsigned long long>(hop.id), hop.rank,
                    hop.gen_ok != 0 ? "true" : "false");
    }
    out << "]}\n";
  }
  return static_cast<bool>(out);
}

int cmd_sparse_churn(const std::string& name, int bits, std::uint64_t n0,
                     double pd, double pr, int refresh, int rounds,
                     std::uint64_t pairs, std::uint64_t seed,
                     unsigned threads, std::uint64_t shards, double rho,
                     int succ, int announce, int bucket_k, bool inflight,
                     bool batch_routes, const churn::SessionModel& session,
                     int replicas, double zipf_s, std::uint64_t objects,
                     std::uint64_t trace_routes,
                     const std::string& trace_out) {
  churn::SparseChurnGeometry geometry;
  if (!churn::sparse_churn_geometry_from_name(name, geometry)) {
    std::cerr << "sparse-churn: geometry must be ring, xor, or symphony\n";
    return usage();
  }
  if (trace_routes > 0 && inflight) {
    std::cerr << "sparse-churn: --trace-routes needs the round-synchronous "
                 "mode (drop --inflight); in-flight routes have no frozen "
                 "snapshot to re-route against\n";
    return 1;
  }
  if (trace_routes > 0 && trace_out.empty()) {
    std::cerr << "sparse-churn: --trace-routes needs --trace-out FILE for "
                 "the forensics JSONL\n";
    return 1;
  }
  if (!validate_lifecycle_args("sparse-churn", pd, pr, refresh) ||
      !validate_rho("sparse-churn", rho)) {
    return 1;
  }
  if (bucket_k < 1 || bucket_k > 64) {
    std::cerr << "sparse-churn: --k must be in [1, 64], got " << bucket_k
              << "\n";
    return 1;
  }
  if (session.kind == churn::SessionKind::kPareto &&
      !(session.pareto_alpha > 1.0)) {
    std::cerr << "sparse-churn: --alpha must be > 1 (finite mean session), "
              << "got " << session.pareto_alpha << "\n";
    return 1;
  }
  if (replicas < 1 || replicas > 64) {
    std::cerr << "sparse-churn: --replicas must be in [1, 64], got "
              << replicas << "\n";
    return 1;
  }
  if (!(std::isfinite(zipf_s) && zipf_s >= 0.0)) {
    std::cerr << "sparse-churn: --zipf must be a finite skew >= 0, got "
              << zipf_s << "\n";
    return 1;
  }
  const churn::ChurnParams params{.death_per_round = pd,
                                  .rebirth_per_round = pr,
                                  .refresh_interval = refresh};
  churn::SparseChurnConfig config;
  config.bits = bits;
  config.capacity = churn::capacity_for_population(n0, params);
  config.successors = succ;
  config.announce = announce;
  config.bucket_k = bucket_k;
  config.session = session;
  config.replicas = replicas;
  config.zipf_s = zipf_s;
  config.objects = objects;
  churn::TrajectoryOptions options{.warmup_rounds = 3 * refresh + 30,
                                   .measured_rounds = rounds,
                                   .pairs_per_round = pairs,
                                   .shards = shards,
                                   .threads = threads,
                                   .repair_probability = rho,
                                   .inflight = inflight};
  options.batch_routes = batch_routes;
  options.trace_routes = trace_routes;
  const math::Rng rng(seed);
  // lint:allow(wallclock) printed wall-time only, never an estimate input
  const auto start = std::chrono::steady_clock::now();
  const auto result = churn::run_sparse_churn_trajectory(geometry, config,
                                                         params, options, rng);
  const double seconds =
      // lint:allow(wallclock) printed wall-time only, never an estimate input
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double q_eff = churn::effective_q(params);
  std::cout << strfmt(
      "sparse churn:          %s, N0 = %llu (capacity %llu slots) in a 2^%d "
      "key space, %llu replicas\n",
      churn::to_string(geometry), static_cast<unsigned long long>(n0),
      static_cast<unsigned long long>(config.capacity), bits,
      static_cast<unsigned long long>(result.shards));
  std::cout << strfmt(
      "lifecycle:             pd = %.4f, pr = %.4f, a = %.4f, R = %d, "
      "rho = %.2f, s = %d, announce = %d, k = %d\n",
      pd, pr, churn::availability(params), refresh, rho, succ, announce,
      bucket_k);
  std::cout << strfmt(
      "sessions:              %s%s, mean 1/pd = %.1f rounds; measurement %s\n",
      churn::to_string(session.kind),
      session.kind == churn::SessionKind::kPareto
          ? strfmt(" (alpha = %.2f)", session.pareto_alpha).c_str()
          : "",
      1.0 / pd, inflight ? "in-flight (world steps during routes; scalar)"
                         : (batch_routes ? "round-synchronous (batched)"
                                         : "round-synchronous (scalar)"));
  std::cout << strfmt(
      "effective q (q_eff):   %.6f  (no-return q_nr: %.6f, %s q_nr: %.6f)\n",
      q_eff, churn::effective_q_no_return(params),
      churn::to_string(session.kind),
      churn::effective_q_no_return(params, session));
  std::cout << strfmt("dynamic routability:   %.6f\n",
                      result.overall.routability());
  const obs::FailureTaxonomy& fails = result.overall.failures;
  std::cout << strfmt(
      "route failures:        dead_entry %llu, hop_limit %llu, "
      "holder_departed %llu, succ_collapse %llu (of %llu attempts)\n",
      static_cast<unsigned long long>(
          fails[obs::RouteFailure::kDeadEntry]),
      static_cast<unsigned long long>(
          fails[obs::RouteFailure::kHopLimit]),
      static_cast<unsigned long long>(
          fails[obs::RouteFailure::kHolderDeparted]),
      static_cast<unsigned long long>(
          fails[obs::RouteFailure::kSuccessorCollapse]),
      static_cast<unsigned long long>(result.overall.attempts));
  if (replicas > 1 || zipf_s > 0.0) {
    std::cout << strfmt(
        "GET availability:      %.6f  (r = %d replicas, zipf s = %.2f, "
        "%llu/%llu GETs served)\n",
        result.overall.availability(), replicas, zipf_s,
        static_cast<unsigned long long>(result.overall.gets_available),
        static_cast<unsigned long long>(result.overall.gets));
    std::cout << strfmt(
        "per-slot load:         max %llu, p99 %.1f, cv %.4f\n",
        static_cast<unsigned long long>(result.load_max), result.load_p99,
        result.load_cv);
  }
  if (name != "symphony") {
    // Both prior extensions composed: the dense model at the density-
    // reduction scale d' = log2 N0, evaluated at the churn bridge q_eff.
    const auto geometry_core = core::make_geometry(name);
    const auto point =
        sparse::predict_sparse_routability(*geometry_core, n0, q_eff);
    std::cout << strfmt(
        "dense model d'=%d@q_eff: %.6f  (density reduction x churn bridge; "
        "%s)\n",
        sparse::effective_bits(n0), point.conditional_success,
        to_string(geometry_core->exactness()));
  }
  std::cout << strfmt("mean hops on success:  %.3f\n",
                      result.overall.mean_hops());
  std::cout << strfmt(
      "mean population:       %.1f (alive fraction %.4f of capacity)\n",
      result.mean_population, result.mean_alive_fraction);
  std::cout << strfmt("mean entry age:        %.2f rounds\n",
                      result.mean_entry_age);
  const double shard_rounds =
      static_cast<double>(result.shards) *
      static_cast<double>(options.warmup_rounds + rounds);
  std::cout << strfmt(
      "throughput:            %.0f shard-rounds/sec (%llu routes sampled "
      "in %.2fs)\n",
      shard_rounds / seconds,
      static_cast<unsigned long long>(result.overall.attempts), seconds);
  if (trace_routes > 0) {
    if (!write_route_traces(trace_out, result.traces)) {
      std::cerr << "sparse-churn: cannot write route traces to " << trace_out
                << "\n";
      return 1;
    }
    std::cout << strfmt("route forensics:       %llu hop-by-hop traces -> %s\n",
                        static_cast<unsigned long long>(result.traces.size()),
                        trace_out.c_str());
  }
  return 0;
}

int cmd_latency(const std::string& name, int d, double q) {
  const auto geometry = core::make_geometry(name);
  const auto point = core::expected_latency(*geometry, d, q);
  std::cout << strfmt(
      "chain-predicted mean hops of successful routes: %.4f\n",
      point.mean_hops_given_success);
  std::cout << strfmt("fraction of pairs routable: %.6f\n",
                      point.success_fraction);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string command = argv[1];
  try {
    if (command == "analyze" && argc == 5) {
      return cmd_analyze(argv[2], std::atoi(argv[3]), std::atof(argv[4]));
    }
    if (command == "sweep-q" && argc == 4) {
      return cmd_sweep_q(argv[2], std::atoi(argv[3]));
    }
    if (command == "sweep-n" && argc == 4) {
      return cmd_sweep_n(argv[2], std::atof(argv[3]));
    }
    if (command == "scalability") {
      return cmd_scalability(argc >= 3 ? std::atof(argv[2]) : 0.1);
    }
    if (command == "simulate" && argc >= 5) {
      // Positional [pairs] [seed], then an optional trailing --threads N.
      unsigned threads = 0;
      std::vector<std::string> positional;
      for (int i = 5; i < argc; ++i) {
        if (std::string(argv[i]) == "--threads" && i + 1 < argc) {
          threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
          ++i;
        } else {
          positional.emplace_back(argv[i]);
        }
      }
      const std::uint64_t pairs =
          !positional.empty() ? std::strtoull(positional[0].c_str(), nullptr, 10)
                              : 20000;
      const std::uint64_t seed =
          positional.size() >= 2
              ? std::strtoull(positional[1].c_str(), nullptr, 10)
              : 1;
      return cmd_simulate(argv[2], std::atoi(argv[3]), std::atof(argv[4]),
                          pairs, seed, threads);
    }
    if (command == "sparse" && argc >= 6) {
      // Positional [pairs] [seed], then optional --threads / --shards /
      // workload flags.
      unsigned threads = 0;
      std::uint64_t shards = 0;
      double zipf_s = 0.0;
      std::uint64_t objects = 0;
      int cache_entries = 0;
      bool record_load = false;
      std::vector<std::string> positional;
      for (int i = 6; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
          threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
          ++i;
        } else if (arg == "--shards" && i + 1 < argc) {
          shards = std::strtoull(argv[i + 1], nullptr, 10);
          ++i;
        } else if (arg == "--zipf" && i + 1 < argc) {
          zipf_s = std::atof(argv[i + 1]);
          ++i;
        } else if (arg == "--objects" && i + 1 < argc) {
          objects = std::strtoull(argv[i + 1], nullptr, 10);
          ++i;
        } else if (arg == "--cache" && i + 1 < argc) {
          cache_entries = std::atoi(argv[i + 1]);
          ++i;
        } else if (arg == "--load") {
          record_load = true;
        } else if (arg.rfind("--", 0) == 0) {
          std::cerr << "sparse: unknown flag " << arg << "\n";
          return usage();
        } else {
          positional.push_back(arg);
        }
      }
      const std::uint64_t pairs =
          !positional.empty() ? std::strtoull(positional[0].c_str(), nullptr, 10)
                              : 20000;
      const std::uint64_t seed =
          positional.size() >= 2
              ? std::strtoull(positional[1].c_str(), nullptr, 10)
              : 1;
      return cmd_sparse(argv[2], std::atoi(argv[3]),
                        std::strtoull(argv[4], nullptr, 10), std::atof(argv[5]),
                        pairs, seed, threads, shards, zipf_s, objects,
                        cache_entries, record_load);
    }
    if (command == "churn" && argc >= 7) {
      // Positional [rounds] [pairs] [seed], then optional --threads /
      // --shards / --rho flag pairs in any order.
      unsigned threads = 0;
      std::uint64_t shards = 0;
      double rho = 0.0;
      std::vector<std::string> positional;
      for (int i = 7; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
          threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
          ++i;
        } else if (arg == "--shards" && i + 1 < argc) {
          shards = std::strtoull(argv[i + 1], nullptr, 10);
          ++i;
        } else if (arg == "--rho" && i + 1 < argc) {
          rho = std::atof(argv[i + 1]);
          ++i;
        } else if (arg.rfind("--", 0) == 0) {
          std::cerr << "churn: unknown flag " << arg << "\n";
          return usage();
        } else {
          positional.push_back(arg);
        }
      }
      const int rounds =
          !positional.empty() ? std::atoi(positional[0].c_str()) : 5;
      const std::uint64_t pairs =
          positional.size() >= 2
              ? std::strtoull(positional[1].c_str(), nullptr, 10)
              : 1000;
      const std::uint64_t seed =
          positional.size() >= 3
              ? std::strtoull(positional[2].c_str(), nullptr, 10)
              : 1;
      return cmd_churn(argv[2], std::atoi(argv[3]), std::atof(argv[4]),
                       std::atof(argv[5]), std::atoi(argv[6]), rounds, pairs,
                       seed, threads, shards, rho);
    }
    if (command == "sparse-churn" && argc >= 8) {
      // Positional [rounds] [pairs] [seed], then optional flag pairs.
      unsigned threads = 0;
      std::uint64_t shards = 0;
      double rho = 0.0;
      int succ = 4;
      int announce = 8;
      int bucket_k = 1;
      bool inflight = false;
      bool batch_routes = true;
      churn::SessionModel session;
      int replicas = 1;
      double zipf_s = 0.0;
      std::uint64_t objects = 0;
      std::uint64_t trace_routes = 0;
      std::string trace_out;
      std::vector<std::string> positional;
      for (int i = 8; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
          threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
          ++i;
        } else if (arg == "--shards" && i + 1 < argc) {
          shards = std::strtoull(argv[i + 1], nullptr, 10);
          ++i;
        } else if (arg == "--rho" && i + 1 < argc) {
          rho = std::atof(argv[i + 1]);
          ++i;
        } else if (arg == "--succ" && i + 1 < argc) {
          succ = std::atoi(argv[i + 1]);
          ++i;
        } else if (arg == "--announce" && i + 1 < argc) {
          announce = std::atoi(argv[i + 1]);
          ++i;
        } else if (arg == "--k" && i + 1 < argc) {
          bucket_k = std::atoi(argv[i + 1]);
          ++i;
        } else if (arg == "--inflight") {
          inflight = true;
        } else if (arg == "--scalar-routes") {
          batch_routes = false;
        } else if (arg == "--session" && i + 1 < argc) {
          churn::SessionKind kind;
          if (!churn::session_kind_from_name(argv[i + 1], kind)) {
            std::cerr << "sparse-churn: --session must be geometric or "
                         "pareto, got "
                      << argv[i + 1] << "\n";
            return 1;
          }
          session.kind = kind;
          ++i;
        } else if (arg == "--alpha" && i + 1 < argc) {
          session.pareto_alpha = std::atof(argv[i + 1]);
          ++i;
        } else if (arg == "--replicas" && i + 1 < argc) {
          replicas = std::atoi(argv[i + 1]);
          ++i;
        } else if (arg == "--zipf" && i + 1 < argc) {
          zipf_s = std::atof(argv[i + 1]);
          ++i;
        } else if (arg == "--objects" && i + 1 < argc) {
          objects = std::strtoull(argv[i + 1], nullptr, 10);
          ++i;
        } else if (arg == "--trace-routes" && i + 1 < argc) {
          trace_routes = std::strtoull(argv[i + 1], nullptr, 10);
          ++i;
        } else if (arg == "--trace-out" && i + 1 < argc) {
          trace_out = argv[i + 1];
          ++i;
        } else if (arg.rfind("--", 0) == 0) {
          std::cerr << "sparse-churn: unknown flag " << arg << "\n";
          return usage();
        } else {
          positional.push_back(arg);
        }
      }
      const int rounds =
          !positional.empty() ? std::atoi(positional[0].c_str()) : 4;
      const std::uint64_t pairs =
          positional.size() >= 2
              ? std::strtoull(positional[1].c_str(), nullptr, 10)
              : 1000;
      const std::uint64_t seed =
          positional.size() >= 3
              ? std::strtoull(positional[2].c_str(), nullptr, 10)
              : 1;
      return cmd_sparse_churn(argv[2], std::atoi(argv[3]),
                              std::strtoull(argv[4], nullptr, 10),
                              std::atof(argv[5]), std::atof(argv[6]),
                              std::atoi(argv[7]), rounds, pairs, seed,
                              threads, shards, rho, succ, announce,
                              bucket_k, inflight, batch_routes, session,
                              replicas, zipf_s, objects, trace_routes,
                              trace_out);
    }
    if (command == "latency" && argc == 5) {
      return cmd_latency(argv[2], std::atoi(argv[3]), std::atof(argv[4]));
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
  return usage();
}
