// Compare all five DHT routing geometries at a chosen operating point --
// the "which DHT should I deploy?" question of the paper's introduction.
//
// Usage: compare_geometries [d] [q]
//   d -- identifier length, N = 2^d (default 16; anything up to thousands
//        works, the evaluation is log-domain)
//   q -- node failure probability in [0, 1) (default 0.1)
#include <cstdlib>
#include <iostream>

#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "core/scalability.hpp"

int main(int argc, char** argv) {
  const int d = argc > 1 ? std::atoi(argv[1]) : 16;
  const double q = argc > 2 ? std::atof(argv[2]) : 0.1;
  if (d < 1 || q < 0.0 || q >= 1.0) {
    std::cerr << "usage: compare_geometries [d >= 1] [q in [0, 1)]\n";
    return 1;
  }

  dht::core::Table table(dht::strfmt(
      "DHT routing geometries at N = 2^%d, q = %.1f%%", d, q * 100));
  table.set_header({"geometry", "system", "routability%", "failed%",
                    "r at N->inf %", "verdict", "model"});
  for (const auto& geometry : dht::core::make_all_geometries()) {
    const auto point = dht::core::evaluate_routability(*geometry, d, q);
    const double limit =
        q > 0.0 ? dht::core::limit_routability(*geometry, q) : 1.0;
    table.add_row({std::string(geometry->name()),
                   std::string(geometry->dht_system()),
                   dht::strfmt("%.2f", point.routability * 100),
                   dht::strfmt("%.2f", point.failed_fraction * 100),
                   dht::strfmt("%.2f", limit * 100),
                   to_string(geometry->scalability_class()),
                   to_string(geometry->exactness())});
  }
  table.add_note(
      "model column: 'exact' = p(h,q) exact for the basic protocol; "
      "'lower bound' = Chord's suboptimal-hop progress is not modeled; "
      "'approximate' = Symphony's capped-hop chain");
  table.print(std::cout);
  return 0;
}
