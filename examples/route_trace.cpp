// Trace a single route hop by hop under failures -- the paper's Fig. 5(a)
// walkthrough (XOR routing around a dead optimal neighbor), live.
//
// Builds a small overlay, kills a fraction of nodes, then narrates routes:
// every hop with the node id (as a bit string), the distance to the target,
// and the routing phase.
//
// Usage: route_trace [geometry] [d] [q] [routes]
#include <bitset>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "common/strfmt.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/node_id.hpp"
#include "sim/router.hpp"
#include "sim/symphony_overlay.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace {

std::string bits(dht::sim::NodeId id, int d) {
  std::string out = std::bitset<26>(id).to_string();
  return out.substr(out.size() - static_cast<size_t>(d));
}

std::unique_ptr<dht::sim::Overlay> make_overlay(const std::string& name,
                                                const dht::sim::IdSpace& space,
                                                dht::math::Rng& rng) {
  using namespace dht::sim;
  if (name == "tree") {
    return std::make_unique<TreeOverlay>(space, rng);
  }
  if (name == "hypercube") {
    return std::make_unique<HypercubeOverlay>(space);
  }
  if (name == "xor") {
    return std::make_unique<XorOverlay>(space, rng);
  }
  if (name == "ring") {
    return std::make_unique<ChordOverlay>(space, rng);
  }
  if (name == "symphony") {
    return std::make_unique<SymphonyOverlay>(space, 1, 1, rng);
  }
  return nullptr;
}

bool is_ring_family(const std::string& name) {
  return name == "ring" || name == "symphony";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "xor";
  const int d = argc > 2 ? std::atoi(argv[2]) : 8;
  const double q = argc > 3 ? std::atof(argv[3]) : 0.2;
  const int routes = argc > 4 ? std::atoi(argv[4]) : 4;
  if (d < 3 || d > 16 || q < 0.0 || q >= 1.0) {
    std::cerr << "usage: route_trace [geometry] [d in 3..16] [q in [0,1)] "
                 "[routes]\n";
    return 1;
  }

  dht::math::Rng rng(99);
  const dht::sim::IdSpace space(d);
  const auto overlay = make_overlay(name, space, rng);
  if (overlay == nullptr) {
    std::cerr << "unknown geometry '" << name << "'\n";
    return 1;
  }
  const dht::sim::FailureScenario failures(space, q, rng);
  std::cout << dht::strfmt(
      "%s overlay, N = 2^%d, q = %.0f%%: %llu of %llu nodes alive\n\n",
      name.c_str(), d, q * 100,
      static_cast<unsigned long long>(failures.alive_count()),
      static_cast<unsigned long long>(space.size()));

  const dht::sim::Router router(*overlay, failures);
  for (int i = 0; i < routes; ++i) {
    const dht::sim::NodeId source = failures.sample_alive(rng);
    dht::sim::NodeId target = failures.sample_alive(rng);
    while (target == source) {
      target = failures.sample_alive(rng);
    }
    const dht::sim::RouteTrace trace =
        router.route_traced(source, target, rng);
    std::cout << dht::strfmt("route %s -> %s: %s in %d hops\n",
                             bits(source, d).c_str(), bits(target, d).c_str(),
                             to_string(trace.result.status),
                             trace.result.hops);
    for (size_t k = 0; k < trace.path.size(); ++k) {
      const dht::sim::NodeId node = trace.path[k];
      std::uint64_t distance;
      int phase;
      if (is_ring_family(name)) {
        distance = dht::sim::ring_distance(node, target, d);
        phase = distance == 0 ? 0 : dht::sim::phase_of_distance(distance);
      } else {
        distance = dht::sim::xor_distance(node, target);
        phase = distance == 0 ? 0 : dht::sim::phase_of_distance(distance);
      }
      std::cout << dht::strfmt("  hop %2zu: %s  distance %6llu  phase %2d\n",
                               k, bits(node, d).c_str(),
                               static_cast<unsigned long long>(distance),
                               phase);
    }
    if (trace.result.status == dht::sim::RouteStatus::kDropped) {
      std::cout << "  (dropped: no admissible alive neighbor -- no "
                   "back-tracking in the basic protocol)\n";
    }
    std::cout << '\n';
  }
  return 0;
}
