// Provisioning helper for Symphony deployments.
//
// The paper stresses that although basic Symphony routing is asymptotically
// unscalable, "a system designer can specify enough near neighbors to
// guarantee an acceptable routability ... for a maximum network size and a
// reasonable failure probability" (Section 1).  This tool inverts Eq. 7:
// given a target routability, a maximum network size and a failure
// probability, it reports the smallest (kn, ks) provisioning that meets the
// target, analytically and with a simulated confirmation.
//
// Usage: symphony_provisioning [target] [d] [q]
//   target -- required routability in (0, 1) (default 0.95)
//   d      -- identifier length of the largest expected network (default 16)
//   q      -- design-point failure probability (default 0.2)
#include <cstdlib>
#include <iostream>

#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/symphony_overlay.hpp"

namespace {

double analytical_routability(int kn, int ks, int d, double q) {
  const auto geometry = dht::core::make_geometry(
      dht::core::GeometryKind::kSymphony,
      dht::core::SymphonyParams{.near_neighbors = kn, .shortcuts = ks});
  return dht::core::evaluate_routability(*geometry, d, q).routability;
}

}  // namespace

int main(int argc, char** argv) {
  const double target = argc > 1 ? std::atof(argv[1]) : 0.95;
  const int d = argc > 2 ? std::atoi(argv[2]) : 16;
  const double q = argc > 3 ? std::atof(argv[3]) : 0.2;
  if (target <= 0.0 || target >= 1.0 || d < 4 || q < 0.0 || q >= 1.0) {
    std::cerr << "usage: symphony_provisioning [target in (0,1)] [d >= 4] "
                 "[q in [0, 1)]\n";
    return 1;
  }

  dht::core::Table table(dht::strfmt(
      "Symphony provisioning for routability >= %.0f%% at N = 2^%d, "
      "q = %.0f%%",
      target * 100, d, q * 100));
  table.set_header(
      {"kn", "ks", "analytical r%", "meets target", "simulated r%"});

  const auto simulated_routability = [&](int kn, int ks) {
    dht::math::Rng rng(7777);
    const dht::sim::IdSpace space(d);
    const dht::sim::SymphonyOverlay overlay(space, kn, ks, rng);
    const dht::sim::FailureScenario failures(space, q, rng);
    return dht::sim::estimate_routability(overlay, failures,
                                          {.pairs = 20000}, rng)
        .routability();
  };

  // Walk the provisioning budget upward.  For each total budget, the
  // balanced split maximizes 1 - q^{kn+ks} robustness against the ks/d
  // phase-advance term; report the first budget whose analytical and (when
  // the network fits in memory) simulated routability meet the target.
  bool analytical_met = false;
  bool simulated_met = d > 20;  // no simulation possible beyond 2^20
  for (int total_links = 2; total_links <= 32; ++total_links) {
    const int kn = total_links / 2;
    const int ks = total_links - kn;
    const double analytical = analytical_routability(kn, ks, d, q);
    if (analytical < target && !analytical_met) {
      continue;
    }
    const double simulated = d <= 20 ? simulated_routability(kn, ks) : -1.0;
    table.add_row({dht::strfmt("%d", kn), dht::strfmt("%d", ks),
                   dht::strfmt("%.2f", analytical * 100),
                   analytical >= target ? "yes" : "no",
                   simulated >= 0.0 ? dht::strfmt("%.2f", simulated * 100)
                                    : "n/a (d > 20)"});
    analytical_met = true;
    if (simulated >= target) {
      simulated_met = true;
    }
    if (analytical_met && simulated_met) {
      break;
    }
  }
  if (!analytical_met) {
    std::cout << "no (kn, ks) with kn + ks <= 32 meets the target; raise "
                 "the budget or lower the target\n";
    return 2;
  }
  table.add_note(
      "first row: smallest budget whose Eq. 7 prediction meets the target; "
      "following rows: budget increased until the simulation agrees.  "
      "Eq. 7 is optimistic for minimally provisioned unidirectional "
      "routing (it ignores overshoot-blocking), so the gap between the "
      "two stopping points is the model's optimism at this design point");
  table.print(std::cout);
  return 0;
}
