// Sweep the node failure probability for one geometry, printing the
// analytical prediction next to a fresh simulation -- a personal Fig. 6 for
// any geometry and network size.  Output is CSV so it pipes straight into a
// plotting tool.
//
// Usage: failure_sweep [geometry] [d] [pairs]
//   geometry -- tree | hypercube | xor | ring | symphony (default xor)
//   d        -- identifier length, N = 2^d, 4..20 (default 14)
//   pairs    -- sampled pairs per point (default 20000)
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "common/strfmt.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/routability.hpp"
#include "math/rng.hpp"
#include "sim/chord_overlay.hpp"
#include "sim/hypercube_overlay.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/symphony_overlay.hpp"
#include "sim/tree_overlay.hpp"
#include "sim/xor_overlay.hpp"

namespace {

std::unique_ptr<dht::sim::Overlay> make_overlay(const std::string& name,
                                                const dht::sim::IdSpace& space,
                                                dht::math::Rng& rng) {
  using namespace dht::sim;
  if (name == "tree") {
    return std::make_unique<TreeOverlay>(space, rng);
  }
  if (name == "hypercube") {
    return std::make_unique<HypercubeOverlay>(space);
  }
  if (name == "xor") {
    return std::make_unique<XorOverlay>(space, rng);
  }
  if (name == "ring") {
    return std::make_unique<ChordOverlay>(space, rng);
  }
  if (name == "symphony") {
    return std::make_unique<SymphonyOverlay>(space, 1, 1, rng);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "xor";
  const int d = argc > 2 ? std::atoi(argv[2]) : 14;
  const std::uint64_t pairs =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 20000;
  if (d < 4 || d > 20) {
    std::cerr << "usage: failure_sweep [geometry] [d in 4..20] [pairs]\n";
    return 1;
  }

  const dht::sim::IdSpace space(d);
  dht::math::Rng rng(424242);
  const auto overlay = make_overlay(name, space, rng);
  if (overlay == nullptr) {
    std::cerr << "unknown geometry '" << name
              << "' (tree|hypercube|xor|ring|symphony)\n";
    return 1;
  }
  const auto geometry = dht::core::make_geometry(name);

  dht::core::Table table("failure sweep: " + name +
                         " at N = 2^" + std::to_string(d));
  table.set_header({"q", "analytical_failed", "simulated_failed",
                    "ci95_lo", "ci95_hi", "mean_hops"});
  for (int percent = 0; percent <= 90; percent += 5) {
    const double q = percent / 100.0;
    const double analytical =
        1.0 -
        dht::core::evaluate_routability(*geometry, d, q).conditional_success;
    double simulated = 0.0;
    dht::math::Interval ci{0.0, 0.0};
    double hops = 0.0;
    dht::math::Rng fail_rng(1000 + static_cast<std::uint64_t>(percent));
    const dht::sim::FailureScenario failures(space, q, fail_rng);
    const auto estimate = dht::sim::estimate_routability(
        *overlay, failures, {.pairs = pairs}, rng);
    simulated = estimate.failed_fraction();
    const auto routed_ci = estimate.confidence95();
    ci = {1.0 - routed_ci.hi, 1.0 - routed_ci.lo};
    hops = estimate.hops.mean();
    table.add_row({dht::strfmt("%.2f", q), dht::strfmt("%.5f", analytical),
                   dht::strfmt("%.5f", simulated), dht::strfmt("%.5f", ci.lo),
                   dht::strfmt("%.5f", ci.hi), dht::strfmt("%.2f", hops)});
  }
  table.print_csv(std::cout);
  return 0;
}
