// Quickstart: the one-screen tour of the dhtscale public API.
//
//   1. make a routing geometry,
//   2. evaluate its routability under random failure (the paper's Eq. 3),
//   3. ask whether the geometry is scalable (Definition 2),
//   4. cross-check the analytical prediction with a simulated overlay.
//
// Build and run:  ./build/examples/quickstart
#include <cstdio>

#include "core/registry.hpp"
#include "core/routability.hpp"
#include "core/scalability.hpp"
#include "math/rng.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/xor_overlay.hpp"

int main() {
  // 1. Kademlia's XOR geometry in a 2^16-node identifier space, 10% of
  //    nodes failed -- the setting of the paper's Fig. 6.
  const auto geometry = dht::core::make_geometry(dht::core::GeometryKind::kXor);
  const int d = 16;
  const double q = 0.10;

  // 2. Analytical routability via the Reachable Component Method.
  const dht::core::RoutabilityPoint point =
      dht::core::evaluate_routability(*geometry, d, q);
  std::printf("XOR (Kademlia), N = 2^%d, q = %.0f%%\n", d, q * 100);
  std::printf("  routability (Eq. 3):      %.2f%%\n",
              point.routability * 100);
  std::printf("  failed paths:             %.2f%%\n",
              point.failed_fraction * 100);

  // 3. Scalability: does routability survive N -> infinity?
  const dht::core::ScalabilityReport report =
      dht::core::analyze_scalability(*geometry, q);
  std::printf("  verdict:                  %s (numeric check: %s)\n",
              to_string(report.analytic),
              dht::math::to_string(report.numeric.verdict));
  std::printf("  limit routability:        %.2f%%\n",
              report.limit_routability * 100);

  // 4. Measure the real thing: build the overlay, fail nodes, route.
  dht::math::Rng rng(2006);
  const dht::sim::IdSpace space(d);
  const dht::sim::XorOverlay overlay(space, rng);
  const dht::sim::FailureScenario failures(space, q, rng);
  const auto estimate =
      dht::sim::estimate_routability(overlay, failures, {.pairs = 20000}, rng);
  const auto ci = estimate.confidence95();
  std::printf("  simulated routability:    %.2f%% (95%% CI [%.2f, %.2f])\n",
              estimate.routability() * 100, ci.lo * 100, ci.hi * 100);
  std::printf("  mean hops on success:     %.2f\n", estimate.hops.mean());
  return 0;
}
