// Minimal printf-style string formatting.
//
// GCC 12's libstdc++ does not ship std::format, and iostream manipulators
// make tabular benchmark output unreadable at the call site.  strfmt() wraps
// vsnprintf with the usual two-pass sizing idiom and returns a std::string.
#pragma once

#include <cstdarg>
#include <string>

namespace dht {

/// Returns the printf-formatted string.  Formatting errors (invalid format
/// string reported by the C library) yield an empty string.
[[gnu::format(printf, 1, 2)]] std::string strfmt(const char* format, ...);

/// va_list variant of strfmt().
std::string vstrfmt(const char* format, std::va_list args);

}  // namespace dht
