// Best-effort transparent-hugepage advice for large read-mostly arrays.
//
// The routing kernels stream hundreds of megabytes of neighbor tables at
// random row granularity; on 4K pages that working set overwhelms the
// dTLB and every hop pays a page walk on top of its cache miss.  Backing
// the arrays with 2MB pages shrinks a ~250MB table set to ~125 TLB
// entries.  Kernels with transparent_hugepage=always do this on their
// own; the common madvise default only promotes ranges that ask, so the
// big allocations ask.
//
// The advice must land BEFORE the pages are first touched -- that lets
// the kernel back the range with huge pages at fault time instead of
// waiting for khugepaged to collapse it long after the benchmark is over.
// Hence reserve_hugepages(): reserve capacity (untouched memory), advise
// it, then let the caller fill.  Both helpers are silent no-ops off
// Linux, on madvise failure, and for ranges below one huge page.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace dht::common {

/// Advises the 2MB-aligned interior of [p, p + bytes) onto huge pages.
inline void advise_hugepages(void* p, std::size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  constexpr std::uintptr_t kHugePage = std::uintptr_t{2} << 20;
  const std::uintptr_t begin = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t lo = (begin + kHugePage - 1) & ~(kHugePage - 1);
  const std::uintptr_t hi = (begin + bytes) & ~(kHugePage - 1);
  if (hi > lo) {
    (void)::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_HUGEPAGE);
  }
#else
  (void)p;
  (void)bytes;
#endif
}

/// Reserves capacity for n elements and advises the (still untouched)
/// backing store onto huge pages, so the caller's fill faults 2MB pages
/// directly.
template <typename Vec>
void reserve_hugepages(Vec& vec, std::size_t n) {
  vec.reserve(n);
  advise_hugepages(vec.data(), n * sizeof(typename Vec::value_type));
}

}  // namespace dht::common
