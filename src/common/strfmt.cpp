#include "common/strfmt.hpp"

#include <cstdio>
#include <vector>

namespace dht {

std::string vstrfmt(const char* format, std::va_list args) {
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args_copy);
  va_end(args_copy);
  if (needed < 0) {
    return {};
  }
  // +1 for the terminating NUL vsnprintf writes past the reported length.
  std::vector<char> buffer(static_cast<size_t>(needed) + 1);
  std::vsnprintf(buffer.data(), buffer.size(), format, args);
  return std::string(buffer.data(), static_cast<size_t>(needed));
}

std::string strfmt(const char* format, ...) {
  std::va_list args;
  va_start(args, format);
  std::string out = vstrfmt(format, args);
  va_end(args);
  return out;
}

}  // namespace dht
