// Checked preconditions for dhtscale.
//
// Library entry points validate their arguments with DHT_CHECK, which throws
// std::invalid_argument with a message naming the violated condition.  The
// checks stay enabled in release builds: every quantity in this library is a
// probability, a count, or an identifier-space size, and silently accepting
// an out-of-domain value (q = 1.2, d = -3, h > d) would produce plausible
// looking garbage instead of a crash.
#pragma once

#include <stdexcept>
#include <string>

namespace dht {

/// Thrown by DHT_CHECK when a precondition is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {

[[noreturn]] inline void raise_precondition(const char* condition,
                                            const char* file, int line,
                                            const std::string& message) {
  std::string what = "precondition failed: ";
  what += condition;
  what += " (";
  what += file;
  what += ':';
  what += std::to_string(line);
  what += ')';
  if (!message.empty()) {
    what += ": ";
    what += message;
  }
  throw PreconditionError(what);
}

}  // namespace detail
}  // namespace dht

/// Validates a caller-supplied argument; throws dht::PreconditionError when
/// the condition does not hold.  Always on, independent of NDEBUG.
#define DHT_CHECK(cond, message)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::dht::detail::raise_precondition(#cond, __FILE__, __LINE__,       \
                                        (message));                     \
    }                                                                    \
  } while (false)
