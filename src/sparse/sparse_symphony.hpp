// Symphony over a non-fully-populated identifier space.
//
// Exactly Symphony's construction (Manku et al.): nodes draw shortcut
// *keys* from the harmonic density over key distance and link to the key's
// owner (successor), plus kn near links to the next nodes in ring order.
// Forwarding is greedy clockwise on key distance without overshoot, as in
// the dense overlay.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/sparse_overlay.hpp"

namespace dht::sparse {

class SparseSymphonyOverlay final : public SparseOverlay {
 public:
  /// Preconditions: near_neighbors >= 1, shortcuts >= 1, and
  /// near_neighbors + shortcuts < node_count.
  SparseSymphonyOverlay(const SparseIdSpace& space, int near_neighbors,
                        int shortcuts, math::Rng& rng);

  std::string_view name() const noexcept override {
    return "sparse-symphony";
  }
  const SparseIdSpace& space() const noexcept override { return *space_; }

  int near_neighbors() const noexcept { return kn_; }
  int shortcuts() const noexcept { return ks_; }

  /// The j-th shortcut of `node` (0-based, j < shortcuts()).
  NodeIndex shortcut(NodeIndex node, int j) const;

  /// Row-major [node][j] shortcut node indices; the flattened kernel
  /// (sparse/flat_sparse.hpp) reads this directly.
  const std::vector<NodeIndex>& shortcut_table() const noexcept {
    return shortcuts_;
  }

  std::optional<NodeIndex> next_hop(
      NodeIndex current, NodeIndex target,
      const SparseFailure& failures) const override;

 private:
  const SparseIdSpace* space_;
  int kn_;
  int ks_;
  // Row-major [node][j] shortcut node indices.
  std::vector<NodeIndex> shortcuts_;
};

}  // namespace dht::sparse
