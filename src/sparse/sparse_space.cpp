#include "sparse/sparse_space.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/hugepage.hpp"

namespace dht::sparse {

SparseIdSpace::SparseIdSpace(int bits, std::uint64_t node_count,
                             math::Rng& rng)
    : bits_(bits) {
  DHT_CHECK(bits >= 1 && bits <= 63, "sparse space supports 1 <= bits <= 63");
  DHT_CHECK(node_count >= 2, "sparse space needs at least two nodes");
  DHT_CHECK(node_count <= (std::uint64_t{1} << std::min(bits, 26)),
            "node_count must fit the key space and stay <= 2^26");

  const std::uint64_t size = std::uint64_t{1} << bits_;
  if (node_count == size) {
    // Fully populated: the sparse machinery degenerates to the dense case.
    ids_.resize(node_count);
    for (std::uint64_t i = 0; i < node_count; ++i) {
      ids_[i] = i;
    }
    return;
  }
  // Distinct uniform ids by batched draw + sort + dedup: each round tops the
  // array up to node_count fresh draws, sorts, and drops duplicates.  This
  // needs no hash set (8 bytes per node, million-node spaces construct in
  // one or two rounds at real-world densities) and converges for any
  // density < 1 -- the resample loop is the coupon-collector tail the old
  // rejection sampler paid per draw.
  common::reserve_hugepages(ids_, node_count);
  while (ids_.size() < node_count) {
    while (ids_.size() < node_count) {
      ids_.push_back(rng.uniform_below(size));
    }
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  }
}

sim::NodeId SparseIdSpace::id_of(NodeIndex index) const {
  DHT_CHECK(index < ids_.size(), "node index out of range");
  return ids_[index];
}

NodeIndex SparseIdSpace::successor_of_key(sim::NodeId key) const {
  DHT_CHECK(key < key_space_size(), "key out of range");
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), key);
  if (it == ids_.end()) {
    return 0;  // wrap to the smallest identifier
  }
  return static_cast<NodeIndex>(it - ids_.begin());
}

NodeIndex SparseIdSpace::ring_step(NodeIndex index,
                                   std::uint64_t steps) const {
  DHT_CHECK(index < ids_.size(), "node index out of range");
  return static_cast<NodeIndex>(
      (index + steps) % static_cast<std::uint64_t>(ids_.size()));
}

std::pair<NodeIndex, NodeIndex> SparseIdSpace::index_range(
    sim::NodeId lo, sim::NodeId hi) const {
  DHT_CHECK(lo <= hi, "index_range requires lo <= hi");
  DHT_CHECK(hi < key_space_size(), "key out of range");
  const auto first = std::lower_bound(ids_.begin(), ids_.end(), lo);
  const auto last = std::upper_bound(first, ids_.end(), hi);
  return {static_cast<NodeIndex>(first - ids_.begin()),
          static_cast<NodeIndex>(last - ids_.begin())};
}

}  // namespace dht::sparse
