// Overlay interface for non-fully-populated identifier spaces.
//
// Mirrors sim::Overlay, but over node *indices* (0..N-1 in ring order)
// rather than identifiers, since most keys host no node.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "math/rng.hpp"
#include "sparse/sparse_space.hpp"

namespace dht::sparse {

/// i.i.d. Bernoulli liveness over node indices (the sparse counterpart of
/// sim::FailureScenario).
class SparseFailure {
 public:
  SparseFailure(const SparseIdSpace& space, double q, math::Rng& rng);

  bool alive(NodeIndex index) const { return alive_[index] != 0; }
  std::uint64_t alive_count() const noexcept { return alive_count_; }
  std::uint64_t node_count() const noexcept { return alive_.size(); }

  /// Uniformly samples an alive node index.
  NodeIndex sample_alive(math::Rng& rng) const;

 private:
  std::vector<std::uint8_t> alive_;
  std::uint64_t alive_count_ = 0;
};

class SparseOverlay {
 public:
  virtual ~SparseOverlay();

  virtual std::string_view name() const noexcept = 0;
  virtual const SparseIdSpace& space() const noexcept = 0;

  /// One forwarding step toward `target` (current != target); nullopt when
  /// the basic protocol drops the message.
  virtual std::optional<NodeIndex> next_hop(
      NodeIndex current, NodeIndex target,
      const SparseFailure& failures) const = 0;
};

/// Routes source -> target; returns hop count on success, nullopt on drop.
std::optional<int> route(const SparseOverlay& overlay,
                         const SparseFailure& failures, NodeIndex source,
                         NodeIndex target);

/// Monte-Carlo routability over sampled alive index pairs.
struct SparseEstimate {
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  double total_hops = 0.0;

  double routability() const noexcept {
    return attempts == 0
               ? 0.0
               : static_cast<double>(successes) /
                     static_cast<double>(attempts);
  }
  double failed_fraction() const noexcept { return 1.0 - routability(); }
  double mean_hops() const noexcept {
    return successes == 0 ? 0.0 : total_hops / static_cast<double>(successes);
  }
};

SparseEstimate estimate_routability(const SparseOverlay& overlay,
                                    const SparseFailure& failures,
                                    std::uint64_t pairs, math::Rng& rng);

}  // namespace dht::sparse
