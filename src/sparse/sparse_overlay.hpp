// Overlay interface for non-fully-populated identifier spaces.
//
// Mirrors sim::Overlay, but over node *indices* (0..N-1 in ring order)
// rather than identifiers, since most keys host no node.  The virtual
// next_hop path is the semantic oracle; the flattened kernels in
// sparse/flat_sparse.hpp replicate it hop for hop on contiguous tables.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "math/rng.hpp"
#include "obs/failure.hpp"
#include "sim/hop_stats.hpp"
#include "sparse/sparse_space.hpp"

namespace dht::sparse {

/// i.i.d. Bernoulli liveness over node indices (the sparse counterpart of
/// sim::FailureScenario).  Alongside the byte mask it keeps a dense array
/// of alive indices, so sample_alive is a single unbiased draw (O(1))
/// instead of rejection sampling -- at high failure probabilities rejection
/// would dominate the routing work itself.
class SparseFailure {
 public:
  SparseFailure(const SparseIdSpace& space, double q, math::Rng& rng);

  bool alive(NodeIndex index) const { return alive_[index] != 0; }
  std::uint64_t alive_count() const noexcept { return alive_ids_.size(); }
  std::uint64_t node_count() const noexcept { return alive_.size(); }

  /// Uniformly samples an alive node index with a single rng draw.  Works
  /// with any generator exposing uniform_below (math::Rng for the
  /// sequential engines, math::CounterRng for the per-lane streams of the
  /// batched estimator).  Precondition: alive_count() > 0.
  template <typename Generator>
  NodeIndex sample_alive(Generator& rng) const {
    DHT_CHECK(!alive_ids_.empty(), "no alive node to sample");
    return alive_ids_[rng.uniform_below(alive_ids_.size())];
  }

  /// Raw liveness mask (node_count() bytes, 1 = alive); the flattened
  /// routing kernels index this directly.
  const std::uint8_t* alive_data() const noexcept { return alive_.data(); }

 private:
  std::vector<std::uint8_t> alive_;
  std::vector<NodeIndex> alive_ids_;  // dense alive indices, ascending
};

class SparseOverlay {
 public:
  virtual ~SparseOverlay();

  virtual std::string_view name() const noexcept = 0;
  virtual const SparseIdSpace& space() const noexcept = 0;

  /// One forwarding step toward `target` (current != target); nullopt when
  /// the basic protocol drops the message.
  virtual std::optional<NodeIndex> next_hop(
      NodeIndex current, NodeIndex target,
      const SparseFailure& failures) const = 0;
};

/// Routes source -> target; returns hop count on success, nullopt on drop.
std::optional<int> route(const SparseOverlay& overlay,
                         const SparseFailure& failures, NodeIndex source,
                         NodeIndex target);

/// Monte-Carlo routability over sampled alive index pairs.  All counters
/// are exact integers (sim::HopStats for the hop distribution), so merging
/// per-shard estimates in a fixed order is associative and bit-identical to
/// a single pass over the concatenated routes -- the property the sharded
/// parallel estimator (sparse/flat_sparse.hpp) relies on.
struct SparseEstimate {
  std::uint64_t attempts = 0;
  sim::HopStats hops;  ///< hop counts of successful routes
  /// Per-cause failure counters (obs/failure.hpp); the former
  /// hop_limit_hits canary is the kHopLimit cell (accessor below).
  /// Conservation: attempts == hops.count() + failures.total().
  obs::FailureTaxonomy failures;
  // Workload-layer counters, all exact integers so merge/== extend to them
  // unchanged.  Zero when the corresponding feature is off, keeping the
  // historical estimates bit-compatible.
  std::uint64_t cache_probes = 0;  ///< path-cache lookups (flat engine)
  std::uint64_t cache_hits = 0;    ///< probes that short-circuited a route
  std::uint64_t gets = 0;          ///< replicated GETs issued (churn engine)
  std::uint64_t gets_available = 0;  ///< GETs that reached a live replica

  void record_arrival(std::uint64_t route_hops) noexcept {
    ++attempts;
    hops.add(route_hops);
  }
  void record_drop(obs::RouteFailure cause =
                       obs::RouteFailure::kDeadEntry) noexcept {
    ++attempts;
    failures.record(cause);
  }
  void record_hop_limit() noexcept {
    ++attempts;
    failures.record(obs::RouteFailure::kHopLimit);
  }

  /// The historical protocol-bug canary, preserved as an accessor over
  /// the taxonomy (should stay 0).
  std::uint64_t hop_limit_hits() const noexcept {
    return failures[obs::RouteFailure::kHopLimit];
  }

  /// Pools another estimate (e.g. a shard's) into this one; exact.
  void merge(const SparseEstimate& other) noexcept {
    attempts += other.attempts;
    hops.merge(other.hops);
    failures.merge(other.failures);
    cache_probes += other.cache_probes;
    cache_hits += other.cache_hits;
    gets += other.gets;
    gets_available += other.gets_available;
  }

  /// Exact counter equality -- what the cross-thread determinism gates
  /// (perf_simulator, test_flat_sparse) assert.
  bool operator==(const SparseEstimate&) const = default;

  std::uint64_t successes() const noexcept { return hops.count(); }
  double routability() const noexcept {
    return attempts == 0
               ? 0.0
               : static_cast<double>(successes()) /
                     static_cast<double>(attempts);
  }
  double failed_fraction() const noexcept { return 1.0 - routability(); }
  double mean_hops() const noexcept { return hops.mean(); }
  /// Fraction of cache probes that hit (0 with caching off).
  double cache_hit_rate() const noexcept {
    return cache_probes == 0 ? 0.0
                             : static_cast<double>(cache_hits) /
                                   static_cast<double>(cache_probes);
  }
  /// Data availability of replicated GETs: a GET succeeds when ANY replica
  /// attempt arrives, so availability >= routability.  Without replicated
  /// sampling (gets == 0) a GET is exactly a route; fall back to
  /// routability so the column stays meaningful in every mode.
  double availability() const noexcept {
    return gets == 0 ? routability()
                     : static_cast<double>(gets_available) /
                           static_cast<double>(gets);
  }
};

SparseEstimate estimate_routability(const SparseOverlay& overlay,
                                    const SparseFailure& failures,
                                    std::uint64_t pairs, math::Rng& rng);

}  // namespace dht::sparse
