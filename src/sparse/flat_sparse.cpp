#include "sparse/flat_sparse.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/hugepage.hpp"
#include "math/zipf.hpp"
#include "sim/shard_pool.hpp"
#include "sim/topology.hpp"
#include "sparse/sparse_chord.hpp"
#include "sparse/sparse_kademlia.hpp"
#include "sparse/sparse_symphony.hpp"

namespace dht::sparse {

namespace flat {

FlatSparseCtx make_sparse_ctx(const SparseOverlay& overlay,
                              const SparseFailure& failures,
                              std::uint64_t max_hops, bool use_flat_kernels) {
  const SparseIdSpace& space = overlay.space();
  FlatSparseCtx c;
  c.d = space.bits();
  c.key_mask = space.key_space_size() - 1;
  c.n = space.node_count();
  c.ids = space.ids().data();
  c.alive = failures.alive_data();
  c.max_hops = max_hops == 0 ? space.node_count() : max_hops;
  if (!use_flat_kernels) {
    return c;
  }
  if (const auto* chord = dynamic_cast<const SparseChordOverlay*>(&overlay)) {
    c.kind = SparseKernelKind::kChord;
    if (!chord->route_packed().empty()) {
      c.packed = chord->route_packed().data();
    } else {
      c.table = chord->route_targets().data();
      c.progress = chord->route_progress().data();
    }
    c.row_len = chord->route_lens().data();
    c.row_width = chord->route_stride();
  } else if (const auto* kad =
                 dynamic_cast<const SparseKademliaOverlay*>(&overlay)) {
    c.kind = SparseKernelKind::kKademlia;
    c.table = kad->contact_table().data();
    c.bucket_k = kad->bucket_k();
    c.row_width = c.d * kad->bucket_k();
  } else if (const auto* sym =
                 dynamic_cast<const SparseSymphonyOverlay*>(&overlay)) {
    c.kind = SparseKernelKind::kSymphony;
    c.table = sym->shortcut_table().data();
    c.row_width = sym->shortcuts();
    c.kn = sym->near_neighbors();
    c.ks = sym->shortcuts();
  }
  if (c.kind != SparseKernelKind::kGeneric) {
    // Pack the byte mask into bits once per engine invocation (the failure
    // scenario is frozen for the whole estimate): N/8 bytes instead of N,
    // small enough to stay cache-resident under the kernels' random probes.
    auto bits = std::make_shared<std::vector<std::uint64_t>>(c.n / 64 + 1, 0);
    for (std::uint64_t i = 0; i < c.n; ++i) {
      (*bits)[i >> 6] |= static_cast<std::uint64_t>(c.alive[i] ? 1 : 0)
                         << (i & 63);
    }
    c.alive_bits = bits->data();
    c.alive_bits_owner = std::move(bits);
  }
  return c;
}

namespace {

inline void record(SparseEstimate& estimate, SparseRouteStatus status,
                   int hops) {
  record_route(estimate, status, static_cast<std::uint64_t>(hops));
}

// The shared struct-of-arrays lane driver.  Retires every terminal lane
// (drop sentinel / arrival / hop cap), refills it from the pair source,
// then advances all still-active lanes one hop with the batch step; repeat
// until the pair source runs dry and every lane retires.  Lanes are
// serviced in lane order, so the whole schedule -- which lane routes which
// pair -- is a deterministic function of the pair source and the (rng-free)
// route outcomes, identically for the flat kernels and the virtual path.
//
// A freshly refilled pair is never terminal (source != target, 0 hops <
// max_hops >= 1), so one settle pass per turn suffices and a refilled lane
// steps in the same turn -- lanes never idle while pairs remain.
//
// Workload hooks, both no-ops in the default configuration: with a path
// cache (c.cache != null), each settled lane probes its current node's
// cache row before stepping -- a hit forwards straight to the cached
// owner in one hop, a miss installs the mapping (the lookup's answer IS
// the owner, so caching on the miss models response-path caching exactly).
// With load recording (c.load != null), every forward -- one per active
// lane per step, plus the cache-hit forward -- bumps the forwarding node's
// counter.  Both hooks are rng-free, so the pair handout schedule (and
// hence the draw streams) is untouched; with the hooks off the loop
// retires, refills, and steps in byte-for-byte the historical order.
template <typename PairSource, typename StepBatch>
void drive_lanes(const FlatSparseCtx& c, PairSource& pair_source,
                 SparseEstimate& estimate, StepBatch step_batch) {
  RouteBatch b;
  int active = 0;
  const auto refill = [&](int l) {
    NodeIndex source;
    NodeIndex target;
    std::uint32_t rank;
    if (!pair_source(l, source, target, rank)) {
      if (b.active[l]) {
        b.active[l] = 0;
        --active;
      }
      return;
    }
    b.cur[l] = source;
    b.target[l] = target;
    b.target_id[l] = c.ids[target];
    b.dist[l] = (b.target_id[l] - c.ids[source]) & c.key_mask;
    b.hops[l] = 0;
    b.rank[l] = rank;
    if (!b.active[l]) {
      b.active[l] = 1;
      ++active;
    }
  };
  // Probes lane l's object in its current node's cache row.  True on a
  // hit: the holder forwards straight to the cached owner (one hop, load
  // accounted), and the settle loop re-checks the lane -- which then
  // records the arrival.  The cached value always equals the object's
  // owner (the lane's target), so a hit can never misroute.
  const auto probe = [&](int l) -> bool {
    if (c.cache == nullptr || b.rank[l] == kNoRank) {
      return false;
    }
    const std::uint64_t entries =
        static_cast<std::uint64_t>(c.cache_entries);
    std::uint64_t& slot = c.cache[b.cur[l] * entries + b.rank[l] % entries];
    ++estimate.cache_probes;
    if (static_cast<std::uint32_t>(slot >> 32) == b.rank[l]) {
      ++estimate.cache_hits;
      if (c.load != nullptr) {
        c.load[b.cur[l]].fetch_add(1, std::memory_order_relaxed);
      }
      b.cur[l] = static_cast<NodeIndex>(slot);
      b.hops[l] += 1;
      return true;
    }
    slot = (static_cast<std::uint64_t>(b.rank[l]) << 32) | b.target[l];
    return false;
  };
  // Retires and refills lane l until it is steppable (mid-route with a
  // cache miss) or the pair source runs dry.  The batch kernels require
  // every active lane to be strictly mid-route, so a cache-hit jump to the
  // target must be resolved here, never handed to a kernel.
  const auto settle = [&](int l) {
    while (b.active[l]) {
      if (b.cur[l] == kNoNode) {
        record(estimate, SparseRouteStatus::kDropped,
               static_cast<int>(b.hops[l]));
        refill(l);
      } else if (b.cur[l] == b.target[l]) {
        record(estimate, SparseRouteStatus::kArrived,
               static_cast<int>(b.hops[l]));
        refill(l);
      } else if (b.hops[l] >= c.max_hops) {
        record(estimate, SparseRouteStatus::kHopLimit,
               static_cast<int>(b.hops[l]));
        refill(l);
      } else if (!probe(l)) {
        break;
      }
    }
  };
  for (int l = 0; l < RouteBatch::kLanes; ++l) {
    b.active[l] = 0;
    refill(l);
    settle(l);
  }
  while (active > 0) {
    if (c.load != nullptr) {
      for (int l = 0; l < RouteBatch::kLanes; ++l) {
        if (b.active[l]) {
          c.load[b.cur[l]].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    step_batch(c, b);
    for (int l = 0; l < RouteBatch::kLanes; ++l) {
      if (b.active[l]) {
        settle(l);
      }
    }
  }
}

// Production pair source: a shared budget of `pairs` draws, each lane
// sampling from its own counter-based stream.  Lane l's j-th pair is a
// pure function of (caller seed, shard, l, j) -- no sequential state is
// shared between lanes, so a lane's draws do not depend on how the other
// lanes' routes went (only *how many* pairs it gets does, and that is
// deterministic too: the driver is single-threaded per shard).
// Each lane keeps TWO pre-drawn pairs in flight, pipelined: a handout
// returns the front pair (whose identifiers and neighbor rows were
// prefetched one handout -- i.e. one whole route -- ago), promotes the
// back pair and warms its rows, and draws a fresh back pair.  The fresh
// draw's alive-id loads issue immediately but nothing needs their values
// until the NEXT handout, so the sampling misses overlap an entire route
// instead of stalling the refill.  Buffering never changes what is handed
// out: lane l's j-th handout is still its stream's j-th drawn pair, and
// the shared budget is spent at handout time, exactly as in the unbuffered
// loop (each lane's final buffered draws simply go unused -- lane streams
// are independent, so unused draws affect nothing).
// When the workload model is engaged (tables != null), a draw samples the
// source uniformly over alive nodes and the *object* by Zipf rank; the
// target is the object's precomputed owner.  Owner collisions (source
// already owns the object) redraw both, like the uniform path's
// target-equals-source redraw -- the loop terminates because at least two
// nodes are alive and the source is resampled each round.
struct WorkloadTables {
  const math::ZipfSampler* zipf = nullptr;
  const NodeIndex* owner = nullptr;  // object rank -> owning alive node
};

struct LanePairSource {
  LanePairSource(const FlatSparseCtx& c, const SparseFailure& failures,
                 const math::Rng& shard_rng, std::uint64_t pairs,
                 const WorkloadTables* workload = nullptr)
      : ctx_(c), failures_(failures), workload_(workload),
        remaining_(pairs) {
    for (int l = 0; l < RouteBatch::kLanes; ++l) {
      streams_[l] = shard_rng.counter_stream(static_cast<std::uint64_t>(l));
      front_[l] = draw(l);
      warm(front_[l]);
    }
  }

  bool operator()(int lane, NodeIndex& source, NodeIndex& target,
                  std::uint32_t& rank) {
    if (remaining_ == 0) {
      return false;
    }
    --remaining_;
    source = front_[lane].source;
    target = front_[lane].target;
    rank = front_[lane].rank;
    front_[lane] = draw(lane);
    warm(front_[lane]);
    return true;
  }

  struct Pair {
    NodeIndex source;
    NodeIndex target;
    std::uint32_t rank;
  };

  Pair draw(int lane) {
    math::CounterRng& rng = streams_[lane];
    if (workload_ == nullptr) {
      const NodeIndex source = failures_.sample_alive(rng);
      NodeIndex target = failures_.sample_alive(rng);
      while (target == source) {
        target = failures_.sample_alive(rng);
      }
      return Pair{source, target, kNoRank};
    }
    for (;;) {
      const NodeIndex source = failures_.sample_alive(rng);
      const std::uint64_t object = workload_->zipf->sample(rng);
      const NodeIndex target = workload_->owner[object];
      if (target != source) {
        return Pair{source, target, static_cast<std::uint32_t>(object)};
      }
    }
  }

  // Warm everything the pair's refill and first hop will touch.
  void warm(const Pair& p) const {
    __builtin_prefetch(&ctx_.ids[p.source]);
    __builtin_prefetch(&ctx_.ids[p.target]);
    const std::uint64_t row =
        p.source * static_cast<std::uint64_t>(ctx_.row_width);
    if (ctx_.packed != nullptr) {
      __builtin_prefetch(&ctx_.packed[row]);
    } else if (ctx_.table != nullptr) {
      __builtin_prefetch(&ctx_.table[row]);
      if (ctx_.progress != nullptr) {
        __builtin_prefetch(&ctx_.progress[row]);
      }
    }
  }

  const FlatSparseCtx& ctx_;
  const SparseFailure& failures_;
  const WorkloadTables* workload_;
  math::CounterRng streams_[RouteBatch::kLanes];
  Pair front_[RouteBatch::kLanes];
  std::uint64_t remaining_;
};

// Scripted pair source for the route_pairs_batched test hook: hands out a
// fixed pair list in order, whichever lane asks.
struct ListPairSource {
  bool operator()(int /*lane*/, NodeIndex& source, NodeIndex& target,
                  std::uint32_t& rank) {
    if (next == count) {
      return false;
    }
    source = pairs[next].first;
    target = pairs[next].second;
    rank = kNoRank;
    ++next;
    return true;
  }

  const std::pair<NodeIndex, NodeIndex>* pairs;
  std::uint64_t count;
  std::uint64_t next = 0;
};

// Virtual-dispatch batch step on the shared driver, so generic and flat
// runs share the lane schedule hop for hop and are bit-comparable.
struct GenericStepBatch {
  const SparseOverlay& overlay;
  const SparseFailure& failures;

  void operator()(const FlatSparseCtx&, RouteBatch& b) const {
    for (int l = 0; l < RouteBatch::kLanes; ++l) {
      if (!b.active[l]) {
        continue;
      }
      const auto next = overlay.next_hop(b.cur[l], b.target[l], failures);
      if (!next.has_value()) {
        b.cur[l] = kNoNode;
        continue;
      }
      b.cur[l] = *next;
      b.hops[l] += 1;
    }
  }
};

template <typename PairSource>
void run_lanes(const FlatSparseCtx& c, const SparseOverlay& overlay,
               const SparseFailure& failures, PairSource& pair_source,
               SparseEstimate& estimate) {
  switch (c.kind) {
    case SparseKernelKind::kChord:
      drive_lanes(c, pair_source, estimate,
                  [](const FlatSparseCtx& ctx, RouteBatch& b) {
                    step_batch_chord(ctx, b);
                  });
      return;
    case SparseKernelKind::kKademlia:
      drive_lanes(c, pair_source, estimate,
                  [](const FlatSparseCtx& ctx, RouteBatch& b) {
                    step_batch_kademlia(ctx, b);
                  });
      return;
    case SparseKernelKind::kSymphony:
      drive_lanes(c, pair_source, estimate,
                  [](const FlatSparseCtx& ctx, RouteBatch& b) {
                    step_batch_symphony(ctx, b);
                  });
      return;
    case SparseKernelKind::kGeneric:
      drive_lanes(c, pair_source, estimate,
                  GenericStepBatch{overlay, failures});
      return;
  }
}

// Per-NUMA-node replica of the read-only routing state.  The owning
// vectors are first-touched by a thread pinned to the replica's node, so
// every worker's hot loads resolve in local memory.
struct CtxReplica {
  std::vector<std::uint64_t> ids;
  std::vector<std::uint8_t> alive;
  std::vector<std::uint64_t> alive_bits;
  std::vector<NodeIndex> table;
  std::vector<std::uint64_t> packed;
  std::vector<std::uint64_t> progress;
  std::vector<std::uint8_t> row_len;
  FlatSparseCtx ctx;

  void copy_from(const FlatSparseCtx& c) {
    ctx = c;
    const std::uint64_t table_len =
        c.n * static_cast<std::uint64_t>(c.row_width);
    common::reserve_hugepages(ids, c.n);
    common::reserve_hugepages(table, table_len);
    if (c.packed != nullptr) {
      common::reserve_hugepages(packed, table_len);
    }
    if (c.progress != nullptr) {
      common::reserve_hugepages(progress, table_len);
    }
    ids.assign(c.ids, c.ids + c.n);
    ctx.ids = ids.data();
    alive.assign(c.alive, c.alive + c.n);
    ctx.alive = alive.data();
    if (c.alive_bits != nullptr) {
      alive_bits.assign(c.alive_bits, c.alive_bits + c.n / 64 + 1);
      ctx.alive_bits = alive_bits.data();
      ctx.alive_bits_owner = nullptr;
    }
    if (c.packed != nullptr) {
      packed.assign(c.packed, c.packed + table_len);
      ctx.packed = packed.data();
    }
    if (c.progress != nullptr) {
      progress.assign(c.progress, c.progress + table_len);
      ctx.progress = progress.data();
    }
    if (c.row_len != nullptr) {
      row_len.assign(c.row_len, c.row_len + c.n);
      ctx.row_len = row_len.data();
    }
    if (c.table != nullptr && table_len > 0) {
      table.assign(c.table, c.table + table_len);
      ctx.table = table.data();
    }
  }
};

// Builds one replica per NUMA node, each copied by a thread pinned to that
// node (first-touch places the pages locally).  The copies hold the same
// bytes as the original context, so routing through any of them is
// bit-identical; node 0's replica is built too, keeping the code path
// uniform (and exercised) on single-socket machines.
std::vector<CtxReplica> build_replicas(const FlatSparseCtx& c) {
  const sim::Topology& topo = sim::topology();
  std::vector<CtxReplica> replicas(topo.nodes());
  std::vector<std::thread> builders;
  builders.reserve(replicas.size());
  for (std::size_t node = 0; node < replicas.size(); ++node) {
    builders.emplace_back([&, node] {
      (void)sim::pin_current_thread(topo.node_cpus[node].front());
      replicas[node].copy_from(c);
    });
  }
  for (std::thread& t : builders) {
    t.join();
  }
  return replicas;
}

}  // namespace

void route_pairs_batched(const FlatSparseCtx& c, const SparseOverlay& overlay,
                         const SparseFailure& failures,
                         const std::pair<NodeIndex, NodeIndex>* pairs,
                         std::uint64_t count, SparseEstimate& estimate) {
  ListPairSource source{pairs, count};
  run_lanes(c, overlay, failures, source, estimate);
}

}  // namespace flat

SparseEstimate estimate_routability_parallel(
    const SparseOverlay& overlay, const SparseFailure& failures,
    const SparseParallelOptions& options, const math::Rng& rng) {
  return estimate_workload_parallel(overlay, failures, options, rng).estimate;
}

SparseWorkloadReport estimate_workload_parallel(
    const SparseOverlay& overlay, const SparseFailure& failures,
    const SparseParallelOptions& options, const math::Rng& rng) {
  DHT_CHECK(failures.alive_count() >= 2,
            "routability needs at least two alive nodes");
  DHT_CHECK(options.pairs > 0, "at least one pair must be sampled");
  const SparseWorkloadOptions& wl = options.workload;
  DHT_CHECK(std::isfinite(wl.zipf_s) && wl.zipf_s >= 0.0,
            "workload zipf skew must be finite and >= 0");
  DHT_CHECK(wl.cache_entries >= 0, "cache entries must be >= 0");
  DHT_CHECK(wl.objects <= (std::uint64_t{1} << 26),
            "workload object count exceeds the 2^26 population cap");
  // Observability is a timing side-channel: null sinks (the default) read
  // no clock, shard profiles reduce in shard order, and nothing here
  // feeds back into the estimates.
  const bool observed = options.profile != nullptr || options.trace != nullptr;
  obs::PhaseProfile serial_profile;
  obs::PhaseProfile* const serial = observed ? &serial_profile : nullptr;
  obs::PhaseTimer build_timer(serial, obs::Phase::kWorldBuild, options.trace);
  flat::FlatSparseCtx ctx = flat::make_sparse_ctx(
      overlay, failures, options.max_hops, options.use_flat_kernels);

  // Workload tables, built once and shared read-only by every shard.  The
  // object->key map is a fixed keyed hash (independent of the caller seed,
  // so the object placement is a property of the space alone); the owner
  // is the key's successor, walked clockwise past dead nodes -- the
  // consistent-hashing reassignment a real DHT performs on failure.
  flat::WorkloadTables tables;
  std::optional<math::ZipfSampler> zipf;
  std::vector<NodeIndex> owner;
  if (wl.enabled()) {
    const std::uint64_t objects =
        wl.objects != 0 ? wl.objects : failures.alive_count();
    zipf.emplace(objects, wl.zipf_s);
    const SparseIdSpace& space = overlay.space();
    const math::CounterRng object_keys(0xb10c9a3f0b173c75ULL);
    owner.resize(objects);
    for (std::uint64_t o = 0; o < objects; ++o) {
      NodeIndex holder =
          space.successor_of_key(object_keys.at(o) & ctx.key_mask);
      while (!failures.alive(holder)) {
        holder = space.ring_step(holder, 1);
      }
      owner[o] = holder;
    }
    tables.zipf = &*zipf;
    tables.owner = owner.data();
    ctx.cache_entries = wl.cache_entries;
  }

  // One shared per-node load array: relaxed atomic adds commute, so the
  // final counts are independent of thread interleaving (load_stats.hpp).
  std::vector<std::atomic<std::uint64_t>> loads;
  if (wl.record_load) {
    loads = std::vector<std::atomic<std::uint64_t>>(ctx.n);
    ctx.load = loads.data();
  }

  // Optional per-socket copies of the read-only routing state; workers pick
  // the replica local to wherever they run.  Bit-identical either way.
  std::vector<flat::CtxReplica> replicas;
  if (options.numa_replicate_tables &&
      ctx.kind != flat::SparseKernelKind::kGeneric) {
    replicas = flat::build_replicas(ctx);
  }

  build_timer.stop();

  const std::uint64_t shards =
      options.shards != 0 ? options.shards
                          : std::min<std::uint64_t>(options.pairs, 256);
  const std::uint64_t base = options.pairs / shards;
  const std::uint64_t extra = options.pairs % shards;

  std::vector<SparseEstimate> results(shards);
  std::vector<obs::PhaseProfile> shard_profiles(observed ? shards : 0);
  sim::run_sharded(
      shards,
      sim::PoolOptions{.threads = sim::resolve_threads(options.threads),
                       .pin_workers = options.pin_workers},
      [&](std::uint64_t s) {
        obs::PhaseTimer route_timer(observed ? &shard_profiles[s] : nullptr,
                                    obs::Phase::kRoute, options.trace);
        // Shard s is a pure function of (caller seed, s): fork a private
        // stream whose counter_stream(lane) draws sample the shard's slice
        // of the pair budget.
        const math::Rng shard_rng = rng.fork(s);
        const std::uint64_t pairs = base + (s < extra ? 1 : 0);
        flat::FlatSparseCtx local =
            replicas.empty()
                ? ctx
                : replicas[static_cast<std::size_t>(sim::current_numa_node()) %
                           replicas.size()]
                      .ctx;
        // Shard-private path cache (empty slots are all-ones): hits are a
        // pure function of the shard's lane schedule, so the estimate
        // stays bit-identical at any thread count.  Only ~thread-count
        // caches are live at once, so the n * entries footprint never
        // multiplies by the shard count.
        std::vector<std::uint64_t> cache;
        if (local.cache_entries > 0) {
          cache.assign(local.n * static_cast<std::uint64_t>(
                                     local.cache_entries),
                       ~std::uint64_t{0});
          local.cache = cache.data();
        }
        flat::LanePairSource source(local, failures, shard_rng, pairs,
                                    tables.zipf != nullptr ? &tables
                                                           : nullptr);
        SparseEstimate estimate;
        flat::run_lanes(local, overlay, failures, source, estimate);
        results[s] = estimate;
      });

  SparseWorkloadReport report;
  {
    obs::PhaseTimer merge_timer(serial, obs::Phase::kMerge, options.trace);
    for (const SparseEstimate& shard : results) {
      report.estimate.merge(shard);
    }
    if (wl.record_load) {
      std::vector<std::uint64_t> counts(loads.size());
      for (std::size_t i = 0; i < loads.size(); ++i) {
        counts[i] = loads[i].load(std::memory_order_relaxed);
      }
      report.load = sim::summarize_load(
          counts, [&](std::size_t i) {
            return failures.alive(static_cast<NodeIndex>(i));
          });
    }
  }
  if (options.profile != nullptr) {
    options.profile->merge(serial_profile);
    for (const obs::PhaseProfile& p : shard_profiles) {
      options.profile->merge(p);
    }
  }
  return report;
}

}  // namespace dht::sparse
