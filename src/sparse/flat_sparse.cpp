#include "sparse/flat_sparse.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "sim/shard_pool.hpp"
#include "sparse/sparse_chord.hpp"
#include "sparse/sparse_kademlia.hpp"
#include "sparse/sparse_symphony.hpp"

namespace dht::sparse {

namespace flat {

FlatSparseCtx make_sparse_ctx(const SparseOverlay& overlay,
                              const SparseFailure& failures,
                              std::uint64_t max_hops, bool use_flat_kernels) {
  const SparseIdSpace& space = overlay.space();
  FlatSparseCtx c;
  c.d = space.bits();
  c.key_mask = space.key_space_size() - 1;
  c.n = space.node_count();
  c.ids = space.ids().data();
  c.alive = failures.alive_data();
  c.max_hops = max_hops == 0 ? space.node_count() : max_hops;
  if (!use_flat_kernels) {
    return c;
  }
  if (const auto* chord = dynamic_cast<const SparseChordOverlay*>(&overlay)) {
    c.kind = SparseKernelKind::kChord;
    c.table = chord->route_targets().data();
    c.row_offsets = chord->route_offsets().data();
    c.progress = chord->route_progress().data();
  } else if (const auto* kad =
                 dynamic_cast<const SparseKademliaOverlay*>(&overlay)) {
    c.kind = SparseKernelKind::kKademlia;
    c.table = kad->contact_table().data();
    c.bucket_k = kad->bucket_k();
    c.row_width = c.d * kad->bucket_k();
  } else if (const auto* sym =
                 dynamic_cast<const SparseSymphonyOverlay*>(&overlay)) {
    c.kind = SparseKernelKind::kSymphony;
    c.table = sym->shortcut_table().data();
    c.row_width = sym->shortcuts();
    c.kn = sym->near_neighbors();
    c.ks = sym->shortcuts();
  }
  return c;
}

namespace {

// Virtual-dispatch fallback on the shared driver, so generic and flat runs
// get identical hop-cap accounting and are comparable field by field.
SparseRouteResult route_generic(const FlatSparseCtx& c,
                                const SparseOverlay& overlay,
                                const SparseFailure& failures,
                                NodeIndex source, NodeIndex target) {
  return route_flat(c, source, target,
                    [&overlay, &failures, target](const FlatSparseCtx&,
                                                  NodeIndex cur,
                                                  std::uint64_t) {
                      const auto next = overlay.next_hop(cur, target, failures);
                      return next.has_value() ? *next : kNoNode;
                    });
}

// Samples the next ordered alive pair from the shard's private stream.
inline std::pair<NodeIndex, NodeIndex> draw_pair(const SparseFailure& failures,
                                                 math::Rng& rng) {
  const NodeIndex source = failures.sample_alive(rng);
  NodeIndex target = failures.sample_alive(rng);
  while (target == source) {
    target = failures.sample_alive(rng);
  }
  return {source, target};
}

inline void record(SparseEstimate& estimate, SparseRouteStatus status,
                   int hops) {
  switch (status) {
    case SparseRouteStatus::kArrived:
      estimate.record_arrival(static_cast<std::uint64_t>(hops));
      break;
    case SparseRouteStatus::kDropped:
      estimate.record_drop();
      break;
    case SparseRouteStatus::kHopLimit:
      estimate.record_hop_limit();
      break;
  }
}

// Interleaved shard loop: kLanes independent routes advance one hop per
// turn, so their table/id/liveness loads overlap in the memory pipeline
// instead of serializing on cache misses -- the win that matters once
// million-node tables outgrow the caches.  The result is bit-identical to
// routing the pairs one by one: pairs are drawn from the shard stream in a
// fixed order (a lane refills only when its route ends, and lanes are
// serviced round-robin, so the draw schedule is a pure function of the
// route outcomes, which are rng-free), every route's outcome is unchanged,
// and SparseEstimate's counters are commutative across routes.
template <typename Step>
void run_lanes(const FlatSparseCtx& c, const SparseFailure& failures,
               std::uint64_t pairs, math::Rng& rng, SparseEstimate& estimate,
               Step step) {
  constexpr int kLanes = 8;
  struct Lane {
    NodeIndex cur = 0;
    NodeIndex target = 0;
    std::uint64_t target_id = 0;
    int hops = 0;
    bool active = false;
  };
  Lane lanes[kLanes];
  std::uint64_t drawn = 0;
  int active = 0;
  const auto refill = [&](Lane& lane) {
    if (drawn == pairs) {
      lane.active = false;
      --active;
      return;
    }
    const auto [source, target] = draw_pair(failures, rng);
    lane.cur = source;
    lane.target = target;
    lane.target_id = c.ids[target];
    lane.hops = 0;
    lane.active = true;
    ++drawn;
  };
  for (Lane& lane : lanes) {
    lane.active = true;
    ++active;
    refill(lane);
  }
  while (active > 0) {
    for (Lane& lane : lanes) {
      if (!lane.active) {
        continue;
      }
      if (lane.cur == lane.target) {
        record(estimate, SparseRouteStatus::kArrived, lane.hops);
        refill(lane);
        continue;
      }
      if (static_cast<std::uint64_t>(lane.hops) >= c.max_hops) {
        record(estimate, SparseRouteStatus::kHopLimit, lane.hops);
        refill(lane);
        continue;
      }
      const NodeIndex next = step(c, lane.cur, lane.target_id);
      if (next == kNoNode) {
        record(estimate, SparseRouteStatus::kDropped, lane.hops);
        refill(lane);
        continue;
      }
      lane.cur = next;
      ++lane.hops;
    }
  }
}

void run_shard(const FlatSparseCtx& c, const SparseOverlay& overlay,
               const SparseFailure& failures, std::uint64_t pairs,
               math::Rng& rng, SparseEstimate& estimate) {
  switch (c.kind) {
    case SparseKernelKind::kChord:
      run_lanes(c, failures, pairs, rng, estimate,
                [](const FlatSparseCtx& ctx, NodeIndex cur,
                   std::uint64_t target_id) {
                  return step_sparse_chord(ctx, cur, target_id);
                });
      return;
    case SparseKernelKind::kKademlia:
      run_lanes(c, failures, pairs, rng, estimate,
                [](const FlatSparseCtx& ctx, NodeIndex cur,
                   std::uint64_t target_id) {
                  return step_sparse_kademlia(ctx, cur, target_id);
                });
      return;
    case SparseKernelKind::kSymphony:
      run_lanes(c, failures, pairs, rng, estimate,
                [](const FlatSparseCtx& ctx, NodeIndex cur,
                   std::uint64_t target_id) {
                  return step_sparse_symphony(ctx, cur, target_id);
                });
      return;
    case SparseKernelKind::kGeneric:
      break;
  }
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const auto [source, target] = draw_pair(failures, rng);
    const SparseRouteResult result =
        route_generic(c, overlay, failures, source, target);
    record(estimate, result.status, result.hops);
  }
}

}  // namespace

}  // namespace flat

SparseEstimate estimate_routability_parallel(
    const SparseOverlay& overlay, const SparseFailure& failures,
    const SparseParallelOptions& options, const math::Rng& rng) {
  DHT_CHECK(failures.alive_count() >= 2,
            "routability needs at least two alive nodes");
  DHT_CHECK(options.pairs > 0, "at least one pair must be sampled");
  const flat::FlatSparseCtx ctx = flat::make_sparse_ctx(
      overlay, failures, options.max_hops, options.use_flat_kernels);

  const std::uint64_t shards =
      options.shards != 0 ? options.shards
                          : std::min<std::uint64_t>(options.pairs, 256);
  const std::uint64_t base = options.pairs / shards;
  const std::uint64_t extra = options.pairs % shards;

  std::vector<SparseEstimate> results(shards);
  sim::run_sharded(
      shards, sim::resolve_threads(options.threads), [&](std::uint64_t s) {
        // Shard s is a pure function of (caller seed, s): fork a private
        // stream, sample its slice of the pair budget, route.
        math::Rng shard_rng = rng.fork(s);
        const std::uint64_t pairs = base + (s < extra ? 1 : 0);
        SparseEstimate estimate;
        flat::run_shard(ctx, overlay, failures, pairs, shard_rng, estimate);
        results[s] = estimate;
      });

  SparseEstimate merged;
  for (const SparseEstimate& shard : results) {
    merged.merge(shard);
  }
  return merged;
}

}  // namespace dht::sparse
