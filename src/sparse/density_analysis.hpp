// The density reduction: predicting sparse-DHT routability with the dense
// RCM model.
//
// In an N-node network over a 2^d key space (N << 2^d), each node's routing
// state collapses to the occupancy scale: Chord has ~log2 N *distinct*
// fingers (all fingers past the mean gap hit the same few successors) and
// Kademlia has ~log2 N non-empty buckets.  The natural extension of the
// paper's analysis -- its Section 6 future work -- is therefore to evaluate
// the fully-populated model at the *effective* identifier length
// d' = log2 N.  The ext_sparse_population benchmark and test_sparse verify
// this reduction: measured sparse routability is essentially independent of
// the key-space size and matches the dense model at d'.
#pragma once

#include "core/geometry.hpp"
#include "core/routability.hpp"

namespace dht::sparse {

/// The effective identifier length of an N-node network: round(log2 N).
/// Precondition: node_count >= 2.
int effective_bits(std::uint64_t node_count);

/// Dense-model prediction for a sparse system: Eq. 3 evaluated at
/// d' = effective_bits(node_count).
core::RoutabilityPoint predict_sparse_routability(
    const core::Geometry& geometry, std::uint64_t node_count, double q);

}  // namespace dht::sparse
