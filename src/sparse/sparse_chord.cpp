#include "sparse/sparse_chord.hpp"

#include "common/check.hpp"

namespace dht::sparse {

SparseChordOverlay::SparseChordOverlay(const SparseIdSpace& space)
    : space_(&space) {
  const int d = space.bits();
  const std::uint64_t n = space.node_count();
  const std::uint64_t size = space.key_space_size();
  fingers_.resize(n * static_cast<std::uint64_t>(d));
  for (NodeIndex v = 0; v < n; ++v) {
    const sim::NodeId base = space.id_of(v);
    for (int i = 1; i <= d; ++i) {
      const sim::NodeId key =
          (base + (std::uint64_t{1} << (d - i))) & (size - 1);
      fingers_[v * static_cast<std::uint64_t>(d) +
               static_cast<std::uint64_t>(i - 1)] = space.successor_of_key(key);
    }
  }
}

NodeIndex SparseChordOverlay::finger(NodeIndex node, int index) const {
  DHT_CHECK(node < space_->node_count(), "node index out of range");
  DHT_CHECK(index >= 1 && index <= space_->bits(),
            "finger index out of range");
  return fingers_[node * static_cast<std::uint64_t>(space_->bits()) +
                  static_cast<std::uint64_t>(index - 1)];
}

std::optional<NodeIndex> SparseChordOverlay::next_hop(
    NodeIndex current, NodeIndex target,
    const SparseFailure& failures) const {
  DHT_CHECK(current != target, "next_hop requires current != target");
  const int d = space_->bits();
  const sim::NodeId current_id = space_->id_of(current);
  const std::uint64_t distance =
      sim::ring_distance(current_id, space_->id_of(target), d);
  // Greedy clockwise without overshoot.  Sparse finger offsets are not
  // strictly ordered by index (each is a successor jump past the dyadic
  // point), so scan all fingers and keep the best admissible alive one.
  std::uint64_t best_progress = 0;
  NodeIndex best = current;
  for (int i = 1; i <= d; ++i) {
    const NodeIndex f = finger(current, i);
    if (f == current) {
      continue;  // finger wrapped onto ourselves (tiny networks)
    }
    const std::uint64_t progress =
        sim::ring_distance(current_id, space_->id_of(f), d);
    if (progress > distance || progress <= best_progress) {
      continue;
    }
    if (failures.alive(f)) {
      best_progress = progress;
      best = f;
    }
  }
  if (best_progress == 0) {
    return std::nullopt;
  }
  return best;
}

}  // namespace dht::sparse
