#include "sparse/sparse_chord.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/hugepage.hpp"

namespace dht::sparse {

SparseChordOverlay::SparseChordOverlay(const SparseIdSpace& space)
    : space_(&space) {
  const int d = space.bits();
  const std::uint64_t n = space.node_count();
  const std::uint64_t size = space.key_space_size();
  const std::uint64_t mask = size - 1;
  common::reserve_hugepages(fingers_, n * static_cast<std::uint64_t>(d));
  fingers_.resize(n * static_cast<std::uint64_t>(d));
  // First pass: distinct fingers per node, CSR-compressed into temporaries.
  std::vector<std::uint64_t> offsets;
  std::vector<std::uint64_t> progress_csr;
  std::vector<NodeIndex> targets_csr;
  offsets.reserve(n + 1);
  offsets.push_back(0);
  std::vector<std::pair<std::uint64_t, NodeIndex>> row;
  row.reserve(static_cast<std::size_t>(d));
  std::uint64_t widest = 1;
  for (NodeIndex v = 0; v < n; ++v) {
    const sim::NodeId base = space.id_of(v);
    row.clear();
    for (int i = 1; i <= d; ++i) {
      const sim::NodeId key =
          (base + (std::uint64_t{1} << (d - i))) & mask;
      const NodeIndex f = space.successor_of_key(key);
      fingers_[v * static_cast<std::uint64_t>(d) +
               static_cast<std::uint64_t>(i - 1)] = f;
      if (f != v) {
        row.emplace_back((space.id_of(f) - base) & mask, f);
      }
    }
    // Distinct fingers sorted by decreasing progress; equal progress means
    // the same identifier, i.e. the same node, so dedup drops exactly the
    // fingers that collapsed onto one successor.
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    row.erase(std::unique(row.begin(), row.end()), row.end());
    for (const auto& [progress, target] : row) {
      progress_csr.push_back(progress);
      targets_csr.push_back(target);
    }
    offsets.push_back(progress_csr.size());
    widest = std::max<std::uint64_t>(widest, row.size());
  }
  // Second pass: repack into fixed-stride rows, padded with (0, kNoNode).
  // Real entries always have progress > 0 (self-links were dropped above),
  // so pads never look admissible and mark the end of a row.  Stride
  // rounded to a whole number of 64-byte lines keeps rows line-aligned.
  route_stride_ = static_cast<int>((widest + 7) & ~std::uint64_t{7});
  const std::uint64_t stride = static_cast<std::uint64_t>(route_stride_);
  route_lens_.resize(n);
  for (NodeIndex v = 0; v < n; ++v) {
    route_lens_[v] = static_cast<std::uint8_t>(offsets[v + 1] - offsets[v]);
  }
  if (d <= 32) {
    // Packed shape: (progress << 32) | target per entry; pad is
    // (0 << 32) | kNoNode, below every admissibility key.
    common::reserve_hugepages(route_packed_, n * stride);
    route_packed_.assign(n * stride, std::uint64_t{kNoNode});
    for (NodeIndex v = 0; v < n; ++v) {
      const std::uint64_t lo = offsets[v];
      const std::uint64_t len = offsets[v + 1] - lo;
      for (std::uint64_t e = 0; e < len; ++e) {
        route_packed_[v * stride + e] =
            (progress_csr[lo + e] << 32) | targets_csr[lo + e];
      }
    }
  } else {
    common::reserve_hugepages(route_progress_, n * stride);
    common::reserve_hugepages(route_targets_, n * stride);
    route_progress_.assign(n * stride, 0);
    route_targets_.assign(n * stride, kNoNode);
    for (NodeIndex v = 0; v < n; ++v) {
      const std::uint64_t lo = offsets[v];
      const std::uint64_t len = offsets[v + 1] - lo;
      std::copy_n(
          progress_csr.begin() + static_cast<std::ptrdiff_t>(lo), len,
          route_progress_.begin() + static_cast<std::ptrdiff_t>(v * stride));
      std::copy_n(
          targets_csr.begin() + static_cast<std::ptrdiff_t>(lo), len,
          route_targets_.begin() + static_cast<std::ptrdiff_t>(v * stride));
    }
  }
}

NodeIndex SparseChordOverlay::finger(NodeIndex node, int index) const {
  DHT_CHECK(node < space_->node_count(), "node index out of range");
  DHT_CHECK(index >= 1 && index <= space_->bits(),
            "finger index out of range");
  return fingers_[node * static_cast<std::uint64_t>(space_->bits()) +
                  static_cast<std::uint64_t>(index - 1)];
}

std::optional<NodeIndex> SparseChordOverlay::next_hop(
    NodeIndex current, NodeIndex target,
    const SparseFailure& failures) const {
  // Range checks live here at the API boundary; the scan below reads the
  // finger row and id array raw (finger()/id_of() would re-check per call).
  DHT_CHECK(current != target, "next_hop requires current != target");
  DHT_CHECK(current < space_->node_count() && target < space_->node_count(),
            "node index out of range");
  const int d = space_->bits();
  const sim::NodeId* ids = space_->ids().data();
  const NodeIndex* row = fingers_.data() + current * static_cast<std::uint64_t>(d);
  const sim::NodeId current_id = ids[current];
  const std::uint64_t distance =
      sim::ring_distance(current_id, ids[target], d);
  // Greedy clockwise without overshoot.  Sparse finger offsets are not
  // strictly ordered by index (each is a successor jump past the dyadic
  // point), so scan all fingers and keep the best admissible alive one.
  std::uint64_t best_progress = 0;
  NodeIndex best = current;
  for (int i = 0; i < d; ++i) {
    const NodeIndex f = row[i];
    if (f == current) {
      continue;  // finger wrapped onto ourselves (tiny networks)
    }
    const std::uint64_t progress =
        sim::ring_distance(current_id, ids[f], d);
    if (progress > distance || progress <= best_progress) {
      continue;
    }
    if (failures.alive(f)) {
      best_progress = progress;
      best = f;
    }
  }
  if (best_progress == 0) {
    return std::nullopt;
  }
  return best;
}

}  // namespace dht::sparse
