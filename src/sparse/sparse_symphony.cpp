#include "sparse/sparse_symphony.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/hugepage.hpp"

namespace dht::sparse {

SparseSymphonyOverlay::SparseSymphonyOverlay(const SparseIdSpace& space,
                                             int near_neighbors,
                                             int shortcuts, math::Rng& rng)
    : space_(&space), kn_(near_neighbors), ks_(shortcuts) {
  DHT_CHECK(kn_ >= 1, "symphony requires at least one near neighbor");
  DHT_CHECK(ks_ >= 1, "symphony requires at least one shortcut");
  DHT_CHECK(static_cast<std::uint64_t>(kn_ + ks_) < space.node_count(),
            "kn + ks must be smaller than the network");
  const std::uint64_t n = space.node_count();
  const std::uint64_t keys = space.key_space_size();
  const double log_range = std::log(static_cast<double>(keys - 1));
  common::reserve_hugepages(shortcuts_, n * static_cast<std::uint64_t>(ks_));
  shortcuts_.resize(n * static_cast<std::uint64_t>(ks_));
  for (NodeIndex v = 0; v < n; ++v) {
    const sim::NodeId base = space.id_of(v);
    for (int j = 0; j < ks_; ++j) {
      // Harmonic key distance, then link to the owning node.  Re-draw when
      // the owner degenerates to the node itself (tiny offsets whose whole
      // gap belongs to v's successor arc are fine; landing back on v is
      // not a usable link).
      NodeIndex link = v;
      for (int attempt = 0; attempt < 64 && link == v; ++attempt) {
        const double u = rng.uniform01();
        std::uint64_t offset =
            static_cast<std::uint64_t>(std::exp(u * log_range));
        offset = std::min<std::uint64_t>(std::max<std::uint64_t>(offset, 1),
                                         keys - 1);
        link = space.successor_of_key((base + offset) & (keys - 1));
      }
      if (link == v) {
        link = space.ring_step(v, 1);  // degenerate fallback: successor
      }
      shortcuts_[v * static_cast<std::uint64_t>(ks_) +
                 static_cast<std::uint64_t>(j)] = link;
    }
  }
}

NodeIndex SparseSymphonyOverlay::shortcut(NodeIndex node, int j) const {
  DHT_CHECK(node < space_->node_count(), "node index out of range");
  DHT_CHECK(j >= 0 && j < ks_, "shortcut index out of range");
  return shortcuts_[node * static_cast<std::uint64_t>(ks_) +
                    static_cast<std::uint64_t>(j)];
}

std::optional<NodeIndex> SparseSymphonyOverlay::next_hop(
    NodeIndex current, NodeIndex target,
    const SparseFailure& failures) const {
  // Range checks live here at the API boundary; the scans below read the
  // shortcut row and id array raw (shortcut()/id_of()/ring_step() would
  // re-check per call on the hot path).
  DHT_CHECK(current != target, "next_hop requires current != target");
  DHT_CHECK(current < space_->node_count() && target < space_->node_count(),
            "node index out of range");
  const int d = space_->bits();
  const std::uint64_t n = space_->node_count();
  const sim::NodeId* ids = space_->ids().data();
  const NodeIndex* row =
      shortcuts_.data() + current * static_cast<std::uint64_t>(ks_);
  const sim::NodeId current_id = ids[current];
  const std::uint64_t distance =
      sim::ring_distance(current_id, ids[target], d);

  std::uint64_t best_progress = 0;
  NodeIndex best = current;
  const auto consider = [&](NodeIndex link) {
    if (link == current) {
      return;
    }
    const std::uint64_t progress =
        sim::ring_distance(current_id, ids[link], d);
    if (progress > distance || progress <= best_progress) {
      return;  // overshoots, or no better than the current best
    }
    if (failures.alive(link)) {
      best_progress = progress;
      best = link;
    }
  };
  for (int j = 0; j < ks_; ++j) {
    consider(row[j]);
  }
  for (int k = 1; k <= kn_; ++k) {
    consider(static_cast<NodeIndex>((current + static_cast<std::uint64_t>(k)) %
                                    n));
  }
  if (best_progress == 0) {
    return std::nullopt;
  }
  return best;
}

}  // namespace dht::sparse
