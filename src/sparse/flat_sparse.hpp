// Flattened routing kernels and the sharded parallel estimator for
// non-fully-populated identifier spaces.
//
// The virtual SparseOverlay::next_hop path (sparse_overlay.hpp) is the
// semantic oracle; these kernels replicate it hop for hop on contiguous
// state -- the sorted id array (index -> identifier), the row-major
// neighbor tables (Chord fingers / Kademlia contacts / Symphony
// shortcuts), and the raw liveness mask -- with no virtual dispatch, no
// std::optional, and no precondition re-checks per hop.  This is the
// sim/flat_route.hpp pattern with the id->index indirection folded in:
// kernels compare *identifiers* (read through c.ids) but step between
// *indices*, which is what lets a 2^20-node population routed in a 2^63
// key space touch only O(N) state.
//
// estimate_routability_parallel shards the pair budget over
// sim/shard_pool.hpp exactly like the dense engine: shard k draws from
// Rng::fork(k), per-shard SparseEstimates (exact integer counters) are
// merged in shard order, so results are bit-identical at any thread count.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "math/rng.hpp"
#include "obs/phase_timer.hpp"
#include "sim/load_stats.hpp"
#include "sparse/sparse_overlay.hpp"

namespace dht::sparse {
namespace flat {

enum class SparseKernelKind {
  kGeneric,  // unknown overlay type: route through virtual next_hop
  kChord,
  kKademlia,
  kSymphony,
};

enum class SparseRouteStatus {
  kArrived,   // message reached the target
  kDropped,   // no admissible alive neighbor (failed path)
  kHopLimit,  // safety cap exceeded -- indicates a protocol bug
};

struct SparseRouteResult {
  SparseRouteStatus status = SparseRouteStatus::kDropped;
  int hops = 0;
};

/// Folds one retired route into the estimate counters.  Shared by the
/// static lane driver and the churn engine's batch driver: every counter
/// is a commutative sum, which is exactly why retirement order (and hence
/// batch scheduling) can never change a merged estimate.  `drop_cause`
/// classifies a kDropped retirement for the failure taxonomy
/// (obs/failure.hpp); the static kernels only ever stall on dead entries,
/// so the default covers them, while the churn drivers pass the cause
/// they diagnosed at the drop site.
inline void record_route(
    SparseEstimate& estimate, SparseRouteStatus status, std::uint64_t hops,
    obs::RouteFailure drop_cause = obs::RouteFailure::kDeadEntry) {
  switch (status) {
    case SparseRouteStatus::kArrived:
      estimate.record_arrival(hops);
      break;
    case SparseRouteStatus::kDropped:
      estimate.record_drop(drop_cause);
      break;
    case SparseRouteStatus::kHopLimit:
      estimate.record_hop_limit();
      break;
  }
}

// Flattened sparse routing context: everything a kernel needs, as raw
// pointers and scalars.  Built once per engine invocation, read-only
// across threads.
struct FlatSparseCtx {
  SparseKernelKind kind = SparseKernelKind::kGeneric;
  int d = 0;                             // key-space bits
  std::uint64_t key_mask = 0;            // 2^d - 1
  std::uint64_t n = 0;                   // node count
  const std::uint64_t* ids = nullptr;    // index -> identifier, sorted
  const std::uint8_t* alive = nullptr;   // liveness mask over indices
  const NodeIndex* table = nullptr;      // row-major per-node entries
  int row_width = 0;                     // entries per node (d*k, or ks)
  int bucket_k = 1;                      // kademlia contacts per bucket
  int kn = 0;                            // symphony near neighbors
  int ks = 0;                            // symphony shortcuts
  // Chord fixed-stride rows (SparseChordOverlay::route_packed() et al.):
  // per-node distinct fingers, progress descending and precomputed, rows
  // padded to row_width entries with (progress 0, kNoNode); row_len holds
  // the real per-row entry counts (N bytes, cache-resident).  `packed` is
  // the bits <= 32 shape -- one u64 (progress << 32) | target per entry,
  // with `table`/`progress` null; wider spaces use the parallel arrays.
  const std::uint64_t* packed = nullptr;
  const std::uint64_t* progress = nullptr;
  const std::uint8_t* row_len = nullptr;
  std::uint64_t max_hops = 0;
  // Liveness packed one bit per node (same content as `alive`).  The byte
  // mask is megabytes at 2^20 nodes and every hop probes it at a random
  // index; the bit mask is N/8 bytes and stays cache-resident, so the
  // batched kernels' candidate probes stop missing to memory.  Built by
  // make_sparse_ctx for the flat kinds; null for kGeneric.
  const std::uint64_t* alive_bits = nullptr;
  std::shared_ptr<const std::vector<std::uint64_t>> alive_bits_owner;
  // --- Workload layer (null/0 = off; the default path is untouched). ---
  // Per-node forwarded-message counters, ONE array shared by every shard:
  // relaxed atomic integer adds are commutative, so the final counts are
  // independent of thread interleaving -- the same schedule-independence
  // HopStats gets from ordered shard merges (see sim/load_stats.hpp for
  // the overflow analysis).
  std::atomic<std::uint64_t>* load = nullptr;
  // Per-SHARD finger-path cache of popular objects: node v's row of
  // `cache_entries` direct-mapped slots at cache[v * cache_entries ..],
  // each slot one u64 (object rank << 32) | owner index, empty = ~0.
  // Shard-private (set on a per-shard ctx copy) so the warm-up trajectory
  // is a pure function of the shard's deterministic lane schedule --
  // shared cache state would make hits depend on thread interleaving.
  std::uint64_t* cache = nullptr;
  int cache_entries = 0;
};

/// Lane rank sentinel: the route targets a uniformly drawn node, not a
/// workload object -- cache probes are skipped.
inline constexpr std::uint32_t kNoRank = 0xFFFFFFFFu;

/// Packed-liveness probe (flat-kind contexts only).
inline bool alive_bit(const FlatSparseCtx& c, NodeIndex i) {
  return (c.alive_bits[i >> 6] >> (i & 63)) & 1;
}

inline SparseRouteResult finish(SparseRouteStatus status, int hops) {
  SparseRouteResult r;
  r.status = status;
  r.hops = hops;
  return r;
}

/// The shared single-route driver: iterates a per-hop step function until
/// arrival, drop (step returns kNoNode), or the hop cap.  The batched
/// estimator (run_lanes in flat_sparse.cpp) applies the same accounting to
/// interleaved routes.
template <typename Step>
SparseRouteResult route_flat(const FlatSparseCtx& c, NodeIndex source,
                             NodeIndex target, Step step) {
  const std::uint64_t target_id = c.ids[target];
  NodeIndex cur = source;
  int hops = 0;
  while (cur != target) {
    if (static_cast<std::uint64_t>(hops) >= c.max_hops) {
      return finish(SparseRouteStatus::kHopLimit, hops);
    }
    const NodeIndex next = step(c, cur, target_id);
    if (next == kNoNode) {
      return finish(SparseRouteStatus::kDropped, hops);
    }
    cur = next;
    ++hops;
  }
  return finish(SparseRouteStatus::kArrived, hops);
}

// Sparse Chord: greedy clockwise without overshoot.  The oracle scans the
// full d-finger row keeping the best admissible alive finger; the kernel
// walks the node's fixed-stride row of *distinct* fingers sorted by
// decreasing precomputed progress, skips the overshooting prefix, and
// takes the first alive entry.  Duplicates collapse onto the same node
// (equal progress implies equal identifier), so the admissible candidate
// set -- and hence the greedy choice -- is exactly
// SparseChordOverlay::next_hop's, at ~log2 N contiguous u64 reads per hop
// instead of d random id lookups.
/// One forwarding step; kNoNode when the protocol drops the message.
inline NodeIndex step_sparse_chord(const FlatSparseCtx& c, NodeIndex cur,
                                   std::uint64_t target_id) {
  const std::uint64_t distance = (target_id - c.ids[cur]) & c.key_mask;
  const std::uint64_t stride = static_cast<std::uint64_t>(c.row_width);
  const std::uint64_t len = c.row_len[cur];
  // Skip the overshooting prefix by *counting* it: progress is strictly
  // descending within a row, so the count of entries above the remaining
  // distance IS the index of the first admissible finger.  The branchless
  // count vectorizes and streams the row sequentially.
  if (c.packed != nullptr) {
    // Packed shape: entry > (distance << 32 | 0xFFFFFFFF) iff the entry's
    // progress exceeds the remaining distance (equal progress would need a
    // target above 2^32 - 1 to tip the compare, and targets are 32-bit).
    const std::uint64_t* row = c.packed + cur * stride;
    const std::uint64_t key =
        (distance << 32) | std::uint64_t{kNoNode};
    std::uint64_t k = 0;
    for (std::uint64_t e = 0; e < len; ++e) {
      k += row[e] > key ? 1 : 0;
    }
    for (std::uint64_t e = k; e < len; ++e) {
      const NodeIndex f = static_cast<NodeIndex>(row[e]);
      if (c.alive[f]) {
        __builtin_prefetch(&c.ids[f]);
        return f;  // max-progress alive admissible finger
      }
    }
    return kNoNode;
  }
  const std::uint64_t* prog = c.progress + cur * stride;
  const NodeIndex* row = c.table + cur * stride;
  std::uint64_t k = 0;
  for (std::uint64_t e = 0; e < len; ++e) {
    k += prog[e] > distance ? 1 : 0;
  }
  for (std::uint64_t e = k; e < len; ++e) {
    const NodeIndex f = row[e];
    if (c.alive[f]) {
      __builtin_prefetch(&c.ids[f]);
      return f;  // max-progress alive admissible finger
    }
  }
  return kNoNode;
}

inline SparseRouteResult route_sparse_chord(const FlatSparseCtx& c,
                                            NodeIndex source,
                                            NodeIndex target) {
  return route_flat(c, source, target,
                    [](const FlatSparseCtx& ctx, NodeIndex cur,
                       std::uint64_t target_id) {
                      return step_sparse_chord(ctx, cur, target_id);
                    });
}

// Sparse Kademlia: walk the differing levels highest order first; the
// first alive non-empty contact wins -- exactly
// SparseKademliaOverlay::next_hop, *including* its strictly-closer check,
// which the kernel elides because it is provably always true for bucket
// contacts: a level-l contact agrees with `cur` above bit d-l, so when the
// walk probes level l, the contact matches the target on every higher
// differing bit already probed, clears bit d-l (both contact and target
// flip it relative to `cur`), and therefore sits strictly closer whatever
// its suffix.  That removes the candidate id lookup -- the last random
// read per probe -- from the hot path; the oracle keeps the check
// defensively, and the per-pair equality test (test_flat_sparse) pins the
// two paths to each other.
/// One forwarding step; kNoNode when the protocol drops the message.
/// k-aware: probes each bucket's k cells head first (bucket_k = 1 reads
/// exactly the single-contact cells of the pre-k layout).  The
/// strictly-closer elision holds for EVERY cell, not just the head: any
/// level-l bucket member clears the probed bit and matches every
/// higher-order differing bit already corrected, so it sits strictly
/// closer whatever its suffix.
inline NodeIndex step_sparse_kademlia(const FlatSparseCtx& c, NodeIndex cur,
                                      std::uint64_t target_id) {
  const NodeIndex* row =
      c.table + cur * static_cast<std::uint64_t>(c.row_width);
  const int d = c.row_width / c.bucket_k;
  std::uint64_t diff = c.ids[cur] ^ target_id;
  while (diff != 0) {
    const int bw = std::bit_width(diff);
    const NodeIndex* bucket =
        row + static_cast<std::uint64_t>(d - bw) *
                  static_cast<std::uint64_t>(c.bucket_k);
    for (int cell = 0; cell < c.bucket_k; ++cell) {  // bucket d - bw + 1
      const NodeIndex entry = bucket[cell];
      if (entry != kNoNode &&
          (c.alive_bits != nullptr ? alive_bit(c, entry)
                                   : c.alive[entry] != 0)) {
        // Warm the next hop's contact row and identifier while other lanes
        // run (the id feeds the next hop's distance computation).
        __builtin_prefetch(c.table + entry * static_cast<std::uint64_t>(
                                         c.row_width));
        __builtin_prefetch(&c.ids[entry]);
        return entry;
      }
    }
    diff &= ~(std::uint64_t{1} << (bw - 1));
  }
  return kNoNode;
}

inline SparseRouteResult route_sparse_kademlia(const FlatSparseCtx& c,
                                               NodeIndex source,
                                               NodeIndex target) {
  return route_flat(c, source, target,
                    [](const FlatSparseCtx& ctx, NodeIndex cur,
                       std::uint64_t target_id) {
                      return step_sparse_kademlia(ctx, cur, target_id);
                    });
}

// Sparse Symphony: greedy clockwise without overshoot over shortcuts, then
// the kn ring successors -- exactly SparseSymphonyOverlay::next_hop.
/// One forwarding step; kNoNode when the protocol drops the message.
inline NodeIndex step_sparse_symphony(const FlatSparseCtx& c, NodeIndex cur,
                                      std::uint64_t target_id) {
  const std::uint64_t cur_id = c.ids[cur];
  const std::uint64_t distance = (target_id - cur_id) & c.key_mask;
  const NodeIndex* row =
      c.table + cur * static_cast<std::uint64_t>(c.row_width);
  std::uint64_t best_progress = 0;
  NodeIndex best = kNoNode;
  const auto consider = [&](NodeIndex link) {
    if (link == cur) {
      return;
    }
    const std::uint64_t progress = (c.ids[link] - cur_id) & c.key_mask;
    if (progress > distance || progress <= best_progress) {
      return;  // overshoots, or no better than the current best
    }
    if (c.alive[link]) {
      best_progress = progress;
      best = link;
    }
  };
  for (int j = 0; j < c.ks; ++j) {
    consider(row[j]);
  }
  for (int k = 1; k <= c.kn; ++k) {
    consider(static_cast<NodeIndex>(
        (cur + static_cast<std::uint64_t>(k)) % c.n));
  }
  return best;
}

inline SparseRouteResult route_sparse_symphony(const FlatSparseCtx& c,
                                               NodeIndex source,
                                               NodeIndex target) {
  return route_flat(c, source, target,
                    [](const FlatSparseCtx& ctx, NodeIndex cur,
                       std::uint64_t target_id) {
                      return step_sparse_symphony(ctx, cur, target_id);
                    });
}

// ---------------------------------------------------------------------------
// Struct-of-arrays route batches.
//
// The estimator advances kLanes independent routes one hop per turn so
// their table/id/liveness loads overlap in the memory pipeline.  Keeping
// the in-flight routes as parallel arrays (rather than an array of lane
// structs) lets the per-hop kernels below run each micro-phase -- distance
// computation, lock-step binary search, liveness probes -- as a short
// branch-light loop over lanes, where every iteration is independent and
// its loads issue together.  Plain scalar code, no intrinsics: the shape
// alone buys the memory-level parallelism (and the compiler is free to
// vectorize the arithmetic phases).
// ---------------------------------------------------------------------------

/// In-flight routes of one shard, one array element per lane.  Invariant
/// between kernel steps: an active lane is mid-route (cur != target, cur !=
/// kNoNode, hops < max_hops) -- the driver retires terminal lanes and
/// refills before every step.  A kernel signals a drop by writing kNoNode
/// into cur (leaving hops at the count already taken, matching
/// route_flat's accounting).
struct RouteBatch {
  static constexpr int kLanes = 8;
  NodeIndex cur[kLanes];
  NodeIndex target[kLanes];
  std::uint64_t target_id[kLanes];
  // Per-lane geometry register.  The static ring kernels keep the
  // remaining clockwise distance (target_id - id(cur)) mod 2^d here,
  // updated incrementally: each hop subtracts the chosen entry's
  // precomputed progress -- exact integer arithmetic, so it equals the
  // recomputed value bit for bit, and removes the only per-hop load
  // outside the row itself.  The churn engine's batch kernels
  // (churn/sparse_trajectory.cpp) reuse the same lanes and carry the
  // current hop's identifier instead (their rows cache install-time
  // target ids, so cur's id is the one value a hop must thread through).
  std::uint64_t dist[kLanes];
  std::uint32_t hops[kLanes];
  std::uint8_t active[kLanes];
  // Workload object rank the lane is fetching (kNoRank for uniform
  // pairs); read only by the driver's cache probes, never by the step
  // kernels.  The churn driver reuses it as the lane's GET (pair) index.
  std::uint32_t rank[kLanes];
};

/// One Chord hop for every active lane.  Same algorithm as
/// step_sparse_chord, phased: (A) distances and row bases -- pure
/// arithmetic, the row address is cur * stride with no offsets load on the
/// critical path, (B) count every lane's overshooting prefix with
/// branchless fixed-trip loops, (C) probe the max-progress candidates'
/// liveness in the packed bit mask, falling back to the in-row scan for
/// the rare dead-candidate lane.  The writeback prefetches the *next*
/// hop's whole row, so phase B of the following turn runs against lines
/// that have had a full batch turn of latency cover.
inline void step_batch_chord_packed(const FlatSparseCtx& c, RouteBatch& b) {
  constexpr int kLanes = RouteBatch::kLanes;
  const std::uint64_t stride = static_cast<std::uint64_t>(c.row_width);
  std::uint64_t key[kLanes];
  std::uint64_t base[kLanes];
  std::uint64_t len[kLanes];
  std::uint64_t at[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    if (!b.active[l]) {
      continue;
    }
    const NodeIndex cur = b.cur[l];
    key[l] = (b.dist[l] << 32) | std::uint64_t{kNoNode};
    base[l] = cur * stride;
    len[l] = c.row_len[cur];
  }
  for (int l = 0; l < kLanes; ++l) {
    if (!b.active[l]) {
      continue;
    }
    const std::uint64_t* row = c.packed + base[l];
    const std::uint64_t d = key[l];
    std::uint64_t k = 0;
    for (std::uint64_t e = 0; e < len[l]; ++e) {
      k += row[e] > d ? 1 : 0;
    }
    at[l] = k;
  }
  for (int l = 0; l < kLanes; ++l) {
    if (!b.active[l]) {
      continue;
    }
    NodeIndex next = kNoNode;
    std::uint64_t progress = 0;
    const std::uint64_t* row = c.packed + base[l];
    for (std::uint64_t e = at[l]; e < len[l]; ++e) {
      const std::uint64_t entry = row[e];
      const NodeIndex f = static_cast<NodeIndex>(entry);
      if (alive_bit(c, f)) {
        next = f;
        progress = entry >> 32;
        break;
      }
    }
    if (next == kNoNode) {
      b.cur[l] = kNoNode;  // dropped; hops stays at the count taken
      continue;
    }
    b.cur[l] = next;
    b.dist[l] = (b.dist[l] - progress) & c.key_mask;
    b.hops[l] += 1;
    // Warm the next hop's packed row; the loads have a full batch turn of
    // cover before phase A touches them.  The row-length lookup is
    // cache-resident, so sizing the burst by it costs nothing and skips
    // the pad lines.  No ids prefetch: the incremental distance is the
    // kernel's only geometry, so the id array is off the ring hop path.
    const std::uint64_t nb = next * stride;
    const std::uint64_t nlen = c.row_len[next];
    for (std::uint64_t off = 0; off < nlen; off += 8) {
      __builtin_prefetch(&c.packed[nb + off]);
    }
  }
}

inline void step_batch_chord_wide(const FlatSparseCtx& c, RouteBatch& b) {
  constexpr int kLanes = RouteBatch::kLanes;
  const std::uint64_t stride = static_cast<std::uint64_t>(c.row_width);
  std::uint64_t distance[kLanes];
  std::uint64_t base[kLanes];
  std::uint64_t len[kLanes];
  std::uint64_t at[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    if (!b.active[l]) {
      continue;
    }
    const NodeIndex cur = b.cur[l];
    distance[l] = (b.target_id[l] - c.ids[cur]) & c.key_mask;
    base[l] = cur * stride;
    len[l] = c.row_len[cur];
  }
  for (int l = 0; l < kLanes; ++l) {
    if (!b.active[l]) {
      continue;
    }
    const std::uint64_t* prog = c.progress + base[l];
    const std::uint64_t d = distance[l];
    std::uint64_t k = 0;
    for (std::uint64_t e = 0; e < len[l]; ++e) {
      k += prog[e] > d ? 1 : 0;
    }
    at[l] = k;
  }
  NodeIndex cand[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    if (!b.active[l]) {
      continue;
    }
    cand[l] = at[l] < len[l] ? c.table[base[l] + at[l]] : kNoNode;
  }
  for (int l = 0; l < kLanes; ++l) {
    if (!b.active[l]) {
      continue;
    }
    NodeIndex next = kNoNode;
    if (cand[l] != kNoNode) {
      if (alive_bit(c, cand[l])) {
        next = cand[l];
      } else {
        for (std::uint64_t e = at[l] + 1; e < len[l]; ++e) {
          const NodeIndex f = c.table[base[l] + e];
          if (alive_bit(c, f)) {
            next = f;
            break;
          }
        }
      }
    }
    if (next == kNoNode) {
      b.cur[l] = kNoNode;  // dropped; hops stays at the count taken
      continue;
    }
    b.cur[l] = next;
    b.hops[l] += 1;
    // Warm the next hop's identifier and (progress, finger) row; the loads
    // have a full batch turn of cover before phase A touches them.
    __builtin_prefetch(&c.ids[next]);
    const std::uint64_t nb = next * stride;
    const std::uint64_t nlen = c.row_len[next];
    for (std::uint64_t off = 0; off < nlen; off += 8) {
      __builtin_prefetch(&c.progress[nb + off]);
    }
    for (std::uint64_t off = 0; off < nlen; off += 16) {
      __builtin_prefetch(&c.table[nb + off]);
    }
  }
}

inline void step_batch_chord(const FlatSparseCtx& c, RouteBatch& b) {
  if (c.packed != nullptr) {
    step_batch_chord_packed(c, b);
  } else {
    step_batch_chord_wide(c, b);
  }
}

/// One Kademlia hop for every active lane.  Same rule as
/// step_sparse_kademlia, staged: (A) compute each lane's head contact of
/// the highest differing bucket and prefetch its liveness word, (B)
/// resolve -- the head is the hop in the common case (head present and
/// alive); lanes that miss fall back to the full scalar bucket walk.
inline void step_batch_kademlia(const FlatSparseCtx& c, RouteBatch& b) {
  constexpr int kLanes = RouteBatch::kLanes;
  const int d = c.row_width / c.bucket_k;
  NodeIndex head[kLanes];
  for (int l = 0; l < kLanes; ++l) {
    if (!b.active[l]) {
      continue;
    }
    const NodeIndex cur = b.cur[l];
    const std::uint64_t diff = c.ids[cur] ^ b.target_id[l];
    const NodeIndex* row =
        c.table + cur * static_cast<std::uint64_t>(c.row_width);
    head[l] = row[static_cast<std::uint64_t>(d - std::bit_width(diff)) *
                  static_cast<std::uint64_t>(c.bucket_k)];
    if (head[l] != kNoNode) {
      __builtin_prefetch(&c.alive_bits[head[l] >> 6]);
    }
  }
  for (int l = 0; l < kLanes; ++l) {
    if (!b.active[l]) {
      continue;
    }
    NodeIndex next = head[l];
    if (next == kNoNode || !alive_bit(c, next)) {
      next = step_sparse_kademlia(c, b.cur[l], b.target_id[l]);
    }
    if (next == kNoNode) {
      b.cur[l] = kNoNode;
      continue;
    }
    b.cur[l] = next;
    b.hops[l] += 1;
    // Warm the next hop's identifier and its whole contact row -- the
    // needed bucket depends on the next XOR distance, unknown until the
    // ids load resolves, so cover every line of the row now.
    __builtin_prefetch(&c.ids[next]);
    const NodeIndex* row =
        c.table + next * static_cast<std::uint64_t>(c.row_width);
    for (int off = 0; off < c.row_width; off += 16) {
      __builtin_prefetch(row + off);
    }
  }
}

/// One Symphony hop for every active lane.  The scan is short (ks
/// shortcuts + kn successors, all usually cache-resident), so per-lane
/// scalar steps suffice; the batch shape still overlaps the shortcut-id
/// gathers of different lanes.
inline void step_batch_symphony(const FlatSparseCtx& c, RouteBatch& b) {
  for (int l = 0; l < RouteBatch::kLanes; ++l) {
    if (!b.active[l]) {
      continue;
    }
    const NodeIndex next = step_sparse_symphony(c, b.cur[l], b.target_id[l]);
    if (next == kNoNode) {
      b.cur[l] = kNoNode;
      continue;
    }
    b.cur[l] = next;
    b.hops[l] += 1;
    __builtin_prefetch(c.table +
                       next * static_cast<std::uint64_t>(c.row_width));
    __builtin_prefetch(&c.ids[next]);
  }
}

/// Builds a context over an immutable sparse overlay + failure scenario.
/// Unknown overlay types (and use_flat_kernels = false) yield kGeneric,
/// which the estimator routes through the virtual next_hop path instead.
FlatSparseCtx make_sparse_ctx(const SparseOverlay& overlay,
                              const SparseFailure& failures,
                              std::uint64_t max_hops, bool use_flat_kernels);

/// Test hook: routes the given ordered (source, target) index pairs through
/// the same struct-of-arrays lane driver the estimator uses (kGeneric
/// contexts step through overlay.next_hop) and records every outcome into
/// `estimate`.  Bit-equivalent to routing each pair alone with route_flat
/// and the matching scalar step: interleaving changes when routes run,
/// never what they do.
void route_pairs_batched(const FlatSparseCtx& c, const SparseOverlay& overlay,
                         const SparseFailure& failures,
                         const std::pair<NodeIndex, NodeIndex>* pairs,
                         std::uint64_t count, SparseEstimate& estimate);

}  // namespace flat

/// Heavy-traffic workload knobs for the static sparse estimator.  With the
/// object model engaged (zipf_s > 0 or cache_entries > 0), each sampled
/// lookup draws an object by Zipf popularity and routes to the object's
/// owner -- the first alive node clockwise of the object's key (consistent
/// hashing) -- instead of a uniform alive node.  All draws come from the
/// same per-lane CounterRng streams as the uniform path, so estimates stay
/// bit-identical at any thread count.
struct SparseWorkloadOptions {
  /// Zipf skew of object popularity (0 = uniform over objects).
  double zipf_s = 0.0;
  /// Distinct objects (0 = one per alive node).  Capped at 2^26.
  std::uint64_t objects = 0;
  /// Per-node direct-mapped path-cache slots (0 = caching off).  A probe
  /// hit forwards straight to the cached owner in one hop.
  int cache_entries = 0;
  /// Record messages forwarded per node (one shared atomic counter array;
  /// see flat::FlatSparseCtx::load).  Works with or without the object
  /// model.
  bool record_load = false;

  bool enabled() const noexcept {
    return zipf_s > 0.0 || cache_entries > 0;
  }
};

struct SparseParallelOptions {
  /// Number of ordered (source, target) pairs to sample.
  std::uint64_t pairs = 20000;
  /// Safety hop cap (0 = default N).
  std::uint64_t max_hops = 0;
  /// Worker threads (0 = hardware concurrency).  Never affects results.
  unsigned threads = 0;
  /// Work shards (0 = default, min(pairs, 256)).  Results are a function of
  /// (seed, shard count); keep it fixed when comparing runs.
  std::uint64_t shards = 0;
  /// When false, routes through the virtual next_hop path instead of the
  /// flattened kernels.  All three sparse forwarding rules are rng-free, so
  /// the kernels replicate next_hop exactly and results are bit-identical
  /// either way (asserted in test_flat_sparse).
  bool use_flat_kernels = true;
  /// Pin worker threads round-robin across NUMA nodes (sim/topology.hpp);
  /// best effort, a silent no-op where unsupported.  Never affects results.
  bool pin_workers = false;
  /// Replicate the read-only routing state (ids, liveness mask, neighbor
  /// tables) once per NUMA node -- each copy first-touched by a thread
  /// pinned to that node -- and point every worker at its local replica.
  /// Flat-kernel path only; results are bit-identical either way (the
  /// copies hold the same bytes), so this is purely a locality knob.  Off
  /// by default: the copies cost memory and only pay off multi-socket.
  bool numa_replicate_tables = false;
  /// Heavy-traffic workload model (defaults fully off: the uniform-pair
  /// engine below is byte-for-byte the historical one).
  SparseWorkloadOptions workload{};
  /// Observability sinks (obs/phase_timer.hpp), both optional and both
  /// pure timing side-channels: the engine adds per-shard phase seconds
  /// (reduced in shard order) into `profile` and emits phase spans into
  /// `trace`.  Null (the default) is the zero-cost path -- no clock is
  /// read -- and attaching them never changes any counter.
  obs::PhaseProfile* profile = nullptr;
  obs::Trace* trace = nullptr;
};

/// Monte-Carlo estimate over sampled alive index pairs, sharded across
/// threads.  `rng` is only fork()ed, never advanced.  Preconditions: at
/// least two alive nodes, pairs > 0.
SparseEstimate estimate_routability_parallel(
    const SparseOverlay& overlay, const SparseFailure& failures,
    const SparseParallelOptions& options, const math::Rng& rng);

/// estimate_routability_parallel plus the workload layer's outputs: the
/// routing estimate (cache counters included) and the per-node load
/// summary over alive nodes (zeroed unless options.workload.record_load).
struct SparseWorkloadReport {
  SparseEstimate estimate;
  sim::LoadSummary load;
};

SparseWorkloadReport estimate_workload_parallel(
    const SparseOverlay& overlay, const SparseFailure& failures,
    const SparseParallelOptions& options, const math::Rng& rng);

}  // namespace dht::sparse
