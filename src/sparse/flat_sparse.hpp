// Flattened routing kernels and the sharded parallel estimator for
// non-fully-populated identifier spaces.
//
// The virtual SparseOverlay::next_hop path (sparse_overlay.hpp) is the
// semantic oracle; these kernels replicate it hop for hop on contiguous
// state -- the sorted id array (index -> identifier), the row-major
// neighbor tables (Chord fingers / Kademlia contacts / Symphony
// shortcuts), and the raw liveness mask -- with no virtual dispatch, no
// std::optional, and no precondition re-checks per hop.  This is the
// sim/flat_route.hpp pattern with the id->index indirection folded in:
// kernels compare *identifiers* (read through c.ids) but step between
// *indices*, which is what lets a 2^20-node population routed in a 2^63
// key space touch only O(N) state.
//
// estimate_routability_parallel shards the pair budget over
// sim/shard_pool.hpp exactly like the dense engine: shard k draws from
// Rng::fork(k), per-shard SparseEstimates (exact integer counters) are
// merged in shard order, so results are bit-identical at any thread count.
#pragma once

#include <bit>
#include <cstdint>

#include "math/rng.hpp"
#include "sparse/sparse_overlay.hpp"

namespace dht::sparse {
namespace flat {

enum class SparseKernelKind {
  kGeneric,  // unknown overlay type: route through virtual next_hop
  kChord,
  kKademlia,
  kSymphony,
};

enum class SparseRouteStatus {
  kArrived,   // message reached the target
  kDropped,   // no admissible alive neighbor (failed path)
  kHopLimit,  // safety cap exceeded -- indicates a protocol bug
};

struct SparseRouteResult {
  SparseRouteStatus status = SparseRouteStatus::kDropped;
  int hops = 0;
};

// Flattened sparse routing context: everything a kernel needs, as raw
// pointers and scalars.  Built once per engine invocation, read-only
// across threads.
struct FlatSparseCtx {
  SparseKernelKind kind = SparseKernelKind::kGeneric;
  int d = 0;                             // key-space bits
  std::uint64_t key_mask = 0;            // 2^d - 1
  std::uint64_t n = 0;                   // node count
  const std::uint64_t* ids = nullptr;    // index -> identifier, sorted
  const std::uint8_t* alive = nullptr;   // liveness mask over indices
  const NodeIndex* table = nullptr;      // row-major per-node entries
  int row_width = 0;                     // entries per node (d*k, or ks)
  int bucket_k = 1;                      // kademlia contacts per bucket
  int kn = 0;                            // symphony near neighbors
  int ks = 0;                            // symphony shortcuts
  // Chord CSR rows (SparseChordOverlay::route_offsets() et al.): per-node
  // distinct fingers, progress descending, progress precomputed.
  const std::uint64_t* row_offsets = nullptr;
  const std::uint64_t* progress = nullptr;
  std::uint64_t max_hops = 0;
};

inline SparseRouteResult finish(SparseRouteStatus status, int hops) {
  SparseRouteResult r;
  r.status = status;
  r.hops = hops;
  return r;
}

/// The shared single-route driver: iterates a per-hop step function until
/// arrival, drop (step returns kNoNode), or the hop cap.  The batched
/// estimator (run_lanes in flat_sparse.cpp) applies the same accounting to
/// interleaved routes.
template <typename Step>
SparseRouteResult route_flat(const FlatSparseCtx& c, NodeIndex source,
                             NodeIndex target, Step step) {
  const std::uint64_t target_id = c.ids[target];
  NodeIndex cur = source;
  int hops = 0;
  while (cur != target) {
    if (static_cast<std::uint64_t>(hops) >= c.max_hops) {
      return finish(SparseRouteStatus::kHopLimit, hops);
    }
    const NodeIndex next = step(c, cur, target_id);
    if (next == kNoNode) {
      return finish(SparseRouteStatus::kDropped, hops);
    }
    cur = next;
    ++hops;
  }
  return finish(SparseRouteStatus::kArrived, hops);
}

// Sparse Chord: greedy clockwise without overshoot.  The oracle scans the
// full d-finger row keeping the best admissible alive finger; the kernel
// walks the node's CSR row of *distinct* fingers sorted by decreasing
// precomputed progress, skips the overshooting prefix, and takes the first
// alive entry.  Duplicates collapse onto the same node (equal progress
// implies equal identifier), so the admissible candidate set -- and hence
// the greedy choice -- is exactly SparseChordOverlay::next_hop's, at ~log2
// N contiguous u64 reads per hop instead of d random id lookups.
/// One forwarding step; kNoNode when the protocol drops the message.
inline NodeIndex step_sparse_chord(const FlatSparseCtx& c, NodeIndex cur,
                                   std::uint64_t target_id) {
  const std::uint64_t distance = (target_id - c.ids[cur]) & c.key_mask;
  const std::uint64_t end = c.row_offsets[cur + 1];
  // Binary-search past the overshooting prefix (progress is descending),
  // then the first alive entry is the max-progress admissible finger.  The
  // search is branchless (conditional-move shape): the comparison outcome
  // is data-dependent and would mispredict half the time as a branch.
  std::uint64_t lo = c.row_offsets[cur];
  std::uint64_t len = end - lo;
  while (len > 0) {
    const std::uint64_t half = len / 2;
    const bool overshoot = c.progress[lo + half] > distance;
    lo += overshoot ? half + 1 : 0;
    len = overshoot ? len - half - 1 : half;
  }
  for (std::uint64_t e = lo; e < end; ++e) {
    const NodeIndex f = c.table[e];
    if (c.alive[f]) {
      // Warm the next hop's row metadata while other lanes run (the
      // interleaved estimator steps 8 routes round-robin, so these loads
      // have several lane-steps of latency cover).
      __builtin_prefetch(&c.row_offsets[f]);
      __builtin_prefetch(&c.ids[f]);
      return f;  // max-progress alive admissible finger
    }
  }
  return kNoNode;
}

inline SparseRouteResult route_sparse_chord(const FlatSparseCtx& c,
                                            NodeIndex source,
                                            NodeIndex target) {
  return route_flat(c, source, target,
                    [](const FlatSparseCtx& ctx, NodeIndex cur,
                       std::uint64_t target_id) {
                      return step_sparse_chord(ctx, cur, target_id);
                    });
}

// Sparse Kademlia: walk the differing levels highest order first; the
// first alive non-empty contact wins -- exactly
// SparseKademliaOverlay::next_hop, *including* its strictly-closer check,
// which the kernel elides because it is provably always true for bucket
// contacts: a level-l contact agrees with `cur` above bit d-l, so when the
// walk probes level l, the contact matches the target on every higher
// differing bit already probed, clears bit d-l (both contact and target
// flip it relative to `cur`), and therefore sits strictly closer whatever
// its suffix.  That removes the candidate id lookup -- the last random
// read per probe -- from the hot path; the oracle keeps the check
// defensively, and the per-pair equality test (test_flat_sparse) pins the
// two paths to each other.
/// One forwarding step; kNoNode when the protocol drops the message.
/// k-aware: probes each bucket's k cells head first (bucket_k = 1 reads
/// exactly the single-contact cells of the pre-k layout).  The
/// strictly-closer elision holds for EVERY cell, not just the head: any
/// level-l bucket member clears the probed bit and matches every
/// higher-order differing bit already corrected, so it sits strictly
/// closer whatever its suffix.
inline NodeIndex step_sparse_kademlia(const FlatSparseCtx& c, NodeIndex cur,
                                      std::uint64_t target_id) {
  const NodeIndex* row =
      c.table + cur * static_cast<std::uint64_t>(c.row_width);
  const int d = c.row_width / c.bucket_k;
  std::uint64_t diff = c.ids[cur] ^ target_id;
  while (diff != 0) {
    const int bw = std::bit_width(diff);
    const NodeIndex* bucket =
        row + static_cast<std::uint64_t>(d - bw) *
                  static_cast<std::uint64_t>(c.bucket_k);
    for (int cell = 0; cell < c.bucket_k; ++cell) {  // bucket d - bw + 1
      const NodeIndex entry = bucket[cell];
      if (entry != kNoNode && c.alive[entry]) {
        // Warm the next hop's contact row and identifier while other lanes
        // run (the id feeds the next hop's distance computation).
        __builtin_prefetch(c.table + entry * static_cast<std::uint64_t>(
                                         c.row_width));
        __builtin_prefetch(&c.ids[entry]);
        return entry;
      }
    }
    diff &= ~(std::uint64_t{1} << (bw - 1));
  }
  return kNoNode;
}

inline SparseRouteResult route_sparse_kademlia(const FlatSparseCtx& c,
                                               NodeIndex source,
                                               NodeIndex target) {
  return route_flat(c, source, target,
                    [](const FlatSparseCtx& ctx, NodeIndex cur,
                       std::uint64_t target_id) {
                      return step_sparse_kademlia(ctx, cur, target_id);
                    });
}

// Sparse Symphony: greedy clockwise without overshoot over shortcuts, then
// the kn ring successors -- exactly SparseSymphonyOverlay::next_hop.
/// One forwarding step; kNoNode when the protocol drops the message.
inline NodeIndex step_sparse_symphony(const FlatSparseCtx& c, NodeIndex cur,
                                      std::uint64_t target_id) {
  const std::uint64_t cur_id = c.ids[cur];
  const std::uint64_t distance = (target_id - cur_id) & c.key_mask;
  const NodeIndex* row =
      c.table + cur * static_cast<std::uint64_t>(c.row_width);
  std::uint64_t best_progress = 0;
  NodeIndex best = kNoNode;
  const auto consider = [&](NodeIndex link) {
    if (link == cur) {
      return;
    }
    const std::uint64_t progress = (c.ids[link] - cur_id) & c.key_mask;
    if (progress > distance || progress <= best_progress) {
      return;  // overshoots, or no better than the current best
    }
    if (c.alive[link]) {
      best_progress = progress;
      best = link;
    }
  };
  for (int j = 0; j < c.ks; ++j) {
    consider(row[j]);
  }
  for (int k = 1; k <= c.kn; ++k) {
    consider(static_cast<NodeIndex>(
        (cur + static_cast<std::uint64_t>(k)) % c.n));
  }
  return best;
}

inline SparseRouteResult route_sparse_symphony(const FlatSparseCtx& c,
                                               NodeIndex source,
                                               NodeIndex target) {
  return route_flat(c, source, target,
                    [](const FlatSparseCtx& ctx, NodeIndex cur,
                       std::uint64_t target_id) {
                      return step_sparse_symphony(ctx, cur, target_id);
                    });
}

/// Builds a context over an immutable sparse overlay + failure scenario.
/// Unknown overlay types (and use_flat_kernels = false) yield kGeneric,
/// which the estimator routes through the virtual next_hop path instead.
FlatSparseCtx make_sparse_ctx(const SparseOverlay& overlay,
                              const SparseFailure& failures,
                              std::uint64_t max_hops, bool use_flat_kernels);

}  // namespace flat

struct SparseParallelOptions {
  /// Number of ordered (source, target) pairs to sample.
  std::uint64_t pairs = 20000;
  /// Safety hop cap (0 = default N).
  std::uint64_t max_hops = 0;
  /// Worker threads (0 = hardware concurrency).  Never affects results.
  unsigned threads = 0;
  /// Work shards (0 = default, min(pairs, 256)).  Results are a function of
  /// (seed, shard count); keep it fixed when comparing runs.
  std::uint64_t shards = 0;
  /// When false, routes through the virtual next_hop path instead of the
  /// flattened kernels.  All three sparse forwarding rules are rng-free, so
  /// the kernels replicate next_hop exactly and results are bit-identical
  /// either way (asserted in test_flat_sparse).
  bool use_flat_kernels = true;
};

/// Monte-Carlo estimate over sampled alive index pairs, sharded across
/// threads.  `rng` is only fork()ed, never advanced.  Preconditions: at
/// least two alive nodes, pairs > 0.
SparseEstimate estimate_routability_parallel(
    const SparseOverlay& overlay, const SparseFailure& failures,
    const SparseParallelOptions& options, const math::Rng& rng);

}  // namespace dht::sparse
