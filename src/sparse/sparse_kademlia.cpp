#include "sparse/sparse_kademlia.hpp"

#include <bit>

#include "common/check.hpp"

namespace dht::sparse {

SparseKademliaOverlay::SparseKademliaOverlay(const SparseIdSpace& space,
                                             math::Rng& rng)
    : space_(&space) {
  const int d = space.bits();
  const std::uint64_t n = space.node_count();
  contacts_.resize(n * static_cast<std::uint64_t>(d), kEmpty);
  for (NodeIndex v = 0; v < n; ++v) {
    const sim::NodeId base = space.id_of(v);
    for (int i = 1; i <= d; ++i) {
      // Bucket i's identifier set is the contiguous range obtained by
      // flipping bit i of `base` and freeing the i..d suffix bits.
      const int suffix_bits = d - i;
      const sim::NodeId lo = (sim::flip_level(base, i, d) >> suffix_bits)
                             << suffix_bits;
      const sim::NodeId hi = lo + ((std::uint64_t{1} << suffix_bits) - 1);
      const auto [first, last] = space.index_range(lo, hi);
      if (first == last) {
        continue;  // empty bucket: nobody lives in this subtree
      }
      const auto pick = static_cast<NodeIndex>(
          first + rng.uniform_below(last - first));
      contacts_[v * static_cast<std::uint64_t>(d) +
                static_cast<std::uint64_t>(i - 1)] = pick;
    }
  }
}

std::optional<NodeIndex> SparseKademliaOverlay::contact(NodeIndex node,
                                                        int bucket) const {
  DHT_CHECK(node < space_->node_count(), "node index out of range");
  DHT_CHECK(bucket >= 1 && bucket <= space_->bits(),
            "bucket index out of range");
  const NodeIndex entry =
      contacts_[node * static_cast<std::uint64_t>(space_->bits()) +
                static_cast<std::uint64_t>(bucket - 1)];
  if (entry == kEmpty) {
    return std::nullopt;
  }
  return entry;
}

std::optional<NodeIndex> SparseKademliaOverlay::next_hop(
    NodeIndex current, NodeIndex target,
    const SparseFailure& failures) const {
  DHT_CHECK(current != target, "next_hop requires current != target");
  const int d = space_->bits();
  const sim::NodeId current_id = space_->id_of(current);
  const sim::NodeId target_id = space_->id_of(target);
  const std::uint64_t current_distance =
      sim::xor_distance(current_id, target_id);
  // Buckets at levels where current and target differ, highest order first;
  // the first alive contact strictly closer to the target is the greedy
  // choice (correcting a higher-order bit dominates any suffix noise).
  sim::NodeId diff = current_distance;
  while (diff != 0) {
    const int level = d - std::bit_width(diff) + 1;
    const auto entry = contact(current, level);
    if (entry.has_value() && failures.alive(*entry) &&
        sim::xor_distance(space_->id_of(*entry), target_id) <
            current_distance) {
      return entry;
    }
    diff &= ~(sim::NodeId{1} << (d - level));
  }
  return std::nullopt;
}

}  // namespace dht::sparse
