#include "sparse/sparse_kademlia.hpp"

#include <bit>

#include "common/check.hpp"

namespace dht::sparse {

SparseKademliaOverlay::SparseKademliaOverlay(const SparseIdSpace& space,
                                             math::Rng& rng)
    : space_(&space) {
  const int d = space.bits();
  const std::uint64_t n = space.node_count();
  contacts_.resize(n * static_cast<std::uint64_t>(d), kNoNode);
  for (NodeIndex v = 0; v < n; ++v) {
    const sim::NodeId base = space.id_of(v);
    for (int i = 1; i <= d; ++i) {
      // Bucket i's identifier set is the contiguous range obtained by
      // flipping bit i of `base` and freeing the i..d suffix bits.
      const int suffix_bits = d - i;
      const sim::NodeId lo = (sim::flip_level(base, i, d) >> suffix_bits)
                             << suffix_bits;
      const sim::NodeId hi = lo + ((std::uint64_t{1} << suffix_bits) - 1);
      const auto [first, last] = space.index_range(lo, hi);
      if (first == last) {
        continue;  // empty bucket: nobody lives in this subtree
      }
      const auto pick = static_cast<NodeIndex>(
          first + rng.uniform_below(last - first));
      contacts_[v * static_cast<std::uint64_t>(d) +
                static_cast<std::uint64_t>(i - 1)] = pick;
    }
  }
}

std::optional<NodeIndex> SparseKademliaOverlay::contact(NodeIndex node,
                                                        int bucket) const {
  DHT_CHECK(node < space_->node_count(), "node index out of range");
  DHT_CHECK(bucket >= 1 && bucket <= space_->bits(),
            "bucket index out of range");
  const NodeIndex entry =
      contacts_[node * static_cast<std::uint64_t>(space_->bits()) +
                static_cast<std::uint64_t>(bucket - 1)];
  if (entry == kNoNode) {
    return std::nullopt;
  }
  return entry;
}

std::optional<NodeIndex> SparseKademliaOverlay::next_hop(
    NodeIndex current, NodeIndex target,
    const SparseFailure& failures) const {
  // Range checks live here at the API boundary; the bucket walk below reads
  // the contact row and id array raw (contact()/id_of() would re-check per
  // call, d times per hop on the hot path).
  DHT_CHECK(current != target, "next_hop requires current != target");
  DHT_CHECK(current < space_->node_count() && target < space_->node_count(),
            "node index out of range");
  const int d = space_->bits();
  const sim::NodeId* ids = space_->ids().data();
  const NodeIndex* row =
      contacts_.data() + current * static_cast<std::uint64_t>(d);
  const sim::NodeId current_id = ids[current];
  const sim::NodeId target_id = ids[target];
  const std::uint64_t current_distance =
      sim::xor_distance(current_id, target_id);
  // Buckets at levels where current and target differ, highest order first;
  // the first alive contact strictly closer to the target is the greedy
  // choice (correcting a higher-order bit dominates any suffix noise).
  sim::NodeId diff = current_distance;
  while (diff != 0) {
    const int bw = std::bit_width(diff);
    const NodeIndex entry = row[d - bw];  // bucket level d - bw + 1
    if (entry != kNoNode && failures.alive(entry) &&
        sim::xor_distance(ids[entry], target_id) < current_distance) {
      return entry;
    }
    diff &= ~(sim::NodeId{1} << (bw - 1));
  }
  return std::nullopt;
}

}  // namespace dht::sparse
