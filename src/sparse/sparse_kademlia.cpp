#include "sparse/sparse_kademlia.hpp"

#include <bit>

#include "common/check.hpp"
#include "common/hugepage.hpp"

namespace dht::sparse {

SparseKademliaOverlay::SparseKademliaOverlay(const SparseIdSpace& space,
                                             math::Rng& rng)
    : SparseKademliaOverlay(space, rng, 1) {}

SparseKademliaOverlay::SparseKademliaOverlay(const SparseIdSpace& space,
                                             math::Rng& rng, int k)
    : space_(&space), k_(k) {
  DHT_CHECK(k >= 1 && k <= 64, "bucket width must be in [1, 64]");
  const int d = space.bits();
  const std::uint64_t n = space.node_count();
  const auto row_width = static_cast<std::uint64_t>(d) * k;
  common::reserve_hugepages(contacts_, n * row_width);
  contacts_.resize(n * row_width, kNoNode);
  for (NodeIndex v = 0; v < n; ++v) {
    const sim::NodeId base = space.id_of(v);
    for (int i = 1; i <= d; ++i) {
      // Bucket i's identifier set is the contiguous range obtained by
      // flipping bit i of `base` and freeing the i..d suffix bits.
      const int suffix_bits = d - i;
      const sim::NodeId lo = (sim::flip_level(base, i, d) >> suffix_bits)
                             << suffix_bits;
      const sim::NodeId hi = lo + ((std::uint64_t{1} << suffix_bits) - 1);
      const auto [first, last] = space.index_range(lo, hi);
      if (first == last) {
        continue;  // empty bucket: nobody lives in this subtree
      }
      const std::uint64_t bucket_base =
          v * row_width + static_cast<std::uint64_t>(i - 1) * k;
      // Cell 0 is the historical single uniform draw (bit-compatible rng
      // stream at k = 1); further cells add distinct members -- bounded
      // rejection against the cells already chosen, then a deterministic
      // scan from the rejected draw (k and bucket overlaps are small).
      const std::uint64_t size = last - first;
      const auto head =
          static_cast<NodeIndex>(first + rng.uniform_below(size));
      contacts_[bucket_base] = head;
      const int cells = static_cast<int>(
          size < static_cast<std::uint64_t>(k) ? size : k);
      for (int cell = 1; cell < cells; ++cell) {
        const auto taken = [&](NodeIndex candidate) {
          for (int prev = 0; prev < cell; ++prev) {
            if (contacts_[bucket_base + prev] == candidate) {
              return true;
            }
          }
          return false;
        };
        auto pick = static_cast<NodeIndex>(first + rng.uniform_below(size));
        for (int attempt = 0; attempt < 16 && taken(pick); ++attempt) {
          pick = static_cast<NodeIndex>(first + rng.uniform_below(size));
        }
        while (taken(pick)) {  // walk to the next free member (cells < size)
          pick = pick + 1 == last ? static_cast<NodeIndex>(first)
                                  : static_cast<NodeIndex>(pick + 1);
        }
        contacts_[bucket_base + cell] = pick;
      }
    }
  }
}

std::optional<NodeIndex> SparseKademliaOverlay::contact(NodeIndex node,
                                                        int bucket,
                                                        int cell) const {
  DHT_CHECK(node < space_->node_count(), "node index out of range");
  DHT_CHECK(bucket >= 1 && bucket <= space_->bits(),
            "bucket index out of range");
  DHT_CHECK(cell >= 0 && cell < k_, "bucket cell out of range");
  const NodeIndex entry =
      contacts_[node * static_cast<std::uint64_t>(space_->bits()) * k_ +
                static_cast<std::uint64_t>(bucket - 1) * k_ +
                static_cast<std::uint64_t>(cell)];
  if (entry == kNoNode) {
    return std::nullopt;
  }
  return entry;
}

std::optional<NodeIndex> SparseKademliaOverlay::next_hop(
    NodeIndex current, NodeIndex target,
    const SparseFailure& failures) const {
  // Range checks live here at the API boundary; the bucket walk below reads
  // the contact row and id array raw (contact()/id_of() would re-check per
  // call, d times per hop on the hot path).
  DHT_CHECK(current != target, "next_hop requires current != target");
  DHT_CHECK(current < space_->node_count() && target < space_->node_count(),
            "node index out of range");
  const int d = space_->bits();
  const sim::NodeId* ids = space_->ids().data();
  const NodeIndex* row = contacts_.data() +
                         current * static_cast<std::uint64_t>(d) * k_;
  const sim::NodeId current_id = ids[current];
  const sim::NodeId target_id = ids[target];
  const std::uint64_t current_distance =
      sim::xor_distance(current_id, target_id);
  // Buckets at levels where current and target differ, highest order
  // first; within a bucket, cells head first.  The first alive contact
  // strictly closer to the target is the greedy choice (correcting a
  // higher-order bit dominates any suffix noise).
  sim::NodeId diff = current_distance;
  while (diff != 0) {
    const int bw = std::bit_width(diff);
    const NodeIndex* bucket = row + static_cast<std::uint64_t>(d - bw) * k_;
    for (int cell = 0; cell < k_; ++cell) {  // bucket level d - bw + 1
      const NodeIndex entry = bucket[cell];
      if (entry != kNoNode && failures.alive(entry) &&
          sim::xor_distance(ids[entry], target_id) < current_distance) {
        return entry;
      }
    }
    diff &= ~(sim::NodeId{1} << (bw - 1));
  }
  return std::nullopt;
}

}  // namespace dht::sparse
