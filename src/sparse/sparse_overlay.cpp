#include "sparse/sparse_overlay.hpp"

#include "common/check.hpp"
#include "common/hugepage.hpp"

namespace dht::sparse {

SparseOverlay::~SparseOverlay() = default;

SparseFailure::SparseFailure(const SparseIdSpace& space, double q,
                             math::Rng& rng)
    : alive_(space.node_count(), 1) {
  DHT_CHECK(q >= 0.0 && q <= 1.0, "failure probability q must be in [0, 1]");
  const auto n = static_cast<NodeIndex>(space.node_count());
  common::reserve_hugepages(alive_ids_, n);
  if (q == 0.0) {
    for (NodeIndex i = 0; i < n; ++i) {
      alive_ids_.push_back(i);
    }
    return;
  }
  for (NodeIndex i = 0; i < n; ++i) {
    if (rng.bernoulli(q)) {
      alive_[i] = 0;
    } else {
      alive_ids_.push_back(i);
    }
  }
}

std::optional<int> route(const SparseOverlay& overlay,
                         const SparseFailure& failures, NodeIndex source,
                         NodeIndex target) {
  DHT_CHECK(source != target, "route requires source != target");
  const std::uint64_t max_hops = overlay.space().node_count();
  NodeIndex current = source;
  int hops = 0;
  while (current != target) {
    if (static_cast<std::uint64_t>(hops) >= max_hops) {
      DHT_CHECK(false, "sparse route exceeded N hops: protocol bug");
    }
    const auto next = overlay.next_hop(current, target, failures);
    if (!next.has_value()) {
      return std::nullopt;
    }
    current = *next;
    ++hops;
  }
  return hops;
}

SparseEstimate estimate_routability(const SparseOverlay& overlay,
                                    const SparseFailure& failures,
                                    std::uint64_t pairs, math::Rng& rng) {
  DHT_CHECK(failures.alive_count() >= 2,
            "routability needs at least two alive nodes");
  DHT_CHECK(pairs > 0, "at least one pair must be sampled");
  SparseEstimate estimate;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const NodeIndex source = failures.sample_alive(rng);
    NodeIndex target = failures.sample_alive(rng);
    while (target == source) {
      target = failures.sample_alive(rng);
    }
    const auto hops = route(overlay, failures, source, target);
    if (hops.has_value()) {
      estimate.record_arrival(static_cast<std::uint64_t>(*hops));
    } else {
      estimate.record_drop();
    }
  }
  return estimate;
}

}  // namespace dht::sparse
