// Non-fully-populated identifier spaces -- the paper's Section 6 future
// work ("analytical results for real world DHTs with non-fully-populated
// identifier spaces can be similarly derived").
//
// N distinct node identifiers are drawn uniformly from a d-bit key space
// with N <= 2^d (real DHTs: N ~ 10^6 nodes in a 2^128 space).  Nodes are
// indexed 0..N-1 in ring order of their identifiers; routing operates on
// identifiers, liveness and pair sampling on indices.  Key spaces up to
// 2^63 and populations up to 2^26 nodes are supported: all per-identifier
// queries are binary searches over the sorted id array, so only the
// population is materialized, never the key space.
#pragma once

#include <cstdint>
#include <vector>

#include "math/rng.hpp"
#include "sim/node_id.hpp"

namespace dht::sparse {

/// Index of a node in ring order (0 .. node_count()-1).
using NodeIndex = std::uint32_t;

/// Sentinel for "no node" in flattened routing-table rows (e.g. empty
/// Kademlia buckets); never a valid NodeIndex since populations are < 2^32.
inline constexpr NodeIndex kNoNode = ~NodeIndex{0};

class SparseIdSpace {
 public:
  /// Samples `node_count` distinct identifiers uniformly from [0, 2^bits).
  /// Preconditions: 1 <= bits <= 63, 2 <= node_count <= 2^bits, and
  /// node_count <= 2^26 (the simulator materializes per-node state).
  SparseIdSpace(int bits, std::uint64_t node_count, math::Rng& rng);

  int bits() const noexcept { return bits_; }
  std::uint64_t key_space_size() const noexcept {
    return std::uint64_t{1} << bits_;
  }
  std::uint64_t node_count() const noexcept { return ids_.size(); }
  double density() const noexcept {
    return static_cast<double>(node_count()) /
           static_cast<double>(key_space_size());
  }

  /// The identifier of the index-th node in ring order.
  sim::NodeId id_of(NodeIndex index) const;

  /// The sorted identifier array (index -> identifier); the flattened
  /// routing kernels read this directly instead of per-hop id_of calls.
  const std::vector<sim::NodeId>& ids() const noexcept { return ids_; }

  /// The node owning `key`: the first node at or clockwise-after the key
  /// (Chord successor convention).
  NodeIndex successor_of_key(sim::NodeId key) const;

  /// The node `steps` positions clockwise of `index` in ring order.
  NodeIndex ring_step(NodeIndex index, std::uint64_t steps) const;

  /// Nodes whose identifiers lie in [lo, hi] (inclusive, no wrap:
  /// lo <= hi required).  Returned as an index range [first, last).
  std::pair<NodeIndex, NodeIndex> index_range(sim::NodeId lo,
                                              sim::NodeId hi) const;

 private:
  int bits_;
  std::vector<sim::NodeId> ids_;  // sorted ascending
};

}  // namespace dht::sparse
