// Kademlia over a non-fully-populated identifier space.
//
// Bucket i of node v covers identifiers at XOR distance [2^{d-i}, 2^{d-i+1})
// from id(v) -- equivalently, ids sharing the first i-1 bits of id(v) and
// differing at bit i.  In a sparse space a bucket may be empty; otherwise
// the basic protocol keeps one uniformly random contact per bucket.
// Forwarding is greedy in realized XOR distance: the highest-order
// non-empty bucket whose alive contact is strictly closer to the target.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/sparse_overlay.hpp"

namespace dht::sparse {

class SparseKademliaOverlay final : public SparseOverlay {
 public:
  SparseKademliaOverlay(const SparseIdSpace& space, math::Rng& rng);

  std::string_view name() const noexcept override { return "sparse-xor"; }
  const SparseIdSpace& space() const noexcept override { return *space_; }

  /// The bucket-i contact of `node`, or nullopt when the bucket is empty.
  std::optional<NodeIndex> contact(NodeIndex node, int bucket) const;

  /// Row-major [node][i-1] contact indices, kNoNode marking empty buckets;
  /// the flattened kernel (sparse/flat_sparse.hpp) reads this directly.
  const std::vector<NodeIndex>& contact_table() const noexcept {
    return contacts_;
  }

  std::optional<NodeIndex> next_hop(
      NodeIndex current, NodeIndex target,
      const SparseFailure& failures) const override;

 private:
  const SparseIdSpace* space_;
  // Row-major [node][i-1] contact indices (kNoNode for empty buckets).
  std::vector<NodeIndex> contacts_;
};

}  // namespace dht::sparse
