// Kademlia over a non-fully-populated identifier space.
//
// Bucket i of node v covers identifiers at XOR distance [2^{d-i}, 2^{d-i+1})
// from id(v) -- equivalently, ids sharing the first i-1 bits of id(v) and
// differing at bit i.  In a sparse space a bucket may be empty; otherwise
// the protocol keeps up to k distinct uniformly drawn contacts per bucket
// (the k-bucket model of Roos et al., "Comprehending Kademlia Routing";
// k = 1 is the historical single-contact row).  Forwarding is greedy in
// realized XOR distance: walk the differing levels highest order first,
// probe a bucket's cells head first, and take the first alive contact
// strictly closer to the target.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/sparse_overlay.hpp"

namespace dht::sparse {

class SparseKademliaOverlay final : public SparseOverlay {
 public:
  /// Single-contact buckets (k = 1), the historical layout and rng stream.
  SparseKademliaOverlay(const SparseIdSpace& space, math::Rng& rng);

  /// k contacts per bucket.  Cell 0 consumes exactly the single-contact
  /// draw; cells beyond hold further distinct members (kNoNode where the
  /// bucket population runs out).
  SparseKademliaOverlay(const SparseIdSpace& space, math::Rng& rng, int k);

  std::string_view name() const noexcept override { return "sparse-xor"; }
  const SparseIdSpace& space() const noexcept override { return *space_; }

  int bucket_k() const noexcept { return k_; }

  /// The contact in cell `cell` of bucket i of `node`, or nullopt when the
  /// cell is empty.
  std::optional<NodeIndex> contact(NodeIndex node, int bucket,
                                   int cell = 0) const;

  /// Row-major [node][(i-1)*k + cell] contact indices, kNoNode marking
  /// empty cells; the flattened kernel (sparse/flat_sparse.hpp) reads this
  /// directly.
  const std::vector<NodeIndex>& contact_table() const noexcept {
    return contacts_;
  }

  std::optional<NodeIndex> next_hop(
      NodeIndex current, NodeIndex target,
      const SparseFailure& failures) const override;

 private:
  const SparseIdSpace* space_;
  int k_ = 1;
  // Row-major [node][(i-1)*k + cell] contact indices (kNoNode for empty
  // cells).
  std::vector<NodeIndex> contacts_;
};

}  // namespace dht::sparse
