// Chord over a non-fully-populated identifier space.
//
// Node v keeps d fingers: finger i points to successor(id(v) + 2^{d-i}),
// the standard Chord rule.  With N << 2^d nodes only ~log2 N of the fingers
// are distinct -- which is exactly why the dense RCM model evaluated at
// d' = log2 N predicts the sparse system's routability (see
// density_analysis.hpp and the ext_sparse_population benchmark).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/sparse_overlay.hpp"

namespace dht::sparse {

class SparseChordOverlay final : public SparseOverlay {
 public:
  explicit SparseChordOverlay(const SparseIdSpace& space);

  std::string_view name() const noexcept override { return "sparse-ring"; }
  const SparseIdSpace& space() const noexcept override { return *space_; }

  /// The i-th finger (1-based): successor(id + 2^{bits-i}).
  NodeIndex finger(NodeIndex node, int index) const;

  /// Row-major [node][i-1] finger node indices; the flattened kernel
  /// (sparse/flat_sparse.hpp) reads this directly.
  const std::vector<NodeIndex>& finger_table() const noexcept {
    return fingers_;
  }

  /// CSR kernel layout: node v's *distinct* fingers (duplicates collapse
  /// onto the same few successors in sparse spaces; self-links dropped) in
  /// [route_offsets()[v], route_offsets()[v+1]), sorted by decreasing
  /// clockwise progress from v with the progress values precomputed.  The
  /// flattened kernel skips overshooting entries and takes the first alive
  /// one -- the same greedy choice as the full finger scan, in ~log2 N
  /// contiguous reads instead of d random id lookups per hop.
  const std::vector<std::uint64_t>& route_offsets() const noexcept {
    return route_offsets_;
  }
  const std::vector<std::uint64_t>& route_progress() const noexcept {
    return route_progress_;
  }
  const std::vector<NodeIndex>& route_targets() const noexcept {
    return route_targets_;
  }

  std::optional<NodeIndex> next_hop(
      NodeIndex current, NodeIndex target,
      const SparseFailure& failures) const override;

 private:
  const SparseIdSpace* space_;
  // Row-major [node][i-1] finger node indices.
  std::vector<NodeIndex> fingers_;
  // CSR rows of (progress, target) pairs, per node, progress descending.
  std::vector<std::uint64_t> route_offsets_;
  std::vector<std::uint64_t> route_progress_;
  std::vector<NodeIndex> route_targets_;
};

}  // namespace dht::sparse
