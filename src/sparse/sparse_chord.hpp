// Chord over a non-fully-populated identifier space.
//
// Node v keeps d fingers: finger i points to successor(id(v) + 2^{d-i}),
// the standard Chord rule.  With N << 2^d nodes only ~log2 N of the fingers
// are distinct -- which is exactly why the dense RCM model evaluated at
// d' = log2 N predicts the sparse system's routability (see
// density_analysis.hpp and the ext_sparse_population benchmark).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/sparse_overlay.hpp"

namespace dht::sparse {

class SparseChordOverlay final : public SparseOverlay {
 public:
  explicit SparseChordOverlay(const SparseIdSpace& space);

  std::string_view name() const noexcept override { return "sparse-ring"; }
  const SparseIdSpace& space() const noexcept override { return *space_; }

  /// The i-th finger (1-based): successor(id + 2^{bits-i}).
  NodeIndex finger(NodeIndex node, int index) const;

  /// Row-major [node][i-1] finger node indices; the flattened kernel
  /// (sparse/flat_sparse.hpp) reads this directly.
  const std::vector<NodeIndex>& finger_table() const noexcept {
    return fingers_;
  }

  /// Kernel route layout: node v's *distinct* fingers (duplicates collapse
  /// onto the same few successors in sparse spaces; self-links dropped) in
  /// row v of fixed-stride row-major arrays, sorted by decreasing
  /// clockwise progress from v with the progress values precomputed.  Rows
  /// are padded to route_stride() entries with (progress 0, kNoNode) --
  /// real entries always have progress > 0, so the pad is inert: it never
  /// counts as admissible and terminates scans.  The fixed stride is what
  /// lets the kernel compute a row's address from the node index alone (no
  /// offsets load on the critical path) and prefetch the next hop's row a
  /// whole batch turn ahead.
  ///
  /// Two storage shapes, selected by the key-space width:
  ///  - bits <= 32 (route_packed() non-empty): each entry is one u64,
  ///    (progress << 32) | target.  Admissibility is a single unsigned
  ///    compare against (distance << 32) | 0xFFFFFFFF, and the count and
  ///    take phases of a hop touch the SAME cache lines -- half the lines
  ///    (and half the table bytes) of the two-array shape.
  ///  - bits > 32 (route_packed() empty): parallel u64 progress and u32
  ///    target arrays, as progress values no longer fit 32 bits.
  int route_stride() const noexcept { return route_stride_; }
  const std::vector<std::uint64_t>& route_packed() const noexcept {
    return route_packed_;
  }
  const std::vector<std::uint64_t>& route_progress() const noexcept {
    return route_progress_;
  }
  const std::vector<NodeIndex>& route_targets() const noexcept {
    return route_targets_;
  }
  /// Real (unpadded) entries in each row; N bytes, so the kernels' length
  /// lookups stay cache-resident.
  const std::vector<std::uint8_t>& route_lens() const noexcept {
    return route_lens_;
  }

  std::optional<NodeIndex> next_hop(
      NodeIndex current, NodeIndex target,
      const SparseFailure& failures) const override;

 private:
  const SparseIdSpace* space_;
  // Row-major [node][i-1] finger node indices.
  std::vector<NodeIndex> fingers_;
  // Fixed-stride padded rows of (progress, target), progress descending:
  // packed single-u64 entries when bits <= 32, parallel arrays otherwise.
  int route_stride_ = 0;
  std::vector<std::uint64_t> route_packed_;
  std::vector<std::uint64_t> route_progress_;
  std::vector<NodeIndex> route_targets_;
  std::vector<std::uint8_t> route_lens_;
};

}  // namespace dht::sparse
