// Chord over a non-fully-populated identifier space.
//
// Node v keeps d fingers: finger i points to successor(id(v) + 2^{d-i}),
// the standard Chord rule.  With N << 2^d nodes only ~log2 N of the fingers
// are distinct -- which is exactly why the dense RCM model evaluated at
// d' = log2 N predicts the sparse system's routability (see
// density_analysis.hpp and the ext_sparse_population benchmark).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/sparse_overlay.hpp"

namespace dht::sparse {

class SparseChordOverlay final : public SparseOverlay {
 public:
  explicit SparseChordOverlay(const SparseIdSpace& space);

  std::string_view name() const noexcept override { return "sparse-ring"; }
  const SparseIdSpace& space() const noexcept override { return *space_; }

  /// The i-th finger (1-based): successor(id + 2^{bits-i}).
  NodeIndex finger(NodeIndex node, int index) const;

  std::optional<NodeIndex> next_hop(
      NodeIndex current, NodeIndex target,
      const SparseFailure& failures) const override;

 private:
  const SparseIdSpace* space_;
  // Row-major [node][i-1] finger node indices.
  std::vector<NodeIndex> fingers_;
};

}  // namespace dht::sparse
