#include "sparse/density_analysis.hpp"

#include <cmath>

#include "common/check.hpp"

namespace dht::sparse {

int effective_bits(std::uint64_t node_count) {
  DHT_CHECK(node_count >= 2, "effective_bits requires >= 2 nodes");
  return static_cast<int>(
      std::lround(std::log2(static_cast<double>(node_count))));
}

core::RoutabilityPoint predict_sparse_routability(
    const core::Geometry& geometry, std::uint64_t node_count, double q) {
  return core::evaluate_routability(geometry, effective_bits(node_count), q);
}

}  // namespace dht::sparse
