#include "churn/trajectory.hpp"

#include <utility>

#include "common/check.hpp"
#include "sim/shard_pool.hpp"

namespace dht::churn {

void validate_trajectory_options(const TrajectoryOptions& options) {
  DHT_CHECK(options.warmup_rounds >= 0, "warmup rounds must be >= 0");
  DHT_CHECK(options.measured_rounds >= 1,
            "at least one round must be measured");
  DHT_CHECK(options.pairs_per_round > 0,
            "at least one pair must be sampled per round");
  DHT_CHECK(options.repair_probability >= 0.0 &&
                options.repair_probability <= 1.0,
            "repair probability must be in [0, 1]");
}

TrajectoryResult run_churn_trajectory(TrajectoryGeometry geometry,
                                      const sim::IdSpace& space,
                                      const ChurnParams& params,
                                      const TrajectoryOptions& options,
                                      const math::Rng& rng) {
  validate_trajectory_options(options);
  DHT_CHECK(!options.inflight,
            "in-flight measurement is a sparse-churn mode (dense rosters "
            "freeze between rounds)");
  DHT_CHECK(options.trace_routes == 0,
            "route forensics is a sparse-churn sync-mode feature (the "
            "dense engine has no slot/generation hop records)");
  // Lifecycle domains are validated by the ChurnWorld constructor
  // (common/check.hpp); run them up front so a bad grid point throws
  // before any shard spins up a world.
  (void)availability(params);

  const std::uint64_t shards =
      options.shards != 0 ? options.shards : kDefaultTrajectoryShards;
  const int rounds = options.measured_rounds;
  std::vector<std::vector<sim::RoutabilityEstimate>> shard_rounds(shards);
  std::vector<double> alive_sum(shards, 0.0);
  std::vector<double> age_sum(shards, 0.0);
  // Timing side-channel only: per-shard profiles are reduced in shard
  // order below, and a null profile/trace reads no clock anywhere.
  const bool observed = options.profile != nullptr || options.trace != nullptr;
  std::vector<obs::PhaseProfile> shard_profiles(observed ? shards : 0);

  sim::run_sharded(
      shards,
      sim::PoolOptions{.threads = sim::resolve_threads(options.threads),
                       // Replica worlds are heavy; claim one at a time so
                       // the tail load-balances.
                       .chunk = 1,
                       .pin_workers = options.pin_workers},
      [&](std::uint64_t s) {
        obs::PhaseProfile* const profile =
            observed ? &shard_profiles[s] : nullptr;
        // Shard s is an independent replica of the whole trajectory, a pure
        // function of (caller seed, s).  Its world is allocated here, on
        // the (optionally pinned) worker, so first touch places it on the
        // worker's socket.
        obs::PhaseTimer build_timer(profile, obs::Phase::kWorldBuild,
                                    options.trace);
        ChurnWorld world(geometry, space, params, options.repair_probability,
                         options.max_hops, rng.fork(s));
        build_timer.stop();
        world.set_observer(profile, options.trace);
        for (int i = 0; i < options.warmup_rounds; ++i) {
          world.step();
        }
        auto& mine = shard_rounds[s];
        mine.reserve(static_cast<std::size_t>(rounds));
        for (int r = 0; r < rounds; ++r) {
          world.step();
          mine.push_back(world.measure(options.pairs_per_round));
          alive_sum[s] += world.alive_fraction();
          age_sum[s] += world.mean_entry_age();
        }
      });

  TrajectoryResult result;
  result.shards = shards;
  result.per_round.resize(static_cast<std::size_t>(rounds));
  {
    obs::PhaseProfile merge_profile;
    obs::PhaseTimer merge_timer(observed ? &merge_profile : nullptr,
                                obs::Phase::kMerge, options.trace);
    for (int r = 0; r < rounds; ++r) {
      for (std::uint64_t s = 0; s < shards; ++s) {
        result.per_round[static_cast<std::size_t>(r)].merge(
            shard_rounds[s][static_cast<std::size_t>(r)]);
      }
      result.overall.merge(result.per_round[static_cast<std::size_t>(r)]);
    }
    merge_timer.stop();
    if (options.profile != nullptr) {
      for (const obs::PhaseProfile& p : shard_profiles) {
        options.profile->merge(p);
      }
      options.profile->merge(merge_profile);
    }
  }
  double alive_total = 0.0;
  double age_total = 0.0;
  for (std::uint64_t s = 0; s < shards; ++s) {
    alive_total += alive_sum[s];
    age_total += age_sum[s];
  }
  // validate_trajectory_options guarantees rounds >= 1 and shards >= 1, but
  // keep the division guarded: an empty run must surface zeroed
  // diagnostics, never NaN leaking into JSONL.
  const double snapshots =
      static_cast<double>(shards) * static_cast<double>(rounds);
  result.mean_alive_fraction = snapshots > 0.0 ? alive_total / snapshots : 0.0;
  result.mean_entry_age = snapshots > 0.0 ? age_total / snapshots : 0.0;
  return result;
}

std::vector<SweepPoint> run_churn_sweep(const SweepSpec& spec) {
  DHT_CHECK(!spec.bits.empty(), "sweep needs at least one bits value");
  DHT_CHECK(!spec.churn.empty(), "sweep needs at least one churn point");
  DHT_CHECK(!spec.repair.empty(), "sweep needs at least one repair value");
  const math::Rng root(spec.seed);
  std::vector<SweepPoint> points;
  points.reserve(spec.bits.size() * spec.churn.size() * spec.repair.size());
  std::uint64_t index = 0;
  for (const int bits : spec.bits) {
    const sim::IdSpace space(bits);
    for (const ChurnParams& params : spec.churn) {
      for (const double rho : spec.repair) {
        TrajectoryOptions options = spec.options;
        options.repair_probability = rho;
        SweepPoint point;
        point.bits = bits;
        point.params = params;
        point.repair_probability = rho;
        point.q_eff = effective_q(params);
        point.result = run_churn_trajectory(spec.geometry, space, params,
                                            options, root.fork(index));
        points.push_back(std::move(point));
        ++index;
      }
    }
  }
  return points;
}

}  // namespace dht::churn
