#include "churn/membership.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dht::churn {

SparseMembership::SparseMembership(int bits, std::uint64_t capacity)
    : bits_(bits) {
  DHT_CHECK(bits >= 1 && bits <= 63,
            "sparse membership supports 1 <= bits <= 63");
  DHT_CHECK(capacity >= 2, "membership needs at least two slots");
  DHT_CHECK(bits >= 26 || capacity <= (std::uint64_t{1} << bits),
            "capacity must fit the key space");
  DHT_CHECK(capacity <= (std::uint64_t{1} << 26),
            "capacity must stay <= 2^26 (per-slot state is materialized)");
  ids_.resize(capacity, 0);
  present_.resize(capacity, 0);
  generations_.resize(capacity, 0);
  in_pending_.resize(capacity, 0);
}

void SparseMembership::leave(NodeSlot slot) {
  DHT_CHECK(present_[slot] != 0, "leave requires a present slot");
  present_[slot] = 0;
  --population_;
}

bool SparseMembership::id_occupied(std::uint64_t id) const {
  // Occupied = owned by a still-present node: either an order entry whose
  // slot has not left since the last commit, or a pending joiner.  Ids of
  // departed nodes are free for re-draw immediately.
  const auto it = std::lower_bound(order_ids_.begin(), order_ids_.end(), id);
  if (it != order_ids_.end() && *it == id) {
    const NodeSlot slot =
        order_slots_[static_cast<std::uint64_t>(it - order_ids_.begin())];
    // The order entry holds the id iff its slot is still present under its
    // committed identity; a recycled slot's old id is free again (the
    // recycled identity is tracked by the pending list instead).
    if (present_[slot] != 0 && in_pending_[slot] == 0) {
      return true;
    }
  }
  const auto pending = std::lower_bound(
      pending_.begin(), pending_.end(), id,
      [](const auto& entry, std::uint64_t key) { return entry.first < key; });
  return pending != pending_.end() && pending->first == id;
}

void SparseMembership::join(const std::vector<NodeSlot>& slots,
                            math::Rng& rng) {
  if (slots.empty()) {
    return;
  }
  const std::uint64_t k = slots.size();
  DHT_CHECK(population_ + k <= key_space_size(),
            "population would exceed the key space");
  const std::uint64_t keys = key_space_size();
  // Every present slot owns exactly one occupied id (order entries of
  // still-present, non-recycled slots plus the pending joiners), so the
  // free-key count is keys - population.
  const std::uint64_t free_keys = keys - population_;
  std::vector<std::uint64_t> fresh;
  fresh.reserve(k);
  if (free_keys < keys / 8) {  // keys is a power of two; no overflow
    // Dense regime (occupancy > 7/8, e.g. capacity = 2^bits near full
    // availability): uniform rejection degenerates -- each fresh id costs
    // ~keys/free draws, up to ~2^bits draws per id as occupancy -> 1.
    // Enumerate the free keys directly instead: walk the gaps of the
    // sorted occupied stream (surviving order entries merged with the
    // pending joins) in O(keys), then partial-Fisher-Yates k of them.
    std::vector<std::uint64_t> free_ids;
    free_ids.reserve(free_keys);
    std::uint64_t next_key = 0;
    std::uint64_t i = 0;
    std::uint64_t j = 0;
    const auto push_gap = [&free_ids](std::uint64_t from, std::uint64_t to) {
      for (std::uint64_t id = from; id < to; ++id) {
        free_ids.push_back(id);
      }
    };
    while (i < order_ids_.size() || j < pending_.size()) {
      std::uint64_t occupied_id;
      if (j >= pending_.size() ||
          (i < order_ids_.size() && order_ids_[i] <= pending_[j].first)) {
        const NodeSlot slot = order_slots_[i];
        occupied_id = order_ids_[i];
        ++i;
        if (present_[slot] == 0 || in_pending_[slot] != 0) {
          continue;  // departed or recycled: its old id is free
        }
      } else {
        occupied_id = pending_[j].first;
        ++j;
      }
      push_gap(next_key, occupied_id);
      next_key = occupied_id + 1;
    }
    push_gap(next_key, keys);
    DHT_CHECK(free_ids.size() == free_keys,
              "free-key enumeration out of sync with the population");
    for (std::uint64_t pick = 0; pick < k; ++pick) {
      const std::uint64_t other =
          pick + rng.uniform_below(free_ids.size() - pick);
      std::swap(free_ids[pick], free_ids[other]);
      fresh.push_back(free_ids[pick]);
    }
    std::sort(fresh.begin(), fresh.end());
  } else {
    // Sparse regime: batched distinct-fresh-id draw -- top the pool up to
    // k raw draws, sort, dedup against itself and the occupied keys,
    // repeat.  Converges cheaply while free keys dominate.
    while (fresh.size() < k) {
      while (fresh.size() < k) {
        fresh.push_back(rng.uniform_below(keys));
      }
      std::sort(fresh.begin(), fresh.end());
      fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
      fresh.erase(std::remove_if(
                      fresh.begin(), fresh.end(),
                      [this](std::uint64_t id) { return id_occupied(id); }),
                  fresh.end());
    }
  }
  // Ascending fresh ids onto the ascending cohort; slot numbers carry no
  // ring meaning, so the pairing is free to be the convenient one.
  const std::uint64_t before = pending_.size();
  for (std::uint64_t i = 0; i < k; ++i) {
    const NodeSlot slot = slots[i];
    DHT_CHECK(present_[slot] == 0, "join requires an absent slot");
    ids_[slot] = fresh[i];
    present_[slot] = 1;
    ++generations_[slot];
    in_pending_[slot] = 1;
    pending_.emplace_back(fresh[i], slot);
  }
  population_ += k;
  std::inplace_merge(
      pending_.begin(),
      pending_.begin() + static_cast<std::ptrdiff_t>(before), pending_.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
}

void SparseMembership::commit() {
  // Merge the surviving order entries with the pending joiners into fresh
  // parallel arrays.  An old entry survives iff its slot is present AND not
  // recycled this cycle -- presence alone is not enough, because a slot that
  // left and re-joined is present under a new identity carried by the
  // pending list (and may even have re-drawn its old identifier).
  std::vector<std::uint64_t> merged_ids;
  std::vector<NodeSlot> merged_slots;
  merged_ids.reserve(population_);
  merged_slots.reserve(population_);
  const std::uint64_t old_size = order_ids_.size();
  std::uint64_t i = 0;
  std::uint64_t j = 0;
  const auto survives = [this](std::uint64_t pos) {
    const NodeSlot slot = order_slots_[pos];
    return present_[slot] != 0 && in_pending_[slot] == 0;
  };
  while (i < old_size || j < pending_.size()) {
    const bool take_old =
        j >= pending_.size() ||
        (i < old_size && order_ids_[i] <= pending_[j].first);
    if (take_old) {
      if (survives(i)) {
        merged_ids.push_back(order_ids_[i]);
        merged_slots.push_back(order_slots_[i]);
      }
      ++i;
    } else {
      merged_ids.push_back(pending_[j].first);
      merged_slots.push_back(pending_[j].second);
      ++j;
    }
  }
  order_ids_ = std::move(merged_ids);
  order_slots_ = std::move(merged_slots);
  for (const auto& [id, slot] : pending_) {
    (void)id;
    in_pending_[slot] = 0;
  }
  pending_.clear();
  DHT_CHECK(order_ids_.size() == population_,
            "order index out of sync with the population");
}

std::uint64_t SparseMembership::successor_position(std::uint64_t key) const {
  DHT_CHECK(!order_ids_.empty(), "successor query on an empty population");
  const auto it = std::lower_bound(order_ids_.begin(), order_ids_.end(), key);
  if (it == order_ids_.end()) {
    return 0;  // wrap to the smallest identifier
  }
  return static_cast<std::uint64_t>(it - order_ids_.begin());
}

std::pair<std::uint64_t, std::uint64_t> SparseMembership::order_range(
    std::uint64_t lo, std::uint64_t hi) const {
  DHT_CHECK(lo <= hi, "order_range requires lo <= hi");
  const auto first =
      std::lower_bound(order_ids_.begin(), order_ids_.end(), lo);
  const auto last = std::upper_bound(first, order_ids_.end(), hi);
  return {static_cast<std::uint64_t>(first - order_ids_.begin()),
          static_cast<std::uint64_t>(last - order_ids_.begin())};
}

}  // namespace dht::churn
