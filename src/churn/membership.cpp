#include "churn/membership.hpp"

#include <algorithm>
#include <bit>

#include "common/check.hpp"

namespace dht::churn {

SparseMembership::SparseMembership(int bits, std::uint64_t capacity)
    : bits_(bits) {
  DHT_CHECK(bits >= 1 && bits <= 63,
            "sparse membership supports 1 <= bits <= 63");
  DHT_CHECK(capacity >= 2, "membership needs at least two slots");
  DHT_CHECK(bits >= 26 || capacity <= (std::uint64_t{1} << bits),
            "capacity must fit the key space");
  DHT_CHECK(capacity <= (std::uint64_t{1} << 26),
            "capacity must stay <= 2^26 (per-slot state is materialized)");
  ids_.resize(capacity, 0);
  present_.resize(capacity, 0);
  generations_.resize(capacity, 0);
  alive_bits_.resize((capacity + 63) / 64, 0);
  in_pending_.resize(capacity, 0);
  // Size the seek table to ~capacity/2 buckets: population never exceeds
  // capacity, so mean occupancy stays around 1-2 ids per bucket -- enough
  // to collapse the binary searches -- while commit()'s streaming refresh
  // of the table costs less than the survivor compaction it rides on.
  // Capped at 2^20 buckets (4 MiB) and at the key space itself.
  const int bucket_bits = std::min(
      bits_, std::min(20, static_cast<int>(std::bit_width(capacity)) - 2));
  seek_shift_ = bits_ - bucket_bits;
  seek_.assign((std::uint64_t{1} << bucket_bits) + 1, 0);
}

void SparseMembership::leave(NodeSlot slot) {
  DHT_CHECK(present_[slot] != 0, "leave requires a present slot");
  present_[slot] = 0;
  alive_bits_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  --population_;
  stale_ = true;
}

bool SparseMembership::id_occupied(std::uint64_t id) const {
  // Occupied = owned by a still-present node: either an order entry whose
  // slot has not left since the last commit, or a pending joiner.  Ids of
  // departed nodes are free for re-draw immediately.
  std::uint64_t window_lo = 0;
  std::uint64_t window_hi = order_ids_.size();
  if (seek_fresh_) {
    const std::uint64_t bucket = id >> seek_shift_;
    window_lo = seek_[bucket];
    window_hi = seek_[bucket + 1];
  }
  const auto it = std::lower_bound(order_ids_.begin() + window_lo,
                                   order_ids_.begin() + window_hi, id);
  if (it != order_ids_.end() && *it == id) {
    const NodeSlot slot =
        order_slots_[static_cast<std::uint64_t>(it - order_ids_.begin())];
    // The order entry holds the id iff its slot is still present under its
    // committed identity; a recycled slot's old id is free again (the
    // recycled identity is tracked by the pending list instead).
    if (present_[slot] != 0 && in_pending_[slot] == 0) {
      return true;
    }
  }
  const auto pending = std::lower_bound(
      pending_.begin(), pending_.end(), id,
      [](const auto& entry, std::uint64_t key) { return entry.first < key; });
  return pending != pending_.end() && pending->first == id;
}

void SparseMembership::join(const std::vector<NodeSlot>& slots,
                            math::Rng& rng) {
  if (slots.empty()) {
    return;
  }
  const std::uint64_t k = slots.size();
  DHT_CHECK(population_ + k <= key_space_size(),
            "population would exceed the key space");
  const std::uint64_t keys = key_space_size();
  // Every present slot owns exactly one occupied id (order entries of
  // still-present, non-recycled slots plus the pending joiners), so the
  // free-key count is keys - population.
  const std::uint64_t free_keys = keys - population_;
  std::vector<std::uint64_t> fresh;
  fresh.reserve(k);
  if (free_keys < keys / 8) {  // keys is a power of two; no overflow
    // Dense regime (occupancy > 7/8, e.g. capacity = 2^bits near full
    // availability): uniform rejection degenerates -- each fresh id costs
    // ~keys/free draws, up to ~2^bits draws per id as occupancy -> 1.
    // Enumerate the free keys directly instead: walk the gaps of the
    // sorted occupied stream (surviving order entries merged with the
    // pending joins) in O(keys), then partial-Fisher-Yates k of them.
    std::vector<std::uint64_t> free_ids;
    free_ids.reserve(free_keys);
    std::uint64_t next_key = 0;
    std::uint64_t i = 0;
    std::uint64_t j = 0;
    const auto push_gap = [&free_ids](std::uint64_t from, std::uint64_t to) {
      for (std::uint64_t id = from; id < to; ++id) {
        free_ids.push_back(id);
      }
    };
    while (i < order_ids_.size() || j < pending_.size()) {
      std::uint64_t occupied_id;
      if (j >= pending_.size() ||
          (i < order_ids_.size() && order_ids_[i] <= pending_[j].first)) {
        const NodeSlot slot = order_slots_[i];
        occupied_id = order_ids_[i];
        ++i;
        if (present_[slot] == 0 || in_pending_[slot] != 0) {
          continue;  // departed or recycled: its old id is free
        }
      } else {
        occupied_id = pending_[j].first;
        ++j;
      }
      push_gap(next_key, occupied_id);
      next_key = occupied_id + 1;
    }
    push_gap(next_key, keys);
    DHT_CHECK(free_ids.size() == free_keys,
              "free-key enumeration out of sync with the population");
    for (std::uint64_t pick = 0; pick < k; ++pick) {
      const std::uint64_t other =
          pick + rng.uniform_below(free_ids.size() - pick);
      std::swap(free_ids[pick], free_ids[other]);
      fresh.push_back(free_ids[pick]);
    }
    std::sort(fresh.begin(), fresh.end());
  } else {
    // Sparse regime: batched distinct-fresh-id draw -- top the pool up to
    // k raw draws, sort, dedup against itself and the occupied keys,
    // repeat.  Converges cheaply while free keys dominate.
    while (fresh.size() < k) {
      while (fresh.size() < k) {
        fresh.push_back(rng.uniform_below(keys));
      }
      std::sort(fresh.begin(), fresh.end());
      fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
      fresh.erase(std::remove_if(
                      fresh.begin(), fresh.end(),
                      [this](std::uint64_t id) { return id_occupied(id); }),
                  fresh.end());
    }
  }
  // Ascending fresh ids onto the ascending cohort; slot numbers carry no
  // ring meaning, so the pairing is free to be the convenient one.
  const std::uint64_t before = pending_.size();
  for (std::uint64_t i = 0; i < k; ++i) {
    const NodeSlot slot = slots[i];
    DHT_CHECK(present_[slot] == 0, "join requires an absent slot");
    ids_[slot] = fresh[i];
    present_[slot] = 1;
    alive_bits_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    ++generations_[slot];
    in_pending_[slot] = 1;
    pending_.emplace_back(fresh[i], slot);
  }
  population_ += k;
  std::inplace_merge(
      pending_.begin(),
      pending_.begin() + static_cast<std::ptrdiff_t>(before), pending_.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
}

void SparseMembership::commit(bool refresh_seek) {
  // Incremental maintenance of the sorted parallel arrays.  An old entry
  // survives iff its slot is present AND not recycled this cycle --
  // presence alone is not enough, because a slot that left and re-joined is
  // present under a new identity carried by the pending list (and may even
  // have re-drawn its old identifier).
  if (pending_.empty() && !stale_) {
    return;  // membership unchanged since the last commit
  }
  // Pass 1 (departures): compact the survivors in place, keeping order.
  std::uint64_t kept = order_ids_.size();
  if (stale_) {
    std::uint64_t w = 0;
    for (std::uint64_t r = 0; r < order_ids_.size(); ++r) {
      const NodeSlot slot = order_slots_[r];
      if (present_[slot] != 0 && in_pending_[slot] == 0) {
        order_ids_[w] = order_ids_[r];
        order_slots_[w] = order_slots_[r];
        ++w;
      }
    }
    kept = w;
  }
  // Pass 2 (joins): backward shift-merge of the sorted pending cohort into
  // the compacted tail.  A survivor's id is occupied, so the fresh draws
  // never collide with it -- the merge sees no ties.
  if (pending_.empty()) {
    order_ids_.resize(kept);
    order_slots_.resize(kept);
  } else {
    const std::uint64_t joins = pending_.size();
    order_ids_.resize(kept + joins);
    order_slots_.resize(kept + joins);
    std::uint64_t i = kept;
    std::uint64_t j = joins;
    std::uint64_t out = kept + joins;
    while (j > 0) {
      if (i > 0 && order_ids_[i - 1] > pending_[j - 1].first) {
        order_ids_[out - 1] = order_ids_[i - 1];
        order_slots_[out - 1] = order_slots_[i - 1];
        --i;
      } else {
        order_ids_[out - 1] = pending_[j - 1].first;
        order_slots_[out - 1] = pending_[j - 1].second;
        --j;
      }
      --out;
    }
    for (const auto& [id, slot] : pending_) {
      (void)id;
      in_pending_[slot] = 0;
    }
    pending_.clear();
  }
  stale_ = false;
  DHT_CHECK(order_ids_.size() == population_,
            "order index out of sync with the population");
  if (!refresh_seek) {
    // The arrays moved under the seek table; queries fall back to
    // full-range searches until a refreshing commit.
    seek_fresh_ = false;
    return;
  }
  // Refresh the prefix-seek table in one streaming pass: walking the
  // ascending ids, every bucket up to an id's prefix that has not started
  // yet starts at that id's position (empty buckets collapse onto the next
  // occupied one); trailing buckets start at the end.
  const std::uint64_t buckets = seek_.size() - 1;
  std::uint64_t b = 0;
  for (std::uint64_t pos = 0; pos < order_ids_.size(); ++pos) {
    const std::uint64_t prefix = order_ids_[pos] >> seek_shift_;
    while (b <= prefix) {
      seek_[b++] = static_cast<std::uint32_t>(pos);
    }
  }
  while (b <= buckets) {
    seek_[b++] = static_cast<std::uint32_t>(order_ids_.size());
  }
  seek_fresh_ = true;
}

}  // namespace dht::churn
