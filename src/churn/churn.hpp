// Churn: the dynamic regime the paper defers (Section 1: "The
// applicability of the results derived from this static model to dynamic
// situations, such as churn, is currently under study").
//
// Model: every node runs an independent two-state (alive/dead) discrete
// Markov chain -- per round it dies with probability pd when alive and
// rejoins with probability pr when dead (geometric sessions, stationary
// availability a = pr/(pd+pr)).  Routing-table entries are refreshed every
// R rounds (re-pointed at an alive member of their class), and a rejoining
// node rebuilds its whole table.
//
// The bridge to the paper's static model: an entry refreshed k rounds ago
// points to a dead node with probability (1-a)(1 - lambda^k) where
// lambda = 1 - pd - pr is the chain's mixing factor.  With entry ages
// uniform over 0..R-1, the *effective static failure probability* is
//
//   q_eff(R) = (1-a) [1 - (1 - lambda^R) / (R (1 - lambda))],
//
// interpolating from q_eff = 0 (continuous refresh) to 1-a (never
// refresh: stationary dead probability).  ChurnWorld below runs the actual
// dynamic system -- for the XOR, tree, and ring geometries, routing over
// the flattened kernels of sim/flat_route.hpp -- and the ext_churn
// benchmark plus test_churn_trajectory confirm that its routability
// matches the static model evaluated at q_eff, answering the paper's open
// question for this churn model: static resilience analysis applies under
// churn, at the effective failure probability set by the refresh lag.
// ChurnSimulator is the single-world convenience facade; the sharded sweep
// engine (churn/trajectory.hpp) runs many ChurnWorlds as independent
// replicas.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "math/rng.hpp"
#include "math/stats.hpp"
#include "obs/phase_timer.hpp"
#include "sim/id_space.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/node_id.hpp"

namespace dht::churn {

/// Two-state per-round lifecycle parameters.
struct ChurnParams {
  double death_per_round = 0.01;    ///< P(alive -> dead) per round
  double rebirth_per_round = 0.05;  ///< P(dead -> alive) per round
  int refresh_interval = 10;        ///< rounds between entry refreshes (R)
};

/// Stationary availability a = pr / (pd + pr).
double availability(const ChurnParams& params);

/// P(entry target dead | entry refreshed k rounds ago).
double dead_given_age(const ChurnParams& params, int age);

/// The effective static failure probability q_eff(R) (see file comment).
double effective_q(const ChurnParams& params);

/// P(entry target departed | entry installed k rounds ago) when identities
/// never return: 1 - (1 - pd)^k.  This is the dynamic-membership analogue
/// of dead_given_age -- in the sparse churn world
/// (churn/sparse_trajectory.hpp) a leaving node is gone for good and a
/// recycled slot is a different node (generation stamps), so the rebirth
/// term of the dense chain drops out.
double departed_given_age(const ChurnParams& params, int age);

/// The no-return effective failure probability: departed_given_age
/// averaged over uniform entry ages 0..R-1,
///
///   q_nr(R) = 1 - (1 - (1-pd)^R) / (R pd),
///
/// the q_eff analogue the sparse churn engine's routability should track
/// (>= q_eff: without rebirths stale entries only decay).
double effective_q_no_return(const ChurnParams& params);

/// Session-length (node lifetime) distributions the dynamic-membership
/// lifecycle can run.  kGeometric is the memoryless baseline: a present
/// node departs with constant probability pd per round (mean session
/// 1/pd).  kPareto is the empirically observed heavy-tailed regime: the
/// discrete shifted Pareto (Lomax) survival S(k) = (1 + k/beta)^-alpha --
/// a gamma mixture of geometrics, hence "the Pareto mixture" -- whose
/// departure hazard DECREASES with session age: the longer a node has been
/// up, the longer it is likely to stay.  The scale beta is calibrated so
/// the mean session stays 1/pd, so the stationary availability (and hence
/// capacity_for_population) is identical to the geometric model and only
/// the tail shape changes.
enum class SessionKind {
  kGeometric,
  kPareto,
};

/// Maps "geometric" | "pareto" to the enum; anything else returns false.
bool session_kind_from_name(std::string_view name, SessionKind& out);

const char* to_string(SessionKind kind) noexcept;

struct SessionModel {
  SessionKind kind = SessionKind::kGeometric;
  /// Pareto tail exponent (> 1 so the mean exists; heavier tail as
  /// alpha -> 1).  Ignored by kGeometric.
  double pareto_alpha = 2.0;
};

/// Precomputed per-age lifecycle machinery for one session model: the
/// age-dependent departure hazard h(a) = P(depart this round | present for
/// a rounds), the survival function S(a) = prod_{u<=a} (1 - h(u)), and the
/// stationary session-age sampler pi(a) = S(a) / E[L].  The geometric
/// model is memoryless: hazard(a) == pd for every a and the stationary-age
/// draw is skipped entirely, so a geometric SessionProcess consumes
/// exactly the rng stream of the pre-SessionModel engine (bit-compat).
class SessionProcess {
 public:
  SessionProcess(const ChurnParams& params, const SessionModel& model);

  SessionKind kind() const noexcept { return model_.kind; }
  bool geometric() const noexcept {
    return model_.kind == SessionKind::kGeometric;
  }
  /// Mean session length E[L]; 1/pd for both kinds (by calibration).
  double mean_session() const noexcept { return mean_session_; }

  /// Departure hazard at session age `age` (>= 1).  Beyond the precomputed
  /// horizon the hazard is clamped flat (a geometric tail); survival past
  /// the horizon is O(1e-4) at the default shapes.
  double hazard(std::int64_t age) const noexcept {
    if (model_.kind == SessionKind::kGeometric) {
      return params_.death_per_round;
    }
    const auto idx = static_cast<std::size_t>(
        age < 1 ? 1
                : (age >= static_cast<std::int64_t>(hazard_.size())
                       ? hazard_.size() - 1
                       : age));
    return hazard_[idx];
  }

  /// Draws a session age from the stationary present-node age distribution
  /// (for initializing worlds at stationarity).  Geometric sessions are
  /// memoryless: returns 0 WITHOUT consuming the generator.
  std::int64_t sample_stationary_age(math::Rng& rng) const;

 private:
  ChurnParams params_;
  SessionModel model_;
  double mean_session_ = 0.0;
  // kPareto only: hazard_[a] = h(a); stationary_cdf_[a] = sum_{u<=a} pi(u)
  // over the precomputed horizon (normalized to end at 1).
  std::vector<double> hazard_;
  std::vector<double> stationary_cdf_;
};

/// P(entry target departed | entry installed `age` rounds ago) under the
/// session model, averaged over the stationary session-age distribution of
/// the target population: 1 - T(age)/E[L] with T(d) = sum_{a>=d} S(a).
/// The geometric model recovers departed_given_age exactly.
double departed_given_entry_age(const ChurnParams& params,
                                const SessionModel& model, int age);

/// The generalized no-return bridge: departed_given_entry_age averaged
/// over uniform entry ages 0..R-1.  kGeometric recovers
/// effective_q_no_return(params) exactly; the heavy-tailed q_nr sits BELOW
/// the geometric one at equal mean session (a freshly refreshed entry
/// points at a node whose expected remaining lifetime exceeds the mean --
/// the inspection paradox working in routing's favor).
double effective_q_no_return(const ChurnParams& params,
                             const SessionModel& model);

/// Geometries the churn machinery can evolve.  All three keep one entry
/// per (node, level) with 2^{d-level} candidates per entry class:
///   kXor   prefix-class entries, greedy XOR fallback forwarding
///   kTree  same tables, level-correcting forwarding
///   kRing  randomized Chord fingers (entry i uniform in the dyadic
///          interval [2^{d-i}, 2^{d-i+1})), greedy clockwise forwarding
enum class TrajectoryGeometry {
  kXor,
  kTree,
  kRing,
};

/// Maps "xor" | "tree" | "ring" to the enum; anything else returns false.
bool trajectory_geometry_from_name(std::string_view name,
                                   TrajectoryGeometry& out);

const char* to_string(TrajectoryGeometry geometry) noexcept;

/// One dynamic overlay world under churn: node lifecycles, lazy entry
/// refresh every R rounds, optional per-round eager repair of entries
/// observed dead (the rho knob of sim/repair.hpp), and routing against the
/// *current* liveness via the geometry's flattened kernel.
///
/// The constructor only fork()s the caller's generator (lifecycle, table,
/// and measurement sub-streams), so a world's whole trajectory is a pure
/// function of (rng lineage, inputs) -- which is what lets the sharded
/// sweep engine run worlds as independent replicas with bit-reproducible
/// results at any thread count.
class ChurnWorld {
 public:
  /// Starts at the stationary state (each node alive w.p. availability),
  /// with fresh tables and refresh phases staggered uniformly.
  /// `max_hops` of 0 selects the default cap N (strict progress bounds any
  /// route); hits are counted in the estimates' hop_limit_hits canary.
  ChurnWorld(TrajectoryGeometry geometry, const sim::IdSpace& space,
             const ChurnParams& params, double repair_probability,
             std::uint64_t max_hops, const math::Rng& rng);

  /// Advances one round: lifecycle flips, rejoiner table rebuilds, due
  /// refreshes, and (when rho > 0) eager repair of entries observed dead.
  void step();

  /// Samples `pairs` routes among currently-alive pairs against the stored
  /// (possibly stale) tables, drawing endpoints from `rng`.  With fewer
  /// than two alive nodes there is nothing to sample: returns an empty
  /// estimate.
  sim::RoutabilityEstimate measure(std::uint64_t pairs, math::Rng& rng);

  /// Same, drawing from the world's own measurement sub-stream (the
  /// sharded engine's path: no external generator to advance).
  sim::RoutabilityEstimate measure(std::uint64_t pairs);

  int round() const noexcept { return round_; }
  std::uint64_t alive_count() const noexcept { return alive_count_; }
  double alive_fraction() const noexcept;

  /// Mean age (rounds since refresh) over all entries of alive nodes --
  /// diagnostic for the q_eff derivation's uniform-age assumption.
  double mean_entry_age() const;

  /// Attaches observability sinks (obs/phase_timer.hpp): step() then
  /// attributes its lifecycle sweep and refresh/repair pass, and
  /// measure() its route sampling, to the profile/trace.  Pure timing
  /// side-channels -- null (the default) reads no clock, and attaching
  /// them never changes a counter.
  void set_observer(obs::PhaseProfile* profile, obs::Trace* trace) noexcept {
    profile_ = profile;
    trace_ = trace;
  }

 private:
  sim::NodeId class_member(sim::NodeId node, int level,
                           std::uint64_t member) const;
  void refresh_entry(sim::NodeId node, int level);
  void rebuild_node(sim::NodeId node);

  const TrajectoryGeometry geometry_;
  const sim::IdSpace space_;
  const ChurnParams params_;
  const double repair_probability_;
  const std::uint64_t max_hops_;
  math::Rng lifecycle_rng_;
  math::Rng table_rng_;
  math::Rng measure_rng_;
  obs::PhaseProfile* profile_ = nullptr;
  obs::Trace* trace_ = nullptr;
  int round_ = 0;
  std::vector<std::uint8_t> alive_;
  std::uint64_t alive_count_ = 0;
  // Row-major [node][level-1] entries + the round each was last refreshed.
  std::vector<std::uint32_t> entries_;
  std::vector<std::int32_t> refreshed_at_;
};

/// Single-world convenience facade over ChurnWorld for the XOR geometry
/// (the original churn extension's interface): no eager repair, external
/// measurement stream.
class ChurnSimulator {
 public:
  /// `rng` is only fork()ed, never advanced.
  ChurnSimulator(const sim::IdSpace& space, const ChurnParams& params,
                 math::Rng& rng);

  /// Advances one round.
  void step() { world_.step(); }

  /// Runs `rounds` steps (warm-up convenience).
  void run(int rounds);

  int round() const noexcept { return world_.round(); }
  double alive_fraction() const noexcept { return world_.alive_fraction(); }

  /// Routability among currently-alive pairs, sampled with the XOR
  /// fallback rule against the stored (possibly stale) tables.
  /// Precondition: at least two alive nodes.
  math::Proportion measure_routability(std::uint64_t pairs, math::Rng& rng);

  double mean_entry_age() const { return world_.mean_entry_age(); }

 private:
  ChurnWorld world_;
};

}  // namespace dht::churn
