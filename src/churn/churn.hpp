// Churn: the dynamic regime the paper defers (Section 1: "The
// applicability of the results derived from this static model to dynamic
// situations, such as churn, is currently under study").
//
// Model: every node runs an independent two-state (alive/dead) discrete
// Markov chain -- per round it dies with probability pd when alive and
// rejoins with probability pr when dead (geometric sessions, stationary
// availability a = pr/(pd+pr)).  Routing-table entries are refreshed every
// R rounds (re-pointed at an alive member of their class), and a rejoining
// node rebuilds its whole table.
//
// The bridge to the paper's static model: an entry refreshed k rounds ago
// points to a dead node with probability (1-a)(1 - lambda^k) where
// lambda = 1 - pd - pr is the chain's mixing factor.  With entry ages
// uniform over 0..R-1, the *effective static failure probability* is
//
//   q_eff(R) = (1-a) [1 - (1 - lambda^R) / (R (1 - lambda))],
//
// interpolating from q_eff = 0 (continuous refresh) to 1-a (never
// refresh: stationary dead probability).  The ChurnSimulator below runs
// the actual dynamic system for the XOR geometry and the ext_churn
// benchmark confirms that its routability matches the static model
// evaluated at q_eff -- answering the paper's open question for this churn
// model: static resilience analysis applies under churn, at the effective
// failure probability set by the refresh lag.
#pragma once

#include <cstdint>
#include <vector>

#include "math/rng.hpp"
#include "math/stats.hpp"
#include "sim/id_space.hpp"
#include "sim/node_id.hpp"

namespace dht::churn {

/// Two-state per-round lifecycle parameters.
struct ChurnParams {
  double death_per_round = 0.01;    ///< P(alive -> dead) per round
  double rebirth_per_round = 0.05;  ///< P(dead -> alive) per round
  int refresh_interval = 10;        ///< rounds between entry refreshes (R)
};

/// Stationary availability a = pr / (pd + pr).
double availability(const ChurnParams& params);

/// P(entry target dead | entry refreshed k rounds ago).
double dead_given_age(const ChurnParams& params, int age);

/// The effective static failure probability q_eff(R) (see file comment).
double effective_q(const ChurnParams& params);

/// A dynamic XOR (Kademlia) overlay under churn: node lifecycles, lazy
/// entry refresh, greedy fallback routing against the *current* liveness.
class ChurnSimulator {
 public:
  /// Starts at the stationary state (each node alive w.p. availability),
  /// with fresh tables and refresh phases staggered uniformly.
  ChurnSimulator(const sim::IdSpace& space, const ChurnParams& params,
                 math::Rng& rng);

  /// Advances one round: lifecycle flips, rejoiner table rebuilds, due
  /// refreshes.
  void step();

  /// Runs `rounds` steps (warm-up convenience).
  void run(int rounds);

  int round() const noexcept { return round_; }
  double alive_fraction() const noexcept;

  /// Routability among currently-alive pairs, sampled with the XOR
  /// fallback rule against the stored (possibly stale) tables.
  math::Proportion measure_routability(std::uint64_t pairs, math::Rng& rng);

  /// Mean age (rounds since refresh) over all entries of alive nodes --
  /// diagnostic for the q_eff derivation's uniform-age assumption.
  double mean_entry_age() const;

 private:
  void refresh_entry(sim::NodeId node, int level);
  void rebuild_node(sim::NodeId node);
  bool route(sim::NodeId source, sim::NodeId target) const;

  const sim::IdSpace space_;
  ChurnParams params_;
  math::Rng lifecycle_rng_;
  math::Rng table_rng_;
  int round_ = 0;
  std::vector<std::uint8_t> alive_;
  std::uint64_t alive_count_ = 0;
  // Row-major [node][level-1] entries + the round each was last refreshed.
  std::vector<std::uint32_t> entries_;
  std::vector<std::int32_t> refreshed_at_;
};

}  // namespace dht::churn
