#include "churn/churn.hpp"

#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace dht::churn {

namespace {

void check_params(const ChurnParams& params) {
  DHT_CHECK(params.death_per_round > 0.0 && params.death_per_round < 1.0,
            "death_per_round must be in (0, 1)");
  DHT_CHECK(params.rebirth_per_round > 0.0 && params.rebirth_per_round < 1.0,
            "rebirth_per_round must be in (0, 1)");
  DHT_CHECK(params.death_per_round + params.rebirth_per_round <= 1.0,
            "pd + pr must not exceed 1 (two-state chain mixing factor)");
  DHT_CHECK(params.refresh_interval >= 1, "refresh interval must be >= 1");
}

}  // namespace

double availability(const ChurnParams& params) {
  check_params(params);
  return params.rebirth_per_round /
         (params.death_per_round + params.rebirth_per_round);
}

double dead_given_age(const ChurnParams& params, int age) {
  check_params(params);
  DHT_CHECK(age >= 0, "entry age must be >= 0");
  const double lambda =
      1.0 - params.death_per_round - params.rebirth_per_round;
  return (1.0 - availability(params)) *
         (1.0 - std::pow(lambda, static_cast<double>(age)));
}

double effective_q(const ChurnParams& params) {
  check_params(params);
  const double lambda =
      1.0 - params.death_per_round - params.rebirth_per_round;
  const double r = static_cast<double>(params.refresh_interval);
  // Average of dead_given_age over ages 0 .. R-1; the geometric partial sum
  // (1 - lambda^R)/(1 - lambda) degenerates to R when lambda == 1, which
  // check_params excludes (pd + pr > 0).
  const double mean_alive_term =
      (1.0 - std::pow(lambda, r)) / (r * (1.0 - lambda));
  return (1.0 - availability(params)) * (1.0 - mean_alive_term);
}

ChurnSimulator::ChurnSimulator(const sim::IdSpace& space,
                               const ChurnParams& params, math::Rng& rng)
    : space_(space),
      params_(params),
      lifecycle_rng_(rng.fork(1)),
      table_rng_(rng.fork(2)) {
  check_params(params);
  const std::uint64_t n = space_.size();
  const int d = space_.bits();
  const double a = availability(params);
  alive_.resize(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    alive_[v] = lifecycle_rng_.bernoulli(a) ? 1 : 0;
    alive_count_ += alive_[v];
  }
  entries_.resize(n * static_cast<std::uint64_t>(d));
  refreshed_at_.resize(entries_.size());
  for (std::uint64_t v = 0; v < n; ++v) {
    for (int level = 1; level <= d; ++level) {
      refresh_entry(v, level);
      // Stagger initial phases so refreshes spread over the interval and
      // entry ages start uniform, matching the q_eff derivation.
      refreshed_at_[v * static_cast<std::uint64_t>(d) +
                    static_cast<std::uint64_t>(level - 1)] =
          -static_cast<std::int32_t>(
              table_rng_.uniform_below(
                  static_cast<std::uint64_t>(params_.refresh_interval)));
    }
  }
}

void ChurnSimulator::refresh_entry(sim::NodeId node, int level) {
  const int d = space_.bits();
  const int suffix_bits = d - level;
  const sim::NodeId base = (sim::flip_level(node, level, d) >> suffix_bits)
                           << suffix_bits;
  const std::uint64_t count = std::uint64_t{1} << suffix_bits;
  // Prefer an alive class member; keep the old entry if the class is dead
  // (bounded rejection, then exact scan -- classes die only when tiny).
  sim::NodeId chosen = base + table_rng_.uniform_below(count);
  if (!alive_[chosen]) {
    bool found = false;
    for (int attempt = 0; attempt < 32 && !found; ++attempt) {
      const sim::NodeId candidate = base + table_rng_.uniform_below(count);
      if (alive_[candidate]) {
        chosen = candidate;
        found = true;
      }
    }
    if (!found) {
      for (std::uint64_t offset = 0; offset < count && !found; ++offset) {
        if (alive_[base + offset]) {
          chosen = base + offset;
          found = true;
        }
      }
    }
  }
  const std::uint64_t slot = node * static_cast<std::uint64_t>(d) +
                             static_cast<std::uint64_t>(level - 1);
  entries_[slot] = static_cast<std::uint32_t>(chosen);
  refreshed_at_[slot] = static_cast<std::int32_t>(round_);
}

void ChurnSimulator::rebuild_node(sim::NodeId node) {
  for (int level = 1; level <= space_.bits(); ++level) {
    refresh_entry(node, level);
  }
}

void ChurnSimulator::step() {
  ++round_;
  const std::uint64_t n = space_.size();
  // Lifecycle flips first (a rejoiner builds its table against the new
  // world state).
  std::vector<sim::NodeId> rejoined;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (alive_[v]) {
      if (lifecycle_rng_.bernoulli(params_.death_per_round)) {
        alive_[v] = 0;
        --alive_count_;
      }
    } else if (lifecycle_rng_.bernoulli(params_.rebirth_per_round)) {
      alive_[v] = 1;
      ++alive_count_;
      rejoined.push_back(v);
    }
  }
  for (const sim::NodeId v : rejoined) {
    rebuild_node(v);
  }
  // Due refreshes for alive nodes (dead nodes' tables stay frozen).
  const int d = space_.bits();
  for (std::uint64_t v = 0; v < n; ++v) {
    if (!alive_[v]) {
      continue;
    }
    for (int level = 1; level <= d; ++level) {
      const std::uint64_t slot = v * static_cast<std::uint64_t>(d) +
                                 static_cast<std::uint64_t>(level - 1);
      if (round_ - refreshed_at_[slot] >= params_.refresh_interval) {
        refresh_entry(v, level);
      }
    }
  }
}

void ChurnSimulator::run(int rounds) {
  DHT_CHECK(rounds >= 0, "round count must be >= 0");
  for (int i = 0; i < rounds; ++i) {
    step();
  }
}

double ChurnSimulator::alive_fraction() const noexcept {
  return static_cast<double>(alive_count_) /
         static_cast<double>(space_.size());
}

bool ChurnSimulator::route(sim::NodeId source, sim::NodeId target) const {
  const int d = space_.bits();
  sim::NodeId current = source;
  std::uint64_t guard = space_.size();
  while (current != target) {
    if (guard-- == 0) {
      DHT_CHECK(false, "churn route exceeded N hops: protocol bug");
    }
    sim::NodeId diff = sim::xor_distance(current, target);
    sim::NodeId next = current;
    while (diff != 0) {
      const int level = d - std::bit_width(diff) + 1;
      const sim::NodeId candidate =
          entries_[current * static_cast<std::uint64_t>(d) +
                   static_cast<std::uint64_t>(level - 1)];
      // Staleness only affects liveness, not progress: any member of the
      // (prefix, flipped-bit) class resolves this level and is strictly
      // closer in XOR distance, so an alive entry is always a greedy hop.
      if (alive_[candidate]) {
        next = candidate;
        break;
      }
      diff &= ~(sim::NodeId{1} << (d - level));
    }
    if (next == current) {
      return false;  // dropped
    }
    current = next;
  }
  return true;
}

math::Proportion ChurnSimulator::measure_routability(std::uint64_t pairs,
                                                     math::Rng& rng) {
  DHT_CHECK(alive_count_ >= 2, "need at least two alive nodes");
  math::Proportion result;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    sim::NodeId source = rng.uniform_below(space_.size());
    while (!alive_[source]) {
      source = rng.uniform_below(space_.size());
    }
    sim::NodeId target = rng.uniform_below(space_.size());
    while (!alive_[target] || target == source) {
      target = rng.uniform_below(space_.size());
    }
    result.record(route(source, target));
  }
  return result;
}

double ChurnSimulator::mean_entry_age() const {
  double total = 0.0;
  std::uint64_t counted = 0;
  const int d = space_.bits();
  for (std::uint64_t v = 0; v < space_.size(); ++v) {
    if (!alive_[v]) {
      continue;
    }
    for (int level = 0; level < d; ++level) {
      total += round_ -
               refreshed_at_[v * static_cast<std::uint64_t>(d) +
                             static_cast<std::uint64_t>(level)];
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace dht::churn
