#include "churn/churn.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "common/check.hpp"
#include "sim/flat_route.hpp"

namespace dht::churn {

namespace {

void check_params(const ChurnParams& params) {
  DHT_CHECK(params.death_per_round > 0.0 && params.death_per_round < 1.0,
            "death_per_round must be in (0, 1)");
  DHT_CHECK(params.rebirth_per_round > 0.0 && params.rebirth_per_round < 1.0,
            "rebirth_per_round must be in (0, 1)");
  DHT_CHECK(params.death_per_round + params.rebirth_per_round <= 1.0,
            "pd + pr must not exceed 1 (two-state chain mixing factor)");
  DHT_CHECK(params.refresh_interval >= 1, "refresh interval must be >= 1");
}

void check_session(const SessionModel& model) {
  if (model.kind == SessionKind::kPareto) {
    DHT_CHECK(model.pareto_alpha > 1.0,
              "pareto_alpha must be > 1 (the mean session must exist)");
  }
}

// Discrete shifted-Pareto (Lomax) survival S(a) = (1 + a/beta)^-alpha.
double lomax_survival(double alpha, double beta, double age) {
  return std::pow(1.0 + age / beta, -alpha);
}

// T(d) = sum_{a >= d} S(a): truncated sum plus the Euler-Maclaurin tail
// (integral + half endpoint), accurate to ~1e-10 relative at alpha > 1.
double lomax_tail_sum(double alpha, double beta, std::int64_t from) {
  constexpr std::int64_t kTerms = 1 << 16;
  double sum = 0.0;
  for (std::int64_t a = from; a < from + kTerms; ++a) {
    sum += lomax_survival(alpha, beta, static_cast<double>(a));
  }
  const auto edge = static_cast<double>(from + kTerms);
  const double tail_integral =
      beta / (alpha - 1.0) * std::pow(1.0 + edge / beta, 1.0 - alpha);
  return sum + tail_integral - 0.5 * lomax_survival(alpha, beta, edge);
}

// The scale beta at which the mean session E[L] = T(0) hits `target`;
// T(0)(beta) is continuous and strictly increasing from 1 to infinity, so
// bisection converges unconditionally.  Each bisection step sums a 2^16
// tail, so the result is memoized: shard worlds, benches, and the bridge
// functions all re-ask for the same handful of (alpha, mean) points.
double calibrate_lomax_beta(double alpha, double target_mean) {
  static std::mutex cache_mutex;
  static std::map<std::pair<double, double>, double> cache;
  const std::pair<double, double> key{alpha, target_mean};
  {
    const std::lock_guard<std::mutex> lock(cache_mutex);
    const auto hit = cache.find(key);
    if (hit != cache.end()) {
      return hit->second;
    }
  }
  double lo = 1e-9;
  double hi = 1.0;
  while (lomax_tail_sum(alpha, hi, 0) < target_mean) {
    hi *= 2.0;
    DHT_CHECK(hi < 1e18, "pareto scale calibration diverged");
  }
  for (int iter = 0; iter < 200 && hi - lo > 1e-12 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (lomax_tail_sum(alpha, mid, 0) < target_mean ? lo : hi) = mid;
  }
  const double beta = 0.5 * (lo + hi);
  const std::lock_guard<std::mutex> lock(cache_mutex);
  cache.emplace(key, beta);
  return beta;
}

}  // namespace

double availability(const ChurnParams& params) {
  check_params(params);
  return params.rebirth_per_round /
         (params.death_per_round + params.rebirth_per_round);
}

double dead_given_age(const ChurnParams& params, int age) {
  check_params(params);
  DHT_CHECK(age >= 0, "entry age must be >= 0");
  const double lambda =
      1.0 - params.death_per_round - params.rebirth_per_round;
  return (1.0 - availability(params)) *
         (1.0 - std::pow(lambda, static_cast<double>(age)));
}

double effective_q(const ChurnParams& params) {
  check_params(params);
  const double lambda =
      1.0 - params.death_per_round - params.rebirth_per_round;
  const double r = static_cast<double>(params.refresh_interval);
  // Average of dead_given_age over ages 0 .. R-1; the geometric partial sum
  // (1 - lambda^R)/(1 - lambda) degenerates to R when lambda == 1, which
  // check_params excludes (pd + pr > 0).
  const double mean_alive_term =
      (1.0 - std::pow(lambda, r)) / (r * (1.0 - lambda));
  return (1.0 - availability(params)) * (1.0 - mean_alive_term);
}

double departed_given_age(const ChurnParams& params, int age) {
  check_params(params);
  DHT_CHECK(age >= 0, "entry age must be >= 0");
  return 1.0 - std::pow(1.0 - params.death_per_round,
                        static_cast<double>(age));
}

double effective_q_no_return(const ChurnParams& params) {
  check_params(params);
  const double survive = 1.0 - params.death_per_round;
  const double r = static_cast<double>(params.refresh_interval);
  // Average of departed_given_age over ages 0 .. R-1 (geometric partial
  // sum; pd > 0 by check_params, so the denominator never degenerates).
  // Clamped at 0: R = 1 is exactly 0 in reals but can round to -eps.
  return std::max(0.0, 1.0 - (1.0 - std::pow(survive, r)) /
                           (r * params.death_per_round));
}

bool session_kind_from_name(std::string_view name, SessionKind& out) {
  if (name == "geometric") {
    out = SessionKind::kGeometric;
    return true;
  }
  if (name == "pareto") {
    out = SessionKind::kPareto;
    return true;
  }
  return false;
}

const char* to_string(SessionKind kind) noexcept {
  switch (kind) {
    case SessionKind::kGeometric:
      return "geometric";
    case SessionKind::kPareto:
      return "pareto";
  }
  return "?";
}

SessionProcess::SessionProcess(const ChurnParams& params,
                               const SessionModel& model)
    : params_(params), model_(model) {
  check_params(params);
  check_session(model);
  mean_session_ = 1.0 / params.death_per_round;
  if (model.kind == SessionKind::kGeometric) {
    return;  // memoryless: no tables, no extra rng draws, bit-compat
  }
  const double alpha = model.pareto_alpha;
  const double beta = calibrate_lomax_beta(alpha, mean_session_);
  // Hazard and stationary-age tables over a fixed horizon; the tail beyond
  // is clamped flat (a geometric tail at the horizon hazard), which at the
  // default shapes leaves O(1e-5) of survival mass mis-modeled -- far
  // below the statistical tolerances of every consumer.
  constexpr std::size_t kHorizon = std::size_t{1} << 16;
  hazard_.resize(kHorizon);
  stationary_cdf_.resize(kHorizon);
  hazard_[0] = 0.0;
  double cumulative = 0.0;
  for (std::size_t a = 1; a < kHorizon; ++a) {
    const double prev = lomax_survival(alpha, beta, static_cast<double>(a - 1));
    const double cur = lomax_survival(alpha, beta, static_cast<double>(a));
    hazard_[a] = 1.0 - cur / prev;
  }
  for (std::size_t a = 0; a < kHorizon; ++a) {
    cumulative += lomax_survival(alpha, beta, static_cast<double>(a));
    stationary_cdf_[a] = cumulative;
  }
  for (double& c : stationary_cdf_) {
    c /= cumulative;  // ages past the horizon lump into the last bin
  }
}

std::int64_t SessionProcess::sample_stationary_age(math::Rng& rng) const {
  if (model_.kind == SessionKind::kGeometric) {
    return 0;  // memoryless: age is irrelevant, generator untouched
  }
  const double u = rng.uniform01();
  const auto it =
      std::lower_bound(stationary_cdf_.begin(), stationary_cdf_.end(), u);
  return it == stationary_cdf_.end()
             ? static_cast<std::int64_t>(stationary_cdf_.size()) - 1
             : static_cast<std::int64_t>(it - stationary_cdf_.begin());
}

double departed_given_entry_age(const ChurnParams& params,
                                const SessionModel& model, int age) {
  check_params(params);
  check_session(model);
  DHT_CHECK(age >= 0, "entry age must be >= 0");
  if (model.kind == SessionKind::kGeometric) {
    return departed_given_age(params, age);
  }
  // A fresh entry points at a uniformly drawn PRESENT node, whose session
  // age A follows the stationary distribution pi(a) = S(a)/E[L]; the entry
  // is dead `age` rounds later iff the target departs within that window:
  //   sum_a pi(a) (1 - S(a+age)/S(a)) = 1 - T(age)/E[L],
  // with T(d) = sum_{a>=d} S(a) and E[L] = T(0).
  const double alpha = model.pareto_alpha;
  const double beta =
      calibrate_lomax_beta(alpha, 1.0 / params.death_per_round);
  const double mean = lomax_tail_sum(alpha, beta, 0);
  const double tail = lomax_tail_sum(alpha, beta, age);
  return std::min(1.0, std::max(0.0, 1.0 - tail / mean));
}

double effective_q_no_return(const ChurnParams& params,
                             const SessionModel& model) {
  check_params(params);
  check_session(model);
  if (model.kind == SessionKind::kGeometric) {
    return effective_q_no_return(params);
  }
  // Average of departed_given_entry_age over uniform entry ages 0..R-1:
  //   1 - (sum_d T(d)) / (R E[L]);  T(d+1) = T(d) - S(d) keeps it O(R).
  const double alpha = model.pareto_alpha;
  const double beta =
      calibrate_lomax_beta(alpha, 1.0 / params.death_per_round);
  const double mean = lomax_tail_sum(alpha, beta, 0);
  double tail = mean;  // T(0)
  double tail_total = 0.0;
  for (int age = 0; age < params.refresh_interval; ++age) {
    tail_total += tail;
    tail -= lomax_survival(alpha, beta, static_cast<double>(age));
  }
  const double r = static_cast<double>(params.refresh_interval);
  return std::min(1.0, std::max(0.0, 1.0 - tail_total / (r * mean)));
}

bool trajectory_geometry_from_name(std::string_view name,
                                   TrajectoryGeometry& out) {
  if (name == "xor") {
    out = TrajectoryGeometry::kXor;
    return true;
  }
  if (name == "tree") {
    out = TrajectoryGeometry::kTree;
    return true;
  }
  if (name == "ring") {
    out = TrajectoryGeometry::kRing;
    return true;
  }
  return false;
}

const char* to_string(TrajectoryGeometry geometry) noexcept {
  switch (geometry) {
    case TrajectoryGeometry::kXor:
      return "xor";
    case TrajectoryGeometry::kTree:
      return "tree";
    case TrajectoryGeometry::kRing:
      return "ring";
  }
  return "?";
}

ChurnWorld::ChurnWorld(TrajectoryGeometry geometry, const sim::IdSpace& space,
                       const ChurnParams& params, double repair_probability,
                       std::uint64_t max_hops, const math::Rng& rng)
    : geometry_(geometry),
      space_(space),
      params_(params),
      repair_probability_(repair_probability),
      max_hops_(max_hops == 0 ? space.size() : max_hops),
      lifecycle_rng_(rng.fork(1)),
      table_rng_(rng.fork(2)),
      measure_rng_(rng.fork(3)) {
  check_params(params);
  DHT_CHECK(repair_probability >= 0.0 && repair_probability <= 1.0,
            "repair probability must be in [0, 1]");
  const std::uint64_t n = space_.size();
  const int d = space_.bits();
  const double a = availability(params);
  alive_.resize(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    alive_[v] = lifecycle_rng_.bernoulli(a) ? 1 : 0;
    alive_count_ += alive_[v];
  }
  entries_.resize(n * static_cast<std::uint64_t>(d));
  refreshed_at_.resize(entries_.size());
  for (std::uint64_t v = 0; v < n; ++v) {
    for (int level = 1; level <= d; ++level) {
      refresh_entry(v, level);
      // Stagger initial phases so refreshes spread over the interval and
      // entry ages start uniform, matching the q_eff derivation.
      refreshed_at_[v * static_cast<std::uint64_t>(d) +
                    static_cast<std::uint64_t>(level - 1)] =
          -static_cast<std::int32_t>(
              table_rng_.uniform_below(
                  static_cast<std::uint64_t>(params_.refresh_interval)));
    }
  }
}

sim::NodeId ChurnWorld::class_member(sim::NodeId node, int level,
                                     std::uint64_t member) const {
  // The entry class of (node, level) has 2^{d-level} candidates:
  //   xor/tree  ids sharing node's first level-1 bits, bit level flipped
  //             (a contiguous block once the suffix is freed)
  //   ring      the dyadic finger interval node + [2^{d-level},
  //             2^{d-level+1}) on the ring
  // Any member resolves its level (xor/tree) or keeps the disjoint
  // decreasing-interval structure the greedy finger scan relies on (ring).
  const int d = space_.bits();
  if (geometry_ == TrajectoryGeometry::kRing) {
    const std::uint64_t lo = std::uint64_t{1} << (d - level);
    return (node + lo + member) & (space_.size() - 1);
  }
  const int suffix_bits = d - level;
  const sim::NodeId base = (sim::flip_level(node, level, d) >> suffix_bits)
                           << suffix_bits;
  return base + member;
}

void ChurnWorld::refresh_entry(sim::NodeId node, int level) {
  const int d = space_.bits();
  const std::uint64_t count = std::uint64_t{1} << (d - level);
  // Prefer an alive class member; keep a (dead) random member if the class
  // is dead (bounded rejection, then exact scan -- classes die only when
  // tiny).
  sim::NodeId chosen =
      class_member(node, level, table_rng_.uniform_below(count));
  if (!alive_[chosen]) {
    bool found = false;
    for (int attempt = 0; attempt < 32 && !found; ++attempt) {
      const sim::NodeId candidate =
          class_member(node, level, table_rng_.uniform_below(count));
      if (alive_[candidate]) {
        chosen = candidate;
        found = true;
      }
    }
    if (!found) {
      for (std::uint64_t member = 0; member < count && !found; ++member) {
        const sim::NodeId candidate = class_member(node, level, member);
        if (alive_[candidate]) {
          chosen = candidate;
          found = true;
        }
      }
    }
  }
  const std::uint64_t slot = node * static_cast<std::uint64_t>(d) +
                             static_cast<std::uint64_t>(level - 1);
  entries_[slot] = static_cast<std::uint32_t>(chosen);
  refreshed_at_[slot] = static_cast<std::int32_t>(round_);
}

void ChurnWorld::rebuild_node(sim::NodeId node) {
  for (int level = 1; level <= space_.bits(); ++level) {
    refresh_entry(node, level);
  }
}

void ChurnWorld::step() {
  ++round_;
  const std::uint64_t n = space_.size();
  // Lifecycle flips first (a rejoiner builds its table against the new
  // world state).  The sweep (flips + rejoiner rebuilds) and the
  // refresh/repair pass below are attributed separately when an observer
  // is attached -- pure timing, nothing feeds back into the rng streams.
  obs::PhaseTimer lifecycle_timer(profile_, obs::Phase::kLifecycle, trace_);
  std::vector<sim::NodeId> rejoined;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (alive_[v]) {
      if (lifecycle_rng_.bernoulli(params_.death_per_round)) {
        alive_[v] = 0;
        --alive_count_;
      }
    } else if (lifecycle_rng_.bernoulli(params_.rebirth_per_round)) {
      alive_[v] = 1;
      ++alive_count_;
      rejoined.push_back(v);
    }
  }
  for (const sim::NodeId v : rejoined) {
    rebuild_node(v);
  }
  lifecycle_timer.stop();
  obs::PhaseTimer refresh_timer(profile_, obs::Phase::kRefreshRepair, trace_);
  // Due refreshes for alive nodes (dead nodes' tables stay frozen), plus
  // the eager-repair channel: an entry pointing at a dead node is detected
  // and re-pointed with probability rho this round, independent of its
  // refresh phase -- rho = 0 is the pure lazy-refresh model, rho -> 1
  // approaches the fully repaired static regime.
  const int d = space_.bits();
  for (std::uint64_t v = 0; v < n; ++v) {
    if (!alive_[v]) {
      continue;
    }
    for (int level = 1; level <= d; ++level) {
      const std::uint64_t slot = v * static_cast<std::uint64_t>(d) +
                                 static_cast<std::uint64_t>(level - 1);
      if (round_ - refreshed_at_[slot] >= params_.refresh_interval) {
        refresh_entry(v, level);
      } else if (repair_probability_ > 0.0 && !alive_[entries_[slot]] &&
                 table_rng_.bernoulli(repair_probability_)) {
        refresh_entry(v, level);
      }
    }
  }
}

sim::RoutabilityEstimate ChurnWorld::measure(std::uint64_t pairs,
                                             math::Rng& rng) {
  obs::PhaseTimer route_timer(profile_, obs::Phase::kRoute, trace_);
  sim::RoutabilityEstimate estimate;
  if (alive_count_ < 2) {
    return estimate;
  }
  sim::flat::FlatCtx ctx;
  ctx.d = space_.bits();
  ctx.mask = space_.size() - 1;
  ctx.alive = alive_.data();
  ctx.table = entries_.data();
  ctx.max_hops = max_hops_;
  // Single geometry -> kernel dispatch, hoisted out of the pair loop; an
  // unhandled enumerator leaves `kernel` null and trips -Wswitch.
  sim::RouteResult (*kernel)(const sim::flat::FlatCtx&, sim::NodeId,
                             sim::NodeId) = nullptr;
  switch (geometry_) {
    case TrajectoryGeometry::kTree:
      ctx.kind = sim::flat::KernelKind::kTree;
      kernel = &sim::flat::route_tree;
      break;
    case TrajectoryGeometry::kRing:
      ctx.kind = sim::flat::KernelKind::kChordRandomized;
      kernel = &sim::flat::route_chord_randomized;
      break;
    case TrajectoryGeometry::kXor:
      ctx.kind = sim::flat::KernelKind::kXor;
      kernel = &sim::flat::route_xor;
      break;
  }
  DHT_CHECK(kernel != nullptr, "unsupported trajectory geometry");
  const std::uint64_t n = space_.size();
  for (std::uint64_t i = 0; i < pairs; ++i) {
    sim::NodeId source = rng.uniform_below(n);
    while (!alive_[source]) {
      source = rng.uniform_below(n);
    }
    sim::NodeId target = rng.uniform_below(n);
    while (!alive_[target] || target == source) {
      target = rng.uniform_below(n);
    }
    estimate.record(kernel(ctx, source, target));
  }
  return estimate;
}

sim::RoutabilityEstimate ChurnWorld::measure(std::uint64_t pairs) {
  return measure(pairs, measure_rng_);
}

double ChurnWorld::alive_fraction() const noexcept {
  return static_cast<double>(alive_count_) /
         static_cast<double>(space_.size());
}

double ChurnWorld::mean_entry_age() const {
  double total = 0.0;
  std::uint64_t counted = 0;
  const int d = space_.bits();
  for (std::uint64_t v = 0; v < space_.size(); ++v) {
    if (!alive_[v]) {
      continue;
    }
    for (int level = 0; level < d; ++level) {
      total += round_ -
               refreshed_at_[v * static_cast<std::uint64_t>(d) +
                             static_cast<std::uint64_t>(level)];
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

ChurnSimulator::ChurnSimulator(const sim::IdSpace& space,
                               const ChurnParams& params, math::Rng& rng)
    : world_(TrajectoryGeometry::kXor, space, params,
             /*repair_probability=*/0.0, /*max_hops=*/0, rng) {}

void ChurnSimulator::run(int rounds) {
  DHT_CHECK(rounds >= 0, "round count must be >= 0");
  for (int i = 0; i < rounds; ++i) {
    world_.step();
  }
}

math::Proportion ChurnSimulator::measure_routability(std::uint64_t pairs,
                                                     math::Rng& rng) {
  DHT_CHECK(world_.alive_count() >= 2, "need at least two alive nodes");
  return world_.measure(pairs, rng).routed;
}

}  // namespace dht::churn
