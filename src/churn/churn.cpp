#include "churn/churn.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "sim/flat_route.hpp"

namespace dht::churn {

namespace {

void check_params(const ChurnParams& params) {
  DHT_CHECK(params.death_per_round > 0.0 && params.death_per_round < 1.0,
            "death_per_round must be in (0, 1)");
  DHT_CHECK(params.rebirth_per_round > 0.0 && params.rebirth_per_round < 1.0,
            "rebirth_per_round must be in (0, 1)");
  DHT_CHECK(params.death_per_round + params.rebirth_per_round <= 1.0,
            "pd + pr must not exceed 1 (two-state chain mixing factor)");
  DHT_CHECK(params.refresh_interval >= 1, "refresh interval must be >= 1");
}

}  // namespace

double availability(const ChurnParams& params) {
  check_params(params);
  return params.rebirth_per_round /
         (params.death_per_round + params.rebirth_per_round);
}

double dead_given_age(const ChurnParams& params, int age) {
  check_params(params);
  DHT_CHECK(age >= 0, "entry age must be >= 0");
  const double lambda =
      1.0 - params.death_per_round - params.rebirth_per_round;
  return (1.0 - availability(params)) *
         (1.0 - std::pow(lambda, static_cast<double>(age)));
}

double effective_q(const ChurnParams& params) {
  check_params(params);
  const double lambda =
      1.0 - params.death_per_round - params.rebirth_per_round;
  const double r = static_cast<double>(params.refresh_interval);
  // Average of dead_given_age over ages 0 .. R-1; the geometric partial sum
  // (1 - lambda^R)/(1 - lambda) degenerates to R when lambda == 1, which
  // check_params excludes (pd + pr > 0).
  const double mean_alive_term =
      (1.0 - std::pow(lambda, r)) / (r * (1.0 - lambda));
  return (1.0 - availability(params)) * (1.0 - mean_alive_term);
}

double departed_given_age(const ChurnParams& params, int age) {
  check_params(params);
  DHT_CHECK(age >= 0, "entry age must be >= 0");
  return 1.0 - std::pow(1.0 - params.death_per_round,
                        static_cast<double>(age));
}

double effective_q_no_return(const ChurnParams& params) {
  check_params(params);
  const double survive = 1.0 - params.death_per_round;
  const double r = static_cast<double>(params.refresh_interval);
  // Average of departed_given_age over ages 0 .. R-1 (geometric partial
  // sum; pd > 0 by check_params, so the denominator never degenerates).
  // Clamped at 0: R = 1 is exactly 0 in reals but can round to -eps.
  return std::max(0.0, 1.0 - (1.0 - std::pow(survive, r)) /
                           (r * params.death_per_round));
}

bool trajectory_geometry_from_name(std::string_view name,
                                   TrajectoryGeometry& out) {
  if (name == "xor") {
    out = TrajectoryGeometry::kXor;
    return true;
  }
  if (name == "tree") {
    out = TrajectoryGeometry::kTree;
    return true;
  }
  if (name == "ring") {
    out = TrajectoryGeometry::kRing;
    return true;
  }
  return false;
}

const char* to_string(TrajectoryGeometry geometry) noexcept {
  switch (geometry) {
    case TrajectoryGeometry::kXor:
      return "xor";
    case TrajectoryGeometry::kTree:
      return "tree";
    case TrajectoryGeometry::kRing:
      return "ring";
  }
  return "?";
}

ChurnWorld::ChurnWorld(TrajectoryGeometry geometry, const sim::IdSpace& space,
                       const ChurnParams& params, double repair_probability,
                       std::uint64_t max_hops, const math::Rng& rng)
    : geometry_(geometry),
      space_(space),
      params_(params),
      repair_probability_(repair_probability),
      max_hops_(max_hops == 0 ? space.size() : max_hops),
      lifecycle_rng_(rng.fork(1)),
      table_rng_(rng.fork(2)),
      measure_rng_(rng.fork(3)) {
  check_params(params);
  DHT_CHECK(repair_probability >= 0.0 && repair_probability <= 1.0,
            "repair probability must be in [0, 1]");
  const std::uint64_t n = space_.size();
  const int d = space_.bits();
  const double a = availability(params);
  alive_.resize(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    alive_[v] = lifecycle_rng_.bernoulli(a) ? 1 : 0;
    alive_count_ += alive_[v];
  }
  entries_.resize(n * static_cast<std::uint64_t>(d));
  refreshed_at_.resize(entries_.size());
  for (std::uint64_t v = 0; v < n; ++v) {
    for (int level = 1; level <= d; ++level) {
      refresh_entry(v, level);
      // Stagger initial phases so refreshes spread over the interval and
      // entry ages start uniform, matching the q_eff derivation.
      refreshed_at_[v * static_cast<std::uint64_t>(d) +
                    static_cast<std::uint64_t>(level - 1)] =
          -static_cast<std::int32_t>(
              table_rng_.uniform_below(
                  static_cast<std::uint64_t>(params_.refresh_interval)));
    }
  }
}

sim::NodeId ChurnWorld::class_member(sim::NodeId node, int level,
                                     std::uint64_t member) const {
  // The entry class of (node, level) has 2^{d-level} candidates:
  //   xor/tree  ids sharing node's first level-1 bits, bit level flipped
  //             (a contiguous block once the suffix is freed)
  //   ring      the dyadic finger interval node + [2^{d-level},
  //             2^{d-level+1}) on the ring
  // Any member resolves its level (xor/tree) or keeps the disjoint
  // decreasing-interval structure the greedy finger scan relies on (ring).
  const int d = space_.bits();
  if (geometry_ == TrajectoryGeometry::kRing) {
    const std::uint64_t lo = std::uint64_t{1} << (d - level);
    return (node + lo + member) & (space_.size() - 1);
  }
  const int suffix_bits = d - level;
  const sim::NodeId base = (sim::flip_level(node, level, d) >> suffix_bits)
                           << suffix_bits;
  return base + member;
}

void ChurnWorld::refresh_entry(sim::NodeId node, int level) {
  const int d = space_.bits();
  const std::uint64_t count = std::uint64_t{1} << (d - level);
  // Prefer an alive class member; keep a (dead) random member if the class
  // is dead (bounded rejection, then exact scan -- classes die only when
  // tiny).
  sim::NodeId chosen =
      class_member(node, level, table_rng_.uniform_below(count));
  if (!alive_[chosen]) {
    bool found = false;
    for (int attempt = 0; attempt < 32 && !found; ++attempt) {
      const sim::NodeId candidate =
          class_member(node, level, table_rng_.uniform_below(count));
      if (alive_[candidate]) {
        chosen = candidate;
        found = true;
      }
    }
    if (!found) {
      for (std::uint64_t member = 0; member < count && !found; ++member) {
        const sim::NodeId candidate = class_member(node, level, member);
        if (alive_[candidate]) {
          chosen = candidate;
          found = true;
        }
      }
    }
  }
  const std::uint64_t slot = node * static_cast<std::uint64_t>(d) +
                             static_cast<std::uint64_t>(level - 1);
  entries_[slot] = static_cast<std::uint32_t>(chosen);
  refreshed_at_[slot] = static_cast<std::int32_t>(round_);
}

void ChurnWorld::rebuild_node(sim::NodeId node) {
  for (int level = 1; level <= space_.bits(); ++level) {
    refresh_entry(node, level);
  }
}

void ChurnWorld::step() {
  ++round_;
  const std::uint64_t n = space_.size();
  // Lifecycle flips first (a rejoiner builds its table against the new
  // world state).
  std::vector<sim::NodeId> rejoined;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (alive_[v]) {
      if (lifecycle_rng_.bernoulli(params_.death_per_round)) {
        alive_[v] = 0;
        --alive_count_;
      }
    } else if (lifecycle_rng_.bernoulli(params_.rebirth_per_round)) {
      alive_[v] = 1;
      ++alive_count_;
      rejoined.push_back(v);
    }
  }
  for (const sim::NodeId v : rejoined) {
    rebuild_node(v);
  }
  // Due refreshes for alive nodes (dead nodes' tables stay frozen), plus
  // the eager-repair channel: an entry pointing at a dead node is detected
  // and re-pointed with probability rho this round, independent of its
  // refresh phase -- rho = 0 is the pure lazy-refresh model, rho -> 1
  // approaches the fully repaired static regime.
  const int d = space_.bits();
  for (std::uint64_t v = 0; v < n; ++v) {
    if (!alive_[v]) {
      continue;
    }
    for (int level = 1; level <= d; ++level) {
      const std::uint64_t slot = v * static_cast<std::uint64_t>(d) +
                                 static_cast<std::uint64_t>(level - 1);
      if (round_ - refreshed_at_[slot] >= params_.refresh_interval) {
        refresh_entry(v, level);
      } else if (repair_probability_ > 0.0 && !alive_[entries_[slot]] &&
                 table_rng_.bernoulli(repair_probability_)) {
        refresh_entry(v, level);
      }
    }
  }
}

sim::RoutabilityEstimate ChurnWorld::measure(std::uint64_t pairs,
                                             math::Rng& rng) {
  sim::RoutabilityEstimate estimate;
  if (alive_count_ < 2) {
    return estimate;
  }
  sim::flat::FlatCtx ctx;
  ctx.d = space_.bits();
  ctx.mask = space_.size() - 1;
  ctx.alive = alive_.data();
  ctx.table = entries_.data();
  ctx.max_hops = max_hops_;
  // Single geometry -> kernel dispatch, hoisted out of the pair loop; an
  // unhandled enumerator leaves `kernel` null and trips -Wswitch.
  sim::RouteResult (*kernel)(const sim::flat::FlatCtx&, sim::NodeId,
                             sim::NodeId) = nullptr;
  switch (geometry_) {
    case TrajectoryGeometry::kTree:
      ctx.kind = sim::flat::KernelKind::kTree;
      kernel = &sim::flat::route_tree;
      break;
    case TrajectoryGeometry::kRing:
      ctx.kind = sim::flat::KernelKind::kChordRandomized;
      kernel = &sim::flat::route_chord_randomized;
      break;
    case TrajectoryGeometry::kXor:
      ctx.kind = sim::flat::KernelKind::kXor;
      kernel = &sim::flat::route_xor;
      break;
  }
  DHT_CHECK(kernel != nullptr, "unsupported trajectory geometry");
  const std::uint64_t n = space_.size();
  for (std::uint64_t i = 0; i < pairs; ++i) {
    sim::NodeId source = rng.uniform_below(n);
    while (!alive_[source]) {
      source = rng.uniform_below(n);
    }
    sim::NodeId target = rng.uniform_below(n);
    while (!alive_[target] || target == source) {
      target = rng.uniform_below(n);
    }
    estimate.record(kernel(ctx, source, target));
  }
  return estimate;
}

sim::RoutabilityEstimate ChurnWorld::measure(std::uint64_t pairs) {
  return measure(pairs, measure_rng_);
}

double ChurnWorld::alive_fraction() const noexcept {
  return static_cast<double>(alive_count_) /
         static_cast<double>(space_.size());
}

double ChurnWorld::mean_entry_age() const {
  double total = 0.0;
  std::uint64_t counted = 0;
  const int d = space_.bits();
  for (std::uint64_t v = 0; v < space_.size(); ++v) {
    if (!alive_[v]) {
      continue;
    }
    for (int level = 0; level < d; ++level) {
      total += round_ -
               refreshed_at_[v * static_cast<std::uint64_t>(d) +
                             static_cast<std::uint64_t>(level)];
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

ChurnSimulator::ChurnSimulator(const sim::IdSpace& space,
                               const ChurnParams& params, math::Rng& rng)
    : world_(TrajectoryGeometry::kXor, space, params,
             /*repair_probability=*/0.0, /*max_hops=*/0, rng) {}

void ChurnSimulator::run(int rounds) {
  DHT_CHECK(rounds >= 0, "round count must be >= 0");
  for (int i = 0; i < rounds; ++i) {
    world_.step();
  }
}

math::Proportion ChurnSimulator::measure_routability(std::uint64_t pairs,
                                                     math::Rng& rng) {
  DHT_CHECK(world_.alive_count() >= 2, "need at least two alive nodes");
  return world_.measure(pairs, rng).routed;
}

}  // namespace dht::churn
