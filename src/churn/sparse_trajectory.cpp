#include "churn/sparse_trajectory.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "sim/shard_pool.hpp"

namespace dht::churn {

namespace {

// Flattened routing view over a world's slot state: identifiers (stale for
// departed slots), the presence mask, the row-major table, and the
// successor lists.  Kernels compare identifiers but step between slots --
// the sparse/flat_sparse.hpp pattern with mutable membership underneath.
struct ChurnKernelCtx {
  const std::uint64_t* ids = nullptr;
  const std::uint8_t* present = nullptr;
  const std::uint32_t* generations = nullptr;
  const NodeSlot* table = nullptr;
  const std::uint32_t* table_gen = nullptr;
  const NodeSlot* successors = nullptr;
  const std::uint32_t* successors_gen = nullptr;
  int row_width = 0;
  int bucket_k = 1;  // kademlia contacts per bucket (row_width = d * k)
  int s = 0;
  std::uint64_t key_mask = 0;
};

// An entry is routable only while its target slot is present under the
// generation the entry was installed against.
inline bool ctx_entry_valid(const ChurnKernelCtx& c, NodeSlot entry,
                            std::uint32_t generation) {
  return entry != kNoSlot && c.present[entry] != 0 &&
         c.generations[entry] == generation;
}

// Chord / Symphony: greedy clockwise without overshoot over the table row
// plus the successor list -- the list entries are ordinary candidate edges,
// so they both repair deep progress (a dead finger's gap) and guarantee the
// last hops.  Entries are read through the *current* identifier of the slot
// they point at: a departed entry reads as dead via the presence mask, a
// recycled entry behaves as a re-pointed edge.
inline NodeSlot step_clockwise(const ChurnKernelCtx& c, NodeSlot cur,
                               std::uint64_t target_id) {
  const std::uint64_t cur_id = c.ids[cur];
  const std::uint64_t distance = (target_id - cur_id) & c.key_mask;
  std::uint64_t best_progress = 0;
  NodeSlot best = kNoSlot;
  const auto consider = [&](NodeSlot link, std::uint32_t generation) {
    if (link == kNoSlot || link == cur) {
      return;
    }
    const std::uint64_t progress = (c.ids[link] - cur_id) & c.key_mask;
    if (progress > distance || progress <= best_progress) {
      return;  // overshoots, or no better than the current best
    }
    if (c.present[link] != 0 && c.generations[link] == generation) {
      best_progress = progress;
      best = link;
    }
  };
  const std::uint64_t row_base =
      cur * static_cast<std::uint64_t>(c.row_width);
  for (int j = 0; j < c.row_width; ++j) {
    consider(c.table[row_base + static_cast<std::uint64_t>(j)],
             c.table_gen[row_base + static_cast<std::uint64_t>(j)]);
  }
  const std::uint64_t succ_base = cur * static_cast<std::uint64_t>(c.s);
  for (int t = 0; t < c.s; ++t) {
    consider(c.successors[succ_base + static_cast<std::uint64_t>(t)],
             c.successors_gen[succ_base + static_cast<std::uint64_t>(t)]);
  }
  return best;
}

// Kademlia: walk the differing levels highest order first; within a
// bucket, probe the k cells head first (the longest-lived contacts --
// Kademlia's LRU preference, which heavy-tailed sessions reward); the
// first present contact strictly closer in XOR distance wins.  The
// successor list is the sibling-list fallback: its entries are admissible
// whenever they are strictly closer, which covers the endgame where the
// deep buckets have decayed.  bucket_k = 1 reads exactly the pre-k cells.
inline NodeSlot step_xor(const ChurnKernelCtx& c, NodeSlot cur,
                         std::uint64_t target_id) {
  const std::uint64_t cur_distance = c.ids[cur] ^ target_id;
  const std::uint64_t row_base =
      cur * static_cast<std::uint64_t>(c.row_width);
  const int d = c.row_width / c.bucket_k;
  std::uint64_t diff = cur_distance;
  while (diff != 0) {
    const int bw = std::bit_width(diff);
    const std::uint64_t bucket_base =
        row_base +
        static_cast<std::uint64_t>(d - bw) *
            static_cast<std::uint64_t>(c.bucket_k);  // bucket d - bw + 1
    for (int cell = 0; cell < c.bucket_k; ++cell) {
      const std::uint64_t j = bucket_base + static_cast<std::uint64_t>(cell);
      const NodeSlot entry = c.table[j];
      if (ctx_entry_valid(c, entry, c.table_gen[j]) &&
          (c.ids[entry] ^ target_id) < cur_distance) {
        return entry;
      }
    }
    diff &= ~(std::uint64_t{1} << (bw - 1));
  }
  const std::uint64_t succ_base = cur * static_cast<std::uint64_t>(c.s);
  for (int t = 0; t < c.s; ++t) {
    const std::uint64_t j = succ_base + static_cast<std::uint64_t>(t);
    const NodeSlot e = c.successors[j];
    if (e != cur && ctx_entry_valid(c, e, c.successors_gen[j]) &&
        (c.ids[e] ^ target_id) < cur_distance) {
      return e;
    }
  }
  return kNoSlot;
}

void check_config(const SparseChurnConfig& config,
                  SparseChurnGeometry geometry) {
  DHT_CHECK(config.successors >= 0, "successor-list length must be >= 0");
  DHT_CHECK(config.bucket_k >= 1 && config.bucket_k <= 64,
            "kademlia bucket width must be in [1, 64]");
  DHT_CHECK(config.replicas >= 1 && config.replicas <= 64,
            "replication factor must be in [1, 64]");
  DHT_CHECK(std::isfinite(config.zipf_s) && config.zipf_s >= 0.0,
            "workload zipf skew must be finite and >= 0");
  DHT_CHECK(config.objects <= (std::uint64_t{1} << 26),
            "workload object count exceeds the 2^26 population cap");
  if (geometry == SparseChurnGeometry::kSymphony) {
    DHT_CHECK(config.shortcuts >= 1,
              "symphony requires at least one shortcut");
  }
}

// Fixed object->key hash key, shared with the static workload engine so a
// given object rank lands on the same key in both (placement is a property
// of the key space, not of any run's seed).
constexpr std::uint64_t kObjectKeySalt = 0xb10c9a3f0b173c75ULL;

}  // namespace

bool sparse_churn_geometry_from_name(std::string_view name,
                                     SparseChurnGeometry& out) {
  if (name == "ring") {
    out = SparseChurnGeometry::kChord;
    return true;
  }
  if (name == "xor") {
    out = SparseChurnGeometry::kKademlia;
    return true;
  }
  if (name == "symphony") {
    out = SparseChurnGeometry::kSymphony;
    return true;
  }
  return false;
}

const char* to_string(SparseChurnGeometry geometry) noexcept {
  switch (geometry) {
    case SparseChurnGeometry::kChord:
      return "ring";
    case SparseChurnGeometry::kKademlia:
      return "xor";
    case SparseChurnGeometry::kSymphony:
      return "symphony";
  }
  return "?";
}

std::uint64_t capacity_for_population(std::uint64_t population,
                                      const ChurnParams& params) {
  const double a = availability(params);
  auto capacity = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(population) / a));
  // Clamp into SparseMembership's supported roster range: a derived
  // capacity above the 2^26 per-slot-state cap would otherwise throw from
  // inside a sweep's shard pool, discarding every computed grid point.
  capacity = std::min(capacity, std::uint64_t{1} << 26);
  return capacity < 2 ? 2 : capacity;
}

SparseChurnWorld::SparseChurnWorld(SparseChurnGeometry geometry,
                                   const SparseChurnConfig& config,
                                   const ChurnParams& params,
                                   double repair_probability,
                                   std::uint64_t max_hops,
                                   const math::Rng& rng)
    : geometry_(geometry),
      config_(config),
      params_(params),
      repair_probability_(repair_probability),
      max_hops_(max_hops == 0 ? config.capacity : max_hops),
      row_width_(geometry == SparseChurnGeometry::kSymphony
                     ? config.shortcuts
                     : (geometry == SparseChurnGeometry::kKademlia
                            ? config.bits * config.bucket_k
                            : config.bits)),
      session_(params, config.session),
      lifecycle_rng_(rng.fork(1)),
      table_rng_(rng.fork(2)),
      measure_rng_(rng.fork(3)),
      id_rng_(rng.fork(4)),
      membership_(config.bits, config.capacity),
      object_keys_(kObjectKeySalt) {
  const double a = availability(params);  // validates the lifecycle rates
  DHT_CHECK(repair_probability >= 0.0 && repair_probability <= 1.0,
            "repair probability must be in [0, 1]");
  check_config(config, geometry);
  const std::uint64_t capacity = membership_.capacity();
  joined_at_.assign(capacity, 0);
  load_.assign(capacity, 0);
  if (workload_enabled()) {
    zipf_.emplace(object_count(), config_.zipf_s);
  }
  // Stationary membership: each slot present w.p. a, like the dense world's
  // stationary liveness -- the dense-limit oracle depends on the two
  // lifecycle processes being the same slot-level chain.  (The Pareto
  // calibration pins the mean session to 1/pd, so `a` is the geometric
  // availability for every session model.)  Heavy-tailed sessions also
  // draw a stationary session age per initial member -- the age-dependent
  // hazard starts in steady state; geometric sessions are memoryless and
  // skip the draw, keeping the historical rng stream bit for bit.
  joiners_.clear();
  for (NodeSlot slot = 0; slot < capacity; ++slot) {
    if (lifecycle_rng_.bernoulli(a)) {
      joiners_.push_back(slot);
      if (!session_.geometric()) {
        joined_at_[slot] = -session_.sample_stationary_age(lifecycle_rng_);
      }
    }
  }
  membership_.join(joiners_, id_rng_);
  membership_.commit();
  total_joins_ += joiners_.size();
  table_.assign(capacity * static_cast<std::uint64_t>(row_width_), kNoSlot);
  table_gen_.assign(table_.size(), 0);
  refreshed_at_.assign(table_.size(), 0);
  successors_.assign(
      capacity * static_cast<std::uint64_t>(config_.successors), kNoSlot);
  successors_gen_.assign(successors_.size(), 0);
  successors_refreshed_at_.assign(capacity, 0);
  for (NodeSlot slot = 0; slot < capacity; ++slot) {
    if (membership_.present(slot)) {
      rebuild_node(slot);
    }
  }
  // Stagger refresh phases so entry ages start uniform over 0..R-1,
  // matching the q_eff derivation (and the dense world's construction).
  const auto interval =
      static_cast<std::uint64_t>(params_.refresh_interval);
  for (NodeSlot slot = 0; slot < capacity; ++slot) {
    if (!membership_.present(slot)) {
      continue;
    }
    for (int j = 0; j < row_width_; ++j) {
      refreshed_at_[slot * static_cast<std::uint64_t>(row_width_) +
                    static_cast<std::uint64_t>(j)] =
          -static_cast<std::int32_t>(table_rng_.uniform_below(interval));
    }
    if (config_.successors > 0) {
      successors_refreshed_at_[slot] =
          -static_cast<std::int32_t>(table_rng_.uniform_below(interval));
    }
  }
}

bool SparseChurnWorld::entry_valid(NodeSlot entry,
                                   std::uint32_t generation) const {
  return entry != kNoSlot && membership_.present(entry) &&
         membership_.generation(entry) == generation;
}

void SparseChurnWorld::refresh_entry(NodeSlot slot, int index) {
  const std::uint64_t id = membership_.id_of(slot);
  const std::uint64_t mask = membership_.key_mask();
  const std::uint64_t offset =
      slot * static_cast<std::uint64_t>(row_width_) +
      static_cast<std::uint64_t>(index);
  NodeSlot chosen = kNoSlot;
  switch (geometry_) {
    case SparseChurnGeometry::kChord: {
      // Finger i = index+1 points at successor(id + 2^{d-i}).
      const std::uint64_t key =
          (id + (std::uint64_t{1} << (config_.bits - index - 1))) & mask;
      chosen = membership_.successor_of_key(key);
      break;
    }
    case SparseChurnGeometry::kKademlia: {
      // Cell `index % k` of bucket `index / k + 1`; every cell re-draws a
      // uniform bucket member, so k = 1 consumes the pre-k stream exactly.
      const auto [lo, hi] = kademlia_bucket_range(
          id, index / config_.bucket_k + 1, config_.bits);
      const auto [first, last] = membership_.order_range(lo, hi);
      if (first < last) {
        chosen = membership_.slot_at(
            first + table_rng_.uniform_below(last - first));
      }
      break;
    }
    case SparseChurnGeometry::kSymphony: {
      // Harmonic key-distance draw, linked to the key's current owner;
      // re-draw when it degenerates to the node itself.  This is the
      // shortcut re-draw semantics the dense trajectory engine lacks: the
      // sparse world re-draws the *key* and resolves it against the
      // current membership.
      const std::uint64_t keys = membership_.key_space_size();
      const double log_range =
          std::log(static_cast<double>(keys - 1));
      NodeSlot link = slot;
      for (int attempt = 0; attempt < 64 && link == slot; ++attempt) {
        const double u = table_rng_.uniform01();
        std::uint64_t key_offset =
            static_cast<std::uint64_t>(std::exp(u * log_range));
        key_offset = key_offset < 1 ? 1 : key_offset;
        key_offset = key_offset > keys - 1 ? keys - 1 : key_offset;
        link = membership_.successor_of_key((id + key_offset) & mask);
      }
      chosen = link;  // may stay self in degenerate tiny populations
      break;
    }
  }
  table_[offset] = chosen;
  table_gen_[offset] =
      chosen == kNoSlot ? 0 : membership_.generation(chosen);
  refreshed_at_[offset] = static_cast<std::int32_t>(round_);
}

void SparseChurnWorld::rebuild_tables(NodeSlot slot) {
  for (int j = 0; j < row_width_; ++j) {
    refresh_entry(slot, j);
  }
}

void SparseChurnWorld::rebuild_successors(NodeSlot slot,
                                          std::uint64_t from_position) {
  const int s = config_.successors;
  const std::uint64_t base = slot * static_cast<std::uint64_t>(s);
  for (int t = 0; t < s; ++t) {
    const NodeSlot succ = membership_.ring_successor(
        from_position, static_cast<std::uint64_t>(t));
    successors_[base + static_cast<std::uint64_t>(t)] = succ;
    successors_gen_[base + static_cast<std::uint64_t>(t)] =
        membership_.generation(succ);
  }
  successors_refreshed_at_[slot] = static_cast<std::int32_t>(round_);
}

void SparseChurnWorld::rebuild_node(NodeSlot slot) {
  rebuild_tables(slot);
  if (config_.successors > 0) {
    const std::uint64_t own =
        membership_.successor_position(membership_.id_of(slot));
    rebuild_successors(slot, own + 1);  // first node strictly clockwise
  }
}

void SparseChurnWorld::announce_join(NodeSlot slot) {
  const std::uint64_t population = membership_.order_size();
  if (population < 2) {
    return;
  }
  const std::uint64_t own =
      membership_.successor_position(membership_.id_of(slot));
  // Chord's notify: the clockwise predecessor learns its new successor
  // immediately (its rebuilt list starts at the joiner).  This is what
  // keeps arrival working under membership turnover -- without it a
  // newcomer is unreachable until its neighborhood refreshes.
  if (config_.successors > 0) {
    const NodeSlot predecessor =
        membership_.slot_at((own + population - 1) % population);
    if (predecessor != slot) {
      rebuild_successors(predecessor, own);
    }
  }
  // Kademlia's join lookup: the joiner installs itself into the matching
  // bucket of its closest peers (deepest shared-prefix levels first),
  // filling entries that are empty or point at departed/recycled nodes.
  // Bucket membership is symmetric -- u in v's level-l bucket iff v in
  // u's -- so the peers are exactly the members of the joiner's own deep
  // buckets.
  if (geometry_ == SparseChurnGeometry::kKademlia && config_.announce > 0) {
    int budget = config_.announce;
    const int k = config_.bucket_k;
    const std::uint64_t id = membership_.id_of(slot);
    const std::uint32_t generation = membership_.generation(slot);
    for (int level = config_.bits; level >= 1 && budget > 0; --level) {
      const auto [lo, hi] = kademlia_bucket_range(id, level, config_.bits);
      const auto [first, last] = membership_.order_range(lo, hi);
      for (std::uint64_t pos = first; pos < last && budget > 0; ++pos) {
        const NodeSlot peer = membership_.slot_at(pos);
        // The joiner enters the peer's bucket at its first free cell --
        // empty or observed-stale -- i.e. at the tail of the live entries,
        // the newcomer end of the LRU order.  A bucket full of valid
        // contacts ignores the announcement (classic Kademlia keeps its
        // long-lived members).
        const std::uint64_t bucket_base =
            peer * static_cast<std::uint64_t>(row_width_) +
            static_cast<std::uint64_t>(level - 1) *
                static_cast<std::uint64_t>(k);
        for (int cell = 0; cell < k; ++cell) {
          const std::uint64_t offset =
              bucket_base + static_cast<std::uint64_t>(cell);
          if (!entry_valid(table_[offset], table_gen_[offset])) {
            table_[offset] = slot;
            table_gen_[offset] = generation;
            refreshed_at_[offset] = static_cast<std::int32_t>(round_);
            break;
          }
        }
        --budget;
      }
    }
  }
}

void SparseChurnWorld::maintain_successors(NodeSlot slot) {
  const int s = config_.successors;
  if (s == 0) {
    return;
  }
  const std::uint64_t base = slot * static_cast<std::uint64_t>(s);
  bool broken = false;
  NodeSlot first_alive = kNoSlot;
  for (int t = 0; t < s; ++t) {
    const NodeSlot e = successors_[base + static_cast<std::uint64_t>(t)];
    if (e == slot ||
        !entry_valid(e, successors_gen_[base + static_cast<std::uint64_t>(t)])) {
      broken = true;
    } else if (first_alive == kNoSlot) {
      first_alive = e;
    }
  }
  if (broken) {
    if (first_alive != kNoSlot) {
      // Consult the list: the first alive entry seeds the repaired list
      // (its current clockwise chain).  Joiners between this node and that
      // entry are picked up by the next scheduled rebuild -- the
      // stabilization lag of real successor lists.
      rebuild_successors(
          slot,
          membership_.successor_position(membership_.id_of(first_alive)));
    } else {
      // Every sequential neighbor is gone: fall back to a full rebuild
      // (tables included), the re-join-like recovery path.
      rebuild_node(slot);
    }
  } else if (round_ - successors_refreshed_at_[slot] >=
             params_.refresh_interval) {
    const std::uint64_t own =
        membership_.successor_position(membership_.id_of(slot));
    rebuild_successors(slot, own + 1);
  }
}

// Entry maintenance for the single-contact row geometries (Chord fingers,
// Symphony shortcuts): due refreshes plus the eager-repair channel (an
// entry observed dead is re-pointed with probability rho between scheduled
// refreshes).  Fresh joiner rows are stamped with the current round, so
// they fall through every branch.
void SparseChurnWorld::maintain_entries(NodeSlot slot) {
  if (geometry_ == SparseChurnGeometry::kKademlia) {
    maintain_kademlia_buckets(slot);
    return;
  }
  for (int j = 0; j < row_width_; ++j) {
    const std::uint64_t offset =
        slot * static_cast<std::uint64_t>(row_width_) +
        static_cast<std::uint64_t>(j);
    if (round_ - refreshed_at_[offset] >= params_.refresh_interval) {
      refresh_entry(slot, j);
    } else if (repair_probability_ > 0.0) {
      // Observed-dead covers departed targets AND recycled slots (the
      // node at that address is a different one now) -- both are
      // generation mismatches.
      const NodeSlot entry = table_[offset];
      if (entry != kNoSlot && !entry_valid(entry, table_gen_[offset]) &&
          table_rng_.bernoulli(repair_probability_)) {
        refresh_entry(slot, j);
      }
    }
  }
}

// k-bucket maintenance (the Roos et al. LRU discipline): a cell due for
// refresh is re-drawn in place (the scheduled touch); a cell observed dead
// by the rho channel is EVICTED -- the bucket compacts toward the head,
// preserving insertion order, and the freed tail cell is refreshed (the
// replacement enters at the newcomer end).  With k = 1 the compaction is
// empty and both branches collapse onto the single-contact sequence, so
// the pre-k rng stream and tables are reproduced bit for bit.
void SparseChurnWorld::maintain_kademlia_buckets(NodeSlot slot) {
  const int k = config_.bucket_k;
  const std::uint64_t row_base =
      slot * static_cast<std::uint64_t>(row_width_);
  for (int b = 0; b < config_.bits; ++b) {
    const std::uint64_t bucket_base =
        row_base + static_cast<std::uint64_t>(b) * static_cast<std::uint64_t>(k);
    for (int cell = 0; cell < k; ++cell) {
      const std::uint64_t offset =
          bucket_base + static_cast<std::uint64_t>(cell);
      if (round_ - refreshed_at_[offset] >= params_.refresh_interval) {
        refresh_entry(slot, b * k + cell);
      } else if (repair_probability_ > 0.0) {
        const NodeSlot entry = table_[offset];
        if (entry != kNoSlot && !entry_valid(entry, table_gen_[offset]) &&
            table_rng_.bernoulli(repair_probability_)) {
          for (int t = cell; t + 1 < k; ++t) {
            const std::uint64_t dst =
                bucket_base + static_cast<std::uint64_t>(t);
            table_[dst] = table_[dst + 1];
            table_gen_[dst] = table_gen_[dst + 1];
            refreshed_at_[dst] = refreshed_at_[dst + 1];
          }
          refresh_entry(slot, b * k + (k - 1));
          // The shifted-in cell keeps its own stamps and gets its next
          // look next round -- each cell is examined once per round.
        }
      }
    }
  }
}

// Integrates the joiner cohort collected since the last call: fresh-id
// draw, order-index commit, bootstrap against the committed membership
// (which already includes the whole cohort, mirroring the dense rejoiner
// rebuilds), then announcement (predecessor notify / deep-bucket inserts).
// `commit_always` forces the order-index rebuild even with no joiners --
// the round-boundary contract (departed entries dropped every round); the
// in-flight path skips the O(N) rebuild at joinerless lookup boundaries
// (mid-round the order index may briefly carry departed entries, which
// read as dead through the presence mask like any stale state).
void SparseChurnWorld::integrate_joiners(bool commit_always) {
  if (joiners_.empty()) {
    if (commit_always) {
      membership_.commit();
    }
    return;
  }
  membership_.join(joiners_, id_rng_);
  membership_.commit();
  total_joins_ += joiners_.size();
  for (const NodeSlot slot : joiners_) {
    joined_at_[slot] = round_;
  }
  for (const NodeSlot slot : joiners_) {
    rebuild_node(slot);
  }
  for (const NodeSlot slot : joiners_) {
    announce_join(slot);
  }
  joiners_.clear();
}

// One slot of the fused in-flight sweep: the lifecycle flip, then -- for a
// surviving member -- its round maintenance in place.  Unlike step(),
// where every flip happens before any repair, the world here is genuinely
// un-frozen: a slot's maintenance sees whatever the sweep has already done
// this round.  The lifecycle stream still draws exactly one Bernoulli per
// slot in slot order, so it stays the same sequence as step()'s.
void SparseChurnWorld::lifecycle_and_maintain_slot(NodeSlot slot) {
  if (membership_.present(slot)) {
    if (lifecycle_rng_.bernoulli(
            session_.hazard(static_cast<std::int64_t>(round_) -
                            joined_at_[slot]))) {
      membership_.leave(slot);
      ++total_leaves_;
      return;
    }
    if (membership_.order_size() == 0) {
      return;  // order index momentarily empty: nothing to repair against
    }
    maintain_successors(slot);
    maintain_entries(slot);
  } else if (lifecycle_rng_.bernoulli(params_.rebirth_per_round)) {
    joiners_.push_back(slot);
  }
}

void SparseChurnWorld::advance_sweep(std::uint64_t& cursor,
                                     std::uint64_t slots) {
  const std::uint64_t capacity = membership_.capacity();
  const std::uint64_t end =
      slots > capacity - cursor ? capacity : cursor + slots;
  for (; cursor < end; ++cursor) {
    lifecycle_and_maintain_slot(static_cast<NodeSlot>(cursor));
  }
}

void SparseChurnWorld::step() {
  ++round_;
  const std::uint64_t capacity = membership_.capacity();
  // Lifecycle flips first: a slot's decision reads its pre-round state
  // (leave() flips presence in place, but each slot is visited once; join
  // assignment is deferred to the batch below).  The departure draw runs
  // through the session model's age-dependent hazard; geometric sessions
  // have the constant hazard pd, reproducing the historical stream.
  joiners_.clear();
  for (NodeSlot slot = 0; slot < capacity; ++slot) {
    if (membership_.present(slot)) {
      if (lifecycle_rng_.bernoulli(
              session_.hazard(static_cast<std::int64_t>(round_) -
                              joined_at_[slot]))) {
        membership_.leave(slot);
        ++total_leaves_;
      }
    } else if (lifecycle_rng_.bernoulli(params_.rebirth_per_round)) {
      joiners_.push_back(slot);
    }
  }
  integrate_joiners(/*commit_always=*/true);
  // Maintenance for present nodes: successor-list stabilization, due
  // refreshes, and eager repair.
  for (NodeSlot slot = 0; slot < capacity; ++slot) {
    if (!membership_.present(slot)) {
      continue;
    }
    maintain_successors(slot);
    maintain_entries(slot);
  }
}

sparse::SparseEstimate SparseChurnWorld::measure(std::uint64_t pairs,
                                                 math::Rng& rng) {
  sparse::SparseEstimate estimate;
  if (membership_.population() < 2) {
    return estimate;  // nothing to sample: the empty-estimate contract
  }
  ChurnKernelCtx ctx;
  ctx.ids = membership_.id_data();
  ctx.present = membership_.present_data();
  ctx.generations = membership_.generation_data();
  ctx.table = table_.data();
  ctx.table_gen = table_gen_.data();
  ctx.successors = successors_.data();
  ctx.successors_gen = successors_gen_.data();
  ctx.row_width = row_width_;
  ctx.bucket_k = config_.bucket_k;
  ctx.s = config_.successors;
  ctx.key_mask = membership_.key_mask();
  NodeSlot (*step)(const ChurnKernelCtx&, NodeSlot, std::uint64_t) =
      geometry_ == SparseChurnGeometry::kKademlia ? &step_xor
                                                  : &step_clockwise;
  const std::uint64_t capacity = membership_.capacity();
  // Routes toward `target`; outcomes are recorded into `rec` when given
  // (attempt 0 of a GET / the historical uniform route), and every forward
  // bumps the holding slot's load counter -- rng-free, so the measurement
  // stream is byte-for-byte the historical one.  Returns arrival.
  const auto route_to = [&](NodeSlot source, NodeSlot target,
                            sparse::SparseEstimate* rec) -> bool {
    const std::uint64_t target_id = membership_.id_of(target);
    NodeSlot cur = source;
    std::uint64_t hops = 0;
    for (;;) {
      if (cur == target) {
        if (rec != nullptr) {
          rec->record_arrival(hops);
        }
        return true;
      }
      if (hops >= max_hops_) {
        if (rec != nullptr) {
          rec->record_hop_limit();
        }
        return false;
      }
      ++load_[cur];
      const NodeSlot next = step(ctx, cur, target_id);
      if (next == kNoSlot) {
        if (rec != nullptr) {
          rec->record_drop();
        }
        return false;
      }
      cur = next;
      ++hops;
    }
  };
  if (!workload_enabled()) {
    for (std::uint64_t i = 0; i < pairs; ++i) {
      NodeSlot source = static_cast<NodeSlot>(rng.uniform_below(capacity));
      while (!membership_.present(source)) {
        source = static_cast<NodeSlot>(rng.uniform_below(capacity));
      }
      NodeSlot target = static_cast<NodeSlot>(rng.uniform_below(capacity));
      while (!membership_.present(target) || target == source) {
        target = static_cast<NodeSlot>(rng.uniform_below(capacity));
      }
      route_to(source, target, &estimate);
    }
    return estimate;
  }
  // Replicated GETs: the object's key places it on its successor (the
  // primary, attempt 0 -- what the routing estimate records) and the next
  // r - 1 clockwise present nodes hold the replicas, consulted only when
  // the primary attempt fails.  Sources colliding with the primary redraw
  // both draws, like the uniform path's target rejection.
  for (std::uint64_t i = 0; i < pairs; ++i) {
    NodeSlot source;
    NodeSlot primary;
    std::uint64_t position;
    for (;;) {
      source = static_cast<NodeSlot>(rng.uniform_below(capacity));
      while (!membership_.present(source)) {
        source = static_cast<NodeSlot>(rng.uniform_below(capacity));
      }
      const std::uint64_t object = zipf_->sample(rng);
      position = membership_.successor_position(object_keys_.at(object) &
                                                ctx.key_mask);
      primary = membership_.ring_successor(position, 0);
      if (primary != source) {
        break;
      }
    }
    ++estimate.gets;
    bool available = route_to(source, primary, &estimate);
    const auto attempts = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(config_.replicas),
        membership_.order_size()));
    for (int a = 1; a < attempts && !available; ++a) {
      const NodeSlot holder =
          membership_.ring_successor(position, static_cast<std::uint64_t>(a));
      if (!membership_.present(holder)) {
        continue;  // the replica departed with its holder
      }
      available = holder == source  // the source holds the replica itself
                      ? true
                      : route_to(source, holder, nullptr);
    }
    if (available) {
      ++estimate.gets_available;
    }
  }
  return estimate;
}

sparse::SparseEstimate SparseChurnWorld::measure(std::uint64_t pairs) {
  return measure(pairs, measure_rng_);
}

sparse::SparseEstimate SparseChurnWorld::measure_inflight(
    std::uint64_t pairs, std::uint64_t events_per_hop, math::Rng& rng) {
  ++round_;
  const std::uint64_t capacity = membership_.capacity();
  joiners_.clear();
  std::uint64_t cursor = 0;
  std::uint64_t eph = events_per_hop;
  if (eph == 0) {
    // Derive the rate from the pair budget: one full capacity sweep
    // spread over the round's expected hop count, `pairs` routes of
    // ~log2 N hops each.  Routes shorter than the estimate leave a sweep
    // remainder, flushed below -- the round always completes exactly one
    // lifecycle sweep either way.
    const std::uint64_t population =
        membership_.population() < 2 ? 2 : membership_.population();
    // max(1, ...): pairs == 0 still closes the round (the flush below runs
    // the whole sweep), it just samples nothing.
    const std::uint64_t hop_budget = std::max<std::uint64_t>(
        1, pairs * static_cast<std::uint64_t>(std::bit_width(population)));
    eph = (capacity + hop_budget - 1) / hop_budget;
    eph = eph == 0 ? 1 : eph;
  }
  sparse::SparseEstimate estimate;
  ChurnKernelCtx ctx;
  ctx.ids = membership_.id_data();
  ctx.present = membership_.present_data();
  ctx.generations = membership_.generation_data();
  ctx.table = table_.data();
  ctx.table_gen = table_gen_.data();
  ctx.successors = successors_.data();
  ctx.successors_gen = successors_gen_.data();
  ctx.row_width = row_width_;
  ctx.bucket_k = config_.bucket_k;
  ctx.s = config_.successors;
  ctx.key_mask = membership_.key_mask();
  NodeSlot (*step)(const ChurnKernelCtx&, NodeSlot, std::uint64_t) =
      geometry_ == SparseChurnGeometry::kKademlia ? &step_xor
                                                  : &step_clockwise;
  // In-flight route: the holder's departure drops the message (checked
  // before arrival -- a route "arriving" at a slot that just left gets no
  // reply), and the lifecycle sweep advances under every hop.  Forwards
  // bump the holding slot's load counter, rng-free as in measure().
  const auto route_to = [&](NodeSlot source, NodeSlot target,
                            sparse::SparseEstimate* rec) -> bool {
    const std::uint64_t target_id = membership_.id_of(target);
    NodeSlot cur = source;
    std::uint64_t hops = 0;
    for (;;) {
      if (!membership_.present(cur)) {
        // The node holding the message departed between hops -- the
        // mid-flight loss the round-synchronous mode cannot express.
        if (rec != nullptr) {
          rec->record_drop();
        }
        return false;
      }
      if (cur == target) {
        if (rec != nullptr) {
          rec->record_arrival(hops);
        }
        return true;
      }
      if (hops >= max_hops_) {
        if (rec != nullptr) {
          rec->record_hop_limit();
        }
        return false;
      }
      ++load_[cur];
      const NodeSlot next = step(ctx, cur, target_id);
      if (next == kNoSlot) {
        if (rec != nullptr) {
          rec->record_drop();
        }
        return false;
      }
      cur = next;
      ++hops;
      advance_sweep(cursor, eph);  // the world moves under the lookup
    }
  };
  const bool workload = workload_enabled();
  for (std::uint64_t i = 0; i < pairs; ++i) {
    // Joins become routable at lookup boundaries only: a node that
    // arrived mid-route has not finished bootstrapping until the overlay
    // absorbs it here (id draw, order-index commit, bootstrap, announce).
    // A replicated GET is one lookup transaction: all its attempts run
    // against the membership of its boundary.
    integrate_joiners(/*commit_always=*/false);
    if (membership_.population() < 2) {
      continue;  // nothing to sample this instant; the sweep still flushes
    }
    if (!workload) {
      NodeSlot source = static_cast<NodeSlot>(rng.uniform_below(capacity));
      while (!membership_.present(source)) {
        source = static_cast<NodeSlot>(rng.uniform_below(capacity));
      }
      NodeSlot target = static_cast<NodeSlot>(rng.uniform_below(capacity));
      while (!membership_.present(target) || target == source) {
        target = static_cast<NodeSlot>(rng.uniform_below(capacity));
      }
      route_to(source, target, &estimate);
      continue;
    }
    NodeSlot source;
    NodeSlot primary;
    std::uint64_t position;
    for (;;) {
      source = static_cast<NodeSlot>(rng.uniform_below(capacity));
      while (!membership_.present(source)) {
        source = static_cast<NodeSlot>(rng.uniform_below(capacity));
      }
      const std::uint64_t object = zipf_->sample(rng);
      position = membership_.successor_position(object_keys_.at(object) &
                                                ctx.key_mask);
      primary = membership_.ring_successor(position, 0);
      if (primary != source) {
        break;
      }
    }
    ++estimate.gets;
    bool available = route_to(source, primary, &estimate);
    const auto attempts = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(config_.replicas),
        membership_.order_size()));
    for (int a = 1; a < attempts && !available; ++a) {
      const NodeSlot holder =
          membership_.ring_successor(position, static_cast<std::uint64_t>(a));
      if (!membership_.present(holder)) {
        continue;  // the replica departed with its holder
      }
      available = holder == source  // the source holds the replica itself
                      ? true
                      : route_to(source, holder, nullptr);
    }
    if (available) {
      ++estimate.gets_available;
    }
  }
  // Flush the sweep remainder and close the round: exactly one full
  // lifecycle round per measured round, so the stationary population (and
  // the q_nr bridge) matches the round-synchronous mode.
  advance_sweep(cursor, capacity);
  integrate_joiners(/*commit_always=*/true);
  return estimate;
}

sparse::SparseEstimate SparseChurnWorld::measure_inflight(
    std::uint64_t pairs, std::uint64_t events_per_hop) {
  return measure_inflight(pairs, events_per_hop, measure_rng_);
}

sim::LoadSummary SparseChurnWorld::load_summary() const {
  return sim::summarize_load(load_, [this](std::size_t slot) {
    return membership_.present(static_cast<NodeSlot>(slot));
  });
}

double SparseChurnWorld::alive_fraction() const noexcept {
  return static_cast<double>(membership_.population()) /
         static_cast<double>(membership_.capacity());
}

double SparseChurnWorld::mean_entry_age() const {
  double total = 0.0;
  std::uint64_t counted = 0;
  const std::uint64_t capacity = membership_.capacity();
  for (NodeSlot slot = 0; slot < capacity; ++slot) {
    if (!membership_.present(slot)) {
      continue;
    }
    for (int j = 0; j < row_width_; ++j) {
      total += round_ -
               refreshed_at_[slot * static_cast<std::uint64_t>(row_width_) +
                             static_cast<std::uint64_t>(j)];
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

SparseChurnResult run_sparse_churn_trajectory(
    SparseChurnGeometry geometry, const SparseChurnConfig& config,
    const ChurnParams& params, const TrajectoryOptions& options,
    const math::Rng& rng) {
  validate_trajectory_options(options);
  (void)availability(params);

  const std::uint64_t shards =
      options.shards != 0 ? options.shards : kDefaultTrajectoryShards;
  const int rounds = options.measured_rounds;
  std::vector<std::vector<sparse::SparseEstimate>> shard_rounds(shards);
  std::vector<double> population_sum(shards, 0.0);
  std::vector<double> alive_sum(shards, 0.0);
  std::vector<double> age_sum(shards, 0.0);
  std::vector<sim::LoadSummary> shard_loads(shards);

  sim::run_sharded(
      shards,
      sim::PoolOptions{.threads = sim::resolve_threads(options.threads),
                       // Replica worlds are heavy; claim one at a time so
                       // the tail load-balances.
                       .chunk = 1,
                       .pin_workers = options.pin_workers},
      [&](std::uint64_t s) {
        // Shard s is an independent replica of the whole trajectory, a
        // pure function of (caller seed, s).  Its world is allocated here,
        // on the (optionally pinned) worker, so first touch places it on
        // the worker's socket.
        SparseChurnWorld world(geometry, config, params,
                               options.repair_probability, options.max_hops,
                               rng.fork(s));
        for (int i = 0; i < options.warmup_rounds; ++i) {
          world.step();
        }
        auto& mine = shard_rounds[s];
        mine.reserve(static_cast<std::size_t>(rounds));
        for (int r = 0; r < rounds; ++r) {
          if (options.inflight) {
            // In-flight: the round's lifecycle advances DURING the
            // measured routes (measure_inflight steps the round itself).
            mine.push_back(world.measure_inflight(
                options.pairs_per_round, options.inflight_events_per_hop));
          } else {
            world.step();
            mine.push_back(world.measure(options.pairs_per_round));
          }
          population_sum[s] += static_cast<double>(world.population());
          alive_sum[s] += world.alive_fraction();
          age_sum[s] += world.mean_entry_age();
        }
        shard_loads[s] = world.load_summary();
      });

  SparseChurnResult result;
  result.shards = shards;
  result.per_round.resize(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    for (std::uint64_t s = 0; s < shards; ++s) {
      result.per_round[static_cast<std::size_t>(r)].merge(
          shard_rounds[s][static_cast<std::size_t>(r)]);
    }
    result.overall.merge(result.per_round[static_cast<std::size_t>(r)]);
  }
  double population_total = 0.0;
  double alive_total = 0.0;
  double age_total = 0.0;
  for (std::uint64_t s = 0; s < shards; ++s) {
    population_total += population_sum[s];
    alive_total += alive_sum[s];
    age_total += age_sum[s];
  }
  // validate_trajectory_options guarantees rounds >= 1 and shards >= 1, but
  // keep the division guarded: an empty run must surface zeroed
  // diagnostics, never NaN leaking into JSONL.
  const double snapshots =
      static_cast<double>(shards) * static_cast<double>(rounds);
  result.mean_population =
      snapshots > 0.0 ? population_total / snapshots : 0.0;
  result.mean_alive_fraction = snapshots > 0.0 ? alive_total / snapshots : 0.0;
  result.mean_entry_age = snapshots > 0.0 ? age_total / snapshots : 0.0;
  // Load reduction in shard order: the hottest slot of any world, and the
  // shape statistics averaged over worlds (each shard is an independent
  // trajectory; max commutes, so the result is thread-count-independent).
  double p99_total = 0.0;
  double cv_total = 0.0;
  for (std::uint64_t s = 0; s < shards; ++s) {
    result.load_max = std::max(result.load_max, shard_loads[s].max);
    p99_total += static_cast<double>(shard_loads[s].p99);
    cv_total += shard_loads[s].cv;
  }
  result.load_p99 = p99_total / static_cast<double>(shards);
  result.load_cv = cv_total / static_cast<double>(shards);
  return result;
}

std::vector<SparseChurnSweepPoint> run_sparse_churn_sweep(
    const SparseChurnSweepSpec& spec) {
  DHT_CHECK(!spec.bits.empty(), "sweep needs at least one bits value");
  DHT_CHECK(!spec.populations.empty(),
            "sweep needs at least one population value");
  DHT_CHECK(!spec.churn.empty(), "sweep needs at least one churn point");
  DHT_CHECK(!spec.repair.empty(), "sweep needs at least one repair value");
  DHT_CHECK(!spec.successors.empty(),
            "sweep needs at least one successor-list length");
  const math::Rng root(spec.seed);
  std::vector<SparseChurnSweepPoint> points;
  points.reserve(spec.bits.size() * spec.populations.size() *
                 spec.churn.size() * spec.repair.size() *
                 spec.successors.size());
  std::uint64_t index = 0;
  for (const int bits : spec.bits) {
    for (const std::uint64_t population : spec.populations) {
      for (const ChurnParams& params : spec.churn) {
        std::uint64_t capacity = capacity_for_population(population, params);
        if (bits < 26 && capacity > (std::uint64_t{1} << bits)) {
          capacity = std::uint64_t{1} << bits;  // dense-limit clamp
        }
        for (const double rho : spec.repair) {
          for (const int s : spec.successors) {
            SparseChurnConfig config;
            config.bits = bits;
            config.capacity = capacity;
            config.successors = s;
            config.shortcuts = spec.shortcuts;
            config.bucket_k = spec.bucket_k;
            config.session = spec.session;
            config.replicas = spec.replicas;
            config.zipf_s = spec.zipf_s;
            config.objects = spec.objects;
            TrajectoryOptions options = spec.options;
            options.repair_probability = rho;
            SparseChurnSweepPoint point;
            point.bits = bits;
            point.population = population;
            point.capacity = capacity;
            point.params = params;
            point.repair_probability = rho;
            point.successors = s;
            point.q_eff = effective_q(params);
            point.result = run_sparse_churn_trajectory(
                spec.geometry, config, params, options, root.fork(index));
            points.push_back(std::move(point));
            ++index;
          }
        }
      }
    }
  }
  return points;
}

}  // namespace dht::churn
