#include "churn/sparse_trajectory.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "common/check.hpp"
#include "common/hugepage.hpp"
#include "sim/shard_pool.hpp"
#include "sparse/flat_sparse.hpp"

namespace dht::churn {

// Flattened routing view over a world's slot state: identifiers (stale for
// departed slots), the packed epoch structure (one alive-bitmap u64 word
// per 64 slots + the flat generation array), the row-major tables with
// their cached install-time target ids, and the successor lists.  Kernels
// compare identifiers but step between slots -- the sparse/flat_sparse.hpp
// pattern with mutable membership underneath.
struct ChurnKernelCtx {
  const std::uint64_t* ids = nullptr;
  const std::uint64_t* alive_bits = nullptr;
  const std::uint32_t* generations = nullptr;
  const NodeSlot* table = nullptr;
  const std::uint32_t* table_gen = nullptr;
  const std::uint64_t* table_id = nullptr;
  const NodeSlot* successors = nullptr;
  const std::uint32_t* successors_gen = nullptr;
  const std::uint64_t* successors_id = nullptr;
  int row_width = 0;
  int bucket_k = 1;  // kademlia contacts per bucket (row_width = d * k)
  int s = 0;
  std::uint64_t key_mask = 0;
};

namespace {

namespace flat = sparse::flat;
using flat::RouteBatch;
using flat::SparseRouteStatus;

// Upper bound on a greedy-ring candidate set: the table row (<= 63
// entries; bits <= 63, shortcuts capped at 64) plus the successor list
// (capped at 64) -- enforced by check_config so the per-hop progress
// lattice fits on the stack.
constexpr int kMaxCandidates = 128;

inline bool ctx_slot_alive(const ChurnKernelCtx& c, NodeSlot slot) {
  return ((c.alive_bits[slot >> 6] >> (slot & 63)) & 1) != 0;
}

// An entry is routable only while its target slot is present under the
// generation the entry was installed against.  The probe is the only
// random access a candidate costs: its geometry was already computed from
// the cached install-time id, which equals the current id exactly when
// this probe passes (ids change only on rejoin, which bumps the
// generation) -- so screening candidates by cached geometry first can
// never change which entry a kernel picks.
inline bool ctx_entry_valid(const ChurnKernelCtx& c, NodeSlot entry,
                            std::uint32_t generation) {
  return entry != kNoSlot && ctx_slot_alive(c, entry) &&
         c.generations[entry] == generation;
}

// Classifies a no-admissible-hop drop for the failure taxonomy: if the
// dropping node keeps a successor list and every entry in it is dead or
// self (the ring's guaranteed-progress channel has collapsed), the drop
// is a successor collapse; otherwise some table entry merely decayed --
// a dead-entry stall.  The probe re-reads state the failing step already
// touched: rng-free, so classification is a pure function of the frozen
// snapshot and merges bit-identically at any thread count.
inline obs::RouteFailure classify_drop(const ChurnKernelCtx& c,
                                       NodeSlot cur) {
  if (c.s > 0) {
    const std::uint64_t base = cur * static_cast<std::uint64_t>(c.s);
    for (int t = 0; t < c.s; ++t) {
      const std::uint64_t off = base + static_cast<std::uint64_t>(t);
      const NodeSlot e = c.successors[off];
      if (e != cur && ctx_entry_valid(c, e, c.successors_gen[off])) {
        return obs::RouteFailure::kDeadEntry;
      }
    }
    return obs::RouteFailure::kSuccessorCollapse;
  }
  return obs::RouteFailure::kDeadEntry;
}

// A hop's outcome: the chosen slot and its identifier (threaded through
// the route so the next hop never loads ids[cur]).
struct StepResult {
  NodeSlot next = kNoSlot;
  std::uint64_t next_id = 0;
};

// Warms the next hop's sequential working set: the cached-id row (and
// successor-id row), the only per-hop streams the ring kernels scan.
inline void prefetch_ring_row(const ChurnKernelCtx& c, NodeSlot slot) {
  const auto* row = reinterpret_cast<const char*>(
      c.table_id + slot * static_cast<std::uint64_t>(c.row_width));
  for (int off = 0; off < c.row_width * 8; off += 64) {
    __builtin_prefetch(row + off);
  }
  if (c.s > 0) {
    const auto* succ = reinterpret_cast<const char*>(
        c.successors_id + slot * static_cast<std::uint64_t>(c.s));
    for (int off = 0; off < c.s * 8; off += 64) {
      __builtin_prefetch(succ + off);
    }
  }
}

// Warms the first bucket the next XOR hop will read -- its index is a
// pure function of the new distance -- in the cached-id row.
inline void prefetch_xor_bucket(const ChurnKernelCtx& c, NodeSlot slot,
                                std::uint64_t cur_id,
                                std::uint64_t target_id) {
  const std::uint64_t distance = cur_id ^ target_id;
  if (distance == 0) {
    return;
  }
  const int d = c.row_width / c.bucket_k;
  const std::uint64_t base =
      slot * static_cast<std::uint64_t>(c.row_width) +
      static_cast<std::uint64_t>(d - std::bit_width(distance)) *
          static_cast<std::uint64_t>(c.bucket_k);
  for (int cell = 0; cell < c.bucket_k; cell += 8) {
    __builtin_prefetch(&c.table_id[base + static_cast<std::uint64_t>(cell)]);
  }
}

// Chord / Symphony: greedy clockwise without overshoot over the table row
// plus the successor list -- the list entries are ordinary candidate
// edges, so they both repair deep progress (a dead finger's gap) and
// guarantee the last hops.  Progress comes from the cached install-time
// ids (one sequential row scan, no pointer chasing): admissible candidates
// are probed in decreasing-progress order against the packed epoch
// structure, and a failed probe simply excludes the candidate -- for a
// valid entry the cached id IS the current id, and ties in progress are
// only possible against invalid entries (present ids are distinct), so
// the surviving pick equals the historical current-id kernel's bit for
// bit.  Empty cells carry the owner's own id: progress 0, inadmissible.
inline StepResult step_clockwise(const ChurnKernelCtx& c, NodeSlot cur,
                                 std::uint64_t cur_id,
                                 std::uint64_t target_id) {
  const std::uint64_t distance = (target_id - cur_id) & c.key_mask;
  const std::uint64_t row_base =
      cur * static_cast<std::uint64_t>(c.row_width);
  const std::uint64_t succ_base = cur * static_cast<std::uint64_t>(c.s);
  const int m = c.row_width + c.s;
  std::uint64_t progress[kMaxCandidates];
  for (int j = 0; j < c.row_width; ++j) {
    progress[j] =
        (c.table_id[row_base + static_cast<std::uint64_t>(j)] - cur_id) &
        c.key_mask;
  }
  for (int t = 0; t < c.s; ++t) {
    progress[c.row_width + t] =
        (c.successors_id[succ_base + static_cast<std::uint64_t>(t)] -
         cur_id) &
        c.key_mask;
  }
  for (;;) {
    // Admissible: 1 <= p <= distance, as the single wrap-around compare
    // p - 1 < distance (p = 0 wraps past every distance < 2^64).
    std::uint64_t best = 0;
    int bj = -1;
    for (int j = 0; j < m; ++j) {
      const std::uint64_t p = progress[j];
      if (p - 1 < distance && p > best) {
        best = p;
        bj = j;
      }
    }
    if (bj < 0) {
      return {};
    }
    const bool in_row = bj < c.row_width;
    const std::uint64_t off =
        in_row ? row_base + static_cast<std::uint64_t>(bj)
               : succ_base + static_cast<std::uint64_t>(bj - c.row_width);
    const NodeSlot entry = in_row ? c.table[off] : c.successors[off];
    const std::uint32_t gen =
        in_row ? c.table_gen[off] : c.successors_gen[off];
    if (ctx_entry_valid(c, entry, gen)) {
      return {entry, in_row ? c.table_id[off] : c.successors_id[off]};
    }
    progress[bj] = 0;  // dead candidate: exclude and rescan
  }
}

// Kademlia: walk the differing levels highest order first; within a
// bucket, probe the k cells head first (the longest-lived contacts --
// Kademlia's LRU preference, which heavy-tailed sessions reward); the
// first contact strictly closer in XOR distance by its cached id AND
// valid under the epoch probe wins -- the same first cell as the
// historical kernel, since a valid entry's cached id is its current id.
// The successor list is the sibling-list fallback: its entries are
// admissible whenever they are strictly closer, which covers the endgame
// where the deep buckets have decayed (an entry equal to cur, or an empty
// cell carrying the owner's id, has equal distance and falls out of the
// strict compare).  bucket_k = 1 reads exactly the pre-k cells.
inline StepResult step_xor(const ChurnKernelCtx& c, NodeSlot cur,
                           std::uint64_t cur_id, std::uint64_t target_id) {
  const std::uint64_t cur_distance = cur_id ^ target_id;
  const std::uint64_t row_base =
      cur * static_cast<std::uint64_t>(c.row_width);
  const int d = c.row_width / c.bucket_k;
  std::uint64_t diff = cur_distance;
  while (diff != 0) {
    const int bw = std::bit_width(diff);
    const std::uint64_t bucket_base =
        row_base +
        static_cast<std::uint64_t>(d - bw) *
            static_cast<std::uint64_t>(c.bucket_k);  // bucket d - bw + 1
    for (int cell = 0; cell < c.bucket_k; ++cell) {
      const std::uint64_t j = bucket_base + static_cast<std::uint64_t>(cell);
      const std::uint64_t eid = c.table_id[j];
      if ((eid ^ target_id) < cur_distance &&
          ctx_entry_valid(c, c.table[j], c.table_gen[j])) {
        return {c.table[j], eid};
      }
    }
    diff &= ~(std::uint64_t{1} << (bw - 1));
  }
  const std::uint64_t succ_base = cur * static_cast<std::uint64_t>(c.s);
  for (int t = 0; t < c.s; ++t) {
    const std::uint64_t j = succ_base + static_cast<std::uint64_t>(t);
    const std::uint64_t eid = c.successors_id[j];
    if ((eid ^ target_id) < cur_distance &&
        ctx_entry_valid(c, c.successors[j], c.successors_gen[j])) {
      return {c.successors[j], eid};
    }
  }
  return {};
}

// One route against a frozen (sync) or moving (in-flight) world -- the
// shared single-route core behind measure()'s scalar reference path and
// measure_inflight().  `step` is one of the scalar kernels above; `sweep`
// runs after every completed hop (the in-flight lifecycle advance; sync
// passes a no-op and the holder-departure check compiles out).  Load is
// bumped for the holding slot of every forward, before the step -- a
// dropped route charges the node that had no admissible hop, matching the
// historical accounting.
template <bool kInflight, typename Sweep>
bool route_one(const ChurnKernelCtx& c,
               StepResult (*step)(const ChurnKernelCtx&, NodeSlot,
                                  std::uint64_t, std::uint64_t),
               NodeSlot source, std::uint64_t source_id, NodeSlot target,
               std::uint64_t target_id, std::uint64_t max_hops,
               std::uint64_t* load, sparse::SparseEstimate* rec,
               Sweep&& sweep) {
  NodeSlot cur = source;
  std::uint64_t cur_id = source_id;
  std::uint64_t hops = 0;
  for (;;) {
    if constexpr (kInflight) {
      if (!ctx_slot_alive(c, cur)) {
        // The node holding the message departed between hops -- the
        // mid-flight loss the round-synchronous mode cannot express.
        if (rec != nullptr) {
          rec->record_drop(obs::RouteFailure::kHolderDeparted);
        }
        return false;
      }
    }
    if (cur == target) {
      if (rec != nullptr) {
        rec->record_arrival(hops);
      }
      return true;
    }
    if (hops >= max_hops) {
      if (rec != nullptr) {
        rec->record_hop_limit();
      }
      return false;
    }
    ++load[cur];
    const StepResult next = step(c, cur, cur_id, target_id);
    if (next.next == kNoSlot) {
      if (rec != nullptr) {
        rec->record_drop(classify_drop(c, cur));
      }
      return false;
    }
    cur = next.next;
    cur_id = next.next_id;
    ++hops;
    if constexpr (kInflight) {
      sweep();
    }
  }
}

// One greedy-ring hop for every active lane, phased like the static
// engine's batch kernels: (A) scan each lane's cached-id row (prefetched
// a batch turn ahead) into a progress lattice and pick the max-progress
// admissible candidate, (B) probe candidates against the packed epoch
// structure, excluding failures and rescanning -- ~2 expected probes per
// hop under churn vs the historical kernel's row_width + s pointer
// chases.  b.dist carries the lane's current-hop id.
inline void step_batch_ring(const ChurnKernelCtx& c, RouteBatch& b) {
  constexpr int kLanes = RouteBatch::kLanes;
  std::uint64_t progress[kLanes][kMaxCandidates];
  std::uint64_t dist[kLanes];
  int cand[kLanes];
  const int m = c.row_width + c.s;
  for (int l = 0; l < kLanes; ++l) {
    if (b.active[l] == 0) {
      continue;
    }
    const NodeSlot cur = b.cur[l];
    const std::uint64_t cur_id = b.dist[l];
    dist[l] = (b.target_id[l] - cur_id) & c.key_mask;
    const std::uint64_t row_base =
        cur * static_cast<std::uint64_t>(c.row_width);
    const std::uint64_t succ_base = cur * static_cast<std::uint64_t>(c.s);
    std::uint64_t* prog = progress[l];
    for (int j = 0; j < c.row_width; ++j) {
      prog[j] =
          (c.table_id[row_base + static_cast<std::uint64_t>(j)] - cur_id) &
          c.key_mask;
    }
    for (int t = 0; t < c.s; ++t) {
      prog[c.row_width + t] =
          (c.successors_id[succ_base + static_cast<std::uint64_t>(t)] -
           cur_id) &
          c.key_mask;
    }
    std::uint64_t best = 0;
    int bj = -1;
    for (int j = 0; j < m; ++j) {
      const std::uint64_t p = prog[j];
      if (p - 1 < dist[l] && p > best) {
        best = p;
        bj = j;
      }
    }
    cand[l] = bj;
    if (bj >= 0) {
      // Warm the candidate's entry + stamp for phase B while the other
      // lanes' scans provide latency cover.
      const std::uint64_t off =
          bj < c.row_width
              ? row_base + static_cast<std::uint64_t>(bj)
              : succ_base + static_cast<std::uint64_t>(bj - c.row_width);
      __builtin_prefetch(bj < c.row_width ? &c.table[off]
                                          : &c.successors[off]);
      __builtin_prefetch(bj < c.row_width ? &c.table_gen[off]
                                          : &c.successors_gen[off]);
    }
  }
  for (int l = 0; l < kLanes; ++l) {
    if (b.active[l] == 0) {
      continue;
    }
    const NodeSlot cur = b.cur[l];
    const std::uint64_t row_base =
        cur * static_cast<std::uint64_t>(c.row_width);
    const std::uint64_t succ_base = cur * static_cast<std::uint64_t>(c.s);
    std::uint64_t* prog = progress[l];
    int bj = cand[l];
    for (;;) {
      if (bj < 0) {
        b.cur[l] = kNoSlot;  // dead end: the drop sentinel
        break;
      }
      const bool in_row = bj < c.row_width;
      const std::uint64_t off =
          in_row ? row_base + static_cast<std::uint64_t>(bj)
                 : succ_base + static_cast<std::uint64_t>(bj - c.row_width);
      const NodeSlot entry = in_row ? c.table[off] : c.successors[off];
      const std::uint32_t gen =
          in_row ? c.table_gen[off] : c.successors_gen[off];
      if (ctx_entry_valid(c, entry, gen)) {
        b.cur[l] = entry;
        b.dist[l] = in_row ? c.table_id[off] : c.successors_id[off];
        ++b.hops[l];
        if (entry != b.target[l]) {
          prefetch_ring_row(c, entry);
        }
        break;
      }
      prog[bj] = 0;
      std::uint64_t best = 0;
      bj = -1;
      for (int j = 0; j < m; ++j) {
        const std::uint64_t p = prog[j];
        if (p - 1 < dist[l] && p > best) {
          best = p;
          bj = j;
        }
      }
    }
  }
}

// One XOR hop for every active lane: phase A walks the differing levels
// over the cached-id row alone -- sequential, no liveness loads -- to the
// first strictly-closer cell and warms it; phase B probes that cell and
// falls back to the full scalar step on a stale candidate (the re-walk
// probes the same cells in the same order, so the pick is unchanged).  A
// lane with no cached-closer cell anywhere holds no valid closer entry at
// all (valid entries' cached ids are current) and drops without a single
// random load.
inline void step_batch_xor(const ChurnKernelCtx& c, RouteBatch& b) {
  constexpr int kLanes = RouteBatch::kLanes;
  constexpr std::uint64_t kNoCand = ~std::uint64_t{0};
  std::uint64_t cand[kLanes];  // (offset << 1) | is_successor
  for (int l = 0; l < kLanes; ++l) {
    if (b.active[l] == 0) {
      continue;
    }
    const std::uint64_t target = b.target_id[l];
    const std::uint64_t cur_distance = b.dist[l] ^ target;
    const std::uint64_t row_base =
        b.cur[l] * static_cast<std::uint64_t>(c.row_width);
    const int d = c.row_width / c.bucket_k;
    std::uint64_t diff = cur_distance;
    std::uint64_t found = kNoCand;
    while (diff != 0 && found == kNoCand) {
      const int bw = std::bit_width(diff);
      const std::uint64_t bucket_base =
          row_base + static_cast<std::uint64_t>(d - bw) *
                         static_cast<std::uint64_t>(c.bucket_k);
      for (int cell = 0; cell < c.bucket_k; ++cell) {
        const std::uint64_t j =
            bucket_base + static_cast<std::uint64_t>(cell);
        if ((c.table_id[j] ^ target) < cur_distance) {
          found = j << 1;
          break;
        }
      }
      diff &= ~(std::uint64_t{1} << (bw - 1));
    }
    if (found == kNoCand) {
      const std::uint64_t succ_base =
          b.cur[l] * static_cast<std::uint64_t>(c.s);
      for (int t = 0; t < c.s; ++t) {
        const std::uint64_t j = succ_base + static_cast<std::uint64_t>(t);
        if ((c.successors_id[j] ^ target) < cur_distance) {
          found = (j << 1) | 1;
          break;
        }
      }
    }
    cand[l] = found;
    if (found != kNoCand) {
      const std::uint64_t j = found >> 1;
      __builtin_prefetch((found & 1) != 0 ? &c.successors[j] : &c.table[j]);
      __builtin_prefetch((found & 1) != 0 ? &c.successors_gen[j]
                                          : &c.table_gen[j]);
    }
  }
  for (int l = 0; l < kLanes; ++l) {
    if (b.active[l] == 0) {
      continue;
    }
    if (cand[l] == kNoCand) {
      b.cur[l] = kNoSlot;  // no closer contact exists: drop
      continue;
    }
    const std::uint64_t j = cand[l] >> 1;
    const bool in_succ = (cand[l] & 1) != 0;
    const NodeSlot entry = in_succ ? c.successors[j] : c.table[j];
    const std::uint32_t gen =
        in_succ ? c.successors_gen[j] : c.table_gen[j];
    StepResult hop;
    if (ctx_entry_valid(c, entry, gen)) {
      hop = {entry, in_succ ? c.successors_id[j] : c.table_id[j]};
    } else {
      // Stale head candidate: resolve the lane with the full scalar walk
      // (it skips the failed cell via the same probe and continues).
      hop = step_xor(c, b.cur[l], b.dist[l], b.target_id[l]);
    }
    if (hop.next == kNoSlot) {
      b.cur[l] = kNoSlot;
      continue;
    }
    b.cur[l] = hop.next;
    b.dist[l] = hop.next_id;
    ++b.hops[l];
    if (hop.next != b.target[l]) {
      prefetch_xor_bucket(c, hop.next, hop.next_id, b.target_id[l]);
    }
  }
}

// The lane driver of the batched sync path (the drive_lanes shape of the
// static engine): retire every terminal lane -- drop sentinel, arrival,
// hop cap -- refill it from the pair source, then charge each active
// lane's holder one forward and advance all lanes one hop.  Identical
// accounting to route_one: a lane is charged before the step that drops
// it and not for the turn it retires on.  `retire` additionally receives
// the lane's pre-step slot -- the node that had no admissible hop -- so a
// drop can be classified (the batch kernels overwrite cur with the kNoSlot
// sentinel, erasing the dropping slot).
template <typename StepBatch, typename Refill, typename Retire>
void drive_churn_lanes(const ChurnKernelCtx& c, std::uint64_t max_hops,
                       std::uint64_t* load, StepBatch&& step_batch,
                       Refill&& refill, Retire&& retire) {
  RouteBatch b;
  NodeSlot last_cur[RouteBatch::kLanes] = {};
  int active = 0;
  for (int l = 0; l < RouteBatch::kLanes; ++l) {
    b.active[l] = refill(b, l) ? 1 : 0;
    active += b.active[l];
  }
  while (active > 0) {
    for (int l = 0; l < RouteBatch::kLanes; ++l) {
      while (b.active[l] != 0) {
        SparseRouteStatus status;
        if (b.cur[l] == kNoSlot) {
          status = SparseRouteStatus::kDropped;
        } else if (b.cur[l] == b.target[l]) {
          status = SparseRouteStatus::kArrived;
        } else if (b.hops[l] >= max_hops) {
          status = SparseRouteStatus::kHopLimit;
        } else {
          break;
        }
        retire(b, l, status, last_cur[l]);
        if (!refill(b, l)) {
          b.active[l] = 0;
          --active;
        }
      }
    }
    if (active == 0) {
      break;
    }
    for (int l = 0; l < RouteBatch::kLanes; ++l) {
      if (b.active[l] != 0) {
        ++load[b.cur[l]];
        last_cur[l] = b.cur[l];
      }
    }
    step_batch(c, b);
  }
}

// Visits present slots in ascending order by scanning the packed alive
// bitmap one u64 word at a time (countr_zero per member) -- the flattened
// replacement for full-capacity presence scans.  Visit order is identical
// to `for slot < capacity: if present`, so every rng and accumulation
// stream downstream is unchanged.  The callback must not change presence.
template <typename Fn>
void for_each_alive(const SparseMembership& membership, Fn&& fn) {
  const std::uint64_t* words = membership.alive_bits_data();
  const std::uint64_t nwords = membership.alive_words();
  for (std::uint64_t w = 0; w < nwords; ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      const auto b = static_cast<std::uint64_t>(std::countr_zero(bits));
      fn(static_cast<NodeSlot>((w << 6) + b));
      bits &= bits - 1;
    }
  }
}

void check_config(const SparseChurnConfig& config,
                  SparseChurnGeometry geometry) {
  DHT_CHECK(config.successors >= 0 && config.successors <= 64,
            "successor-list length must be in [0, 64]");
  DHT_CHECK(config.bucket_k >= 1 && config.bucket_k <= 64,
            "kademlia bucket width must be in [1, 64]");
  DHT_CHECK(config.replicas >= 1 && config.replicas <= 64,
            "replication factor must be in [1, 64]");
  DHT_CHECK(std::isfinite(config.zipf_s) && config.zipf_s >= 0.0,
            "workload zipf skew must be finite and >= 0");
  DHT_CHECK(config.objects <= (std::uint64_t{1} << 26),
            "workload object count exceeds the 2^26 population cap");
  if (geometry == SparseChurnGeometry::kSymphony) {
    // The upper cap (with bits <= 63 and the successor cap above) keeps
    // every routing row + successor list within kMaxCandidates, so the
    // kernels' per-hop progress lattices live on the stack.
    DHT_CHECK(config.shortcuts >= 1 && config.shortcuts <= 64,
              "symphony shortcut count must be in [1, 64]");
  }
}

// Fixed object->key hash key, shared with the static workload engine so a
// given object rank lands on the same key in both (placement is a property
// of the key space, not of any run's seed).
constexpr std::uint64_t kObjectKeySalt = 0xb10c9a3f0b173c75ULL;

}  // namespace

bool sparse_churn_geometry_from_name(std::string_view name,
                                     SparseChurnGeometry& out) {
  if (name == "ring") {
    out = SparseChurnGeometry::kChord;
    return true;
  }
  if (name == "xor") {
    out = SparseChurnGeometry::kKademlia;
    return true;
  }
  if (name == "symphony") {
    out = SparseChurnGeometry::kSymphony;
    return true;
  }
  return false;
}

const char* to_string(SparseChurnGeometry geometry) noexcept {
  switch (geometry) {
    case SparseChurnGeometry::kChord:
      return "ring";
    case SparseChurnGeometry::kKademlia:
      return "xor";
    case SparseChurnGeometry::kSymphony:
      return "symphony";
  }
  return "?";
}

std::uint64_t capacity_for_population(std::uint64_t population,
                                      const ChurnParams& params) {
  const double a = availability(params);
  auto capacity = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(population) / a));
  // Clamp into SparseMembership's supported roster range: a derived
  // capacity above the 2^26 per-slot-state cap would otherwise throw from
  // inside a sweep's shard pool, discarding every computed grid point.
  capacity = std::min(capacity, std::uint64_t{1} << 26);
  return capacity < 2 ? 2 : capacity;
}

SparseChurnWorld::SparseChurnWorld(SparseChurnGeometry geometry,
                                   const SparseChurnConfig& config,
                                   const ChurnParams& params,
                                   double repair_probability,
                                   std::uint64_t max_hops,
                                   const math::Rng& rng)
    : geometry_(geometry),
      config_(config),
      params_(params),
      repair_probability_(repair_probability),
      max_hops_(max_hops == 0 ? config.capacity : max_hops),
      row_width_(geometry == SparseChurnGeometry::kSymphony
                     ? config.shortcuts
                     : (geometry == SparseChurnGeometry::kKademlia
                            ? config.bits * config.bucket_k
                            : config.bits)),
      session_(params, config.session),
      lifecycle_rng_(rng.fork(1)),
      table_rng_(rng.fork(2)),
      measure_rng_(rng.fork(3)),
      id_rng_(rng.fork(4)),
      membership_(config.bits, config.capacity),
      object_keys_(kObjectKeySalt) {
  const double a = availability(params);  // validates the lifecycle rates
  DHT_CHECK(repair_probability >= 0.0 && repair_probability <= 1.0,
            "repair probability must be in [0, 1]");
  check_config(config, geometry);
  const std::uint64_t capacity = membership_.capacity();
  joined_at_.assign(capacity, 0);
  load_.assign(capacity, 0);
  if (workload_enabled()) {
    zipf_.emplace(object_count(), config_.zipf_s);
  }
  // Stationary membership: each slot present w.p. a, like the dense world's
  // stationary liveness -- the dense-limit oracle depends on the two
  // lifecycle processes being the same slot-level chain.  (The Pareto
  // calibration pins the mean session to 1/pd, so `a` is the geometric
  // availability for every session model.)  Heavy-tailed sessions also
  // draw a stationary session age per initial member -- the age-dependent
  // hazard starts in steady state; geometric sessions are memoryless and
  // skip the draw, keeping the historical rng stream bit for bit.
  joiners_.clear();
  for (NodeSlot slot = 0; slot < capacity; ++slot) {
    if (lifecycle_rng_.bernoulli(a)) {
      joiners_.push_back(slot);
      if (!session_.geometric()) {
        joined_at_[slot] = -session_.sample_stationary_age(lifecycle_rng_);
      }
    }
  }
  membership_.join(joiners_, id_rng_);
  membership_.commit();
  total_joins_ += joiners_.size();
  // The row arenas are the kernels' random-access working set; back them
  // with huge pages (best effort) before first touch so the fill faults
  // 2MB pages directly -- same rationale as the static engine's tables.
  const std::uint64_t row_cells =
      capacity * static_cast<std::uint64_t>(row_width_);
  const std::uint64_t succ_cells =
      capacity * static_cast<std::uint64_t>(config_.successors);
  common::reserve_hugepages(table_, row_cells);
  common::reserve_hugepages(table_id_, row_cells);
  common::reserve_hugepages(table_gen_, row_cells);
  common::reserve_hugepages(refreshed_at_, row_cells);
  common::reserve_hugepages(successors_, succ_cells);
  common::reserve_hugepages(successors_id_, succ_cells);
  common::reserve_hugepages(successors_gen_, succ_cells);
  table_.assign(row_cells, kNoSlot);
  table_gen_.assign(table_.size(), 0);
  table_id_.assign(table_.size(), 0);
  refreshed_at_.assign(table_.size(), 0);
  // INT32_MIN = "possibly due immediately": rows earn a real bound at
  // their first full maintenance scan.
  table_due_round_.assign(capacity, std::numeric_limits<std::int32_t>::min());
  successors_.assign(succ_cells, kNoSlot);
  successors_gen_.assign(successors_.size(), 0);
  successors_id_.assign(successors_.size(), 0);
  successors_refreshed_at_.assign(capacity, 0);
  for_each_alive(membership_, [&](NodeSlot slot) { rebuild_node(slot); });
  // Stagger refresh phases so entry ages start uniform over 0..R-1,
  // matching the q_eff derivation (and the dense world's construction).
  const auto interval =
      static_cast<std::uint64_t>(params_.refresh_interval);
  for_each_alive(membership_, [&](NodeSlot slot) {
    for (int j = 0; j < row_width_; ++j) {
      refreshed_at_[slot * static_cast<std::uint64_t>(row_width_) +
                    static_cast<std::uint64_t>(j)] =
          -static_cast<std::int32_t>(table_rng_.uniform_below(interval));
    }
    if (config_.successors > 0) {
      successors_refreshed_at_[slot] =
          -static_cast<std::int32_t>(table_rng_.uniform_below(interval));
    }
  });
}

bool SparseChurnWorld::entry_valid(NodeSlot entry,
                                   std::uint32_t generation) const {
  // Probe the packed alive bitmap rather than the byte mask: the bitmap
  // for a full-sized roster is 16 KiB (L1-resident under the maintenance
  // sweeps' random slot access), the byte mask 64x that.
  return entry != kNoSlot &&
         (membership_.alive_bits_data()[entry >> 6] >> (entry & 63) & 1) !=
             0 &&
         membership_.generation(entry) == generation;
}

void SparseChurnWorld::refresh_entry(NodeSlot slot, int index) {
  const std::uint64_t id = membership_.id_of(slot);
  const std::uint64_t mask = membership_.key_mask();
  const std::uint64_t offset =
      slot * static_cast<std::uint64_t>(row_width_) +
      static_cast<std::uint64_t>(index);
  NodeSlot chosen = kNoSlot;
  switch (geometry_) {
    case SparseChurnGeometry::kChord: {
      // Finger i = index+1 points at successor(id + 2^{d-i}).
      const std::uint64_t key =
          (id + (std::uint64_t{1} << (config_.bits - index - 1))) & mask;
      chosen = membership_.successor_of_key(key);
      break;
    }
    case SparseChurnGeometry::kKademlia: {
      // Cell `index % k` of bucket `index / k + 1`; every cell re-draws a
      // uniform bucket member, so k = 1 consumes the pre-k stream exactly.
      const auto [lo, hi] = kademlia_bucket_range(
          id, index / config_.bucket_k + 1, config_.bits);
      const auto [first, last] = membership_.order_range(lo, hi);
      if (first < last) {
        chosen = membership_.slot_at(
            first + table_rng_.uniform_below(last - first));
      }
      break;
    }
    case SparseChurnGeometry::kSymphony: {
      // Harmonic key-distance draw, linked to the key's current owner;
      // re-draw when it degenerates to the node itself.  This is the
      // shortcut re-draw semantics the dense trajectory engine lacks: the
      // sparse world re-draws the *key* and resolves it against the
      // current membership.
      const std::uint64_t keys = membership_.key_space_size();
      const double log_range =
          std::log(static_cast<double>(keys - 1));
      NodeSlot link = slot;
      for (int attempt = 0; attempt < 64 && link == slot; ++attempt) {
        const double u = table_rng_.uniform01();
        std::uint64_t key_offset =
            static_cast<std::uint64_t>(std::exp(u * log_range));
        key_offset = key_offset < 1 ? 1 : key_offset;
        key_offset = key_offset > keys - 1 ? keys - 1 : key_offset;
        link = membership_.successor_of_key((id + key_offset) & mask);
      }
      chosen = link;  // may stay self in degenerate tiny populations
      break;
    }
  }
  table_[offset] = chosen;
  table_gen_[offset] =
      chosen == kNoSlot ? 0 : membership_.generation(chosen);
  // Cache the target's install-time id: for as long as the entry stays
  // valid this IS its current id (ids change only on rejoin, which bumps
  // the generation).  Empty cells carry the owner's own id, which every
  // kernel's admissibility arithmetic rejects (progress 0 on the ring,
  // equal XOR distance), so kernels can screen candidates by cached id
  // without ever probing an out-of-row slot.
  table_id_[offset] = chosen == kNoSlot ? id : membership_.id_of(chosen);
  refreshed_at_[offset] = static_cast<std::int32_t>(round_);
}

void SparseChurnWorld::rebuild_tables(NodeSlot slot) {
  if (geometry_ == SparseChurnGeometry::kChord) {
    // Bulk finger rebuild -- the join-storm path (every joiner re-derives
    // its whole row, hundreds of millions of entries per trajectory).
    // Same writes as refresh_entry per index, with the per-call reloads
    // (owner id, mask, stamps) hoisted out of the loop; chord refreshes
    // consume no rng, so the fusion is stream-exact.
    const std::uint64_t id = membership_.id_of(slot);
    const std::uint64_t mask = membership_.key_mask();
    const std::uint64_t base = slot * static_cast<std::uint64_t>(row_width_);
    const auto stamp = static_cast<std::int32_t>(round_);
    for (int j = 0; j < row_width_; ++j) {
      const std::uint64_t key =
          (id + (std::uint64_t{1} << (config_.bits - j - 1))) & mask;
      const NodeSlot chosen = membership_.successor_of_key(key);
      const std::uint64_t offset = base + static_cast<std::uint64_t>(j);
      table_[offset] = chosen;
      table_gen_[offset] = membership_.generation(chosen);
      table_id_[offset] = membership_.id_of(chosen);
      refreshed_at_[offset] = stamp;
    }
    return;
  }
  for (int j = 0; j < row_width_; ++j) {
    refresh_entry(slot, j);
  }
}

void SparseChurnWorld::rebuild_successors(NodeSlot slot,
                                          std::uint64_t from_position) {
  const int s = config_.successors;
  const std::uint64_t base = slot * static_cast<std::uint64_t>(s);
  for (int t = 0; t < s; ++t) {
    const NodeSlot succ = membership_.ring_successor(
        from_position, static_cast<std::uint64_t>(t));
    successors_[base + static_cast<std::uint64_t>(t)] = succ;
    successors_gen_[base + static_cast<std::uint64_t>(t)] =
        membership_.generation(succ);
    // Install-time id cache; a self-entry (tiny populations wrap the
    // ring onto the owner) carries the owner's id, inadmissible to every
    // kernel by arithmetic alone.
    successors_id_[base + static_cast<std::uint64_t>(t)] =
        membership_.id_of(succ);
  }
  successors_refreshed_at_[slot] = static_cast<std::int32_t>(round_);
}

void SparseChurnWorld::rebuild_node(NodeSlot slot) {
  rebuild_tables(slot);
  if (config_.successors > 0) {
    const std::uint64_t own =
        membership_.successor_position(membership_.id_of(slot));
    rebuild_successors(slot, own + 1);  // first node strictly clockwise
  }
}

void SparseChurnWorld::announce_join(NodeSlot slot) {
  const std::uint64_t population = membership_.order_size();
  if (population < 2) {
    return;
  }
  const std::uint64_t own =
      membership_.successor_position(membership_.id_of(slot));
  // Chord's notify: the clockwise predecessor learns its new successor
  // immediately (its rebuilt list starts at the joiner).  This is what
  // keeps arrival working under membership turnover -- without it a
  // newcomer is unreachable until its neighborhood refreshes.
  if (config_.successors > 0) {
    const NodeSlot predecessor =
        membership_.slot_at((own + population - 1) % population);
    if (predecessor != slot) {
      rebuild_successors(predecessor, own);
    }
  }
  // Kademlia's join lookup: the joiner installs itself into the matching
  // bucket of its closest peers (deepest shared-prefix levels first),
  // filling entries that are empty or point at departed/recycled nodes.
  // Bucket membership is symmetric -- u in v's level-l bucket iff v in
  // u's -- so the peers are exactly the members of the joiner's own deep
  // buckets.
  if (geometry_ == SparseChurnGeometry::kKademlia && config_.announce > 0) {
    int budget = config_.announce;
    const int k = config_.bucket_k;
    const std::uint64_t id = membership_.id_of(slot);
    const std::uint32_t generation = membership_.generation(slot);
    for (int level = config_.bits; level >= 1 && budget > 0; --level) {
      const auto [lo, hi] = kademlia_bucket_range(id, level, config_.bits);
      const auto [first, last] = membership_.order_range(lo, hi);
      for (std::uint64_t pos = first; pos < last && budget > 0; ++pos) {
        const NodeSlot peer = membership_.slot_at(pos);
        // The joiner enters the peer's bucket at its first free cell --
        // empty or observed-stale -- i.e. at the tail of the live entries,
        // the newcomer end of the LRU order.  A bucket full of valid
        // contacts ignores the announcement (classic Kademlia keeps its
        // long-lived members).
        const std::uint64_t bucket_base =
            peer * static_cast<std::uint64_t>(row_width_) +
            static_cast<std::uint64_t>(level - 1) *
                static_cast<std::uint64_t>(k);
        for (int cell = 0; cell < k; ++cell) {
          const std::uint64_t offset =
              bucket_base + static_cast<std::uint64_t>(cell);
          if (!entry_valid(table_[offset], table_gen_[offset])) {
            table_[offset] = slot;
            table_gen_[offset] = generation;
            table_id_[offset] = id;
            refreshed_at_[offset] = static_cast<std::int32_t>(round_);
            break;
          }
        }
        --budget;
      }
    }
  }
}

void SparseChurnWorld::maintain_successors(NodeSlot slot) {
  const int s = config_.successors;
  if (s == 0) {
    return;
  }
  const std::uint64_t base = slot * static_cast<std::uint64_t>(s);
  bool broken = false;
  NodeSlot first_alive = kNoSlot;
  for (int t = 0; t < s; ++t) {
    const NodeSlot e = successors_[base + static_cast<std::uint64_t>(t)];
    if (e == slot ||
        !entry_valid(e, successors_gen_[base + static_cast<std::uint64_t>(t)])) {
      broken = true;
    } else if (first_alive == kNoSlot) {
      first_alive = e;
    }
  }
  if (broken) {
    if (first_alive != kNoSlot) {
      // Consult the list: the first alive entry seeds the repaired list
      // (its current clockwise chain).  Joiners between this node and that
      // entry are picked up by the next scheduled rebuild -- the
      // stabilization lag of real successor lists.
      rebuild_successors(
          slot,
          membership_.successor_position(membership_.id_of(first_alive)));
    } else {
      // Every sequential neighbor is gone: fall back to a full rebuild
      // (tables included), the re-join-like recovery path.
      rebuild_node(slot);
    }
  } else if (round_ - successors_refreshed_at_[slot] >=
             params_.refresh_interval) {
    const std::uint64_t own =
        membership_.successor_position(membership_.id_of(slot));
    rebuild_successors(slot, own + 1);
  }
}

// Entry maintenance for the single-contact row geometries (Chord fingers,
// Symphony shortcuts): due refreshes plus the eager-repair channel (an
// entry observed dead is re-pointed with probability rho between scheduled
// refreshes).  Fresh joiner rows are stamped with the current round, so
// they fall through every branch.
void SparseChurnWorld::maintain_entries(NodeSlot slot) {
  if (geometry_ == SparseChurnGeometry::kKademlia) {
    maintain_kademlia_buckets(slot);
    return;
  }
  if (repair_probability_ == 0.0) {
    // Pure lazy refresh consumes no rng during the scan, so a row whose
    // earliest possibly-due round lies in the future can be skipped
    // outright -- the dirty-row worklist that replaces the full-width
    // sweep.  The bound is conservative: stamps only move forward between
    // scans (refreshes and announcements re-stamp with the current
    // round), so a skipped row provably has nothing due.
    if (round_ < table_due_round_[slot]) {
      return;
    }
    // Two passes so the common case -- scanning a row with nothing or
    // almost nothing due -- is a branch-free strip over the contiguous
    // stamps (row_width <= 64 outside Kademlia, so the due set packs into
    // one word).  Refreshing ascending mask bits then reproduces the
    // interleaved loop exactly: refreshes re-stamp with round_, so the
    // post-scan minimum is min(surviving stamps, round_), and round_ only
    // enters when something was refreshed -- surviving stamps never
    // exceed it.
    const std::uint64_t row_base =
        slot * static_cast<std::uint64_t>(row_width_);
    const std::int32_t* stamps = refreshed_at_.data() + row_base;
    const std::int32_t due_at =
        static_cast<std::int32_t>(round_) -
        static_cast<std::int32_t>(params_.refresh_interval);
    std::uint64_t due = 0;
    std::int32_t min_live = std::numeric_limits<std::int32_t>::max();
    for (int j = 0; j < row_width_; ++j) {
      const bool is_due = stamps[j] <= due_at;
      due |= static_cast<std::uint64_t>(is_due) << j;
      min_live = !is_due && stamps[j] < min_live ? stamps[j] : min_live;
    }
    std::int32_t min_stamp = min_live;
    if (due != 0) {
      do {
        refresh_entry(slot, std::countr_zero(due));
        due &= due - 1;
      } while (due != 0);
      min_stamp = std::min(min_live, static_cast<std::int32_t>(round_));
    }
    table_due_round_[slot] =
        min_stamp + static_cast<std::int32_t>(params_.refresh_interval);
    return;
  }
  for (int j = 0; j < row_width_; ++j) {
    const std::uint64_t offset =
        slot * static_cast<std::uint64_t>(row_width_) +
        static_cast<std::uint64_t>(j);
    if (round_ - refreshed_at_[offset] >= params_.refresh_interval) {
      refresh_entry(slot, j);
    } else {
      // Observed-dead covers departed targets AND recycled slots (the
      // node at that address is a different one now) -- both are
      // generation mismatches.
      const NodeSlot entry = table_[offset];
      if (entry != kNoSlot && !entry_valid(entry, table_gen_[offset]) &&
          table_rng_.bernoulli(repair_probability_)) {
        refresh_entry(slot, j);
      }
    }
  }
}

// k-bucket maintenance (the Roos et al. LRU discipline): a cell due for
// refresh is re-drawn in place (the scheduled touch); a cell observed dead
// by the rho channel is EVICTED -- the bucket compacts toward the head,
// preserving insertion order, and the freed tail cell is refreshed (the
// replacement enters at the newcomer end).  With k = 1 the compaction is
// empty and both branches collapse onto the single-contact sequence, so
// the pre-k rng stream and tables are reproduced bit for bit.
void SparseChurnWorld::maintain_kademlia_buckets(NodeSlot slot) {
  const int k = config_.bucket_k;
  const std::uint64_t row_base =
      slot * static_cast<std::uint64_t>(row_width_);
  // rho == 0: the scan is rng-free, so the due-round bound applies
  // exactly as in maintain_entries (evictions -- which shift stamps
  // mid-scan -- exist only on the rho > 0 branch, where the bound is
  // never consulted or maintained).
  const bool lazy_only = repair_probability_ == 0.0;
  if (lazy_only && round_ < table_due_round_[slot]) {
    return;
  }
  std::int32_t min_stamp = std::numeric_limits<std::int32_t>::max();
  for (int b = 0; b < config_.bits; ++b) {
    const std::uint64_t bucket_base =
        row_base + static_cast<std::uint64_t>(b) * static_cast<std::uint64_t>(k);
    for (int cell = 0; cell < k; ++cell) {
      const std::uint64_t offset =
          bucket_base + static_cast<std::uint64_t>(cell);
      if (round_ - refreshed_at_[offset] >= params_.refresh_interval) {
        refresh_entry(slot, b * k + cell);
      } else if (!lazy_only) {
        const NodeSlot entry = table_[offset];
        if (entry != kNoSlot && !entry_valid(entry, table_gen_[offset]) &&
            table_rng_.bernoulli(repair_probability_)) {
          for (int t = cell; t + 1 < k; ++t) {
            const std::uint64_t dst =
                bucket_base + static_cast<std::uint64_t>(t);
            table_[dst] = table_[dst + 1];
            table_gen_[dst] = table_gen_[dst + 1];
            table_id_[dst] = table_id_[dst + 1];
            refreshed_at_[dst] = refreshed_at_[dst + 1];
          }
          refresh_entry(slot, b * k + (k - 1));
          // The shifted-in cell keeps its own stamps and gets its next
          // look next round -- each cell is examined once per round.
        }
      }
      min_stamp = std::min(min_stamp, refreshed_at_[offset]);
    }
  }
  if (lazy_only) {
    table_due_round_[slot] =
        min_stamp + static_cast<std::int32_t>(params_.refresh_interval);
  }
}

// Integrates the joiner cohort collected since the last call: fresh-id
// draw, order-index commit, bootstrap against the committed membership
// (which already includes the whole cohort, mirroring the dense rejoiner
// rebuilds), then announcement (predecessor notify / deep-bucket inserts).
// `commit_always` forces the order-index rebuild even with no joiners --
// the round-boundary contract (departed entries dropped every round); the
// in-flight path skips the O(N) rebuild at joinerless lookup boundaries
// (mid-round the order index may briefly carry departed entries, which
// read as dead through the presence mask like any stale state).
void SparseChurnWorld::integrate_joiners(bool commit_always) {
  // Round-boundary commits (commit_always) also refresh the membership's
  // prefix-seek table: a round of maintenance queries follows and
  // amortizes the rebuild many times over.  The in-flight engine's
  // per-lookup boundary commits skip the rebuild -- their delta is a
  // handful of slots and the next boundary is one lookup away -- at the
  // price of full-range (pre-accelerator) searches in between.
  if (joiners_.empty()) {
    if (commit_always) {
      membership_.commit(/*refresh_seek=*/true);
    }
    return;
  }
  membership_.join(joiners_, id_rng_);
  membership_.commit(/*refresh_seek=*/commit_always);
  total_joins_ += joiners_.size();
  for (const NodeSlot slot : joiners_) {
    joined_at_[slot] = round_;
  }
  for (const NodeSlot slot : joiners_) {
    rebuild_node(slot);
  }
  for (const NodeSlot slot : joiners_) {
    announce_join(slot);
  }
  joiners_.clear();
}

// One slot of the fused in-flight sweep: the lifecycle flip, then -- for a
// surviving member -- its round maintenance in place.  Unlike step(),
// where every flip happens before any repair, the world here is genuinely
// un-frozen: a slot's maintenance sees whatever the sweep has already done
// this round.  The lifecycle stream still draws exactly one Bernoulli per
// slot in slot order, so it stays the same sequence as step()'s.
void SparseChurnWorld::lifecycle_and_maintain_slot(NodeSlot slot) {
  if (membership_.present(slot)) {
    if (lifecycle_rng_.bernoulli(
            session_.hazard(static_cast<std::int64_t>(round_) -
                            joined_at_[slot]))) {
      membership_.leave(slot);
      ++total_leaves_;
      return;
    }
    if (membership_.order_size() == 0) {
      return;  // order index momentarily empty: nothing to repair against
    }
    maintain_successors(slot);
    maintain_entries(slot);
  } else if (lifecycle_rng_.bernoulli(params_.rebirth_per_round)) {
    joiners_.push_back(slot);
  }
}

void SparseChurnWorld::advance_sweep(std::uint64_t& cursor,
                                     std::uint64_t slots) {
  const std::uint64_t capacity = membership_.capacity();
  const std::uint64_t end =
      slots > capacity - cursor ? capacity : cursor + slots;
  for (; cursor < end; ++cursor) {
    lifecycle_and_maintain_slot(static_cast<NodeSlot>(cursor));
  }
}

void SparseChurnWorld::step() {
  ++round_;
  const std::uint64_t capacity = membership_.capacity();
  // Lifecycle flips first: a slot's decision reads its pre-round state
  // (leave() flips presence in place, but each slot is visited once; join
  // assignment is deferred to the batch below).  The departure draw runs
  // through the session model's age-dependent hazard; geometric sessions
  // have the constant hazard pd, reproducing the historical stream.
  obs::PhaseTimer lifecycle_timer(profile_, obs::Phase::kLifecycle, trace_);
  joiners_.clear();
  for (NodeSlot slot = 0; slot < capacity; ++slot) {
    if (membership_.present(slot)) {
      if (lifecycle_rng_.bernoulli(
              session_.hazard(static_cast<std::int64_t>(round_) -
                              joined_at_[slot]))) {
        membership_.leave(slot);
        ++total_leaves_;
      }
    } else if (lifecycle_rng_.bernoulli(params_.rebirth_per_round)) {
      joiners_.push_back(slot);
    }
  }
  lifecycle_timer.stop();
  {
    obs::PhaseTimer commit_timer(profile_, obs::Phase::kMembershipCommit,
                                 trace_);
    integrate_joiners(/*commit_always=*/true);
  }
  // Maintenance for present nodes: successor-list stabilization, due
  // refreshes, and eager repair.  Members are enumerated through the
  // packed alive bitmap (same ascending order as the historical
  // full-capacity presence scan) and rows that provably have nothing due
  // are skipped inside maintain_entries.
  obs::PhaseTimer refresh_timer(profile_, obs::Phase::kRefreshRepair, trace_);
  for_each_alive(membership_, [&](NodeSlot slot) {
    maintain_successors(slot);
    maintain_entries(slot);
  });
}

ChurnKernelCtx SparseChurnWorld::kernel_ctx() const {
  ChurnKernelCtx ctx;
  ctx.ids = membership_.id_data();
  ctx.alive_bits = membership_.alive_bits_data();
  ctx.generations = membership_.generation_data();
  ctx.table = table_.data();
  ctx.table_gen = table_gen_.data();
  ctx.table_id = table_id_.data();
  ctx.successors = successors_.data();
  ctx.successors_gen = successors_gen_.data();
  ctx.successors_id = successors_id_.data();
  ctx.row_width = row_width_;
  ctx.bucket_k = config_.bucket_k;
  ctx.s = config_.successors;
  ctx.key_mask = membership_.key_mask();
  return ctx;
}

sparse::SparseEstimate SparseChurnWorld::measure(std::uint64_t pairs,
                                                 math::Rng& rng) {
  obs::PhaseTimer route_timer(profile_, obs::Phase::kRoute, trace_);
  sparse::SparseEstimate estimate;
  if (membership_.population() < 2) {
    return estimate;  // nothing to sample: the empty-estimate contract
  }
  const ChurnKernelCtx ctx = kernel_ctx();
  const std::uint64_t capacity = membership_.capacity();
  const bool workload = workload_enabled();
  // Replica attempts are capped by the population once for the whole
  // call: the world is frozen in sync mode, so the historical per-pair
  // min is a constant.
  const int attempts =
      workload ? static_cast<int>(std::min<std::uint64_t>(
                     static_cast<std::uint64_t>(config_.replicas),
                     membership_.order_size()))
               : 1;
  // Draws are pulled a chunk at a time BEFORE any routing: routing is
  // rng-free, so hoisting the draws out of the route loop consumes the
  // measurement stream byte for byte like the historical interleaved
  // loop, while giving the batch driver a pair source to refill lanes
  // from.  Chunking bounds the scratch (and keeps pair tags in u32).
  constexpr std::uint64_t kDrawChunk = 4096;
  for (std::uint64_t start = 0; start < pairs; start += kDrawChunk) {
    const std::uint64_t n = std::min(kDrawChunk, pairs - start);
    draws_.clear();
    draws_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      GetDraw draw;
      if (!workload) {
        NodeSlot source =
            static_cast<NodeSlot>(rng.uniform_below(capacity));
        while (!membership_.present(source)) {
          source = static_cast<NodeSlot>(rng.uniform_below(capacity));
        }
        NodeSlot target =
            static_cast<NodeSlot>(rng.uniform_below(capacity));
        while (!membership_.present(target) || target == source) {
          target = static_cast<NodeSlot>(rng.uniform_below(capacity));
        }
        draw.source = source;
        draw.target = target;
      } else {
        // Replicated GET: the object's key places it on its successor
        // (the primary, attempt 0 -- what the routing estimate records)
        // and the next r - 1 clockwise present nodes hold the replicas.
        // Sources colliding with the primary redraw both draws, like the
        // uniform path's target rejection.
        for (;;) {
          draw.source =
              static_cast<NodeSlot>(rng.uniform_below(capacity));
          while (!membership_.present(draw.source)) {
            draw.source =
                static_cast<NodeSlot>(rng.uniform_below(capacity));
          }
          const std::uint64_t object = zipf_->sample(rng);
          draw.position = membership_.successor_position(
              object_keys_.at(object) & ctx.key_mask);
          draw.target = membership_.ring_successor(draw.position, 0);
          if (draw.target != draw.source) {
            break;
          }
        }
      }
      draws_.push_back(draw);
    }
    // Forensics: the sink's stride selects pairs by their index within
    // this measure() call -- a pure function of (shard, round, pair
    // index), so the traced set is identical at any thread count.  The
    // re-route runs against the same frozen snapshot the measurement
    // routes see and touches no rng, load counter, or estimate.
    if (trace_sink_ != nullptr && trace_sink_->enabled()) {
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t pair_index = start + i;
        if (trace_sink_->selects(pair_index)) {
          trace_route(ctx, draws_[i].source, draws_[i].target, pair_index);
        }
      }
    }
    if (batch_routes_) {
      measure_batched_routes(ctx, attempts, estimate);
    } else {
      measure_scalar_routes(ctx, attempts, estimate);
    }
  }
  return estimate;
}

// Re-routes one selected pair hop by hop against the frozen snapshot,
// recording each chosen hop's slot, cached id, table rank (the index in
// the forwarding node's row; -1 marks a successor-list hop), and the
// generation probe that admitted it.  Routing is rng-free and the world
// is frozen in sync mode, so the walk reproduces the measurement route
// exactly without perturbing it.
void SparseChurnWorld::trace_route(const ChurnKernelCtx& ctx,
                                   NodeSlot source, NodeSlot target,
                                   std::uint64_t pair_index) {
  StepResult (*step_fn)(const ChurnKernelCtx&, NodeSlot, std::uint64_t,
                        std::uint64_t) =
      geometry_ == SparseChurnGeometry::kKademlia ? &step_xor
                                                  : &step_clockwise;
  obs::RouteTrace trace;
  trace.shard = trace_shard_;
  trace.round = round_;
  trace.pair_index = pair_index;
  trace.source_slot = source;
  trace.source_id = ctx.ids[source];
  trace.target_id = ctx.ids[target];
  NodeSlot cur = source;
  std::uint64_t cur_id = trace.source_id;
  std::uint64_t hops = 0;
  for (;;) {
    if (cur == target) {
      trace.status = 0;  // arrived
      break;
    }
    if (hops >= max_hops_) {
      trace.status = 2;  // hop limit
      break;
    }
    const StepResult next = step_fn(ctx, cur, cur_id, trace.target_id);
    if (next.next == kNoSlot) {
      trace.status = 1;  // dropped
      break;
    }
    obs::RouteHop hop;
    hop.slot = next.next;
    hop.id = next.next_id;
    hop.rank = -1;
    hop.gen_ok = false;
    // Recover the rank: the chosen entry lives in the forwarding node's
    // table row (rank = cell index) or its successor list (rank = -1);
    // match on slot + cached id so a recycled slot in another cell can't
    // alias the pick.
    const std::uint64_t row_base =
        cur * static_cast<std::uint64_t>(ctx.row_width);
    for (int j = 0; j < ctx.row_width; ++j) {
      const std::uint64_t off = row_base + static_cast<std::uint64_t>(j);
      if (ctx.table[off] == next.next && ctx.table_id[off] == next.next_id &&
          ctx_entry_valid(ctx, ctx.table[off], ctx.table_gen[off])) {
        hop.rank = j;
        hop.gen_ok = true;
        break;
      }
    }
    if (hop.rank < 0) {
      const std::uint64_t succ_base =
          cur * static_cast<std::uint64_t>(ctx.s);
      for (int t = 0; t < ctx.s; ++t) {
        const std::uint64_t off = succ_base + static_cast<std::uint64_t>(t);
        if (ctx.successors[off] == next.next &&
            ctx.successors_id[off] == next.next_id &&
            ctx_entry_valid(ctx, ctx.successors[off],
                            ctx.successors_gen[off])) {
          hop.gen_ok = true;
          break;
        }
      }
    }
    trace.hops.push_back(hop);
    cur = next.next;
    cur_id = next.next_id;
    ++hops;
  }
  trace_sink_->push(std::move(trace));
}

// The scalar reference path: pair by pair through the shared single-route
// core, replicas consulted in attempt order only while unavailable --
// exactly the historical control flow over the drawn chunk.
void SparseChurnWorld::measure_scalar_routes(
    const ChurnKernelCtx& ctx, int attempts,
    sparse::SparseEstimate& estimate) {
  StepResult (*step_fn)(const ChurnKernelCtx&, NodeSlot, std::uint64_t,
                        std::uint64_t) =
      geometry_ == SparseChurnGeometry::kKademlia ? &step_xor
                                                  : &step_clockwise;
  const bool workload = workload_enabled();
  const auto no_sweep = [] {};
  for (const GetDraw& draw : draws_) {
    const std::uint64_t source_id = ctx.ids[draw.source];
    bool available = route_one<false>(
        ctx, step_fn, draw.source, source_id, draw.target,
        ctx.ids[draw.target], max_hops_, load_.data(), &estimate, no_sweep);
    if (!workload) {
      continue;
    }
    ++estimate.gets;
    for (int a = 1; a < attempts && !available; ++a) {
      const NodeSlot holder = membership_.ring_successor(
          draw.position, static_cast<std::uint64_t>(a));
      if (!membership_.present(holder)) {
        continue;  // the replica departed with its holder
      }
      available =
          holder == draw.source  // the source holds the replica itself
              ? true
              : route_one<false>(ctx, step_fn, draw.source, source_id, holder,
                                 ctx.ids[holder], max_hops_, load_.data(),
                                 nullptr, no_sweep);
    }
    if (available) {
      ++estimate.gets_available;
    }
  }
}

// The batched path: the drawn chunk feeds the 8 SoA lanes; replica
// attempts are failure-driven (attempt a launches only once attempts
// 0..a-1 have failed, via the LIFO retry worklist), so exactly the scalar
// attempt set gets routed.  Every recorded quantity -- estimate counters,
// availability flags, load bumps -- is a commutative sum over that
// identical set, so lane scheduling cannot change the merged result;
// per-pair equality against measure_scalar_routes is gated in
// test_sparse_churn.
void SparseChurnWorld::measure_batched_routes(
    const ChurnKernelCtx& ctx, int attempts,
    sparse::SparseEstimate& estimate) {
  const bool workload = workload_enabled();
  const bool xor_geometry = geometry_ == SparseChurnGeometry::kKademlia;
  const auto n = static_cast<std::uint32_t>(draws_.size());
  get_available_.assign(n, 0);
  retry_.clear();
  std::uint32_t next = 0;
  int lane_attempt[RouteBatch::kLanes] = {};
  const auto launch = [&](RouteBatch& b, int l, std::uint32_t pair,
                          int attempt, NodeSlot target) {
    const GetDraw& draw = draws_[pair];
    b.rank[l] = pair;  // the lane's GET tag
    lane_attempt[l] = attempt;
    b.cur[l] = draw.source;
    b.dist[l] = ctx.ids[draw.source];
    b.target[l] = target;
    b.target_id[l] = ctx.ids[target];
    b.hops[l] = 0;
    if (xor_geometry) {
      prefetch_xor_bucket(ctx, draw.source, b.dist[l], b.target_id[l]);
    } else {
      prefetch_ring_row(ctx, draw.source);
    }
  };
  const auto refill = [&](RouteBatch& b, int l) -> bool {
    for (;;) {
      std::uint32_t pair;
      int attempt;
      if (!retry_.empty()) {
        pair = retry_.back().first;
        attempt = retry_.back().second;
        retry_.pop_back();
      } else if (next < n) {
        pair = next++;
        attempt = 0;
      } else {
        return false;
      }
      const GetDraw& draw = draws_[pair];
      if (attempt == 0) {
        launch(b, l, pair, attempt, draw.target);
        return true;
      }
      const NodeSlot holder = membership_.ring_successor(
          draw.position, static_cast<std::uint64_t>(attempt));
      if (!membership_.present(holder)) {
        // The replica departed with its holder: fall through to the
        // next attempt without routing, like the scalar `continue`.
        if (attempt + 1 < attempts) {
          retry_.emplace_back(pair, attempt + 1);
        }
        continue;
      }
      if (holder == draw.source) {
        get_available_[pair] = 1;  // the source holds the replica itself
        continue;
      }
      launch(b, l, pair, attempt, holder);
      return true;
    }
  };
  const auto retire = [&](RouteBatch& b, int l, SparseRouteStatus status,
                          NodeSlot drop_slot) {
    if (lane_attempt[l] == 0) {
      // Attempt 0 is what the routing estimate records (the historical
      // uniform route / primary GET).  A drop is classified at the slot
      // that had no admissible hop -- the lane's pre-step position, which
      // is exactly the `cur` the scalar path classifies at.
      flat::record_route(estimate, status,
                         static_cast<std::uint64_t>(b.hops[l]),
                         status == SparseRouteStatus::kDropped
                             ? classify_drop(ctx, drop_slot)
                             : obs::RouteFailure::kDeadEntry);
    }
    if (!workload) {
      return;
    }
    if (status == SparseRouteStatus::kArrived) {
      get_available_[b.rank[l]] = 1;
    } else if (lane_attempt[l] + 1 < attempts) {
      retry_.emplace_back(b.rank[l], lane_attempt[l] + 1);
    }
  };
  if (xor_geometry) {
    drive_churn_lanes(ctx, max_hops_, load_.data(), step_batch_xor, refill,
                      retire);
  } else {
    drive_churn_lanes(ctx, max_hops_, load_.data(), step_batch_ring,
                      refill, retire);
  }
  if (workload) {
    estimate.gets += n;
    for (const std::uint8_t available : get_available_) {
      estimate.gets_available += available;
    }
  }
}

sparse::SparseEstimate SparseChurnWorld::measure(std::uint64_t pairs) {
  return measure(pairs, measure_rng_);
}

sparse::SparseEstimate SparseChurnWorld::measure_inflight(
    std::uint64_t pairs, std::uint64_t events_per_hop, math::Rng& rng) {
  // The in-flight round fuses the lifecycle sweep into the routes (each
  // hop advances the world), so the whole body is one route-phase span --
  // nesting lifecycle/commit timers inside it would double-count.
  obs::PhaseTimer route_timer(profile_, obs::Phase::kRoute, trace_);
  ++round_;
  const std::uint64_t capacity = membership_.capacity();
  joiners_.clear();
  std::uint64_t cursor = 0;
  std::uint64_t eph = events_per_hop;
  if (eph == 0) {
    // Derive the rate from the pair budget: one full capacity sweep
    // spread over the round's expected hop count, `pairs` routes of
    // ~log2 N hops each.  Routes shorter than the estimate leave a sweep
    // remainder, flushed below -- the round always completes exactly one
    // lifecycle sweep either way.
    const std::uint64_t population =
        membership_.population() < 2 ? 2 : membership_.population();
    // max(1, ...): pairs == 0 still closes the round (the flush below runs
    // the whole sweep), it just samples nothing.
    const std::uint64_t hop_budget = std::max<std::uint64_t>(
        1, pairs * static_cast<std::uint64_t>(std::bit_width(population)));
    eph = (capacity + hop_budget - 1) / hop_budget;
    eph = eph == 0 ? 1 : eph;
  }
  sparse::SparseEstimate estimate;
  // The ctx pointers stay valid while the world moves: the per-slot
  // arrays never resize, and membership mutations (leave / join) update
  // the packed epoch structure in place.  Ids can change only on rejoin,
  // which happens at lookup boundaries -- never mid-route -- so the
  // cached-id kernels' carried identifiers cannot go stale in flight.
  const ChurnKernelCtx ctx = kernel_ctx();
  StepResult (*step_fn)(const ChurnKernelCtx&, NodeSlot, std::uint64_t,
                        std::uint64_t) =
      geometry_ == SparseChurnGeometry::kKademlia ? &step_xor
                                                  : &step_clockwise;
  // In-flight route through the shared single-route core: the holder's
  // departure drops the message (checked before arrival -- a route
  // "arriving" at a slot that just left gets no reply), and the lifecycle
  // sweep advances under every hop, which is what keeps this path scalar:
  // each hop depends on the sweep the previous hop triggered.  Forwards
  // bump the holding slot's load counter, rng-free as in measure().
  const auto sweep = [&] { advance_sweep(cursor, eph); };
  const auto route_to = [&](NodeSlot source, NodeSlot target,
                            sparse::SparseEstimate* rec) -> bool {
    return route_one<true>(ctx, step_fn, source, ctx.ids[source], target,
                           ctx.ids[target], max_hops_, load_.data(), rec,
                           sweep);
  };
  const bool workload = workload_enabled();
  for (std::uint64_t i = 0; i < pairs; ++i) {
    // Joins become routable at lookup boundaries only: a node that
    // arrived mid-route has not finished bootstrapping until the overlay
    // absorbs it here (id draw, order-index commit, bootstrap, announce).
    // A replicated GET is one lookup transaction: all its attempts run
    // against the membership of its boundary.
    integrate_joiners(/*commit_always=*/false);
    if (membership_.population() < 2) {
      continue;  // nothing to sample this instant; the sweep still flushes
    }
    if (!workload) {
      NodeSlot source = static_cast<NodeSlot>(rng.uniform_below(capacity));
      while (!membership_.present(source)) {
        source = static_cast<NodeSlot>(rng.uniform_below(capacity));
      }
      NodeSlot target = static_cast<NodeSlot>(rng.uniform_below(capacity));
      while (!membership_.present(target) || target == source) {
        target = static_cast<NodeSlot>(rng.uniform_below(capacity));
      }
      route_to(source, target, &estimate);
      continue;
    }
    NodeSlot source;
    NodeSlot primary;
    std::uint64_t position;
    for (;;) {
      source = static_cast<NodeSlot>(rng.uniform_below(capacity));
      while (!membership_.present(source)) {
        source = static_cast<NodeSlot>(rng.uniform_below(capacity));
      }
      const std::uint64_t object = zipf_->sample(rng);
      position = membership_.successor_position(object_keys_.at(object) &
                                                ctx.key_mask);
      primary = membership_.ring_successor(position, 0);
      if (primary != source) {
        break;
      }
    }
    ++estimate.gets;
    bool available = route_to(source, primary, &estimate);
    const auto attempts = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(config_.replicas),
        membership_.order_size()));
    for (int a = 1; a < attempts && !available; ++a) {
      const NodeSlot holder =
          membership_.ring_successor(position, static_cast<std::uint64_t>(a));
      if (!membership_.present(holder)) {
        continue;  // the replica departed with its holder
      }
      available = holder == source  // the source holds the replica itself
                      ? true
                      : route_to(source, holder, nullptr);
    }
    if (available) {
      ++estimate.gets_available;
    }
  }
  // Flush the sweep remainder and close the round: exactly one full
  // lifecycle round per measured round, so the stationary population (and
  // the q_nr bridge) matches the round-synchronous mode.
  advance_sweep(cursor, capacity);
  integrate_joiners(/*commit_always=*/true);
  return estimate;
}

sparse::SparseEstimate SparseChurnWorld::measure_inflight(
    std::uint64_t pairs, std::uint64_t events_per_hop) {
  return measure_inflight(pairs, events_per_hop, measure_rng_);
}

sim::LoadSummary SparseChurnWorld::load_summary() const {
  return sim::summarize_load(load_, [this](std::size_t slot) {
    return membership_.present(static_cast<NodeSlot>(slot));
  });
}

double SparseChurnWorld::alive_fraction() const noexcept {
  return static_cast<double>(membership_.population()) /
         static_cast<double>(membership_.capacity());
}

double SparseChurnWorld::mean_entry_age() const {
  double total = 0.0;
  std::uint64_t counted = 0;
  // Bitmap enumeration preserves the ascending slot order, so the
  // floating-point accumulation is bit-identical to the historical
  // full-capacity scan.
  for_each_alive(membership_, [&](NodeSlot slot) {
    for (int j = 0; j < row_width_; ++j) {
      total += round_ -
               refreshed_at_[slot * static_cast<std::uint64_t>(row_width_) +
                             static_cast<std::uint64_t>(j)];
      ++counted;
    }
  });
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

SparseChurnResult run_sparse_churn_trajectory(
    SparseChurnGeometry geometry, const SparseChurnConfig& config,
    const ChurnParams& params, const TrajectoryOptions& options,
    const math::Rng& rng) {
  validate_trajectory_options(options);
  DHT_CHECK(options.trace_routes == 0 || !options.inflight,
            "route forensics requires the round-synchronous mode (in-flight "
            "routes have no frozen snapshot to re-route against)");
  (void)availability(params);

  const std::uint64_t shards =
      options.shards != 0 ? options.shards : kDefaultTrajectoryShards;
  const int rounds = options.measured_rounds;
  std::vector<std::vector<sparse::SparseEstimate>> shard_rounds(shards);
  std::vector<double> population_sum(shards, 0.0);
  std::vector<double> alive_sum(shards, 0.0);
  std::vector<double> age_sum(shards, 0.0);
  std::vector<sim::LoadSummary> shard_loads(shards);
  // Timing side-channel only: per-shard profiles reduce in shard order
  // below; a null profile/trace reads no clock anywhere.
  const bool observed = options.profile != nullptr || options.trace != nullptr;
  std::vector<obs::PhaseProfile> shard_profiles(observed ? shards : 0);
  // Forensics sinks: each shard keeps the newest `budget` traces of the
  // pairs its stride selects -- both pure functions of (shard, round, pair
  // index), so the drained set is bit-identical at any thread count.
  std::vector<obs::RouteTraceSink> shard_sinks;
  if (options.trace_routes != 0) {
    const std::uint64_t budget =
        std::max<std::uint64_t>(1, options.trace_routes / shards);
    const std::uint64_t per_shard_pairs =
        options.pairs_per_round * static_cast<std::uint64_t>(rounds);
    const std::uint64_t stride =
        std::max<std::uint64_t>(1, per_shard_pairs / budget);
    shard_sinks.reserve(shards);
    for (std::uint64_t s = 0; s < shards; ++s) {
      shard_sinks.emplace_back(stride, budget);
    }
  }

  sim::run_sharded(
      shards,
      sim::PoolOptions{.threads = sim::resolve_threads(options.threads),
                       // Replica worlds are heavy; claim one at a time so
                       // the tail load-balances.
                       .chunk = 1,
                       .pin_workers = options.pin_workers},
      [&](std::uint64_t s) {
        obs::PhaseProfile* const profile =
            observed ? &shard_profiles[s] : nullptr;
        // Shard s is an independent replica of the whole trajectory, a
        // pure function of (caller seed, s).  Its world is allocated here,
        // on the (optionally pinned) worker, so first touch places it on
        // the worker's socket.
        obs::PhaseTimer build_timer(profile, obs::Phase::kWorldBuild,
                                    options.trace);
        SparseChurnWorld world(geometry, config, params,
                               options.repair_probability, options.max_hops,
                               rng.fork(s));
        build_timer.stop();
        world.set_batch_routes(options.batch_routes);
        world.set_observer(profile, options.trace);
        if (!shard_sinks.empty()) {
          world.set_route_trace(&shard_sinks[s], s);
        }
        for (int i = 0; i < options.warmup_rounds; ++i) {
          world.step();
        }
        auto& mine = shard_rounds[s];
        mine.reserve(static_cast<std::size_t>(rounds));
        for (int r = 0; r < rounds; ++r) {
          if (options.inflight) {
            // In-flight: the round's lifecycle advances DURING the
            // measured routes (measure_inflight steps the round itself).
            mine.push_back(world.measure_inflight(
                options.pairs_per_round, options.inflight_events_per_hop));
          } else {
            world.step();
            mine.push_back(world.measure(options.pairs_per_round));
          }
          population_sum[s] += static_cast<double>(world.population());
          alive_sum[s] += world.alive_fraction();
          age_sum[s] += world.mean_entry_age();
        }
        shard_loads[s] = world.load_summary();
      });

  SparseChurnResult result;
  result.shards = shards;
  result.per_round.resize(static_cast<std::size_t>(rounds));
  {
    obs::PhaseProfile merge_profile;
    obs::PhaseTimer merge_timer(observed ? &merge_profile : nullptr,
                                obs::Phase::kMerge, options.trace);
    for (int r = 0; r < rounds; ++r) {
      for (std::uint64_t s = 0; s < shards; ++s) {
        result.per_round[static_cast<std::size_t>(r)].merge(
            shard_rounds[s][static_cast<std::size_t>(r)]);
      }
      result.overall.merge(result.per_round[static_cast<std::size_t>(r)]);
    }
    merge_timer.stop();
    if (options.profile != nullptr) {
      for (const obs::PhaseProfile& p : shard_profiles) {
        options.profile->merge(p);
      }
      options.profile->merge(merge_profile);
    }
  }
  // Drain the forensics sinks in shard order: the concatenation is the
  // same regardless of which worker ran which shard.
  for (obs::RouteTraceSink& sink : shard_sinks) {
    for (obs::RouteTrace& trace : sink.drain()) {
      result.traces.push_back(std::move(trace));
    }
  }
  double population_total = 0.0;
  double alive_total = 0.0;
  double age_total = 0.0;
  for (std::uint64_t s = 0; s < shards; ++s) {
    population_total += population_sum[s];
    alive_total += alive_sum[s];
    age_total += age_sum[s];
  }
  // validate_trajectory_options guarantees rounds >= 1 and shards >= 1, but
  // keep the division guarded: an empty run must surface zeroed
  // diagnostics, never NaN leaking into JSONL.
  const double snapshots =
      static_cast<double>(shards) * static_cast<double>(rounds);
  result.mean_population =
      snapshots > 0.0 ? population_total / snapshots : 0.0;
  result.mean_alive_fraction = snapshots > 0.0 ? alive_total / snapshots : 0.0;
  result.mean_entry_age = snapshots > 0.0 ? age_total / snapshots : 0.0;
  // Load reduction in shard order: the hottest slot of any world, and the
  // shape statistics averaged over worlds (each shard is an independent
  // trajectory; max commutes, so the result is thread-count-independent).
  double p99_total = 0.0;
  double cv_total = 0.0;
  for (std::uint64_t s = 0; s < shards; ++s) {
    result.load_max = std::max(result.load_max, shard_loads[s].max);
    p99_total += static_cast<double>(shard_loads[s].p99);
    cv_total += shard_loads[s].cv;
  }
  result.load_p99 = p99_total / static_cast<double>(shards);
  result.load_cv = cv_total / static_cast<double>(shards);
  return result;
}

std::vector<SparseChurnSweepPoint> run_sparse_churn_sweep(
    const SparseChurnSweepSpec& spec) {
  DHT_CHECK(!spec.bits.empty(), "sweep needs at least one bits value");
  DHT_CHECK(!spec.populations.empty(),
            "sweep needs at least one population value");
  DHT_CHECK(!spec.churn.empty(), "sweep needs at least one churn point");
  DHT_CHECK(!spec.repair.empty(), "sweep needs at least one repair value");
  DHT_CHECK(!spec.successors.empty(),
            "sweep needs at least one successor-list length");
  const math::Rng root(spec.seed);
  std::vector<SparseChurnSweepPoint> points;
  points.reserve(spec.bits.size() * spec.populations.size() *
                 spec.churn.size() * spec.repair.size() *
                 spec.successors.size());
  std::uint64_t index = 0;
  for (const int bits : spec.bits) {
    for (const std::uint64_t population : spec.populations) {
      for (const ChurnParams& params : spec.churn) {
        std::uint64_t capacity = capacity_for_population(population, params);
        if (bits < 26 && capacity > (std::uint64_t{1} << bits)) {
          capacity = std::uint64_t{1} << bits;  // dense-limit clamp
        }
        for (const double rho : spec.repair) {
          for (const int s : spec.successors) {
            SparseChurnConfig config;
            config.bits = bits;
            config.capacity = capacity;
            config.successors = s;
            config.shortcuts = spec.shortcuts;
            config.bucket_k = spec.bucket_k;
            config.session = spec.session;
            config.replicas = spec.replicas;
            config.zipf_s = spec.zipf_s;
            config.objects = spec.objects;
            TrajectoryOptions options = spec.options;
            options.repair_probability = rho;
            SparseChurnSweepPoint point;
            point.bits = bits;
            point.population = population;
            point.capacity = capacity;
            point.params = params;
            point.repair_probability = rho;
            point.successors = s;
            point.q_eff = effective_q(params);
            point.result = run_sparse_churn_trajectory(
                spec.geometry, config, params, options, root.fork(index));
            points.push_back(std::move(point));
            ++index;
          }
        }
      }
    }
  }
  return points;
}

}  // namespace dht::churn
