// Dynamic-membership churn over non-fully-populated identifier spaces --
// the fusion of the repo's two flagship engines.
//
// The dense churn engine (churn/trajectory.hpp) evolves liveness on a fixed
// fully-populated roster; the sparse engine (sparse/flat_sparse.hpp) routes
// static populations scattered in huge key spaces.  Here N itself evolves:
// a SparseChurnWorld runs a slot roster (churn/membership.hpp) over a 2^d
// key space (d <= 63) in which joining nodes draw fresh identifiers,
// bootstrap their row-major tables (Chord fingers / Kademlia bucket
// contacts / Symphony harmonic shortcuts) against the current membership,
// and leaving nodes are removed -- their in-edges decay until lazy refresh
// (every R rounds per entry), eager repair (the rho knob), or
// successor-list repair re-points them.  Entries are stamped with the
// target slot's occupancy generation: a departed node's in-edges stay dead
// even after the slot is recycled, because in dynamic membership
// identities never return.  That drops the rebirth term from the dense
// q_eff bridge -- the engine's routability tracks the static model at the
// *no-return* effective failure probability q_nr(R) = effective_q_no_return
// (churn/churn.hpp), the dynamic-membership generalization of PR 2's
// bridge, asserted in test_sparse_churn.
//
// The successor-list model (the paper's "sequential neighbors", Section 2,
// finally run under churn): each node keeps its s clockwise successors.
// Routing may fall back on the list when the table offers no admissible
// alive hop, and per-round maintenance repairs a broken list by consulting
// the list itself -- the first alive entry seeds the rebuilt list -- before
// falling back to a full table rebuild when every entry is dead.  s = 0
// disables the list and recovers the pure-table decay model.
//
// Estimation reuses the replica sharding of the dense churn engine: shard k
// forks the caller's generator (Rng::fork(k)) and owns a private world, so
// the whole trajectory is a pure function of (seed, k); per-(shard, round)
// SparseEstimates (exact integer counters) are merged round-wise in shard
// order -- bit-identical at any thread count.  Grid sweeps over
// (N0, d, churn, rho, s) ride run_sparse_churn_sweep; the dense-limit
// oracle (capacity = 2^d, join rate = rebirth, leave rate = death) pins the
// engine to the PR 2 q_eff bridge in test_sparse_churn.
//
// Three live-churn realism axes ride on top of the round-synchronous
// engine (all default-off, all bit-compatible with the historical
// defaults):
//  * In-flight lookup measurement (TrajectoryOptions::inflight /
//    measure_inflight): the round's lifecycle sweep advances DURING each
//    measured route, so a lookup can lose its next hop -- or the node
//    holding the message -- mid-flight; joins integrate at lookup
//    boundaries.
//  * k-bucket Kademlia (SparseChurnConfig::bucket_k): up to k contacts
//    per bucket in insertion order, dead-observed LRU eviction, announce
//    inserts at the first free cell; k = 1 reproduces the single-contact
//    engine bit for bit (golden-pinned).
//  * Heavy-tailed sessions (SparseChurnConfig::session): geometric or
//    discrete shifted-Pareto lifetimes at the same mean 1/pd, with the
//    generalized no-return bridge effective_q_no_return(params, model).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "churn/membership.hpp"
#include "churn/trajectory.hpp"
#include "math/rng.hpp"
#include "math/zipf.hpp"
#include "obs/route_trace.hpp"
#include "sim/load_stats.hpp"
#include "sparse/sparse_overlay.hpp"

namespace dht::churn {

struct ChurnKernelCtx;  // flattened routing view (sparse_trajectory.cpp)

/// Geometries of the sparse churn world (the three sparse overlay
/// families; named like the dhtscale_cli sparse geometries).
enum class SparseChurnGeometry {
  kChord,     // "ring": successor-of-key fingers, greedy clockwise
  kKademlia,  // "xor": bucket contacts, XOR-greedy bucket walk
  kSymphony,  // "symphony": harmonic shortcuts, greedy clockwise
};

/// Maps "ring" | "xor" | "symphony" to the enum; anything else is false.
bool sparse_churn_geometry_from_name(std::string_view name,
                                     SparseChurnGeometry& out);

const char* to_string(SparseChurnGeometry geometry) noexcept;

struct SparseChurnConfig {
  /// Key-space bits (1 <= bits <= 63).
  int bits = 32;
  /// Slot-roster size C.  Each slot runs the two-state lifecycle of
  /// churn/churn.hpp (present w.p. a = pr/(pd+pr) at stationarity), so the
  /// stationary population is a * C.  Capacity <= min(2^bits, 2^26).
  std::uint64_t capacity = std::uint64_t{1} << 14;
  /// Successor-list length s (0 disables sequential neighbors).
  int successors = 4;
  /// Symphony shortcut count ks (ignored by the other geometries).
  int shortcuts = 6;
  /// Join-announcement budget: how many nearby nodes a joiner installs
  /// itself into (Kademlia's self-lookup deep-bucket inserts; 0 disables).
  /// The ring geometries announce to the clockwise predecessor's successor
  /// list instead (Chord's notify), which costs nothing extra.  Without
  /// announcement a newcomer is invisible to in-edges until their owners
  /// refresh -- up to R rounds of arrival blindness the dense model cannot
  /// express, because there a reborn node keeps its identity and every
  /// stale in-edge revives instantly.
  int announce = 8;
  /// Kademlia bucket width k (the Roos et al. k-bucket model): each of the
  /// d buckets holds up to k contacts in insertion order -- longest-lived
  /// at the head, newcomers at the tail.  Routing probes a bucket head
  /// first (Kademlia's preference for long-lived contacts, which the
  /// heavy-tailed session model rewards); maintenance evicts a contact
  /// observed dead by compacting the bucket and refreshing the freed tail
  /// cell (the LRU replacement), and join announcement inserts into the
  /// first free cell.  k = 1 reproduces the single-contact rows of the
  /// pre-k engine bit for bit.  Ignored by the ring geometries.
  int bucket_k = 1;
  /// Session-length distribution of the lifecycle (churn/churn.hpp):
  /// geometric (memoryless, the historical model) or heavy-tailed Pareto
  /// with the same mean session 1/pd.
  SessionModel session{};
  /// r-way object replication over the successor list: a GET succeeds when
  /// ANY of the object key's first r clockwise present holders is reached
  /// (attempt 0, toward the primary, is what the routing estimate records;
  /// the extra attempts feed only the availability counters).  replicas = 1
  /// together with zipf_s = 0 keeps the historical uniform-pair
  /// measurement, bit for bit.
  int replicas = 1;
  /// Zipf skew of object popularity for the measured GETs (0 = uniform
  /// over objects; only meaningful with the workload measurement engaged,
  /// i.e. replicas > 1 or zipf_s > 0).
  double zipf_s = 0.0;
  /// Distinct objects (0 = one per roster slot).  Capped at 2^26.
  std::uint64_t objects = 0;
};

/// The capacity whose stationary population is `population`:
/// round(population / availability(params)).
std::uint64_t capacity_for_population(std::uint64_t population,
                                      const ChurnParams& params);

/// One dynamic sparse overlay world: membership churn (joins draw fresh
/// ids, leaves free slots), per-entry lazy refresh every R rounds, optional
/// eager repair of entries observed dead (rho), per-round successor-list
/// maintenance, and routing against the *current* membership via flattened
/// slot-indexed kernels.  The constructor only fork()s the caller's
/// generator, so a world's trajectory is a pure function of (rng lineage,
/// inputs).
class SparseChurnWorld {
 public:
  /// Starts at the stationary membership (each slot present w.p. a) with
  /// fresh tables and refresh phases staggered uniformly.  `max_hops` of 0
  /// selects the default cap C; hits land in the hop_limit_hits canary.
  SparseChurnWorld(SparseChurnGeometry geometry,
                   const SparseChurnConfig& config, const ChurnParams& params,
                   double repair_probability, std::uint64_t max_hops,
                   const math::Rng& rng);

  /// Advances one round: lifecycle flips (leaves + joins with fresh ids),
  /// order-index commit, joiner bootstraps + join announcements,
  /// successor-list maintenance, due refreshes, and eager repair.
  void step();

  /// Samples `pairs` routes among currently-present pairs against the
  /// stored (possibly stale) tables.  With fewer than two present nodes
  /// there is nothing to sample: returns an empty estimate (the
  /// ChurnWorld::measure contract).
  ///
  /// All per-pair randomness (sources, targets, Zipf objects) is drawn up
  /// front in pair order; routing itself is rng-free, so the measurement
  /// stream is byte-for-byte the historical interleaved one.  The routes
  /// then run either through the 8-lane SoA batch driver (the default) or
  /// the scalar reference path -- bit-identical by construction, because
  /// every recorded quantity (estimate counters, per-slot load adds) is
  /// commutative and the batch executes exactly the scalar attempt set.
  sparse::SparseEstimate measure(std::uint64_t pairs, math::Rng& rng);

  /// Same, drawing from the world's own measurement sub-stream.
  sparse::SparseEstimate measure(std::uint64_t pairs);

  /// One in-flight measured round: advances the round AND samples `pairs`
  /// routes while the world moves underneath them.  Instead of the
  /// step()-then-measure freeze, the round's lifecycle sweep (leaves,
  /// join draws, per-slot maintenance) is spread across the routes --
  /// `events_per_hop` slots advance after every hop (0 derives the rate
  /// from `pairs`: one full sweep over pairs x ~log2 N expected hops), so
  /// a lookup can lose its next hop, or the node currently holding the
  /// message, mid-flight.  Joiners collected by the sweep are integrated
  /// (id draw, order-index commit, bootstrap, announcement) at lookup
  /// boundaries -- a join becomes routable only once the overlay absorbs
  /// it.  Any sweep remainder is flushed at the end, so a measured round
  /// always performs exactly one full lifecycle round and the stationary
  /// population matches the round-synchronous mode.
  sparse::SparseEstimate measure_inflight(std::uint64_t pairs,
                                          std::uint64_t events_per_hop,
                                          math::Rng& rng);

  /// Same, drawing from the world's own measurement sub-stream.
  sparse::SparseEstimate measure_inflight(std::uint64_t pairs,
                                          std::uint64_t events_per_hop = 0);

  /// Selects the sync-mode route engine: true (default) routes GETs in
  /// 8-lane struct-of-arrays batches; false keeps the scalar reference
  /// path.  Results are bit-identical either way (gated in
  /// test_sparse_churn); the knob exists for A/B measurement and the
  /// equality tests.  In-flight measurement is always scalar: the
  /// lifecycle sweep advances under every hop, so routes are inherently
  /// sequential.
  void set_batch_routes(bool batched) noexcept { batch_routes_ = batched; }
  bool batch_routes() const noexcept { return batch_routes_; }

  int round() const noexcept { return round_; }
  std::uint64_t population() const noexcept {
    return membership_.population();
  }
  std::uint64_t capacity() const noexcept { return membership_.capacity(); }
  /// Population over capacity (tracks availability a at stationarity).
  double alive_fraction() const noexcept;
  /// Cumulative membership turnover (diagnostics).
  std::uint64_t total_joins() const noexcept { return total_joins_; }
  std::uint64_t total_leaves() const noexcept { return total_leaves_; }

  /// Mean age (rounds since refresh) over present nodes' table entries --
  /// the q_eff derivation's uniform-age diagnostic.
  double mean_entry_age() const;

  const SparseMembership& membership() const noexcept { return membership_; }

  /// Digest of the per-slot forwarded-message counters over present slots
  /// (accumulated by every measured route; rng-free, so recording never
  /// perturbs the lifecycle/table/measure streams).
  sim::LoadSummary load_summary() const;

  /// Attaches observability sinks (obs/phase_timer.hpp): step() attributes
  /// its lifecycle sweep, joiner commit, and refresh/repair pass, and the
  /// measure paths their route sampling, to the profile/trace.  In-flight
  /// measurement fuses the lifecycle sweep INTO the routes, so
  /// measure_inflight attributes its whole body to the route phase.  Pure
  /// timing side-channels: null (the default) reads no clock, and
  /// attaching them never changes a counter.
  void set_observer(obs::PhaseProfile* profile, obs::Trace* trace) noexcept {
    profile_ = profile;
    trace_ = trace;
  }

  /// Attaches a route-forensics sink (obs/route_trace.hpp): sync-mode
  /// measure() re-routes the pairs the sink's stride selects against the
  /// frozen round snapshot, recording each hop's (slot, id, table rank,
  /// generation check).  The re-route touches no load counter and no rng,
  /// so estimates and goldens are unchanged.  `shard` labels the records.
  void set_route_trace(obs::RouteTraceSink* sink,
                       std::uint64_t shard) noexcept {
    trace_sink_ = sink;
    trace_shard_ = shard;
  }

 private:
  bool workload_enabled() const noexcept {
    return config_.replicas > 1 || config_.zipf_s > 0.0;
  }
  std::uint64_t object_count() const noexcept {
    return config_.objects != 0 ? config_.objects : membership_.capacity();
  }
  bool entry_valid(NodeSlot entry, std::uint32_t generation) const;
  ChurnKernelCtx kernel_ctx() const;
  // Route one chunk of draws_ (scalar reference path / 8-lane batched
  // path); both consume no rng and record identical per-pair outcomes.
  void measure_scalar_routes(const ChurnKernelCtx& ctx, int attempts,
                             sparse::SparseEstimate& estimate);
  void measure_batched_routes(const ChurnKernelCtx& ctx, int attempts,
                              sparse::SparseEstimate& estimate);
  void refresh_entry(NodeSlot slot, int index);
  void announce_join(NodeSlot slot);
  void rebuild_tables(NodeSlot slot);
  void rebuild_successors(NodeSlot slot, std::uint64_t from_position);
  void maintain_successors(NodeSlot slot);
  void maintain_entries(NodeSlot slot);
  void maintain_kademlia_buckets(NodeSlot slot);
  void rebuild_node(NodeSlot slot);
  void lifecycle_and_maintain_slot(NodeSlot slot);
  void integrate_joiners(bool commit_always);
  void advance_sweep(std::uint64_t& cursor, std::uint64_t slots);
  // Re-routes one selected pair against the frozen round snapshot and
  // pushes the hop record into trace_sink_ (sync mode only; rng-free, no
  // load accounting).
  void trace_route(const ChurnKernelCtx& ctx, NodeSlot source,
                   NodeSlot target, std::uint64_t pair_index);

  const SparseChurnGeometry geometry_;
  const SparseChurnConfig config_;
  const ChurnParams params_;
  const double repair_probability_;
  const std::uint64_t max_hops_;
  const int row_width_;
  const SessionProcess session_;
  math::Rng lifecycle_rng_;
  math::Rng table_rng_;
  math::Rng measure_rng_;
  math::Rng id_rng_;
  int round_ = 0;
  SparseMembership membership_;
  std::uint64_t total_joins_ = 0;
  std::uint64_t total_leaves_ = 0;
  // Round each slot's current occupant joined; with heavy-tailed sessions
  // the departure hazard depends on this age (negative stamps encode the
  // stationary ages the world is initialized with).
  std::vector<std::int64_t> joined_at_;
  // Row-major [slot][index] table entries, the generation each entry was
  // installed against (an entry is valid only while its target slot keeps
  // that generation -- identities never return), and the round each entry
  // was refreshed.
  std::vector<NodeSlot> table_;
  std::vector<std::uint32_t> table_gen_;
  std::vector<std::int32_t> refreshed_at_;
  // Install-time identifier of each entry's target, cached row-major next
  // to the entries.  While an entry is valid its target's id cannot have
  // changed (ids change only on rejoin, which bumps the generation), so
  // the kernels compute progress / XOR distance from this sequential row
  // instead of chasing ids_[entry] pointers; invalid entries yield garbage
  // geometry but are rejected by the validity probe exactly as before.
  // Empty cells store the row owner's own id: zero clockwise progress /
  // XOR distance equal to the owner's, inadmissible in both metrics, so
  // they fall out arithmetically.
  std::vector<std::uint64_t> table_id_;
  // Earliest round at which a slot's row can hold a due entry
  // (min refreshed_at over the row + R, maintained conservatively: stamps
  // only increase between scans).  Lets rho = 0 maintenance skip whole
  // rows without touching them -- a skipped row consumes no rng, exactly
  // like a scanned row with nothing due.
  std::vector<std::int32_t> table_due_round_;
  // Row-major [slot][0..s) successor lists + generations + cached target
  // ids (same discipline as table_id_) + per-node refresh stamps.
  std::vector<NodeSlot> successors_;
  std::vector<std::uint32_t> successors_gen_;
  std::vector<std::uint64_t> successors_id_;
  std::vector<std::int32_t> successors_refreshed_at_;
  // Scratch for step() (avoids per-round allocation).
  std::vector<NodeSlot> joiners_;
  // Sync-mode measurement scratch, reused across rounds: the up-front
  // per-pair draws, the per-GET availability flags, and the batch
  // driver's failed-attempt worklist.
  struct GetDraw {
    NodeSlot source = kNoSlot;
    NodeSlot target = kNoSlot;      // attempt-0 holder (the primary)
    std::uint64_t position = 0;     // ring position of the primary
  };
  std::vector<GetDraw> draws_;
  std::vector<std::uint8_t> get_available_;
  std::vector<std::pair<std::uint32_t, int>> retry_;  // (pair, attempt)
  bool batch_routes_ = true;
  // Messages forwarded per slot across all measured routes (plain u64: the
  // world is single-threaded; see sim/load_stats.hpp for the shapes).
  std::vector<std::uint64_t> load_;
  // Workload measurement state (engaged by replicas > 1 or zipf_s > 0):
  // object popularity and the fixed object->key hash.  The key map is
  // independent of the world's rng lineage, so object placement is a
  // property of the key space alone.
  std::optional<math::ZipfSampler> zipf_;
  math::CounterRng object_keys_;
  // Observability sinks (all optional, all timing/forensics side-channels
  // that never feed back into the trajectory).
  obs::PhaseProfile* profile_ = nullptr;
  obs::Trace* trace_ = nullptr;
  obs::RouteTraceSink* trace_sink_ = nullptr;
  std::uint64_t trace_shard_ = 0;
};

/// Result of a sharded sparse churn trajectory; the sparse counterpart of
/// churn::TrajectoryResult, with SparseEstimate as the merged currency.
struct SparseChurnResult {
  std::uint64_t shards = 0;
  /// Round r's estimate pooled across shards (merged in shard order).
  std::vector<sparse::SparseEstimate> per_round;
  /// All measured rounds pooled in round order.
  sparse::SparseEstimate overall;
  /// Population averaged over (shard, measured round) snapshots.
  double mean_population = 0.0;
  /// Population / capacity, same averaging (tracks a at stationarity).
  double mean_alive_fraction = 0.0;
  /// Mean table-entry age of present nodes, same averaging.
  double mean_entry_age = 0.0;
  /// Per-node load digest of the measured routes: hottest slot across all
  /// shard worlds, and p99 / coefficient-of-variation averaged over shards
  /// in shard order (each shard world is an independent trajectory).
  std::uint64_t load_max = 0;
  double load_p99 = 0.0;
  double load_cv = 0.0;
  /// Sampled hop-by-hop route traces (TrajectoryOptions::trace_routes),
  /// collected per shard and concatenated in shard order -- deterministic
  /// at any thread count.  Empty when tracing is off.
  std::vector<obs::RouteTrace> traces;
};

/// Runs the sharded sparse churn trajectory; reuses TrajectoryOptions
/// (warmup/measured rounds, pairs per round, shards, threads, max hops,
/// rho).  `rng` is only fork()ed.  Bit-identical at any thread count.
SparseChurnResult run_sparse_churn_trajectory(SparseChurnGeometry geometry,
                                              const SparseChurnConfig& config,
                                              const ChurnParams& params,
                                              const TrajectoryOptions& options,
                                              const math::Rng& rng);

/// One evaluated grid point of a sparse churn sweep.
struct SparseChurnSweepPoint {
  int bits = 0;
  std::uint64_t population = 0;  ///< target stationary population N0
  std::uint64_t capacity = 0;    ///< derived roster size
  ChurnParams params;
  double repair_probability = 0.0;
  int successors = 0;
  double q_eff = 0.0;  ///< the PR 2 static-model bridge value for `params`
  SparseChurnResult result;
};

/// A (N0, d, churn, rho, s) grid.  Points are the cartesian product in that
/// nesting order (bits outermost, successors innermost); point i uses
/// Rng(seed).fork(i), so each point is reproducible independent of the grid
/// shape.  Capacity is derived per point as capacity_for_population.
struct SparseChurnSweepSpec {
  SparseChurnGeometry geometry = SparseChurnGeometry::kChord;
  std::vector<int> bits = {32};
  std::vector<std::uint64_t> populations = {std::uint64_t{1} << 14};
  std::vector<ChurnParams> churn = {ChurnParams{}};
  std::vector<double> repair = {0.0};
  std::vector<int> successors = {4};
  int shortcuts = 6;
  /// Kademlia bucket width and session model, applied to every point.
  int bucket_k = 1;
  SessionModel session{};
  /// Replication factor, object-popularity skew, and object count,
  /// applied to every point (SparseChurnConfig semantics).
  int replicas = 1;
  double zipf_s = 0.0;
  std::uint64_t objects = 0;
  TrajectoryOptions options{};
  std::uint64_t seed = 1;
};

std::vector<SparseChurnSweepPoint> run_sparse_churn_sweep(
    const SparseChurnSweepSpec& spec);

}  // namespace dht::churn
