// Churn-aware sharded trajectory sweeps for the parallel engine.
//
// The static parallel engine (sim/parallel_monte_carlo.hpp) splits a fixed
// pair budget over shards of ONE immutable (overlay, FailureScenario)
// world.  Churn breaks that model: liveness and tables evolve round by
// round.  This engine keeps bit-reproducibility by changing the statistical
// model instead -- **shards as independent replicas of the trajectory**:
//
//  * Shard k forks the caller's generator (Rng::fork(k)) and owns a private
//    world: its own liveness mask, its own routing tables, its own
//    lifecycle / table / measurement sub-streams.  The whole trajectory a
//    shard produces is a pure function of (caller seed, k).
//  * Each shard evolves its world through warmup + measured rounds --
//    two-state node lifecycles, rejoiner table rebuilds, lazy entry refresh
//    every R rounds (churn/churn.hpp), and optionally per-round eager
//    repair of detected-dead entries (the rho knob of sim/repair.hpp) --
//    and samples `pairs_per_round` routes after every measured round.
//  * Per-(shard, round) RoutabilityEstimates are merged round-wise in
//    shard order.  All counters are exact integers, so the per-round and
//    pooled results are bit-identical at any thread count.
//
// Unlike the static engine, where shards partition a fixed budget, a
// trajectory shard IS a replica: more shards = more independent dynamic
// systems = tighter estimates and more work.  Keep `shards` fixed when
// comparing runs.
//
// Each replica is a ChurnWorld (churn/churn.hpp): the lifecycle +
// lazy-refresh machinery generalized beyond XOR to the tree and ring
// geometries, routing over the flattened kernels (sim/flat_route.hpp)
// against the world's own table + liveness arrays.
//
// The q_eff bridge (churn/churn.hpp) applies per entry class identically
// in all three cases: an entry refreshed k rounds ago is dead with
// probability (1-a)(1 - lambda^k), so the trajectory's long-run routability
// should track the static model evaluated at q_eff(R) -- the claim the
// ext_churn benchmark sweeps and test_churn_trajectory asserts.
#pragma once

#include <cstdint>
#include <vector>

#include "churn/churn.hpp"
#include "math/rng.hpp"
#include "obs/phase_timer.hpp"
#include "sim/id_space.hpp"
#include "sim/monte_carlo.hpp"

namespace dht::churn {

/// Default replica count when TrajectoryOptions::shards is 0.
inline constexpr std::uint64_t kDefaultTrajectoryShards = 16;

struct TrajectoryOptions {
  /// Rounds stepped before measurement starts (reach the refresh steady
  /// state; ~3R + mixing is the benchmark convention).
  int warmup_rounds = 0;
  /// Rounds measured after warmup; one merged RoutabilityEstimate each.
  int measured_rounds = 1;
  /// Routes sampled per shard per measured round.
  std::uint64_t pairs_per_round = 2000;
  /// Independent trajectory replicas (0 = kDefaultTrajectoryShards).
  /// Results are a function of (seed, shards); keep it fixed when
  /// comparing runs.
  std::uint64_t shards = 0;
  /// Worker threads (0 = hardware concurrency).  Never affects results.
  unsigned threads = 0;
  /// Pin workers round-robin across NUMA nodes (sim/shard_pool.hpp) so each
  /// replica world is first-touched on -- and stays on -- its worker's
  /// socket.  Best effort, silently ignored where unsupported; never
  /// affects results.
  bool pin_workers = false;
  /// Safety hop cap per route (0 = default N); hits are counted in the
  /// estimates' hop_limit_hits canary.
  std::uint64_t max_hops = 0;
  /// Per-round probability that an entry observed dead is eagerly repaired
  /// (re-pointed at an alive class member) in addition to the scheduled
  /// refresh -- the rho knob of the static-repair model.  0 = pure lazy
  /// refresh (the ChurnSimulator model).
  double repair_probability = 0.0;
  /// In-flight lookup measurement (sparse churn engine only): membership
  /// events and repairs advance DURING each measured route instead of
  /// freezing the world between rounds, so a lookup can lose its next hop
  /// mid-flight.  The dense trajectory engine rejects this mode.
  bool inflight = false;
  /// Lifecycle slots swept per route hop in in-flight mode; 0 derives the
  /// rate from pairs_per_round (one full capacity sweep spread over the
  /// round's expected hop budget, pairs x ~log2 N).  Any remainder of the
  /// sweep is flushed at the end of the round, so a measured round always
  /// performs exactly one full lifecycle round.
  std::uint64_t inflight_events_per_hop = 0;
  /// Route sync-mode measurement in 8-lane SoA batches (sparse churn
  /// engine; bit-identical to the scalar path, which `false` selects for
  /// A/B measurement).  Ignored by the dense engine and by in-flight mode,
  /// which is inherently sequential.
  bool batch_routes = true;
  /// Route forensics (sparse churn engine, sync mode only): sample about
  /// this many routes run-wide and record their full hop sequences
  /// (obs/route_trace.hpp).  Which pairs are traced is a pure function of
  /// (shard, round, pair index), so the same routes are traced at any
  /// thread count; traced pairs are re-routed against the frozen round
  /// snapshot with no load accounting and no rng, so estimates are
  /// unchanged.  0 disables; the dense engine and in-flight mode reject
  /// nonzero values.
  std::uint64_t trace_routes = 0;
  /// Observability sinks (obs/phase_timer.hpp), both optional and both
  /// pure timing side-channels: per-shard phase seconds are reduced in
  /// shard order into `profile`, phase spans go to `trace`.  Null (the
  /// default) is the zero-cost path; attaching them never changes any
  /// counter.
  obs::PhaseProfile* profile = nullptr;
  obs::Trace* trace = nullptr;
};

/// Validates the domains of the shared trajectory options; throws
/// PreconditionError naming the offending field.  Every trajectory engine
/// calls this at its API boundary (before any shard spins up a world), so
/// a bad grid point fails fast instead of deep inside a worker -- and the
/// diagnostics divisions below it can never see zero measured rounds.
void validate_trajectory_options(const TrajectoryOptions& options);

struct TrajectoryResult {
  /// The replica count actually used (options.shards, or
  /// kDefaultTrajectoryShards when that was 0).
  std::uint64_t shards = 0;
  /// Round r's estimate pooled across shards (merged in shard order);
  /// size = measured_rounds.
  std::vector<sim::RoutabilityEstimate> per_round;
  /// All measured rounds pooled in round order -- the long-run estimate.
  sim::RoutabilityEstimate overall;
  /// Alive fraction averaged over (shard, measured round) snapshots.
  double mean_alive_fraction = 0.0;
  /// Mean entry age of alive nodes' tables, same averaging.
  double mean_entry_age = 0.0;
};

/// Runs the sharded churn trajectory.  `rng` is only fork()ed, never
/// advanced.  Bit-identical at any thread count.  Rounds where a shard's
/// world has fewer than two alive nodes contribute no samples (possible
/// only at tiny N / extreme churn; deterministic either way).
TrajectoryResult run_churn_trajectory(TrajectoryGeometry geometry,
                                      const sim::IdSpace& space,
                                      const ChurnParams& params,
                                      const TrajectoryOptions& options,
                                      const math::Rng& rng);

/// One evaluated grid point of a sweep.
struct SweepPoint {
  int bits = 0;
  ChurnParams params;
  double repair_probability = 0.0;
  /// The static-model bridge value q_eff(R) for `params` (repair lowers
  /// the realized effective failure probability further).
  double q_eff = 0.0;
  TrajectoryResult result;
};

/// A (N, churn params, rho) grid for benches and the CLI.  Points are the
/// cartesian product bits x churn x repair, evaluated in that nesting
/// order; point i uses Rng(seed).fork(i), so each point is reproducible
/// independent of the grid shape.
struct SweepSpec {
  TrajectoryGeometry geometry = TrajectoryGeometry::kXor;
  std::vector<int> bits = {10};
  std::vector<ChurnParams> churn = {ChurnParams{}};
  std::vector<double> repair = {0.0};
  TrajectoryOptions options;
  std::uint64_t seed = 1;
};

std::vector<SweepPoint> run_churn_sweep(const SweepSpec& spec);

}  // namespace dht::churn
