// Dynamic membership over a non-fully-populated identifier space -- the
// population layer under the sparse churn engine (churn/sparse_trajectory.hpp).
//
// The dense churn model (churn/churn.hpp) flips liveness on a fixed roster
// of 2^d identifiers; here the roster is a fixed array of `capacity` SLOTS
// over a 2^bits key space (bits <= 63), and N itself evolves: a joining
// slot draws a fresh identifier uniformly from the unoccupied keys, a
// leaving slot is removed from the population (its stale id and routing
// rows linger until the slot is recycled by a later join).  Slots are the
// stable handles routing tables store -- an in-edge to a departed slot
// reads as dead through the presence mask until the owner refreshes it, or
// until the slot is recycled by a join (the sparse analogue of a dense
// rebirth making a stale entry valid again, except the recycled slot
// carries a new identifier).
//
// Membership changes are batched per round: leave() flips presence
// immediately, join() assigns fresh distinct ids to a cohort of slots, and
// commit() rebuilds the sorted (id -> slot) order index in one O(N + k)
// merge pass.  All queries the table machinery needs -- successor of a
// key, id ranges (Kademlia buckets), clockwise ring steps (successor
// lists) -- are binary searches over that index, so only the population is
// ever materialized, never the key space.  Every draw comes from a caller
// rng, so a membership trajectory is a pure function of (rng lineage,
// inputs) -- the property the sharded replica engine needs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "math/rng.hpp"
#include "sparse/sparse_space.hpp"

namespace dht::churn {

/// Stable handle of a roster slot (the unit routing tables reference).
using NodeSlot = sparse::NodeIndex;

/// Sentinel for "no slot" in routing rows (empty buckets, short rings).
inline constexpr NodeSlot kNoSlot = sparse::kNoNode;

/// The identifier range of Kademlia bucket `level` (1-based from the most
/// significant of `bits` bits) around `id`: ids sharing the first level-1
/// bits with bit `level` flipped -- a contiguous [lo, hi] once the suffix
/// is freed.  Shared by entry refresh and join announcement so the two
/// paths cannot drift.
inline std::pair<std::uint64_t, std::uint64_t> kademlia_bucket_range(
    std::uint64_t id, int level, int bits) {
  const int suffix_bits = bits - level;
  const std::uint64_t lo =
      ((id ^ (std::uint64_t{1} << suffix_bits)) >> suffix_bits)
      << suffix_bits;
  return {lo, lo + ((std::uint64_t{1} << suffix_bits) - 1)};
}

class SparseMembership {
 public:
  /// A roster of `capacity` slots over a 2^bits key space, all initially
  /// absent.  Preconditions: 1 <= bits <= 63, 2 <= capacity <= 2^bits, and
  /// capacity <= 2^26 (per-slot state is materialized).
  SparseMembership(int bits, std::uint64_t capacity);

  int bits() const noexcept { return bits_; }
  std::uint64_t key_space_size() const noexcept {
    return std::uint64_t{1} << bits_;
  }
  std::uint64_t key_mask() const noexcept { return key_space_size() - 1; }
  std::uint64_t capacity() const noexcept { return present_.size(); }
  std::uint64_t population() const noexcept { return population_; }

  bool present(NodeSlot slot) const { return present_[slot] != 0; }
  /// The slot's identifier; stale (the last occupant's) while absent.
  std::uint64_t id_of(NodeSlot slot) const { return ids_[slot]; }
  /// The slot's occupancy generation, incremented on every join.  Routing
  /// entries stamp the generation they were installed against, so an edge
  /// to a departed node stays invalid when the slot is recycled -- in a
  /// dynamic-membership world identities never return, unlike the dense
  /// model's rebirths.
  std::uint32_t generation(NodeSlot slot) const { return generations_[slot]; }

  /// Raw presence mask / id array over slots; the routing kernels of the
  /// sparse churn world index these directly.
  const std::uint8_t* present_data() const noexcept { return present_.data(); }
  const std::uint64_t* id_data() const noexcept { return ids_.data(); }
  const std::uint32_t* generation_data() const noexcept {
    return generations_.data();
  }

  /// Marks a present slot absent.  The order index keeps the stale entry
  /// (filtered by the presence mask) until the next commit().
  void leave(NodeSlot slot);

  /// Joins a cohort of absent slots: draws distinct identifiers uniformly
  /// from the keys not presently occupied (batched draw + sort + dedup, the
  /// SparseIdSpace construction pattern) and assigns them in ascending
  /// order to the ascending cohort.  Slots become present immediately; the
  /// order index sees them at the next commit().
  void join(const std::vector<NodeSlot>& slots, math::Rng& rng);

  /// Rebuilds the sorted (id -> slot) order index: drops departed entries,
  /// merges joined ones.  One O(population + joins) pass per round.
  void commit();

  // --- Order-index queries (reflect the membership as of the last
  // --- commit(); call commit() after leave()/join() before using them).

  /// Present-node count in the index (== population() when in sync).
  std::uint64_t order_size() const noexcept { return order_slots_.size(); }

  /// The slot at ring position `pos` (ids ascending).
  NodeSlot slot_at(std::uint64_t pos) const { return order_slots_[pos]; }

  /// The id at ring position `pos`.
  std::uint64_t id_at(std::uint64_t pos) const { return order_ids_[pos]; }

  /// Ring position of the first present node at or clockwise-after `key`
  /// (Chord successor convention; wraps to 0 past the largest id).
  /// Precondition: order_size() > 0.
  std::uint64_t successor_position(std::uint64_t key) const;

  /// The owning slot of `key` (successor convention).
  NodeSlot successor_of_key(std::uint64_t key) const {
    return order_slots_[successor_position(key)];
  }

  /// Present nodes with ids in [lo, hi] (inclusive, no wrap: lo <= hi) as a
  /// ring-position range [first, last).
  std::pair<std::uint64_t, std::uint64_t> order_range(std::uint64_t lo,
                                                      std::uint64_t hi) const;

  /// The slot `steps` positions clockwise of ring position `pos`.
  /// Precondition: order_size() > 0.
  NodeSlot ring_successor(std::uint64_t pos, std::uint64_t steps) const {
    return order_slots_[(pos + steps) % order_slots_.size()];
  }

 private:
  bool id_occupied(std::uint64_t id) const;

  int bits_;
  std::vector<std::uint64_t> ids_;       // per slot; stale while absent
  std::vector<std::uint8_t> present_;    // per slot
  std::vector<std::uint32_t> generations_;  // per slot; bumped on join
  std::uint64_t population_ = 0;
  // Sorted present ids + parallel slots, as of the last commit().
  std::vector<std::uint64_t> order_ids_;
  std::vector<NodeSlot> order_slots_;
  // Joins since the last commit(), sorted by id, plus a per-slot flag so
  // commit() can tell a surviving order entry from one whose slot was
  // recycled this round (possibly onto the very same identifier).
  std::vector<std::pair<std::uint64_t, NodeSlot>> pending_;
  std::vector<std::uint8_t> in_pending_;
};

}  // namespace dht::churn
