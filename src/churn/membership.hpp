// Dynamic membership over a non-fully-populated identifier space -- the
// population layer under the sparse churn engine (churn/sparse_trajectory.hpp).
//
// The dense churn model (churn/churn.hpp) flips liveness on a fixed roster
// of 2^d identifiers; here the roster is a fixed array of `capacity` SLOTS
// over a 2^bits key space (bits <= 63), and N itself evolves: a joining
// slot draws a fresh identifier uniformly from the unoccupied keys, a
// leaving slot is removed from the population (its stale id and routing
// rows linger until the slot is recycled by a later join).  Slots are the
// stable handles routing tables store -- an in-edge to a departed slot
// reads as dead through the presence mask until the owner refreshes it, or
// until the slot is recycled by a join (the sparse analogue of a dense
// rebirth making a stale entry valid again, except the recycled slot
// carries a new identifier).
//
// Membership changes are batched per round: leave() flips presence
// immediately, join() assigns fresh distinct ids to a cohort of slots, and
// commit() rebuilds the sorted (id -> slot) order index in one O(N + k)
// merge pass.  All queries the table machinery needs -- successor of a
// key, id ranges (Kademlia buckets), clockwise ring steps (successor
// lists) -- are binary searches over that index, so only the population is
// ever materialized, never the key space.  Every draw comes from a caller
// rng, so a membership trajectory is a pure function of (rng lineage,
// inputs) -- the property the sharded replica engine needs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "math/rng.hpp"
#include "sparse/sparse_space.hpp"

namespace dht::churn {

/// Stable handle of a roster slot (the unit routing tables reference).
using NodeSlot = sparse::NodeIndex;

/// Sentinel for "no slot" in routing rows (empty buckets, short rings).
inline constexpr NodeSlot kNoSlot = sparse::kNoNode;

/// The identifier range of Kademlia bucket `level` (1-based from the most
/// significant of `bits` bits) around `id`: ids sharing the first level-1
/// bits with bit `level` flipped -- a contiguous [lo, hi] once the suffix
/// is freed.  Shared by entry refresh and join announcement so the two
/// paths cannot drift.
inline std::pair<std::uint64_t, std::uint64_t> kademlia_bucket_range(
    std::uint64_t id, int level, int bits) {
  const int suffix_bits = bits - level;
  const std::uint64_t lo =
      ((id ^ (std::uint64_t{1} << suffix_bits)) >> suffix_bits)
      << suffix_bits;
  return {lo, lo + ((std::uint64_t{1} << suffix_bits) - 1)};
}

class SparseMembership {
 public:
  /// A roster of `capacity` slots over a 2^bits key space, all initially
  /// absent.  Preconditions: 1 <= bits <= 63, 2 <= capacity <= 2^bits, and
  /// capacity <= 2^26 (per-slot state is materialized).
  SparseMembership(int bits, std::uint64_t capacity);

  int bits() const noexcept { return bits_; }
  std::uint64_t key_space_size() const noexcept {
    return std::uint64_t{1} << bits_;
  }
  std::uint64_t key_mask() const noexcept { return key_space_size() - 1; }
  std::uint64_t capacity() const noexcept { return present_.size(); }
  std::uint64_t population() const noexcept { return population_; }

  bool present(NodeSlot slot) const { return present_[slot] != 0; }
  /// The slot's identifier; stale (the last occupant's) while absent.
  std::uint64_t id_of(NodeSlot slot) const { return ids_[slot]; }
  /// The slot's occupancy generation, incremented on every join.  Routing
  /// entries stamp the generation they were installed against, so an edge
  /// to a departed node stays invalid when the slot is recycled -- in a
  /// dynamic-membership world identities never return, unlike the dense
  /// model's rebirths.
  std::uint32_t generation(NodeSlot slot) const { return generations_[slot]; }

  /// Raw presence mask / id array over slots; the routing kernels of the
  /// sparse churn world index these directly.
  const std::uint8_t* present_data() const noexcept { return present_.data(); }
  const std::uint64_t* id_data() const noexcept { return ids_.data(); }
  const std::uint32_t* generation_data() const noexcept {
    return generations_.data();
  }

  /// Packed presence: one u64 word per 64 slots (bit set iff present),
  /// maintained by join()/leave().  The whole mask for a 2^17-slot roster
  /// is 16 KiB -- cache-resident where the byte mask is not -- so the
  /// routing kernels' validity probes and the engine's present-slot sweeps
  /// (std::countr_zero over the words) go through this instead of
  /// present_data().
  const std::uint64_t* alive_bits_data() const noexcept {
    return alive_bits_.data();
  }
  std::uint64_t alive_words() const noexcept { return alive_bits_.size(); }

  /// Marks a present slot absent.  The order index keeps the stale entry
  /// (filtered by the presence mask) until the next commit().
  void leave(NodeSlot slot);

  /// Joins a cohort of absent slots: draws distinct identifiers uniformly
  /// from the keys not presently occupied (batched draw + sort + dedup, the
  /// SparseIdSpace construction pattern) and assigns them in ascending
  /// order to the ascending cohort.  Slots become present immediately; the
  /// order index sees them at the next commit().
  void join(const std::vector<NodeSlot>& slots, math::Rng& rng);

  /// Brings the sorted (id -> slot) order index up to date: drops departed
  /// entries, merges joined ones.  Incremental and allocation-free in
  /// steady state -- a no-op when nothing changed since the last commit,
  /// an in-place compaction for departures, and a backward shift-merge of
  /// the (sorted) pending joiners on top; the arrays only ever grow to the
  /// high-water population, so per-round rebuild allocations are gone.
  ///
  /// `refresh_seek` additionally rebuilds the prefix-seek accelerator (an
  /// O(buckets + N) streaming pass) so subsequent order queries run over
  /// tiny bucket windows.  Pass false on high-frequency commits whose
  /// query volume would not amortize the rebuild -- the in-flight engine's
  /// per-lookup-boundary commits -- and the queries transparently fall
  /// back to full-range binary search until the next refreshing commit.
  /// Results are identical either way; this is purely a cost trade.
  void commit(bool refresh_seek = true);

  // --- Order-index queries (reflect the membership as of the last
  // --- commit(); call commit() after leave()/join() before using them).

  /// Present-node count in the index (== population() when in sync).
  std::uint64_t order_size() const noexcept { return order_slots_.size(); }

  /// The slot at ring position `pos` (ids ascending).
  NodeSlot slot_at(std::uint64_t pos) const { return order_slots_[pos]; }

  /// The id at ring position `pos`.
  std::uint64_t id_at(std::uint64_t pos) const { return order_ids_[pos]; }

  /// Ring position of the first present node at or clockwise-after `key`
  /// (Chord successor convention; wraps to 0 past the largest id).
  /// Precondition: order_size() > 0.  Inline (with order_range below):
  /// these run hundreds of millions of times under the churn engines'
  /// finger refreshes, and the seek window reduces them to a handful of
  /// instructions worth keeping call-free.
  std::uint64_t successor_position(std::uint64_t key) const {
    DHT_CHECK(!order_ids_.empty(), "successor query on an empty population");
    // Window the search to `key`'s seek bucket when the table is fresh:
    // ids at positions >= seek_[bucket + 1] belong to higher prefixes and
    // are > key, so if the bucket holds nothing >= key the answer is
    // exactly its end.  A stale table (non-refreshing commit) degrades to
    // the full range -- same lower bound, bigger window.
    std::uint64_t window_lo = 0;
    std::uint64_t window_hi = order_ids_.size();
    if (seek_fresh_) {
      const std::uint64_t bucket = key >> seek_shift_;
      window_lo = seek_[bucket];
      window_hi = seek_[bucket + 1];
    }
    const auto it = std::lower_bound(order_ids_.begin() + window_lo,
                                     order_ids_.begin() + window_hi, key);
    const auto pos = static_cast<std::uint64_t>(it - order_ids_.begin());
    if (pos == order_ids_.size()) {
      return 0;  // wrap to the smallest identifier
    }
    return pos;
  }

  /// The owning slot of `key` (successor convention).
  NodeSlot successor_of_key(std::uint64_t key) const {
    return order_slots_[successor_position(key)];
  }

  /// Present nodes with ids in [lo, hi] (inclusive, no wrap: lo <= hi) as a
  /// ring-position range [first, last).
  std::pair<std::uint64_t, std::uint64_t> order_range(std::uint64_t lo,
                                                      std::uint64_t hi) const {
    DHT_CHECK(lo <= hi, "order_range requires lo <= hi");
    // Same windowing as successor_position, once per endpoint: positions
    // past a bucket's end hold strictly larger prefixes, so each bound is
    // fully determined inside its own bucket window.
    if (!seek_fresh_) {
      const auto first =
          std::lower_bound(order_ids_.begin(), order_ids_.end(), lo);
      const auto last = std::upper_bound(first, order_ids_.end(), hi);
      return {static_cast<std::uint64_t>(first - order_ids_.begin()),
              static_cast<std::uint64_t>(last - order_ids_.begin())};
    }
    const std::uint64_t lo_bucket = lo >> seek_shift_;
    const auto first =
        std::lower_bound(order_ids_.begin() + seek_[lo_bucket],
                         order_ids_.begin() + seek_[lo_bucket + 1], lo);
    const std::uint64_t hi_bucket = hi >> seek_shift_;
    const auto last = std::upper_bound(
        std::max(first, order_ids_.begin() + seek_[hi_bucket]),
        order_ids_.begin() + seek_[hi_bucket + 1], hi);
    return {static_cast<std::uint64_t>(first - order_ids_.begin()),
            static_cast<std::uint64_t>(last - order_ids_.begin())};
  }

  /// The slot `steps` positions clockwise of ring position `pos`.
  /// Precondition: order_size() > 0.
  NodeSlot ring_successor(std::uint64_t pos, std::uint64_t steps) const {
    // Callers pass pos <= size and small steps, so skip the 64-bit divide
    // (a hot-loop cost in successor-list rebuilds) unless a wrap happens.
    const std::uint64_t raw = pos + steps;
    return order_slots_[raw < order_slots_.size()
                            ? raw
                            : raw % order_slots_.size()];
  }

 private:
  bool id_occupied(std::uint64_t id) const;

  int bits_;
  std::vector<std::uint64_t> ids_;       // per slot; stale while absent
  std::vector<std::uint8_t> present_;    // per slot
  std::vector<std::uint32_t> generations_;  // per slot; bumped on join
  // Packed mirror of present_: bit (slot & 63) of word (slot >> 6).
  std::vector<std::uint64_t> alive_bits_;
  std::uint64_t population_ = 0;
  // Set by leave(): the order index carries entries that must be dropped
  // at the next commit().  join()+commit() always run back to back (the
  // joiner-integration contract), so pending_ is empty whenever leave()
  // runs and this single flag captures every departure-only delta.
  bool stale_ = false;
  // Sorted present ids + parallel slots, as of the last commit().
  std::vector<std::uint64_t> order_ids_;
  std::vector<NodeSlot> order_slots_;
  // Prefix-seek accelerator over the order index: seek_[b] is the first
  // order position whose id is >= (b << seek_shift_), seek_.back() ==
  // order_size().  Every order query (successor, range, occupancy) then
  // binary-searches only the handful of entries inside one key-prefix
  // bucket instead of the whole population -- the queries stay exact
  // lower/upper bounds, just over a provably sufficient window, so results
  // are bit-identical to the plain searches.  Rebuilt by commit() in one
  // streaming pass (the arrays it walks are already hot from the merge).
  int seek_shift_ = 0;
  bool seek_fresh_ = false;  // false after a non-refreshing commit
  std::vector<std::uint32_t> seek_;
  // Joins since the last commit(), sorted by id, plus a per-slot flag so
  // commit() can tell a surviving order entry from one whose slot was
  // recycled this round (possibly onto the very same identifier).
  std::vector<std::pair<std::uint64_t, NodeSlot>> pending_;
  std::vector<std::uint8_t> in_pending_;
};

}  // namespace dht::churn
