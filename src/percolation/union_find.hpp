// Disjoint-set forest with union by size and path halving.
//
// Substrate for the connected-component analysis that contrasts percolation
// connectivity with protocol reachability (paper Section 1: the reachable
// component is a subset of the connected component; component size alone
// does not give routability).
#pragma once

#include <cstdint>
#include <vector>

namespace dht::perc {

class UnionFind {
 public:
  /// n singleton sets, elements 0 .. n-1.
  explicit UnionFind(std::uint64_t n);

  /// Representative of x's set (with path halving).
  std::uint64_t find(std::uint64_t x);

  /// Merges the sets of a and b; returns true if they were distinct.
  bool unite(std::uint64_t a, std::uint64_t b);

  /// Size of x's set.
  std::uint64_t set_size(std::uint64_t x);

  std::uint64_t element_count() const noexcept { return parent_.size(); }
  std::uint64_t set_count() const noexcept { return set_count_; }

 private:
  void check(std::uint64_t x) const;

  std::vector<std::uint64_t> parent_;
  std::vector<std::uint64_t> size_;
  std::uint64_t set_count_;
};

}  // namespace dht::perc
