#include "percolation/union_find.hpp"

#include "common/check.hpp"

namespace dht::perc {

UnionFind::UnionFind(std::uint64_t n)
    : parent_(n), size_(n, 1), set_count_(n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    parent_[i] = i;
  }
}

void UnionFind::check(std::uint64_t x) const {
  DHT_CHECK(x < parent_.size(), "element out of range");
}

std::uint64_t UnionFind::find(std::uint64_t x) {
  check(x);
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::uint64_t a, std::uint64_t b) {
  std::uint64_t ra = find(a);
  std::uint64_t rb = find(b);
  if (ra == rb) {
    return false;
  }
  if (size_[ra] < size_[rb]) {
    std::swap(ra, rb);
  }
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --set_count_;
  return true;
}

std::uint64_t UnionFind::set_size(std::uint64_t x) { return size_[find(x)]; }

}  // namespace dht::perc
