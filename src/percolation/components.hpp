// Connected components vs reachable components (paper Section 1).
//
// Percolation theory bounds when the overlay fragments, but "all pairs
// belonging to the same connected component need not be reachable under
// failure": greedy routing forgoes paths the graph still contains.  This
// module measures both sides of that gap on a simulated overlay:
//
//  * connectivity -- components of the failed overlay graph with links
//    treated as undirected (the percolation view);
//  * reachability -- the set of targets the basic protocol actually
//    delivers to from a given source (the paper's reachable component).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/overlay.hpp"

namespace dht::perc {

/// Summary of the undirected connected components among alive nodes.
struct ComponentSummary {
  std::uint64_t alive_nodes = 0;
  std::uint64_t component_count = 0;
  std::uint64_t largest_component = 0;

  double largest_fraction() const noexcept {
    return alive_nodes == 0 ? 0.0
                            : static_cast<double>(largest_component) /
                                  static_cast<double>(alive_nodes);
  }
};

/// Components of the failed overlay: alive nodes, undirected links (an edge
/// survives iff both endpoints are alive).
ComponentSummary analyze_components(const sim::Overlay& overlay,
                                    const sim::FailureScenario& failures);

/// Size of the connected component containing `source` (0 if source dead).
std::uint64_t connected_component_size(const sim::Overlay& overlay,
                                       const sim::FailureScenario& failures,
                                       sim::NodeId source);

/// The paper's reachable component of `source`: the number of alive targets
/// the basic protocol successfully routes to (O(N * hops); use on small
/// spaces).  Throws if `source` is dead.
std::uint64_t reachable_component_size(const sim::Overlay& overlay,
                                       const sim::FailureScenario& failures,
                                       sim::NodeId source, math::Rng& rng);

}  // namespace dht::perc
