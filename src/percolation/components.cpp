#include "percolation/components.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "percolation/union_find.hpp"
#include "sim/router.hpp"

namespace dht::perc {

namespace {

UnionFind build_alive_components(const sim::Overlay& overlay,
                                 const sim::FailureScenario& failures) {
  const std::uint64_t size = overlay.space().size();
  UnionFind forest(size);
  std::vector<sim::NodeId> scratch;  // reused across nodes (links_into)
  for (sim::NodeId v = 0; v < size; ++v) {
    if (!failures.alive(v)) {
      continue;
    }
    overlay.links_into(v, scratch);
    for (sim::NodeId w : scratch) {
      if (failures.alive(w)) {
        forest.unite(v, w);
      }
    }
  }
  return forest;
}

}  // namespace

ComponentSummary analyze_components(const sim::Overlay& overlay,
                                    const sim::FailureScenario& failures) {
  const std::uint64_t size = overlay.space().size();
  UnionFind forest = build_alive_components(overlay, failures);

  ComponentSummary summary;
  std::vector<std::uint64_t> seen_roots;
  for (sim::NodeId v = 0; v < size; ++v) {
    if (!failures.alive(v)) {
      continue;
    }
    ++summary.alive_nodes;
    const std::uint64_t root = forest.find(v);
    summary.largest_component =
        std::max(summary.largest_component, forest.set_size(root));
    seen_roots.push_back(root);
  }
  std::sort(seen_roots.begin(), seen_roots.end());
  summary.component_count = static_cast<std::uint64_t>(
      std::unique(seen_roots.begin(), seen_roots.end()) - seen_roots.begin());
  return summary;
}

std::uint64_t connected_component_size(const sim::Overlay& overlay,
                                       const sim::FailureScenario& failures,
                                       sim::NodeId source) {
  if (!failures.alive(source)) {
    return 0;
  }
  UnionFind forest = build_alive_components(overlay, failures);
  return forest.set_size(source);
}

std::uint64_t reachable_component_size(const sim::Overlay& overlay,
                                       const sim::FailureScenario& failures,
                                       sim::NodeId source, math::Rng& rng) {
  DHT_CHECK(failures.alive(source),
            "reachable component is defined for an alive source");
  const sim::Router router(overlay, failures);
  std::uint64_t reachable = 0;
  const std::uint64_t size = overlay.space().size();
  for (sim::NodeId target = 0; target < size; ++target) {
    if (target == source || !failures.alive(target)) {
      continue;
    }
    if (router.route(source, target, rng).success()) {
      ++reachable;
    }
  }
  return reachable;
}

}  // namespace dht::perc
