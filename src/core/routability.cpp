#include "core/routability.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "math/summation.hpp"

namespace dht::core {

RoutabilityPoint evaluate_routability(const Geometry& geometry, int d,
                                      double q) {
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  DHT_CHECK(q >= 0.0 && q < 1.0, "routability requires q in [0, 1)");

  using math::LogReal;

  // E[S] = sum_h n(h) p(h, q): accumulate n(h) * p(h) in log space.  The
  // per-phase failure probabilities Q(m) do not depend on h, so the product
  // prefix is extended incrementally -- O(d) phase_failure calls total.
  math::LogSum expected_reachable;
  math::NeumaierSum log_p;  // log p(h, q), extended one factor per h
  bool route_dead = false;  // some Q(m) hit 1: p(h) = 0 from here on
  for (int h = 1; h <= d && !route_dead; ++h) {
    const double failure = geometry.phase_failure(h, q, d);
    if (failure >= 1.0) {
      route_dead = true;
      break;
    }
    log_p.add(std::log1p(-failure));
    const LogReal n_h = geometry.distance_count(h, d);
    expected_reachable.add(n_h * LogReal::from_log(log_p.total()));
  }

  RoutabilityPoint point;
  point.d = d;
  point.q = q;
  point.log_expected_reachable = expected_reachable.total().log();

  // Denominator of Eq. 3: (1-q) N - 1 (expected surviving peers of a
  // surviving root; N = space_size(d), 2^d in the paper's binary setting).
  // If it is not positive the system has no pairs.
  const LogReal space = geometry.space_size(d);
  const LogReal survivors = LogReal::from_value(1.0 - q) * space;
  if (survivors <= LogReal::one()) {
    point.routability = 0.0;
    point.failed_fraction = 1.0;
    point.conditional_success = 0.0;
    return point;
  }
  const LogReal denominator = survivors - LogReal::one();
  point.routability = std::clamp(
      (expected_reachable.total() / denominator).value(), 0.0, 1.0);
  point.failed_fraction = 1.0 - point.routability;

  // Simulator view: destination sampled among survivors, so its survival
  // factor (already inside p) conditions out: E[S] / ((1-q)(N - 1)).
  const LogReal peers = space - LogReal::one();
  const LogReal alive_peers = LogReal::from_value(1.0 - q) * peers;
  point.conditional_success = std::clamp(
      (expected_reachable.total() / alive_peers).value(), 0.0, 1.0);
  return point;
}

std::vector<RoutabilityPoint> sweep_failure_probability(
    const Geometry& geometry, int d, std::span<const double> qs) {
  std::vector<RoutabilityPoint> out;
  out.reserve(qs.size());
  for (double q : qs) {
    out.push_back(evaluate_routability(geometry, d, q));
  }
  return out;
}

std::vector<RoutabilityPoint> sweep_system_size(const Geometry& geometry,
                                                std::span<const int> ds,
                                                double q) {
  std::vector<RoutabilityPoint> out;
  out.reserve(ds.size());
  for (int d : ds) {
    out.push_back(evaluate_routability(geometry, d, q));
  }
  return out;
}

}  // namespace dht::core
