#include "core/symphony_geometry.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "math/stable.hpp"

namespace dht::core {

SymphonyGeometry::SymphonyGeometry(SymphonyParams params) : params_(params) {
  DHT_CHECK(params.near_neighbors >= 1,
            "symphony requires at least one near neighbor");
  DHT_CHECK(params.shortcuts >= 1, "symphony requires at least one shortcut");
}

math::LogReal SymphonyGeometry::distance_count(int h, int d) const {
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  if (h < 1 || h > d) {
    return math::LogReal::zero();
  }
  return math::LogReal::exp2_int(h - 1);
}

double SymphonyGeometry::phase_failure(int m, double q, int d) const {
  DHT_CHECK(m >= 1, "phase index m must be >= 1");
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  DHT_CHECK(q >= 0.0 && q < 1.0,
            "symphony phase failure requires q in [0, 1)");
  if (q == 0.0) {
    return 0.0;
  }
  const double links =
      static_cast<double>(params_.near_neighbors + params_.shortcuts);
  const double y = math::pow_q(q, links);  // all links dead
  const double x =
      static_cast<double>(params_.shortcuts) / static_cast<double>(d);
  // Suboptimal-hop probability; negative only when ks/d + q^{kn+ks} > 1
  // (tiny d with large q), where the paper's model leaves its domain.
  const double z = std::clamp(1.0 - x - y, 0.0, 1.0);
  const double max_suboptimal =
      std::ceil(static_cast<double>(d) / (1.0 - q));
  // Eq. 7 sums j = 0 .. ceil(d/(1-q)) inclusive: that is max_suboptimal + 1
  // terms.
  return std::clamp(y * math::geometric_sum(z, max_suboptimal + 1.0), 0.0,
                    1.0);
}

}  // namespace dht::core
