#include "core/ring_geometry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.hpp"
#include "math/stable.hpp"

namespace dht::core {

RingGeometry::RingGeometry(int successor_links)
    : successor_links_(successor_links) {
  DHT_CHECK(successor_links >= 0, "successor link count must be >= 0");
  // Offsets +1..+s that are powers of two duplicate fingers; there are
  // floor(log2 s) + 1 = bit_width(s) of them.
  effective_extra_ =
      successor_links == 0
          ? 0
          : successor_links -
                std::bit_width(static_cast<unsigned>(successor_links));
}

math::LogReal RingGeometry::distance_count(int h, int d) const {
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  if (h < 1 || h > d) {
    return math::LogReal::zero();
  }
  return math::LogReal::exp2_int(h - 1);
}

double RingGeometry::phase_failure(int m, double q, int d) const {
  DHT_CHECK(m >= 1, "phase index m must be >= 1");
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  DHT_CHECK(q >= 0.0 && q <= 1.0, "failure probability q must be in [0, 1]");
  if (q == 0.0) {
    return 0.0;
  }
  if (q == 1.0) {
    return 1.0;
  }
  const double s = static_cast<double>(effective_extra_);
  const double x =
      q * math::one_minus_pow(q, static_cast<double>(m - 1) + s);
  // 2^{m-1} suboptimal-hop slots; exp2 saturates to +inf for m > ~1024,
  // which geometric_sum treats as the infinite series -- the correct limit.
  const double slots = std::exp2(static_cast<double>(m - 1));
  const double qms = math::pow_q(q, static_cast<double>(m) + s);
  return std::clamp(qms * math::geometric_sum(x, slots), 0.0, 1.0);
}

}  // namespace dht::core
