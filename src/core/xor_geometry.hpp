// XOR (Kademlia) routing geometry -- paper Sections 3.3, 4.3.2.
//
// Neighbor selection is equivalent to the tree geometry's, but when the
// neighbor that would correct the highest-order bit is dead the protocol may
// fall back to correcting a lower-order differing bit (which still shrinks
// the XOR distance).  Each fallback consumes one of the phase's m-1 spare
// options; the Markov chain of Fig. 5(b) yields (Eq. 6)
//
//   Q(m) = q^m + sum_{k=1}^{m-1} q^m prod_{j=m-k}^{m-1} (1 - q^j).
//
// Q(m) decays like m q^m, so sum Q(m) converges: scalable (Section 5.3).
#pragma once

#include "core/geometry.hpp"

namespace dht::core {

class XorGeometry final : public Geometry {
 public:
  GeometryKind kind() const noexcept override { return GeometryKind::kXor; }
  std::string_view name() const noexcept override { return "xor"; }
  std::string_view dht_system() const noexcept override {
    return "Kademlia (eDonkey/Kad)";
  }

  /// n(h) = C(d, h), exactly as in the tree geometry (same neighbor rule).
  math::LogReal distance_count(int h, int d) const override;

  /// Eq. 6, evaluated exactly with a running product in O(m).
  double phase_failure(int m, double q, int d) const override;

  /// The paper's closed-form approximation of Eq. 6 (obtained via
  /// 1 - x ~= e^{-x}), exposed for the approximation-quality ablation:
  ///   Q(m) ~= q^m (m + q/(1-q) (q^{m-1}(m-1) - (1-q^{m+1})/(1-q))).
  /// The raw expression can leave [0, 1] outside the small-q regime; the
  /// returned value is clamped to [0, 1].
  static double phase_failure_approximation(int m, double q);

  ScalabilityClass scalability_class() const noexcept override {
    return ScalabilityClass::kScalable;
  }
  std::string_view scalability_argument() const noexcept override {
    return "Q(m) consists of q^m and m q^m terms, so sum Q(m) converges by "
           "the ratio test (Knopp)";
  }
  Exactness exactness() const noexcept override { return Exactness::kExact; }
};

}  // namespace dht::core
