#include "core/registry.hpp"

#include "common/check.hpp"
#include "common/strfmt.hpp"
#include "core/hypercube_geometry.hpp"
#include "core/ring_geometry.hpp"
#include "core/symphony_geometry.hpp"
#include "core/tree_geometry.hpp"
#include "core/xor_geometry.hpp"

namespace dht::core {

std::unique_ptr<Geometry> make_geometry(GeometryKind kind,
                                        SymphonyParams params) {
  switch (kind) {
    case GeometryKind::kTree:
      return std::make_unique<TreeGeometry>();
    case GeometryKind::kHypercube:
      return std::make_unique<HypercubeGeometry>();
    case GeometryKind::kXor:
      return std::make_unique<XorGeometry>();
    case GeometryKind::kRing:
      return std::make_unique<RingGeometry>();
    case GeometryKind::kSymphony:
      return std::make_unique<SymphonyGeometry>(params);
  }
  DHT_CHECK(false, "unknown geometry kind");
  return nullptr;  // unreachable
}

std::unique_ptr<Geometry> make_geometry(std::string_view name,
                                        SymphonyParams params) {
  for (GeometryKind kind : all_geometry_kinds()) {
    if (name == to_string(kind)) {
      return make_geometry(kind, params);
    }
  }
  DHT_CHECK(false, strfmt("unknown geometry name '%.*s'",
                          static_cast<int>(name.size()), name.data()));
  return nullptr;  // unreachable
}

std::vector<GeometryKind> all_geometry_kinds() {
  return {GeometryKind::kTree, GeometryKind::kHypercube, GeometryKind::kXor,
          GeometryKind::kRing, GeometryKind::kSymphony};
}

std::vector<std::unique_ptr<Geometry>> make_all_geometries(
    SymphonyParams params) {
  std::vector<std::unique_ptr<Geometry>> out;
  for (GeometryKind kind : all_geometry_kinds()) {
    out.push_back(make_geometry(kind, params));
  }
  return out;
}

}  // namespace dht::core
