// Routing latency under failure.
//
// The paper quotes the failure-free latencies (O(log N) hops for the DHTs,
// O(log^2 N) for Symphony) but the evaluation only covers routability.  The
// routing Markov chains carry the latency information too: the expected
// number of steps of a trajectory absorbed at the success state is the
// expected hop count of a successful route, including the suboptimal hops
// the fallback rules take.  This module averages that quantity over the
// distance distribution n(h), producing the latency counterpart of Eq. 3.
//
// Caveats mirror the routability ones: exact for tree/hypercube (every hop
// advances a phase, so hops == h), the paper's fallback accounting for XOR,
// an overestimate for ring (real suboptimal hops preserve progress, the
// chain's do not), and Eq. 7's capped-hop approximation for Symphony.
#pragma once

#include "core/geometry.hpp"

namespace dht::core {

/// Latency of routes to targets exactly h phases away.
struct DistanceLatency {
  double success_probability = 0.0;  ///< p(h, q)
  double expected_hops = 0.0;        ///< E[hops | success]
};

/// Chain-derived latency at one distance.  Preconditions: 1 <= h <= d,
/// q in [0, 1); ring/symphony chains grow exponentially in h, so h is
/// capped at 20 for those geometries.
DistanceLatency latency_at_distance(const Geometry& geometry, int h, int d,
                                    double q, SymphonyParams params = {});

/// Pair-averaged latency: E[hops | route succeeds] for a uniformly random
/// target, weighting each distance by n(h) p(h, q).
struct LatencyPoint {
  int d = 0;
  double q = 0.0;
  double mean_hops_given_success = 0.0;
  double success_fraction = 0.0;  ///< sum n(h) p(h) / sum n(h)
};

LatencyPoint expected_latency(const Geometry& geometry, int d, double q,
                              SymphonyParams params = {});

}  // namespace dht::core
