// Tree (Plaxton / Tapestry) routing geometry -- paper Sections 3.1, 4.3.1.
//
// Each node keeps one neighbor per identifier level; routing corrects the
// highest-order differing bit at every hop, with no fallback.  The routing
// Markov chain (Fig. 4(a)) gives the constant phase-failure probability
// Q(m) = q, hence p(h, q) = (1-q)^h and the closed-form routability
//
//     r = ((2-q)^d - 1) / ((1-q) 2^d - 1).
//
// Because sum_m Q(m) = sum_m q diverges for every q > 0, the geometry is
// unscalable (Section 5.1).
#pragma once

#include "core/geometry.hpp"

namespace dht::core {

class TreeGeometry final : public Geometry {
 public:
  /// `base` is the digit base of the identifiers (paper Section 3: "we will
  /// use binary strings as identifiers although any other base besides 2
  /// can be used"; Tapestry and Pastry deploy base 16).  Identifiers are d
  /// digits base b, so N = b^d, n(h) = C(d, h)(b-1)^h, and the per-level
  /// correction still needs one specific neighbor: Q(m) = q.  The closed
  /// form generalizes to
  ///
  ///     r = ((1 + (b-1)(1-q))^d - 1) / ((1-q) b^d - 1).
  ///
  /// Precondition: base >= 2.
  explicit TreeGeometry(int base = 2);

  GeometryKind kind() const noexcept override { return GeometryKind::kTree; }
  std::string_view name() const noexcept override { return "tree"; }
  std::string_view dht_system() const noexcept override {
    return "Plaxton / Tapestry";
  }

  int base() const noexcept { return base_; }

  /// n(h) = C(d, h)(b-1)^h: nodes differing in exactly h digits.
  math::LogReal distance_count(int h, int d) const override;

  /// N = b^d.
  math::LogReal space_size(int d) const override;

  /// Q(m) = q: the unique neighbor correcting the leftmost digit must be
  /// alive.
  double phase_failure(int m, double q, int d) const override;

  /// Closed form ((1 + (b-1)(1-q))^d - 1) / ((1-q) b^d - 1) (Section 4.3.1
  /// for b = 2); used by the tests to validate the generic Eq. 3 evaluator.
  static double closed_form_routability(int d, double q, int base = 2);

  ScalabilityClass scalability_class() const noexcept override {
    return ScalabilityClass::kUnscalable;
  }
  std::string_view scalability_argument() const noexcept override {
    return "Q(m) = q is constant, so sum Q(m) diverges and "
           "p(h, q) = (1-q)^h -> 0 as h -> infinity (Knopp)";
  }
  Exactness exactness() const noexcept override { return Exactness::kExact; }

 private:
  int base_;
};

}  // namespace dht::core
