#include "core/tree_geometry.hpp"

#include <cmath>

#include "common/check.hpp"
#include "math/binomial.hpp"

namespace dht::core {

TreeGeometry::TreeGeometry(int base) : base_(base) {
  DHT_CHECK(base >= 2, "digit base must be >= 2");
}

math::LogReal TreeGeometry::distance_count(int h, int d) const {
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  if (h < 1 || h > d) {
    return math::LogReal::zero();
  }
  // C(d, h) ways to pick the differing digit positions, (b-1) wrong values
  // per position.
  return math::binomial(d, h) *
         pow(math::LogReal::from_value(static_cast<double>(base_ - 1)),
             static_cast<double>(h));
}

math::LogReal TreeGeometry::space_size(int d) const {
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  return pow(math::LogReal::from_value(static_cast<double>(base_)),
             static_cast<double>(d));
}

double TreeGeometry::phase_failure(int m, double q, int d) const {
  DHT_CHECK(m >= 1, "phase index m must be >= 1");
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  DHT_CHECK(q >= 0.0 && q <= 1.0, "failure probability q must be in [0, 1]");
  return q;
}

double TreeGeometry::closed_form_routability(int d, double q, int base) {
  DHT_CHECK(d >= 1, "identifier length d must be >= 1");
  DHT_CHECK(q >= 0.0 && q < 1.0, "closed form requires q in [0, 1)");
  DHT_CHECK(base >= 2, "digit base must be >= 2");
  // ((1 + (b-1)(1-q))^d - 1) / ((1-q) b^d - 1), evaluated in log space so
  // d = 100 works.  b = 2 gives the paper's ((2-q)^d - 1)/((1-q) 2^d - 1).
  using math::LogReal;
  const LogReal numerator =
      pow(LogReal::from_value(1.0 + (base - 1) * (1.0 - q)),
          static_cast<double>(d)) -
      LogReal::one();
  const LogReal denominator =
      LogReal::from_value(1.0 - q) *
          pow(LogReal::from_value(static_cast<double>(base)),
              static_cast<double>(d)) -
      LogReal::one();
  return (numerator / denominator).value();
}

}  // namespace dht::core
