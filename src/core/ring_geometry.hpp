// Ring (Chord) routing geometry -- paper Sections 3.4, 4.3.3.
//
// Nodes sit on a numeric ring with log N randomized fingers; routing is
// greedy clockwise.  Unlike XOR routing, a suboptimal hop keeps all m
// next-hop choices available, and up to 2^{m-1} suboptimal hops fit inside
// phase m, giving
//
//   Q(m) = q^m * sum_{k=0}^{2^{m-1}-1} [q (1-q^{m-1})]^k
//        = q^m * (1 - x^{2^{m-1}}) / (1 - x),   x = q (1 - q^{m-1}).
//
// The chain deliberately ignores the distance progress a suboptimal hop
// makes (modeling it exactly blows up the state space, Section 4.3.3), so
// p(h, q) is a LOWER bound for the true success probability and the
// resulting failed-path percentage an upper bound (Fig. 6(b)).
//
// Q(m) <= q^m / (1 - q), so sum Q(m) converges: scalable (Section 5.4).
#pragma once

#include "core/geometry.hpp"

namespace dht::core {

class RingGeometry final : public Geometry {
 public:
  /// `successor_links` models the sequential-neighbor knob the paper's
  /// Sections 1-2 repeatedly invoke ("the designer can always add enough
  /// sequential neighbors"): a node additionally keeps its s clockwise
  /// successors (offsets +1 .. +s).  In a fully populated space the
  /// offsets that are powers of two already ARE fingers, so only
  /// s_eff = s - (floor(log2 s) + 1) genuinely new links join the table
  /// (s = 2 adds nothing; s = 4 adds one node, +3; s = 8 adds four).
  /// Each hop then fails only when the m phase fingers and the s_eff extra
  /// successors are all dead:
  ///
  ///   Q_s(m) = q^{m+s_eff} sum_{k=0}^{2^{m-1}-1} [q(1-q^{m-1+s_eff})]^k.
  ///
  /// s = 0 is the paper's basic geometry.  The model treats every extra
  /// successor as useful in all phases; in the real end game (distance
  /// < s) some overshoot, so for s > 0 the expression is an approximation
  /// rather than a bound.  Precondition: s >= 0.
  explicit RingGeometry(int successor_links = 0);

  GeometryKind kind() const noexcept override { return GeometryKind::kRing; }
  std::string_view name() const noexcept override { return "ring"; }
  std::string_view dht_system() const noexcept override { return "Chord"; }

  int successor_links() const noexcept { return successor_links_; }

  /// Successor-list members that do not coincide with a finger.
  int effective_extra_links() const noexcept { return effective_extra_; }

  /// n(h) = 2^{h-1}: identifiers at clockwise distance in [2^{h-1}, 2^h).
  math::LogReal distance_count(int h, int d) const override;

  /// Closed-form geometric sum above; stable for any m (the x^{2^{m-1}}
  /// term underflows harmlessly once 2^{m-1} log x < -745).
  double phase_failure(int m, double q, int d) const override;

  ScalabilityClass scalability_class() const noexcept override {
    return ScalabilityClass::kScalable;
  }
  std::string_view scalability_argument() const noexcept override {
    return "Q(m) <= q^m / (1 - q(1-q^{m-1})) is dominated by a geometric "
           "series, so sum Q(m) converges (Knopp); also p_ring >= p_xor "
           "term-by-term (Section 5.4)";
  }
  Exactness exactness() const noexcept override {
    return successor_links_ == 0 ? Exactness::kLowerBound
                                 : Exactness::kApproximate;
  }

 private:
  int successor_links_;
  int effective_extra_;
};

}  // namespace dht::core
