// Scalability analysis (paper Section 5).
//
// A geometry is scalable iff lim_{h->inf} p(h, q) > 0, which by Knopp's
// theorem (Theorem 1) holds iff sum_m Q(m) converges.  This module combines
// each geometry's analytic verdict with an independent numeric diagnosis of
// the Q(m) series, and evaluates the limiting quantities
//
//   p_inf(q) = prod_{m=1}^{inf} (1 - Q(m))          (limit success prob.)
//   r_inf(q) = p_inf(q) / (1 - q)                   (limit routability)
//
// The r_inf formula follows from Eq. 3: as d -> inf the distance
// distributions concentrate on h -> inf (Binomial(d, 1/2) mass for the
// C(d, h) geometries, the 2^{h-1} tail for the ring ones), so
// E[S] / (2^d - 1) -> p_inf and the (1-q) survivor factor remains.
#pragma once

#include "core/geometry.hpp"
#include "math/series.hpp"

namespace dht::core {

/// Options for the limiting-product evaluation.
struct LimitOptions {
  /// Identifier length fed to Q(m) for geometries whose Q depends on d
  /// (Symphony).  The analytic limit d -> inf sends Symphony's Q to a
  /// positive constant, so any moderately large value gives the same
  /// verdict; 128 matches the Fig. 7(a) regime.
  int d_reference = 128;
  /// Stop extending the product once Q(m) falls below this tail threshold...
  double tail_epsilon = 1e-18;
  /// ...or after this many factors (divergent series never pass the
  /// threshold; by then the partial product has long since underflowed).
  int max_factors = 100000;
};

/// p_inf(q): the h -> infinity limit of p(h, q).  Returns 0 for unscalable
/// geometries (their partial products underflow).  Precondition: q in [0,1).
double limit_success_probability(const Geometry& geometry, double q,
                                 const LimitOptions& options = {});

/// r_inf(q) = p_inf(q) / (1 - q): the N -> infinity limit of routability.
double limit_routability(const Geometry& geometry, double q,
                         const LimitOptions& options = {});

/// Combined analytic + numeric scalability report for one geometry at one q.
struct ScalabilityReport {
  GeometryKind kind = GeometryKind::kTree;
  double q = 0.0;
  /// The paper's analytic verdict (Section 5).
  ScalabilityClass analytic = ScalabilityClass::kUnscalable;
  /// Numeric diagnosis of sum_m Q(m).
  math::SeriesDiagnosis numeric;
  /// True when the numeric verdict corroborates the analytic one.
  bool numeric_agrees = false;
  double limit_success = 0.0;      ///< p_inf(q)
  double limit_routability = 0.0;  ///< r_inf(q)
};

/// Runs the numeric series diagnosis against the analytic verdict and
/// evaluates the limits.  Precondition: 0 < q < 1 (at q = 0 every geometry
/// trivially routes, so scalability is not in question).
ScalabilityReport analyze_scalability(const Geometry& geometry, double q,
                                      const LimitOptions& options = {});

}  // namespace dht::core
