// Factory for the five paper geometries.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/geometry.hpp"

namespace dht::core {

/// Creates the geometry for `kind`.  `symphony` (the only parameterized
/// geometry) is configured via `params`; the other kinds ignore it.
std::unique_ptr<Geometry> make_geometry(GeometryKind kind,
                                        SymphonyParams params = {});

/// Creates a geometry by its stable name ("tree", "hypercube", "xor",
/// "ring", "symphony"); throws dht::PreconditionError for unknown names.
std::unique_ptr<Geometry> make_geometry(std::string_view name,
                                        SymphonyParams params = {});

/// All five kinds in the paper's presentation order.
std::vector<GeometryKind> all_geometry_kinds();

/// Convenience: instantiates all five geometries (Symphony with `params`).
std::vector<std::unique_ptr<Geometry>> make_all_geometries(
    SymphonyParams params = {});

}  // namespace dht::core
