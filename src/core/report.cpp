#include "core/report.hpp"

#include <algorithm>
#include <ostream>

#include "common/check.hpp"

namespace dht::core {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  DHT_CHECK(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  DHT_CHECK(!header_.empty(), "set_header must be called first");
  DHT_CHECK(row.size() == header_.size(),
            "row arity must match the header");
  rows_.push_back(std::move(row));
}

void Table::add_note(std::string note) { notes_.push_back(std::move(note)); }

void Table::print(std::ostream& os) const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  os << "== " << title_ << " ==\n";
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < width[c]; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = header_.empty() ? 0 : (header_.size() - 1) * 2;
  for (size_t w : width) {
    total += w;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
  for (const auto& note : notes_) {
    os << "note: " << note << '\n';
  }
}

void Table::print_csv(std::ostream& os) const {
  os << "# " << title_ << '\n';
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        os << ',';
      }
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) {
    print_row(row);
  }
  for (const auto& note : notes_) {
    os << "# " << note << '\n';
  }
}

}  // namespace dht::core
