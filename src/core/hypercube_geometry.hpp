// Hypercube (CAN) routing geometry -- paper Sections 3.2, 4.2.
//
// Node distance is Hamming distance and greedy routing may correct the
// differing bits in any order, so at a node with m bits left to correct any
// of m neighbors makes progress.  The Markov chain (Fig. 4(b)) yields
// Q(m) = q^m and p(h, q) = prod_{m=1..h} (1 - q^m) (Eq. 2); the worked
// example of Figs. 1-3 is the d = 3 instance of this class.
//
// sum q^m is geometric, hence convergent: the geometry is scalable
// (Section 5.2).
#pragma once

#include "core/geometry.hpp"

namespace dht::core {

class HypercubeGeometry final : public Geometry {
 public:
  GeometryKind kind() const noexcept override {
    return GeometryKind::kHypercube;
  }
  std::string_view name() const noexcept override { return "hypercube"; }
  std::string_view dht_system() const noexcept override { return "CAN"; }

  /// n(h) = C(d, h): nodes at Hamming distance h.
  math::LogReal distance_count(int h, int d) const override;

  /// Q(m) = q^m: all m bit-correcting neighbors must be dead.
  double phase_failure(int m, double q, int d) const override;

  ScalabilityClass scalability_class() const noexcept override {
    return ScalabilityClass::kScalable;
  }
  std::string_view scalability_argument() const noexcept override {
    return "Q(m) = q^m is geometric, so sum Q(m) = q/(1-q) converges and "
           "p(h, q) has a positive limit (Knopp)";
  }
  Exactness exactness() const noexcept override { return Exactness::kExact; }
};

}  // namespace dht::core
